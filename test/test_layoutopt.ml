(* Tests for cuts, BPi / OBP and the workload optimizer. *)

module Cut = Layoutopt.Cut
module Bpi = Layoutopt.Bpi
module Optimizer = Layoutopt.Optimizer
module Emit = Costmodel.Emit

let test_refine_splits () =
  let p = [ [ 0; 1; 2; 3 ] ] in
  Alcotest.(check (list (list int))) "one cut"
    [ [ 0; 1 ]; [ 2; 3 ] ]
    (Cut.refine p [ 0; 1 ]);
  Alcotest.(check (list (list int))) "cut across groups"
    [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    (Cut.refine (Cut.refine p [ 0; 1 ]) [ 0; 2 ])

let test_refine_noop () =
  let p = [ [ 0; 1 ]; [ 2 ] ] in
  Alcotest.(check (list (list int))) "subset cut is noop"
    p
    (Cut.refine p [ 0; 1 ]);
  Alcotest.(check (list (list int))) "full cut is noop" p (Cut.refine p [ 0; 1; 2 ])

let qcheck_refine_is_partition =
  QCheck.Test.make ~count:300 ~name:"refine always yields a partition of 0..7"
    QCheck.(small_list (small_list (int_bound 7)))
    (fun cuts ->
      let base = [ List.init 8 Fun.id ] in
      let result =
        List.fold_left (fun p c -> Cut.refine p (Cut.normalize c)) base cuts
      in
      let flat = List.concat result |> List.sort compare in
      flat = List.init 8 Fun.id
      && List.for_all (fun g -> g <> []) result)

let descs_q1 =
  (* shaped like the ADRC Q1 access: one scanned column, one conditional,
     payload at a lower probability *)
  [
    { Emit.table = "x"; attrs = [ 0 ]; kind = Emit.Seq; touches = 1000 };
    { Emit.table = "x"; attrs = [ 1 ]; kind = Emit.Seq_cond 0.9; touches = 900 };
    {
      Emit.table = "x";
      attrs = [ 2; 3 ];
      kind = Emit.Seq_cond 0.02;
      touches = 20;
    };
  ]

let test_classic_cuts () =
  Alcotest.(check (list (list int))) "one cut with all accessed attrs"
    [ [ 0; 1; 2; 3 ] ]
    (Cut.classic_of_descs descs_q1)

let test_extended_cuts () =
  let cuts = Cut.extended_of_descs descs_q1 in
  Alcotest.(check bool) "per-atom cuts present" true
    (List.mem [ 0 ] cuts && List.mem [ 1 ] cuts && List.mem [ 2; 3 ] cuts);
  Alcotest.(check bool) "same-kind union present" true
    (List.mem [ 1; 2; 3 ] cuts);
  Alcotest.(check bool) "full set present" true (List.mem [ 0; 1; 2; 3 ] cuts)

let test_obp_finds_planted_optimum () =
  (* synthetic cost: prefer exactly the partitioning {0},{1,2},{3}; only the
     exhaustive search is guaranteed to find an optimum that no single cut
     improves towards (BPi prunes such paths by design) *)
  let target = [ [ 0 ]; [ 1; 2 ]; [ 3 ] ] in
  let cost p = if p = List.sort compare target then 1.0 else 10.0 +. float_of_int (List.length p) in
  let cuts = [ [ 0 ]; [ 1; 2 ]; [ 0; 1 ]; [ 3 ] ] in
  let best, best_cost, _ = Bpi.optimize_exhaustive ~cost ~n_attrs:4 ~cuts in
  Alcotest.(check (list (list int))) "planted optimum found"
    (List.sort compare target) best;
  Alcotest.(check (float 1e-9)) "its cost" 1.0 best_cost

let test_bpi_follows_monotone_improvements () =
  (* when each beneficial cut strictly improves the cost, BPi must take all
     of them: cost = 100 - 10 per isolated attribute in {0,1} *)
  let cost p =
    let isolated a = List.mem [ a ] p in
    100.0
    -. (if isolated 0 then 10.0 else 0.0)
    -. (if isolated 1 then 10.0 else 0.0)
  in
  let cuts = [ [ 0 ]; [ 1 ] ] in
  let best, best_cost, _ = Bpi.optimize ~cost ~n_attrs:4 ~cuts ~threshold:0.01 in
  Alcotest.(check (float 1e-9)) "took both cuts" 80.0 best_cost;
  Alcotest.(check bool) "0 isolated" true (List.mem [ 0 ] best);
  Alcotest.(check bool) "1 isolated" true (List.mem [ 1 ] best)

let test_bpi_threshold_prunes () =
  (* count cost evaluations: a huge threshold prevents branching *)
  let cost p = float_of_int (10 + List.length p) in
  let cuts = List.init 6 (fun i -> [ i ]) in
  let _, _, eager = Bpi.optimize ~cost ~n_attrs:6 ~cuts ~threshold:0.0 in
  let _, _, pruned = Bpi.optimize ~cost ~n_attrs:6 ~cuts ~threshold:0.9 in
  Alcotest.(check bool) "pruning reduces work" true
    (pruned.Bpi.cost_evaluations <= eager.Bpi.cost_evaluations)

let test_obp_at_least_as_good_as_bpi () =
  (* random cost landscape; OBP (exhaustive) must never lose to BPi *)
  let rng = Mrdb_util.Rng.create 31 in
  for _ = 1 to 10 do
    let tbl = Hashtbl.create 64 in
    let cost p =
      match Hashtbl.find_opt tbl p with
      | Some c -> c
      | None ->
          let c = 1.0 +. Mrdb_util.Rng.float rng in
          Hashtbl.add tbl p c;
          c
    in
    let cuts = [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 2; 3 ] ] in
    let _, obp_cost, _ = Bpi.optimize_exhaustive ~cost ~n_attrs:4 ~cuts in
    let _, bpi_cost, _ = Bpi.optimize ~cost ~n_attrs:4 ~cuts ~threshold:0.3 in
    Alcotest.(check bool) "obp <= bpi" true (obp_cost <= bpi_cost +. 1e-9)
  done

let test_optimizer_beats_extremes_on_cnet () =
  let hier = Memsim.Hierarchy.create () in
  let cn = Workloads.Cnet.build ~hier ~n_products:2000 ~n_extra:30 () in
  let cat = cn.Workloads.Cnet.cat in
  let wl = Workloads.Workload.plans ~use_indexes:true cn.Workloads.Cnet.queries in
  let r = Optimizer.optimize_table cat "products" wl in
  Alcotest.(check bool) "hybrid <= row" true
    (r.Optimizer.estimated_cost <= r.Optimizer.row_cost +. 1e-6);
  Alcotest.(check bool) "hybrid <= column" true
    (r.Optimizer.estimated_cost <= r.Optimizer.column_cost +. 1e-6)

let test_optimizer_layout_is_valid () =
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale:0.05 () in
  let cat = sd.Workloads.Sap_sd.cat in
  let wl = Workloads.Workload.plans ~use_indexes:false sd.Workloads.Sap_sd.queries in
  let results = Optimizer.optimize cat wl in
  Alcotest.(check bool) "covers every touched table" true
    (List.length results >= 5);
  (* applying must not lose data *)
  let before =
    Storage.Relation.nrows (Storage.Catalog.find cat "ADRC")
  in
  Optimizer.apply cat results;
  Alcotest.(check int) "rows preserved after apply" before
    (Storage.Relation.nrows (Storage.Catalog.find cat "ADRC"));
  (* queries still produce identical results after repartitioning *)
  let q = Workloads.Sap_sd.query sd "Q2" in
  let r =
    Engines.Engine.run Engines.Engine.Jit cat
      (q.Workloads.Workload.make_plan ~use_indexes:false)
      ~params:q.Workloads.Workload.params
  in
  Alcotest.(check bool) "query runs on optimized layout" true
    (List.length r.Engines.Runtime.rows >= 0)

let test_adrc_decomposition_matches_paper () =
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale:0.25 () in
  let cat = sd.Workloads.Sap_sd.cat in
  let wl =
    Workloads.Workload.plans ~use_indexes:false (Workloads.Sap_sd.adrc_queries sd)
  in
  let r =
    Optimizer.optimize_table ~algorithm:(Optimizer.Bpi 0.002) cat "ADRC" wl
  in
  let schema = Storage.Relation.schema (Storage.Catalog.find cat "ADRC") in
  let groups =
    Storage.Layout.to_name_groups schema r.Optimizer.layout
    |> List.map (List.sort compare)
  in
  (* the paper's Table IVc: NAME1, NAME2 and KUNNR isolated *)
  Alcotest.(check bool) "NAME1 isolated" true (List.mem [ "NAME1" ] groups);
  Alcotest.(check bool) "NAME2 isolated" true (List.mem [ "NAME2" ] groups);
  Alcotest.(check bool) "KUNNR isolated" true (List.mem [ "KUNNR" ] groups)

let test_extended_beats_classic () =
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale:0.1 () in
  let cat = sd.Workloads.Sap_sd.cat in
  let wl =
    Workloads.Workload.plans ~use_indexes:false (Workloads.Sap_sd.adrc_queries sd)
  in
  let ext = Optimizer.optimize_table ~extended:true cat "ADRC" wl in
  let cls = Optimizer.optimize_table ~extended:false cat "ADRC" wl in
  Alcotest.(check bool) "extended cuts find cheaper layout" true
    (ext.Optimizer.estimated_cost <= cls.Optimizer.estimated_cost +. 1e-6)

let suite =
  [
    Alcotest.test_case "refine splits" `Quick test_refine_splits;
    Alcotest.test_case "refine noop" `Quick test_refine_noop;
    QCheck_alcotest.to_alcotest qcheck_refine_is_partition;
    Alcotest.test_case "classic cuts" `Quick test_classic_cuts;
    Alcotest.test_case "extended cuts" `Quick test_extended_cuts;
    Alcotest.test_case "obp planted optimum" `Quick test_obp_finds_planted_optimum;
    Alcotest.test_case "bpi monotone improvements" `Quick
      test_bpi_follows_monotone_improvements;
    Alcotest.test_case "bpi threshold prunes" `Quick test_bpi_threshold_prunes;
    Alcotest.test_case "obp dominates bpi" `Quick test_obp_at_least_as_good_as_bpi;
    Alcotest.test_case "optimizer beats extremes (cnet)" `Quick
      test_optimizer_beats_extremes_on_cnet;
    Alcotest.test_case "optimizer apply validity" `Quick
      test_optimizer_layout_is_valid;
    Alcotest.test_case "ADRC matches Table IV" `Quick
      test_adrc_decomposition_matches_paper;
    Alcotest.test_case "extended beats classic" `Quick test_extended_beats_classic;
  ]
