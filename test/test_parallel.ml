(* Morsel-driven parallel execution: result determinism across engines,
   Stats.merge algebra, and miss-counter parity of measured parallel runs. *)

open Helpers
module Engine = Engines.Engine
module Parallel = Engines.Parallel
module Stats = Memsim.Stats

(* ------------------------------------------------------------------ *)
(* (a) parallel == sequential for every engine and morsel boundary     *)
(* ------------------------------------------------------------------ *)

let queries =
  [
    ("project", "select id, name, score from t");
    ("select", "select id, amount from t where amount < 50");
    ( "group",
      "select grp, sum(amount), min(id), max(amount), count(*) from t \
       group by grp" );
    ("avg", "select grp, avg(amount) from t group by grp");
    ("global", "select sum(amount), count(*) from t");
    ("fallback-sort", "select id from t order by amount, id");
  ]

let check_result label (expected : Engines.Runtime.result)
    (got : Engines.Runtime.result) =
  Alcotest.(check (array string))
    (label ^ " columns") expected.Engines.Runtime.columns
    got.Engines.Runtime.columns;
  check_rows (label ^ " rows") expected.Engines.Runtime.rows
    got.Engines.Runtime.rows

(* Odd boundaries on purpose: 500 rows over 64-row morsels (last morsel
   partial), 37 rows (smaller than one morsel) and an empty relation. *)
let test_engines_agree () =
  List.iter
    (fun n ->
      let cat = small_catalog ~n () in
      List.iter
        (fun (qname, sql) ->
          let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
          iter_engines (fun engine ->
              let expected = Engine.run engine cat plan ~params:[||] in
              List.iter
                (fun domains ->
                  let got =
                    Engine.run ~domains ~morsel_size:64 engine cat plan
                      ~params:[||]
                  in
                  check_result
                    (Printf.sprintf "%s/%s n=%d domains=%d" qname
                       (Engine.name engine) n domains)
                    expected got)
                [ 1; 2; 4 ]))
        queries)
    [ 500; 37; 0 ]

let test_parallelizable () =
  let cat = small_catalog () in
  let plan sql = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
  Alcotest.(check bool)
    "select pipeline" true
    (Parallel.parallelizable (plan "select id from t where amount < 50"));
  Alcotest.(check bool)
    "group-by over pipeline" true
    (Parallel.parallelizable
       (plan "select grp, sum(amount) from t group by grp"));
  Alcotest.(check bool)
    "sort is sequential" false
    (Parallel.parallelizable (plan "select id from t order by amount"))

(* ------------------------------------------------------------------ *)
(* (b) Stats.merge is associative and commutative                      *)
(* ------------------------------------------------------------------ *)

let stats_gen =
  QCheck.Gen.(
    map
      (fun l ->
        match l with
        | [ a; r; w; l1; l2; llc; ls; lr; tlb; pf; mem; cpu ] ->
            {
              Stats.accesses = a; reads = r; writes = w; l1_misses = l1;
              l2_misses = l2; llc_accesses = llc; llc_seq_misses = ls;
              llc_rand_misses = lr; tlb_misses = tlb; prefetches = pf;
              mem_cycles = mem; cpu_cycles = cpu;
            }
        | _ -> assert false)
      (list_repeat 12 (int_bound 1000)))

let stats_arb =
  QCheck.make stats_gen
    ~print:(fun s ->
      Printf.sprintf "{acc=%d mem=%d cpu=%d ...}" s.Stats.accesses
        s.Stats.mem_cycles s.Stats.cpu_cycles)

let qcheck_merge_commutative =
  QCheck.Test.make ~count:500 ~name:"Stats.merge commutative"
    (QCheck.pair stats_arb stats_arb)
    (fun (a, b) -> Stats.merge a b = Stats.merge b a)

let qcheck_merge_associative =
  QCheck.Test.make ~count:500 ~name:"Stats.merge associative"
    (QCheck.triple stats_arb stats_arb stats_arb)
    (fun (a, b, c) ->
      Stats.merge (Stats.merge a b) c = Stats.merge a (Stats.merge b c))

let test_merge_identity () =
  let z = Stats.create () in
  let s =
    { z with Stats.accesses = 7; reads = 5; writes = 2; mem_cycles = 90;
      cpu_cycles = 11 }
  in
  Alcotest.(check bool) "zero is left identity" true (Stats.merge z s = s);
  Alcotest.(check bool) "zero is right identity" true (Stats.merge s z = s)

(* ------------------------------------------------------------------ *)
(* (c) measured parallel run: summed miss counters == sequential       *)
(* ------------------------------------------------------------------ *)

(* On a read-only scan every morsel starts on a cache-line and TLB-page
   boundary (morsel size 4096 divides any row offset into aligned byte
   offsets), so each line and page is touched from exactly one domain and
   the summed traffic equals the sequential run's.  The split between
   prefetched and random LLC misses shifts (each domain restarts the
   prefetcher's streams) but their sum is invariant.  Cycle counts are
   max-over-domains and not comparable. *)
let test_measured_parity () =
  let run domains =
    let hier = Memsim.Hierarchy.create () in
    let cat = Workloads.Microbench.build ~hier ~n:10_000 () in
    let plan =
      Relalg.Planner.plan cat (Relalg.Sql.parse cat "select A, B from R")
    in
    Engine.run_measured ~domains Engine.Jit cat plan ~params:[||]
  in
  let r_seq, seq = run 1 in
  let r_par, par = run 3 in
  check_result "scan rows" r_seq r_par;
  let counters (s : Stats.t) =
    [
      ("accesses", s.Stats.accesses); ("reads", s.Stats.reads);
      ("writes", s.Stats.writes); ("l1_misses", s.Stats.l1_misses);
      ("l2_misses", s.Stats.l2_misses);
      ("llc_accesses", s.Stats.llc_accesses);
      ("llc_misses", s.Stats.llc_seq_misses + s.Stats.llc_rand_misses);
      ("tlb_misses", s.Stats.tlb_misses);
    ]
  in
  List.iter2
    (fun (name, a) (_, b) -> Alcotest.(check int) name a b)
    (counters seq) (counters par)

let suite =
  [
    Alcotest.test_case "parallel equals sequential (all engines)" `Quick
      test_engines_agree;
    Alcotest.test_case "parallelizable plan shapes" `Quick test_parallelizable;
    QCheck_alcotest.to_alcotest qcheck_merge_commutative;
    QCheck_alcotest.to_alcotest qcheck_merge_associative;
    Alcotest.test_case "Stats.merge identity" `Quick test_merge_identity;
    Alcotest.test_case "measured parallel miss parity" `Quick
      test_measured_parity;
  ]
