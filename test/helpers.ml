(* Shared fixtures for the test suite. *)

module V = Storage.Value

let value_testable =
  Alcotest.testable Storage.Value.pp Storage.Value.equal

let row_testable = Alcotest.array value_testable

let check_rows = Alcotest.check (Alcotest.list row_testable)

(* A small mixed-type table with deterministic contents. *)
let small_schema =
  Storage.Schema.make "t"
    [
      ("id", V.Int);
      ("grp", V.Int);
      ("amount", V.Int);
      ("name", V.Varchar 12);
      ("score", V.Float);
    ]

let fill_small rel n =
  Storage.Relation.load rel ~n (fun ~row ->
      [|
        V.VInt row;
        V.VInt (row mod 7);
        V.VInt (row * 3 mod 101);
        V.VStr (Printf.sprintf "name%03d" (row mod 50));
        V.VFloat (float_of_int (row mod 13) /. 4.0);
      |])

let small_catalog ?(n = 500) ?layout () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let layout =
    match layout with
    | Some groups -> Storage.Layout.of_names small_schema groups
    | None -> Storage.Layout.row small_schema
  in
  let rel = Storage.Catalog.add cat small_schema layout in
  fill_small rel n;
  cat

(* A two-table catalog for join tests. *)
let join_catalog ?(n_orders = 300) ?(n_customers = 40) () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let cust_schema =
    Storage.Schema.make "cust" [ ("cid", V.Int); ("region", V.Varchar 8) ]
  in
  let ord_schema =
    Storage.Schema.make "ord"
      [ ("oid", V.Int); ("ocid", V.Int); ("total", V.Int) ]
  in
  let cust = Storage.Catalog.add cat cust_schema (Storage.Layout.row cust_schema) in
  let ord = Storage.Catalog.add cat ord_schema (Storage.Layout.row ord_schema) in
  Storage.Relation.load cust ~n:n_customers (fun ~row ->
      [| V.VInt row; V.VStr (Printf.sprintf "r%d" (row mod 4)) |]);
  Storage.Relation.load ord ~n:n_orders (fun ~row ->
      [| V.VInt row; V.VInt (row mod n_customers); V.VInt (row mod 97) |]);
  cat

(* The engine-matrix runner: one Alcotest case per execution engine, named
   "<name> [<engine>]".  Shared by the engine, parallel, tracefast and fuzz
   corpus suites instead of each rolling its own loop over [Engine.all]. *)
let across_engines ?(speed = `Quick) name f =
  List.map
    (fun e ->
      Alcotest.test_case
        (Printf.sprintf "%s [%s]" name (Engines.Engine.name e))
        speed (f e))
    Engines.Engine.all

(* inline variant for assertions that loop over engines inside one case *)
let iter_engines f = List.iter f Engines.Engine.all

let run_sql ?(engine = Engines.Engine.Jit) ?(params = [||]) cat sql =
  let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
  Engines.Engine.run engine cat plan ~params

let sorted_rows (r : Engines.Runtime.result) =
  List.sort compare r.Engines.Runtime.rows
