(* Durability and crash recovery.

   The centerpiece is an exhaustive crash-point matrix: a scripted workload
   (loads, index build, SQL updates, a repartition, a checkpoint, more
   updates, appends) runs against the fault-injectable store once reliably —
   recording the catalog digest after every committed step — and then once
   per (crash point × torn-write fraction).  After every simulated crash,
   recovery must produce a catalog value-identical to one of the committed
   states, and at least as recent as the last step whose effects were fully
   durable before the crash. *)

module V = Storage.Value
module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Schema = Storage.Schema
module Encoding = Storage.Encoding
module F = Durability.Faultio
module D = Durability.Durable
module Wal = Durability.Wal
module Snapshot = Durability.Snapshot
module Recover = Durability.Recover

(* ------------------------------------------------------------------ *)
(* The scripted workload                                              *)
(* ------------------------------------------------------------------ *)

let schema =
  Schema.make "t"
    [ ("id", V.Int); ("grp", V.Int); ("amount", V.Int); ("name", V.Varchar 12) ]

let initial_row row =
  [|
    V.VInt row;
    V.VInt (row mod 5);
    V.VInt (row * 3 mod 101);
    V.VStr (Printf.sprintf "n%03d" row);
  |]

let run_update cat sql =
  let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
  ignore (Engines.Engine.run Engines.Engine.Jit cat plan ~params:[||])

(* Run the workload against [env], recording [(step, digest, points_after)]
   after every committed step.  Raises [Faultio.Crash] mid-way when the
   env's plan says so. *)
let run_script env =
  let hier = Memsim.Hierarchy.create () in
  let cat = Catalog.create ~hier () in
  let marks = ref [ ("empty", Snapshot.digest cat, 0) ] in
  let mark step = marks := (step, Snapshot.digest cat, F.points env) :: !marks in
  let d = D.attach env cat in
  mark "attach";
  Catalog.in_txn cat (fun () ->
      let rel = Catalog.add cat schema (Layout.row schema) in
      Relation.load rel ~n:40 (fun ~row -> initial_row row);
      Catalog.notify_load cat "t" ~row_lo:0 ~rows:40);
  mark "load";
  Catalog.create_index cat "t" ~name:"pk" ~kind:Storage.Index.Hash
    ~attrs:[ "id" ];
  mark "index";
  run_update cat "update t set amount = 999 where grp = 2";
  mark "update1";
  (* what Layoutopt.Adaptive does when it decides to repartition *)
  Catalog.in_txn cat (fun () ->
      Catalog.set_layout cat "t"
        (Layout.of_names schema [ [ "id"; "grp" ]; [ "amount"; "name" ] ]));
  mark "repartition";
  D.checkpoint d;
  mark "checkpoint";
  run_update cat "update t set name = 'patched' where id = 7";
  mark "update2";
  Catalog.in_txn cat (fun () ->
      let rel = Catalog.find cat "t" in
      for row = 40 to 44 do
        let tid = Relation.append rel (initial_row row) in
        Catalog.notify_insert cat "t" ~tid
      done);
  mark "append";
  D.detach d;
  List.rev !marks

(* The dry run: digests of every committed state and the total number of
   crash points the workload passes. *)
let dry_run () =
  let env = F.memory () in
  let marks = run_script env in
  (marks, F.points env)

let digest_index marks dg =
  (* latest step with this digest (checkpoint does not change the state, so
     digests need not be unique) *)
  let best = ref (-1) in
  List.iteri (fun i (_, d, _) -> if d = dg then best := i) marks;
  !best

let recover_digest env =
  F.set_plan env F.Reliable;
  let r = Recover.run env in
  (Snapshot.digest r.Recover.cat, r)

(* ------------------------------------------------------------------ *)
(* Exhaustive crash-point matrix                                      *)
(* ------------------------------------------------------------------ *)

let test_crash_matrix () =
  let marks, total = dry_run () in
  Alcotest.(check bool) "workload passes crash points" true (total > 20);
  let checked = ref 0 in
  List.iter
    (fun torn ->
      for point = 1 to total do
        let env = F.memory ~plan:(F.Crash_at { point; torn }) () in
        (match run_script env with
        | _ ->
            Alcotest.failf "point %d torn %.1f: expected a crash" point torn
        | exception F.Crash _ -> ());
        let dg, r = recover_digest env in
        let idx = digest_index marks dg in
        if idx < 0 then
          Alcotest.failf
            "point %d torn %.1f: recovered state matches no committed state \
             (warnings: %s)"
            point torn
            (String.concat " | " r.Recover.warnings);
        (* every step whose crash points all happened before this crash was
           fully flushed — recovery must be at least that recent *)
        let floor = ref 0 in
        List.iteri
          (fun i (_, _, pts) -> if pts < point && i > !floor then floor := i)
          marks;
        if idx < !floor then
          Alcotest.failf
            "point %d torn %.1f: recovered %S but %S was already durable"
            point torn
            (let s, _, _ = List.nth marks idx in
             s)
            (let s, _, _ = List.nth marks !floor in
             s);
        incr checked
      done)
    [ 0.0; 0.5; 1.0 ];
  Alcotest.(check bool) "matrix covered" true (!checked >= 3 * total)

(* ------------------------------------------------------------------ *)
(* Corruption                                                         *)
(* ------------------------------------------------------------------ *)

let test_corrupt_wal_record () =
  let marks, _ = dry_run () in
  let env = F.memory () in
  ignore (run_script env);
  let size = F.durable_size env Wal.store_name in
  Alcotest.(check bool) "wal non-empty" true (size > 0);
  F.corrupt_byte env Wal.store_name (size / 2);
  let dg, r = recover_digest env in
  Alcotest.(check bool) "corruption warned about" true
    (r.Recover.warnings <> []);
  Alcotest.(check bool) "recovered a committed state" true
    (digest_index marks dg >= 0)

let test_corrupt_snapshot () =
  let marks, _ = dry_run () in
  let env = F.memory () in
  ignore (run_script env);
  F.corrupt_byte env Snapshot.store_name
    (F.durable_size env Snapshot.store_name / 2);
  let dg, r = recover_digest env in
  Alcotest.(check bool) "corruption warned about" true
    (r.Recover.warnings <> []);
  (* the snapshot is gone; the post-checkpoint WAL still replays against an
     empty catalog or not at all — never a crash *)
  ignore dg;
  ignore marks

let test_missing_everything () =
  let env = F.memory () in
  let r = Recover.run env in
  Alcotest.(check int) "no transactions" 0 r.Recover.replayed;
  Alcotest.(check (list string)) "no tables" []
    (Catalog.names r.Recover.cat)

(* ------------------------------------------------------------------ *)
(* Crash points inside an advisor-triggered reorganization            *)
(* ------------------------------------------------------------------ *)

(* The online layout advisor — not a scripted [set_layout] — performs the
   repartition against a durability-attached catalog, and the run is
   crashed at every injected WAL fault point.  The advisor's reorganization
   runs inside [Catalog.in_txn], so recovery must land on a committed
   mark's digest: either the repartition replayed whole or it vanished
   whole, never a half-moved table. *)
let run_advisor_script env =
  let cat = Catalog.create () in
  let marks = ref [ ("empty", Snapshot.digest cat, 0) ] in
  let mark step = marks := (step, Snapshot.digest cat, F.points env) :: !marks in
  let d = D.attach env cat in
  mark "attach";
  Catalog.in_txn cat (fun () ->
      let rel = Catalog.add cat schema (Layout.row schema) in
      Relation.load rel ~n:24 (fun ~row -> initial_row row);
      Catalog.notify_load cat "t" ~row_lo:0 ~rows:24);
  mark "load";
  (* a narrow aggregate mix: decomposing [amount] out is profitable, so a
     trigger-happy advisor reorganizes on the first check *)
  let narrow =
    Relalg.Planner.plan cat
      (Relalg.Plan.Group_by
         {
           child = Relalg.Plan.Scan "t";
           keys = [];
           aggs =
             [ Relalg.Aggregate.(make Sum ~expr:(Relalg.Expr.Col 2) "s") ];
         })
  in
  let adv =
    Layoutopt.Advisor.create ~window:4 ~check_every:1 ~min_benefit:0.0
      ~horizon:1e9 cat
  in
  let repartitions = ref 0 in
  for _ = 1 to 4 do
    repartitions :=
      !repartitions + List.length (Layoutopt.Advisor.observe adv narrow)
  done;
  mark "advisor-repartition";
  run_update cat "update t set amount = 5 where grp = 1";
  mark "update";
  D.detach d;
  let nparts =
    Storage.Layout.n_partitions (Relation.layout (Catalog.find cat "t"))
  in
  (List.rev !marks, !repartitions, nparts)

let test_advisor_repartition_crash_points () =
  (* dry run: the advisor must actually reorganize *)
  let env = F.memory () in
  let marks, repartitions, nparts = run_advisor_script env in
  let total = F.points env in
  Alcotest.(check bool) "advisor repartitioned" true (repartitions > 0);
  Alcotest.(check bool) "table decomposed" true (nparts > 1);
  Alcotest.(check bool) "workload passes crash points" true (total > 5);
  List.iter
    (fun torn ->
      for point = 1 to total do
        let env = F.memory ~plan:(F.Crash_at { point; torn }) () in
        (match run_advisor_script env with
        | _ ->
            Alcotest.failf "point %d torn %.1f: expected a crash" point torn
        | exception F.Crash _ -> ());
        let dg, r = recover_digest env in
        let idx = digest_index marks dg in
        if idx < 0 then
          Alcotest.failf
            "point %d torn %.1f: recovered state matches no committed state \
             (warnings: %s)"
            point torn
            (String.concat " | " r.Recover.warnings);
        let floor = ref 0 in
        List.iteri
          (fun i (_, _, pts) -> if pts < point && i > !floor then floor := i)
          marks;
        if idx < !floor then
          Alcotest.failf
            "point %d torn %.1f: recovered %S but %S was already durable"
            point torn
            (let s, _, _ = List.nth marks idx in
             s)
            (let s, _, _ = List.nth marks !floor in
             s)
      done)
    [ 0.0; 1.0 ]

(* ------------------------------------------------------------------ *)
(* Seeded soak                                                        *)
(* ------------------------------------------------------------------ *)

let soak_rounds () =
  match Sys.getenv_opt "MRDB_RECOVERY_SOAK" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 10)
  | None -> 10

let soak_seed () =
  match Sys.getenv_opt "MRDB_RECOVERY_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0x5eed)
  | None -> 0x5eed

let test_seeded_soak () =
  let marks, _ = dry_run () in
  let base = soak_seed () in
  for round = 1 to soak_rounds () do
    let seed = base + round in
    let env =
      F.memory ~plan:(F.Seeded { seed; mean_period = 11 }) ()
    in
    (match run_script env with
    | _ -> () (* the seed let the whole workload through *)
    | exception F.Crash _ -> ());
    let dg, r = recover_digest env in
    if digest_index marks dg < 0 then
      Alcotest.failf "seed %d: recovered state matches no committed state \
                      (warnings: %s)"
        seed
        (String.concat " | " r.Recover.warnings)
  done

(* ------------------------------------------------------------------ *)
(* QCheck: codec round trips and torn prefixes                        *)
(* ------------------------------------------------------------------ *)

let gen_value ty : V.t QCheck.Gen.t =
  let open QCheck.Gen in
  match (ty : V.ty) with
  | V.Int -> map (fun i -> V.VInt i) (int_range (-1_000_000) 1_000_000)
  | V.Float -> map (fun f -> V.VFloat f) (float_bound_inclusive 1e6)
  | V.Bool -> map (fun b -> V.VBool b) bool
  | V.Date -> map (fun d -> V.VDate d) (int_range 0 40_000)
  | V.Varchar n ->
      map (fun s -> V.VStr s) (string_size ~gen:printable (int_range 0 n))

let gen_ty : V.ty QCheck.Gen.t =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return V.Int;
      QCheck.Gen.return V.Float;
      QCheck.Gen.return V.Bool;
      QCheck.Gen.return V.Date;
      QCheck.Gen.map (fun n -> V.Varchar n) (QCheck.Gen.int_range 1 16);
    ]

let gen_schema name : Schema.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* arity = int_range 1 5 in
  let* attrs =
    flatten_l
      (List.init arity (fun i ->
           let* ty = gen_ty in
           let* nullable = bool in
           return (Printf.sprintf "a%d" i, ty, nullable)))
  in
  return (Schema.make_nullable name attrs)

(* a random partition of [0 .. arity-1] into contiguous-free groups *)
let gen_groups arity : int list list QCheck.Gen.t =
  let open QCheck.Gen in
  let* shuffled = shuffle_l (List.init arity Fun.id) in
  let rec cut acc rest =
    match rest with
    | [] -> return (List.rev acc)
    | _ ->
        let* k = int_range 1 (List.length rest) in
        let g = List.filteri (fun i _ -> i < k) rest in
        let rest = List.filteri (fun i _ -> i >= k) rest in
        cut (g :: acc) rest
  in
  cut [] shuffled

let gen_encodings schema groups : (int * Encoding.t) list QCheck.Gen.t =
  let open QCheck.Gen in
  let singleton a =
    List.exists (function [ b ] -> a = b | _ -> false) groups
  in
  flatten_l
    (List.init (Schema.arity schema) (fun a ->
         let attr = Schema.attr schema a in
         let* pick = int_range 0 3 in
         let enc =
           match pick with
           | 1 -> Encoding.Dict
           | 2 when attr.Schema.nullable && singleton a -> Encoding.Sparse
           | _ -> Encoding.Plain
         in
         return (a, enc)))
  |> fun g -> map (List.filter (fun (_, e) -> e <> Encoding.Plain)) g

let gen_row schema : V.t array QCheck.Gen.t =
  let open QCheck.Gen in
  flatten_a
    (Array.init (Schema.arity schema) (fun a ->
         let attr = Schema.attr schema a in
         if attr.Schema.nullable then
           let* null = int_range 0 3 in
           if null = 0 then return V.Null else gen_value attr.Schema.ty
         else gen_value attr.Schema.ty))

(* a small random catalog: schemas, layouts, encodings, rows, an index *)
let gen_catalog : Catalog.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* ntables = int_range 1 3 in
  let* specs =
    flatten_l
      (List.init ntables (fun i ->
           let* schema = gen_schema (Printf.sprintf "t%d" i) in
           let* groups = gen_groups (Schema.arity schema) in
           let* encodings = gen_encodings schema groups in
           let* nrows = int_range 0 12 in
           let* rows = flatten_l (List.init nrows (fun _ -> gen_row schema)) in
           let* want_index = bool in
           return (schema, groups, encodings, rows, want_index)))
  in
  let cat = Catalog.create () in
  List.iter
    (fun (schema, groups, encodings, rows, want_index) ->
      let rel =
        Catalog.add ~encodings cat schema (Layout.of_indices schema groups)
      in
      List.iter (fun row -> ignore (Relation.append rel row)) rows;
      (* hash-index the first non-nullable attribute, if any *)
      if want_index then
        Array.to_list schema.Schema.attrs
        |> List.find_opt (fun (a : Schema.attr) -> not a.Schema.nullable)
        |> Option.iter (fun (a : Schema.attr) ->
               Catalog.create_index cat schema.Schema.name ~name:"qidx"
                 ~kind:Storage.Index.Hash ~attrs:[ a.Schema.name ]))
    specs;
  return cat

let qcheck_snapshot_roundtrip =
  QCheck.Test.make ~count:100 ~name:"snapshot payload round-trips"
    (QCheck.make gen_catalog)
    (fun cat ->
      let payload = Snapshot.serialize_payload ~last_txid:42 cat in
      let cat', txid = Snapshot.deserialize_payload payload in
      txid = 42 && Snapshot.digest cat' = Snapshot.digest cat)

let gen_op : Wal.op QCheck.Gen.t =
  let open QCheck.Gen in
  let* schema = gen_schema "w" in
  let* groups = gen_groups (Schema.arity schema) in
  let* encodings = gen_encodings schema groups in
  let* row = gen_row schema in
  let* tid = int_range 0 1000 in
  oneofl
    [
      Wal.Create_relation { table = "w"; schema; layout = groups; encodings };
      Wal.Append { table = "w"; values = row };
      Wal.Load { table = "w"; rows = [| row; row |] };
      Wal.Update { table = "w"; tid; attr = 0; value = row.(0) };
      Wal.Set_layout { table = "w"; layout = groups };
      Wal.Create_index
        { table = "w"; iname = "i"; kind = Storage.Index.Rbtree;
          attrs = [ "a0" ] };
    ]

let gen_record : Wal.record QCheck.Gen.t =
  let open QCheck.Gen in
  let* txid = int_range 0 100_000 in
  let* op = gen_op in
  oneofl
    [ Wal.Begin txid; Wal.Commit txid; Wal.Abort txid; Wal.Op { txid; op } ]

let qcheck_wal_roundtrip =
  QCheck.Test.make ~count:300 ~name:"wal record round-trips"
    (QCheck.make gen_record)
    (fun record -> Wal.decode_string (Wal.encode record) = record)

let qcheck_torn_prefix =
  (* cutting the WAL at ANY byte still recovers a committed state *)
  let marks, _ = dry_run () in
  QCheck.Test.make ~count:60 ~name:"torn wal prefix recovers committed state"
    QCheck.(float_bound_inclusive 1.0)
    (fun frac ->
      let env = F.memory () in
      ignore (run_script env);
      let size = F.durable_size env Wal.store_name in
      F.truncate_store env Wal.store_name
        (int_of_float (frac *. float_of_int size));
      let dg, _ = recover_digest env in
      digest_index marks dg >= 0)

(* ------------------------------------------------------------------ *)
(* Hot path isolation                                                 *)
(* ------------------------------------------------------------------ *)

let measured_update ~durable () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Catalog.create ~hier () in
  let rel = Catalog.add cat schema (Layout.row schema) in
  Relation.load rel ~n:200 (fun ~row -> initial_row row);
  let d = if durable then Some (D.attach (F.memory ()) cat) else None in
  let plan =
    Relalg.Planner.plan cat
      (Relalg.Sql.parse cat "update t set amount = 1 where grp = 3")
  in
  let _, st =
    Engines.Engine.run_measured Engines.Engine.Jit cat plan ~params:[||]
  in
  Option.iter D.detach d;
  st

let test_counters_unchanged () =
  let plain = measured_update ~durable:false () in
  let logged = measured_update ~durable:true () in
  Alcotest.(check int) "identical simulated cycles"
    (Memsim.Stats.total_cycles plain)
    (Memsim.Stats.total_cycles logged);
  Alcotest.(check int) "identical sequential misses"
    plain.Memsim.Stats.llc_seq_misses logged.Memsim.Stats.llc_seq_misses;
  Alcotest.(check int) "identical random misses"
    plain.Memsim.Stats.llc_rand_misses logged.Memsim.Stats.llc_rand_misses

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "exhaustive crash-point matrix" `Slow test_crash_matrix;
    Alcotest.test_case "corrupt wal record skipped with warning" `Quick
      test_corrupt_wal_record;
    Alcotest.test_case "corrupt snapshot tolerated" `Quick
      test_corrupt_snapshot;
    Alcotest.test_case "recovery from nothing" `Quick test_missing_everything;
    Alcotest.test_case "crash points inside advisor reorganization" `Slow
      test_advisor_repartition_crash_points;
    Alcotest.test_case "seeded crash soak" `Quick test_seeded_soak;
    Alcotest.test_case "durability leaves counters untouched" `Quick
      test_counters_unchanged;
    QCheck_alcotest.to_alcotest qcheck_wal_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_snapshot_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_torn_prefix;
  ]
