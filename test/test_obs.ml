(* The observability layer: span accounting invariants, cost-model
   calibration against the simulator, metrics export round-trips, and the
   normalized bench trajectory schema. *)

module Span = Obs.Span
module Profile = Obs.Profile
module Metrics = Obs.Metrics
module Json = Obs.Json
module Traj = Obs.Trajectory
module Stats = Memsim.Stats
module Engine = Engines.Engine
module Micro = Workloads.Microbench

let stats_fields (s : Stats.t) =
  [
    ("accesses", s.Stats.accesses);
    ("reads", s.Stats.reads);
    ("writes", s.Stats.writes);
    ("l1_misses", s.Stats.l1_misses);
    ("l2_misses", s.Stats.l2_misses);
    ("llc_accesses", s.Stats.llc_accesses);
    ("llc_seq_misses", s.Stats.llc_seq_misses);
    ("llc_rand_misses", s.Stats.llc_rand_misses);
    ("tlb_misses", s.Stats.tlb_misses);
    ("prefetches", s.Stats.prefetches);
    ("mem_cycles", s.Stats.mem_cycles);
    ("cpu_cycles", s.Stats.cpu_cycles);
  ]

let check_stats_equal what a b =
  List.iter2
    (fun (fa, va) (_, vb) ->
      Alcotest.(check int) (Printf.sprintf "%s: %s" what fa) va vb)
    (stats_fields a) (stats_fields b)

(* ------------------------------------------------------------------ *)
(* Span accounting                                                    *)
(* ------------------------------------------------------------------ *)

let engines =
  [ Engine.Volcano; Engine.Bulk; Engine.Hyrise; Engine.Vectorized; Engine.Jit ]

(* The self-time invariant: the flat span registry attributes every counter
   delta to exactly one node, so the node sum must equal the whole-query
   measured counters — per field, for every engine. *)
let test_span_sum_equals_totals () =
  List.iter
    (fun engine ->
      let hier = Memsim.Hierarchy.create () in
      let cat = Micro.build ~hier ~n:5_000 () in
      let plan = Micro.plan cat ~sel:0.1 in
      let params = Micro.params ~sel:0.1 in
      let (_, st), profile =
        Profile.profiled ~hier (fun () ->
            Engine.run_measured engine cat plan ~params)
      in
      check_stats_equal
        (Printf.sprintf "%s span sum" (Engine.name engine))
        st (Span.total profile))
    engines

(* Profiling must never perturb a measurement: the counters of a profiled
   run are identical to an unprofiled one. *)
let test_profiling_neutral () =
  List.iter
    (fun engine ->
      let run profiled =
        let hier = Memsim.Hierarchy.create () in
        let cat = Micro.build ~hier ~n:5_000 () in
        let plan = Micro.plan cat ~sel:0.1 in
        let params = Micro.params ~sel:0.1 in
        if profiled then
          let (_, st), _ =
            Profile.profiled ~hier (fun () ->
                Engine.run_measured engine cat plan ~params)
          in
          st
        else snd (Engine.run_measured engine cat plan ~params)
      in
      check_stats_equal
        (Printf.sprintf "%s profiled vs plain" (Engine.name engine))
        (run false) (run true))
    engines

(* Same invariant under morsel-parallel execution: per-operator inclusive
   cost from the root covers the domain sub-profiles, and the parent total
   plus all domain totals accounts for every counted access. *)
let test_span_sum_parallel () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Micro.build ~hier ~n:5_000 () in
  let plan = Micro.plan cat ~sel:0.1 in
  let params = Micro.params ~sel:0.1 in
  let (_, st), profile =
    Profile.profiled ~hier (fun () ->
        Engine.run_measured ~domains:2 Engine.Jit cat plan ~params)
  in
  Alcotest.(check bool)
    "has domain sub-profiles" true
    (List.length profile.Span.domains > 0);
  let inclusive = Span.inclusive profile Span.root_id in
  (* run_measured merges per-domain counters with max-cycle (critical path)
     semantics, so cycles differ; access counts are additive and must
     match. *)
  Alcotest.(check int)
    "accesses attributed" st.Stats.accesses inclusive.Stats.accesses;
  Alcotest.(check int)
    "reads attributed" st.Stats.reads inclusive.Stats.reads

let test_span_ids () =
  Alcotest.(check string) "child of root" "0" (Span.child Span.root_id 0);
  Alcotest.(check string) "nested child" "0.1.2" (Span.child "0.1" 2);
  Alcotest.(check string) "phase id" "0.1#build" (Span.phase_id "0.1" "build");
  Alcotest.(check bool) "under self" true (Span.under "0.1" "0.1");
  Alcotest.(check bool) "under child" true (Span.under "0.1" "0.1.0");
  Alcotest.(check bool) "under phase" true (Span.under "0.1" "0.1#build");
  Alcotest.(check bool) "not under sibling" false (Span.under "0.1" "0.10");
  Alcotest.(check (option string)) "parent of child" (Some "0.1")
    (Span.parent_id "0.1.2");
  Alcotest.(check (option string)) "parent of phase" (Some "0.1")
    (Span.parent_id "0.1#build");
  Alcotest.(check (option string)) "root has no parent" None
    (Span.parent_id Span.root_id)

let qcheck_span_parent_child =
  QCheck.Test.make ~count:200 ~name:"parent_id inverts child/phase_id"
    QCheck.(pair (small_list (int_bound 9)) (int_bound 9))
    (fun (segs, i) ->
      let path =
        List.fold_left (fun p s -> Span.child p s) Span.root_id segs
      in
      Span.parent_id (Span.child path i) = Some path
      && Span.parent_id (Span.phase_id path "x") = Some path
      && Span.under path (Span.child path i))

(* ------------------------------------------------------------------ *)
(* Cost-model calibration (EXPLAIN ANALYZE's error column)             *)
(* ------------------------------------------------------------------ *)

(* The paper's Table II microbench query across the three storage layouts.
   The calibration bound documented in DESIGN.md §5e: the analytical model
   stays within a factor of 3 of the simulator on these patterns (same
   bound test_costmodel establishes for PDSM trend-tracking; here it is
   checked per layout, which is what the EXPLAIN ANALYZE error column
   reports). *)
let test_calibration_bound () =
  let layouts =
    [
      ("nsm", Storage.Layout.row Micro.schema);
      ("dsm", Storage.Layout.column Micro.schema);
      ("pdsm", Micro.pdsm_layout);
    ]
  in
  List.iter
    (fun (lname, layout) ->
      let hier = Memsim.Hierarchy.create () in
      let cat = Micro.build ~hier ~n:50_000 () in
      Storage.Catalog.set_layout cat "R" layout;
      List.iter
        (fun sel ->
          let plan = Micro.plan cat ~sel in
          let predicted = Costmodel.Model.query_cost cat plan in
          let _, st =
            Engine.run_measured Engine.Jit cat plan
              ~params:(Micro.params ~sel)
          in
          let measured = float_of_int (Stats.total_cycles st) in
          let ratio = predicted /. measured in
          Alcotest.(check bool)
            (Printf.sprintf "%s sel %.2f within 3x (%.0f vs %.0f)" lname sel
               predicted measured)
            true
            (ratio > 1. /. 3. && ratio < 3.))
        [ 0.01; 0.1; 0.5 ])
    layouts

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  Metrics.reset_values ();
  let c = Metrics.counter "test_obs_ops_total" ~help:"ops" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "counter accumulates" 42 (Metrics.counter_value c);
  let c' = Metrics.counter "test_obs_ops_total" in
  Metrics.incr c';
  Alcotest.(check int) "registration idempotent" 43 (Metrics.counter_value c);
  let g = Metrics.gauge "test_obs_depth" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.) ) "gauge" 2.5 (Metrics.gauge_value g);
  Alcotest.check_raises "wrong kind raises"
    (Invalid_argument
       "Obs.Metrics: test_obs_ops_total already registered as a counter")
    (fun () -> ignore (Metrics.gauge "test_obs_ops_total"));
  let text = Metrics.to_prometheus () in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prometheus has counter" true
    (contains text "test_obs_ops_total 43");
  Alcotest.(check bool) "prometheus has gauge" true
    (contains text "test_obs_depth 2.5")

let test_metrics_histogram () =
  Metrics.reset_values ();
  let h =
    Metrics.histogram "test_obs_latency" ~buckets:[ 0.1; 1.0; 10.0 ]
  in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 0.5; 5.0; 50.0 ];
  let j = Metrics.to_json () in
  let metrics =
    match Json.member "metrics" j with Some (Json.Arr l) -> l | _ -> []
  in
  let entry =
    List.find
      (fun m -> Json.member "name" m = Some (Json.Str "test_obs_latency"))
      metrics
  in
  Alcotest.(check (option (float 0.)))
    "count" (Some 5.)
    (Option.bind (Json.member "count" entry) Json.to_num);
  Alcotest.(check (option (float 1e-9)))
    "sum" (Some 56.05)
    (Option.bind (Json.member "sum" entry) Json.to_num)

let qcheck_metrics_json_roundtrip =
  QCheck.Test.make ~count:50 ~name:"metrics JSON export round-trips"
    QCheck.(
      triple (int_bound 1_000_000)
        (float_bound_inclusive 1e9)
        (small_list (float_bound_inclusive 20.)))
    (fun (c, g, obs) ->
      Metrics.reset_values ();
      let cnt = Metrics.counter "test_obs_rt_total" in
      let gge = Metrics.gauge "test_obs_rt_gauge" in
      let hist = Metrics.histogram "test_obs_rt_hist" in
      Metrics.add cnt c;
      Metrics.set gge g;
      List.iter (Metrics.observe hist) obs;
      let j = Metrics.to_json () in
      Json.equal j (Json.parse (Json.to_string j))
      && Json.equal j (Json.parse (Json.to_string ~indent:2 j)))

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_parse () =
  let j = Json.parse {| {"a": [1, 2.5, true, null, "xA"], "b": {}} |} in
  Alcotest.(check bool) "round-trip" true
    (Json.equal j (Json.parse (Json.to_string j)));
  (match Json.member "a" j with
  | Some (Json.Arr [ Json.Num 1.; Json.Num 2.5; Json.Bool true; Json.Null;
                     Json.Str "xA" ]) -> ()
  | _ -> Alcotest.fail "array shape");
  Alcotest.(check bool) "object order-insensitive" true
    (Json.equal (Json.parse {| {"a":1,"b":2} |}) (Json.parse {| {"b":2,"a":1} |}))

(* ------------------------------------------------------------------ *)
(* Trajectory                                                         *)
(* ------------------------------------------------------------------ *)

let tmpfile name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_trajectory_roundtrip () =
  let run =
    Traj.make_run ~commit:"abc123"
      [
        Traj.point ~bench:"b" ~metric:"m1" ~unit_:"s" 1.25;
        Traj.point ~bench:"b" ~metric:"m2" 3.0;
      ]
  in
  let file = tmpfile "test_obs_traj.json" in
  Traj.save file run;
  let back = Traj.load file in
  Sys.remove file;
  Alcotest.(check int) "schema" Traj.schema_version back.Traj.schema_version;
  Alcotest.(check string) "commit" "abc123" back.Traj.commit;
  Alcotest.(check int) "points" 2 (List.length back.Traj.points);
  Alcotest.(check bool) "points preserved" true (back.Traj.points = run.Traj.points)

let test_trajectory_normalize_legacy () =
  let legacy =
    Json.parse
      {| { "benchmark": "old", "rows": 50000,
           "runs": [ { "domains": 1, "seconds": 0.5 },
                     { "domains": 2, "seconds": 0.3 } ],
           "ok": true } |}
  in
  let points = Traj.normalize_legacy ~bench:"para" legacy in
  let find m =
    List.find_opt (fun p -> p.Traj.metric = m) points
    |> Option.map (fun p -> p.Traj.value)
  in
  Alcotest.(check (option (float 0.))) "scalar" (Some 50000.) (find "rows");
  Alcotest.(check (option (float 0.)))
    "nested array" (Some 0.3) (find "runs.1.seconds");
  Alcotest.(check (option (float 0.))) "bool as 0/1" (Some 1.) (find "ok");
  Alcotest.(check bool) "strings skipped" true (find "benchmark" = None);
  Alcotest.(check bool) "all labelled" true
    (List.for_all (fun p -> p.Traj.bench = "para") points)

let test_trajectory_diff_and_gates () =
  let base =
    Traj.make_run
      [
        Traj.point ~bench:"b" ~metric:"cycles" 100.;
        Traj.point ~bench:"b" ~metric:"gone" 1.;
      ]
  in
  let cur =
    Traj.make_run
      [
        Traj.point ~bench:"b" ~metric:"cycles" 120.;
        Traj.point ~bench:"b" ~metric:"new" 5.;
      ]
  in
  let deltas = Traj.diff ~baseline:base cur in
  Alcotest.(check int) "three keys" 3 (List.length deltas);
  let d = List.find (fun d -> d.Traj.key = "b/cycles") deltas in
  Alcotest.(check (option (float 1e-9))) "ratio" (Some 1.2) d.Traj.ratio;
  let gates =
    Traj.gates_of_json
      (Json.parse
         {| { "gates": [ { "pattern": "b/cycles", "max_regress": 0.1 },
                         { "pattern": "b/new", "direction": "down_is_bad",
                           "min_value": 10 } ] } |})
  in
  let violations = Traj.check ~gates ~baseline:base cur in
  Alcotest.(check int) "both gates fire" 2 (List.length violations);
  let ok = Traj.check ~gates ~baseline:base base in
  Alcotest.(check int) "baseline vs itself passes" 0 (List.length ok)

let test_glob_match () =
  List.iter
    (fun (pat, s, want) ->
      Alcotest.(check bool) (pat ^ " ~ " ^ s) want (Traj.glob_match ~pattern:pat s))
    [
      ("a/b", "a/b", true);
      ("a/*", "a/b.c", true);
      ("*.seconds", "para/domains.1.seconds", true);
      ("engine.*.fast", "engine.jit.fast", true);
      ("engine.*.fast", "engine.jit.slow", false);
      ("*", "anything", true);
      ("a*c*e", "abcde", true);
      ("a*c*e", "abde", false);
    ]

let suite =
  [
    Alcotest.test_case "span ids" `Quick test_span_ids;
    Alcotest.test_case "span sum equals whole-query totals" `Quick
      test_span_sum_equals_totals;
    Alcotest.test_case "profiling is measurement-neutral" `Quick
      test_profiling_neutral;
    Alcotest.test_case "span sum under parallel execution" `Quick
      test_span_sum_parallel;
    Alcotest.test_case "calibration within documented bound" `Slow
      test_calibration_bound;
    Alcotest.test_case "metrics basics" `Quick test_metrics_basics;
    Alcotest.test_case "metrics histogram export" `Quick
      test_metrics_histogram;
    Alcotest.test_case "json parse/round-trip" `Quick test_json_parse;
    Alcotest.test_case "trajectory save/load" `Quick test_trajectory_roundtrip;
    Alcotest.test_case "trajectory legacy normalization" `Quick
      test_trajectory_normalize_legacy;
    Alcotest.test_case "trajectory diff and gates" `Quick
      test_trajectory_diff_and_gates;
    Alcotest.test_case "glob match" `Quick test_glob_match;
    QCheck_alcotest.to_alcotest qcheck_span_parent_child;
    QCheck_alcotest.to_alcotest qcheck_metrics_json_roundtrip;
  ]
