(* Run-batched tracing identity: Hierarchy.read_run/write_run must leave
   counters, cycles and all cache state byte-identical to the per-word
   touch loop they replace — checked on random access-run sequences against
   the slow path, and end-to-end on every engine under NSM/DSM/PDSM with the
   fast path toggled. *)

module Stats = Memsim.Stats
module Hierarchy = Memsim.Hierarchy
module V = Storage.Value
module Engine = Engines.Engine

let stats_equal (a : Stats.t) (b : Stats.t) = a = b
let stats_testable = Alcotest.testable Stats.pp stats_equal

(* ------------------------------------------------------------------ *)
(* Property: random mixed run sequences, fast path vs per-word loop    *)
(* ------------------------------------------------------------------ *)

type op = { write : bool; addr : int; width : int; count : int; stride : int }

let op_gen =
  QCheck.Gen.(
    let* write = bool in
    (* keep addr + i*stride non-negative for any generated combination *)
    let* addr = int_range 262_144 1_048_576 in
    let* width = int_range 1 96 in
    let* count = int_range 0 256 in
    let* stride = int_range (-192) 192 in
    return { write; addr; width; count; stride })

let apply h { write; addr; width; count; stride } =
  if write then Hierarchy.write_run h ~addr ~width ~count ~stride
  else Hierarchy.read_run h ~addr ~width ~count ~stride

let qcheck_run_identity =
  let gen = QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) op_gen in
  QCheck.Test.make ~count:60
    ~name:"read_run/write_run counters identical to per-word loop"
    (QCheck.make gen)
    (fun ops ->
      let fast = Hierarchy.create () in
      let slow = Hierarchy.create () in
      Hierarchy.set_fastpath slow false;
      List.iter (apply fast) ops;
      List.iter (apply slow) ops;
      stats_equal (Hierarchy.snapshot fast) (Hierarchy.snapshot slow))

(* The two paths must also leave identical *cache state*, not just equal
   counters: interleave run calls with plain reads and compare again. *)
let qcheck_run_identity_interleaved =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 30)
        (pair op_gen (int_range 262_144 1_048_576)))
  in
  QCheck.Test.make ~count:40
    ~name:"runs interleaved with plain touches stay identical"
    (QCheck.make gen)
    (fun ops ->
      let fast = Hierarchy.create () in
      let slow = Hierarchy.create () in
      Hierarchy.set_fastpath slow false;
      let drive h =
        List.iter
          (fun (op, a) ->
            apply h op;
            Hierarchy.read h ~addr:a ~width:8)
          ops
      in
      drive fast;
      drive slow;
      stats_equal (Hierarchy.snapshot fast) (Hierarchy.snapshot slow))

(* ------------------------------------------------------------------ *)
(* End-to-end: every engine, every storage model, fast vs slow         *)
(* ------------------------------------------------------------------ *)

let layouts () =
  [
    ("nsm", Storage.Layout.row Workloads.Microbench.schema);
    ("dsm", Storage.Layout.column Workloads.Microbench.schema);
    ("pdsm", Workloads.Microbench.pdsm_layout);
  ]

(* Each measurement builds its own hierarchy and catalog: a measured run
   allocates intermediates (selection vectors, materialization buffers) from
   the catalog's arena, so repeated runs on one catalog see different
   absolute addresses — and thus different cache *set* indices — making even
   two identical runs drift by a conflict miss.  A fresh deterministic build
   per run puts both paths on byte-identical address streams. *)
let measure_with ~fastpath ~n ~layout ~sel engine =
  let hier = Hierarchy.create () in
  Hierarchy.set_fastpath hier fastpath;
  let cat = Workloads.Microbench.build ~hier ~n () in
  Storage.Catalog.set_layout cat "R" layout;
  let plan = Workloads.Microbench.plan cat ~sel in
  let params = Workloads.Microbench.params ~sel in
  Engine.run_measured engine cat plan ~params

let test_engine_identity engine () =
  List.iter
    (fun (lname, layout) ->
      List.iter
        (fun sel ->
          let r_fast, s_fast =
            measure_with ~fastpath:true ~n:3_000 ~layout ~sel engine
          in
          let r_slow, s_slow =
            measure_with ~fastpath:false ~n:3_000 ~layout ~sel engine
          in
          Alcotest.(check (list Helpers.row_testable))
            (Printf.sprintf "%s/%s sel=%g rows" lname (Engine.name engine) sel)
            r_slow.Engines.Runtime.rows r_fast.Engines.Runtime.rows;
          Alcotest.check stats_testable
            (Printf.sprintf "%s/%s sel=%g stats" lname (Engine.name engine) sel)
            s_slow s_fast)
        [ 0.01; 0.5 ])
    (layouts ())

(* One traced fig3 point end-to-end (select + aggregate, JiT on PDSM at the
   fig3 scale shape), fast vs slow. *)
let test_fig3_point () =
  let layout = Workloads.Microbench.pdsm_layout in
  let r_fast, s_fast =
    measure_with ~fastpath:true ~n:20_000 ~layout ~sel:0.1 Engine.Jit
  in
  let r_slow, s_slow =
    measure_with ~fastpath:false ~n:20_000 ~layout ~sel:0.1 Engine.Jit
  in
  Helpers.check_rows "fig3 point rows" r_slow.Engines.Runtime.rows
    r_fast.Engines.Runtime.rows;
  Alcotest.check stats_testable "fig3 point stats" s_slow s_fast

(* ------------------------------------------------------------------ *)
(* Relation.reslice window rules                                       *)
(* ------------------------------------------------------------------ *)

let test_reslice () =
  let cat = Helpers.small_catalog ~n:100 () in
  let rel = Storage.Catalog.find cat "t" in
  Alcotest.check_raises "reslice of a non-view rejected"
    (Invalid_argument "Relation.reslice: not a view") (fun () ->
      Storage.Relation.reslice rel ~lo:0 ~len:10);
  let view = Storage.Relation.with_hier rel (Storage.Relation.hier rel) in
  Storage.Relation.reslice view ~lo:40 ~len:10;
  Alcotest.(check int) "window length" 10 (Storage.Relation.nrows view);
  Alcotest.check Helpers.value_testable "window contents"
    (Storage.Relation.get rel 43 0)
    (Storage.Relation.get view 3 0);
  Storage.Relation.reslice view ~lo:90 ~len:10;
  Alcotest.check Helpers.value_testable "window moved"
    (Storage.Relation.get rel 95 0)
    (Storage.Relation.get view 5 0);
  Alcotest.check_raises "window beyond parent rejected"
    (Invalid_argument
       "Relation.reslice(t): rows [95, 105) out of bounds (parent window \
        holds 100 rows)") (fun () ->
      Storage.Relation.reslice view ~lo:95 ~len:10)

let suite =
  QCheck_alcotest.to_alcotest qcheck_run_identity
  :: QCheck_alcotest.to_alcotest qcheck_run_identity_interleaved
  :: Alcotest.test_case "fig3 point traced fast=slow" `Quick test_fig3_point
  :: Alcotest.test_case "reslice window" `Quick test_reslice
  :: Helpers.across_engines "engine identity" test_engine_identity
