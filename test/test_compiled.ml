(* The compiled engine: C-emitted pipelines must be indistinguishable
   from the interpreted engines — same rows in the same order, NULL and
   overflow semantics included — and must fall back to Jit whenever the
   plan (or the machine) is outside its reach. *)

module V = Storage.Value
module Runtime = Engines.Runtime
module Engine = Engines.Engine
module Compiled = Engines.Compiled
module Metrics = Obs.Metrics

let check_result name (a : Runtime.result) (b : Runtime.result) =
  Alcotest.(check (array string)) (name ^ " columns") a.columns b.columns;
  Helpers.check_rows (name ^ " rows") a.rows b.rows

let counter_value name = Metrics.counter_value (Metrics.counter name)

(* With the compiler forced unavailable, run [f]; restores the env. *)
let without_cc f =
  Unix.putenv "MRDB_NO_CC" "1";
  Compiled.reset_cache ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MRDB_NO_CC" "";
      Compiled.reset_cache ())
    f

(* A nullable mixed-type table exercising every compiled value type. *)
let mixed_catalog ?(n = 321) () =
  let cat = Storage.Catalog.create () in
  let schema =
    Storage.Schema.make_nullable "m"
      [
        ("id", V.Int, false);
        ("grp", V.Int, false);
        ("amount", V.Int, true);
        ("score", V.Float, true);
        ("flag", V.Bool, false);
        ("d", V.Date, false);
      ]
  in
  let rel = Storage.Catalog.add cat schema (Storage.Layout.row schema) in
  Storage.Relation.load rel ~n (fun ~row ->
      [|
        V.VInt row;
        V.VInt (row mod 5);
        (if row mod 11 = 0 then V.Null else V.VInt ((row * 7 mod 113) - 50));
        (if row mod 13 = 0 then V.Null
         else if row mod 17 = 0 then V.VFloat (0.0 /. 0.0)
         else if row mod 19 = 0 then V.VFloat (-0.0)
         else V.VFloat (float_of_int (row mod 29) /. 8.0));
        V.VBool (row mod 3 = 0);
        V.VDate (738000 + (row mod 31));
      |]);
  cat

let parity_queries =
  [
    ("select id, grp, amount from m where id < 30", [||]);
    ("select id + amount s, amount * grp p from m where grp = 2", [||]);
    ("select count(*) c, count(amount) ca, sum(amount) s, avg(amount) a, \
      min(amount) mn, max(amount) mx from m", [||]);
    ("select grp, count(*) c, sum(score) s, min(score) mn, max(score) mx \
      from m group by grp", [||]);
    ("select score, count(*) c from m group by score", [||]);
    ("select flag, d, count(*) c from m group by flag, d limit 23", [||]);
    ("select id from m where score > $1 limit 9", [| V.VInt 1 |]);
    ("select count(*) c from m where amount is null or score is null", [||]);
    ("select grp, avg(d) a from m where not (flag) group by grp", [||]);
    ("select id, amount % 7 r, amount / (id - id) z from m where id < 12",
     [||]);
  ]

let test_parity_vs engine () =
  let cat = mixed_catalog () in
  List.iter
    (fun (sql, params) ->
      let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
      let reference = Engine.run engine cat plan ~params in
      let compiled = Engine.run Engine.Compiled cat plan ~params in
      check_result (Printf.sprintf "[%s] %s" (Engine.name engine) sql)
        reference compiled)
    parity_queries

(* Sums that wrap OCaml's 63-bit native int must wrap the same way in C. *)
let test_overflow_wrap () =
  let cat = Storage.Catalog.create () in
  let schema = Storage.Schema.make "big" [ ("x", V.Int) ] in
  let rel = Storage.Catalog.add cat schema (Storage.Layout.row schema) in
  let near = (max_int / 2) - 3 in
  Storage.Relation.load rel ~n:4 (fun ~row -> [| V.VInt (near + row) |]);
  List.iter
    (fun sql ->
      let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
      let jit = Engines.Jit.run cat plan ~params:[||] in
      let compiled = Compiled.run cat plan ~params:[||] in
      check_result sql jit compiled)
    [
      "select sum(x) s from big";
      "select x + x a, x * x m from big";
      "select sum(x) s from big group by x";
    ]

(* Compressed (encoded) relations are outside the compiled subset: the
   engine must route them through the interpreted fallback and still be
   correct. *)
let test_compressed_fallback () =
  let cat = Storage.Catalog.create () in
  let schema =
    Storage.Schema.make "c" [ ("k", V.Int); ("v", V.Int) ]
  in
  let rows =
    Array.init 200 (fun i -> [| V.VInt (i mod 4); V.VInt (i mod 50) |])
  in
  let encodings = Storage.Compress.plan_rows schema rows in
  Alcotest.(check bool) "table actually encoded" true (encodings <> []);
  let layout =
    Storage.Compress.singleton_layout schema
      (Storage.Layout.row schema)
      encodings
  in
  let rel = Storage.Catalog.add cat ~encodings schema layout in
  Array.iter (fun r -> ignore (Storage.Relation.append rel r)) rows;
  let sql = "select k, count(*) c, sum(v) s from c group by k" in
  let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
  let before = counter_value "mrdb_compiled_fallbacks_total" in
  let jit = Engines.Jit.run cat plan ~params:[||] in
  let compiled = Compiled.run cat plan ~params:[||] in
  check_result sql jit compiled;
  Alcotest.(check bool) "fallback counted" true
    (counter_value "mrdb_compiled_fallbacks_total" > before)

(* MRDB_NO_CC forces the no-compiler path: the engine must degrade to the
   interpreter transparently. *)
let test_no_cc_fallback () =
  let cat = mixed_catalog ~n:77 () in
  let sql = "select grp, count(*) c from m group by grp" in
  let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
  without_cc (fun () ->
      Alcotest.(check bool) "cc reported unavailable" false
        (Compiled.cc_available ());
      let before = counter_value "mrdb_compiled_fallbacks_total" in
      let jit = Engines.Jit.run cat plan ~params:[||] in
      let compiled = Compiled.run cat plan ~params:[||] in
      check_result sql jit compiled;
      Alcotest.(check bool) "fallback counted" true
        (counter_value "mrdb_compiled_fallbacks_total" > before))

(* Re-running the same plan must reuse the object: at most one cc
   invocation per distinct source, and a process-cache hit never touches
   the counters again. *)
let test_cache_hit_counting () =
  if not (Compiled.cc_available ()) then ()
  else begin
    let cat = mixed_catalog ~n:50 () in
    let sql = "select count(*) c from m where id < 49" in
    let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
    Compiled.reset_cache ();
    let h0 = counter_value "mrdb_compiled_cache_hits_total" in
    let m0 = counter_value "mrdb_compiled_cache_misses_total" in
    ignore (Compiled.run cat plan ~params:[||]);
    let h1 = counter_value "mrdb_compiled_cache_hits_total" in
    let m1 = counter_value "mrdb_compiled_cache_misses_total" in
    Alcotest.(check bool) "first run consulted the cache" true
      (h1 + m1 = h0 + m0 + 1);
    ignore (Compiled.run cat plan ~params:[||]);
    Alcotest.(check int) "second run hit the process cache"
      (h1 + m1)
      (counter_value "mrdb_compiled_cache_hits_total"
      + counter_value "mrdb_compiled_cache_misses_total");
    (* dropping the process cache but keeping the objects on disk must
       count a disk hit, not a recompile *)
    Compiled.reset_cache ();
    ignore (Compiled.run cat plan ~params:[||]);
    Alcotest.(check int) "third run hit the disk cache" (h1 + 1)
      (counter_value "mrdb_compiled_cache_hits_total");
    Alcotest.(check int) "no recompile" m1
      (counter_value "mrdb_compiled_cache_misses_total")
  end

(* Morsel-parallel compiled execution goes through Compiled.prepare and
   must agree with the sequential run. *)
let test_parallel_compiled () =
  let cat = mixed_catalog ~n:500 () in
  List.iter
    (fun (sql, params) ->
      let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
      let seq = Engine.run Engine.Compiled cat plan ~params in
      let par =
        Engine.run ~domains:2 ~morsel_size:64 Engine.Compiled cat plan
          ~params
      in
      check_result ("parallel " ^ sql) seq par)
    [
      ("select id, amount from m where grp = 1", [||]);
      ("select id from m where score > 0.5 and flag", [||]);
    ]

let suite =
  [
    Alcotest.test_case "parity vs jit" `Quick (test_parity_vs Engine.Jit);
    Alcotest.test_case "parity vs bulk" `Quick (test_parity_vs Engine.Bulk);
    Alcotest.test_case "overflow-wrap sums" `Quick test_overflow_wrap;
    Alcotest.test_case "compressed layout falls back" `Quick
      test_compressed_fallback;
    Alcotest.test_case "MRDB_NO_CC forces fallback" `Quick
      test_no_cc_fallback;
    Alcotest.test_case "object cache hit/miss counters" `Quick
      test_cache_hit_counting;
    Alcotest.test_case "morsel-parallel compiled" `Quick
      test_parallel_compiled;
  ]
