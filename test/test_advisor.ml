(* Tests for the IP-exact partitioner and the online layout advisor. *)

module V = Storage.Value
module Schema = Storage.Schema
module Layout = Storage.Layout
module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Emit = Costmodel.Emit
module Ip = Layoutopt.Ip
module Advisor = Layoutopt.Advisor
module Wl = Layoutopt.Workload
module Optimizer = Layoutopt.Optimizer
module Rng = Mrdb_util.Rng

(* ------------------------------------------------------------------ *)
(* Random synthetic IP problems (no catalog needed)                    *)
(* ------------------------------------------------------------------ *)

let problem_of_seed ~max_attrs seed =
  let rng = Rng.create (0x1b_0000 + seed) in
  let n_attrs = 1 + Rng.int rng max_attrs in
  let widths = Array.init n_attrs (fun _ -> 1 + Rng.int rng 16) in
  let rows = 1_000 + Rng.int rng 100_000 in
  let n_terms = 1 + Rng.int rng 5 in
  let terms =
    List.init n_terms (fun _ ->
        let n_a = 1 + Rng.int rng n_attrs in
        let attrs =
          List.sort_uniq compare (List.init n_a (fun _ -> Rng.int rng n_attrs))
        in
        let kind =
          match Rng.int rng 3 with
          | 0 -> Emit.Seq
          | 1 -> Emit.Seq_cond (0.01 +. (0.98 *. Rng.float rng))
          | _ -> Emit.Rand
        in
        let touches =
          match kind with
          | Emit.Seq -> rows
          | Emit.Seq_cond s -> max 1 (int_of_float (s *. float_of_int rows))
          | Emit.Rand -> 1 + Rng.int rng 1024
        in
        let weight = float_of_int (1 + Rng.int rng 20) in
        { Ip.attrs; weight; kind; touches })
    |> Array.of_list
  in
  { Ip.n_attrs; widths; rows; terms; params = Memsim.Params.nehalem }

(* the acceptance property: on <=6 attributes the branch-and-bound result
   is exactly the brute-force optimum over all set partitions *)
let qcheck_ip_matches_brute_force =
  QCheck.Test.make ~count:200
    ~name:"IP solve = brute force over all partitions (<=6 attrs, 200 cases)"
    QCheck.small_nat
    (fun seed ->
      let p = problem_of_seed ~max_attrs:6 seed in
      let frontier, _stats = Ip.solve p in
      let _, oracle_cost = Ip.brute_force p in
      match frontier with
      | [] -> false
      | (best_p, best_c) :: rest ->
          (* head is the optimum, restated by the public objective *)
          Float.abs (best_c -. oracle_cost)
            <= 1e-6 *. Float.max 1.0 oracle_cost
          && Float.abs (Ip.objective p best_p -. best_c)
               <= 1e-9 *. Float.max 1.0 best_c
          (* frontier is sorted ascending *)
          && fst
               (List.fold_left
                  (fun (ok, prev) (_, c) -> (ok && prev <= c, c))
                  (true, best_c) rest))

(* partitions produced by the solver are genuine partitions of 0..n-1 *)
let qcheck_ip_solutions_are_partitions =
  QCheck.Test.make ~count:100 ~name:"IP frontier holds valid partitions"
    QCheck.small_nat
    (fun seed ->
      let p = problem_of_seed ~max_attrs:6 seed in
      let frontier, _ = Ip.solve p in
      List.for_all
        (fun (parts, _) ->
          List.concat parts |> List.sort compare
          = List.init p.Ip.n_attrs Fun.id
          && List.for_all (fun g -> g <> []) parts)
        frontier)

(* ------------------------------------------------------------------ *)
(* Random real schemas: Ip is never worse than Bpi on the model cost   *)
(* ------------------------------------------------------------------ *)

let random_catalog_and_mix seed =
  let rng = Rng.create (0xad_0000 + seed) in
  let n_cols = 6 + Rng.int rng 4 in
  let names = List.init n_cols (fun i -> Printf.sprintf "C%d" i) in
  let schema = Schema.make "T" (List.map (fun n -> (n, V.Int)) names) in
  let cat = Catalog.create () in
  let rel = Catalog.add cat schema (Layout.row schema) in
  let n = 2_000 + Rng.int rng 8_000 in
  Relation.load_int_rows rel ~n (fun ~row dst ->
      ignore row;
      for i = 0 to n_cols - 1 do
        dst.(i) <- Rng.int rng 1000
      done);
  let random_cols () =
    let k = 1 + Rng.int rng (n_cols - 1) in
    List.sort_uniq compare (List.init k (fun _ -> Rng.int rng n_cols))
  in
  let query () =
    let sel = 0.002 +. (Rng.float rng *. 0.5) in
    let pred_col = Rng.int rng n_cols in
    let pred =
      Relalg.Expr.Cmp
        (Relalg.Expr.Lt, Relalg.Expr.Col pred_col, Relalg.Expr.Param 1)
    in
    let cols = random_cols () in
    let logical =
      Relalg.Plan.Project
        ( Relalg.Plan.Select (Relalg.Plan.Scan "T", pred),
          List.map
            (fun c -> (Relalg.Expr.Col c, Printf.sprintf "C%d" c))
            cols )
    in
    let plan =
      Relalg.Planner.plan
        ~estimate:(fun e -> if e = pred then Some sel else None)
        cat logical
    in
    (plan, float_of_int (1 + Rng.int rng 10))
  in
  let mix = List.init (1 + Rng.int rng 3) (fun _ -> query ()) in
  (cat, mix)

let qcheck_ip_never_worse_than_bpi =
  QCheck.Test.make ~count:12
    ~name:"Ip never worse than Bpi on random schemas/workloads"
    QCheck.small_nat
    (fun seed ->
      let cat, mix = random_catalog_and_mix seed in
      let ip = Optimizer.optimize_table ~algorithm:Optimizer.Ip cat "T" mix in
      let bpi =
        Optimizer.optimize_table ~algorithm:(Optimizer.Bpi 0.005) cat "T" mix
      in
      ip.Optimizer.estimated_cost <= bpi.Optimizer.estimated_cost +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Empty-input edge cases                                              *)
(* ------------------------------------------------------------------ *)

let test_percentile_empty_histogram () =
  let h = Obs.Metrics.histogram "test_advisor_empty_hist" in
  Alcotest.(check (float 1e-9)) "p50 of empty histogram" 0.0
    (Obs.Metrics.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "p99 of empty histogram" 0.0
    (Obs.Metrics.percentile h 99.0);
  Alcotest.(check int) "still empty" 0 (Obs.Metrics.histogram_count h)

let test_copy_cost_empty_table () =
  let cat = Catalog.create () in
  let schema = Schema.make "E" [ ("A", V.Int); ("B", V.Int) ] in
  let _ = Catalog.add cat schema (Layout.row schema) in
  Alcotest.(check (float 1e-9)) "zero-row table reorganizes for free" 0.0
    (Layoutopt.Adaptive.copy_cost cat "E")

let test_ip_empty_table_and_schema () =
  (* zero rows: every partitioning costs 0 and solve still terminates *)
  let cat = Catalog.create () in
  let schema = Schema.make "E" [ ("A", V.Int); ("B", V.Int) ] in
  let _ = Catalog.add cat schema (Layout.row schema) in
  let p = Ip.problem_of_workload cat "E" [] in
  Alcotest.(check int) "no terms from an empty mix" 0 (Array.length p.Ip.terms);
  let frontier, _ = Ip.solve p in
  Alcotest.(check bool) "solver returns candidates" true (frontier <> []);
  List.iter
    (fun (parts, c) ->
      Alcotest.(check (float 1e-9)) "all zero cost" 0.0 c;
      Alcotest.(check (float 1e-9)) "objective agrees" 0.0 (Ip.objective p parts))
    frontier

(* ------------------------------------------------------------------ *)
(* Workload window                                                     *)
(* ------------------------------------------------------------------ *)

let test_workload_window_merging_and_eviction () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:1_000 () in
  let scan1 = Workloads.Microbench.plan cat ~sel:0.01 in
  let scan2 = Workloads.Microbench.plan cat ~sel:0.5 in
  let w = Wl.create ~window:4 () in
  Alcotest.(check int) "empty" 0 (Wl.size w);
  Wl.observe w scan1;
  Wl.observe w scan1;
  Wl.observe w scan2;
  let freqs =
    Wl.mix w |> List.map snd |> List.sort compare
  in
  Alcotest.(check (list (float 1e-9))) "merged frequencies" [ 1.0; 2.0 ] freqs;
  Alcotest.(check (list string)) "touched tables" [ "R" ] (Wl.tables cat w);
  (* eviction keeps the newest [window] plans *)
  for _ = 1 to 10 do
    Wl.observe w scan2
  done;
  Alcotest.(check int) "bounded" 4 (Wl.size w);
  Alcotest.(check int) "total observations keep counting" 13 (Wl.observed w);
  Alcotest.(check int) "old plans evicted" 1 (List.length (Wl.mix w));
  Wl.clear w;
  Alcotest.(check int) "cleared" 0 (Wl.size w)

let test_workload_descs_surface () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:1_000 () in
  let w = Wl.create () in
  Wl.observe w (Workloads.Microbench.plan cat ~sel:0.01);
  match Wl.descs cat w with
  | [ (table, ds) ] ->
      Alcotest.(check string) "table" "R" table;
      Alcotest.(check bool) "has descriptors" true (ds <> []);
      List.iter
        (fun ((d : Emit.access_desc), freq) ->
          Alcotest.(check bool) "positive touches" true (d.Emit.touches >= 1);
          Alcotest.(check bool) "positive freq" true (freq >= 1.0))
        ds
  | other ->
      Alcotest.failf "expected one table, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Advisor loop                                                        *)
(* ------------------------------------------------------------------ *)

let test_recommend_scan_mix_profitable () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:50_000 () in
  let mix = [ (Workloads.Microbench.plan cat ~sel:0.01, 64.0) ] in
  let recs = Advisor.recommend ~min_benefit:0.01 ~horizon:50.0 cat mix in
  match recs with
  | [ r ] ->
      Alcotest.(check string) "table" "R" r.Advisor.table;
      Alcotest.(check bool) "proposes decomposition" false
        (Layout.is_row r.Advisor.proposed_layout);
      Alcotest.(check bool) "profitable" true r.Advisor.profitable;
      Alcotest.(check bool) "cheaper than current" true
        (r.Advisor.proposed_cost < r.Advisor.current_cost);
      Alcotest.(check bool) "copy cost accounted" true (r.Advisor.copy_cost > 0.0);
      (* recommend never mutates *)
      Alcotest.(check bool) "catalog untouched" true
        (Layout.is_row (Relation.layout (Catalog.find cat "R")))
  | other -> Alcotest.failf "expected one recommendation, got %d" (List.length other)

let test_apply_then_stable () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:50_000 () in
  let adv = Advisor.create ~min_benefit:0.01 ~horizon:50.0 cat in
  let scan = Workloads.Microbench.plan cat ~sel:0.01 in
  for _ = 1 to 16 do
    Wl.observe (Advisor.workload adv) scan
  done;
  let applied = Advisor.apply adv (Advisor.advise adv) in
  Alcotest.(check bool) "repartitioned" true (applied <> []);
  Alcotest.(check bool) "layout changed" false
    (Layout.is_row (Relation.layout (Catalog.find cat "R")));
  (* second pass: nothing left to do *)
  let again = Advisor.apply adv (Advisor.advise adv) in
  Alcotest.(check int) "stable after apply" 0 (List.length again);
  Alcotest.(check int) "history kept" 1 (List.length (Advisor.applied adv));
  (* data unharmed: the query still answers *)
  let r =
    Engines.Engine.run Engines.Engine.Jit cat
      (Workloads.Microbench.plan cat ~sel:0.01)
      ~params:(Workloads.Microbench.params ~sel:0.01)
  in
  Alcotest.(check int) "aggregate row present" 1
    (List.length r.Engines.Runtime.rows)

let test_observe_repartitions_on_drift () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:50_000 () in
  let adv =
    Advisor.create ~window:64 ~check_every:16 ~min_benefit:0.01 ~horizon:50.0
      cat
  in
  let scan = Workloads.Microbench.plan cat ~sel:0.01 in
  let events = ref [] in
  for _ = 1 to 64 do
    events := !events @ Advisor.observe adv scan
  done;
  Alcotest.(check bool) "repartitioned on drift" true (!events <> []);
  Alcotest.(check bool) "no longer a pure row store" false
    (Layout.is_row (Relation.layout (Catalog.find cat "R")))

let test_stale_recommendation_not_applied () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:50_000 () in
  let adv = Advisor.create ~min_benefit:0.01 ~horizon:50.0 cat in
  let scan = Workloads.Microbench.plan cat ~sel:0.01 in
  for _ = 1 to 16 do
    Wl.observe (Advisor.workload adv) scan
  done;
  let recs = Advisor.advise adv in
  (* the catalog moves underneath the advisor before it applies *)
  Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let applied = Advisor.apply adv recs in
  Alcotest.(check int) "stale advice dropped" 0 (List.length applied);
  Alcotest.(check bool) "layout is the concurrent writer's" true
    (Layout.equal Workloads.Microbench.pdsm_layout
       (Relation.layout (Catalog.find cat "R")))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_ip_matches_brute_force;
    QCheck_alcotest.to_alcotest qcheck_ip_solutions_are_partitions;
    QCheck_alcotest.to_alcotest qcheck_ip_never_worse_than_bpi;
    Alcotest.test_case "percentile of empty histogram is 0" `Quick
      test_percentile_empty_histogram;
    Alcotest.test_case "copy cost of empty table is 0" `Quick
      test_copy_cost_empty_table;
    Alcotest.test_case "IP handles empty tables" `Quick
      test_ip_empty_table_and_schema;
    Alcotest.test_case "workload window merges and evicts" `Quick
      test_workload_window_merging_and_eviction;
    Alcotest.test_case "workload descriptors surface" `Quick
      test_workload_descs_surface;
    Alcotest.test_case "recommend: scan mix is profitable" `Quick
      test_recommend_scan_mix_profitable;
    Alcotest.test_case "apply then stable" `Quick test_apply_then_stable;
    Alcotest.test_case "observe repartitions on drift" `Quick
      test_observe_repartitions_on_drift;
    Alcotest.test_case "stale recommendation not applied" `Quick
      test_stale_recommendation_not_applied;
  ]
