(* Tests for the storage layer: values, schemas, layouts, buffers,
   relations, repartitioning. *)

module V = Storage.Value
module Schema = Storage.Schema
module Layout = Storage.Layout
module Buffer = Storage.Buffer
module Relation = Storage.Relation

let test_value_widths () =
  Alcotest.(check int) "int" 8 (V.data_width V.Int);
  Alcotest.(check int) "float" 8 (V.data_width V.Float);
  Alcotest.(check int) "bool" 1 (V.data_width V.Bool);
  Alcotest.(check int) "varchar" 12 (V.data_width (V.Varchar 12))

let test_value_compare_numeric () =
  Alcotest.(check bool) "int < int" true (V.compare (V.VInt 1) (V.VInt 2) < 0);
  Alcotest.(check bool) "int = float" true
    (V.compare (V.VInt 2) (V.VFloat 2.0) = 0);
  Alcotest.(check bool) "null first" true (V.compare V.Null (V.VInt (-100)) < 0)

let test_value_hash_consistent () =
  Alcotest.(check int) "equal values hash equal" (V.hash (V.VStr "abc"))
    (V.hash (V.VStr "abc"))

let test_like () =
  let s = V.VStr "hello world" in
  Alcotest.(check bool) "prefix" true (V.like s ~pattern:"hello%");
  Alcotest.(check bool) "suffix" true (V.like s ~pattern:"%world");
  Alcotest.(check bool) "infix" true (V.like s ~pattern:"%lo wo%");
  Alcotest.(check bool) "underscore" true (V.like s ~pattern:"hell_ world");
  Alcotest.(check bool) "exact" true (V.like s ~pattern:"hello world");
  Alcotest.(check bool) "no match" false (V.like s ~pattern:"world%");
  Alcotest.(check bool) "too short underscore" false (V.like s ~pattern:"___");
  Alcotest.(check bool) "empty pattern vs empty" true (V.like (V.VStr "") ~pattern:"");
  Alcotest.(check bool) "percent matches empty" true (V.like (V.VStr "") ~pattern:"%");
  Alcotest.(check bool) "null never matches" false (V.like V.Null ~pattern:"%")

(* reference LIKE implementation by brute-force regex-free recursion *)
let rec like_ref p s pi si =
  if pi = String.length p then si = String.length s
  else
    match p.[pi] with
    | '%' ->
        like_ref p s (pi + 1) si
        || (si < String.length s && like_ref p s pi (si + 1))
    | '_' -> si < String.length s && like_ref p s (pi + 1) (si + 1)
    | c -> si < String.length s && s.[si] = c && like_ref p s (pi + 1) (si + 1)

let qcheck_like =
  let pattern_gen =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; 'b'; '%'; '_' ]) (int_bound 8))
  in
  let str_gen =
    QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_bound 8))
  in
  QCheck.Test.make ~count:2000 ~name:"LIKE agrees with reference matcher"
    (QCheck.make QCheck.Gen.(pair pattern_gen str_gen))
    (fun (p, s) -> V.like (V.VStr s) ~pattern:p = like_ref p s 0 0)

let test_schema_lookup () =
  let s = Helpers.small_schema in
  Alcotest.(check int) "arity" 5 (Schema.arity s);
  Alcotest.(check int) "index of name" 3 (Schema.attr_index s "name");
  Alcotest.check_raises "unknown attribute" Not_found (fun () ->
      ignore (Schema.attr_index s "nope"))

let test_schema_row_width () =
  (* id 8 + grp 8 + amount 8 + name 12 + score 8 = 44 *)
  Alcotest.(check int) "row width" 44 (Schema.row_width Helpers.small_schema)

let test_layout_row_column () =
  let s = Helpers.small_schema in
  Alcotest.(check bool) "row is row" true (Layout.is_row (Layout.row s));
  Alcotest.(check bool) "column is column" true
    (Layout.is_column (Layout.column s));
  Alcotest.(check bool) "row is not column" false
    (Layout.is_column (Layout.row s));
  Alcotest.(check int) "column partitions" 5
    (Layout.n_partitions (Layout.column s))

let test_layout_validation () =
  let s = Helpers.small_schema in
  Alcotest.check_raises "missing attribute"
    (Invalid_argument "Layout: attribute 4 not covered") (fun () ->
      ignore (Layout.of_indices s [ [ 0; 1 ]; [ 2; 3 ] ]));
  Alcotest.check_raises "duplicate attribute"
    (Invalid_argument "Layout: attribute 0 in two partitions") (fun () ->
      ignore (Layout.of_indices s [ [ 0; 1 ]; [ 0; 2; 3; 4 ] ]))

let test_layout_equal_modulo_order () =
  let s = Helpers.small_schema in
  let a = Layout.of_indices s [ [ 0; 1 ]; [ 2; 3; 4 ] ] in
  let b = Layout.of_indices s [ [ 4; 3; 2 ]; [ 1; 0 ] ] in
  Alcotest.(check bool) "equal up to order" true (Layout.equal a b);
  let c = Layout.of_indices s [ [ 0 ]; [ 1 ]; [ 2; 3; 4 ] ] in
  Alcotest.(check bool) "different" false (Layout.equal a c)

let test_layout_kind_label () =
  let s = Helpers.small_schema in
  Alcotest.(check string) "row" "row" (Layout.kind_label (Layout.row s));
  Alcotest.(check string) "column" "column" (Layout.kind_label (Layout.column s));
  Alcotest.(check string) "hybrid" "hybrid(2)"
    (Layout.kind_label (Layout.of_indices s [ [ 0; 1 ]; [ 2; 3; 4 ] ]))

let test_buffer_roundtrip () =
  let arena = Storage.Arena.create () in
  let b = Buffer.create arena 256 in
  Buffer.write_int b 0 42;
  Buffer.write_int b 8 (-7);
  Buffer.write_float b 16 3.25;
  Buffer.write_string b 24 ~len:10 "hello";
  Buffer.write_byte b 40 200;
  Alcotest.(check int) "int" 42 (Buffer.read_int b 0);
  Alcotest.(check int) "negative int" (-7) (Buffer.read_int b 8);
  Alcotest.(check (float 0.0)) "float" 3.25 (Buffer.read_float b 16);
  Alcotest.(check string) "string stripped" "hello" (Buffer.read_string b 24 ~len:10);
  Alcotest.(check int) "byte" 200 (Buffer.read_byte b 40)

let test_buffer_string_truncation () =
  let arena = Storage.Arena.create () in
  let b = Buffer.create arena 64 in
  Buffer.write_string b 0 ~len:4 "truncated";
  Alcotest.(check string) "truncated to len" "trun" (Buffer.read_string b 0 ~len:4)

let test_buffer_grow_preserves () =
  let arena = Storage.Arena.create () in
  let b = Buffer.create arena 16 in
  Buffer.write_int b 0 123;
  let old_base = Buffer.base b in
  Buffer.grow b 1024;
  Alcotest.(check int) "contents preserved" 123 (Buffer.read_int b 0);
  Alcotest.(check bool) "moved to new region" true (Buffer.base b <> old_base);
  Alcotest.(check bool) "larger" true (Buffer.size b >= 1024)

let test_buffer_nullable_value () =
  let arena = Storage.Arena.create () in
  let b = Buffer.create arena 64 in
  Buffer.write_value b 0 ~ty:V.Int ~nullable:true V.Null;
  Alcotest.(check Helpers.value_testable) "null roundtrip" V.Null
    (Buffer.read_value b 0 ~ty:V.Int ~nullable:true);
  Buffer.write_value b 16 ~ty:V.Int ~nullable:true (V.VInt 5);
  Alcotest.(check Helpers.value_testable) "non-null roundtrip" (V.VInt 5)
    (Buffer.read_value b 16 ~ty:V.Int ~nullable:true)

let test_buffer_null_into_non_nullable () =
  let arena = Storage.Arena.create () in
  let b = Buffer.create arena 64 in
  Alcotest.check_raises "rejects null"
    (Invalid_argument "Buffer.write_value: NULL into non-nullable attribute")
    (fun () -> Buffer.write_value b 0 ~ty:V.Int ~nullable:false V.Null)

let test_arena_no_overlap () =
  let arena = Storage.Arena.create () in
  let a = Storage.Arena.alloc arena 100 in
  let b = Storage.Arena.alloc arena 100 in
  Alcotest.(check bool) "disjoint regions" true (b >= a + 100);
  Alcotest.(check int) "page aligned" 0 (a mod 4096)

let all_layouts schema =
  [
    Layout.row schema;
    Layout.column schema;
    Layout.of_indices schema [ [ 0; 2 ]; [ 1; 3 ]; [ 4 ] ];
  ]

let test_relation_roundtrip_all_layouts () =
  List.iter
    (fun layout ->
      let hier = Memsim.Hierarchy.create () in
      let cat = Storage.Catalog.create ~hier () in
      let rel = Storage.Catalog.add cat Helpers.small_schema layout in
      Helpers.fill_small rel 100;
      Alcotest.(check int) "nrows" 100 (Relation.nrows rel);
      for tid = 0 to 99 do
        Alcotest.(check Helpers.row_testable)
          (Printf.sprintf "tuple %d" tid)
          [|
            V.VInt tid;
            V.VInt (tid mod 7);
            V.VInt (tid * 3 mod 101);
            V.VStr (Printf.sprintf "name%03d" (tid mod 50));
            V.VFloat (float_of_int (tid mod 13) /. 4.0);
          |]
          (Relation.get_tuple rel tid)
      done)
    (all_layouts Helpers.small_schema)

let test_relation_set () =
  let cat = Helpers.small_catalog ~n:10 () in
  let rel = Storage.Catalog.find cat "t" in
  Relation.set rel 3 2 (V.VInt 9999);
  Alcotest.(check Helpers.value_testable) "updated" (V.VInt 9999)
    (Relation.get rel 3 2);
  Alcotest.(check Helpers.value_testable) "neighbour untouched" (V.VInt 3)
    (Relation.get rel 1 2)

let test_relation_growth () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let rel =
    Relation.create ~hier ~capacity:4 (Storage.Catalog.arena cat)
      Helpers.small_schema
      (Layout.row Helpers.small_schema)
  in
  Helpers.fill_small rel 1000;
  Alcotest.(check int) "grew past capacity" 1000 (Relation.nrows rel);
  Alcotest.(check Helpers.value_testable) "late tuple intact" (V.VInt 999)
    (Relation.get rel 999 0)

let test_relation_addresses_follow_layout () =
  let cat =
    Helpers.small_catalog ~n:10
      ~layout:[ [ "id"; "grp" ]; [ "amount"; "name"; "score" ] ]
      ()
  in
  let rel = Storage.Catalog.find cat "t" in
  (* id and grp share a 16-byte partition tuple *)
  Alcotest.(check int) "id->grp offset" 8
    (Relation.addr rel 0 1 - Relation.addr rel 0 0);
  Alcotest.(check int) "next tuple stride" 16
    (Relation.addr rel 1 0 - Relation.addr rel 0 0);
  (* amount..score partition is 28 bytes wide *)
  Alcotest.(check int) "second partition stride" 28
    (Relation.addr rel 1 2 - Relation.addr rel 0 2)

let test_repartition_preserves_data () =
  let cat = Helpers.small_catalog ~n:200 () in
  let rel = Storage.Catalog.find cat "t" in
  let before = List.init 200 (Relation.get_tuple rel) in
  Storage.Catalog.set_layout cat "t"
    (Layout.of_names Helpers.small_schema
       [ [ "score"; "id" ]; [ "grp" ]; [ "amount"; "name" ] ]);
  let rel' = Storage.Catalog.find cat "t" in
  let after = List.init 200 (Relation.get_tuple rel') in
  Helpers.check_rows "same tuples" before after

(* ------------------------------------------------------------------ *)
(* Slice / reslice boundaries                                          *)
(* ------------------------------------------------------------------ *)

let test_slice_boundaries () =
  let cat = Helpers.small_catalog ~n:50 () in
  let rel = Storage.Catalog.find cat "t" in
  (* zero-length slices are legal at every position, including both ends *)
  List.iter
    (fun lo ->
      let s = Relation.slice rel ~lo ~len:0 in
      Alcotest.(check int)
        (Printf.sprintf "empty slice at %d" lo)
        0 (Relation.nrows s))
    [ 0; 25; 50 ];
  (* a full-width slice is the identity on contents *)
  let full = Relation.slice rel ~lo:0 ~len:50 in
  Alcotest.(check int) "full slice length" 50 (Relation.nrows full);
  Alcotest.(check Helpers.row_testable) "full slice last tuple"
    (Relation.get_tuple rel 49) (Relation.get_tuple full 49);
  (* one-row slices at both extremes *)
  let first = Relation.slice rel ~lo:0 ~len:1 in
  let last = Relation.slice rel ~lo:49 ~len:1 in
  Alcotest.(check Helpers.value_testable) "first row" (V.VInt 0)
    (Relation.get first 0 0);
  Alcotest.(check Helpers.value_testable) "last row" (V.VInt 49)
    (Relation.get last 0 0)

let test_slice_of_slice () =
  let cat = Helpers.small_catalog ~n:100 () in
  let rel = Storage.Catalog.find cat "t" in
  let mid = Relation.slice rel ~lo:20 ~len:60 in
  (* nested slice pinned to the parent's low end: tuple 0 = base row 20 *)
  let lo_end = Relation.slice mid ~lo:0 ~len:5 in
  Alcotest.(check Helpers.value_testable) "low-end nested origin" (V.VInt 20)
    (Relation.get lo_end 0 0);
  (* nested slice pinned to the parent's high end: last tuple = base row 79 *)
  let hi_end = Relation.slice mid ~lo:55 ~len:5 in
  Alcotest.(check Helpers.value_testable) "high-end nested last" (V.VInt 79)
    (Relation.get hi_end 4 0);
  (* zero-length nested slice exactly at the parent's upper bound *)
  let empty = Relation.slice mid ~lo:60 ~len:0 in
  Alcotest.(check int) "empty at parent bound" 0 (Relation.nrows empty)

let test_reslice_boundaries () =
  let cat = Helpers.small_catalog ~n:30 () in
  let rel = Storage.Catalog.find cat "t" in
  let view = Relation.with_hier rel (Relation.hier rel) in
  (* reslice to a zero-length window, then back out to the full relation *)
  Relation.reslice view ~lo:0 ~len:0;
  Alcotest.(check int) "zero window" 0 (Relation.nrows view);
  Relation.reslice view ~lo:0 ~len:30;
  Alcotest.(check int) "full window again" 30 (Relation.nrows view);
  (* zero-length window at the far end is the last legal position *)
  Relation.reslice view ~lo:30 ~len:0;
  Alcotest.(check int) "empty at end" 0 (Relation.nrows view);
  Relation.reslice view ~lo:29 ~len:1;
  Alcotest.(check Helpers.value_testable) "final row window" (V.VInt 29)
    (Relation.get view 0 0)

let qcheck_relation_roundtrip =
  QCheck.Test.make ~count:100
    ~name:"relation stores arbitrary int/string tuples under random layouts"
    QCheck.(
      triple (small_list (pair small_int (string_of_size (QCheck.Gen.int_bound 10))))
        small_int small_int)
    (fun (rows, seed, _) ->
      let schema =
        Storage.Schema.make "q" [ ("a", V.Int); ("b", V.Varchar 10) ]
      in
      let rng = Mrdb_util.Rng.create seed in
      let layout =
        if Mrdb_util.Rng.bool rng 0.5 then Layout.row schema
        else Layout.column schema
      in
      let cat = Storage.Catalog.create () in
      let rel = Storage.Catalog.add cat schema layout in
      (* zero-strip: stored strings lose NUL padding, so compare stripped *)
      let sanitize s =
        match String.index_opt s '\000' with
        | Some i -> String.sub s 0 i
        | None -> s
      in
      List.iter
        (fun (a, b) -> ignore (Relation.append rel [| V.VInt a; V.VStr b |]))
        rows;
      List.for_all2
        (fun (a, b) tid ->
          V.equal (Relation.get rel tid 0) (V.VInt a)
          && V.equal (Relation.get rel tid 1) (V.VStr (sanitize b)))
        rows
        (List.init (List.length rows) Fun.id))

let suite =
  [
    Alcotest.test_case "value widths" `Quick test_value_widths;
    Alcotest.test_case "value compare" `Quick test_value_compare_numeric;
    Alcotest.test_case "value hash" `Quick test_value_hash_consistent;
    Alcotest.test_case "LIKE matcher" `Quick test_like;
    QCheck_alcotest.to_alcotest qcheck_like;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    Alcotest.test_case "schema row width" `Quick test_schema_row_width;
    Alcotest.test_case "layout row/column" `Quick test_layout_row_column;
    Alcotest.test_case "layout validation" `Quick test_layout_validation;
    Alcotest.test_case "layout equality" `Quick test_layout_equal_modulo_order;
    Alcotest.test_case "layout labels" `Quick test_layout_kind_label;
    Alcotest.test_case "buffer roundtrip" `Quick test_buffer_roundtrip;
    Alcotest.test_case "buffer truncation" `Quick test_buffer_string_truncation;
    Alcotest.test_case "buffer grow" `Quick test_buffer_grow_preserves;
    Alcotest.test_case "buffer nullable" `Quick test_buffer_nullable_value;
    Alcotest.test_case "buffer null guard" `Quick test_buffer_null_into_non_nullable;
    Alcotest.test_case "arena disjoint" `Quick test_arena_no_overlap;
    Alcotest.test_case "relation roundtrip x layouts" `Quick
      test_relation_roundtrip_all_layouts;
    Alcotest.test_case "relation set" `Quick test_relation_set;
    Alcotest.test_case "relation growth" `Quick test_relation_growth;
    Alcotest.test_case "relation addresses" `Quick
      test_relation_addresses_follow_layout;
    Alcotest.test_case "repartition preserves data" `Quick
      test_repartition_preserves_data;
    QCheck_alcotest.to_alcotest qcheck_relation_roundtrip;
    Alcotest.test_case "slice boundaries" `Quick test_slice_boundaries;
    Alcotest.test_case "slice of slice" `Quick test_slice_of_slice;
    Alcotest.test_case "reslice boundaries" `Quick test_reslice_boundaries;
  ]
