(* Engine tests: each engine individually against golden results, all four
   engines against each other (including property-based random queries), and
   the cost-accounting invariants the paper's comparison rests on. *)

module V = Storage.Value
module Engine = Engines.Engine
module Runtime = Engines.Runtime

let engines = Engine.all

let golden_filter_expected =
  (* grp = 3 -> rows 3, 10, 17, ... *)
  let rec go tid acc =
    if tid >= 100 then List.rev acc
    else if tid mod 7 = 3 then go (tid + 1) (V.VInt tid :: acc)
    else go (tid + 1) acc
  in
  List.map (fun v -> [| v |]) (go 0 [])

let test_filter_golden engine () =
  let cat = Helpers.small_catalog ~n:100 () in
  let r =
    Helpers.run_sql ~engine ~params:[| V.VInt 3 |] cat
      "select id from t where grp = $1"
  in
  Helpers.check_rows "filtered ids" golden_filter_expected
    r.Runtime.rows

let test_aggregate_golden engine () =
  let cat = Helpers.small_catalog ~n:100 () in
  let r =
    Helpers.run_sql ~engine cat
      "select count(*) c, sum(amount) s, min(id) mn, max(id) mx from t"
  in
  let amount_sum =
    List.fold_left (fun acc i -> acc + (i * 3 mod 101)) 0 (List.init 100 Fun.id)
  in
  Helpers.check_rows "global aggregate"
    [ [| V.VInt 100; V.VInt amount_sum; V.VInt 0; V.VInt 99 |] ]
    r.Runtime.rows

let test_group_by_golden engine () =
  let cat = Helpers.small_catalog ~n:70 () in
  let r =
    Helpers.run_sql ~engine cat
      "select grp, count(*) c from t group by grp order by grp"
  in
  Helpers.check_rows "balanced groups"
    (List.init 7 (fun g -> [| V.VInt g; V.VInt 10 |]))
    r.Runtime.rows

let test_empty_aggregate engine () =
  let cat = Helpers.small_catalog ~n:50 () in
  let r =
    Helpers.run_sql ~engine ~params:[| V.VInt (-1) |] cat
      "select count(*) c, sum(amount) s from t where grp = $1"
  in
  Helpers.check_rows "count 0, sum null"
    [ [| V.VInt 0; V.Null |] ]
    r.Runtime.rows

let test_join_golden engine () =
  let cat = Helpers.join_catalog ~n_orders:60 ~n_customers:10 () in
  let r =
    Helpers.run_sql ~engine cat
      "select region, count(*) c from cust join ord on cid = ocid group by \
       region order by region"
  in
  (* 10 customers in 4 regions: r0 x {0,4,8}, r1 x {1,5,9}, r2 x {2,6},
     r3 x {3,7}; 60 orders round-robin over customers = 6 per customer *)
  Helpers.check_rows "join group counts"
    [
      [| V.VStr "r0"; V.VInt 18 |];
      [| V.VStr "r1"; V.VInt 18 |];
      [| V.VStr "r2"; V.VInt 12 |];
      [| V.VStr "r3"; V.VInt 12 |];
    ]
    r.Runtime.rows

let test_sort_limit engine () =
  let cat = Helpers.small_catalog ~n:30 () in
  let r =
    Helpers.run_sql ~engine cat
      "select id from t order by id desc limit 4"
  in
  Helpers.check_rows "top 4 desc"
    [ [| V.VInt 29 |]; [| V.VInt 28 |]; [| V.VInt 27 |]; [| V.VInt 26 |] ]
    r.Runtime.rows

let test_insert engine () =
  let cat = Helpers.small_catalog ~n:5 () in
  ignore
    (Helpers.run_sql ~engine cat
       "insert into t values (100, 1, 2, 'inserted', 0.5)");
  let rel = Storage.Catalog.find cat "t" in
  Alcotest.(check int) "row appended" 6 (Storage.Relation.nrows rel);
  Alcotest.(check Helpers.value_testable) "value stored" (V.VStr "inserted")
    (Storage.Relation.get rel 5 3)

let test_projection_expressions engine () =
  let cat = Helpers.small_catalog ~n:10 () in
  let r =
    Helpers.run_sql ~engine cat "select id + 1 inc, id * 2 dbl from t where id < 3"
  in
  Helpers.check_rows "computed columns"
    [
      [| V.VInt 1; V.VInt 0 |];
      [| V.VInt 2; V.VInt 2 |];
      [| V.VInt 3; V.VInt 4 |];
    ]
    r.Runtime.rows

let test_like_predicate engine () =
  let cat = Helpers.small_catalog ~n:60 () in
  let r =
    Helpers.run_sql ~engine ~params:[| V.VStr "name00_" |] cat
      "select count(*) c from t where name like $1"
  in
  (* names cycle over name000..name049; name00_ matches name000..name009,
     60 rows cover name000..name049 once and name000..name009 again *)
  Helpers.check_rows "like matches" [ [| V.VInt 20 |] ] r.Runtime.rows

(* ------------------------------------------------------------------ *)
(* Aggregate edge cases (fuzz-harness companions)                      *)
(* ------------------------------------------------------------------ *)

(* A tiny nullable table whose [v] column is entirely NULL. *)
let nullable_catalog n =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let schema =
    Storage.Schema.make_nullable "nt"
      [ ("k", V.Int, false); ("v", V.Int, true) ]
  in
  let rel = Storage.Catalog.add cat schema (Storage.Layout.row schema) in
  Storage.Relation.load rel ~n (fun ~row -> [| V.VInt (row mod 3); V.Null |]);
  cat

let test_grouped_aggregate_empty_input engine () =
  (* grouped aggregates over an empty input emit NO rows (unlike the global
     aggregate, which emits one initial-accumulator row) *)
  let cat = Helpers.small_catalog ~n:40 () in
  let r =
    Helpers.run_sql ~engine ~params:[| V.VInt (-1) |] cat
      "select grp, count(*) c, sum(amount) s from t where id = $1 group by grp"
  in
  Helpers.check_rows "no groups from empty input" [] r.Runtime.rows

let test_all_null_aggregates engine () =
  let cat = nullable_catalog 9 in
  let r =
    Helpers.run_sql ~engine cat
      "select count(*) cs, count(v) c, sum(v) s, min(v) mn, max(v) mx, \
       avg(v) a from nt"
  in
  (* count(v) skips NULLs; every other NULL-fed aggregate yields NULL *)
  Helpers.check_rows "all-NULL column"
    [ [| V.VInt 9; V.VInt 0; V.Null; V.Null; V.Null; V.Null |] ]
    r.Runtime.rows

let test_single_row_aggregates engine () =
  let cat = Helpers.small_catalog ~n:1 () in
  let r =
    Helpers.run_sql ~engine cat
      "select grp, count(*) c, sum(amount) s, min(id) mn, max(id) mx, \
       avg(score) a from t group by grp"
  in
  Helpers.check_rows "single-row group"
    [ [| V.VInt 0; V.VInt 1; V.VInt 0; V.VInt 0; V.VInt 0; V.VFloat 0.0 |] ]
    r.Runtime.rows

let test_group_by_every_column engine () =
  (* keying on every column makes each of the n distinct rows its own
     group; the aggregate degenerates to the identity *)
  let n = 23 in
  let cat = Helpers.small_catalog ~n () in
  let r =
    Helpers.run_sql ~engine cat
      "select id, grp, amount, name, score, count(*) c from t group by id, \
       grp, amount, name, score order by id"
  in
  Alcotest.(check int) "one group per row" n (List.length r.Runtime.rows);
  List.iteri
    (fun i row ->
      Alcotest.(check Helpers.value_testable) "key is row id" (V.VInt i) row.(0);
      Alcotest.(check Helpers.value_testable) "all groups singleton"
        (V.VInt 1) row.(5))
    r.Runtime.rows

let test_overflow_adjacent_sum engine () =
  (* sums flirting with max_int must wrap identically everywhere (OCaml
     ints wrap silently; the invariant is cross-engine identity, which the
     fuzzer's Big_int distribution also leans on) *)
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let schema = Storage.Schema.make "big" [ ("x", V.Int) ] in
  let rel = Storage.Catalog.add cat schema (Storage.Layout.row schema) in
  let near = (max_int / 2) - 3 in
  Storage.Relation.load rel ~n:4 (fun ~row -> [| V.VInt (near + row) |]);
  let r = Helpers.run_sql ~engine cat "select sum(x) s from big" in
  let expected = (4 * near) + 6 in
  Helpers.check_rows "wrapped sum identical"
    [ [| V.VInt expected |] ]
    r.Runtime.rows

let per_engine = Helpers.across_engines

(* ------------------------------------------------------------------ *)
(* Cross-engine equivalence                                            *)
(* ------------------------------------------------------------------ *)

let queries_for_equivalence =
  [
    ("select * from t", [||]);
    ("select id, score from t where amount >= $1", [| V.VInt 50 |]);
    ("select grp, sum(amount) s, avg(score) a from t group by grp", [||]);
    ("select count(*) c from t where name like 'name01%'", [||]);
    ( "select grp, count(*) c from t where id < $1 group by grp order by c \
       desc, grp",
      [| V.VInt 77 |] );
    ("select id from t where grp = 2 and amount < 40 order by id", [||]);
    ("select id % 5 bucket, count(*) c from t group by bucket order by bucket", [||]);
  ]

let test_engines_agree () =
  List.iter
    (fun layout ->
      let cat = Helpers.small_catalog ~n:200 ?layout () in
      List.iter
        (fun (sql, params) ->
          let reference =
            Helpers.sorted_rows
              (Helpers.run_sql ~engine:Engine.Jit ~params cat sql)
          in
          List.iter
            (fun engine ->
              let got =
                Helpers.sorted_rows (Helpers.run_sql ~engine ~params cat sql)
              in
              Helpers.check_rows
                (Printf.sprintf "%s on %s" (Engine.name engine) sql)
                reference got)
            engines)
        queries_for_equivalence)
    [
      None;
      Some [ [ "id" ]; [ "grp" ]; [ "amount" ]; [ "name" ]; [ "score" ] ];
      Some [ [ "id"; "amount" ]; [ "grp"; "name"; "score" ] ];
    ]

(* random single-table select/aggregate queries over random data *)
let qcheck_engines_agree =
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* n = int_range 1 150 in
      let* threshold = int_bound 120 in
      let* use_group = bool in
      let* op = oneofl [ "<"; "<="; ">"; ">="; "="; "<>" ] in
      return (seed, n, threshold, use_group, op))
  in
  QCheck.Test.make ~count:60 ~name:"all engines agree on random queries"
    (QCheck.make gen)
    (fun (seed, n, threshold, use_group, op) ->
      let hier = Memsim.Hierarchy.create () in
      let cat = Storage.Catalog.create ~hier () in
      let schema =
        Storage.Schema.make "r" [ ("a", V.Int); ("b", V.Int); ("c", V.Int) ]
      in
      let rng = Mrdb_util.Rng.create seed in
      let layout =
        match Mrdb_util.Rng.int rng 3 with
        | 0 -> Storage.Layout.row schema
        | 1 -> Storage.Layout.column schema
        | _ -> Storage.Layout.of_names schema [ [ "a"; "c" ]; [ "b" ] ]
      in
      let rel = Storage.Catalog.add cat schema layout in
      Storage.Relation.load rel ~n (fun ~row ->
          ignore row;
          Array.init 3 (fun _ -> V.VInt (Mrdb_util.Rng.int rng 100)));
      let sql =
        if use_group then
          Printf.sprintf
            "select b %% 7 k, count(*) c, sum(c) s from r where a %s %d \
             group by k order by k"
            op threshold
        else
          Printf.sprintf "select a, b from r where a %s %d order by a, b" op
            threshold
      in
      let results =
        List.map
          (fun e -> Helpers.sorted_rows (Helpers.run_sql ~engine:e cat sql))
          engines
      in
      match results with
      | ref :: rest -> List.for_all (fun r -> r = ref) rest
      | [] -> true)

(* ------------------------------------------------------------------ *)
(* Cost accounting invariants                                          *)
(* ------------------------------------------------------------------ *)

let test_cpu_efficiency_ordering () =
  let cat = Helpers.small_catalog ~n:2000 () in
  let sql = "select sum(amount) s from t where grp = $1" in
  let cost engine =
    let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
    let _, st = Engine.run_measured engine cat plan ~params:[| V.VInt 1 |] in
    Memsim.Stats.total_cycles st
  in
  let jit = cost Engine.Jit
  and bulk = cost Engine.Bulk
  and volcano = cost Engine.Volcano
  and hyrise = cost Engine.Hyrise in
  Alcotest.(check bool) "jit <= bulk" true (jit <= bulk);
  Alcotest.(check bool) "bulk << volcano" true (3 * bulk < volcano);
  Alcotest.(check bool) "jit << hyrise" true (3 * jit < hyrise)

let test_jit_reads_only_needed_columns () =
  (* with a pure column layout, an aggregate touching 1 of 5 columns must
     read less relation data than one touching all of them; the aggregation
     machinery is identical in both queries *)
  let cat =
    Helpers.small_catalog ~n:2000
      ~layout:[ [ "id" ]; [ "grp" ]; [ "amount" ]; [ "name" ]; [ "score" ] ]
      ()
  in
  let hier = Option.get (Storage.Catalog.hier cat) in
  let reads sql =
    Memsim.Hierarchy.reset hier;
    ignore (Helpers.run_sql ~engine:Engine.Jit cat sql);
    (Memsim.Hierarchy.stats hier).Memsim.Stats.reads
  in
  let narrow = reads "select sum(amount) s from t" in
  let wide =
    reads
      "select sum(amount) s, sum(id) a, sum(grp) b, sum(score) c, count(name)        d from t"
  in
  Alcotest.(check bool)
    (Printf.sprintf "narrow reads less (%d vs %d)" narrow wide)
    true
    (narrow * 3 < wide * 2)

let test_selectivity_affects_conditional_reads () =
  let cat =
    Helpers.small_catalog ~n:5000 ~layout:[ [ "id" ]; [ "grp" ]; [ "amount" ]; [ "name" ]; [ "score" ] ] ()
  in
  let hier = Option.get (Storage.Catalog.hier cat) in
  let accesses sel_param =
    Memsim.Hierarchy.reset hier;
    ignore
      (Helpers.run_sql ~engine:Engine.Jit ~params:[| V.VInt sel_param |] cat
         "select sum(amount) s from t where id < $1");
    (Memsim.Hierarchy.stats hier).Memsim.Stats.accesses
  in
  let low = accesses 50 in
  let high = accesses 5000 in
  Alcotest.(check bool) "higher selectivity reads more" true
    (low + 1000 < high)

let test_volcano_reads_full_tuples () =
  (* Volcano's generic scan must touch every attribute even when the query
     needs one column *)
  let cat = Helpers.small_catalog ~n:1000 () in
  let hier = Option.get (Storage.Catalog.hier cat) in
  let accesses engine =
    Memsim.Hierarchy.reset hier;
    ignore (Helpers.run_sql ~engine cat "select count(*) c from t where grp = 1");
    (Memsim.Hierarchy.stats hier).Memsim.Stats.accesses
  in
  Alcotest.(check bool) "volcano touches far more memory" true
    (accesses Engine.Volcano > 3 * accesses Engine.Jit)

let test_bulk_materialization_traffic () =
  (* bulk writes candidate vectors; its write count must exceed jit's *)
  let cat = Helpers.small_catalog ~n:2000 () in
  let hier = Option.get (Storage.Catalog.hier cat) in
  let writes engine =
    Memsim.Hierarchy.reset hier;
    ignore
      (Helpers.run_sql ~engine ~params:[| V.VInt 1000 |] cat
         "select sum(amount) s from t where id < $1");
    (Memsim.Hierarchy.stats hier).Memsim.Stats.writes
  in
  Alcotest.(check bool) "bulk writes intermediates" true
    (writes Engine.Bulk > writes Engine.Jit + 500)

let test_run_measured_cold_vs_warm () =
  let cat = Helpers.small_catalog ~n:3000 () in
  let plan =
    Relalg.Planner.plan cat (Relalg.Sql.parse cat "select sum(amount) s from t")
  in
  let _, cold = Engine.run_measured ~cold:true Engine.Jit cat plan ~params:[||] in
  let _, warm = Engine.run_measured ~cold:false Engine.Jit cat plan ~params:[||] in
  Alcotest.(check bool) "warm run at most cold cost" true
    (Memsim.Stats.total_cycles warm <= Memsim.Stats.total_cycles cold)

let test_index_scan_vs_full_scan_cycles () =
  let cat = Helpers.small_catalog ~n:5000 () in
  Storage.Catalog.create_index cat "t" ~name:"pk" ~kind:Storage.Index.Hash
    ~attrs:[ "id" ];
  let logical = Relalg.Sql.parse cat "select * from t where id = $1" in
  let cost ~use_indexes =
    let plan = Relalg.Planner.plan ~use_indexes cat logical in
    let _, st = Engine.run_measured Engine.Jit cat plan ~params:[| V.VInt 2500 |] in
    Memsim.Stats.total_cycles st
  in
  let full = cost ~use_indexes:false and indexed = cost ~use_indexes:true in
  Alcotest.(check bool) "index lookup orders faster" true
    (100 * indexed < full)

let suite =
  per_engine "filter golden" test_filter_golden
  @ per_engine "aggregate golden" test_aggregate_golden
  @ per_engine "group by golden" test_group_by_golden
  @ per_engine "empty aggregate" test_empty_aggregate
  @ per_engine "join golden" test_join_golden
  @ per_engine "sort+limit" test_sort_limit
  @ per_engine "insert" test_insert
  @ per_engine "projection exprs" test_projection_expressions
  @ per_engine "like predicate" test_like_predicate
  @ per_engine "grouped aggregate, empty input" test_grouped_aggregate_empty_input
  @ per_engine "all-NULL aggregates" test_all_null_aggregates
  @ per_engine "single-row aggregates" test_single_row_aggregates
  @ per_engine "group by every column" test_group_by_every_column
  @ per_engine "overflow-adjacent sum" test_overflow_adjacent_sum
  @ [
      Alcotest.test_case "engines agree (fixed queries x layouts)" `Quick
        test_engines_agree;
      QCheck_alcotest.to_alcotest qcheck_engines_agree;
      Alcotest.test_case "cpu efficiency ordering" `Quick
        test_cpu_efficiency_ordering;
      Alcotest.test_case "jit conditional column reads" `Quick
        test_jit_reads_only_needed_columns;
      Alcotest.test_case "selectivity drives traffic" `Quick
        test_selectivity_affects_conditional_reads;
      Alcotest.test_case "volcano full-tuple scans" `Quick
        test_volcano_reads_full_tuples;
      Alcotest.test_case "bulk materialization traffic" `Quick
        test_bulk_materialization_traffic;
      Alcotest.test_case "cold vs warm measurement" `Quick
        test_run_measured_cold_vs_warm;
      Alcotest.test_case "index vs scan cycles" `Quick
        test_index_scan_vs_full_scan_cycles;
    ]
