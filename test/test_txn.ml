(* The transaction layer: snapshot-isolation MVCC semantics, the client
   retry machinery, the wire protocol, the multi-client server over real
   sockets, and — the centerpiece — an exhaustive crash-point ×
   interleaving matrix: two clients' transactions interleaved under a set
   of schedules, crashed at every injected fault point, and recovered; the
   recovered catalog must be value-identical (Snapshot.digest) to a
   committed prefix of that schedule's history, at least as recent as the
   last commit that was fully durable. *)

module V = Storage.Value
module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Schema = Storage.Schema
module F = Durability.Faultio
module D = Durability.Durable
module Snapshot = Durability.Snapshot
module Recover = Durability.Recover
module Errors = Mrdb_util.Errors
module M = Txn.Mvcc
module S = Txn.Server

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let schema_b = Schema.make "b" [ ("id", V.Int); ("v", V.Int) ]

let small_cat ?(rows = 4) () =
  let cat = Catalog.create () in
  let rel = Catalog.add cat schema_b (Layout.row schema_b) in
  for i = 0 to rows - 1 do
    ignore (Relation.append rel [| V.VInt i; V.VInt (10 * i) |])
  done;
  cat

let vint = function
  | V.VInt i -> i
  | v -> Alcotest.failf "expected VInt, got %s" (V.to_display v)

(* ------------------------------------------------------------------ *)
(* MVCC semantics                                                     *)
(* ------------------------------------------------------------------ *)

let test_snapshot_isolation () =
  let mgr = M.create (small_cat ()) in
  let t1 = M.begin_ mgr in
  let t2 = M.begin_ mgr in
  M.update t2 "b" 0 1 (V.VInt 42);
  ignore (M.commit t2);
  (* t1's snapshot predates t2's commit *)
  Alcotest.(check int) "t1 reads pre-commit value" 0 (vint (M.read t1 "b" 0 1));
  let t3 = M.begin_ mgr in
  Alcotest.(check int) "t3 reads committed value" 42 (vint (M.read t3 "b" 0 1));
  M.abort t1;
  M.abort t3

let test_read_own_writes () =
  let mgr = M.create (small_cat ()) in
  let t = M.begin_ mgr in
  M.update t "b" 1 1 (V.VInt 7);
  Alcotest.(check int) "own write served" 7 (vint (M.read t "b" 1 1));
  M.abort t;
  (* aborted: nothing visible *)
  M.snapshot mgr (fun s ->
      Alcotest.(check int) "abort discarded" 10 (vint (M.read s "b" 1 1)))

let test_first_committer_wins () =
  let mgr = M.create (small_cat ()) in
  let t1 = M.begin_ mgr in
  let t2 = M.begin_ mgr in
  M.update t1 "b" 2 1 (V.VInt 100);
  M.update t2 "b" 2 1 (V.VInt 200);
  ignore (M.commit t1);
  (match M.commit t2 with
  | _ -> Alcotest.fail "second committer must conflict"
  | exception Errors.Txn_conflict _ -> ());
  (match M.status t2 with
  | M.Aborted _ -> ()
  | _ -> Alcotest.fail "loser must be aborted");
  M.snapshot mgr (fun s ->
      Alcotest.(check int) "first committer's value survives" 100
        (vint (M.read s "b" 2 1)))

let test_write_skew_permitted () =
  (* the canonical SI anomaly: both read x+y, each writes a different
     cell — disjoint write sets, so FCW lets both commit (DESIGN.md §5h) *)
  let mgr = M.create (small_cat ()) in
  let t1 = M.begin_ mgr in
  let t2 = M.begin_ mgr in
  let sum1 = vint (M.read t1 "b" 0 1) + vint (M.read t1 "b" 1 1) in
  let sum2 = vint (M.read t2 "b" 0 1) + vint (M.read t2 "b" 1 1) in
  M.update t1 "b" 0 1 (V.VInt (sum1 - 60));
  M.update t2 "b" 1 1 (V.VInt (sum2 - 60));
  ignore (M.commit t1);
  (* under serializability this would conflict; under SI it must not *)
  ignore (M.commit t2)

let test_insert_visibility () =
  let mgr = M.create (small_cat ()) in
  let t1 = M.begin_ mgr in
  let t2 = M.begin_ mgr in
  M.insert t2 "b" [| V.VInt 4; V.VInt 40 |];
  ignore (M.commit t2);
  Alcotest.(check int) "old snapshot sees the prefix" 4 (M.visible_rows t1 "b");
  M.abort t1;
  M.snapshot mgr (fun s ->
      Alcotest.(check int) "new snapshot sees the insert" 5
        (M.visible_rows s "b");
      Alcotest.(check int) "inserted row readable" 40 (vint (M.read s "b" 4 1)))

let test_timeout_not_retried () =
  let mgr = M.create (small_cat ()) in
  let t = M.begin_ ~timeout:0.01 mgr in
  Unix.sleepf 0.03;
  (match M.read t "b" 0 1 with
  | _ -> Alcotest.fail "expired transaction must refuse"
  | exception Errors.Txn_timeout _ -> ());
  (match M.status t with
  | M.Aborted _ -> ()
  | _ -> Alcotest.fail "timeout must abort");
  (* the retry loop never retries a timeout: the deadline is a promise *)
  let attempts = ref 0 in
  (match
     M.run ~timeout:0.01 mgr (fun txn ->
         incr attempts;
         Unix.sleepf 0.03;
         ignore (M.read txn "b" 0 1))
   with
  | _ -> Alcotest.fail "expected the timeout to propagate"
  | exception Errors.Txn_timeout _ -> ());
  Alcotest.(check int) "one attempt only" 1 !attempts

let test_run_retries_conflicts () =
  let mgr = M.create (small_cat ()) in
  let attempts = ref 0 in
  let final =
    M.run mgr (fun txn ->
        incr attempts;
        let v = vint (M.read txn "b" 3 1) in
        if !attempts = 1 then begin
          (* sabotage the first attempt with an overlapping committer *)
          let rival = M.begin_ mgr in
          M.update rival "b" 3 1 (V.VInt 1000);
          ignore (M.commit rival)
        end;
        M.update txn "b" 3 1 (V.VInt (v + 1));
        v + 1)
  in
  Alcotest.(check int) "retried once" 2 !attempts;
  Alcotest.(check int) "second attempt saw the rival's commit" 1001 final;
  M.snapshot mgr (fun s ->
      Alcotest.(check int) "committed" 1001 (vint (M.read s "b" 3 1)))

let test_gc_prunes_versions () =
  let mgr = M.create (small_cat ()) in
  let reader = M.begin_ mgr in
  M.run mgr (fun txn -> M.update txn "b" 0 1 (V.VInt 1));
  M.run mgr (fun txn -> M.update txn "b" 0 1 (V.VInt 2));
  Alcotest.(check bool) "versions pinned by the open reader" true
    (M.retained_versions mgr > 0);
  Alcotest.(check int) "pinned reader still reads its snapshot" 0
    (vint (M.read reader "b" 0 1));
  M.abort reader;
  (* GC runs at commit; the next commit prunes everything below the clock *)
  M.run mgr (fun txn -> M.update txn "b" 1 1 (V.VInt 3));
  Alcotest.(check int) "all versions pruned once no snapshot needs them" 0
    (M.retained_versions mgr)

(* ------------------------------------------------------------------ *)
(* Error taxonomy, wire protocol, backoff                              *)
(* ------------------------------------------------------------------ *)

let test_error_taxonomy () =
  Alcotest.(check (option int)) "conflict exit code" (Some 3)
    (Errors.exit_code_of (Errors.Txn_conflict "x"));
  Alcotest.(check (option int)) "timeout exit code" (Some 4)
    (Errors.exit_code_of (Errors.Txn_timeout "x"));
  Alcotest.(check (option int)) "busy exit code" (Some 5)
    (Errors.exit_code_of (Errors.Server_busy "x"));
  List.iter
    (fun e ->
      match Errors.wire_tag_of e with
      | None -> Alcotest.failf "no wire tag for %s" (Printexc.to_string e)
      | Some tag -> (
          match Errors.of_wire_tag tag "m" with
          | Some e' ->
              Alcotest.(check string) ("tag " ^ tag) (Printexc.exn_slot_name e)
                (Printexc.exn_slot_name e')
          | None -> Alcotest.failf "tag %s does not round-trip" tag))
    [ Errors.Txn_conflict "m"; Errors.Txn_timeout "m"; Errors.Server_busy "m" ];
  List.iter
    (fun e ->
      match Errors.to_diagnostic e with
      | Some d -> Alcotest.(check bool) "one-line diagnostic" false
                    (String.contains d '\n')
      | None -> Alcotest.failf "no diagnostic for %s" (Printexc.to_string e))
    [ Errors.Txn_conflict "m"; Errors.Txn_timeout "m"; Errors.Server_busy "m" ]

let test_wire_roundtrip () =
  let reqs =
    [
      Txn.Wire.Hello "client with spaces %|";
      Txn.Wire.Begin;
      Txn.Wire.Get { table = "acct"; tid = 3; attr = 1 };
      Txn.Wire.Set { table = "t x"; tid = 0; attr = 2; value = V.VStr "a b|c%" };
      Txn.Wire.Insert
        { table = "t"; values = [| V.VInt (-5); V.Null; V.VFloat 1.5;
                                   V.VBool true; V.VDate 7; V.VStr "" |] };
      Txn.Wire.Rows "t";
      Txn.Wire.Sum { table = "t"; attr = 0 };
      Txn.Wire.Commit None;
      Txn.Wire.Commit (Some "cli#12");
      Txn.Wire.Abort;
      Txn.Wire.Ping;
      Txn.Wire.Quit;
    ]
  in
  List.iter
    (fun r ->
      let line = Txn.Wire.encode_request r in
      Alcotest.(check bool)
        (Printf.sprintf "request %S round-trips" line)
        true
        (Txn.Wire.parse_request line = r))
    reqs;
  let reps =
    [
      Txn.Wire.Ok_ "";
      Txn.Wire.Ok_ "17";
      Txn.Wire.Val (V.VStr "x y\nz");
      Txn.Wire.Val V.Null;
      Txn.Wire.Err { tag = "CONFLICT"; msg = "write-write on b[0].1" };
    ]
  in
  List.iter
    (fun r ->
      let line = Txn.Wire.encode_reply r in
      Alcotest.(check bool)
        (Printf.sprintf "reply %S round-trips" line)
        true
        (Txn.Wire.parse_reply line = r))
    reps;
  match Txn.Wire.exn_of_reply (Txn.Wire.Err { tag = "CONFLICT"; msg = "m" }) with
  | Some (Errors.Txn_conflict _) -> ()
  | _ -> Alcotest.fail "CONFLICT reply must map to Txn_conflict"

let test_backoff_deterministic () =
  let b1 = Txn.Backoff.create ~seed:9 () in
  let b2 = Txn.Backoff.create ~seed:9 () in
  let d1 = List.init 8 (fun _ -> Txn.Backoff.next_delay b1) in
  let d2 = List.init 8 (fun _ -> Txn.Backoff.next_delay b2) in
  Alcotest.(check (list (float 0.0))) "same seed, same schedule" d1 d2;
  List.iter
    (fun d ->
      Alcotest.(check bool) "within [0, cap]" true (d >= 0.0 && d <= 0.05))
    d1;
  Alcotest.(check int) "attempts counted" 8 (Txn.Backoff.attempts b1);
  Txn.Backoff.reset b1;
  Alcotest.(check int) "reset zeroes attempts" 0 (Txn.Backoff.attempts b1)

(* ------------------------------------------------------------------ *)
(* Pinned fuzz corpus                                                 *)
(* ------------------------------------------------------------------ *)

(* The minimal write-write conflict: two clients increment the same cell
   concurrently; first-committer-wins must abort exactly one of them, and
   the serial oracle must agree with the surviving history.  Pinned so the
   conflict path of the fuzz axis never silently stops being exercised. *)
let pinned_ww_conflict : Fuzz.Txn_fuzz.case =
  {
    Fuzz.Txn_fuzz.seed = -1;
    cols = 1;
    init = [| [| 0 |] |];
    clients =
      [|
        [| { Fuzz.Txn_fuzz.ops = [ Fuzz.Txn_fuzz.Add { tid = 0; attr = 0; delta = 1 } ];
             commits = true } |];
        [| { Fuzz.Txn_fuzz.ops = [ Fuzz.Txn_fuzz.Add { tid = 0; attr = 0; delta = 1 } ];
             commits = true } |];
      |];
    (* both begin before either commits: a conflict is forced *)
    schedule = [| 0; 1; 0; 1 |];
  }

let test_pinned_conflict_case () =
  let conflicts_before =
    Obs.Metrics.counter_value (Obs.Metrics.counter "mrdb_txn_conflicts_total")
  in
  let divs = Fuzz.Txn_fuzz.run_case pinned_ww_conflict in
  Alcotest.(check int) "no divergences" 0 (List.length divs);
  let conflicts_after =
    Obs.Metrics.counter_value (Obs.Metrics.counter "mrdb_txn_conflicts_total")
  in
  Alcotest.(check bool) "the conflict actually happened" true
    (conflicts_after = conflicts_before + 1)

let test_fuzz_seed_42 () =
  (* the acceptance seed's first case, as a fast regression canary *)
  let divs = Fuzz.Txn_fuzz.run_case (Fuzz.Txn_fuzz.gen_case 42) in
  Alcotest.(check int) "seed 42 clean" 0 (List.length divs)

(* ------------------------------------------------------------------ *)
(* Chaos: crash-point × interleaving recovery matrix                  *)
(* ------------------------------------------------------------------ *)

type cop = CGet of int * int | CAdd of int * int * int | CPut of int * int * int
         | CIns of int array

(* Two clients, two transactions each.  Client 1's first transaction
   writes the same cell as client 0's first, so interleavings where both
   are in flight produce a real conflict-abort inside the matrix. *)
let chaos_progs =
  [|
    [| [ CGet (0, 1); CAdd (0, 1, 5); CIns [| 4; 40 |] ]; [ CPut (2, 1, 7) ] |];
    [| [ CPut (0, 1, 99) ]; [ CGet (1, 1); CAdd (1, 1, 1) ] |];
  |]

(* micro-steps: client 0 = (3+1)+(1+1) = 6, client 1 = (1+1)+(2+1) = 5 *)
let chaos_schedules =
  [
    ("serial-01", [| 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 1 |]);
    ("serial-10", [| 1; 1; 1; 1; 1; 0; 0; 0; 0; 0; 0 |]);
    ("alternate-0", [| 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0 |]);
    ("alternate-1", [| 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 0 |]);
    ("burst-mix", [| 0; 0; 1; 0; 0; 1; 1; 0; 0; 1; 1 |]);
    ("late-start", [| 1; 0; 0; 0; 1; 0; 0; 1; 1; 0; 1 |]);
  ]

(* Run the two-client script against [env] under [schedule], recording
   (step, digest, points-passed) after every durable boundary.  Raises
   [F.Crash] mid-way when the env's plan says so. *)
let run_chaos env schedule =
  let cat = Catalog.create () in
  let marks = ref [ ("empty", Snapshot.digest cat, 0) ] in
  let mark step =
    marks := (step, Snapshot.digest cat, F.points env) :: !marks
  in
  let d = D.attach env cat in
  Catalog.in_txn cat (fun () ->
      let rel = Catalog.add cat schema_b (Layout.row schema_b) in
      Relation.load rel ~n:4 (fun ~row -> [| V.VInt row; V.VInt (10 * row) |]);
      Catalog.notify_load cat "b" ~row_lo:0 ~rows:4);
  mark "load";
  let mgr = M.create cat in
  let cur = Array.make 2 None in
  let ops = Array.make 2 [] in
  let idx = Array.make 2 0 in
  Array.iter
    (fun ci ->
      if idx.(ci) < Array.length chaos_progs.(ci) then begin
        (match cur.(ci) with
        | None ->
            cur.(ci) <- Some (M.begin_ mgr);
            ops.(ci) <- chaos_progs.(ci).(idx.(ci))
        | Some _ -> ());
        let txn = Option.get cur.(ci) in
        match ops.(ci) with
        | op :: rest -> (
            ops.(ci) <- rest;
            match op with
            | CGet (tid, attr) -> ignore (M.read txn "b" tid attr)
            | CAdd (tid, attr, d) ->
                let v = vint (M.read txn "b" tid attr) in
                M.update txn "b" tid attr (V.VInt (v + d))
            | CPut (tid, attr, v) -> M.update txn "b" tid attr (V.VInt v)
            | CIns row ->
                M.insert txn "b" (Array.map (fun v -> V.VInt v) row))
        | [] ->
            (match M.commit txn with
            | _ -> mark (Printf.sprintf "c%dt%d" ci idx.(ci))
            | exception Errors.Txn_conflict _ -> ());
            cur.(ci) <- None;
            idx.(ci) <- idx.(ci) + 1
      end)
    schedule;
  D.detach d;
  List.rev !marks

let digest_index marks dg =
  let best = ref (-1) in
  List.iteri (fun i (_, d, _) -> if d = dg then best := i) marks;
  !best

let recover_digest env =
  F.set_plan env F.Reliable;
  let r = Recover.run env in
  (Snapshot.digest r.Recover.cat, r)

let test_chaos_matrix () =
  List.iter
    (fun (sname, schedule) ->
      let dry = F.memory () in
      let marks = run_chaos dry schedule in
      let total = F.points dry in
      Alcotest.(check bool)
        (sname ^ ": commits pass crash points")
        true (total > 15);
      List.iter
        (fun torn ->
          for point = 1 to total do
            let env = F.memory ~plan:(F.Crash_at { point; torn }) () in
            (match run_chaos env schedule with
            | _ ->
                Alcotest.failf "%s point %d torn %.1f: expected a crash" sname
                  point torn
            | exception F.Crash _ -> ());
            let dg, r = recover_digest env in
            let i = digest_index marks dg in
            if i < 0 then
              Alcotest.failf
                "%s point %d torn %.1f: recovered state matches no committed \
                 prefix (warnings: %s)"
                sname point torn
                (String.concat " | " r.Recover.warnings);
            (* commits whose crash points all predate this crash were fully
               flushed — recovery must be at least that recent *)
            let floor = ref 0 in
            List.iteri
              (fun j (_, _, pts) -> if pts < point && j > !floor then floor := j)
              marks;
            if i < !floor then
              Alcotest.failf
                "%s point %d torn %.1f: recovered %S but %S was already \
                 durable"
                sname point torn
                (let s, _, _ = List.nth marks i in
                 s)
                (let s, _, _ = List.nth marks !floor in
                 s)
          done)
        [ 0.0; 1.0 ])
    chaos_schedules

(* Satellite: the commit path's crash points are named, so pinned seeds
   survive insertion of new points elsewhere.  Pin the exact name set and
   the pre/post pairing. *)
let test_named_points_stable () =
  let env = F.memory () in
  let marks = run_chaos env (List.assoc "serial-01" chaos_schedules) in
  let named = F.named_points env in
  let names = List.map fst named in
  Alcotest.(check (list string)) "stable point names"
    [ "create:snapshot.tmp"; "create:wal"; "flush:snapshot.tmp"; "flush:wal";
      "rename:snapshot"; "txn.post_commit"; "txn.pre_commit";
      "write:snapshot.tmp"; "write:wal" ]
    names;
  let count n = List.assoc n named in
  Alcotest.(check int) "pre/post commit pair up"
    (count "txn.pre_commit") (count "txn.post_commit");
  (* every mark after "empty" is exactly one framed, flushed WAL unit:
     the initial load plus each scheduled transaction that committed *)
  Alcotest.(check int) "one pre-commit per durable commit"
    (List.length marks - 1)
    (count "txn.pre_commit");
  Alcotest.(check int) "wal created once" 1 (count "create:wal");
  Alcotest.(check int) "one flush per framed txn" (count "txn.pre_commit")
    (count "flush:wal")

let test_commit_boundary_recovery () =
  let serial = List.assoc "serial-01" chaos_schedules in
  let dry = F.memory () in
  let marks = run_chaos dry serial in
  let digest_of step =
    let _, dg, _ = List.find (fun (s, _, _) -> s = step) marks in
    dg
  in
  (* crash before the first MVCC commit's WAL commit record: only the load
     is durable *)
  let env = F.memory ~plan:(F.At_point { name = "txn.pre_commit"; nth = 2; torn = 0.0 }) () in
  (match run_chaos env serial with
  | _ -> Alcotest.fail "expected crash at txn.pre_commit#2"
  | exception F.Crash _ -> ());
  let dg, _ = recover_digest env in
  Alcotest.(check string) "pre-commit crash loses the in-flight txn"
    (digest_of "load") dg;
  (* crash right after the flush: the same commit must now survive *)
  let env = F.memory ~plan:(F.At_point { name = "txn.post_commit"; nth = 2; torn = 0.0 }) () in
  (match run_chaos env serial with
  | _ -> Alcotest.fail "expected crash at txn.post_commit#2"
  | exception F.Crash _ -> ());
  let dg, _ = recover_digest env in
  Alcotest.(check string) "post-commit crash keeps the committed txn"
    (digest_of "c0t0") dg

(* ------------------------------------------------------------------ *)
(* The server over real sockets                                       *)
(* ------------------------------------------------------------------ *)

let sock_ctr = ref 0

let with_server ?(max_clients = 4) ?txn_timeout cat f =
  let mgr = M.create cat in
  let srv = S.create ~max_clients ?txn_timeout mgr in
  incr sock_ctr;
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mrdb-test-%d-%d.sock" (Unix.getpid ()) !sock_ctr)
  in
  let fd = S.listen_unix path in
  let dom = Domain.spawn (fun () -> S.accept_loop srv fd) in
  Fun.protect
    ~finally:(fun () ->
      S.stop srv;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      S.poke path;
      Domain.join dom;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f mgr (Txn.Client.Unix_sock path))

let str_schema =
  Schema.make "s" [ ("id", V.Int); ("name", V.Varchar 12) ]

let test_server_roundtrip () =
  let cat = small_cat () in
  let rel = Catalog.add cat str_schema (Layout.row str_schema) in
  ignore (Relation.append rel [| V.VInt 0; V.VStr "plain" |]);
  with_server cat (fun _mgr addr ->
      let c = Txn.Client.connect ~id:"rt" addr in
      Txn.Client.begin_ c;
      Alcotest.(check int) "GET" 20
        (vint (Txn.Client.get c ~table:"b" ~tid:2 ~attr:1));
      Txn.Client.set c ~table:"b" ~tid:2 ~attr:1 (V.VInt 21);
      Txn.Client.set c ~table:"s" ~tid:0 ~attr:1 (V.VStr "a b|c% \xc3\xa9");
      Txn.Client.insert c ~table:"b" [| V.VInt 4; V.VInt 40 |];
      let ts = Txn.Client.commit c in
      Alcotest.(check bool) "commit ts assigned" true (ts > 0);
      Txn.Client.begin_ c;
      Alcotest.(check int) "committed SET visible" 21
        (vint (Txn.Client.get c ~table:"b" ~tid:2 ~attr:1));
      (match Txn.Client.get c ~table:"s" ~tid:0 ~attr:1 with
      | V.VStr s ->
          Alcotest.(check string) "string survives the wire" "a b|c% \xc3\xa9" s
      | v -> Alcotest.failf "expected VStr, got %s" (V.to_display v));
      Alcotest.(check int) "ROWS sees the insert" 5 (Txn.Client.rows c "b");
      Alcotest.(check int) "SUM over the snapshot" (0 + 10 + 21 + 30 + 40)
        (vint (Txn.Client.sum c ~table:"b" ~attr:1));
      Txn.Client.abort c;
      Txn.Client.ping c;
      Txn.Client.close c)

let test_server_conflict () =
  with_server (small_cat ()) (fun _mgr addr ->
      let c1 = Txn.Client.connect ~id:"w1" addr in
      let c2 = Txn.Client.connect ~id:"w2" addr in
      Txn.Client.begin_ c1;
      Txn.Client.begin_ c2;
      Txn.Client.set c1 ~table:"b" ~tid:0 ~attr:1 (V.VInt 1);
      Txn.Client.set c2 ~table:"b" ~tid:0 ~attr:1 (V.VInt 2);
      ignore (Txn.Client.commit c1);
      (match Txn.Client.commit c2 with
      | _ -> Alcotest.fail "second committer must get CONFLICT"
      | exception Errors.Txn_conflict _ -> ());
      Txn.Client.close c1;
      Txn.Client.close c2)

let test_server_busy () =
  with_server ~max_clients:1 (small_cat ()) (fun _mgr addr ->
      let c1 = Txn.Client.connect ~id:"only" addr in
      (match Txn.Client.connect ~id:"extra" addr with
      | c ->
          Txn.Client.close c;
          Alcotest.fail "admission gate must shed the second client"
      | exception Errors.Server_busy _ -> ());
      Txn.Client.close c1;
      (* shedding replies BUSY and closes; it must not count as active, so
         after the first client leaves a new one gets in *)
      Unix.sleepf 0.05;
      let c3 = Txn.Client.connect ~id:"after" addr in
      Txn.Client.ping c3;
      Txn.Client.close c3)

let test_server_timeout () =
  with_server ~txn_timeout:0.02 (small_cat ()) (fun _mgr addr ->
      let c = Txn.Client.connect ~id:"slow" addr in
      Txn.Client.begin_ c;
      Unix.sleepf 0.06;
      (match Txn.Client.get c ~table:"b" ~tid:0 ~attr:1 with
      | _ -> Alcotest.fail "expired transaction must get TIMEOUT"
      | exception Errors.Txn_timeout _ -> ());
      Txn.Client.close c)

let test_server_idempotent_commit () =
  (* raw wire session: re-sending a committed token must replay the cached
     reply, not re-apply the transaction *)
  with_server (small_cat ()) (fun mgr addr ->
      let path = match addr with Txn.Client.Unix_sock p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let ask line =
        output_string oc line;
        output_char oc '\n';
        flush oc;
        input_line ic
      in
      ignore (ask "HELLO idem");
      ignore (ask "BEGIN");
      ignore (ask "SET b 0 1 i:5");
      let r1 = ask "COMMIT idem#1" in
      Alcotest.(check bool) "commit applied" true
        (String.length r1 > 3 && String.sub r1 0 3 = "OK ");
      let r2 = ask "COMMIT idem#1" in
      Alcotest.(check string) "duplicate token replays the original reply" r1 r2;
      close_out_noerr oc;
      M.snapshot mgr (fun s ->
          Alcotest.(check int) "applied exactly once" 5 (vint (M.read s "b" 0 1))))

(* ------------------------------------------------------------------ *)
(* Advisor repartition racing live transactions                       *)
(* ------------------------------------------------------------------ *)

(* The layout advisor physically moves a table while a transaction is
   mid-flight with an uncommitted write and a pre-repartition snapshot.
   MVCC is logical (cells are table/tid/attr), so the move must be
   invisible: the snapshot still reads old values, own writes survive, the
   commit lands in the new layout, and the catalog digest is unchanged by
   the reorganization itself. *)
let test_advisor_repartition_races_mvcc () =
  let cat = small_cat ~rows:16 () in
  let mgr = M.create cat in
  let t1 = M.begin_ mgr in
  M.update t1 "b" 0 1 (V.VInt 777);
  (* uncommitted write and live snapshot; now the advisor repartitions,
     driven by a sum-over-v mix that makes splitting v out profitable *)
  let dump () =
    let rel = Catalog.find cat "b" in
    List.init (Relation.nrows rel) (fun tid -> Relation.get_tuple rel tid)
  in
  let before = dump () in
  let narrow =
    Relalg.Planner.plan cat
      (Relalg.Plan.Group_by
         {
           child = Relalg.Plan.Scan "b";
           keys = [];
           aggs = [ Relalg.Aggregate.(make Sum ~expr:(Relalg.Expr.Col 1) "s") ];
         })
  in
  let adv =
    Layoutopt.Advisor.create ~window:4 ~check_every:1 ~min_benefit:0.0
      ~horizon:1e9 cat
  in
  let repartitions = ref 0 in
  for _ = 1 to 4 do
    repartitions :=
      !repartitions + List.length (Layoutopt.Advisor.observe adv narrow)
  done;
  Alcotest.(check bool) "advisor repartitioned mid-transaction" true
    (!repartitions > 0);
  Alcotest.(check bool) "layout actually decomposed" true
    (Storage.Layout.n_partitions (Relation.layout (Catalog.find cat "b")) > 1);
  Alcotest.(check bool) "repartition preserves committed contents" true
    (dump () = before);
  (* the in-flight transaction is oblivious to the physical move *)
  Alcotest.(check int) "own write survives the move" 777
    (vint (M.read t1 "b" 0 1));
  Alcotest.(check int) "snapshot read through the new layout" 10
    (vint (M.read t1 "b" 1 1));
  ignore (M.commit t1);
  M.snapshot mgr (fun s ->
      Alcotest.(check int) "commit applied through the new layout" 777
        (vint (M.read s "b" 0 1)));
  (* and a transaction that began before the move conflicts normally *)
  let t2 = M.begin_ mgr in
  let t3 = M.begin_ mgr in
  M.update t2 "b" 2 1 (V.VInt 1);
  M.update t3 "b" 2 1 (V.VInt 2);
  ignore (M.commit t2);
  match M.commit t3 with
  | _ -> Alcotest.fail "second committer must still conflict after the move"
  | exception Errors.Txn_conflict _ -> ()

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "snapshot isolation across commits" `Quick
      test_snapshot_isolation;
    Alcotest.test_case "read own writes; abort discards" `Quick
      test_read_own_writes;
    Alcotest.test_case "first committer wins" `Quick test_first_committer_wins;
    Alcotest.test_case "write skew permitted (SI boundary)" `Quick
      test_write_skew_permitted;
    Alcotest.test_case "insert visibility is a snapshot prefix" `Quick
      test_insert_visibility;
    Alcotest.test_case "timeout aborts and is never retried" `Quick
      test_timeout_not_retried;
    Alcotest.test_case "retry loop survives conflicts" `Quick
      test_run_retries_conflicts;
    Alcotest.test_case "gc prunes undo versions" `Quick test_gc_prunes_versions;
    Alcotest.test_case "error taxonomy: exit codes, wire tags, diagnostics"
      `Quick test_error_taxonomy;
    Alcotest.test_case "wire protocol round-trips" `Quick test_wire_roundtrip;
    Alcotest.test_case "backoff is deterministic and bounded" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "pinned corpus: write-write conflict" `Quick
      test_pinned_conflict_case;
    Alcotest.test_case "fuzz seed 42 replays clean" `Quick test_fuzz_seed_42;
    Alcotest.test_case "crash-point x interleaving recovery matrix" `Slow
      test_chaos_matrix;
    Alcotest.test_case "commit crash points are named and stable" `Quick
      test_named_points_stable;
    Alcotest.test_case "pre/post commit boundary recovery" `Quick
      test_commit_boundary_recovery;
    Alcotest.test_case "server: socket round-trip" `Quick test_server_roundtrip;
    Alcotest.test_case "server: conflict surfaces typed" `Quick
      test_server_conflict;
    Alcotest.test_case "server: admission gate sheds with BUSY" `Quick
      test_server_busy;
    Alcotest.test_case "server: per-txn timeout" `Quick test_server_timeout;
    Alcotest.test_case "server: idempotent commit token" `Quick
      test_server_idempotent_commit;
    Alcotest.test_case "advisor repartition races live transactions" `Quick
      test_advisor_repartition_races_mvcc;
  ]
