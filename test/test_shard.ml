(* Sharded execution and 2PC durability.

   Four pillars:

   - answer identity: every distributed plan shape (gather, partial
     aggregation, shuffle/broadcast join, coordinator sort+limit, DML,
     pull-all fallback) returns the same answer as a single-node run of the
     same plan, across engines and shard counts;
   - codec round trips: QCheck over the exchange / 2PC message vocabulary,
     including rows with hostile strings and operation payloads;
   - the 2PC crash matrix: a scripted multi-transaction distributed
     workload is crashed at EVERY fault-injection point of every node env
     and the coordinator env, times torn-write fractions; recovery must
     never lose a fully-committed transaction and must never commit a
     transaction on one shard while aborting it on another;
   - the error paths: [Shard_unavailable] before any durable write,
     [Txn_indoubt] when the decision log is unreachable, and their wire
     tags / process exit codes. *)

module V = Storage.Value
module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Schema = Storage.Schema
module Expr = Relalg.Expr
module Plan = Relalg.Plan
module Aggregate = Relalg.Aggregate
module Engine = Engines.Engine
module Runtime = Engines.Runtime
module F = Durability.Faultio
module Wal = Durability.Wal
module Snapshot = Durability.Snapshot
module Cluster = Shard.Cluster
module Exec = Shard.Exec
module Exchange = Shard.Exchange
module Twopc = Shard.Twopc
module Recovery = Shard.Recovery
module Errors = Mrdb_util.Errors

let shard_counts = [ 2; 3; 5 ]

let physical cat plan = Relalg.Planner.plan cat plan

(* ------------------------------------------------------------------ *)
(* Answer identity vs single-node                                     *)
(* ------------------------------------------------------------------ *)

(* (name, plan builder, order_preserved): whether the distributed run must
   reproduce the single-node row ORDER, not just the multiset.  Gathers
   concatenate in shard order (= global row order) and the partial-
   aggregation merge keeps first-occurrence group order, so those are
   exact; shuffled joins interleave per-bucket streams, so they compare
   sorted. *)
let identity_cases =
  [
    ( "gather scan",
      (fun _ -> Plan.Scan "t"),
      true );
    ( "gather select+project",
      (fun _ ->
        Plan.Project
          ( Plan.Select
              (Plan.Scan "t", Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (V.VInt 3))),
            [ (Expr.Col 0, "id"); (Expr.Col 2, "amount") ] )),
      true );
    ( "partial aggregation",
      (fun _ ->
        Plan.Group_by
          {
            child = Plan.Scan "t";
            keys = [ (Expr.Col 1, "grp") ];
            aggs =
              [
                Aggregate.(make Sum ~expr:(Expr.Col 2) "s");
                Aggregate.(make Count_star "n");
                Aggregate.(make Min ~expr:(Expr.Col 0) "lo");
                Aggregate.(make Max ~expr:(Expr.Col 0) "hi");
              ];
          }),
      true );
    ( "global aggregate, no keys",
      (fun _ ->
        Plan.Group_by
          {
            child = Plan.Scan "t";
            keys = [];
            aggs = [ Aggregate.(make Sum ~expr:(Expr.Col 2) "s") ];
          }),
      true );
    ( "coordinator sort + limit",
      (fun _ ->
        Plan.Limit
          ( Plan.Sort
              {
                child = Plan.Scan "t";
                keys = [ (2, Plan.Desc); (0, Plan.Asc) ];
              },
            17 )),
      true );
  ]

let check_result ~ordered name (single : Runtime.result)
    (sharded : Runtime.result) =
  Alcotest.(check (array string))
    (name ^ ": columns") single.Runtime.columns sharded.Runtime.columns;
  let norm r = if ordered then r.Runtime.rows else List.sort compare r.Runtime.rows in
  Helpers.check_rows (name ^ ": rows") (norm single) (norm sharded)

let test_identity_single_table engine () =
  let cat = Helpers.small_catalog ~n:200 () in
  List.iter
    (fun shards ->
      let cl = Cluster.create ~shards cat in
      Fun.protect
        ~finally:(fun () -> Cluster.close cl)
        (fun () ->
          List.iter
            (fun (name, mk, ordered) ->
              let plan = physical cat (mk ()) in
              let single = Engine.run engine cat plan ~params:[||] in
              let sharded = Exec.run ~engine cl plan in
              check_result ~ordered
                (Printf.sprintf "%s (x%d)" name shards)
                single sharded)
            identity_cases))
    shard_counts

let test_identity_join engine () =
  let cat = Helpers.join_catalog () in
  let join =
    Plan.Join
      {
        left = Plan.Scan "cust";
        right =
          Plan.Select
            (Plan.Scan "ord", Expr.Cmp (Expr.Lt, Expr.Col 2, Expr.Const (V.VInt 50)));
        left_keys = [ 0 ];
        right_keys = [ 1 ];
      }
  in
  let plan = physical cat join in
  let single = Engine.run engine cat plan ~params:[||] in
  List.iter
    (fun shards ->
      let cl = Cluster.create ~shards cat in
      Fun.protect
        ~finally:(fun () -> Cluster.close cl)
        (fun () ->
          let sharded = Exec.run ~engine cl plan in
          check_result ~ordered:false
            (Printf.sprintf "join (x%d)" shards)
            single sharded))
    shard_counts

(* an indexed point lookup: per-shard indexes must serve the scatter *)
let test_identity_indexed () =
  let cat = Helpers.small_catalog ~n:300 () in
  Catalog.create_index cat "t" ~name:"pk" ~kind:Storage.Index.Hash
    ~attrs:[ "id" ];
  let plan =
    physical cat
      (Plan.Select
         (Plan.Scan "t", Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Const (V.VInt 123))))
  in
  let single = Engine.run Engine.Jit cat plan ~params:[||] in
  let cl = Cluster.create ~shards:4 cat in
  Fun.protect
    ~finally:(fun () -> Cluster.close cl)
    (fun () ->
      check_result ~ordered:true "indexed lookup (x4)" single
        (Exec.run cl plan))

let dump cat table =
  let rel = Catalog.find cat table in
  let rows = ref [] in
  Relation.iter_rows rel (fun _ row -> rows := Array.copy row :: !rows);
  List.rev !rows

(* DML: run the same update/insert against a single-node catalog and a
   cluster scattered from an identical copy; results and final table
   contents must agree (table_rows unions shard slices in global order). *)
let test_identity_dml engine () =
  List.iter
    (fun shards ->
      let cat1 = Helpers.small_catalog ~n:120 () in
      let cat2 = Helpers.small_catalog ~n:120 () in
      let cl = Cluster.create ~durable:true ~shards cat2 in
      Fun.protect
        ~finally:(fun () -> Cluster.close cl)
        (fun () ->
          let update =
            Plan.Update
              {
                table = "t";
                pred =
                  Some (Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (V.VInt 2)));
                assignments =
                  [ (2, Expr.Arith (Expr.Add, Expr.Col 2, Expr.Const (V.VInt 1000))) ];
              }
          in
          let p = physical cat1 update in
          let r1 = Engine.run engine cat1 p ~params:[||] in
          let r2 = Exec.run ~engine cl p in
          check_result ~ordered:true
            (Printf.sprintf "update result (x%d)" shards)
            r1 r2;
          let insert =
            Plan.Insert
              {
                table = "t";
                values =
                  [
                    Expr.Const (V.VInt 9999); Expr.Const (V.VInt 1);
                    Expr.Const (V.VInt 7); Expr.Const (V.VStr "fresh");
                    Expr.Const (V.VFloat 0.5);
                  ];
              }
          in
          let p = physical cat1 insert in
          let r1 = Engine.run engine cat1 p ~params:[||] in
          let r2 = Exec.run ~engine cl p in
          check_result ~ordered:true
            (Printf.sprintf "insert tid (x%d)" shards)
            r1 r2;
          Helpers.check_rows
            (Printf.sprintf "final contents (x%d)" shards)
            (List.sort compare (dump cat1 "t"))
            (List.sort compare (Cluster.table_rows cl "t"))))
    shard_counts

(* ------------------------------------------------------------------ *)
(* shard_range partitions exactly                                     *)
(* ------------------------------------------------------------------ *)

let test_shard_range () =
  List.iter
    (fun shards ->
      List.iter
        (fun n ->
          let next = ref 0 in
          for shard = 0 to shards - 1 do
            let lo, len = Cluster.shard_range ~shards ~shard n in
            Alcotest.(check int)
              (Printf.sprintf "contiguous n=%d x%d shard %d" n shards shard)
              !next lo;
            Alcotest.(check bool) "non-negative length" true (len >= 0);
            next := lo + len
          done;
          Alcotest.(check int)
            (Printf.sprintf "covers n=%d x%d" n shards)
            n !next)
        [ 0; 1; 7; 100; 101 ])
    [ 1; 2; 3; 8 ]

(* ------------------------------------------------------------------ *)
(* Cost model: measured network traffic honors the estimates          *)
(* ------------------------------------------------------------------ *)

let test_partial_agg_reduces_bytes () =
  let cat = Helpers.small_catalog ~n:400 () in
  let cl = Cluster.create ~shards:4 cat in
  Fun.protect
    ~finally:(fun () -> Cluster.close cl)
    (fun () ->
      let child = physical cat (Plan.Scan "t") in
      let agg =
        physical cat
          (Plan.Group_by
             {
               child = Plan.Scan "t";
               keys = [ (Expr.Col 1, "grp") ];
               aggs = [ Aggregate.(make Sum ~expr:(Expr.Col 2) "s") ];
             })
      in
      let est = Shard.Cost.agg_costing cl ~child ~gb:agg in
      Alcotest.(check bool) "estimated partial < naive row shuffle" true
        (est.Shard.Cost.partial_bytes < est.Shard.Cost.naive_bytes);
      let _, m = Exec.run_measured cl agg in
      Alcotest.(check bool) "measured bytes below naive estimate" true
        (m.Exec.net_bytes < est.Shard.Cost.naive_bytes);
      Alcotest.(check bool) "some messages flowed" true (m.Exec.net_messages > 0);
      Alcotest.(check bool) "interconnect cycles accounted" true
        (m.Exec.net_cycles > 0))

let test_join_choice_is_cheapest () =
  let cat = Helpers.join_catalog ~n_orders:600 ~n_customers:30 () in
  let cl = Cluster.create ~shards:4 cat in
  Fun.protect
    ~finally:(fun () -> Cluster.close cl)
    (fun () ->
      let build = physical cat (Plan.Scan "cust") in
      let probe = physical cat (Plan.Scan "ord") in
      let c = Shard.Cost.join_costing cl ~build ~probe in
      (* tiny build side vs a fat probe: broadcast must win, and the chosen
         method must price at min of the two *)
      Alcotest.(check bool) "broadcast chosen for small build" true
        (c.Shard.Cost.chosen = Shard.Cost.Broadcast);
      let chosen_cycles =
        match c.Shard.Cost.chosen with
        | Shard.Cost.Broadcast -> c.Shard.Cost.broadcast_cycles
        | Shard.Cost.Shuffle -> c.Shard.Cost.shuffle_cycles
      in
      Alcotest.(check bool) "chosen is the cheaper method" true
        (chosen_cycles
         <= min c.Shard.Cost.broadcast_cycles c.Shard.Cost.shuffle_cycles);
      let describe = Exec.describe cl (physical cat
        (Plan.Join
           { left = Plan.Scan "cust"; right = Plan.Scan "ord";
             left_keys = [ 0 ]; right_keys = [ 1 ] })) in
      Alcotest.(check bool) "describe names the strategy" true
        (String.length describe > 0))

(* ------------------------------------------------------------------ *)
(* QCheck: exchange / 2PC codec round trips                           *)
(* ------------------------------------------------------------------ *)

let gen_value : V.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun i -> V.VInt i) (int_range (-1_000_000) 1_000_000);
      map (fun f -> V.VFloat f) (float_bound_inclusive 1e6);
      map (fun b -> V.VBool b) bool;
      map (fun d -> V.VDate d) (int_range 0 40_000);
      map (fun s -> V.VStr s) (string_size ~gen:printable (int_range 0 12));
      (* the characters the percent-escaping exists for *)
      map (fun s -> V.VStr s)
        (oneofl [ "%"; "|"; " "; "%7C"; "a|b c%"; "\n"; ""; "~" ]);
      return V.Null;
    ]

let gen_row : V.t array QCheck.Gen.t =
  let open QCheck.Gen in
  let* arity = int_range 0 4 in
  flatten_a (Array.init arity (fun _ -> gen_value))

let gen_table = QCheck.Gen.oneofl [ "t"; "a b"; "x%y"; "p|q" ]

let gen_op : Wal.op QCheck.Gen.t =
  let open QCheck.Gen in
  let* table = gen_table in
  let* row = gen_row in
  let* tid = int_range 0 1000 in
  let* value = gen_value in
  oneofl
    [
      Wal.Append { table; values = row };
      Wal.Update { table; tid; attr = 0; value };
      Wal.Load { table; rows = [| row; row |] };
    ]

let gen_msg : Exchange.msg QCheck.Gen.t =
  let open QCheck.Gen in
  let* txid = int_range 0 100_000 in
  let* shard = int_range 0 64 in
  let* commit = bool in
  let* nrows = int_range 0 5 in
  let* rows = flatten_l (List.init nrows (fun _ -> gen_row)) in
  let* nops = int_range 0 4 in
  let* ops = flatten_l (List.init nops (fun _ -> gen_op)) in
  oneofl
    [
      Exchange.Rows rows;
      Exchange.Prepare { txid; shard; ops };
      Exchange.Vote { txid; shard; commit };
      Exchange.Decide { txid; commit };
      Exchange.Ack { txid; shard };
    ]

let qcheck_exchange_roundtrip =
  QCheck.Test.make ~count:500 ~name:"exchange message round-trips"
    (QCheck.make gen_msg)
    (fun msg -> Exchange.parse (Exchange.encode msg) = msg)

let qcheck_exchange_one_line =
  QCheck.Test.make ~count:500 ~name:"encoded messages are newline-free"
    (QCheck.make gen_msg)
    (fun msg -> not (String.contains (Exchange.encode msg) '\n'))

(* ------------------------------------------------------------------ *)
(* The 2PC crash matrix                                               *)
(* ------------------------------------------------------------------ *)

let nshards = 3

let shard_schema =
  Schema.make "t" [ ("id", V.Int); ("grp", V.Int); ("amount", V.Int) ]

let source_catalog () =
  let cat = Catalog.create () in
  let rel = Catalog.add cat shard_schema (Layout.row shard_schema) in
  Relation.load rel ~n:9 (fun ~row ->
      [| V.VInt row; V.VInt (row mod 3); V.VInt (row * 10) |]);
  cat

let append id grp amount =
  Wal.Append { table = "t"; values = [| V.VInt id; V.VInt grp; V.VInt amount |] }

let set_amount tid v = Wal.Update { table = "t"; tid; attr = 2; value = V.VInt v }

(* The scripted distributed workload.  Transaction markers are values that
   cannot occur in the scattered data (ids >= 100, amounts >= 700), so the
   recovered catalogs can be probed for exactly which transactions
   survived.  [txn3] is vetoed by shard 2 and must never leave a trace. *)
let txns =
  [
    ("txn1", [ (0, (0, 100)); (1, (0, 101)) ], true);
    ("txn2", [ (1, (2, 777)); (2, (2, 888)) ], true);
    ("txn3", [ (0, (0, 102)); (2, (2, 999)) ], false);
    ("txn4", [ (0, (0, 103)); (1, (0, 104)); (2, (0, 105)) ], true);
  ]

(* Run the script against the given envs, recording after every step the
   per-env crash-point counters (the floor computation of the matrix). *)
let run_2pc_script envs coord_env =
  let marks = ref [] in
  let mark step counts =
    marks := (step, counts ()) :: !marks
  in
  let counts () = (Array.map F.points envs, F.points coord_env) in
  let cl =
    Cluster.create ~durable:true ~envs ~coord_env ~shards:nshards
      (source_catalog ())
  in
  Fun.protect
    ~finally:(fun () -> Cluster.close cl)
    (fun () ->
      mark "scatter" counts;
      ignore (Twopc.execute cl [ (0, [ append 100 0 600 ]); (1, [ append 101 1 601 ]) ]);
      mark "txn1" counts;
      ignore (Twopc.execute cl [ (1, [ set_amount 0 777 ]); (2, [ set_amount 1 888 ]) ]);
      mark "txn2" counts;
      let aborted =
        Twopc.execute cl
          ~vote:(fun s -> s <> 2)
          [ (0, [ append 102 2 602 ]); (2, [ set_amount 0 999 ]) ]
      in
      assert (not aborted.Twopc.committed);
      mark "txn3" counts;
      ignore
        (Twopc.execute cl
           [ (0, [ append 103 0 603 ]); (1, [ append 104 1 604 ]);
             (2, [ append 105 2 605 ]) ]);
      mark "txn4" counts);
  List.rev !marks

let has_marker cat (attr, v) =
  if not (List.mem "t" (Catalog.names cat)) then false
  else begin
    let found = ref false in
    Relation.iter_rows (Catalog.find cat "t") (fun _ row ->
        if V.equal row.(attr) (V.VInt v) then found := true);
    !found
  end

(* Recover all envs and check the two 2PC invariants against the floor of
   fully-durable transactions. *)
let check_recovery ~ctx ~durable_steps envs coord_env =
  Array.iter (fun e -> F.set_plan e F.Reliable) envs;
  F.set_plan coord_env F.Reliable;
  let res = Recovery.recover_cluster envs coord_env in
  let cats = Array.map (fun (r : Durability.Recover.result) -> r.Durability.Recover.cat) res.Recovery.results in
  (* every settlement agrees with the durable decision log (presumed abort) *)
  let decisions = Recovery.decisions coord_env in
  List.iter
    (fun ((_, s) : int * Recovery.settled) ->
      match List.assoc_opt s.Recovery.txid decisions with
      | Some c ->
          Alcotest.(check bool)
            (ctx ^ ": settlement follows decision log") c s.Recovery.committed
      | None ->
          Alcotest.(check bool)
            (ctx ^ ": undecided settles as abort") false s.Recovery.committed)
    res.Recovery.settled;
  List.iter
    (fun (name, markers, committable) ->
      let present =
        List.map (fun (shard, m) -> has_marker cats.(shard) m) markers
      in
      if not committable then
        List.iter
          (fun p ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: vetoed %s never commits" ctx name)
              false p)
          present
      else begin
        (* atomic across shards: all or none *)
        let all = List.for_all Fun.id present
        and none = List.for_all not present in
        if not (all || none) then
          Alcotest.failf "%s: %s committed on a strict subset of its shards"
            ctx name;
        if List.mem name durable_steps && not all then
          Alcotest.failf "%s: fully-durable %s lost by recovery" ctx name
      end)
    txns

let fresh_envs () = (Array.init nshards (fun _ -> F.memory ()), F.memory ())

let test_2pc_crash_matrix () =
  (* dry run: count every env's crash points and prove the named 2PC
     points are among them *)
  let envs, coord_env = fresh_envs () in
  let marks = run_2pc_script envs coord_env in
  let node_totals = Array.map F.points envs in
  let coord_total = F.points coord_env in
  let named e = List.map fst (F.named_points e) in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " passed on node 1") true
        (List.mem p (named envs.(1))))
    [ "2pc.part.pre_prepare"; "2pc.part.prepared"; "2pc.part.pre_resolve" ];
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " passed on coordinator") true
        (List.mem p (named coord_env)))
    [ "2pc.coord.pre_decide"; "2pc.coord.decided" ];
  (* matrix: every positional point of every env (the named points are a
     subset of these boundaries) x torn fractions *)
  let checked = ref 0 in
  let run_crash ~ctx ~plan_env_idx ~point ~torn =
    let envs, coord_env = fresh_envs () in
    let target = match plan_env_idx with
      | None -> coord_env
      | Some i -> envs.(i)
    in
    F.set_plan target (F.Crash_at { point; torn });
    (match run_2pc_script envs coord_env with
    | _ -> Alcotest.failf "%s: expected a crash" ctx
    | exception F.Crash _ -> ());
    (* steps all of whose crash points in the crashed env happened strictly
       before the crash were fully durable before the process died *)
    let durable_steps =
      List.filter_map
        (fun (step, (node_counts, coord_count)) ->
          let c = match plan_env_idx with
            | None -> coord_count
            | Some i -> node_counts.(i)
          in
          if c < point then Some step else None)
        marks
    in
    check_recovery ~ctx ~durable_steps envs coord_env;
    incr checked
  in
  List.iter
    (fun torn ->
      for i = 0 to nshards - 1 do
        for point = 1 to node_totals.(i) do
          run_crash
            ~ctx:(Printf.sprintf "node %d point %d torn %.1f" i point torn)
            ~plan_env_idx:(Some i) ~point ~torn
        done
      done;
      for point = 1 to coord_total do
        run_crash
          ~ctx:(Printf.sprintf "coord point %d torn %.1f" point torn)
          ~plan_env_idx:None ~point ~torn
      done)
    [ 0.0; 0.5; 1.0 ];
  Alcotest.(check bool) "matrix covered" true
    (!checked >= 3 * (coord_total + Array.fold_left ( + ) 0 node_totals))

(* the two interesting named boundaries, pinned explicitly: a crash right
   BEFORE the decision is durable aborts everywhere; right AFTER, the
   in-doubt participants must all commit on recovery *)
let test_2pc_decision_boundary () =
  List.iter
    (fun (name, expect_commit) ->
      let envs, coord_env = fresh_envs () in
      F.set_plan coord_env (F.At_point { name; nth = 1; torn = 0.0 });
      (match run_2pc_script envs coord_env with
      | _ -> Alcotest.failf "%s: expected a crash" name
      | exception F.Crash _ -> ());
      Array.iter (fun e -> F.set_plan e F.Reliable) envs;
      F.set_plan coord_env F.Reliable;
      let res = Recovery.recover_cluster envs coord_env in
      let cats = Array.map (fun (r : Durability.Recover.result) -> r.Durability.Recover.cat) res.Recovery.results in
      (* txn1's markers: shard 0 id 100, shard 1 id 101 *)
      Alcotest.(check bool)
        (name ^ ": txn1 on shard 0")
        expect_commit
        (has_marker cats.(0) (0, 100));
      Alcotest.(check bool)
        (name ^ ": txn1 on shard 1")
        expect_commit
        (has_marker cats.(1) (0, 101)))
    [ ("2pc.coord.pre_decide", false); ("2pc.coord.decided", true) ]

(* ------------------------------------------------------------------ *)
(* Error paths                                                        *)
(* ------------------------------------------------------------------ *)

let test_shard_unavailable () =
  let cat = Helpers.small_catalog ~n:60 () in
  let cl = Cluster.create ~durable:true ~shards:3 cat in
  Fun.protect
    ~finally:(fun () -> Cluster.close cl)
    (fun () ->
      let sizes () =
        Array.map
          (fun (n : Cluster.node) -> F.durable_size n.Cluster.env Wal.store_name)
          (Cluster.nodes cl)
      in
      Cluster.set_down cl 1 true;
      let before = sizes () in
      let query = physical cat (Plan.Scan "t") in
      (match Exec.run cl query with
      | _ -> Alcotest.fail "query over a down shard must raise"
      | exception Errors.Shard_unavailable _ -> ());
      let dml =
        [ (0, [ append 100 0 0 ]); (1, [ append 101 1 1 ]) ]
      in
      (match Twopc.execute cl dml with
      | _ -> Alcotest.fail "2PC with a down participant must raise"
      | exception Errors.Shard_unavailable _ -> ());
      (* checked before phase 1: nothing became durable anywhere *)
      Alcotest.(check (array int)) "no durable write happened" before (sizes ());
      Cluster.set_down cl 1 false;
      let r = Exec.run cl query in
      Alcotest.(check int) "recovered shard serves again" 60
        (List.length r.Runtime.rows))

let test_txn_indoubt () =
  let envs, coord_env = fresh_envs () in
  F.set_plan coord_env
    (F.At_point { name = "2pc.coord.pre_decide"; nth = 1; torn = 0.0 });
  (match run_2pc_script envs coord_env with
  | _ -> Alcotest.fail "expected a crash"
  | exception F.Crash _ -> ());
  F.set_plan coord_env F.Reliable;
  Array.iter (fun e -> F.set_plan e F.Reliable) envs;
  Alcotest.(check bool) "participant 0 is in doubt" true
    (Recovery.in_doubt_txids envs.(0) <> []);
  (* coordinator unreachable: the shard must refuse to guess *)
  (match Recovery.recover_node envs.(0) with
  | _ -> Alcotest.fail "recovery without a decision log must raise"
  | exception Errors.Txn_indoubt _ -> ());
  (* with the (empty-for-this-txid) decision log: presumed abort *)
  let _, settled = Recovery.recover_node ~decisions:[] envs.(0) in
  List.iter
    (fun (s : Recovery.settled) ->
      Alcotest.(check bool) "presumed abort" false s.Recovery.committed)
    settled

let test_error_codes () =
  Alcotest.(check (option int)) "Shard_unavailable exit code" (Some 6)
    (Errors.exit_code_of (Errors.Shard_unavailable "s0"));
  Alcotest.(check (option int)) "Txn_indoubt exit code" (Some 7)
    (Errors.exit_code_of (Errors.Txn_indoubt "t9"));
  List.iter
    (fun e ->
      match Errors.wire_tag_of e with
      | None -> Alcotest.fail "shard errors must have wire tags"
      | Some tag -> (
          match Errors.of_wire_tag tag "msg" with
          | Some e' ->
              Alcotest.(check bool)
                (tag ^ " round-trips to the same constructor")
                true
                (match (e, e') with
                | Errors.Shard_unavailable _, Errors.Shard_unavailable _
                | Errors.Txn_indoubt _, Errors.Txn_indoubt _ ->
                    true
                | _ -> false)
          | None -> Alcotest.failf "tag %s does not parse back" tag))
    [ Errors.Shard_unavailable "s"; Errors.Txn_indoubt "t" ]

(* ------------------------------------------------------------------ *)

let suite =
  Alcotest.test_case "shard_range partitions exactly" `Quick test_shard_range
  :: Alcotest.test_case "indexed lookup identical" `Quick
       test_identity_indexed
  :: Alcotest.test_case "partial aggregation reduces network bytes" `Quick
       test_partial_agg_reduces_bytes
  :: Alcotest.test_case "join method choice is the cheapest" `Quick
       test_join_choice_is_cheapest
  :: Alcotest.test_case "2PC crash matrix (exhaustive)" `Slow
       test_2pc_crash_matrix
  :: Alcotest.test_case "decision-write boundary semantics" `Quick
       test_2pc_decision_boundary
  :: Alcotest.test_case "down shard raises before any durable write" `Quick
       test_shard_unavailable
  :: Alcotest.test_case "in-doubt without coordinator raises" `Quick
       test_txn_indoubt
  :: Alcotest.test_case "error exit codes and wire tags" `Quick
       test_error_codes
  :: QCheck_alcotest.to_alcotest qcheck_exchange_roundtrip
  :: QCheck_alcotest.to_alcotest qcheck_exchange_one_line
  :: Helpers.across_engines "single-table plans identical" test_identity_single_table
  @ Helpers.across_engines "distributed join identical" test_identity_join
  @ Helpers.across_engines "DML via 2PC identical" test_identity_dml
