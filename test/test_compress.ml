(* Tests for the compression subsystem added on top of the original
   dictionary/sparse encodings: run-length encoding, frame-of-reference with
   narrow codes, the advisor that chooses schemes from column statistics,
   direct execution on compressed partitions, and the optimizer's joint
   layout x compression search. *)

module V = Storage.Value
module Encoding = Storage.Encoding
module Relation = Storage.Relation
module Compress = Storage.Compress
module Engine = Engines.Engine

(* A table whose four data columns are each tailor-made for one scheme:
   [grp] is sorted with long runs (RLE), [tag] is a low-cardinality string
   (dictionary), [base] clusters around 100_000 (frame of reference), and
   [note] is mostly NULL (sparse). *)
let schema =
  Storage.Schema.make_nullable "cmp"
    [
      ("id", V.Int, false);
      ("grp", V.Int, false);
      ("tag", V.Varchar 12, false);
      ("base", V.Int, false);
      ("note", V.Varchar 8, true);
    ]

let row_of i =
  [|
    V.VInt i;
    V.VInt (i / 50);
    V.VStr (Printf.sprintf "t%02d" (i mod 7));
    V.VInt (100_000 + (i mod 90));
    (if i mod 20 = 0 then V.VStr (Printf.sprintf "n%d" (i mod 5)) else V.Null);
  |]

let build ?(layout = Storage.Layout.column schema) ~encodings n =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let layout = Compress.singleton_layout schema layout encodings in
  let rel = Storage.Catalog.add ~encodings cat schema layout in
  Relation.load rel ~n (fun ~row -> row_of row);
  (cat, rel)

let all_schemes = [ (1, Encoding.Rle); (2, Encoding.Dict); (3, Encoding.For_bp 1) ]

(* ------------------------------------------------------------------ *)
(* Advisor                                                             *)
(* ------------------------------------------------------------------ *)

let test_advisor_chooses_schemes () =
  let rows = Array.init 400 row_of in
  let plan = Compress.plan_rows schema rows in
  let enc a = List.assoc_opt a plan in
  Alcotest.(check bool) "grp gets RLE" true (enc 1 = Some Encoding.Rle);
  Alcotest.(check bool) "tag gets a dictionary" true (enc 2 = Some Encoding.Dict);
  (match enc 3 with
  | Some (Encoding.For_bp w) ->
      Alcotest.(check bool) "narrow FOR code" true (w <= 2)
  | e ->
      Alcotest.failf "base not frame-of-reference encoded (%s)"
        (match e with
        | None -> "plain"
        | Some e -> Format.asprintf "%a" Encoding.pp e));
  Alcotest.(check bool) "note goes sparse" true (enc 4 = Some Encoding.Sparse);
  (* dense unique ints still fit a narrow frame-of-reference window *)
  Alcotest.(check bool) "id gets FOR, never RLE" true
    (match enc 0 with
    | Some (Encoding.For_bp _) | None -> true
    | _ -> false)

let test_advisor_deterministic () =
  let rows = Array.init 300 row_of in
  Alcotest.(check bool) "same plan twice" true
    (Compress.plan_rows schema rows = Compress.plan_rows schema rows)

(* ------------------------------------------------------------------ *)
(* Round-trips                                                         *)
(* ------------------------------------------------------------------ *)

let check_roundtrip label rel n =
  for row = 0 to n - 1 do
    Alcotest.(check Helpers.row_testable)
      (Printf.sprintf "%s tuple %d" label row)
      (row_of row) (Relation.get_tuple rel row)
  done

let test_rle_roundtrip () =
  let _, rel = build ~encodings:[ (1, Encoding.Rle) ] 230 in
  check_roundtrip "rle" rel 230;
  match Relation.rle_info rel 1 with
  | Some (runs, _) -> Alcotest.(check int) "5 runs" 5 runs
  | None -> Alcotest.fail "no run list"

let test_for_roundtrip () =
  let _, rel = build ~encodings:[ (3, Encoding.For_bp 1) ] 210 in
  check_roundtrip "for" rel 210;
  match Relation.for_bounds rel 3 with
  | Some (lo, hi) ->
      Alcotest.(check bool) "bounds cover data" true
        (lo <= 100_000 && hi >= 100_089)
  | None -> Alcotest.fail "no FOR bounds"

let test_for_exceptions_roundtrip () =
  (* values outside the zigzag window of a 1-byte code must escape to the
     exception list and still read back exactly, including extremes *)
  let schema = Storage.Schema.make "esc" [ ("v", V.Int) ] in
  let spikes =
    [| 1000; 1001; max_int; 999; min_int; 1002; 1003; -5000; 1004; 0 |]
  in
  let cat = Storage.Catalog.create () in
  let rel =
    Storage.Catalog.add ~encodings:[ (0, Encoding.For_bp 1) ] cat schema
      (Storage.Layout.column schema)
  in
  Relation.load rel ~n:(Array.length spikes) (fun ~row -> [| V.VInt spikes.(row) |]);
  Array.iteri
    (fun i v ->
      Alcotest.(check Helpers.value_testable)
        (Printf.sprintf "spike %d" i)
        (V.VInt v) (Relation.get rel i 0))
    spikes;
  match Relation.for_info rel 0 with
  | Some (exc, _) -> Alcotest.(check bool) "has exceptions" true (exc >= 3)
  | None -> Alcotest.fail "no FOR store"

let test_updates_roundtrip () =
  let _, rel = build ~encodings:all_schemes 120 in
  (* overwrite values on every compressed column, including a FOR exception *)
  Relation.set rel 7 1 (V.VInt 999);
  Relation.set rel 8 2 (V.VStr "fresh");
  Relation.set rel 9 3 (V.VInt max_int);
  Relation.set rel 10 4 (V.VStr "now");
  Alcotest.(check Helpers.value_testable) "rle set" (V.VInt 999)
    (Relation.get rel 7 1);
  Alcotest.(check Helpers.value_testable) "dict set" (V.VStr "fresh")
    (Relation.get rel 8 2);
  Alcotest.(check Helpers.value_testable) "for escape set" (V.VInt max_int)
    (Relation.get rel 9 3);
  Alcotest.(check Helpers.value_testable) "sparse set" (V.VStr "now")
    (Relation.get rel 10 4);
  (* neighbours are untouched *)
  Alcotest.(check Helpers.row_testable) "row 11 intact" (row_of 11)
    (Relation.get_tuple rel 11)

let test_append_roundtrip () =
  let _, rel = build ~encodings:all_schemes 60 in
  for i = 60 to 99 do
    ignore (Relation.append rel (row_of i))
  done;
  check_roundtrip "appended" rel 100

(* QCheck: random int columns survive a recompress round-trip under every
   int scheme, covering NULL-heavy, constant, and overflow-adjacent data. *)
let qcheck_roundtrips =
  let open QCheck in
  let value_gen =
    Gen.frequency
      [
        (4, Gen.map (fun i -> Some i) Gen.small_signed_int);
        (2, Gen.return (Some 42));
        (2, Gen.return None);
        (1, Gen.oneofl [ Some max_int; Some min_int; Some 0 ]);
      ]
  in
  let arb =
    make
      ~print:(fun l ->
        String.concat ";"
          (List.map (function Some i -> string_of_int i | None -> "_") l))
      (Gen.list_size (Gen.int_range 1 80) value_gen)
  in
  QCheck.Test.make ~count:60 ~name:"random columns survive every scheme" arb
    (fun vals ->
      let schema = Storage.Schema.make_nullable "q" [ ("v", V.Int, true) ] in
      let boxed =
        Array.of_list
          (List.map (function Some i -> V.VInt i | None -> V.Null) vals)
      in
      let n = Array.length boxed in
      List.for_all
        (fun enc ->
          let cat = Storage.Catalog.create () in
          let rel =
            Storage.Catalog.add ~encodings:[ (0, enc) ] cat schema
              (Storage.Layout.column schema)
          in
          Relation.load rel ~n (fun ~row -> [| boxed.(row) |]);
          let ok = ref true in
          for i = 0 to n - 1 do
            if Relation.get rel i 0 <> boxed.(i) then ok := false
          done;
          !ok)
        [ Encoding.Rle; Encoding.Sparse; Encoding.For_bp 1; Encoding.For_bp 2 ])

(* ------------------------------------------------------------------ *)
(* Direct execution                                                    *)
(* ------------------------------------------------------------------ *)

let queries =
  [
    (* RLE pushdown: run-granular range scan *)
    "select id from cmp where grp >= 2 and grp < 4";
    (* dictionary pushdown: bitmap over distinct values *)
    "select count(*) c from cmp where tag = 't03'";
    (* FOR pushdown: range pruning plus decode *)
    "select count(*) c from cmp where base < 100010";
    "select sum(base) s from cmp where base >= 100085";
    (* run-granular grouped aggregation *)
    "select grp, count(*) c, sum(base) s from cmp group by grp";
    (* sparse + compressed mix under a join-free pipeline *)
    "select id, note from cmp where note is not null";
    (* predicate with no survivors: prune verdict `None *)
    "select count(*) c from cmp where base > 200000";
  ]

let test_engines_match_plain () =
  let cat_plain, _ = build ~encodings:[] 500 in
  let encodings = all_schemes @ [ (4, Encoding.Sparse) ] in
  let cat_comp, _ = build ~encodings 500 in
  List.iter
    (fun sql ->
      let reference =
        Helpers.sorted_rows (Helpers.run_sql ~engine:Engine.Jit cat_plain sql)
      in
      List.iter
        (fun engine ->
          Helpers.check_rows
            (Printf.sprintf "%s: %s" (Engine.name engine) sql)
            reference
            (Helpers.sorted_rows (Helpers.run_sql ~engine cat_comp sql)))
        Engine.all)
    queries

let test_fastpath_counter_identity () =
  (* the compressed execution paths must trace the identical access stream
     under the optimized and the reference per-word tracer *)
  let run fastpath sql =
    let cat, _ = build ~encodings:all_schemes 400 in
    let hier = Option.get (Storage.Catalog.hier cat) in
    Memsim.Hierarchy.set_fastpath hier fastpath;
    Memsim.Hierarchy.reset hier;
    ignore (Helpers.run_sql ~engine:Engine.Jit cat sql);
    Memsim.Hierarchy.stats hier
  in
  List.iter
    (fun sql ->
      let fast = run true sql and slow = run false sql in
      Alcotest.(check bool)
        (Printf.sprintf "counters identical: %s" sql)
        true (fast = slow))
    [
      "select id from cmp where grp = 3";
      "select grp, sum(base) s from cmp group by grp";
      "select count(*) c from cmp where base < 100020";
    ]

let test_compressed_scan_cheaper () =
  (* acceptance: on the RLE/FOR-friendly table both simulated cycles and L2
     misses drop against plain storage *)
  let measure engine encodings sql =
    let cat, _ = build ~encodings 20_000 in
    let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
    let _, st = Engine.run_measured engine cat plan ~params:[||] in
    st
  in
  List.iter
    (fun (engine, sql) ->
      let plain = measure engine [] sql in
      let comp = measure engine all_schemes sql in
      Alcotest.(check bool)
        (Printf.sprintf "fewer cycles: %s" sql)
        true
        (Memsim.Stats.total_cycles comp < Memsim.Stats.total_cycles plain);
      Alcotest.(check bool)
        (Printf.sprintf "fewer L2 misses: %s" sql)
        true
        (comp.Memsim.Stats.l2_misses < plain.Memsim.Stats.l2_misses))
    [
      (* run-granular grouped aggregation is the bulk engine's path *)
      (Engine.Bulk, "select grp, count(*) c from cmp group by grp");
      (Engine.Jit, "select count(*) c from cmp where grp = 100");
    ]

(* ------------------------------------------------------------------ *)
(* Cost model and optimizer                                            *)
(* ------------------------------------------------------------------ *)

let test_model_predicts_compression_benefit () =
  let est encodings =
    let cat, _ = build ~encodings 5_000 in
    let plan =
      Relalg.Planner.plan cat
        (Relalg.Sql.parse cat "select grp, count(*) c from cmp group by grp")
    in
    Costmodel.Model.query_cost cat plan
  in
  Alcotest.(check bool) "model predicts RLE benefit" true
    (est [ (1, Encoding.Rle) ] < est [])

let test_hint_costing_matches_live_encoding () =
  (* costing a plain table under encoding hints must agree with costing the
     actually-encoded table (same stats, same atoms) *)
  let cat_plain, rel = build ~encodings:[ (1, Encoding.Rle) ] 2_000 in
  ignore rel;
  let sql = "select grp, count(*) c from cmp group by grp" in
  let plan = Relalg.Planner.plan cat_plain (Relalg.Sql.parse cat_plain sql) in
  let live = Costmodel.Model.query_cost cat_plain plan in
  let cat0, rel0 = build ~encodings:[] 2_000 in
  let st = (Compress.analyze rel0).(1) in
  let hint =
    {
      Costmodel.Emit.enc = Encoding.Rle;
      distinct = st.Compress.distinct;
      runs = st.Compress.runs;
      filled = st.Compress.non_null;
      exceptions = 0;
    }
  in
  let plan0 = Relalg.Planner.plan cat0 (Relalg.Sql.parse cat0 sql) in
  let hinted =
    Costmodel.Model.query_cost ~encodings:[ ("cmp", [ (1, hint) ]) ] cat0 plan0
  in
  Alcotest.(check bool)
    (Printf.sprintf "hinted %.3g within 1%% of live %.3g" hinted live)
    true
    (abs_float (hinted -. live) /. live < 0.01)

let test_optimizer_picks_compression () =
  let cat, _ = build ~encodings:[] 4_000 in
  let wl =
    List.map
      (fun sql -> (Relalg.Planner.plan cat (Relalg.Sql.parse cat sql), 1.0))
      [
        "select grp, count(*) c from cmp group by grp";
        "select count(*) c from cmp where tag = 't03'";
        "select sum(base) s from cmp where grp = 10";
      ]
  in
  let r = Layoutopt.Optimizer.optimize_table ~compress:true cat "cmp" wl in
  Alcotest.(check bool) "selects at least one encoding" true
    (r.Layoutopt.Optimizer.encodings <> []);
  Alcotest.(check bool) "compressed design is the cheaper one" true
    (r.Layoutopt.Optimizer.estimated_cost
    <= r.Layoutopt.Optimizer.row_cost +. 1e-6);
  (* applying the result must preserve the data and install the encodings *)
  Layoutopt.Optimizer.apply cat [ r ];
  let rel = Storage.Catalog.find cat "cmp" in
  Alcotest.(check bool) "encodings installed" true
    (Relation.encodings rel <> []);
  Alcotest.(check Helpers.row_testable) "data intact" (row_of 123)
    (Relation.get_tuple rel 123)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_account_compression () =
  let cat, _ = build ~encodings:[] 1_000 in
  let before_bytes =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter "mrdb_compress_rle_bytes_before_total")
  in
  let after_bytes =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter "mrdb_compress_rle_bytes_after_total")
  in
  Compress.apply cat "cmp" [ (1, Encoding.Rle) ];
  let d_before =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter "mrdb_compress_rle_bytes_before_total")
    - before_bytes
  and d_after =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter "mrdb_compress_rle_bytes_after_total")
    - after_bytes
  in
  Alcotest.(check bool) "bytes accounted" true (d_before > 0);
  Alcotest.(check bool)
    (Printf.sprintf "rle shrinks bytes (%d -> %d)" d_before d_after)
    true
    (d_after < d_before);
  let ratio =
    Obs.Metrics.gauge_value (Obs.Metrics.gauge "mrdb_compress_ratio_cmp")
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio gauge below 1 (%.3f)" ratio)
    true
    (ratio > 0. && ratio < 1.)

let test_decode_counter_ticks () =
  let cat, rel = build ~encodings:[ (3, Encoding.For_bp 1) ] 100 in
  ignore cat;
  let decodes () =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter "mrdb_compress_decodes_total")
  in
  let before = decodes () in
  ignore (Relation.get rel 5 3);
  Alcotest.(check bool) "decode counted" true (decodes () > before)

let suite =
  [
    Alcotest.test_case "advisor chooses schemes" `Quick
      test_advisor_chooses_schemes;
    Alcotest.test_case "advisor deterministic" `Quick test_advisor_deterministic;
    Alcotest.test_case "rle roundtrip" `Quick test_rle_roundtrip;
    Alcotest.test_case "for roundtrip" `Quick test_for_roundtrip;
    Alcotest.test_case "for exceptions roundtrip" `Quick
      test_for_exceptions_roundtrip;
    Alcotest.test_case "updates roundtrip" `Quick test_updates_roundtrip;
    Alcotest.test_case "append roundtrip" `Quick test_append_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_roundtrips;
    Alcotest.test_case "engines match plain" `Quick test_engines_match_plain;
    Alcotest.test_case "fastpath counter identity" `Quick
      test_fastpath_counter_identity;
    Alcotest.test_case "compressed scan cheaper" `Slow
      test_compressed_scan_cheaper;
    Alcotest.test_case "model predicts benefit" `Quick
      test_model_predicts_compression_benefit;
    Alcotest.test_case "hinted cost matches live" `Quick
      test_hint_costing_matches_live_encoding;
    Alcotest.test_case "optimizer picks compression" `Quick
      test_optimizer_picks_compression;
    Alcotest.test_case "metrics account compression" `Quick
      test_metrics_account_compression;
    Alcotest.test_case "decode counter ticks" `Quick test_decode_counter_ticks;
  ]
