(* Regression corpus for the differential fuzzer.  Two kinds of entries:

   - seed replays: seeds that once produced interesting cases (or anchor the
     CI acceptance run) are regenerated from the generator and re-run through
     the full differential matrix; any divergence fails the suite.
   - pinned cases: hand-written or shrinker-emitted [Case.t] literals that
     stay green even if the generator's seed -> case mapping changes.

   The suite also re-proves the harness can catch bugs at all: the driver's
   Lt -> Le predicate mutation must diverge on the boundary case below and
   shrink to a handful of rows. *)

module V = Storage.Value
module Expr = Relalg.Expr
module Plan = Relalg.Plan
module Case = Fuzz.Case
module Harness = Fuzz.Harness

let outcome_label = function
  | Harness.Ok -> "ok"
  | Harness.Diverged ds ->
      Printf.sprintf "%d divergence(s), first: %s" (List.length ds)
        (Format.asprintf "%a" Fuzz.Driver.pp_divergence (List.hd ds))
  | Harness.Raised msg -> "exception: " ^ msg

let check_ok label outcome =
  Alcotest.(check string) label "ok" (outcome_label outcome)

(* ------------------------------------------------------------------ *)
(* Seed replays                                                        *)
(* ------------------------------------------------------------------ *)

(* Seeds the harness has already cleared in long runs; pinned here so a
   behavioural change in any engine (or the oracle) that disagrees on one of
   these cases is caught by `dune runtest`, not only by the next fuzz run.
   Replay any of them by hand with `mrdb_cli fuzz --seed N --cases 1`. *)
let regression_seeds =
  [
    42 (* first seed of the CI acceptance run *);
    47 (* caught the Lt->Le mutation during harness bring-up *);
    58 (* two-table episode with a join and an update *);
    123 (* zipf-skewed group-by with NULL-heavy aggregate input *);
    1000 (* first seed of the wide overnight hunt *);
    442 (* anchors the compressed-layout axis: the advisor picks non-plain
           schemes for this seed's generated data, so replay exercises
           direct execution on compressed partitions in every engine *);
  ]

let test_seed_replays () =
  List.iter
    (fun seed ->
      check_ok (Printf.sprintf "seed %d" seed) (Harness.replay_seed seed))
    regression_seeds

(* A short fresh sweep, distinct from the pinned seeds, so runtest always
   exercises the generator end-to-end on never-inspected cases. *)
let test_fresh_sweep () =
  let failures = Harness.fuzz ~seed:9000 ~cases:8 ~max_rows:60 () in
  List.iter
    (fun (r : Harness.report) ->
      Alcotest.failf "fresh seed %d failed: %s@.%s" r.Harness.seed
        (outcome_label r.Harness.outcome)
        (Case.to_ocaml r.Harness.minimized))
    failures

(* ------------------------------------------------------------------ *)
(* Pinned boundary case                                                *)
(* ------------------------------------------------------------------ *)

(* Hand-written predicate-boundary case: rows 0..20 filtered by c0 < 10.
   Exactly one row (c0 = 10) separates Lt from Le, so the driver's injected
   mutation is guaranteed to diverge here — and the correct engines are
   guaranteed to agree with the oracle on the boundary row's exclusion. *)
let boundary_case =
  let rows = List.init 21 (fun i -> [| V.VInt i; V.VInt (i mod 3) |]) in
  {
    Case.seed = 0;
    tables =
      [
        {
          Case.tname = "t0";
          cols =
            [
              { Case.cname = "c0"; ty = V.Int; nullable = false };
              { Case.cname = "c1"; ty = V.Int; nullable = false };
            ];
          groups = [ [ 0 ]; [ 1 ] ];
          rows;
        };
      ];
    episode =
      [
        Case.Query
          (Plan.Select
             (Plan.Scan "t0", Expr.Cmp (Expr.Lt, Expr.Col 0, Expr.Const (V.VInt 10))));
        Case.Query
          (Plan.Group_by
             {
               child = Plan.Scan "t0";
               keys = [ (Expr.Col 1, "k") ];
               aggs =
                 [ Relalg.Aggregate.(make Sum ~expr:(Expr.Col 0) "s") ];
             });
      ];
    params = [| V.VInt 0; V.VInt 0 |];
  }

let test_boundary_case () =
  check_ok "pinned boundary case" (Harness.replay_case boundary_case)

(* ------------------------------------------------------------------ *)
(* Pinned compressed case                                              *)
(* ------------------------------------------------------------------ *)

(* Hand-written case whose data is compression-friendly by construction:
   c0 is sorted with long runs (RLE), c1 clusters in a narrow window
   (frame of reference).  The [Comp] layout mode therefore runs every
   engine directly on compressed partitions — run-granular selection,
   range-pruned FOR scans, and run-granular grouped aggregation — and the
   update in the episode exercises writes through the compressed stores. *)
let compressed_case =
  let rows =
    List.init 48 (fun i -> [| V.VInt (i / 8); V.VInt (100_000 + (i mod 9)) |])
  in
  {
    Case.seed = 0;
    tables =
      [
        {
          Case.tname = "t0";
          cols =
            [
              { Case.cname = "c0"; ty = V.Int; nullable = false };
              { Case.cname = "c1"; ty = V.Int; nullable = false };
            ];
          groups = [ [ 0; 1 ] ];
          rows;
        };
      ];
    episode =
      [
        Case.Query
          (Plan.Select
             (Plan.Scan "t0",
              Expr.Cmp (Expr.Ge, Expr.Col 0, Expr.Const (V.VInt 2))));
        Case.Query
          (Plan.Select
             (Plan.Scan "t0",
              Expr.Cmp (Expr.Lt, Expr.Col 1, Expr.Const (V.VInt 100_004))));
        Case.Query
          (Plan.Group_by
             {
               child = Plan.Scan "t0";
               keys = [ (Expr.Col 0, "k") ];
               aggs =
                 [
                   Relalg.Aggregate.(make Count_star "n");
                   Relalg.Aggregate.(make Sum ~expr:(Expr.Col 1) "s");
                 ];
             });
        Case.Exec
          (Plan.Update
             {
               table = "t0";
               pred =
                 Some (Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Const (V.VInt 3)));
               assignments = [ (1, Expr.Const (V.VInt 987_654_321)) ];
             });
        Case.Query
          (Plan.Group_by
             {
               child = Plan.Scan "t0";
               keys = [ (Expr.Col 0, "k") ];
               aggs = [ Relalg.Aggregate.(make Max ~expr:(Expr.Col 1) "m") ];
             });
      ];
    params = [| V.VInt 0; V.VInt 0 |];
  }

let test_compressed_case () =
  (* the advisor must actually compress this data, otherwise the pinned
     case stops covering the compressed axis *)
  let tab = List.hd compressed_case.Case.tables in
  let plan =
    Storage.Compress.plan_rows
      (Case.schema_of_table tab)
      (Array.of_list tab.Case.rows)
  in
  Alcotest.(check bool) "advisor compresses the pinned data" true (plan <> []);
  check_ok "pinned compressed case" (Harness.replay_case compressed_case)

let compressed_per_engine engine () =
  let oracle = Fuzz.Driver.oracle_results compressed_case in
  let out =
    Fuzz.Driver.run_combo ~engine ~mode:Case.Comp ~fastpath:true
      compressed_case ~oracle
  in
  match out.Fuzz.Driver.divergences with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "compressed case diverged: %a" Fuzz.Driver.pp_divergence d

(* The new-corpus-on-shared-runner entry: the pinned case, one Alcotest case
   per engine via [Helpers.across_engines], each engine checked directly
   against the oracle on NSM with the fast path on. *)
let boundary_per_engine engine () =
  let oracle = Fuzz.Driver.oracle_results boundary_case in
  let out =
    Fuzz.Driver.run_combo ~engine ~mode:Case.Nsm ~fastpath:true boundary_case
      ~oracle
  in
  match out.Fuzz.Driver.divergences with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "boundary case diverged: %a" Fuzz.Driver.pp_divergence d

(* ------------------------------------------------------------------ *)
(* Pinned advisor case                                                 *)
(* ------------------------------------------------------------------ *)

(* Hand-written case for the `fuzz --advisor` axis: a six-column table
   stored row-wise, hammered with a one-column aggregate — the IP advisor
   splits the hot column out mid-episode.  The wide query and the update
   that follow must still agree with the oracle, and so must the final
   table contents: reorganization never changes answers.  The suite also
   asserts the repartition actually happened, otherwise the pinned case
   would stop covering the axis. *)
let advisor_case =
  let rows =
    List.init 64 (fun i ->
        [|
          V.VInt i; V.VInt (i * 7 mod 13); V.VInt (i mod 5);
          V.VInt (1000 + i); V.VInt (i * i mod 97); V.VInt (i mod 2);
        |])
  in
  let narrow =
    Plan.Group_by
      {
        child = Plan.Scan "t0";
        keys = [];
        aggs = [ Relalg.Aggregate.(make Sum ~expr:(Expr.Col 0) "s") ];
      }
  in
  {
    Case.seed = 0;
    tables =
      [
        {
          Case.tname = "t0";
          cols =
            List.init 6 (fun i ->
                {
                  Case.cname = Printf.sprintf "c%d" i;
                  ty = V.Int;
                  nullable = false;
                });
          groups = [ [ 0; 1; 2; 3; 4; 5 ] ] (* starts as a row store *);
          rows;
        };
      ];
    episode =
      [
        Case.Query narrow;
        Case.Query narrow;
        Case.Query narrow;
        Case.Query narrow;
        Case.Query (Plan.Scan "t0");
        Case.Exec
          (Plan.Update
             {
               table = "t0";
               pred =
                 Some (Expr.Cmp (Expr.Lt, Expr.Col 0, Expr.Const (V.VInt 8)));
               assignments = [ (3, Expr.Const (V.VInt 424_242)) ];
             });
        Case.Query (Plan.Scan "t0");
        Case.Query narrow;
      ];
    params = [| V.VInt 0; V.VInt 0 |];
  }

let test_advisor_case () =
  let outcome, repartitions = Harness.replay_advisor advisor_case in
  check_ok "pinned advisor case" outcome;
  Alcotest.(check bool)
    (Printf.sprintf "advisor repartitioned mid-episode (got %d)" repartitions)
    true (repartitions > 0)

(* A short fresh advisor sweep so runtest always exercises the axis on
   generated cases too. *)
let test_advisor_sweep () =
  let failures, _ = Harness.fuzz_advisor ~seed:9100 ~cases:6 ~max_rows:60 () in
  List.iter
    (fun (r : Harness.report) ->
      Alcotest.failf "advisor seed %d failed: %s@.%s" r.Harness.seed
        (outcome_label r.Harness.outcome)
        (Case.to_ocaml r.Harness.minimized))
    failures

(* ------------------------------------------------------------------ *)
(* Pinned shard case                                                   *)
(* ------------------------------------------------------------------ *)

(* Hand-written case for the `fuzz --shards` axis: two tables sized so
   that one distributed run exercises every exchange shape — a gathered
   filter, a partially-aggregated group-by, a join (t1 is small enough
   that broadcast wins), and a 2PC update between queries.  Replayed over
   2 and 3 shards; answers, the final shard unions, and the post-recovery
   digests must all match the single-node oracle. *)
let shard_case =
  let rows0 =
    List.init 40 (fun i -> [| V.VInt i; V.VInt (i mod 6); V.VInt (i * 7 mod 53) |])
  in
  let rows1 = List.init 6 (fun i -> [| V.VInt i; V.VInt (i * 100) |]) in
  {
    Case.seed = 0;
    tables =
      [
        {
          Case.tname = "t0";
          cols =
            [
              { Case.cname = "c0"; ty = V.Int; nullable = false };
              { Case.cname = "c1"; ty = V.Int; nullable = false };
              { Case.cname = "c2"; ty = V.Int; nullable = false };
            ];
          groups = [ [ 0; 1; 2 ] ];
          rows = rows0;
        };
        {
          Case.tname = "t1";
          cols =
            [
              { Case.cname = "d0"; ty = V.Int; nullable = false };
              { Case.cname = "d1"; ty = V.Int; nullable = false };
            ];
          groups = [ [ 0 ]; [ 1 ] ];
          rows = rows1;
        };
      ];
    episode =
      [
        Case.Query
          (Plan.Select
             (Plan.Scan "t0",
              Expr.Cmp (Expr.Ge, Expr.Col 2, Expr.Const (V.VInt 20))));
        Case.Query
          (Plan.Group_by
             {
               child = Plan.Scan "t0";
               keys = [ (Expr.Col 1, "k") ];
               aggs =
                 [
                   Relalg.Aggregate.(make Sum ~expr:(Expr.Col 2) "s");
                   Relalg.Aggregate.(make Count_star "n");
                 ];
             });
        Case.Query
          (Plan.Join
             {
               left = Plan.Scan "t1";
               right = Plan.Scan "t0";
               left_keys = [ 0 ];
               right_keys = [ 1 ];
             });
        Case.Exec
          (Plan.Update
             {
               table = "t0";
               pred =
                 Some (Expr.Cmp (Expr.Lt, Expr.Col 0, Expr.Const (V.VInt 10)));
               assignments = [ (2, Expr.Const (V.VInt 424)) ];
             });
        Case.Query
          (Plan.Group_by
             {
               child = Plan.Scan "t0";
               keys = [ (Expr.Col 1, "k") ];
               aggs = [ Relalg.Aggregate.(make Max ~expr:(Expr.Col 2) "m") ];
             });
      ];
    params = [| V.VInt 0; V.VInt 0 |];
  }

let test_shard_case () =
  List.iter
    (fun shards ->
      check_ok
        (Printf.sprintf "pinned shard case over %d shards" shards)
        (Harness.replay_shard ~shards shard_case))
    [ 2; 3 ]

(* A short fresh sweep on the shard axis too. *)
let test_shard_sweep () =
  let failures = Harness.fuzz_shard ~seed:9200 ~cases:5 ~max_rows:60 ~shards:2 () in
  List.iter
    (fun (r : Harness.report) ->
      Alcotest.failf "shard seed %d failed: %s@.%s" r.Harness.seed
        (outcome_label r.Harness.outcome)
        (Case.to_ocaml r.Harness.minimized))
    failures

(* ------------------------------------------------------------------ *)
(* Mutation self-check                                                 *)
(* ------------------------------------------------------------------ *)

(* The harness is only trustworthy if it catches bugs: weakening the first
   Lt to Le (the driver's --mutate switch) must diverge on the boundary
   case, and the shrinker must cut the 21-row table to a handful of rows
   while preserving the divergence. *)
let test_mutation_caught () =
  match Harness.replay_case ~mutate:true boundary_case with
  | Harness.Ok -> Alcotest.fail "Lt->Le mutation was not detected"
  | Harness.Raised msg -> Alcotest.failf "mutated run raised: %s" msg
  | Harness.Diverged _ as outcome ->
      let minimized =
        Fuzz.Shrink.minimize
          ~failing:(Harness.failure_pred ~mutate:true outcome)
          boundary_case
      in
      let n = Case.total_rows minimized in
      Alcotest.(check bool)
        (Printf.sprintf "shrinks below 10 rows (got %d)" n)
        true (n <= 10);
      (* the shrunk case must itself still diverge under the mutation *)
      (match Harness.replay_case ~mutate:true minimized with
      | Harness.Diverged _ -> ()
      | o -> Alcotest.failf "minimized case no longer diverges: %s"
               (outcome_label o))

let suite =
  Alcotest.test_case "regression seeds replay clean" `Slow test_seed_replays
  :: Alcotest.test_case "fresh seed sweep" `Slow test_fresh_sweep
  :: Alcotest.test_case "pinned boundary case" `Quick test_boundary_case
  :: Alcotest.test_case "pinned compressed case" `Quick test_compressed_case
  :: Alcotest.test_case "pinned advisor case repartitions and stays correct"
       `Quick test_advisor_case
  :: Alcotest.test_case "fresh advisor sweep" `Slow test_advisor_sweep
  :: Alcotest.test_case "pinned shard case over 2 and 3 shards" `Quick
       test_shard_case
  :: Alcotest.test_case "fresh shard sweep" `Slow test_shard_sweep
  :: Alcotest.test_case "Lt->Le mutation caught and shrunk" `Quick
       test_mutation_caught
  :: Helpers.across_engines "boundary case vs oracle" boundary_per_engine
  @ Helpers.across_engines "compressed case vs oracle" compressed_per_engine
