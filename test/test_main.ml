let () =
  Alcotest.run "mrdb"
    [
      ("util", Test_util.suite);
      ("memsim", Test_memsim.suite);
      ("tracefast", Test_tracefast.suite);
      ("storage", Test_storage.suite);
      ("indexes", Test_indexes.suite);
      ("encodings", Test_encodings.suite);
      ("compress", Test_compress.suite);
      ("csv", Test_csv.suite);
      ("relalg", Test_relalg.suite);
      ("sampling", Test_sampling.suite);
      ("engines", Test_engines.suite);
      ("parallel", Test_parallel.suite);
      ("c_emitter", Test_c_emitter.suite);
      ("compiled", Test_compiled.suite);
      ("update", Test_update.suite);
      ("costmodel", Test_costmodel.suite);
      ("model_validation", Test_model_validation.suite);
      ("layoutopt", Test_layoutopt.suite);
      ("adaptive", Test_adaptive.suite);
      ("advisor", Test_advisor.suite);
      ("workloads", Test_workloads.suite);
      ("edge_cases", Test_edge_cases.suite);
      ("robustness", Test_robustness.suite);
      ("recovery", Test_recovery.suite);
      ("txn", Test_txn.suite);
      ("shard", Test_shard.suite);
      ("fuzz_corpus", Fuzz_corpus.suite);
      ("db", Test_db.suite);
      ("obs", Test_obs.suite);
    ]
