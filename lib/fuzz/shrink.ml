(* Greedy fixpoint minimizer for failing cases.  Every candidate edit is
   kept only if the case still fails, so the output reproduces the original
   divergence (or a simpler one) with as little left as possible:

     - drop whole statements, then whole tables no statement mentions
     - delta-debug rows away (halves first, then single rows)
     - drop columns no statement references (with index remapping)
     - strip plan wrappers and simplify predicates
     - halve integer domains in the data

   The passes repeat until none of them makes progress. *)

module V = Storage.Value
module Plan = Relalg.Plan
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let stmt_plan = function Case.Query p -> p | Case.Exec p -> p

(* ------------------------------------------------------------------ *)
(* Column dropping: remap every table-level column reference            *)
(* ------------------------------------------------------------------ *)

(* does this subplan's output expose table [t]'s raw columns? *)
let rec on_table t = function
  | Plan.Scan n -> n = t
  | Plan.Select (c, _) -> on_table t c
  | _ -> false

let shift k i = if i > k then i - 1 else i

let remap_expr k e =
  if List.mem k (Expr.cols e) then None
  else Some (Expr.remap e (shift k))

let remap_agg k (a : Aggregate.t) =
  match a.Aggregate.expr with
  | None -> Some a
  | Some e ->
      Option.map
        (fun e' -> Aggregate.make a.Aggregate.func ~expr:e' a.Aggregate.name)
        (remap_expr k e)

let rec all_some = function
  | [] -> Some []
  | None :: _ -> None
  | Some x :: rest -> Option.map (fun xs -> x :: xs) (all_some rest)

(* [Some p'] iff dropping column [k] of table [t] leaves [p] well-formed:
   no reference to the dropped column, every other table-level reference
   shifted.  Plans joining over [t] are left alone (combined-output
   references are not worth tracking for a shrink heuristic). *)
let rec remap_plan t k p =
  match p with
  | Plan.Scan _ -> Some p
  | Plan.Select (c, pred) ->
      if on_table t c then
        match (remap_expr k pred, remap_plan t k c) with
        | Some pred', Some c' -> Some (Plan.Select (c', pred'))
        | _ -> None
      else Option.map (fun c' -> Plan.Select (c', pred)) (remap_plan t k c)
  | Plan.Project (c, exprs) ->
      if on_table t c then
        match
          ( all_some
              (List.map
                 (fun (e, n) ->
                   Option.map (fun e' -> (e', n)) (remap_expr k e))
                 exprs),
            remap_plan t k c )
        with
        | Some exprs', Some c' -> Some (Plan.Project (c', exprs'))
        | _ -> None
      else Option.map (fun c' -> Plan.Project (c', exprs)) (remap_plan t k c)
  | Plan.Group_by { child; keys; aggs } ->
      if on_table t child then
        match
          ( all_some
              (List.map
                 (fun (e, n) ->
                   Option.map (fun e' -> (e', n)) (remap_expr k e))
                 keys),
            all_some (List.map (remap_agg k) aggs),
            remap_plan t k child )
        with
        | Some keys', Some aggs', Some c' ->
            Some (Plan.Group_by { child = c'; keys = keys'; aggs = aggs' })
        | _ -> None
      else
        Option.map
          (fun c' -> Plan.Group_by { child = c'; keys; aggs })
          (remap_plan t k child)
  | Plan.Sort { child; keys } ->
      if on_table t child then
        if List.exists (fun (i, _) -> i = k) keys then None
        else
          Option.map
            (fun c' ->
              Plan.Sort
                { child = c'; keys = List.map (fun (i, d) -> (shift k i, d)) keys })
            (remap_plan t k child)
      else
        Option.map (fun c' -> Plan.Sort { child = c'; keys }) (remap_plan t k child)
  | Plan.Limit (c, n) -> Option.map (fun c' -> Plan.Limit (c', n)) (remap_plan t k c)
  | Plan.Join { left; right; _ } ->
      if List.mem t (Plan.tables left) || List.mem t (Plan.tables right) then
        None
      else Some p
  | Plan.Insert { table; values } ->
      if table = t then
        if List.length values <= k then None
        else Some (Plan.Insert { table; values = drop_nth values k })
      else Some p
  | Plan.Update { table; assignments; pred } ->
      if table = t then
        if List.exists (fun (a, _) -> a = k) assignments then None
        else
          let assignments' =
            all_some
              (List.map
                 (fun (a, e) ->
                   Option.map (fun e' -> (shift k a, e')) (remap_expr k e))
                 assignments)
          in
          let pred' =
            match pred with
            | None -> Some None
            | Some pr -> Option.map (fun w -> Some w) (remap_expr k pr)
          in
          match (assignments', pred') with
          | Some a', Some p' ->
              Some (Plan.Update { table; assignments = a'; pred = p' })
          | _ -> None
      else Some p

let drop_column (c : Case.t) tname k =
  let episode' =
    all_some
      (List.map
         (fun stmt ->
           match stmt with
           | Case.Query p ->
               Option.map (fun p' -> Case.Query p') (remap_plan tname k p)
           | Case.Exec p ->
               Option.map (fun p' -> Case.Exec p') (remap_plan tname k p))
         c.Case.episode)
  in
  match episode' with
  | None -> None
  | Some episode ->
      let tables =
        List.map
          (fun (tab : Case.table) ->
            if tab.Case.tname <> tname then tab
            else
              {
                tab with
                Case.cols = drop_nth tab.Case.cols k;
                rows =
                  List.map
                    (fun row ->
                      Array.of_list (drop_nth (Array.to_list row) k))
                    tab.Case.rows;
                groups =
                  List.filter_map
                    (fun g ->
                      match
                        List.filter_map
                          (fun a ->
                            if a = k then None else Some (shift k a))
                          g
                      with
                      | [] -> None
                      | g' -> Some g')
                    tab.Case.groups;
              })
          c.Case.tables
      in
      (* a table must keep at least one column *)
      if
        List.exists
          (fun (tab : Case.table) -> tab.Case.cols = [])
          tables
      then None
      else Some { c with Case.tables; episode }

(* ------------------------------------------------------------------ *)
(* Plan simplification candidates                                       *)
(* ------------------------------------------------------------------ *)

(* one-step structural simplifications of a plan, in decreasing order of
   how much they remove *)
let rec plan_steps p =
  let wrap f = List.map f in
  match p with
  | Plan.Scan _ | Plan.Insert _ -> []
  | Plan.Select (c, pred) ->
      (c :: List.map (fun pr -> Plan.Select (c, pr)) (pred_steps pred))
      @ wrap (fun c' -> Plan.Select (c', pred)) (plan_steps c)
  | Plan.Project (c, exprs) ->
      (c
      :: List.concat
           (List.mapi
              (fun i _ ->
                if List.length exprs > 1 then
                  [ Plan.Project (c, drop_nth exprs i) ]
                else [])
              exprs))
      @ wrap (fun c' -> Plan.Project (c', exprs)) (plan_steps c)
  | Plan.Sort { child; keys } ->
      (child
      :: List.concat
           (List.mapi
              (fun i _ ->
                if List.length keys > 1 then
                  [ Plan.Sort { child; keys = drop_nth keys i } ]
                else [])
              keys))
      @ wrap (fun c' -> Plan.Sort { child = c'; keys }) (plan_steps child)
  | Plan.Limit (c, n) ->
      (c :: (if n > 0 then [ Plan.Limit (c, n / 2) ] else []))
      @ wrap (fun c' -> Plan.Limit (c', n)) (plan_steps c)
  | Plan.Group_by { child; keys; aggs } ->
      List.concat
        (List.mapi
           (fun i _ ->
             if List.length aggs > 1 then
               [ Plan.Group_by { child; keys; aggs = drop_nth aggs i } ]
             else [])
           aggs)
      @ List.concat
          (List.mapi
             (fun i _ -> [ Plan.Group_by { child; keys = drop_nth keys i; aggs } ])
             keys)
      @ wrap (fun c' -> Plan.Group_by { child = c'; keys; aggs }) (plan_steps child)
  | Plan.Join ({ left; right; _ } as j) ->
      wrap (fun l -> Plan.Join { j with left = l }) (plan_steps left)
      @ wrap (fun r -> Plan.Join { j with right = r }) (plan_steps right)
  | Plan.Update { table; assignments; pred } ->
      (match pred with
      | Some pr ->
          Plan.Update { table; assignments; pred = None }
          :: List.map
               (fun pr' -> Plan.Update { table; assignments; pred = Some pr' })
               (pred_steps pr)
      | None -> [])
      @ List.concat
          (List.mapi
             (fun i _ ->
               if List.length assignments > 1 then
                 [ Plan.Update { table; assignments = drop_nth assignments i; pred } ]
               else [])
             assignments)

and pred_steps = function
  | Expr.And es | Expr.Or es -> es
  | Expr.Not e -> [ e ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* The passes                                                           *)
(* ------------------------------------------------------------------ *)

let m_shrink_steps =
  Obs.Metrics.counter "mrdb_fuzz_shrink_steps_total"
    ~help:"Shrink candidates evaluated while minimizing failing cases"

let try_candidates ~failing current candidates =
  List.fold_left
    (fun acc cand ->
      match acc with
      | Some _ -> acc
      | None ->
          Obs.Metrics.incr m_shrink_steps;
          if failing cand then Some cand else None)
    None (candidates current)

(* apply [candidates] repeatedly until no candidate fails anymore *)
let exhaust ~failing candidates c =
  let rec go c =
    match try_candidates ~failing c candidates with
    | Some c' -> go c'
    | None -> c
  in
  go c

let drop_statement_candidates (c : Case.t) =
  List.mapi
    (fun i _ -> { c with Case.episode = drop_nth c.Case.episode i })
    c.Case.episode
  |> List.filter (fun (c' : Case.t) -> c'.Case.episode <> [])

let drop_table_candidates (c : Case.t) =
  if List.length c.Case.tables <= 1 then []
  else
    let used =
      List.concat_map (fun s -> Plan.tables (stmt_plan s)) c.Case.episode
    in
    List.filter_map
      (fun (tab : Case.table) ->
        if List.mem tab.Case.tname used then None
        else
          Some
            {
              c with
              Case.tables =
                List.filter
                  (fun (t : Case.table) -> t.Case.tname <> tab.Case.tname)
                  c.Case.tables;
            })
      c.Case.tables

(* delta-debugging on one table's rows: drop progressively smaller chunks *)
let shrink_rows ~failing (c : Case.t) =
  let shrink_table c tname =
    let rows_of c =
      (Case.find_table c tname).Case.rows
    in
    let with_rows (c : Case.t) rows =
      {
        c with
        Case.tables =
          List.map
            (fun (tab : Case.table) ->
              if tab.Case.tname = tname then { tab with Case.rows = rows }
              else tab)
            c.Case.tables;
      }
    in
    let rec chunk_pass c size =
      let rows = rows_of c in
      let n = List.length rows in
      if size = 0 || n = 0 then c
      else begin
        let rec try_from c start =
          let rows = rows_of c in
          let n = List.length rows in
          if start >= n then c
          else
            let kept =
              List.filteri (fun i _ -> i < start || i >= start + size) rows
            in
            let cand = with_rows c kept in
            if List.length kept < n && failing cand then try_from cand start
            else try_from c (start + size)
        in
        let c = try_from c 0 in
        chunk_pass c (size / 2)
      end
    in
    let n = List.length (rows_of c) in
    chunk_pass c (max 1 (n / 2))
  in
  List.fold_left
    (fun c (tab : Case.table) -> shrink_table c tab.Case.tname)
    c c.Case.tables

let drop_column_candidates (c : Case.t) =
  List.concat_map
    (fun (tab : Case.table) ->
      List.concat
        (List.mapi
           (fun k _ ->
             match drop_column c tab.Case.tname k with
             | Some c' -> [ c' ]
             | None -> [])
           tab.Case.cols))
    c.Case.tables

let simplify_plan_candidates (c : Case.t) =
  List.concat
    (List.mapi
       (fun i stmt ->
         let rebuild p =
           {
             c with
             Case.episode =
               List.mapi
                 (fun j s ->
                   if i = j then
                     match stmt with
                     | Case.Query _ -> Case.Query p
                     | Case.Exec _ -> Case.Exec p
                   else s)
                 c.Case.episode;
           }
         in
         List.map rebuild (plan_steps (stmt_plan stmt)))
       c.Case.episode)

let halve_domains (c : Case.t) =
  let halve_value = function
    | V.VInt v when v <> 0 -> V.VInt (v / 2)
    | v -> v
  in
  {
    c with
    Case.params = Array.map halve_value c.Case.params;
    tables =
      List.map
        (fun (tab : Case.table) ->
          { tab with Case.rows = List.map (Array.map halve_value) tab.Case.rows })
        c.Case.tables;
  }

let minimize ?(max_passes = 6) ~failing (c : Case.t) =
  let pass c =
    let c = exhaust ~failing drop_statement_candidates c in
    let c = exhaust ~failing drop_table_candidates c in
    let c = shrink_rows ~failing c in
    let c = exhaust ~failing drop_column_candidates c in
    let c = exhaust ~failing simplify_plan_candidates c in
    let c =
      let h = halve_domains c in
      if h <> c && failing h then h else c
    in
    c
  in
  let rec go c n =
    if n = 0 then c
    else
      let c' = pass c in
      if c' = c then c else go c' (n - 1)
  in
  go c max_passes
