(* The differential driver.  One case fans out into the full matrix:

     engine (volcano/bulk/vectorized/hyrise/jit + parallel) ×
     layout (NSM / DSM / the case's random PDSM) ×
     tracer fastpath (on / off, sequential engines)

   Every combination replays the whole episode against a fresh catalog and
   must (a) produce the oracle's result multiset for every query and the
   oracle's final table contents, (b) report byte-identical simulator
   counters across fastpath modes, (c) satisfy the metamorphic invariants —
   truth-preserving predicate rewrites keep results, and WAL + crash
   recovery reproduces the live catalog digest.

   [mutate] injects a deliberate comparison-weakening bug (Lt becomes Le)
   into one combination; the harness uses it to prove the oracle actually
   has teeth. *)

module V = Storage.Value
module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Plan = Relalg.Plan
module Expr = Relalg.Expr
module Engine = Engines.Engine
module Runtime = Engines.Runtime

type divergence = {
  combo : string; (* e.g. "bulk/dsm/fast" *)
  statement : int; (* episode index, or -1 for end-of-episode checks *)
  detail : string;
}

let pp_divergence ppf d =
  Format.fprintf ppf "[%s] stmt %d: %s" d.combo d.statement d.detail

(* ------------------------------------------------------------------ *)
(* Result comparison (multisets, with float tolerance)                 *)
(* ------------------------------------------------------------------ *)

(* Parallel aggregation may re-associate float sums, so float equality is
   relative-epsilon; everything else is exact. *)
let value_eq a b =
  match (a, b) with
  | V.VFloat x, V.VFloat y ->
      x = y
      || (Float.is_nan x && Float.is_nan y)
      || Float.abs (x -. y) <= 1e-9 *. Float.max (Float.abs x) (Float.abs y)
  | _ -> V.compare a b = 0

let row_eq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i va -> if not (value_eq va b.(i)) then ok := false) a;
  !ok

let compare_rows_total (a : V.t array) (b : V.t array) =
  let c = compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else begin
    let r = ref 0 in
    (try
       Array.iteri
         (fun i va ->
           let c = V.compare va b.(i) in
           if c <> 0 then begin
             r := c;
             raise Exit
           end)
         a
     with Exit -> ());
    !r
  end

let sort_multiset rows = List.sort compare_rows_total rows

let show_row row =
  "("
  ^ String.concat ", " (Array.to_list (Array.map V.to_display row))
  ^ ")"

(* [None] if equal as multisets, otherwise a human-readable discrepancy *)
let multiset_mismatch ~expected ~got =
  let e = sort_multiset expected and g = sort_multiset got in
  let ne = List.length e and ng = List.length g in
  if ne <> ng then
    Some (Printf.sprintf "cardinality: expected %d rows, got %d" ne ng)
  else
    let rec go i e g =
      match (e, g) with
      | [], [] -> None
      | re :: e', rg :: g' ->
          if row_eq re rg then go (i + 1) e' g'
          else
            Some
              (Printf.sprintf "row %d (sorted): expected %s, got %s" i
                 (show_row re) (show_row rg))
      | _ -> Some "length mismatch"
    in
    go 0 e g

let columns_mismatch ~(expected : string array) ~(got : string array) =
  if expected <> got then
    Some
      (Printf.sprintf "columns: expected [%s], got [%s]"
         (String.concat "; " (Array.to_list expected))
         (String.concat "; " (Array.to_list got)))
  else None

(* ------------------------------------------------------------------ *)
(* Catalog construction                                                *)
(* ------------------------------------------------------------------ *)

let build_catalog ?hier (c : Case.t) mode =
  let cat = Catalog.create ?hier () in
  List.iter
    (fun (tab : Case.table) ->
      let schema = Case.schema_of_table tab in
      let layout = Case.layout_of_table tab mode in
      let rows = Array.of_list tab.Case.rows in
      let encodings, layout =
        match mode with
        | Case.Comp ->
            (* the advisor's plan over the generated rows; Sparse/RLE
               columns move to singleton partitions *)
            let encs = Storage.Compress.plan_rows schema rows in
            (encs, Storage.Compress.singleton_layout schema layout encs)
        | _ -> ([], layout)
      in
      let rel = Catalog.add ~encodings cat schema layout in
      if Array.length rows > 0 then
        Relation.load rel ~n:(Array.length rows) (fun ~row -> rows.(row)))
    c.Case.tables;
  cat

(* ------------------------------------------------------------------ *)
(* Mutation injection (the harness self-test)                          *)
(* ------------------------------------------------------------------ *)

let rec weaken_expr e =
  match e with
  | Expr.Cmp (Expr.Lt, a, b) -> Some (Expr.Cmp (Expr.Le, a, b))
  | Expr.Cmp _ | Expr.Like _ | Expr.Col _ | Expr.Param _ | Expr.Const _
  | Expr.IsNull _ | Expr.Arith _ ->
      None
  | Expr.Not e' -> Option.map (fun w -> Expr.Not w) (weaken_expr e')
  | Expr.And es ->
      Option.map (fun ws -> Expr.And ws) (weaken_first es)
  | Expr.Or es -> Option.map (fun ws -> Expr.Or ws) (weaken_first es)

and weaken_first = function
  | [] -> None
  | e :: rest -> (
      match weaken_expr e with
      | Some w -> Some (w :: rest)
      | None -> Option.map (fun ws -> e :: ws) (weaken_first rest))

(* weaken the first strict comparison found in a Select predicate *)
let rec weaken_plan = function
  | Plan.Select (child, pred) -> (
      match weaken_expr pred with
      | Some w -> Some (Plan.Select (child, w))
      | None ->
          Option.map (fun c -> Plan.Select (c, pred)) (weaken_plan child))
  | Plan.Scan _ | Plan.Insert _ | Plan.Update _ -> None
  | Plan.Project (child, exprs) ->
      Option.map (fun c -> Plan.Project (c, exprs)) (weaken_plan child)
  | Plan.Join ({ left; right; _ } as j) -> (
      match weaken_plan left with
      | Some l -> Some (Plan.Join { j with left = l })
      | None -> Option.map (fun r -> Plan.Join { j with right = r }) (weaken_plan right))
  | Plan.Group_by ({ child; _ } as g) ->
      Option.map (fun c -> Plan.Group_by { g with child = c }) (weaken_plan child)
  | Plan.Sort ({ child; _ } as s) ->
      Option.map (fun c -> Plan.Sort { s with child = c }) (weaken_plan child)
  | Plan.Limit (child, n) ->
      Option.map (fun c -> Plan.Limit (c, n)) (weaken_plan child)

(* ------------------------------------------------------------------ *)
(* Episode execution on one combination                                *)
(* ------------------------------------------------------------------ *)

type combo_outcome = {
  divergences : divergence list;
  stats : Memsim.Stats.t list; (* per-query counters, in episode order *)
}

let oracle_results (c : Case.t) =
  let o = Oracle.init c in
  let per_stmt =
    List.map (fun stmt -> Oracle.run_statement o stmt) c.Case.episode
  in
  let dumps =
    List.map (fun (t : Case.table) -> Oracle.dump o t.Case.tname) c.Case.tables
  in
  (per_stmt, dumps)

let stats_fields (s : Memsim.Stats.t) =
  [
    ("accesses", s.Memsim.Stats.accesses);
    ("reads", s.Memsim.Stats.reads);
    ("writes", s.Memsim.Stats.writes);
    ("l1_misses", s.Memsim.Stats.l1_misses);
    ("l2_misses", s.Memsim.Stats.l2_misses);
    ("llc_accesses", s.Memsim.Stats.llc_accesses);
    ("llc_seq_misses", s.Memsim.Stats.llc_seq_misses);
    ("llc_rand_misses", s.Memsim.Stats.llc_rand_misses);
    ("tlb_misses", s.Memsim.Stats.tlb_misses);
    ("prefetches", s.Memsim.Stats.prefetches);
    ("mem_cycles", s.Memsim.Stats.mem_cycles);
    ("cpu_cycles", s.Memsim.Stats.cpu_cycles);
  ]

let stats_mismatch a b =
  List.fold_left2
    (fun acc (name, va) (_, vb) ->
      match acc with
      | Some _ -> acc
      | None ->
          if va <> vb then
            Some (Printf.sprintf "counter %s: %d vs %d" name va vb)
          else None)
    None (stats_fields a) (stats_fields b)

(* Run the whole episode on a fresh catalog.  [domains] > 1 exercises the
   morsel-parallel path; [fastpath] toggles the tracer fast path; [mutate]
   injects the Lt->Le bug into query plans. *)
let run_combo ?(mutate = false) ?(domains = 1) ?morsel_size ~engine ~mode
    ~fastpath (c : Case.t) ~oracle:(per_stmt_oracle, dumps_oracle) =
  let combo =
    Printf.sprintf "%s%s/%s/%s" (Engine.name engine)
      (if domains > 1 then Printf.sprintf "(x%d)" domains else "")
      (Case.layout_mode_name mode)
      (if fastpath then "fast" else "slow")
  in
  let hier = Memsim.Hierarchy.create () in
  Memsim.Hierarchy.set_fastpath hier fastpath;
  let cat = build_catalog ~hier c mode in
  let divergences = ref [] in
  let stats = ref [] in
  let diverge statement detail =
    divergences := { combo; statement; detail } :: !divergences
  in
  let params = c.Case.params in
  List.iteri
    (fun i (stmt, oracle_r) ->
      try
        match stmt with
        | Case.Exec logical ->
            let phys = Relalg.Planner.plan cat logical in
            ignore (Engine.run ~domains ?morsel_size engine cat phys ~params)
        | Case.Query logical ->
            let logical =
              if mutate then
                match weaken_plan logical with
                | Some w -> w
                | None -> logical
              else logical
            in
            let phys = Relalg.Planner.plan cat logical in
            let r, st =
              Engine.run_measured ~cold:true ~domains ?morsel_size engine cat
                phys ~params
            in
            if domains = 1 then stats := st :: !stats;
            let expected =
              match oracle_r with Some o -> o | None -> assert false
            in
            (match
               columns_mismatch ~expected:expected.Oracle.columns
                 ~got:r.Runtime.columns
             with
            | Some d -> diverge i d
            | None -> ());
            (match
               multiset_mismatch ~expected:expected.Oracle.rows
                 ~got:r.Runtime.rows
             with
            | Some d -> diverge i d
            | None -> ())
      with e -> diverge i ("exception: " ^ Printexc.to_string e))
    (List.combine c.Case.episode per_stmt_oracle);
  (* end-of-episode state: every table must match the oracle's *)
  List.iteri
    (fun ti ((tab : Case.table), (dump : Oracle.result)) ->
      try
        let rel = Catalog.find cat tab.Case.tname in
        let got = ref [] in
        for tid = Relation.nrows rel - 1 downto 0 do
          got := Relation.get_tuple rel tid :: !got
        done;
        match multiset_mismatch ~expected:dump.Oracle.rows ~got:!got with
        | Some d ->
            diverge (-1)
              (Printf.sprintf "final state of %s: %s" tab.Case.tname d)
        | None -> ()
      with e ->
        diverge (-1)
          (Printf.sprintf "final state of table %d: exception: %s" ti
             (Printexc.to_string e)))
    (List.combine c.Case.tables dumps_oracle);
  { divergences = List.rev !divergences; stats = List.rev !stats }

(* ------------------------------------------------------------------ *)
(* Metamorphic predicate rewrites                                      *)
(* ------------------------------------------------------------------ *)

let rewrites =
  [
    ("not-not", fun p -> Expr.Not (Expr.Not p));
    ("and-dup", fun p -> Expr.And [ p; p ]);
    ("or-dup", fun p -> Expr.Or [ p; p ]);
    ("and-true", fun p -> Expr.And [ p; Expr.Const (V.VBool true) ]);
  ]

let rec rewrite_preds f = function
  | Plan.Select (child, pred) -> Plan.Select (rewrite_preds f child, f pred)
  | Plan.Scan _ as p -> p
  | Plan.Project (child, exprs) -> Plan.Project (rewrite_preds f child, exprs)
  | Plan.Join ({ left; right; _ } as j) ->
      Plan.Join
        { j with left = rewrite_preds f left; right = rewrite_preds f right }
  | Plan.Group_by ({ child; _ } as g) ->
      Plan.Group_by { g with child = rewrite_preds f child }
  | Plan.Sort ({ child; _ } as s) ->
      Plan.Sort { s with child = rewrite_preds f child }
  | Plan.Limit (child, n) -> Plan.Limit (rewrite_preds f child, n)
  | (Plan.Insert _ | Plan.Update _) as p -> p

let rec has_select = function
  | Plan.Select _ -> true
  | Plan.Scan _ | Plan.Insert _ | Plan.Update _ -> false
  | Plan.Project (child, _) | Plan.Limit (child, _) -> has_select child
  | Plan.Join { left; right; _ } -> has_select left || has_select right
  | Plan.Group_by { child; _ } | Plan.Sort { child; _ } -> has_select child

(* Replays the episode on one engine; every query with a Select also runs
   under each truth-preserving rewrite, which must not change the result
   multiset.  Queries are side-effect free, so the replays between DML are
   safe. *)
let run_metamorphic (c : Case.t) =
  let cat = build_catalog c Case.Pdsm in
  let params = c.Case.params in
  let divergences = ref [] in
  List.iteri
    (fun i stmt ->
      try
        match stmt with
        | Case.Exec logical ->
            let phys = Relalg.Planner.plan cat logical in
            ignore (Engine.run Engine.Bulk cat phys ~params)
        | Case.Query logical when has_select logical ->
            let base =
              Engine.run Engine.Bulk cat
                (Relalg.Planner.plan cat logical)
                ~params
            in
            List.iter
              (fun (rname, f) ->
                let rewritten = rewrite_preds f logical in
                let r =
                  Engine.run Engine.Bulk cat
                    (Relalg.Planner.plan cat rewritten)
                    ~params
                in
                match
                  multiset_mismatch ~expected:base.Runtime.rows
                    ~got:r.Runtime.rows
                with
                | Some d ->
                    divergences :=
                      {
                        combo = "metamorphic/" ^ rname;
                        statement = i;
                        detail = d;
                      }
                      :: !divergences
                | None -> ())
              rewrites
        | Case.Query _ -> ()
      with e ->
        divergences :=
          {
            combo = "metamorphic";
            statement = i;
            detail = "exception: " ^ Printexc.to_string e;
          }
          :: !divergences)
    c.Case.episode;
  List.rev !divergences

(* ------------------------------------------------------------------ *)
(* WAL + crash-recovery replay                                         *)
(* ------------------------------------------------------------------ *)

let run_recovery (c : Case.t) =
  let module F = Durability.Faultio in
  let module D = Durability.Durable in
  let module Snapshot = Durability.Snapshot in
  let module Recover = Durability.Recover in
  try
    let env = F.memory () in
    let cat = Catalog.create () in
    let d = D.attach env cat in
    List.iter
      (fun (tab : Case.table) ->
        Catalog.in_txn cat (fun () ->
            let rel =
              Catalog.add cat (Case.schema_of_table tab)
                (Case.layout_of_table tab Case.Pdsm)
            in
            let rows = Array.of_list tab.Case.rows in
            if Array.length rows > 0 then begin
              Relation.load rel ~n:(Array.length rows) (fun ~row -> rows.(row));
              Catalog.notify_load cat tab.Case.tname ~row_lo:0
                ~rows:(Array.length rows)
            end))
      c.Case.tables;
    let params = c.Case.params in
    List.iter
      (fun stmt ->
        match stmt with
        | Case.Exec logical | Case.Query logical ->
            let phys = Relalg.Planner.plan cat logical in
            ignore (Engine.run Engine.Jit cat phys ~params))
      c.Case.episode;
    let live = Snapshot.digest cat in
    D.detach d;
    let r = Recover.run env in
    let recovered = Snapshot.digest r.Recover.cat in
    if live <> recovered then
      [
        {
          combo = "recovery";
          statement = -1;
          detail =
            Printf.sprintf "catalog digest after replay: live %s <> recovered %s"
              live recovered;
        };
      ]
    else []
  with e ->
    [
      {
        combo = "recovery";
        statement = -1;
        detail = "exception: " ^ Printexc.to_string e;
      };
    ]

(* ------------------------------------------------------------------ *)
(* Online advisor axis                                                 *)
(* ------------------------------------------------------------------ *)

(* Replay the episode once with the layout advisor in the loop: every
   statement is re-planned against the current catalog (the layout may have
   just changed), executed on the Jit engine, observed by the advisor, and
   checked against the oracle.  The advisor is deliberately trigger-happy
   (tiny window, any positive projected saving repartitions), so layout
   changes land mid-episode between checked statements — the property under
   test is that reorganization never changes answers or final table
   contents.  Returns the divergences plus how many repartitions actually
   happened, so callers can report whether the axis was exercised. *)
let run_advisor (c : Case.t) ~oracle:(per_stmt_oracle, dumps_oracle) =
  let cat = build_catalog c Case.Pdsm in
  let adv =
    Layoutopt.Advisor.create ~window:8 ~check_every:2 ~min_benefit:0.0
      ~horizon:1e9 cat
  in
  let divergences = ref [] in
  let repartitions = ref 0 in
  let diverge statement detail =
    divergences := { combo = "advisor"; statement; detail } :: !divergences
  in
  let params = c.Case.params in
  List.iteri
    (fun i (stmt, oracle_r) ->
      try
        let logical =
          match stmt with Case.Exec l | Case.Query l -> l
        in
        let phys = Relalg.Planner.plan cat logical in
        (match stmt with
        | Case.Exec _ -> ignore (Engine.run Engine.Jit cat phys ~params)
        | Case.Query _ ->
            let r = Engine.run Engine.Jit cat phys ~params in
            let expected =
              match oracle_r with Some o -> o | None -> assert false
            in
            (match
               columns_mismatch ~expected:expected.Oracle.columns
                 ~got:r.Runtime.columns
             with
            | Some d -> diverge i d
            | None -> ());
            (match
               multiset_mismatch ~expected:expected.Oracle.rows
                 ~got:r.Runtime.rows
             with
            | Some d -> diverge i d
            | None -> ()));
        repartitions :=
          !repartitions + List.length (Layoutopt.Advisor.observe adv phys)
      with e -> diverge i ("exception: " ^ Printexc.to_string e))
    (List.combine c.Case.episode per_stmt_oracle);
  List.iteri
    (fun ti ((tab : Case.table), (dump : Oracle.result)) ->
      try
        let rel = Catalog.find cat tab.Case.tname in
        let got = ref [] in
        for tid = Relation.nrows rel - 1 downto 0 do
          got := Relation.get_tuple rel tid :: !got
        done;
        match multiset_mismatch ~expected:dump.Oracle.rows ~got:!got with
        | Some d ->
            diverge (-1)
              (Printf.sprintf "final state of %s: %s" tab.Case.tname d)
        | None -> ()
      with e ->
        diverge (-1)
          (Printf.sprintf "final state of table %d: exception: %s" ti
             (Printexc.to_string e)))
    (List.combine c.Case.tables dumps_oracle);
  (List.rev !divergences, !repartitions)

(* ------------------------------------------------------------------ *)
(* The full matrix for one case                                        *)
(* ------------------------------------------------------------------ *)

let modes = [ Case.Nsm; Case.Dsm; Case.Pdsm; Case.Comp ]

let run_case ?(mutate = false) ?(recovery = true) (c : Case.t) =
  let oracle = oracle_results c in
  let divergences = ref [] in
  let add ds = divergences := !divergences @ ds in
  List.iter
    (fun mode ->
      List.iter
        (fun engine ->
          (* the mutation only targets one combination: proving the harness
             notices a single buggy engine is exactly the point *)
          let mutate_here =
            mutate && engine = Engine.Bulk && mode = Case.Nsm
          in
          let fast =
            run_combo ~mutate:mutate_here ~engine ~mode ~fastpath:true c
              ~oracle
          in
          add fast.divergences;
          let slow =
            run_combo ~mutate:mutate_here ~engine ~mode ~fastpath:false c
              ~oracle
          in
          add slow.divergences;
          (* identical address streams => identical counters *)
          if List.length fast.stats = List.length slow.stats then
            List.iteri
              (fun i (a, b) ->
                match stats_mismatch a b with
                | Some d ->
                    add
                      [
                        {
                          combo =
                            Printf.sprintf "%s/%s/fastpath-counters"
                              (Engine.name engine)
                              (Case.layout_mode_name mode);
                          statement = i;
                          detail = d;
                        };
                      ]
                | None -> ())
              (List.combine fast.stats slow.stats))
        Engine.all;
      (* morsel-driven parallel execution over the same layouts; a small
         morsel size forces real multi-morsel merges even on tiny tables *)
      let par =
        run_combo ~domains:2 ~morsel_size:16 ~engine:Engine.Jit ~mode
          ~fastpath:true c ~oracle
      in
      add par.divergences;
      (* compiled pipelines against the same oracle on a bounded mode
         subset: Nsm runs real native code, Comp (encoded relations) and
         every unsupported shape exercise the in-engine Jit fallback *)
      if mode = Case.Nsm || mode = Case.Comp then begin
        let comp =
          run_combo ~engine:Engine.Compiled ~mode ~fastpath:true c ~oracle
        in
        add comp.divergences
      end;
      if mode = Case.Nsm then begin
        let comp_par =
          run_combo ~domains:2 ~morsel_size:16 ~engine:Engine.Compiled ~mode
            ~fastpath:true c ~oracle
        in
        add comp_par.divergences
      end)
    modes;
  add (run_metamorphic c);
  if recovery then add (run_recovery c);
  !divergences

(* ------------------------------------------------------------------ *)
(* The sharded axis                                                    *)
(* ------------------------------------------------------------------ *)

(* `fuzz --shards N`: the episode replays over an N-shard durable cluster —
   every query through the distributed executor (gather, partial
   aggregation, cost-chosen shuffle/broadcast joins), every DML statement
   through two-phase commit.  Answers and the per-table shard unions must
   match the oracle, and recovering every node from its durable state must
   reproduce the live per-shard digests.

   Plans are made against a shadow single-node catalog that replays the
   same episode, so the sharded run executes exactly the plans a
   single-node run would. *)

let run_shard ?(shards = 2) ?(engine = Engine.Jit) ~mode (c : Case.t)
    ~oracle:(per_stmt_oracle, dumps_oracle) =
  let combo =
    Printf.sprintf "shard(x%d)/%s/%s" shards (Engine.name engine)
      (Case.layout_mode_name mode)
  in
  let pcat = build_catalog c mode in
  let cl = Shard.Cluster.create ~durable:true ~shards pcat in
  let divergences = ref [] in
  let diverge statement detail =
    divergences := { combo; statement; detail } :: !divergences
  in
  let params = c.Case.params in
  List.iteri
    (fun i (stmt, oracle_r) ->
      try
        match stmt with
        | Case.Exec logical ->
            let phys = Relalg.Planner.plan pcat logical in
            ignore (Shard.Exec.run ~engine ~params cl phys);
            (* keep the planning catalog current *)
            ignore (Engine.run engine pcat phys ~params)
        | Case.Query logical ->
            let phys = Relalg.Planner.plan pcat logical in
            let r = Shard.Exec.run ~engine ~params cl phys in
            let expected =
              match oracle_r with Some o -> o | None -> assert false
            in
            (match
               columns_mismatch ~expected:expected.Oracle.columns
                 ~got:r.Runtime.columns
             with
            | Some d -> diverge i d
            | None -> ());
            (match
               multiset_mismatch ~expected:expected.Oracle.rows
                 ~got:r.Runtime.rows
             with
            | Some d -> diverge i d
            | None -> ())
      with e -> diverge i ("exception: " ^ Printexc.to_string e))
    (List.combine c.Case.episode per_stmt_oracle);
  (* end-of-episode state: the shard union of every table must match *)
  List.iter
    (fun ((tab : Case.table), (dump : Oracle.result)) ->
      try
        match
          multiset_mismatch ~expected:dump.Oracle.rows
            ~got:(Shard.Cluster.table_rows cl tab.Case.tname)
        with
        | Some d ->
            diverge (-1)
              (Printf.sprintf "final shard union of %s: %s" tab.Case.tname d)
        | None -> ()
      with e ->
        diverge (-1)
          (Printf.sprintf "final shard union of %s: exception: %s"
             tab.Case.tname (Printexc.to_string e)))
    (List.combine c.Case.tables dumps_oracle);
  (* durability: recover every node from its durable state; the recovered
     digests must equal the live ones *)
  (try
     let live = Shard.Cluster.digests cl in
     let envs =
       Array.map
         (fun (nd : Shard.Cluster.node) -> nd.Shard.Cluster.env)
         (Shard.Cluster.nodes cl)
     in
     let rc =
       Shard.Recovery.recover_cluster envs (Shard.Cluster.coord_env cl)
     in
     Array.iteri
       (fun k (res : Durability.Recover.result) ->
         let rec_digest = Durability.Snapshot.digest res.Durability.Recover.cat in
         if List.nth live k <> rec_digest then
           diverge (-1)
             (Printf.sprintf "shard %d: digest after recovery differs" k))
       rc.Shard.Recovery.results
   with e ->
     diverge (-1) ("recovery: exception: " ^ Printexc.to_string e));
  Shard.Cluster.close cl;
  List.rev !divergences

(* All shard combos of one case: both layout extremes and two engines keep
   the axis cheap enough to run inside the main loop. *)
let run_case_shard ?(shards = 2) (c : Case.t) =
  let oracle = oracle_results c in
  List.concat_map
    (fun (engine, mode) -> run_shard ~shards ~engine ~mode c ~oracle)
    [ (Engine.Jit, Case.Nsm); (Engine.Bulk, Case.Dsm) ]
