(* Typed random-case generator ("mrdbsmith").  Everything derives from one
   integer seed through the repo's deterministic [Mrdb_util.Rng]: schemas,
   data distributions (uniform / zipf / correlated / NULL-heavy /
   overflow-adjacent), partial decompositions, and well-typed episodes of
   queries and DML over [Relalg.Plan].  The same seed always regenerates the
   same case, which is what makes corpus replay and shrink repros possible. *)

module V = Storage.Value
module Rng = Mrdb_util.Rng
module Plan = Relalg.Plan
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

let date_epoch = 730_000

(* ------------------------------------------------------------------ *)
(* Schemas and data                                                    *)
(* ------------------------------------------------------------------ *)

type dist =
  | Uniform of int * int
  | Small_domain of int (* heavy duplicates: group-by friendly *)
  | Zipf of int * float
  | Correlated of int * int (* source column (earlier, int), factor *)
  | Big_int (* overflow-adjacent: sums wrap the 63-bit int *)

let gen_ty rng =
  match Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> V.Int
  | 4 | 5 -> V.Int
  | 6 -> V.Date
  | 7 -> V.Float
  | 8 -> V.Varchar (4 + Rng.int rng 9)
  | _ -> V.Varchar 6

let int_like (c : Case.col) =
  match c.Case.ty with V.Int | V.Date -> true | _ -> false

let gen_cols rng =
  let n = 1 + Rng.int rng 6 in
  let cols =
    List.init n (fun i ->
        {
          Case.cname = Printf.sprintf "c%d" i;
          ty = gen_ty rng;
          nullable = Rng.bool rng 0.3;
        })
  in
  (* guarantee at least one non-nullable int column: join keys, update
     targets and mod-bucket group keys need one *)
  if
    List.exists (fun c -> int_like c && not c.Case.nullable) cols
  then cols
  else
    { Case.cname = Printf.sprintf "c%d" n; ty = V.Int; nullable = false }
    :: cols
    |> List.mapi (fun i c -> { c with Case.cname = Printf.sprintf "c%d" i })

let gen_dist rng cols i (c : Case.col) =
  match c.Case.ty with
  | V.Int ->
      let earlier_ints =
        List.filteri (fun j cj -> j < i && cj.Case.ty = V.Int) cols
      in
      (match Rng.int rng 10 with
      | 0 | 1 | 2 -> Small_domain (1 + Rng.int rng 9)
      | 3 | 4 -> Uniform (-Rng.int rng 50, 50 + Rng.int rng 1000)
      | 5 | 6 -> Zipf (5 + Rng.int rng 40, 0.5 +. Rng.float rng)
      | 7 when earlier_ints <> [] ->
          let src =
            let idx = Rng.int rng (List.length earlier_ints) in
            let name = (List.nth earlier_ints idx).Case.cname in
            (* recover the positional index of the chosen source column *)
            let rec find k = function
              | [] -> 0
              | cj :: _ when cj.Case.cname = name -> k
              | _ :: rest -> find (k + 1) rest
            in
            find 0 cols
          in
          Correlated (src, 1 + Rng.int rng 5)
      | 8 when Rng.bool rng 0.5 -> Big_int
      | _ -> Uniform (0, 100))
  | V.Date -> Uniform (date_epoch, date_epoch + 400)
  | _ -> Uniform (0, 100)

(* string pool per varchar column: heavy duplicates make LIKE and group-by
   predicates meaningful *)
let gen_string_pool rng width =
  let n = 2 + Rng.int rng 5 in
  Array.init n (fun _ ->
      Rng.string rng ~alphabet:"abcd" ~len:(Rng.int rng (width + 1)))

let gen_rows rng ~max_rows cols =
  let n =
    match Rng.int rng 20 with
    | 0 -> 0
    | 1 -> 1
    | 2 -> 2
    | _ -> 1 + Rng.int rng (max 1 max_rows)
  in
  let cols_arr = Array.of_list cols in
  let dists = Array.of_list (List.mapi (fun i c -> gen_dist rng cols i c) cols) in
  let pools =
    Array.map
      (fun (c : Case.col) ->
        match c.Case.ty with
        | V.Varchar w -> Some (gen_string_pool rng w)
        | _ -> None)
      cols_arr
  in
  let null_heavy =
    Array.map (fun (c : Case.col) -> c.Case.nullable && Rng.bool rng 0.4) cols_arr
  in
  List.init n (fun _ ->
      let row = Array.make (Array.length cols_arr) V.Null in
      Array.iteri
        (fun i (c : Case.col) ->
          let null =
            c.Case.nullable
            && Rng.bool rng (if null_heavy.(i) then 0.6 else 0.1)
          in
          row.(i) <-
            (if null then V.Null
             else
               match c.Case.ty with
               | V.Int -> (
                   match dists.(i) with
                   | Uniform (lo, hi) -> V.VInt (Rng.int_in rng lo hi)
                   | Small_domain k -> V.VInt (Rng.int rng k)
                   | Zipf (n, theta) -> V.VInt (Rng.zipf rng ~n ~theta)
                   | Correlated (src, f) ->
                       let base =
                         match row.(src) with
                         | V.VInt v -> v
                         | _ -> 0
                       in
                       V.VInt ((base * f) + Rng.int rng 3)
                   | Big_int ->
                       V.VInt ((max_int / 2) - 8 + Rng.int rng 16))
               | V.Date -> V.VDate (Rng.int_in rng date_epoch (date_epoch + 400))
               | V.Float ->
                   (* dyadic rationals: sums of a few hundred of them are
                      exact, so sequential float aggregation stays
                      bit-reproducible *)
                   V.VFloat (float_of_int (Rng.int_in rng (-8000) 8000) /. 64.0)
               | V.Bool -> V.VBool (Rng.bool rng 0.5)
               | V.Varchar _ -> (
                   match pools.(i) with
                   | Some pool -> V.VStr (Rng.choose rng pool)
                   | None -> V.VStr "")))
        cols_arr;
      row)

(* random partial decomposition: assign every attribute to one of k buckets,
   drop empties — covers NSM (k=1), DSM (k=arity) and everything between *)
let gen_groups rng arity =
  let k = 1 + Rng.int rng arity in
  let buckets = Array.make k [] in
  for a = arity - 1 downto 0 do
    let b = Rng.int rng k in
    buckets.(b) <- a :: buckets.(b)
  done;
  Array.to_list buckets |> List.filter (fun g -> g <> [])

let gen_table rng ~max_rows tname =
  let cols = gen_cols rng in
  {
    Case.tname;
    cols;
    groups = gen_groups rng (List.length cols);
    rows = gen_rows rng ~max_rows cols;
  }

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let cols_where pred (cols : Case.col list) =
  List.filteri (fun _ _ -> true) cols
  |> List.mapi (fun i c -> (i, c))
  |> List.filter (fun (_, c) -> pred c)
  |> List.map fst

let pick rng l = List.nth l (Rng.int rng (List.length l))

let gen_int_const rng =
  V.VInt
    (match Rng.int rng 6 with
    | 0 -> Rng.int rng 10
    | 1 -> -Rng.int rng 20
    | 2 -> Rng.int_in rng 100 1000
    | 3 -> 0
    | 4 -> (max_int / 2) - Rng.int rng 4
    | _ -> Rng.int rng 100)

let gen_const_for rng (ty : V.ty) =
  match ty with
  | V.Int -> gen_int_const rng
  | V.Date -> V.VInt (Rng.int_in rng date_epoch (date_epoch + 400))
  | V.Float -> V.VFloat (float_of_int (Rng.int_in rng (-8000) 8000) /. 64.0)
  | V.Bool -> V.VBool (Rng.bool rng 0.5)
  | V.Varchar w -> V.VStr (Rng.string rng ~alphabet:"abcd" ~len:(Rng.int rng (w + 1)))

let gen_cmp_op rng =
  pick rng [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]

(* int-valued scalar over the non-nullable int-like columns (safe anywhere,
   including update right-hand sides of non-nullable targets) *)
let rec gen_int_scalar rng cols depth =
  let nn_ints = cols_where (fun c -> int_like c && not c.Case.nullable) cols in
  if depth = 0 || nn_ints = [] || Rng.bool rng 0.4 then
    if nn_ints <> [] && Rng.bool rng 0.7 then Expr.Col (pick rng nn_ints)
    else if Rng.bool rng 0.2 then Expr.Param (1 + Rng.int rng 2)
    else Expr.Const (gen_int_const rng)
  else
    let a = gen_int_scalar rng cols (depth - 1) in
    match Rng.int rng 5 with
    | 0 -> Expr.Arith (Expr.Add, a, gen_int_scalar rng cols (depth - 1))
    | 1 -> Expr.Arith (Expr.Sub, a, gen_int_scalar rng cols (depth - 1))
    | 2 -> Expr.Arith (Expr.Mul, a, gen_int_scalar rng cols (depth - 1))
    | 3 -> Expr.Arith (Expr.Div, a, Expr.Const (V.VInt (1 + Rng.int rng 7)))
    | _ -> Expr.Arith (Expr.Mod, a, Expr.Const (V.VInt (2 + Rng.int rng 9)))

let gen_pred_leaf rng (cols : Case.col list) =
  let numeric =
    cols_where (fun c -> match c.Case.ty with V.Varchar _ | V.Bool -> false | _ -> true) cols
  in
  let strings = cols_where (fun c -> match c.Case.ty with V.Varchar _ -> true | _ -> false) cols in
  let nullables = cols_where (fun c -> c.Case.nullable) cols in
  let choice = Rng.int rng 10 in
  let col_ty i = (List.nth cols i).Case.ty in
  if choice < 4 && numeric <> [] then
    let c = pick rng numeric in
    Expr.Cmp (gen_cmp_op rng, Expr.Col c, Expr.Const (gen_const_for rng (col_ty c)))
  else if choice < 5 && List.length numeric >= 2 then
    let a = pick rng numeric and b = pick rng numeric in
    Expr.Cmp (gen_cmp_op rng, Expr.Col a, Expr.Col b)
  else if choice < 7 then
    Expr.Cmp (gen_cmp_op rng, gen_int_scalar rng cols 1, gen_int_scalar rng cols 1)
  else if choice < 8 && strings <> [] then
    let c = pick rng strings in
    let pat =
      pick rng [ "a%"; "%b%"; "ab_"; "%"; "_"; "%a"; "a_c%"; "" ]
    in
    Expr.Like (Expr.Col c, Expr.Const (V.VStr pat))
  else if choice < 9 && nullables <> [] then
    let e = Expr.IsNull (Expr.Col (pick rng nullables)) in
    if Rng.bool rng 0.5 then e else Expr.Not e
  else if numeric <> [] then
    let c = pick rng numeric in
    Expr.Cmp (gen_cmp_op rng, Expr.Col c, Expr.Param (1 + Rng.int rng 2))
  else Expr.Cmp (Expr.Eq, Expr.Const (V.VInt 0), Expr.Const (V.VInt 0))

let rec gen_pred rng cols depth =
  if depth = 0 || Rng.bool rng 0.55 then gen_pred_leaf rng cols
  else
    match Rng.int rng 3 with
    | 0 ->
        Expr.And [ gen_pred rng cols (depth - 1); gen_pred rng cols (depth - 1) ]
    | 1 ->
        Expr.Or [ gen_pred rng cols (depth - 1); gen_pred rng cols (depth - 1) ]
    | _ -> Expr.Not (gen_pred rng cols (depth - 1))

(* ------------------------------------------------------------------ *)
(* Query plans                                                         *)
(* ------------------------------------------------------------------ *)

let gen_agg rng cols i =
  let name = Printf.sprintf "a%d" i in
  let numeric =
    cols_where (fun c -> match c.Case.ty with V.Varchar _ -> false | _ -> true) cols
  in
  let any = List.init (List.length cols) Fun.id in
  match Rng.int rng 6 with
  | 0 -> Aggregate.make Aggregate.Count_star name
  | 1 -> Aggregate.make Aggregate.Count ~expr:(Expr.Col (pick rng any)) name
  | 2 when numeric <> [] ->
      Aggregate.make Aggregate.Sum ~expr:(Expr.Col (pick rng numeric)) name
  | 3 when numeric <> [] ->
      Aggregate.make Aggregate.Min ~expr:(Expr.Col (pick rng numeric)) name
  | 4 when numeric <> [] ->
      Aggregate.make Aggregate.Max ~expr:(Expr.Col (pick rng numeric)) name
  | 5 when numeric <> [] ->
      Aggregate.make Aggregate.Avg ~expr:(Expr.Col (pick rng numeric)) name
  | _ -> Aggregate.make Aggregate.Sum ~expr:(gen_int_scalar rng cols 1) name

let gen_group_key rng cols i =
  let name = Printf.sprintf "k%d" i in
  let groupable =
    cols_where (fun c -> match c.Case.ty with V.Float -> false | _ -> true) cols
  in
  let nn_ints = cols_where (fun c -> int_like c && not c.Case.nullable) cols in
  if nn_ints <> [] && Rng.bool rng 0.35 then
    ( Expr.Arith
        (Expr.Mod, Expr.Col (pick rng nn_ints), Expr.Const (V.VInt (2 + Rng.int rng 6))),
      name )
  else if groupable <> [] then (Expr.Col (pick rng groupable), name)
  else (Expr.Const (V.VInt 0), name)

(* group over every column: the all-columns distinct query *)
let gen_group_all_keys cols =
  List.mapi (fun i _ -> (Expr.Col i, Printf.sprintf "k%d" i)) cols

let gen_project_exprs rng cols =
  let n = 1 + Rng.int rng 3 in
  let any = List.init (List.length cols) Fun.id in
  List.init n (fun i ->
      let name = Printf.sprintf "p%d" i in
      match Rng.int rng 5 with
      | 0 | 1 -> (Expr.Col (pick rng any), name)
      | 2 | 3 -> (gen_int_scalar rng cols 2, name)
      | _ -> (gen_pred_leaf rng cols, name))

(* output arity of a generated plan (no catalog needed: shapes are closed) *)
let rec arity_of tables = function
  | Plan.Scan name ->
      List.length (List.find (fun t -> t.Case.tname = name) tables).Case.cols
  | Plan.Select (c, _) | Plan.Limit (c, _) -> arity_of tables c
  | Plan.Sort { child; _ } -> arity_of tables child
  | Plan.Project (_, exprs) -> List.length exprs
  | Plan.Join { left; right; _ } -> arity_of tables left + arity_of tables right
  | Plan.Group_by { keys; aggs; _ } -> List.length keys + List.length aggs
  | Plan.Insert _ | Plan.Update _ -> 0

(* Sort over a random subset keeps the multiset; Sort over ALL columns makes
   a Limit prefix deterministic across engines, so Limit only ever appears
   above a total sort. *)
let wrap_sort_limit rng tables plan =
  let arity = arity_of tables plan in
  if arity = 0 then plan
  else
    match Rng.int rng 10 with
    | 0 | 1 ->
        let nkeys = 1 + Rng.int rng arity in
        let perm = Rng.permutation rng arity in
        let keys =
          List.init nkeys (fun i ->
              (perm.(i), if Rng.bool rng 0.5 then Plan.Asc else Plan.Desc))
        in
        Plan.Sort { child = plan; keys }
    | 2 | 3 ->
        let perm = Rng.permutation rng arity in
        let keys =
          Array.to_list
            (Array.map
               (fun i -> (i, if Rng.bool rng 0.5 then Plan.Asc else Plan.Desc))
               perm)
        in
        Plan.Limit (Plan.Sort { child = plan; keys }, Rng.int rng 12)
    | _ -> plan

let gen_single_table_query rng (t : Case.table) tables =
  let cols = t.Case.cols in
  let core = Plan.Scan t.Case.tname in
  let core =
    if Rng.bool rng 0.75 then Plan.Select (core, gen_pred rng cols 2) else core
  in
  let shaped =
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        (* aggregation *)
        let keys =
          match Rng.int rng 5 with
          | 0 -> [] (* global aggregate *)
          | 1 -> gen_group_all_keys cols
          | k -> List.init (min k 2) (fun i -> gen_group_key rng cols i)
        in
        let aggs = List.init (1 + Rng.int rng 3) (fun i -> gen_agg rng cols i) in
        Plan.Group_by { child = core; keys; aggs }
    | 4 | 5 | 6 -> Plan.Project (core, gen_project_exprs rng cols)
    | _ -> core (* select * *)
  in
  wrap_sort_limit rng tables shaped

let gen_join_query rng (t0 : Case.table) (t1 : Case.table) tables =
  let key_of (t : Case.table) =
    let nn_ints =
      cols_where (fun c -> int_like c && not c.Case.nullable) t.Case.cols
    in
    pick rng nn_ints
  in
  let side t =
    let s = Plan.Scan t.Case.tname in
    if Rng.bool rng 0.4 then Plan.Select (s, gen_pred rng t.Case.cols 1) else s
  in
  let join =
    Plan.Join
      {
        left = side t0;
        right = side t1;
        left_keys = [ key_of t0 ];
        right_keys = [ key_of t1 ];
      }
  in
  let combined = t0.Case.cols @ t1.Case.cols in
  let shaped =
    match Rng.int rng 3 with
    | 0 ->
        let keys = List.init (1 + Rng.int rng 2) (fun i -> gen_group_key rng combined i) in
        let aggs = List.init (1 + Rng.int rng 2) (fun i -> gen_agg rng combined i) in
        Plan.Group_by { child = join; keys; aggs }
    | 1 -> Plan.Project (join, gen_project_exprs rng combined)
    | _ -> join
  in
  wrap_sort_limit rng tables shaped

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

let gen_update rng (t : Case.table) =
  let cols = t.Case.cols in
  let int_targets =
    cols_where (fun c -> c.Case.ty = V.Int && not c.Case.nullable) cols
  in
  let float_targets =
    cols_where (fun c -> c.Case.ty = V.Float && not c.Case.nullable) cols
  in
  let nn_floats = float_targets in
  let rhs_float () =
    let leaf () =
      if nn_floats <> [] && Rng.bool rng 0.6 then Expr.Col (pick rng nn_floats)
      else Expr.Const (gen_const_for rng V.Float)
    in
    if Rng.bool rng 0.5 then leaf ()
    else Expr.Arith (pick rng [ Expr.Add; Expr.Sub; Expr.Mul ], leaf (), leaf ())
  in
  let candidates =
    List.map (fun a -> (a, `Int)) int_targets
    @ List.map (fun a -> (a, `Float)) float_targets
  in
  if candidates = [] then None
  else begin
    let n = 1 + Rng.int rng (min 2 (List.length candidates)) in
    let perm = Rng.permutation rng (List.length candidates) in
    let chosen = List.init n (fun i -> List.nth candidates perm.(i)) in
    let assignments =
      List.map
        (fun (a, kind) ->
          ( a,
            match kind with
            | `Int -> gen_int_scalar rng cols 2
            | `Float -> rhs_float () ))
        (List.sort_uniq compare chosen)
    in
    let pred = if Rng.bool rng 0.8 then Some (gen_pred rng cols 2) else None in
    Some (Plan.Update { table = t.Case.tname; assignments; pred })
  end

let gen_insert rng (t : Case.table) =
  let values =
    List.map
      (fun (c : Case.col) ->
        if c.Case.nullable && Rng.bool rng 0.25 then Expr.Const V.Null
        else Expr.Const (Case.coerce c.Case.ty (gen_const_for rng c.Case.ty)))
      t.Case.cols
  in
  Plan.Insert { table = t.Case.tname; values }

(* ------------------------------------------------------------------ *)
(* Cases                                                               *)
(* ------------------------------------------------------------------ *)

let gen_statement rng tables =
  let t = pick rng tables in
  match Rng.int rng 100 with
  | n when n < 70 -> Case.Query (gen_single_table_query rng t tables)
  | n when n < 90 -> (
      match gen_update rng t with
      | Some u -> Case.Exec u
      | None -> Case.Query (gen_single_table_query rng t tables))
  | n when n < 95 -> Case.Exec (gen_insert rng t)
  | _ -> (
      match tables with
      | [ t0; t1 ] -> Case.Query (gen_join_query rng t0 t1 tables)
      | _ -> Case.Query (gen_single_table_query rng t tables))

let case ?(max_rows = 120) seed =
  let rng = Rng.create seed in
  let params =
    [| V.VInt (Rng.int_in rng (-20) 120); V.VInt (Rng.int_in rng (-20) 120) |]
  in
  let n_tables = if Rng.bool rng 0.2 then 2 else 1 in
  let tables =
    List.init n_tables (fun i ->
        gen_table rng
          ~max_rows:(if i = 0 then max_rows else max 1 (max_rows / 4))
          (Printf.sprintf "t%d" i))
  in
  let n_stmts = 2 + Rng.int rng 3 in
  let episode = List.init n_stmts (fun _ -> gen_statement rng tables) in
  { Case.seed; tables; episode; params }
