(* A self-contained differential-testing case: tables (schema + a random
   partial decomposition + generated rows) and an episode of statements
   (queries whose results are compared, and DML that mutates state between
   them).  Cases are plain data so the shrinker can rewrite them and the
   repro printer can emit them as OCaml source. *)

module V = Storage.Value
module Schema = Storage.Schema
module Layout = Storage.Layout
module Plan = Relalg.Plan
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

type col = { cname : string; ty : V.ty; nullable : bool }

type table = {
  tname : string;
  cols : col list;
  groups : int list list; (* the case's random partial decomposition *)
  rows : V.t array list; (* load order *)
}

type statement =
  | Query of Plan.t (* results compared against the oracle *)
  | Exec of Plan.t (* DML: mutates state, only side effects compared *)

type t = {
  seed : int; (* the seed that regenerates this case (pre-shrink) *)
  tables : table list;
  episode : statement list;
  params : V.t array; (* bindings for Expr.Param *)
}

(* Which physical representation to instantiate a table under.  [Pdsm] uses
   the case's own random decomposition; [Nsm]/[Dsm] override it, giving the
   layout axis of the differential matrix.  [Comp] keeps the case's
   decomposition and additionally applies the compression advisor's plan to
   the generated rows — the compressed-execution axis. *)
type layout_mode = Nsm | Dsm | Pdsm | Comp

let layout_mode_name = function
  | Nsm -> "nsm"
  | Dsm -> "dsm"
  | Pdsm -> "pdsm"
  | Comp -> "comp"

let schema_of_table (t : table) : Schema.t =
  Schema.make_nullable t.tname
    (List.map (fun c -> (c.cname, c.ty, c.nullable)) t.cols)

let layout_of_table (t : table) mode =
  let schema = schema_of_table t in
  match mode with
  | Nsm -> Layout.row schema
  | Dsm -> Layout.column schema
  | Pdsm | Comp -> Layout.of_indices schema t.groups

let find_table t name = List.find (fun tab -> tab.tname = name) t.tables

(* Mimic the storage round-trip of [Buffer.write_value]/[read_value]: ints
   and dates collapse to their numeric value and come back typed by the
   column, floats coerce, varchars truncate to the field width and lose any
   NUL tail.  The oracle applies this on every store so its world matches
   what engines read back. *)
let coerce ty v =
  if V.is_null v then V.Null
  else
    match (ty : V.ty) with
    | V.Int -> V.VInt (V.to_int v)
    | V.Date -> V.VDate (V.to_int v)
    | V.Float -> V.VFloat (V.to_float v)
    | V.Bool -> V.VBool (V.to_int v <> 0)
    | V.Varchar n ->
        let s = V.to_string_exn v in
        let s = if String.length s > n then String.sub s 0 n else s in
        V.VStr
          (match String.index_opt s '\000' with
          | Some i -> String.sub s 0 i
          | None -> s)

let total_rows t =
  List.fold_left (fun acc tab -> acc + List.length tab.rows) 0 t.tables

(* ------------------------------------------------------------------ *)
(* Repro emission: print a case back as OCaml source                    *)
(* ------------------------------------------------------------------ *)

let ocaml_string s = Printf.sprintf "%S" s

let ocaml_value = function
  | V.Null -> "V.Null"
  | V.VInt i -> Printf.sprintf "V.VInt (%d)" i
  | V.VFloat f -> Printf.sprintf "V.VFloat (%h)" f
  | V.VBool b -> Printf.sprintf "V.VBool %b" b
  | V.VDate d -> Printf.sprintf "V.VDate (%d)" d
  | V.VStr s -> Printf.sprintf "V.VStr %s" (ocaml_string s)

let ocaml_ty = function
  | V.Int -> "V.Int"
  | V.Float -> "V.Float"
  | V.Bool -> "V.Bool"
  | V.Date -> "V.Date"
  | V.Varchar n -> Printf.sprintf "V.Varchar %d" n

let ocaml_cmp = function
  | Expr.Eq -> "Expr.Eq"
  | Expr.Ne -> "Expr.Ne"
  | Expr.Lt -> "Expr.Lt"
  | Expr.Le -> "Expr.Le"
  | Expr.Gt -> "Expr.Gt"
  | Expr.Ge -> "Expr.Ge"

let ocaml_arith = function
  | Expr.Add -> "Expr.Add"
  | Expr.Sub -> "Expr.Sub"
  | Expr.Mul -> "Expr.Mul"
  | Expr.Div -> "Expr.Div"
  | Expr.Mod -> "Expr.Mod"

let rec ocaml_expr = function
  | Expr.Col i -> Printf.sprintf "Expr.Col %d" i
  | Expr.Param n -> Printf.sprintf "Expr.Param %d" n
  | Expr.Const v -> Printf.sprintf "Expr.Const (%s)" (ocaml_value v)
  | Expr.Cmp (op, a, b) ->
      Printf.sprintf "Expr.Cmp (%s, %s, %s)" (ocaml_cmp op) (ocaml_expr a)
        (ocaml_expr b)
  | Expr.Like (a, b) ->
      Printf.sprintf "Expr.Like (%s, %s)" (ocaml_expr a) (ocaml_expr b)
  | Expr.And es ->
      Printf.sprintf "Expr.And [%s]" (String.concat "; " (List.map ocaml_expr es))
  | Expr.Or es ->
      Printf.sprintf "Expr.Or [%s]" (String.concat "; " (List.map ocaml_expr es))
  | Expr.Not e -> Printf.sprintf "Expr.Not (%s)" (ocaml_expr e)
  | Expr.IsNull e -> Printf.sprintf "Expr.IsNull (%s)" (ocaml_expr e)
  | Expr.Arith (op, a, b) ->
      Printf.sprintf "Expr.Arith (%s, %s, %s)" (ocaml_arith op) (ocaml_expr a)
        (ocaml_expr b)

let ocaml_agg (a : Aggregate.t) =
  let func =
    match a.Aggregate.func with
    | Aggregate.Count_star -> "Aggregate.Count_star"
    | Aggregate.Count -> "Aggregate.Count"
    | Aggregate.Sum -> "Aggregate.Sum"
    | Aggregate.Min -> "Aggregate.Min"
    | Aggregate.Max -> "Aggregate.Max"
    | Aggregate.Avg -> "Aggregate.Avg"
  in
  match a.Aggregate.expr with
  | None -> Printf.sprintf "Aggregate.make %s %S" func a.Aggregate.name
  | Some e ->
      Printf.sprintf "Aggregate.make %s ~expr:(%s) %S" func (ocaml_expr e)
        a.Aggregate.name

let ocaml_named_exprs exprs =
  String.concat "; "
    (List.map
       (fun (e, n) -> Printf.sprintf "(%s, %S)" (ocaml_expr e) n)
       exprs)

let rec ocaml_plan = function
  | Plan.Scan name -> Printf.sprintf "Plan.Scan %S" name
  | Plan.Select (c, p) ->
      Printf.sprintf "Plan.Select (%s, %s)" (ocaml_plan c) (ocaml_expr p)
  | Plan.Project (c, exprs) ->
      Printf.sprintf "Plan.Project (%s, [%s])" (ocaml_plan c)
        (ocaml_named_exprs exprs)
  | Plan.Join { left; right; left_keys; right_keys } ->
      Printf.sprintf
        "Plan.Join { left = %s; right = %s; left_keys = [%s]; right_keys = \
         [%s] }"
        (ocaml_plan left) (ocaml_plan right)
        (String.concat "; " (List.map string_of_int left_keys))
        (String.concat "; " (List.map string_of_int right_keys))
  | Plan.Group_by { child; keys; aggs } ->
      Printf.sprintf
        "Plan.Group_by { child = %s; keys = [%s]; aggs = [%s] }"
        (ocaml_plan child) (ocaml_named_exprs keys)
        (String.concat "; " (List.map ocaml_agg aggs))
  | Plan.Sort { child; keys } ->
      Printf.sprintf "Plan.Sort { child = %s; keys = [%s] }" (ocaml_plan child)
        (String.concat "; "
           (List.map
              (fun (i, d) ->
                Printf.sprintf "(%d, Plan.%s)" i
                  (match d with Plan.Asc -> "Asc" | Plan.Desc -> "Desc"))
              keys))
  | Plan.Limit (c, n) -> Printf.sprintf "Plan.Limit (%s, %d)" (ocaml_plan c) n
  | Plan.Insert { table; values } ->
      Printf.sprintf "Plan.Insert { table = %S; values = [%s] }" table
        (String.concat "; " (List.map ocaml_expr values))
  | Plan.Update { table; assignments; pred } ->
      Printf.sprintf
        "Plan.Update { table = %S; assignments = [%s]; pred = %s }" table
        (String.concat "; "
           (List.map
              (fun (a, e) -> Printf.sprintf "(%d, %s)" a (ocaml_expr e))
              assignments))
        (match pred with
        | None -> "None"
        | Some p -> Printf.sprintf "Some (%s)" (ocaml_expr p))

let ocaml_statement = function
  | Query p -> Printf.sprintf "Case.Query (%s)" (ocaml_plan p)
  | Exec p -> Printf.sprintf "Case.Exec (%s)" (ocaml_plan p)

let ocaml_col c =
  Printf.sprintf "{ Case.cname = %S; ty = %s; nullable = %b }" c.cname
    (ocaml_ty c.ty) c.nullable

let ocaml_table (t : table) =
  let rows =
    String.concat ";\n        "
      (List.map
         (fun row ->
           Printf.sprintf "[| %s |]"
             (String.concat "; " (Array.to_list (Array.map ocaml_value row))))
         t.rows)
  in
  Printf.sprintf
    "{ Case.tname = %S;\n\
    \      cols = [ %s ];\n\
    \      groups = [ %s ];\n\
    \      rows = [ %s ] }"
    t.tname
    (String.concat ";\n               " (List.map ocaml_col t.cols))
    (String.concat "; "
       (List.map
          (fun g ->
            Printf.sprintf "[ %s ]"
              (String.concat "; " (List.map string_of_int g)))
          t.groups))
    rows

(* A compilable snippet reconstructing the case; pasteable into
   test/fuzz_corpus.ml next to the existing repros. *)
let to_ocaml (t : t) =
  Printf.sprintf
    "(* repro: seed %d — replay with `mrdb_cli fuzz --seed %d --cases 1` *)\n\
     let case =\n\
    \  let open Relalg in\n\
    \  let module V = Storage.Value in\n\
    \  { Case.seed = %d;\n\
    \    params = [| %s |];\n\
    \    tables =\n\
    \      [ %s ];\n\
    \    episode =\n\
    \      [ %s ] }\n"
    t.seed t.seed t.seed
    (String.concat "; " (Array.to_list (Array.map ocaml_value t.params)))
    (String.concat ";\n        " (List.map ocaml_table t.tables))
    (String.concat ";\n        " (List.map ocaml_statement t.episode))
