(* The fuzz loop: generate case [seed + i], run it through the full
   differential matrix, shrink anything that fails, and report.  Case [i]
   of a run is regenerated exactly by `--seed (seed + i) --cases 1`, which
   is the replay line every failure report carries. *)

type outcome = Ok | Diverged of Driver.divergence list | Raised of string

type report = {
  seed : int;
  case : Case.t;
  outcome : outcome; (* of the original case *)
  minimized : Case.t; (* = case when outcome = Ok *)
}

let outcome_of ?(mutate = false) ?(recovery = true) c =
  match Driver.run_case ~mutate ~recovery c with
  | [] -> Ok
  | ds -> Diverged ds
  | exception e -> Raised (Printexc.to_string e)

(* The shrinker must preserve the *kind* of failure: a case that diverged
   shrinks towards smaller divergent cases (candidates whose oracle or
   generator-side evaluation raises are rejected, so shrinking cannot walk
   into ill-formed plans), and a case that raised shrinks towards smaller
   raising cases. *)
let failure_pred ?(mutate = false) ?(recovery = true) = function
  | Ok -> fun _ -> false
  | Diverged _ -> (
      fun c ->
        match Driver.run_case ~mutate ~recovery c with
        | [] -> false
        | _ :: _ -> true
        | exception _ -> false)
  | Raised _ -> (
      fun c ->
        match Driver.run_case ~mutate ~recovery c with
        | _ -> false
        | exception _ -> true)

let m_cases =
  Obs.Metrics.counter "mrdb_fuzz_cases_total" ~help:"Fuzz cases executed"

let m_divergences =
  Obs.Metrics.counter "mrdb_fuzz_divergences_total"
    ~help:"Engine-vs-oracle divergences observed (pre-shrink)"

let m_raised =
  Obs.Metrics.counter "mrdb_fuzz_exceptions_total"
    ~help:"Fuzz cases that raised (pre-shrink)"

let run_seed ?(mutate = false) ?(recovery = true) ?(max_rows = 120) seed =
  let case = Gen.case ~max_rows seed in
  let outcome = outcome_of ~mutate ~recovery case in
  Obs.Metrics.incr m_cases;
  (match outcome with
  | Ok -> ()
  | Diverged ds -> Obs.Metrics.add m_divergences (List.length ds)
  | Raised _ -> Obs.Metrics.incr m_raised);
  let minimized =
    match outcome with
    | Ok -> case
    | _ ->
        Shrink.minimize ~failing:(failure_pred ~mutate ~recovery outcome) case
  in
  { seed; case; outcome; minimized }

let pp_report ppf (r : report) =
  match r.outcome with
  | Ok -> Format.fprintf ppf "seed %d: ok" r.seed
  | Raised msg ->
      Format.fprintf ppf
        "seed %d: exception: %s@.--- minimized repro ---@.%s" r.seed msg
        (Case.to_ocaml r.minimized)
  | Diverged ds ->
      Format.fprintf ppf "seed %d: %d divergence(s)@." r.seed (List.length ds);
      List.iter (fun d -> Format.fprintf ppf "  %a@." Driver.pp_divergence d) ds;
      Format.fprintf ppf "--- minimized repro (%d rows) ---@.%s"
        (Case.total_rows r.minimized)
        (Case.to_ocaml r.minimized)

(* Run [cases] consecutive seeds; returns the failing reports. *)
let fuzz ?(mutate = false) ?(recovery = true) ?(max_rows = 120)
    ?(log = fun _ -> ()) ~seed ~cases () =
  let failures = ref [] in
  for i = 0 to cases - 1 do
    let r = run_seed ~mutate ~recovery ~max_rows (seed + i) in
    (match r.outcome with
    | Ok -> ()
    | _ -> failures := r :: !failures);
    if (i + 1) mod 50 = 0 || i = cases - 1 then
      log
        (Printf.sprintf "%d/%d cases, %d failure(s)" (i + 1) cases
           (List.length !failures))
  done;
  List.rev !failures

(* Corpus replay: a pinned regression case (hand-written or emitted by the
   shrinker) must stay green. *)
let replay_case ?(mutate = false) ?(recovery = true) c =
  outcome_of ~mutate ~recovery c

let replay_seed ?(max_rows = 120) seed =
  outcome_of (Gen.case ~max_rows seed)

(* ------------------------------------------------------------------ *)
(* The advisor axis                                                    *)
(* ------------------------------------------------------------------ *)

(* `fuzz --advisor`: the episode replays once with the layout advisor
   repartitioning mid-episode; answers and final state must still match the
   oracle.  Shrinking preserves the failure kind exactly as above. *)

let m_advisor_repartitions =
  Obs.Metrics.counter "mrdb_fuzz_advisor_repartitions_total"
    ~help:"Mid-episode repartitions performed across advisor fuzz cases"

let outcome_of_advisor c =
  let oracle = Driver.oracle_results c in
  match Driver.run_advisor c ~oracle with
  | [], reps -> (Ok, reps)
  | ds, reps -> (Diverged ds, reps)
  | exception e -> (Raised (Printexc.to_string e), 0)

let advisor_failure_pred = function
  | Ok -> fun _ -> false
  | Diverged _ -> (
      fun c ->
        match Driver.run_advisor c ~oracle:(Driver.oracle_results c) with
        | [], _ -> false
        | _ :: _, _ -> true
        | exception _ -> false)
  | Raised _ -> (
      fun c ->
        match Driver.run_advisor c ~oracle:(Driver.oracle_results c) with
        | _ -> false
        | exception _ -> true)

let replay_advisor c = outcome_of_advisor c

(* Returns (failing reports, total mid-episode repartitions) — the count
   proves the axis actually reorganized tables rather than vacuously
   passing. *)
let fuzz_advisor ?(max_rows = 120) ?(log = fun _ -> ()) ~seed ~cases () =
  let failures = ref [] in
  let repartitions = ref 0 in
  for i = 0 to cases - 1 do
    let case = Gen.case ~max_rows (seed + i) in
    let outcome, reps = outcome_of_advisor case in
    Obs.Metrics.incr m_cases;
    Obs.Metrics.add m_advisor_repartitions reps;
    repartitions := !repartitions + reps;
    (match outcome with
    | Ok -> ()
    | Diverged ds -> Obs.Metrics.add m_divergences (List.length ds)
    | Raised _ -> Obs.Metrics.incr m_raised);
    (match outcome with
    | Ok -> ()
    | _ ->
        let minimized =
          Shrink.minimize ~failing:(advisor_failure_pred outcome) case
        in
        failures := { seed = seed + i; case; outcome; minimized } :: !failures);
    if (i + 1) mod 50 = 0 || i = cases - 1 then
      log
        (Printf.sprintf "%d/%d cases, %d repartition(s), %d failure(s)"
           (i + 1) cases !repartitions
           (List.length !failures))
  done;
  (List.rev !failures, !repartitions)

(* ------------------------------------------------------------------ *)
(* The sharded axis                                                    *)
(* ------------------------------------------------------------------ *)

(* `fuzz --shards N`: the episode replays over an N-shard durable cluster;
   answers, final shard unions, and post-recovery digests must all hold.
   Shrinking preserves the failure kind exactly as above. *)

let outcome_of_shard ~shards c =
  match Driver.run_case_shard ~shards c with
  | [] -> Ok
  | ds -> Diverged ds
  | exception e -> Raised (Printexc.to_string e)

let shard_failure_pred ~shards = function
  | Ok -> fun _ -> false
  | Diverged _ -> (
      fun c ->
        match Driver.run_case_shard ~shards c with
        | [] -> false
        | _ :: _ -> true
        | exception _ -> false)
  | Raised _ -> (
      fun c ->
        match Driver.run_case_shard ~shards c with
        | _ -> false
        | exception _ -> true)

let replay_shard ~shards c = outcome_of_shard ~shards c

let fuzz_shard ?(max_rows = 120) ?(log = fun _ -> ()) ~shards ~seed ~cases ()
    =
  let failures = ref [] in
  for i = 0 to cases - 1 do
    let case = Gen.case ~max_rows (seed + i) in
    let outcome = outcome_of_shard ~shards case in
    Obs.Metrics.incr m_cases;
    (match outcome with
    | Ok -> ()
    | Diverged ds -> Obs.Metrics.add m_divergences (List.length ds)
    | Raised _ -> Obs.Metrics.incr m_raised);
    (match outcome with
    | Ok -> ()
    | _ ->
        let minimized =
          Shrink.minimize ~failing:(shard_failure_pred ~shards outcome) case
        in
        failures := { seed = seed + i; case; outcome; minimized } :: !failures);
    if (i + 1) mod 50 = 0 || i = cases - 1 then
      log
        (Printf.sprintf "%d/%d cases, %d failure(s)" (i + 1) cases
           (List.length !failures))
  done;
  List.rev !failures
