(* The transaction fuzz axis: interleaved multi-client histories run
   against the MVCC manager and differentially checked against a serial
   oracle under SI-admissible equivalence.

   A case is a single int table, a handful of clients each running a few
   small transactions, and an explicit interleaving schedule (one client id
   per micro-step).  Execution is deterministic — the schedule *is* the
   concurrency — so any failing seed replays exactly.

   The op language is chosen so the serial oracle is exact under snapshot
   isolation with first-committer-wins:

     Get         pure read — checked against the snapshot state
     Add         read-modify-write of ONE cell — its written value depends
                 only on a cell the transaction also writes, which FCW
                 protects, so replaying committed transactions semantically
                 in commit order reproduces the final state exactly (a lost
                 update would show up as a divergence)
     Put         blind write
     Ins         append a row
     Count       visible row count at the snapshot

   Deliberately absent: writes computed from reads of *other* cells.  Those
   are write skew, which SI permits (DESIGN.md §5h) — the oracle would have
   no exact answer, so the generator does not produce them.

   Checks per case:
     1. every Get/Count observed during execution equals the serial
        oracle's state at the transaction's begin timestamp (own writes
        overlaid in program order) — SI reads are consistent snapshots;
     2. the final catalog contents equal the oracle's replay of exactly the
        committed transactions in commit-timestamp order (value-identical
        via Durability.Snapshot.digest);
     3. conflict soundness: a Txn_conflict abort must overlap, on some
        written cell, a transaction that committed after the victim began
        — conflicts are real, never spurious;
     4. commit-timestamp monotonicity across the history. *)

module V = Storage.Value
module Catalog = Storage.Catalog
module Schema = Storage.Schema
module Layout = Storage.Layout
module Relation = Storage.Relation
module Rng = Mrdb_util.Rng
module Errors = Mrdb_util.Errors

(* ------------------------------------------------------------------ *)
(* Cases                                                              *)
(* ------------------------------------------------------------------ *)

type op =
  | Get of { tid : int; attr : int }
  | Add of { tid : int; attr : int; delta : int }
  | Put of { tid : int; attr : int; value : int }
  | Ins of int array
  | Count

type prog = { ops : op list; commits : bool (* false = deliberate abort *) }

type case = {
  seed : int;
  cols : int;
  init : int array array; (* initial rows, row-major *)
  clients : prog array array; (* clients.(c) = that client's transactions *)
  schedule : int array; (* client ids; each occurrence = one micro-step *)
}

let table_name = "t"

let pp_op ppf = function
  | Get { tid; attr } -> Format.fprintf ppf "Get(%d,%d)" tid attr
  | Add { tid; attr; delta } -> Format.fprintf ppf "Add(%d,%d,%+d)" tid attr delta
  | Put { tid; attr; value } -> Format.fprintf ppf "Put(%d,%d,%d)" tid attr value
  | Ins _ -> Format.fprintf ppf "Ins"
  | Count -> Format.fprintf ppf "Count"

let pp_case ppf c =
  Format.fprintf ppf "txn case seed %d: %d rows x %d cols, %d client(s)@."
    c.seed (Array.length c.init) c.cols (Array.length c.clients);
  Array.iteri
    (fun ci progs ->
      Format.fprintf ppf "  client %d:@." ci;
      Array.iteri
        (fun ti p ->
          Format.fprintf ppf "    txn %d (%s):" ti
            (if p.commits then "commit" else "abort");
          List.iter (fun o -> Format.fprintf ppf " %a" pp_op o) p.ops;
          Format.fprintf ppf "@.")
        progs)
    c.clients

(* ------------------------------------------------------------------ *)
(* Generator                                                          *)
(* ------------------------------------------------------------------ *)

let gen_case ?(max_clients = 3) seed =
  let rng = Rng.create (0x7A11 + seed) in
  let rows = Rng.int_in rng 2 10 in
  let cols = Rng.int_in rng 2 4 in
  let init =
    Array.init rows (fun _ -> Array.init cols (fun _ -> Rng.int rng 100))
  in
  let n_clients = Rng.int_in rng 2 (max 2 max_clients) in
  let gen_op () =
    let tid = Rng.int rng rows and attr = Rng.int rng cols in
    match Rng.int rng 10 with
    | 0 | 1 | 2 -> Get { tid; attr }
    | 3 | 4 | 5 -> Add { tid; attr; delta = Rng.int_in rng (-5) 9 }
    | 6 | 7 -> Put { tid; attr; value = Rng.int rng 1000 }
    | 8 -> Ins (Array.init cols (fun _ -> Rng.int rng 100))
    | _ -> Count
  in
  let gen_prog () =
    {
      ops = List.init (Rng.int_in rng 1 5) (fun _ -> gen_op ());
      commits = Rng.bool rng 0.85;
    }
  in
  let clients =
    Array.init n_clients (fun _ ->
        Array.init (Rng.int_in rng 1 4) (fun _ -> gen_prog ()))
  in
  (* Micro-steps per client: each txn costs |ops| + 1 (the commit/abort
     step; BEGIN rides on the first scheduled step).  A fair random
     interleave of exactly that many occurrences per client. *)
  let steps c =
    Array.fold_left (fun a p -> a + List.length p.ops + 1) 0 clients.(c)
  in
  let schedule =
    Array.concat
      (List.init n_clients (fun c -> Array.make (steps c) c))
  in
  Rng.shuffle rng schedule;
  { seed; cols; init; clients; schedule }

(* ------------------------------------------------------------------ *)
(* Execution against the MVCC manager                                 *)
(* ------------------------------------------------------------------ *)

type observation =
  | Saw of { tid : int; attr : int; value : V.t }
  | Counted of int

type wop = WAdd of int * int * int | WPut of int * int * int

type exec = {
  client : int;
  txn_idx : int;
  begin_ts : int;
  obs : observation list; (* program order *)
  wops : wop list; (* Add/Put ops in program order *)
  writes : (int * int) list; (* the cells of [wops] *)
  inserts : int array list; (* program order *)
  outcome : [ `Committed of int | `Conflict of int | `UserAbort ];
      (* Conflict carries the manager clock when the abort happened *)
}

let build_catalog c =
  let cat = Catalog.create () in
  let schema =
    Schema.make table_name
      (List.init c.cols (fun i -> (Printf.sprintf "a%d" i, V.Int)))
  in
  let rel = Catalog.add cat schema (Layout.row schema) in
  Array.iter
    (fun row -> ignore (Relation.append rel (Array.map (fun v -> V.VInt v) row)))
    c.init;
  cat

let m_histories =
  Obs.Metrics.counter "mrdb_txn_fuzz_histories_total"
    ~help:"Interleaved histories executed by the txn fuzz axis"

let m_txn_divergences =
  Obs.Metrics.counter "mrdb_txn_fuzz_divergences_total"
    ~help:"Serial-oracle divergences found by the txn fuzz axis"

let client_latency ci =
  Obs.Metrics.histogram
    (Printf.sprintf "mrdb_fuzz_client_%d_txn_seconds" ci)
    ~help:"Per-client transaction latency inside fuzzed histories"

(* Walk the schedule.  Each client tracks (txn index, remaining ops, the
   open Mvcc.txn, the partial exec log); a schedule entry for a finished
   client is skipped (shuffling guarantees exactly the right number of
   steps, so this only absorbs steps freed by an early conflict abort). *)
let execute mgr c =
  let n = Array.length c.clients in
  let cur_txn = Array.make n None in
  let cur_ops : op list array = Array.make n [] in
  let txn_idx = Array.make n 0 in
  let started = Array.make n 0.0 in
  let log_obs : observation list array = Array.make n [] in
  let execs = ref [] in
  let finish ci outcome =
    let prog = c.clients.(ci).(txn_idx.(ci)) in
    let wops =
      List.filter_map
        (function
          | Add { tid; attr; delta } -> Some (WAdd (tid, attr, delta))
          | Put { tid; attr; value } -> Some (WPut (tid, attr, value))
          | Get _ | Ins _ | Count -> None)
        prog.ops
    in
    let txn = Option.get cur_txn.(ci) in
    Obs.Metrics.observe (client_latency ci)
      (Unix.gettimeofday () -. started.(ci));
    execs :=
      {
        client = ci;
        txn_idx = txn_idx.(ci);
        begin_ts = Txn.Mvcc.begin_ts txn;
        obs = List.rev log_obs.(ci);
        wops;
        writes =
          List.map (function WAdd (t, a, _) | WPut (t, a, _) -> (t, a)) wops;
        inserts =
          List.filter_map (function Ins r -> Some r | _ -> None) prog.ops;
        outcome;
      }
      :: !execs;
    cur_txn.(ci) <- None;
    log_obs.(ci) <- [];
    txn_idx.(ci) <- txn_idx.(ci) + 1
  in
  Array.iter
    (fun ci ->
      if txn_idx.(ci) < Array.length c.clients.(ci) then begin
        (match cur_txn.(ci) with
        | None ->
            cur_txn.(ci) <- Some (Txn.Mvcc.begin_ mgr);
            started.(ci) <- Unix.gettimeofday ();
            cur_ops.(ci) <- c.clients.(ci).(txn_idx.(ci)).ops
        | Some _ -> ());
        let txn = Option.get cur_txn.(ci) in
        match cur_ops.(ci) with
        | op :: rest -> (
            cur_ops.(ci) <- rest;
            match op with
            | Get { tid; attr } ->
                let v = Txn.Mvcc.read txn table_name tid attr in
                log_obs.(ci) <- Saw { tid; attr; value = v } :: log_obs.(ci)
            | Add { tid; attr; delta } ->
                let v = Txn.Mvcc.read txn table_name tid attr in
                Txn.Mvcc.update txn table_name tid attr
                  (V.VInt (V.to_int v + delta))
            | Put { tid; attr; value } ->
                Txn.Mvcc.update txn table_name tid attr (V.VInt value)
            | Ins row ->
                Txn.Mvcc.insert txn table_name
                  (Array.map (fun v -> V.VInt v) row)
            | Count ->
                log_obs.(ci) <-
                  Counted (Txn.Mvcc.visible_rows txn table_name)
                  :: log_obs.(ci))
        | [] -> (
            (* commit/abort micro-step *)
            if c.clients.(ci).(txn_idx.(ci)).commits then
              match Txn.Mvcc.commit txn with
              | ts -> finish ci (`Committed ts)
              | exception Errors.Txn_conflict _ ->
                  finish ci (`Conflict (Txn.Mvcc.clock mgr))
            else begin
              Txn.Mvcc.abort txn;
              finish ci `UserAbort
            end)
      end)
    c.schedule;
  (* A client whose schedule steps were consumed while it still had ops
     (cannot happen with exact step counts, but guard anyway): abort. *)
  Array.iteri
    (fun ci t ->
      match t with Some txn -> (Txn.Mvcc.abort txn; ignore ci) | None -> ())
    cur_txn;
  List.rev !execs

(* ------------------------------------------------------------------ *)
(* The serial oracle                                                  *)
(* ------------------------------------------------------------------ *)

type oracle_state = { cells : int array array; extra : int array list }
(* [cells] covers the initial rows; [extra] the committed inserts in
   commit order (appended rows are never updated by the op language). *)

(* Semantic replay in program order: an Add reads the oracle's current
   cell, which — because the cell is in the write set — FCW guarantees
   matches the snapshot value the live run used (an overlapping committer
   would have aborted this transaction instead).  Earlier writes of the
   same transaction are visible to later Adds, matching the manager's
   read-own-writes. *)
let apply_committed st (e : exec) =
  let cells = Array.map Array.copy st.cells in
  List.iter
    (function
      | WAdd (tid, attr, delta) -> cells.(tid).(attr) <- cells.(tid).(attr) + delta
      | WPut (tid, attr, value) -> cells.(tid).(attr) <- value)
    e.wops;
  { cells; extra = st.extra @ e.inserts }

let state_rows st = Array.length st.cells + List.length st.extra

let state_get st tid attr = st.cells.(tid).(attr)

(* ------------------------------------------------------------------ *)
(* Divergence checks                                                  *)
(* ------------------------------------------------------------------ *)

type divergence = { client : int; txn : int; detail : string }

let pp_divergence ppf d =
  Format.fprintf ppf "client %d txn %d: %s" d.client d.txn d.detail

let check_case c (execs : exec list) mgr =
  let divs = ref [] in
  let diverge client txn fmt =
    Format.kasprintf (fun detail -> divs := { client; txn; detail } :: !divs) fmt
  in
  let committed =
    List.filter_map
      (fun e -> match e.outcome with `Committed ts -> Some (ts, e) | _ -> None)
      execs
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* 4: commit timestamps are unique and the clock covers them *)
  let rec mono = function
    | (a, _) :: ((b, (eb : exec)) :: _ as tl) ->
        if b <= a then
          diverge eb.client eb.txn_idx "commit ts %d not after predecessor %d" b a;
        mono tl
    | _ -> ()
  in
  mono committed;
  (* oracle timeline: state after each committed ts *)
  let init_state = { cells = Array.map Array.copy c.init; extra = [] } in
  let timeline =
    List.fold_left
      (fun acc (ts, e) ->
        let prev = snd (List.hd acc) in
        (ts, apply_committed prev e) :: acc)
      [ (0, init_state) ]
      committed
  in
  (* state visible at begin timestamp s: newest entry with ts <= s *)
  let state_at s =
    let rec find = function
      | (ts, st) :: tl -> if ts <= s then st else find tl
      | [] -> init_state
    in
    find timeline
  in
  let final_state = snd (List.hd timeline) in
  (* 1: every observation is SI-consistent with the snapshot + own writes *)
  List.iter
    (fun e ->
      let snap = state_at e.begin_ts in
      (* overlay of e's own writes in program order, built incrementally as
         we walk the ops so each Get sees exactly the prior writes *)
      let overlay = Hashtbl.create 8 in
      let own_val tid attr =
        match Hashtbl.find_opt overlay (tid, attr) with
        | Some v -> v
        | None -> state_get snap tid attr
      in
      let obs = ref e.obs in
      List.iter
        (fun op ->
          match op with
          | Get { tid; attr } -> (
              match !obs with
              | Saw { tid = t; attr = a; value } :: tl when t = tid && a = attr ->
                  obs := tl;
                  let expected = V.VInt (own_val tid attr) in
                  if V.compare value expected <> 0 then
                    diverge e.client e.txn_idx
                      "Get(%d,%d) saw %s, snapshot at ts %d says %s" tid attr
                      (V.to_display value) e.begin_ts (V.to_display expected)
              | _ -> diverge e.client e.txn_idx "observation log out of sync")
          | Add { tid; attr; delta } ->
              Hashtbl.replace overlay (tid, attr) (own_val tid attr + delta)
          | Put { tid; attr; value } -> Hashtbl.replace overlay (tid, attr) value
          | Ins _ -> ()
          | Count -> (
              match !obs with
              | Counted n :: tl ->
                  obs := tl;
                  let expected = state_rows snap in
                  if n <> expected then
                    diverge e.client e.txn_idx
                      "Count saw %d rows, snapshot at ts %d has %d" n
                      e.begin_ts expected
              | _ -> diverge e.client e.txn_idx "observation log out of sync"))
        c.clients.(e.client).(e.txn_idx).ops)
    execs;
  (* 3: conflicts are real — some committer in (begin_ts, clock-at-abort]
     wrote one of the victim's cells *)
  List.iter
    (fun e ->
      match e.outcome with
      | `Conflict upto ->
          let overlaps =
            List.exists
              (fun (ts, u) ->
                ts > e.begin_ts && ts <= upto
                && List.exists (fun w -> List.mem w u.writes) e.writes)
              committed
          in
          if not overlaps then
            diverge e.client e.txn_idx
              "spurious conflict: no committer in (%d, %d] overlaps its \
               write set"
              e.begin_ts upto
      | _ -> ())
    execs;
  (* 2: final catalog contents = oracle replay of the committed prefix,
     checked value-identically via the snapshot digest *)
  let oracle_cat = Catalog.create () in
  let schema =
    Schema.make table_name
      (List.init c.cols (fun i -> (Printf.sprintf "a%d" i, V.Int)))
  in
  let rel = Catalog.add oracle_cat schema (Layout.row schema) in
  Array.iter
    (fun row -> ignore (Relation.append rel (Array.map (fun v -> V.VInt v) row)))
    final_state.cells;
  List.iter
    (fun row -> ignore (Relation.append rel (Array.map (fun v -> V.VInt v) row)))
    final_state.extra;
  let live = Durability.Snapshot.digest (Txn.Mvcc.catalog mgr) in
  let oracle = Durability.Snapshot.digest oracle_cat in
  if live <> oracle then
    diverge (-1) (-1)
      "final state differs from serial replay of committed transactions \
       (digest %s vs %s)"
      live oracle;
  List.rev !divs

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let run_case c =
  Obs.Metrics.incr m_histories;
  let cat = build_catalog c in
  let mgr = Txn.Mvcc.create cat in
  let execs = execute mgr c in
  let divs = check_case c execs mgr in
  Obs.Metrics.add m_txn_divergences (List.length divs);
  divs

type report = { seed : int; case : case; divergences : divergence list }

let pp_report ppf r =
  Format.fprintf ppf "seed %d: %d divergence(s)@." r.seed
    (List.length r.divergences);
  List.iter (fun d -> Format.fprintf ppf "  %a@." pp_divergence d) r.divergences;
  Format.fprintf ppf "--- repro: fuzz --txn --seed %d --cases 1 ---@.%a" r.seed
    pp_case r.case

(* Run [cases] consecutive seeds; returns the failing reports. *)
let fuzz ?(max_clients = 3) ?(log = fun _ -> ()) ~seed ~cases () =
  let failures = ref [] in
  for i = 0 to cases - 1 do
    let s = seed + i in
    let case = gen_case ~max_clients s in
    (match run_case case with
    | [] -> ()
    | divergences -> failures := { seed = s; case; divergences } :: !failures);
    if (i + 1) mod 100 = 0 || i = cases - 1 then
      log
        (Printf.sprintf "txn: %d/%d histories, %d failure(s)" (i + 1) cases
           (List.length !failures))
  done;
  List.rev !failures
