(* The reference oracle: a row-at-a-time interpreter over plain value lists,
   written for obviousness rather than speed and sharing no code with the six
   engines (aggregation in particular is re-derived from the documented
   semantics, not [Relalg.Aggregate]).  Its one concession to the storage
   layer is [Case.coerce]: values pass through the same write/read rounding
   the buffers apply, so the oracle's world is the world engines read back. *)

module V = Storage.Value
module Plan = Relalg.Plan
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

type table_state = {
  cols : Case.col list;
  mutable rows : V.t array list; (* tid order *)
}

type t = { tables : (string * table_state) list; params : V.t array }

let init (c : Case.t) =
  {
    params = c.Case.params;
    tables =
      List.map
        (fun (tab : Case.table) ->
          let tys = List.map (fun col -> col.Case.ty) tab.Case.cols in
          ( tab.Case.tname,
            {
              cols = tab.Case.cols;
              rows =
                List.map
                  (fun row ->
                    Array.of_list
                      (List.map2 Case.coerce tys (Array.to_list row)))
                  tab.Case.rows;
            } ))
        c.Case.tables;
  }

let table t name = List.assoc name t.tables

(* a query result in the same shape engines produce *)
type result = { columns : string array; rows : V.t array list }

(* ------------------------------------------------------------------ *)
(* Aggregation, re-derived: count ignores NULL, count-star does not; sum
   keeps integer and float contributions apart and only becomes float if a
   float was seen; avg is always float; min/max use Value.compare; every
   aggregate over zero non-null inputs is NULL except counts.              *)
(* ------------------------------------------------------------------ *)

type agg_acc = {
  mutable n : int; (* non-null inputs (rows for count-star) *)
  mutable si : int;
  mutable sf : float;
  mutable seen_float : bool;
  mutable extreme : V.t;
}

let agg_init () =
  { n = 0; si = 0; sf = 0.0; seen_float = false; extreme = V.Null }

let agg_step (a : Aggregate.t) acc value =
  match a.Aggregate.func with
  | Aggregate.Count_star -> acc.n <- acc.n + 1
  | _ when V.is_null value -> ()
  | Aggregate.Count -> acc.n <- acc.n + 1
  | Aggregate.Sum | Aggregate.Avg -> (
      acc.n <- acc.n + 1;
      match value with
      | V.VFloat f ->
          acc.seen_float <- true;
          acc.sf <- acc.sf +. f
      | v -> acc.si <- acc.si + V.to_int v)
  | Aggregate.Min ->
      if V.is_null acc.extreme || V.compare value acc.extreme < 0 then
        acc.extreme <- value
  | Aggregate.Max ->
      if V.is_null acc.extreme || V.compare value acc.extreme > 0 then
        acc.extreme <- value

let agg_finish (a : Aggregate.t) acc =
  match a.Aggregate.func with
  | Aggregate.Count_star | Aggregate.Count -> V.VInt acc.n
  | Aggregate.Sum ->
      if acc.n = 0 then V.Null
      else if acc.seen_float then V.VFloat (acc.sf +. float_of_int acc.si)
      else V.VInt acc.si
  | Aggregate.Avg ->
      if acc.n = 0 then V.Null
      else
        V.VFloat ((acc.sf +. float_of_int acc.si) /. float_of_int acc.n)
  | Aggregate.Min | Aggregate.Max -> acc.extreme

(* ------------------------------------------------------------------ *)
(* Plan interpretation                                                 *)
(* ------------------------------------------------------------------ *)

let eval_row ~params expr (row : V.t array) =
  Expr.eval expr ~params (fun i -> row.(i))

let truthy_row ~params pred row = Expr.truthy (eval_row ~params pred row)

let rec columns_of t = function
  | Plan.Scan name ->
      Array.of_list (List.map (fun c -> c.Case.cname) (table t name).cols)
  | Plan.Select (c, _) | Plan.Limit (c, _) -> columns_of t c
  | Plan.Sort { child; _ } -> columns_of t child
  | Plan.Project (_, exprs) -> Array.of_list (List.map snd exprs)
  | Plan.Join { left; right; _ } ->
      Array.append (columns_of t left) (columns_of t right)
  | Plan.Group_by { keys; aggs; _ } ->
      Array.of_list
        (List.map snd keys @ List.map (fun a -> a.Aggregate.name) aggs)
  | Plan.Insert _ | Plan.Update _ -> [||]

let rec rows_of t plan : V.t array list =
  let params = t.params in
  match plan with
  | Plan.Scan name -> (table t name).rows
  | Plan.Select (child, pred) ->
      List.filter (truthy_row ~params pred) (rows_of t child)
  | Plan.Project (child, exprs) ->
      List.map
        (fun row ->
          Array.of_list (List.map (fun (e, _) -> eval_row ~params e row) exprs))
        (rows_of t child)
  | Plan.Join { left; right; left_keys; right_keys } ->
      (* nested loops; key NULLs never match, like a hash join *)
      let rrows = rows_of t right in
      List.concat_map
        (fun lrow ->
          List.filter_map
            (fun rrow ->
              let matches =
                List.for_all2
                  (fun lk rk ->
                    (not (V.is_null lrow.(lk)))
                    && (not (V.is_null rrow.(rk)))
                    && V.equal lrow.(lk) rrow.(rk))
                  left_keys right_keys
              in
              if matches then Some (Array.append lrow rrow) else None)
            rrows)
        (rows_of t left)
  | Plan.Group_by { child; keys; aggs } ->
      let input = rows_of t child in
      (* distinct keys in first-occurrence order, matched structurally --
         the same discipline the engines' hash tables use *)
      let order : V.t list list ref = ref [] in
      let groups : (V.t list, agg_acc array) Hashtbl.t = Hashtbl.create 16 in
      let accs_for key =
        match Hashtbl.find_opt groups key with
        | Some accs -> accs
        | None ->
            let accs =
              Array.of_list (List.map (fun _ -> agg_init ()) aggs)
            in
            Hashtbl.add groups key accs;
            order := key :: !order;
            accs
      in
      List.iter
        (fun row ->
          let key = List.map (fun (e, _) -> eval_row ~params e row) keys in
          let accs = accs_for key in
          List.iteri
            (fun i (a : Aggregate.t) ->
              let v =
                match a.Aggregate.expr with
                | None -> V.Null (* count-star: value unused *)
                | Some e -> eval_row ~params e row
              in
              agg_step a accs.(i) v)
            aggs)
        input;
      (* a global aggregate (no keys) over empty input still emits one row
         of initial accumulators *)
      if keys = [] && input = [] then ignore (accs_for []);
      List.rev_map
        (fun key ->
          let accs = Hashtbl.find groups key in
          Array.of_list
            (key @ List.mapi (fun i a -> agg_finish a accs.(i)) aggs))
        !order
  | Plan.Sort { child; keys } ->
      let cmp a b =
        let rec go = function
          | [] -> 0
          | (col, dir) :: rest ->
              let c = V.compare a.(col) b.(col) in
              let c = match dir with Plan.Asc -> c | Plan.Desc -> -c in
              if c <> 0 then c else go rest
        in
        go keys
      in
      List.stable_sort cmp (rows_of t child)
  | Plan.Limit (child, n) ->
      List.filteri (fun i _ -> i < n) (rows_of t child)
  | Plan.Insert _ | Plan.Update _ -> []

let query t plan = { columns = columns_of t plan; rows = rows_of t plan }

(* ------------------------------------------------------------------ *)
(* DML side effects                                                    *)
(* ------------------------------------------------------------------ *)

let exec t plan =
  let params = t.params in
  match plan with
  | Plan.Insert { table = name; values } ->
      let ts = table t name in
      let row =
        Array.of_list
          (List.map2
             (fun (c : Case.col) e ->
               Case.coerce c.Case.ty
                 (Expr.eval e ~params (fun _ ->
                      invalid_arg "oracle: INSERT values cannot reference columns")))
             ts.cols values)
      in
      ts.rows <- ts.rows @ [ row ]
  | Plan.Update { table = name; assignments; pred } ->
      let ts = table t name in
      let tys = Array.of_list (List.map (fun c -> c.Case.ty) ts.cols) in
      ts.rows <-
        List.map
          (fun row ->
            let matches =
              match pred with
              | None -> true
              | Some p -> truthy_row ~params p row
            in
            if not matches then row
            else begin
              (* right-hand sides all see the OLD tuple *)
              let news =
                List.map
                  (fun (a, e) ->
                    (a, Case.coerce tys.(a) (eval_row ~params e row)))
                  assignments
              in
              let row' = Array.copy row in
              List.iter (fun (a, v) -> row'.(a) <- v) news;
              row'
            end)
          ts.rows
  | _ -> invalid_arg "oracle: exec expects Insert or Update"

let run_statement t = function
  | Case.Query p -> Some (query t p)
  | Case.Exec p ->
      exec t p;
      None

(* full-table dump, for end-of-episode state comparison *)
let dump t name =
  let ts = table t name in
  {
    columns = Array.of_list (List.map (fun c -> c.Case.cname) ts.cols);
    rows = ts.rows;
  }
