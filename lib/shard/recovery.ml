(* Sharded crash recovery: per-node snapshot + WAL replay, with in-doubt
   transactions settled against the coordinator's decision log.

   Presumed abort: the coordinator logs only COMMIT decisions (one durable
   newline-terminated [Exchange.Decide] line before phase 2 starts); a
   prepared transaction with no decision line aborted.  A node's WAL can
   therefore end with [Prepare txid] and nothing else — single-node
   [Recover.run] would discard it, but here the decision log is consulted
   first and the outcome appended to the node's log, so replay then applies
   it like any locally-decided transaction.  A torn tail of the decision
   log (no trailing newline) is an un-durable decision and reads as
   absent. *)

module Faultio = Durability.Faultio
module Wal = Durability.Wal
module Recover = Durability.Recover
module Errors = Mrdb_util.Errors

let log_decision sink ~txid ~commit =
  Faultio.write sink (Exchange.encode (Exchange.Decide { txid; commit }) ^ "\n");
  Faultio.flush sink

let decisions env =
  match Faultio.read_all env Cluster.decision_store with
  | None -> []
  | Some buf ->
      let lines = String.split_on_char '\n' (Bytes.to_string buf) in
      (* the final split element is "" after a trailing newline and a torn
         partial line otherwise; either way it is not a durable decision *)
      let rec complete = function
        | [] | [ _ ] -> []
        | l :: rest -> l :: complete rest
      in
      List.filter_map
        (fun l ->
          match Exchange.parse l with
          | Exchange.Decide { txid; commit } -> Some (txid, commit)
          | _ -> None
          | exception _ -> None)
        (complete lines)

(* Prepared-but-undecided transaction ids in the clean prefix of a log. *)
let in_doubt (scanned : Wal.scanned) =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i r ->
      if i < scanned.clean then
        match r with
        | Wal.Prepare txid -> Hashtbl.replace tbl txid ()
        | Wal.Commit txid | Wal.Abort txid -> Hashtbl.remove tbl txid
        | Wal.Begin _ | Wal.Op _ -> ())
    scanned.records;
  Hashtbl.fold (fun txid () acc -> txid :: acc) tbl [] |> List.sort compare

let in_doubt_txids env = in_doubt (Wal.scan env)

type settled = { txid : int; committed : bool }

let recover_node ?hier ?decisions:ds env =
  let scanned = Wal.scan env in
  let doubts = in_doubt scanned in
  let settled =
    match ds with
    | Some ds ->
        List.map
          (fun txid ->
            let committed =
              match List.assoc_opt txid ds with
              | Some c -> c
              | None -> false (* presumed abort *)
            in
            { txid; committed })
          doubts
    | None ->
        if doubts <> [] then
          raise
            (Errors.Txn_indoubt
               (Printf.sprintf
                  "transactions %s prepared on this shard but the \
                   coordinator decision log is unreachable"
                  (String.concat ", "
                     (List.map string_of_int doubts))));
        []
  in
  (* Settle by appending the decision to the node's own log; replay then
     treats the transaction exactly like a locally-decided one.  The log
     may end in a torn or corrupt tail (a commit record cut mid-write, for
     instance) — replay desyncs there, so the tail must go or the appended
     settlements would be unreachable and a decided-commit transaction
     would silently abort on this shard only. *)
  if settled <> [] then begin
    if Faultio.durable_size env Wal.store_name > scanned.Wal.clean_bytes then
      Faultio.truncate_store env Wal.store_name scanned.Wal.clean_bytes;
    let w = Wal.append env in
    List.iter
      (fun s ->
        Wal.write w (if s.committed then Wal.Commit s.txid else Wal.Abort s.txid))
      settled;
    Wal.flush w;
    Wal.close w
  end;
  (Recover.run ?hier env, settled)

type cluster_result = {
  results : Recover.result array;  (** per shard, in shard order *)
  settled : (int * settled) list;  (** (shard, settlement) for in-doubt txns *)
}

let recover_cluster ?hier envs coord =
  let ds = decisions coord in
  let settled = ref [] in
  let results =
    Array.mapi
      (fun k env ->
        let r, s = recover_node ?hier ~decisions:ds env in
        settled := !settled @ List.map (fun x -> (k, x)) s;
        r)
      envs
  in
  { results; settled = !settled }
