(* The distributed executor: runs physical plans over a [Cluster], shipping
   as little as possible over the simulated interconnect.

   Plan shapes, in decreasing order of preference:

   - scan/select/project pipelines (any access path) run unchanged on every
     shard — per-shard indexes cover index access — and the coordinator
     unions the partial results in shard order;
   - group-bys over a distributable child run with [Aggregate.decompose]d
     aggregates per shard and merge at the coordinator with the exact
     machinery the morsel-parallel executor uses
     ([Parallel.merge_group_rows]), so only one group row per shard-group
     crosses the wire instead of every input row;
   - hash joins of two base-table pipelines are exchanged by whichever of
     shuffle (hash-repartition both sides) and broadcast (replicate the
     build side, probe in place) the [Cost] model prices cheaper, then the
     join itself — including any select/project layers above it — runs
     through the unmodified local engine over a shadow catalog in which the
     exchanged inputs are temp tables;
   - sorts and limits apply at the coordinator, above the distributed
     subtree;
   - DML routes through two-phase commit: inserts hash-route to one shard,
     updates compute their per-shard operation lists against the live shard
     data (the same read path as [Dml.update]) and commit atomically across
     every shard that matched;
   - anything else falls back to shipping every base table to the
     coordinator and running single-node — always correct, charged in full
     to the interconnect.

   Exchanged temp tables live only in per-query shadow catalogs (the
   [Parallel] domain-catalog pattern), so shard catalogs — and their
   durability digests — never see them. *)

module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Schema = Storage.Schema
module Value = Storage.Value
module Arena = Storage.Arena
module Layout = Storage.Layout
module Physical = Relalg.Physical
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate
module Engine = Engines.Engine
module Runtime = Engines.Runtime
module Parallel = Engines.Parallel
module Dml = Engines.Dml
module Wal = Durability.Wal

type ctx = {
  cl : Cluster.t;
  engine : Engine.kind;
  params : Value.t array;
  coord_hier : Memsim.Hierarchy.t option;
  coord_arena : Arena.t;
}

(* Shadow-catalog arenas start far above the node's own, so simulated
   addresses never alias (the parallel executor's domain-arena idiom). *)
let exec_arena_stride = 1 lsl 36

let node0 ctx = (Cluster.nodes ctx.cl).(0)

(* Every shard, through the down-check. *)
let live_nodes ctx =
  Array.init (Cluster.shards ctx.cl) (fun k -> Cluster.node ctx.cl k)

(* {2 Shape recognition} *)

let rec scan_pipe = function
  | Physical.Scan { table; _ } -> Some table
  | Physical.Select { child; _ } | Physical.Project { child; _ } ->
      scan_pipe child
  | _ -> None

(* A hash join of two base-table pipelines, possibly under select/project
   layers. *)
let rec join_parts = function
  | Physical.Hash_join { build; probe; build_keys; probe_keys; _ } ->
      if scan_pipe build <> None && scan_pipe probe <> None then
        Some (build, probe, build_keys, probe_keys)
      else None
  | Physical.Select { child; _ } | Physical.Project { child; _ } ->
      join_parts child
  | _ -> None

(* Rebuild the select/project spine above the join core with the core
   replaced. *)
let rec map_join plan f =
  match plan with
  | Physical.Hash_join { build; probe; build_keys; probe_keys; match_sel } ->
      Some (f ~build ~probe ~build_keys ~probe_keys ~match_sel)
  | Physical.Select { child; pred; sel } -> (
      match map_join child f with
      | Some c -> Some (Physical.Select { child = c; pred; sel })
      | None -> None)
  | Physical.Project { child; exprs } -> (
      match map_join child f with
      | Some c -> Some (Physical.Project { child = c; exprs })
      | None -> None)
  | _ -> None

(* Tables the plan reads through an index — the only indexes a shadow
   catalog needs rebuilt. *)
let rec index_tables acc = function
  | Physical.Scan
      { table; access = Physical.Index_eq _ | Physical.Index_range _; _ } ->
      table :: acc
  | Physical.Scan _ | Physical.Insert _ -> acc
  | Physical.Select { child; _ }
  | Physical.Project { child; _ }
  | Physical.Group_by { child; _ }
  | Physical.Sort { child; _ }
  | Physical.Limit { child; _ } -> index_tables acc child
  | Physical.Hash_join { build; probe; _ } ->
      index_tables (index_tables acc build) probe
  | Physical.Update
      { table; access = Physical.Index_eq _ | Physical.Index_range _; _ } ->
      table :: acc
  | Physical.Update _ -> acc

(* {2 Shadow catalogs and exchange temp tables} *)

let add_temp vcat name attrs rows =
  let schema =
    (* every column nullable: exchanged rows are pipeline output, which the
       planner's schema may type tighter than the values in flight *)
    Schema.make_nullable name
      (Array.to_list attrs
      |> List.map (fun (a : Schema.attr) -> (a.Schema.name, a.Schema.ty, true)))
  in
  let rel = Catalog.add vcat schema (Layout.row schema) in
  match rows with
  | [] -> ()
  | _ ->
      let arr = Array.of_list rows in
      Relation.load rel ~n:(Array.length arr) (fun ~row -> arr.(row))

(* A per-query shadow catalog over [node]'s relations plus exchange temp
   tables; only indexes [for_plan] actually reads are rebuilt.  Setup work,
   untraced. *)
let localize (node : Cluster.node) ~for_plan temps =
  Memsim.Hierarchy.without_tracing node.hier (fun () ->
      let arena =
        Arena.create
          ~start:(Arena.mark (Catalog.arena node.cat) + exec_arena_stride)
          ()
      in
      let vcat = Catalog.create ~hier:node.hier ~arena () in
      List.iter
        (fun nm -> Catalog.add_relation vcat (Catalog.find node.cat nm))
        (Catalog.names node.cat);
      List.iter
        (fun nm ->
          if Catalog.mem vcat nm then
            List.iter
              (fun (iname, kind, attrs) ->
                Catalog.create_index vcat nm ~name:iname ~kind ~attrs)
              (Catalog.index_defs node.cat nm))
        (List.sort_uniq compare (index_tables [] for_plan));
      List.iter (fun (name, attrs, rows) -> add_temp vcat name attrs rows) temps;
      vcat)

let tmp_scan table =
  Physical.Scan { table; access = Physical.Full_scan; post = None; sel = 1.0 }

(* Hash partitioning: structural hash of the key values, which agrees with
   the hashtable equality the join runtimes key on. *)
let bucket_of ~keys n row =
  Hashtbl.hash (List.map (fun i -> row.(i)) keys) mod n

(* {2 Distributed execution} *)

(* Run [wrap subtree'] on every shard, where [subtree'] is the per-shard
   localization of [subtree] — unchanged for pipelines, exchange-localized
   for joins.  Returns per-shard results in shard order. *)
let per_shard ctx subtree ~wrap =
  let nodes = live_nodes ctx in
  match join_parts subtree with
  | None ->
      Array.map
        (fun (nd : Cluster.node) ->
          Engine.run ctx.engine nd.cat (wrap subtree) ~params:ctx.params)
        nodes
  | Some (build, probe, _, probe_keys) ->
      let net = Cluster.net ctx.cl in
      let n = Array.length nodes in
      let costing = Cost.join_costing ctx.cl ~build ~probe in
      let build_attrs = Physical.schema nodes.(0).cat build in
      let run_rows side =
        Array.map
          (fun (nd : Cluster.node) ->
            (Engine.run ctx.engine nd.cat side ~params:ctx.params).Runtime.rows)
          nodes
      in
      (match costing.Cost.chosen with
      | Cost.Broadcast ->
          let bparts = run_rows build in
          Array.iteri
            (fun src rows ->
              for dst = 0 to n - 1 do
                if dst <> src then Exchange.send_rows net ~src ~dst rows
              done)
            bparts;
          (* shard-order concatenation = global build order, so per-probe
             match order is identical to a single-node run *)
          let all_build = List.concat (Array.to_list bparts) in
          let tmpb = Cluster.temp_name ctx.cl in
          Array.map
            (fun (nd : Cluster.node) ->
              let plan' =
                Option.get
                  (map_join subtree
                     (fun ~build:_ ~probe ~build_keys ~probe_keys ~match_sel ->
                       Physical.Hash_join
                         {
                           build = tmp_scan tmpb;
                           probe;
                           build_keys;
                           probe_keys;
                           match_sel;
                         }))
              in
              let vcat =
                localize nd ~for_plan:plan' [ (tmpb, build_attrs, all_build) ]
              in
              Engine.run ctx.engine vcat (wrap plan') ~params:ctx.params)
            nodes
      | Cost.Shuffle ->
          let probe_attrs = Physical.schema nodes.(0).cat probe in
          let build_keys =
            match join_parts subtree with
            | Some (_, _, bk, _) -> bk
            | None -> assert false
          in
          let partition keys parts =
            let mat = Array.make_matrix n n [] in
            Array.iteri
              (fun src rows ->
                List.iter
                  (fun row ->
                    let dst = bucket_of ~keys n row in
                    mat.(src).(dst) <- row :: mat.(src).(dst))
                  rows)
              parts;
            (* concatenating in src order keeps each bucket in global row
               order *)
            Array.init n (fun dst ->
                List.concat
                  (List.init n (fun src ->
                       let rows = List.rev mat.(src).(dst) in
                       if dst <> src then Exchange.send_rows net ~src ~dst rows;
                       rows)))
          in
          let bbuckets = partition build_keys (run_rows build) in
          let pbuckets = partition probe_keys (run_rows probe) in
          let tmpb = Cluster.temp_name ctx.cl in
          let tmpp = Cluster.temp_name ctx.cl in
          Array.mapi
            (fun k (nd : Cluster.node) ->
              let plan' =
                Option.get
                  (map_join subtree
                     (fun ~build:_ ~probe:_ ~build_keys ~probe_keys ~match_sel
                     ->
                       Physical.Hash_join
                         {
                           build = tmp_scan tmpb;
                           probe = tmp_scan tmpp;
                           build_keys;
                           probe_keys;
                           match_sel;
                         }))
              in
              let vcat =
                localize nd ~for_plan:plan'
                  [
                    (tmpb, build_attrs, bbuckets.(k));
                    (tmpp, probe_attrs, pbuckets.(k));
                  ]
              in
              Engine.run ctx.engine vcat (wrap plan') ~params:ctx.params)
            nodes)

let ship_to_coordinator ctx (partials : Runtime.result array) =
  let net = Cluster.net ctx.cl in
  Array.iteri
    (fun src (r : Runtime.result) ->
      Exchange.send_rows net ~src ~dst:Netsim.coordinator r.Runtime.rows)
    partials

let gather ctx plan =
  let partials = per_shard ctx plan ~wrap:Fun.id in
  ship_to_coordinator ctx partials;
  Runtime.concat_results (Array.to_list partials)

let partial_agg ctx ~post ~keys ~aggs ~n_groups ~child plan =
  let decomposed = List.concat_map Aggregate.decompose aggs in
  let wrap c =
    Physical.Group_by { child = c; keys; aggs = decomposed; n_groups }
  in
  let partials = per_shard ctx child ~wrap in
  ship_to_coordinator ctx partials;
  let merged =
    Parallel.merge_group_rows ~n_keys:(List.length keys) ~aggs partials
  in
  let rows = Parallel.apply_projections ~params:ctx.params post merged in
  { Runtime.columns = Parallel.result_columns (node0 ctx).cat plan; rows }

(* No distributable shape: ship every base table to the coordinator and run
   the plan single-node there.  Always correct, charged in full to the
   interconnect. *)
let pull_all ctx plan =
  let net = Cluster.net ctx.cl in
  let nodes = live_nodes ctx in
  let ccat = Catalog.create ?hier:ctx.coord_hier ~arena:ctx.coord_arena () in
  List.iter
    (fun name ->
      let rel0 = Catalog.find nodes.(0).cat name in
      let crel =
        Catalog.add
          ~encodings:(Relation.encodings rel0)
          ccat (Relation.schema rel0) (Relation.layout rel0)
      in
      let rows =
        Array.to_list nodes
        |> List.concat_map (fun (nd : Cluster.node) ->
               let rel = Relation.with_hier (Catalog.find nd.cat name) None in
               let rows =
                 List.init (Relation.nrows rel) (Relation.get_tuple rel)
               in
               Exchange.send_rows net ~src:nd.id ~dst:Netsim.coordinator rows;
               rows)
      in
      (match rows with
      | [] -> ()
      | _ ->
          let arr = Array.of_list rows in
          Relation.load crel ~n:(Array.length arr) (fun ~row -> arr.(row)));
      List.iter
        (fun (iname, kind, attrs) ->
          Catalog.create_index ccat name ~name:iname ~kind ~attrs)
        (Catalog.index_defs nodes.(0).cat name))
    (Cluster.table_names ctx.cl);
  Engine.run ctx.engine ccat plan ~params:ctx.params

(* {2 DML through two-phase commit} *)

(* The per-shard operation list of an UPDATE: the same visit order, index
   usage, and evaluate-all-right-hand-sides-against-the-old-tuple rule as
   [Dml.update], but recorded instead of applied. *)
let update_ops (nd : Cluster.node) ~params ~table ~access ~post ~assignments =
  let cat = nd.cat in
  let rel = Catalog.find cat table in
  let ops = ref [] in
  let visit tid =
    let col i = Relation.get rel tid i in
    let matches =
      match post with
      | None -> true
      | Some pred -> Expr.truthy (Expr.eval pred ~params col)
    in
    if matches then
      List.iter
        (fun (a, e) ->
          let v = Expr.eval e ~params col in
          ops := Wal.Update { table; tid; attr = a; value = v } :: !ops)
        assignments
  in
  (match Dml.index_tids cat params table access with
  | Some tids -> List.iter visit tids
  | None ->
      for tid = 0 to Relation.nrows rel - 1 do
        visit tid
      done);
  List.rev !ops

let exec_dml ctx plan =
  let columns =
    try Parallel.result_columns (node0 ctx).cat plan with _ -> [||]
  in
  match plan with
  | Physical.Insert { table; values } ->
      let vals =
        Array.of_list
          (List.map
             (fun e ->
               Expr.eval e ~params:ctx.params (fun _ ->
                   invalid_arg "INSERT values cannot reference columns"))
             values)
      in
      let dst = Hashtbl.hash (Array.to_list vals) mod Cluster.shards ctx.cl in
      let outcome =
        Twopc.execute ctx.cl [ (dst, [ Wal.Append { table; values = vals } ]) ]
      in
      ignore outcome;
      { Runtime.columns; rows = [] }
  | Physical.Update { table; access; post; assignments; _ } ->
      let shard_ops =
        Array.to_list (live_nodes ctx)
        |> List.map (fun (nd : Cluster.node) ->
               ( nd.Cluster.id,
                 update_ops nd ~params:ctx.params ~table ~access ~post
                   ~assignments ))
      in
      let outcome = Twopc.execute ctx.cl shard_ops in
      ignore outcome;
      { Runtime.columns; rows = [] }
  | _ -> invalid_arg "Exec.exec_dml: not a DML plan"

(* {2 Top level} *)

let rec exec ctx plan : Runtime.result =
  match plan with
  | Physical.Limit { child; n } ->
      let r = exec ctx child in
      let rec take k = function
        | [] -> []
        | x :: tl -> if k <= 0 then [] else x :: take (k - 1) tl
      in
      { r with Runtime.rows = take n r.Runtime.rows }
  | Physical.Sort { child; keys } ->
      let r = exec ctx child in
      let attrs = Physical.schema (node0 ctx).cat child in
      let row_width =
        Array.fold_left (fun acc a -> acc + Schema.stored_width a) 0 attrs
      in
      let rows =
        Runtime.sort_rows ?hier:ctx.coord_hier ctx.coord_arena ~row_width ~keys
          r.Runtime.rows
      in
      { r with Runtime.rows }
  | Physical.Insert _ | Physical.Update _ -> exec_dml ctx plan
  | _ -> (
      match scan_pipe plan with
      | Some _ -> gather ctx plan
      | None -> (
          match Parallel.peel_projections [] plan with
          | post, Physical.Group_by { child; keys; aggs; n_groups }
            when scan_pipe child <> None || join_parts child <> None ->
              partial_agg ctx ~post ~keys ~aggs ~n_groups ~child plan
          | _ ->
              if join_parts plan <> None then gather ctx plan
              else pull_all ctx plan))

let make_ctx ?coord ~engine ~params cl =
  let coord_hier = Option.bind coord Catalog.hier in
  let coord_arena =
    match coord with Some c -> Catalog.arena c | None -> Arena.create ()
  in
  { cl; engine; params; coord_hier; coord_arena }

let run ?(engine = Engine.Jit) ?(params = [||]) ?coord cl plan =
  exec (make_ctx ?coord ~engine ~params cl) plan

type measured = {
  stats : Memsim.Stats.t;
      (** per-shard {!Memsim.Stats.merge}: traffic sums, slowest shard's
          cycles (the simulated wall-clock) *)
  net_messages : int;
  net_bytes : int;
  net_cycles : int;
}

let total_cycles m = Memsim.Stats.total_cycles m.stats + m.net_cycles

let run_measured ?(cold = true) ?(engine = Engine.Jit) ?(params = [||]) ?coord
    cl plan =
  let nodes = Cluster.nodes cl in
  Array.iter
    (fun (nd : Cluster.node) ->
      if cold then Memsim.Hierarchy.reset nd.hier
      else Memsim.Hierarchy.reset_stats nd.hier)
    nodes;
  let net = Cluster.net cl in
  let snap = Netsim.snapshot net in
  let ctx = make_ctx ?coord ~engine ~params cl in
  let r = exec ctx plan in
  let stats =
    match Array.to_list nodes with
    | [] -> assert false
    | n0 :: rest ->
        List.fold_left
          (fun acc (nd : Cluster.node) ->
            Memsim.Stats.merge acc (Memsim.Hierarchy.snapshot nd.hier))
          (Memsim.Hierarchy.snapshot n0.hier)
          rest
  in
  let net_messages, net_bytes, net_cycles = Netsim.since net snap in
  (* surface the interconnect as its own phase (and charge the coordinator
     hierarchy) so [explain --analyze] shows a #net span *)
  (match ctx.coord_hier with
  | Some h ->
      Obs.Profile.phase "#net" (fun () -> Memsim.Hierarchy.add_cpu h net_cycles)
  | None -> ());
  (r, { stats; net_messages; net_bytes; net_cycles })

(* {2 Plan description (explain)} *)

let describe cl plan =
  let n = Cluster.shards cl in
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "shards: %d" n;
  let rec go plan =
    match plan with
    | Physical.Limit { child; n } ->
        line "limit %d: at coordinator" n;
        go child
    | Physical.Sort { child; _ } ->
        line "sort: at coordinator, over the gathered union";
        go child
    | Physical.Insert _ ->
        line "insert: hash-routed to one shard, two-phase commit"
    | Physical.Update _ ->
        line
          "update: per-shard operation lists, two-phase commit across \
           matching shards"
    | _ -> (
        match scan_pipe plan with
        | Some table ->
            line "gather: per-shard pipeline over %s, union at coordinator"
              table
        | None -> (
            match Parallel.peel_projections [] plan with
            | _, (Physical.Group_by { child; _ } as gb)
              when scan_pipe child <> None || join_parts child <> None ->
                let c = Cost.agg_costing cl ~child ~gb in
                line
                  "partial aggregation: decomposed per shard, merged at \
                   coordinator";
                line "  est naive gather %d B, partial %d B" c.Cost.naive_bytes
                  c.Cost.partial_bytes;
                (match join_parts child with
                | Some (build, probe, _, _) -> join_lines build probe
                | None -> ())
            | _ -> (
                match join_parts plan with
                | Some (build, probe, _, _) -> join_lines build probe
                | None ->
                    line
                      "pull-all fallback: every base table shipped to the \
                       coordinator")))
  and join_lines build probe =
    let c = Cost.join_costing cl ~build ~probe in
    line "distributed hash join: %s" (Cost.method_name c.Cost.chosen);
    line "  shuffle   est %d B, %d msgs, %d net cycles" c.Cost.shuffle_bytes
      c.Cost.shuffle_msgs c.Cost.shuffle_cycles;
    line "  broadcast est %d B, %d msgs, %d cycles (net + extra build)"
      c.Cost.broadcast_bytes c.Cost.broadcast_msgs c.Cost.broadcast_cycles
  in
  go plan;
  Buffer.contents b
