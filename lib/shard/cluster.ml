(* A cluster of N simulated nodes, each owning a horizontal slice of every
   relation.  Shard k of a table with n rows holds rows
   [k*n/N .. (k+1)*n/N) — the same contiguous carving the parallel
   executor's morsel ranges use — re-materialized into the node's own
   catalog so each node has a private memsim hierarchy, arena, and (when
   durable) WAL + snapshot in a private Faultio env.  The coordinator keeps
   a separate env holding only the 2PC decision log.

   Scatter is setup work and runs untraced, exactly like loading a demo
   database: only query execution touches the simulated hierarchies. *)

module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Value = Storage.Value
module Faultio = Durability.Faultio
module Wal = Durability.Wal
module Snapshot = Durability.Snapshot
module Errors = Mrdb_util.Errors

type node = {
  id : int;
  cat : Catalog.t;
  hier : Memsim.Hierarchy.t;
  env : Faultio.t;
  mutable wal : Wal.writer option;  (** open writer when the cluster is durable *)
  mutable down : bool;
}

type t = {
  nodes : node array;
  net : Netsim.t;
  coord : Faultio.t;
  mutable coord_sink : Faultio.sink option;
  durable : bool;
  mutable next_txid : int;
  mutable next_tmp : int;
}

(* The Faultio store of the coordinator's decision log. *)
let decision_store = "decisions"

let shard_range ~shards ~shard n =
  let lo = shard * n / shards in
  let hi = (shard + 1) * n / shards in
  (lo, hi - lo)

let scatter_into ~shards ~shard src dst =
  List.iter
    (fun name ->
      let rel = Catalog.find src name in
      let schema = Relation.schema rel in
      let layout = Relation.layout rel in
      let encodings = Relation.encodings rel in
      let nrel = Catalog.add ~encodings dst schema layout in
      let lo, len = shard_range ~shards ~shard (Relation.nrows rel) in
      if len > 0 then begin
        (* read through an untraced view: scatter is setup work *)
        let view = Relation.with_hier rel None in
        Relation.load nrel ~n:len (fun ~row -> Relation.get_tuple view (lo + row))
      end;
      List.iter
        (fun (iname, kind, attrs) ->
          Catalog.create_index dst name ~name:iname ~kind ~attrs)
        (Catalog.index_defs src name))
    (Catalog.names src)

let create ?(durable = false) ?net_params ?envs ?coord_env ~shards cat =
  if shards < 1 then invalid_arg "Cluster.create: shards must be >= 1";
  (match envs with
  | Some e when Array.length e <> shards ->
      invalid_arg "Cluster.create: envs array must have one env per shard"
  | _ -> ());
  let params =
    match Catalog.hier cat with
    | Some h -> Memsim.Hierarchy.params h
    | None -> Memsim.Params.nehalem
  in
  let nodes =
    Array.init shards (fun k ->
        let hier = Memsim.Hierarchy.create ~params () in
        let ncat = Catalog.create ~hier () in
        scatter_into ~shards ~shard:k cat ncat;
        let env =
          match envs with Some e -> e.(k) | None -> Faultio.memory ()
        in
        let wal =
          if durable then begin
            Snapshot.write env ~last_txid:0 ncat;
            Some (Wal.create env)
          end
          else None
        in
        { id = k; cat = ncat; hier; env; wal; down = false })
  in
  let coord =
    match coord_env with Some e -> e | None -> Faultio.memory ()
  in
  let coord_sink =
    if durable then Some (Faultio.create coord decision_store) else None
  in
  {
    nodes;
    net = Netsim.create ?params:net_params ();
    coord;
    coord_sink;
    durable;
    next_txid = 1;
    next_tmp = 0;
  }

let shards t = Array.length t.nodes
let nodes t = t.nodes

let node t k =
  if k < 0 || k >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Cluster.node: no shard %d" k);
  let n = t.nodes.(k) in
  if n.down then
    raise (Errors.Shard_unavailable (Printf.sprintf "shard %d is down" k));
  n

let net t = t.net
let durable t = t.durable
let coord_env t = t.coord
let coord_sink t = t.coord_sink

let set_down t k flag =
  if k < 0 || k >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Cluster.set_down: no shard %d" k);
  t.nodes.(k).down <- flag

let fresh_txid t =
  let id = t.next_txid in
  t.next_txid <- id + 1;
  id

let seen_txid t id = if id >= t.next_txid then t.next_txid <- id + 1

let temp_name t =
  let n = t.next_tmp in
  t.next_tmp <- n + 1;
  Printf.sprintf "#tmp%d" n

(* Names of the scattered (non-temporary) relations, in catalog order. *)
let table_names t =
  List.filter
    (fun n -> String.length n = 0 || n.[0] <> '#')
    (Catalog.names t.nodes.(0).cat)

let table_rows t name =
  Array.to_list t.nodes
  |> List.concat_map (fun n ->
         let rel = Relation.with_hier (Catalog.find n.cat name) None in
         let rows = ref [] in
         for tid = Relation.nrows rel - 1 downto 0 do
           rows := Relation.get_tuple rel tid :: !rows
         done;
         !rows)

let digests t =
  Array.to_list t.nodes |> List.map (fun n -> Snapshot.digest n.cat)

let close t =
  Array.iter
    (fun n ->
      match n.wal with
      | Some w ->
          Wal.close w;
          n.wal <- None
      | None -> ())
    t.nodes;
  match t.coord_sink with
  | Some s ->
      Faultio.close s;
      t.coord_sink <- None
  | None -> ()
