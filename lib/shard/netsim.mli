(** The simulated interconnect cost model: per-message latency and per-byte
    bandwidth atoms in the same CPU-cycle currency as the Table III cache
    atoms, so the planner can weigh network bytes against local cache
    traffic directly.  Counters also feed the [mrdb_shard_net_*] members of
    the {!Obs.Metrics} registry. *)

type params = {
  latency_cycles : int;  (** fixed cost per message (the hop latency) *)
  cycles_per_byte : int;  (** bandwidth term, cycles per payload byte *)
}

val default_params : params
(** ~1 µs hop latency at 2.67 GHz (2670 cycles) and ~10 Gbit/s of bandwidth
    (2 cycles/byte). *)

type t

val create : ?params:params -> unit -> t
val params : t -> params

val coordinator : int
(** The coordinator's pseudo node id ([-1]), distinct from every shard. *)

val send : t -> src:int -> dst:int -> bytes:int -> unit
(** Account one message of [bytes] payload.  [src = dst] is a local handoff
    and costs nothing. *)

val messages : t -> int
val bytes : t -> int

val cycles : t -> int
(** [messages * latency + bytes * cycles_per_byte] so far. *)

val cost_of : params -> messages:int -> bytes:int -> int
(** The same formula applied to hypothetical traffic — the planner's
    what-if evaluation of shuffle vs broadcast. *)

val reset : t -> unit

(** {2 Scoped deltas} *)

type snapshot

val snapshot : t -> snapshot

val since : t -> snapshot -> int * int * int
(** [(messages, bytes, cycles)] accumulated since the snapshot. *)
