(* Distributed plan costing: the network side of the cost model.

   The Netsim atoms price hypothetical exchange traffic in the same CPU-
   cycle currency as the Table III cache atoms, so choosing between a
   shuffle (hash-repartition both join sides) and a broadcast (replicate
   the build side everywhere, probe in place) is one comparison of cycle
   estimates — network bytes weighed directly against the extra local
   cache traffic broadcast pays for building the full hash table on every
   shard.

   Cardinalities come from the per-node catalogs (summing shard estimates),
   so the estimates track DML instead of going stale with the coordinator's
   planning catalog. *)

module Catalog = Storage.Catalog
module Schema = Storage.Schema
module Physical = Relalg.Physical

let ceil_div a b = (a + b - 1) / b

(* Wire bytes of one row of a plan's output: stored widths plus ~2 bytes of
   tag/separator framing per value (the Exchange codec's overhead). *)
let row_bytes cat plan =
  let attrs = Physical.schema cat plan in
  Array.fold_left (fun acc a -> acc + Schema.stored_width a) 0 attrs
  + (2 * Array.length attrs)

(* Estimated output rows of a subtree, summed over the live shard
   catalogs. *)
let est_rows cl plan =
  Array.fold_left
    (fun acc (n : Cluster.node) ->
      acc +. Float.max 0. (Physical.cardinality n.cat plan))
    0. (Cluster.nodes cl)
  |> int_of_float

(* Messages for one point-to-point row stream (at least one — an empty
   stream still pays its latency, exactly like [Exchange.send_rows]). *)
let stream_msgs rows = max 1 (ceil_div (max rows 0) Exchange.batch_rows)

type method_ = Broadcast | Shuffle

let method_name = function Broadcast -> "broadcast" | Shuffle -> "shuffle"

type join_costing = {
  chosen : method_;
  build_rows : int;
  probe_rows : int;
  shuffle_bytes : int;
  shuffle_msgs : int;
  shuffle_cycles : int;
  broadcast_bytes : int;
  broadcast_msgs : int;
  broadcast_cycles : int;
      (** network cycles plus the extra local build work broadcast pays *)
}

let join_costing cl ~build ~probe =
  let n = Cluster.shards cl in
  let net_params = Netsim.params (Cluster.net cl) in
  let node0 = (Cluster.nodes cl).(0) in
  let brows = est_rows cl build and prows = est_rows cl probe in
  let brb = row_bytes node0.cat build and prb = row_bytes node0.cat probe in
  (* shuffle: both sides hash-repartition; (n-1)/n of each side's rows
     cross the wire, in n*(n-1) streams per side *)
  let shuffle_bytes = (brows * brb + prows * prb) * (n - 1) / max n 1 in
  let shuffle_msgs =
    n * (n - 1)
    * (stream_msgs (brows / max (n * n) 1) + stream_msgs (prows / max (n * n) 1))
  in
  (* broadcast: every shard's build slice goes to the n-1 others; the probe
     side never moves *)
  let broadcast_bytes = brows * brb * (n - 1) in
  let broadcast_msgs = n * (n - 1) * stream_msgs (brows / max n 1) in
  let shuffle_cycles =
    Netsim.cost_of net_params ~messages:shuffle_msgs ~bytes:shuffle_bytes
  in
  (* broadcast builds the full hash table on every shard instead of 1/n of
     it: charge the extra inserts one memory access each *)
  let mem_lat = (Memsim.Hierarchy.params node0.hier).Memsim.Params.memory_latency in
  let extra_build = (n - 1) * brows * mem_lat in
  let broadcast_cycles =
    Netsim.cost_of net_params ~messages:broadcast_msgs ~bytes:broadcast_bytes
    + extra_build
  in
  let chosen = if broadcast_cycles <= shuffle_cycles then Broadcast else Shuffle in
  {
    chosen;
    build_rows = brows;
    probe_rows = prows;
    shuffle_bytes;
    shuffle_msgs;
    shuffle_cycles;
    broadcast_bytes;
    broadcast_msgs;
    broadcast_cycles;
  }

type agg_costing = {
  naive_bytes : int;  (** ship every input row to the coordinator *)
  partial_bytes : int;  (** ship one decomposed group row per shard-group *)
}

let agg_costing cl ~child ~gb =
  let n = Cluster.shards cl in
  let node0 = (Cluster.nodes cl).(0) in
  let crows = est_rows cl child in
  let n_groups =
    match gb with
    | Physical.Group_by { n_groups; _ } -> int_of_float (Float.max 1. n_groups)
    | _ -> invalid_arg "Cost.agg_costing: not a group-by"
  in
  let naive_bytes = crows * row_bytes node0.cat child in
  let group_rb = row_bytes node0.cat gb in
  let partial_bytes = n * min (ceil_div crows (max n 1)) n_groups * group_rb in
  { naive_bytes; partial_bytes }
