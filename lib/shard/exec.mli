(** The distributed executor: physical plans over a {!Cluster}.

    Scan/select/project pipelines run unchanged per shard and union at the
    coordinator; group-bys distribute with decomposed aggregates (one group
    row per shard-group on the wire); hash joins exchange their inputs by
    whichever of shuffle and broadcast the {!Cost} model prices cheaper and
    then run through the unmodified local engine over a shadow catalog;
    sorts/limits apply at the coordinator; DML commits through {!Twopc};
    everything else falls back to shipping the base tables.  Results are
    identical (as multisets; identical outright under a total sort) to a
    single-node run of the same plan. *)

val run :
  ?engine:Engines.Engine.kind ->
  ?params:Storage.Value.t array ->
  ?coord:Storage.Catalog.t ->
  Cluster.t ->
  Relalg.Physical.t ->
  Engines.Runtime.result
(** [coord] supplies the coordinator's hierarchy and arena (for sort/merge
    work and the [#net] span); without it coordinator work is untraced.
    @raise Mrdb_util.Errors.Shard_unavailable if a needed shard is down. *)

type measured = {
  stats : Memsim.Stats.t;
      (** per-shard {!Memsim.Stats.merge}: traffic sums, slowest shard's
          cycles (the simulated wall-clock) *)
  net_messages : int;
  net_bytes : int;
  net_cycles : int;
}

val total_cycles : measured -> int
(** Slowest shard's simulated cycles plus the interconnect cycles. *)

val run_measured :
  ?cold:bool ->
  ?engine:Engines.Engine.kind ->
  ?params:Storage.Value.t array ->
  ?coord:Storage.Catalog.t ->
  Cluster.t ->
  Relalg.Physical.t ->
  Engines.Runtime.result * measured
(** Reset per-shard hierarchies ([cold], the default, also empties caches),
    execute, and collect merged shard stats plus the interconnect delta.
    When [coord] carries a hierarchy the net cycles are charged to it
    inside an [Obs.Profile] ["#net"] phase, so [explain --analyze] shows
    the interconnect as its own span. *)

val describe : Cluster.t -> Relalg.Physical.t -> string
(** The distributed strategy, with the cost model's shuffle/broadcast and
    naive/partial-aggregation estimates — the [explain] section. *)
