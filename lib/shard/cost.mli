(** Distributed plan costing: prices hypothetical exchange traffic with the
    {!Netsim} atoms — the same CPU-cycle currency as the local cache cost
    model — so shuffle vs broadcast is one comparison of cycle estimates.
    Cardinalities are summed over the live per-shard catalogs, so estimates
    track DML instead of going stale with the planning catalog. *)

val row_bytes : Storage.Catalog.t -> Relalg.Physical.t -> int
(** Estimated wire bytes of one output row (stored widths + codec
    framing). *)

val est_rows : Cluster.t -> Relalg.Physical.t -> int
(** Estimated output rows of a subtree, summed over shard catalogs. *)

type method_ = Broadcast | Shuffle

val method_name : method_ -> string

type join_costing = {
  chosen : method_;
  build_rows : int;
  probe_rows : int;
  shuffle_bytes : int;
  shuffle_msgs : int;
  shuffle_cycles : int;
  broadcast_bytes : int;
  broadcast_msgs : int;
  broadcast_cycles : int;
      (** network cycles plus the extra local build work broadcast pays *)
}

val join_costing :
  Cluster.t -> build:Relalg.Physical.t -> probe:Relalg.Physical.t -> join_costing
(** Cost both exchange strategies for a hash join and pick the cheaper
    (ties go to broadcast, which preserves global row order). *)

type agg_costing = {
  naive_bytes : int;  (** ship every input row to the coordinator *)
  partial_bytes : int;  (** ship one decomposed group row per shard-group *)
}

val agg_costing :
  Cluster.t -> child:Relalg.Physical.t -> gb:Relalg.Physical.t -> agg_costing
