(** Inter-shard exchange messages, framed with the percent-escaped line
    protocol of {!Txn.Wire} (no second ad-hoc codec): row shipments for
    distributed query exchanges and the two-phase-commit control
    vocabulary.  Transaction operations ride inside [PREPARE] as
    {!Durability.Wal.encode}d records, percent-escaped into one field. *)

type msg =
  | Rows of Storage.Value.t array list
  | Prepare of { txid : int; shard : int; ops : Durability.Wal.op list }
  | Vote of { txid : int; shard : int; commit : bool }
  | Decide of { txid : int; commit : bool }
  | Ack of { txid : int; shard : int }

val encode : msg -> string
(** One line, newline-free. *)

val parse : string -> msg
(** Inverse of {!encode}.  @raise Failure on malformed lines. *)

val bytes : msg -> int
(** Wire size of the encoded message — the unit the {!Netsim} bandwidth
    atom charges. *)

val batch_rows : int
(** Rows per [ROWS] message when shipping a result stream (256). *)

val send_rows :
  Netsim.t -> src:int -> dst:int -> Storage.Value.t array list -> unit
(** Account the shipment of a row stream: payload bytes of the [ROWS]
    messages it takes at {!batch_rows} rows per message (an empty stream
    still costs one message).  [src = dst] costs nothing. *)
