(** Two-phase commit over the per-shard WALs (presumed abort).

    A durable participant logs [Begin / Op* / Prepare] and flushes before
    voting; the coordinator makes a COMMIT decision durable (one decision-
    log line via {!Recovery.log_decision}) before any participant learns
    the outcome; phase 2 logs [Commit]/[Abort] per participant and applies
    committed operations through {!Durability.Recover.apply_op} — the same
    replay interpretation crash recovery uses.

    Named {!Durability.Faultio} crash points bracket every step:
    ["2pc.part.pre_prepare"], ["2pc.part.prepared"] (participant, around
    the prepare flush), ["2pc.coord.pre_decide"], ["2pc.coord.decided"]
    (coordinator, around the decision write), ["2pc.part.pre_resolve"]
    (participant, before the outcome record) — plus the write/flush
    boundaries the logs themselves count. *)

val apply_ops : Cluster.node -> Durability.Wal.op list -> unit
(** Apply a committed transaction's operations to the live node, untraced,
    rebuilding indexes of the touched tables. *)

type outcome = {
  txid : int;
  committed : bool;
  participants : int list;  (** shards with at least one operation *)
  votes : (int * bool) list;
}

val execute :
  ?vote:(int -> bool) ->
  Cluster.t ->
  (int * Durability.Wal.op list) list ->
  outcome
(** Run one distributed transaction: [(shard, ops)] per participant (empty
    op lists are dropped; no participants → trivial commit).  [vote]
    (test hook, default [fun _ -> true]) lets a participant veto, driving
    the abort path.

    @raise Mrdb_util.Errors.Shard_unavailable if a participant is down —
    checked before any durable write, so the transaction is atomically
    nothing.
    @raise Durability.Faultio.Crash under a crash plan; the caller then
    recovers via {!Recovery.recover_cluster}. *)
