(* The simulated interconnect: the network as one more tier of the memory
   hierarchy.  Table III gives per-level cache atoms; a message here costs a
   fixed latency atom plus a per-byte bandwidth atom, both in the same CPU
   cycles the memsim reports, so distributed plans and local plans price in
   one currency.

   The defaults model a ~1 microsecond interconnect hop at Nehalem's
   2.67 GHz (2670 cycles per message) and ~10 Gbit/s of bandwidth
   (2.67e9 cycles / 1.25e9 bytes ≈ 2 cycles per byte) — three orders of
   magnitude above the 12-cycle memory atom, which is exactly why the
   distributed planner must weigh network bytes so much more heavily than
   local cache traffic. *)

type params = {
  latency_cycles : int;  (** fixed cost per message (the hop latency) *)
  cycles_per_byte : int;  (** bandwidth term, cycles per payload byte *)
}

let default_params = { latency_cycles = 2670; cycles_per_byte = 2 }

type t = {
  params : params;
  mutable messages : int;
  mutable bytes : int;
}

let m_messages =
  Obs.Metrics.counter "mrdb_shard_net_messages_total"
    ~help:"Inter-shard messages sent over the simulated interconnect"

let m_bytes =
  Obs.Metrics.counter "mrdb_shard_net_bytes_total"
    ~help:"Inter-shard payload bytes sent over the simulated interconnect"

let create ?(params = default_params) () = { params; messages = 0; bytes = 0 }

let params t = t.params

(* The coordinator's pseudo node id, distinct from every shard. *)
let coordinator = -1

let send t ~src ~dst ~bytes =
  if src <> dst then begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes;
    Obs.Metrics.incr m_messages;
    Obs.Metrics.add m_bytes bytes
  end

let messages t = t.messages
let bytes t = t.bytes

let cost_of params ~messages ~bytes =
  (messages * params.latency_cycles) + (bytes * params.cycles_per_byte)

let cycles t = cost_of t.params ~messages:t.messages ~bytes:t.bytes
let reset t =
  t.messages <- 0;
  t.bytes <- 0

type snapshot = { msg : int; byt : int }

let snapshot t = { msg = t.messages; byt = t.bytes }

let since t { msg; byt } =
  let messages = t.messages - msg and bytes = t.bytes - byt in
  (messages, bytes, cost_of t.params ~messages ~bytes)
