(** A cluster of N simulated nodes, each owning a horizontal slice of every
    relation of a source catalog.

    Shard [k] of a table with [n] rows holds rows [k*n/N .. (k+1)*n/N) —
    the same contiguous carving the parallel executor's morsel ranges use —
    re-materialized into the node's own catalog, so each node has a private
    {!Memsim.Hierarchy.t}, arena, and (when durable) WAL + snapshot in a
    private {!Durability.Faultio} env.  The coordinator keeps a separate
    env holding only the 2PC decision log. *)

type node = {
  id : int;
  cat : Storage.Catalog.t;
  hier : Memsim.Hierarchy.t;
  env : Durability.Faultio.t;
  mutable wal : Durability.Wal.writer option;
      (** open writer when the cluster is durable *)
  mutable down : bool;
}

type t

val decision_store : string
(** Name of the coordinator's decision-log store inside its env. *)

val shard_range : shards:int -> shard:int -> int -> (int * int)
(** [(offset, length)] of a shard's slice of an [n]-row table. *)

val create :
  ?durable:bool ->
  ?net_params:Netsim.params ->
  ?envs:Durability.Faultio.t array ->
  ?coord_env:Durability.Faultio.t ->
  shards:int ->
  Storage.Catalog.t ->
  t
(** Scatter [cat] over [shards] nodes.  [durable] (default false) writes a
    per-node snapshot and opens a per-node WAL; [envs] / [coord_env]
    default to in-memory envs (pass {!Durability.Faultio.in_dir} envs for
    crash tests).  Scatter runs untraced — only query execution touches the
    simulated hierarchies. *)

val shards : t -> int
val nodes : t -> node array

val node : t -> int -> node
(** @raise Mrdb_util.Errors.Shard_unavailable if the node is marked down.
    @raise Invalid_argument on an out-of-range id. *)

val net : t -> Netsim.t
val durable : t -> bool
val coord_env : t -> Durability.Faultio.t
val coord_sink : t -> Durability.Faultio.sink option

val set_down : t -> int -> bool -> unit
(** Mark a node down/up (fault injection for {!Mrdb_util.Errors.Shard_unavailable} paths). *)

val fresh_txid : t -> int
(** Next cluster-wide transaction id (monotonic from 1). *)

val seen_txid : t -> int -> unit
(** Bump the txid allocator past an id observed during recovery. *)

val temp_name : t -> string
(** A fresh ["#tmpN"] name for exchange spill tables; ['#']-prefixed names
    never collide with user tables and are excluded from {!table_names}. *)

val table_names : t -> string list
(** Names of the scattered (non-temporary) relations, in catalog order. *)

val table_rows : t -> string -> Storage.Value.t array list
(** All rows of a table, shard 0's slice first — the union a single-node
    oracle is compared against.  Reads untraced. *)

val digests : t -> string list
(** Per-node {!Durability.Snapshot.digest}s of current contents, in shard
    order — the cross-check that recovery reconverges every node. *)

val close : t -> unit
(** Close per-node WAL writers and the coordinator sink. *)
