(* Inter-shard exchange messages: one message per line, reusing the percent
   escaping and tagged value codec of the server's [Txn.Wire] protocol —
   there is deliberately no second ad-hoc codec.  Rows are space-separated
   fields of [Wire.encode_values] (whose output never contains a space);
   2PC control messages are plain tagged lines; transaction operations ride
   as [Wal.encode]d records (the binary codec recovery already speaks),
   percent-escaped into one field.

     ROWS r1 r2 ...          (ri = v1|v2|..., "~" for a zero-column row)
     PREPARE txid shard op1 op2 ...
     VOTE txid shard commit|abort
     DECIDE txid commit|abort
     ACK txid shard *)

module Wire = Txn.Wire
module Wal = Durability.Wal

type msg =
  | Rows of Storage.Value.t array list
  | Prepare of { txid : int; shard : int; ops : Wal.op list }
  | Vote of { txid : int; shard : int; commit : bool }
  | Decide of { txid : int; commit : bool }
  | Ack of { txid : int; shard : int }

(* A zero-column row would encode as the empty field, which space-splitting
   cannot carry; "~" is safe as a marker because every non-empty value
   encoding is at least two characters ("i:..") or the literal "null". *)
let encode_row row =
  if Array.length row = 0 then "~" else Wire.encode_values row

let decode_row s =
  if s = "~" then [||] else Wire.decode_values s

let verdict b = if b then "commit" else "abort"

let parse_verdict = function
  | "commit" -> true
  | "abort" -> false
  | s -> failwith (Printf.sprintf "exchange: bad verdict %S" s)

let encode_op op = Wire.escape (Wal.encode (Wal.Op { txid = 0; op }))

let decode_op s =
  match Wal.decode_string (Wire.unescape s) with
  | Wal.Op { op; _ } -> op
  | _ -> failwith "exchange: PREPARE field is not an operation record"
  | exception _ -> failwith "exchange: undecodable operation field"

let encode = function
  | Rows rows ->
      String.concat " " ("ROWS" :: List.map encode_row rows)
  | Prepare { txid; shard; ops } ->
      String.concat " "
        (Printf.sprintf "PREPARE %d %d" txid shard
        :: List.map encode_op ops)
  | Vote { txid; shard; commit } ->
      Printf.sprintf "VOTE %d %d %s" txid shard (verdict commit)
  | Decide { txid; commit } ->
      Printf.sprintf "DECIDE %d %s" txid (verdict commit)
  | Ack { txid; shard } -> Printf.sprintf "ACK %d %d" txid shard

let int_field what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "exchange: bad %s %S" what s)

let parse line =
  match String.split_on_char ' ' (String.trim line) with
  | "ROWS" :: rows -> Rows (List.map decode_row rows)
  | "PREPARE" :: txid :: shard :: ops ->
      Prepare
        {
          txid = int_field "txid" txid;
          shard = int_field "shard" shard;
          ops = List.map decode_op ops;
        }
  | [ "VOTE"; txid; shard; v ] ->
      Vote
        {
          txid = int_field "txid" txid;
          shard = int_field "shard" shard;
          commit = parse_verdict v;
        }
  | [ "DECIDE"; txid; v ] ->
      Decide { txid = int_field "txid" txid; commit = parse_verdict v }
  | [ "ACK"; txid; shard ] ->
      Ack { txid = int_field "txid" txid; shard = int_field "shard" shard }
  | _ -> failwith (Printf.sprintf "exchange: bad message %S" line)

let bytes m = String.length (encode m)

(* Batch size for row shipment: rows per ROWS message.  Large enough that
   the per-message latency atom amortizes, small enough that a shard
   overlaps compute with transfer. *)
let batch_rows = 256

(* Account a row stream from [src] to [dst]: the payload bytes of the ROWS
   messages it takes, one message per [batch_rows] (at least one, so an
   empty result still costs its latency).  Only the byte count is needed,
   so rows are sized without materializing the batch strings. *)
let send_rows net ~src ~dst rows =
  if src <> dst then begin
    let header = String.length "ROWS" in
    let count = ref 0 and len = ref header and sent = ref false in
    let flush () =
      Netsim.send net ~src ~dst ~bytes:!len;
      sent := true;
      count := 0;
      len := header
    in
    List.iter
      (fun r ->
        incr count;
        len := !len + 1 + String.length (encode_row r);
        if !count = batch_rows then flush ())
      rows;
    if !count > 0 || not !sent then flush ()
  end
