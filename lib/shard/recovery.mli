(** Sharded crash recovery: per-node snapshot + WAL replay with in-doubt
    transactions settled against the coordinator's decision log (presumed
    abort — only COMMIT decisions are ever logged). *)

val log_decision : Durability.Faultio.sink -> txid:int -> commit:bool -> unit
(** Append one durable decision line (newline-terminated {!Exchange.Decide})
    and flush.  The two-phase commit coordinator calls this exactly once per
    committing transaction, before any participant learns the outcome. *)

val decisions : Durability.Faultio.t -> (int * bool) list
(** Parse the coordinator's durable decision log.  Only complete
    newline-terminated lines count — a torn tail is an un-durable decision
    and reads as absent (hence aborted). *)

val in_doubt_txids : Durability.Faultio.t -> int list
(** Transactions with a durable [Prepare] but no decision in the clean
    prefix of a node's WAL, ascending. *)

type settled = { txid : int; committed : bool }

val recover_node :
  ?hier:Memsim.Hierarchy.t ->
  ?decisions:(int * bool) list ->
  Durability.Faultio.t ->
  Durability.Recover.result * settled list
(** Recover one node: settle its in-doubt transactions against [decisions]
    (appending the outcome to the node's own log so replay applies it),
    then run single-node recovery.

    @raise Mrdb_util.Errors.Txn_indoubt if the node has in-doubt
    transactions and no decision log was supplied (coordinator
    unreachable) — the shard must not guess. *)

type cluster_result = {
  results : Durability.Recover.result array;  (** per shard, in shard order *)
  settled : (int * settled) list;  (** (shard, settlement) for in-doubt txns *)
}

val recover_cluster :
  ?hier:Memsim.Hierarchy.t ->
  Durability.Faultio.t array ->
  Durability.Faultio.t ->
  cluster_result
(** Recover every shard env against the coordinator env's decision log. *)
