(* Two-phase commit over the per-shard WALs.

   Phase 1 sends each participant its operations (a PREPARE exchange
   message); a durable participant logs Begin / Op* / Prepare and flushes
   before voting — after that flush it may no longer abort unilaterally.
   The coordinator collects votes, makes the decision durable (presumed
   abort: only COMMIT decisions are written, as one decision-log line,
   before any participant learns the outcome), then phase 2 logs the
   outcome on every participant and applies committed operations through
   [Recover.apply_op] — the same replay interpretation crash recovery
   uses, so live commit and post-crash replay cannot disagree.

   Named crash points bracket every protocol step ("2pc.part.pre_prepare",
   "2pc.part.prepared", "2pc.coord.pre_decide", "2pc.coord.decided",
   "2pc.part.pre_resolve"), in addition to the write/flush boundaries the
   logs themselves count; the recovery matrix test enumerates them all. *)

module Faultio = Durability.Faultio
module Wal = Durability.Wal
module Recover = Durability.Recover
module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Schema = Storage.Schema

let op_table = function
  | Wal.Create_relation { table; _ }
  | Wal.Append { table; _ }
  | Wal.Load { table; _ }
  | Wal.Update { table; _ }
  | Wal.Set_layout { table; _ }
  | Wal.Set_physical { table; _ }
  | Wal.Create_index { table; _ } -> table

(* Apply a committed transaction's operations to the live node, then
   rebuild indexes of the touched tables (recovery-style: indexes are
   derived data).  Mutation is bookkeeping, not simulated query work, so it
   runs untraced. *)
let apply_ops (node : Cluster.node) ops =
  Memsim.Hierarchy.without_tracing node.hier (fun () ->
      List.iter (Recover.apply_op node.cat) ops;
      List.iter
        (fun table ->
          if Catalog.mem node.cat table
             && Catalog.index_defs node.cat table <> []
          then begin
            let arity = Schema.arity (Relation.schema (Catalog.find node.cat table)) in
            if arity > 0 then
              Catalog.rebuild_indexes_for node.cat table
                ~attrs:(List.init arity Fun.id)
          end)
        (List.sort_uniq compare (List.map op_table ops)))

type outcome = {
  txid : int;
  committed : bool;
  participants : int list;
  votes : (int * bool) list;
}

let execute ?(vote = fun _ -> true) cl shard_ops =
  let shard_ops =
    List.filter (fun (_, ops) -> ops <> []) shard_ops
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let txid = Cluster.fresh_txid cl in
  if shard_ops = [] then
    (* nothing to do anywhere: trivially committed, no durable traffic *)
    { txid; committed = true; participants = []; votes = [] }
  else begin
    let net = Cluster.net cl in
    let durable = Cluster.durable cl in
    (* resolve participants up front: a down shard fails the transaction
       with [Shard_unavailable] before any durable write, keeping it
       trivially atomic *)
    let nodes =
      List.map (fun (s, ops) -> (Cluster.node cl s, ops)) shard_ops
    in
    (* phase 1: prepare *)
    let votes =
      List.map
        (fun ((node : Cluster.node), ops) ->
          Netsim.send net ~src:Netsim.coordinator ~dst:node.id
            ~bytes:
              (Exchange.bytes (Exchange.Prepare { txid; shard = node.id; ops }));
          if durable then begin
            Faultio.point node.env "2pc.part.pre_prepare";
            (match node.wal with
            | Some w ->
                Wal.write w (Wal.Begin txid);
                List.iter (fun op -> Wal.write w (Wal.Op { txid; op })) ops;
                Wal.write w (Wal.Prepare txid);
                Wal.flush w
            | None -> ());
            Faultio.point node.env "2pc.part.prepared"
          end;
          let v = vote node.id in
          Netsim.send net ~src:node.id ~dst:Netsim.coordinator
            ~bytes:
              (Exchange.bytes
                 (Exchange.Vote { txid; shard = node.id; commit = v }));
          (node.id, v))
        nodes
    in
    let commit = List.for_all snd votes in
    (* the decision becomes durable before any participant learns it *)
    if durable then begin
      let coord = Cluster.coord_env cl in
      Faultio.point coord "2pc.coord.pre_decide";
      if commit then (
        match Cluster.coord_sink cl with
        | Some sink -> Recovery.log_decision sink ~txid ~commit:true
        | None -> ());
      Faultio.point coord "2pc.coord.decided"
    end;
    (* phase 2: resolve every participant *)
    List.iter
      (fun ((node : Cluster.node), ops) ->
        Netsim.send net ~src:Netsim.coordinator ~dst:node.id
          ~bytes:(Exchange.bytes (Exchange.Decide { txid; commit }));
        if durable then begin
          Faultio.point node.env "2pc.part.pre_resolve";
          match node.wal with
          | Some w ->
              Wal.write w (if commit then Wal.Commit txid else Wal.Abort txid);
              Wal.flush w
          | None -> ()
        end;
        if commit then apply_ops node ops;
        Netsim.send net ~src:node.id ~dst:Netsim.coordinator
          ~bytes:(Exchange.bytes (Exchange.Ack { txid; shard = node.id })))
      nodes;
    {
      txid;
      committed = commit;
      participants = List.map fst votes;
      votes;
    }
  end
