type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.add (Int64.of_int seed) golden }

let next_state t =
  t.state <- Int64.add t.state golden;
  t.state

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t = { state = int64 t }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits: OCaml's native int is 63-bit, so a 63-bit value would wrap
     to a negative number *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

(* Zipf sampling by inversion on the harmonic CDF.  We avoid caching the
   normalization constant across calls to keep the generator stateless with
   respect to [n]; workload generation is not on the critical path. *)
let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0.0 then int t n
  else begin
    let h = ref 0.0 in
    for i = 1 to n do
      h := !h +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    let target = float t *. !h in
    let acc = ref 0.0 in
    let result = ref (n - 1) in
    (try
       for i = 1 to n do
         acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta);
         if !acc >= target then begin
           result := i - 1;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let string t ~alphabet ~len =
  let k = String.length alphabet in
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (String.unsafe_get alphabet (int t k))
  done;
  Bytes.unsafe_to_string b
