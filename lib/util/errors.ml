(* Typed error taxonomy shared across layers.

   Storage raises these instead of bare [Not_found]-style exceptions so that
   front ends (the CLI in particular) can turn user mistakes into one-line
   diagnostics instead of backtraces.  Internal invariant violations keep
   using [Invalid_argument]/[assert]. *)

exception Unknown_table of string
(** A catalog lookup named a table that does not exist. *)

exception Corrupt_log of string
(** A durability file (WAL or snapshot) failed structural validation beyond
    what recovery can tolerate. *)

let to_diagnostic = function
  | Unknown_table t -> Some (Printf.sprintf "unknown table %S" t)
  | Corrupt_log msg -> Some (Printf.sprintf "corrupt durability file: %s" msg)
  | Invalid_argument msg -> Some msg
  | Failure msg -> Some msg
  | _ -> None
