(* Typed error taxonomy shared across layers.

   Storage raises these instead of bare [Not_found]-style exceptions so that
   front ends (the CLI in particular) can turn user mistakes into one-line
   diagnostics instead of backtraces.  Internal invariant violations keep
   using [Invalid_argument]/[assert].

   The transaction/server members each map to a distinct process exit code
   (see [exit_code_of]) so scripts driving mrdb_cli or mrdb_server can
   distinguish "retry later" (conflict, busy) from "give up" failures
   without parsing diagnostics.  Code 1 stays the generic user-error code
   and 2 belongs to cmdliner usage errors. *)

exception Unknown_table of string
(** A catalog lookup named a table that does not exist. *)

exception Corrupt_log of string
(** A durability file (WAL or snapshot) failed structural validation beyond
    what recovery can tolerate. *)

exception Txn_conflict of string
(** First-committer-wins write-write conflict under snapshot isolation: a
    transaction tried to commit a write to a cell another transaction
    committed after this one's begin timestamp. *)

exception Txn_timeout of string
(** The transaction exceeded its per-transaction deadline and was aborted. *)

exception Server_busy of string
(** The server's admission gate shed this connection or request instead of
    letting the queue collapse. *)

exception Shard_unavailable of string
(** A distributed plan or two-phase commit needed a shard that is marked
    down; the operation was not applied anywhere. *)

exception Txn_indoubt of string
(** Recovery found a prepared transaction whose coordinator decision is
    unreachable: it can neither commit nor abort unilaterally without
    risking cross-shard divergence. *)

let to_diagnostic = function
  | Unknown_table t -> Some (Printf.sprintf "unknown table %S" t)
  | Corrupt_log msg -> Some (Printf.sprintf "corrupt durability file: %s" msg)
  | Txn_conflict msg -> Some (Printf.sprintf "transaction conflict: %s" msg)
  | Txn_timeout msg -> Some (Printf.sprintf "transaction timeout: %s" msg)
  | Server_busy msg -> Some (Printf.sprintf "server busy: %s" msg)
  | Shard_unavailable msg -> Some (Printf.sprintf "shard unavailable: %s" msg)
  | Txn_indoubt msg -> Some (Printf.sprintf "transaction in doubt: %s" msg)
  | Invalid_argument msg -> Some msg
  | Failure msg -> Some msg
  | _ -> None

let exit_code_of = function
  | Unknown_table _ | Corrupt_log _ | Invalid_argument _ | Failure _ -> Some 1
  | Txn_conflict _ -> Some 3
  | Txn_timeout _ -> Some 4
  | Server_busy _ -> Some 5
  | Shard_unavailable _ -> Some 6
  | Txn_indoubt _ -> Some 7
  | _ -> None

(* Wire tags used by the server protocol; one per taxonomy member so a
   client can map ERR replies back to the same exceptions. *)
let wire_tag_of = function
  | Unknown_table _ -> Some "UNKNOWN_TABLE"
  | Corrupt_log _ -> Some "CORRUPT_LOG"
  | Txn_conflict _ -> Some "CONFLICT"
  | Txn_timeout _ -> Some "TIMEOUT"
  | Server_busy _ -> Some "BUSY"
  | Shard_unavailable _ -> Some "SHARD_UNAVAILABLE"
  | Txn_indoubt _ -> Some "TXN_INDOUBT"
  | _ -> None

let of_wire_tag tag msg =
  match tag with
  | "UNKNOWN_TABLE" -> Some (Unknown_table msg)
  | "CORRUPT_LOG" -> Some (Corrupt_log msg)
  | "CONFLICT" -> Some (Txn_conflict msg)
  | "TIMEOUT" -> Some (Txn_timeout msg)
  | "BUSY" -> Some (Server_busy msg)
  | "SHARD_UNAVAILABLE" -> Some (Shard_unavailable msg)
  | "TXN_INDOUBT" -> Some (Txn_indoubt msg)
  | _ -> None
