(** Typed error taxonomy shared across layers. *)

exception Unknown_table of string
(** A catalog lookup named a table that does not exist. *)

exception Corrupt_log of string
(** A durability file (WAL or snapshot) failed structural validation beyond
    what recovery can tolerate. *)

exception Txn_conflict of string
(** First-committer-wins write-write conflict under snapshot isolation. *)

exception Txn_timeout of string
(** The transaction exceeded its per-transaction deadline and was aborted. *)

exception Server_busy of string
(** The server's admission gate shed this connection or request. *)

exception Shard_unavailable of string
(** A distributed plan or two-phase commit needed a shard that is down. *)

exception Txn_indoubt of string
(** Recovery found a prepared transaction whose coordinator decision is
    unreachable — it can neither commit nor abort unilaterally. *)

val to_diagnostic : exn -> string option
(** A one-line human-readable description for user-facing errors;
    [None] for unexpected exceptions (which should keep their backtrace). *)

val exit_code_of : exn -> int option
(** Distinct process exit code per taxonomy member: generic user errors 1,
    [Txn_conflict] 3, [Txn_timeout] 4, [Server_busy] 5,
    [Shard_unavailable] 6, [Txn_indoubt] 7 (2 is cmdliner's).
    [None] for unexpected exceptions. *)

val wire_tag_of : exn -> string option
(** Protocol tag for ERR replies ([CONFLICT], [TIMEOUT], [BUSY], ...). *)

val of_wire_tag : string -> string -> exn option
(** [of_wire_tag tag msg] inverts {!wire_tag_of}, rebuilding the exception a
    server ERR reply stands for. *)
