(** Typed error taxonomy shared across layers. *)

exception Unknown_table of string
(** A catalog lookup named a table that does not exist. *)

exception Corrupt_log of string
(** A durability file (WAL or snapshot) failed structural validation beyond
    what recovery can tolerate. *)

val to_diagnostic : exn -> string option
(** A one-line human-readable description for user-facing errors;
    [None] for unexpected exceptions (which should keep their backtrace). *)
