module Physical = Relalg.Physical
module Catalog = Storage.Catalog
module Engine = Engines.Engine
module Span = Obs.Span
module Stats = Memsim.Stats

let children = function
  | Physical.Scan _ | Physical.Insert _ | Physical.Update _ -> []
  | Physical.Select { child; _ }
  | Physical.Project { child; _ }
  | Physical.Group_by { child; _ }
  | Physical.Sort { child; _ }
  | Physical.Limit { child; _ } ->
      [ child ]
  | Physical.Hash_join { build; probe; _ } -> [ build; probe ]

(* one line of operator detail beyond the label *)
let detail = function
  | Physical.Scan { sel; post; _ } ->
      if post = None then "" else Printf.sprintf "(sel %.3g)" sel
  | Physical.Select { sel; _ } -> Printf.sprintf "(sel %.3g)" sel
  | Physical.Hash_join { match_sel; _ } ->
      Printf.sprintf "(match %.3g)" match_sel
  | Physical.Group_by { n_groups; _ } ->
      Printf.sprintf "(~%.0f groups)" n_groups
  | Physical.Limit { n; _ } -> Printf.sprintf "(%d)" n
  | Physical.Project { exprs; _ } ->
      Printf.sprintf "(%d exprs)" (List.length exprs)
  | _ -> ""

(* preorder walk with span paths matching the engines' id scheme *)
let operators plan =
  let acc = ref [] in
  let rec go path depth plan =
    acc := (path, depth, plan) :: !acc;
    List.iteri (fun i c -> go (Span.child path i) (depth + 1) c) (children plan)
  in
  go (Span.child Span.root_id 0) 0 plan;
  List.rev !acc

let pct f = Printf.sprintf "%+.1f%%" (100. *. f)

let counters_line st =
  Printf.sprintf
    "%d cycles (mem %d, cpu %d); misses: L1 %d, L2 %d, LLC %d seq + %d rand, \
     TLB %d; prefetches %d"
    (Stats.total_cycles st) st.Stats.mem_cycles st.Stats.cpu_cycles
    st.Stats.l1_misses st.Stats.l2_misses st.Stats.llc_seq_misses
    st.Stats.llc_rand_misses st.Stats.tlb_misses st.Stats.prefetches

let render ?(analyze = false) ?(advisor = false) ?(engine = Engine.Jit)
    ?(domains = 1) ?(params = [||]) ?cluster cat plan =
  let buf = Buffer.create 1024 in
  let ops = operators plan in
  let predicted =
    List.map
      (fun (path, _, sub) -> (path, Costmodel.Model.query_cost cat sub))
      ops
  in
  let shard_meas = ref None in
  let measurement =
    if not analyze then None
    else begin
      (match Catalog.hier cat with
      | None ->
          invalid_arg
            "Obs_explain: EXPLAIN ANALYZE requires a simulated catalog"
      | Some _ -> ());
      let session =
        Obs.Profile.start ?hier:(Catalog.hier cat) ~label:"query" ()
      in
      let execute () =
        match cluster with
        | None -> Engine.run_measured ~domains engine cat plan ~params
        | Some cl ->
            let result, m = Shard.Exec.run_measured ~engine ~params ~coord:cat cl plan in
            shard_meas := Some m;
            (result, m.Shard.Exec.stats)
      in
      match execute () with
      | result, st -> Some (result, st, Obs.Profile.stop session)
      | exception e ->
          ignore (Obs.Profile.stop session);
          raise e
    end
  in
  (* per-operator measured cycles only make sense when the session's
     hierarchy saw the work — sharded execution traces into per-node
     hierarchies, so the table stays predicted-only and the footer carries
     the merged shard counters instead *)
  let per_op_measured = analyze && cluster = None in
  let headers =
    [ "path"; "operator"; "est.rows"; "predicted cyc" ]
    @ if per_op_measured then [ "measured cyc"; "rel.err" ] else []
  in
  let tab = Mrdb_util.Texttab.create headers in
  List.iter
    (fun (path, depth, sub) ->
      let pred = List.assoc path predicted in
      let base =
        [
          path;
          Printf.sprintf "%s%s%s"
            (String.make (2 * depth) ' ')
            (Engines.Prof.label sub)
            (match detail sub with "" -> "" | d -> " " ^ d);
          Printf.sprintf "%.0f" (Physical.cardinality cat sub);
          Printf.sprintf "%.3g" pred;
        ]
      in
      let extra =
        match measurement with
        | _ when not per_op_measured -> []
        | None -> []
        | Some (_, _, profile) ->
            let meas =
              float_of_int (Stats.total_cycles (Span.inclusive profile path))
            in
            if meas > 0. then
              [ Printf.sprintf "%.3g" meas; pct ((pred -. meas) /. meas) ]
            else [ "0"; "-" ]
      in
      Mrdb_util.Texttab.row tab (base @ extra))
    ops;
  Buffer.add_string buf (Mrdb_util.Texttab.render tab);
  Buffer.add_char buf '\n';
  (* the compiled access-pattern program *)
  let pattern, descs = Costmodel.Emit.emit cat plan in
  Buffer.add_string buf "access-pattern program:\n  ";
  Buffer.add_string buf (Costmodel.Pattern.to_string pattern);
  Buffer.add_char buf '\n';
  if descs <> [] then begin
    Buffer.add_string buf "access descriptors:\n";
    List.iter
      (fun d ->
        Buffer.add_string buf
          (Format.asprintf "  %a\n" (Costmodel.Emit.pp_desc cat) d))
      descs
  end;
  (* stored physical design of every touched table: partitions with the
     compression scheme chosen per attribute *)
  let tables =
    List.sort_uniq compare
      (List.map (fun d -> d.Costmodel.Emit.table) descs)
  in
  if tables <> [] then begin
    Buffer.add_string buf "storage:\n";
    List.iter
      (fun t ->
        let rel = Catalog.find cat t in
        let schema = Storage.Relation.schema rel in
        let groups = Storage.Layout.to_groups (Storage.Relation.layout rel) in
        List.iteri
          (fun p attrs ->
            let cells =
              List.map
                (fun a ->
                  let name =
                    (Storage.Schema.attr schema a).Storage.Schema.name
                  in
                  match Storage.Relation.encoding rel a with
                  | Storage.Encoding.Plain -> name
                  | e ->
                      Printf.sprintf "%s:%s" name
                        (Format.asprintf "%a" Storage.Encoding.pp e))
                attrs
            in
            Buffer.add_string buf
              (Printf.sprintf "  %s p%d {%s}\n" t p
                 (String.concat "," cells)))
          groups)
      tables
  end;
  (* what the IP layout advisor would do if this query were the whole
     workload: proposed partitioning, projected saving, copy cost, verdict *)
  if advisor then begin
    let recs = Layoutopt.Advisor.recommend cat [ (plan, 1.0) ] in
    if recs <> [] then begin
      Buffer.add_string buf "advisor (IP, this query as the workload):\n";
      List.iter
        (fun (r : Layoutopt.Advisor.recommendation) ->
          let schema =
            Storage.Relation.schema (Catalog.find cat r.Layoutopt.Advisor.table)
          in
          Buffer.add_string buf
            (Printf.sprintf "  %s: %s -> %s\n" r.Layoutopt.Advisor.table
               (Format.asprintf "%a" (Storage.Layout.pp schema)
                  r.Layoutopt.Advisor.current_layout)
               (Format.asprintf "%a" (Storage.Layout.pp schema)
                  r.Layoutopt.Advisor.proposed_layout));
          Buffer.add_string buf
            (Printf.sprintf
               "    est %.3g -> %.3g cycles/query, copy %.3g, net %.3g over \
                horizon: %s\n"
               r.Layoutopt.Advisor.current_cost
               r.Layoutopt.Advisor.proposed_cost r.Layoutopt.Advisor.copy_cost
               r.Layoutopt.Advisor.net_saving
               (if r.Layoutopt.Advisor.profitable then "repartition"
                else "keep")))
        recs
    end
  end;
  (* the distributed strategy with the network cost model's estimates *)
  (match cluster with
  | Some cl -> Buffer.add_string buf (Shard.Exec.describe cl plan)
  | None -> ());
  let total_pred = Costmodel.Model.query_cost cat plan in
  Buffer.add_string buf
    (Printf.sprintf "predicted cost: %.3g cycles\n" total_pred);
  (match measurement with
  | None -> ()
  | Some (result, st, profile) ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "measured (%s%s%s): %s\n" (Engine.name engine)
           (if domains > 1 then Printf.sprintf ", %d domains" domains else "")
           (match cluster with
           | Some cl -> Printf.sprintf ", %d shards" (Shard.Cluster.shards cl)
           | None -> "")
           (counters_line st));
      (match !shard_meas with
      | Some m ->
          Buffer.add_string buf
            (Printf.sprintf
               "#net: %d message(s), %d byte(s), %d cycles; total with \
                interconnect: %d cycles\n"
               m.Shard.Exec.net_messages m.Shard.Exec.net_bytes
               m.Shard.Exec.net_cycles
               (Shard.Exec.total_cycles m))
      | None -> ());
      Buffer.add_string buf
        (Printf.sprintf "rows: %d\n" (List.length result.Engines.Runtime.rows));
      let meas_total = float_of_int (Stats.total_cycles st) in
      if meas_total > 0. then
        Buffer.add_string buf
          (Printf.sprintf "whole-query relative error: %s\n"
             (pct ((total_pred -. meas_total) /. meas_total)));
      if domains > 1 then
        Buffer.add_string buf
          "note: workers execute a rewritten morsel pipeline, so span paths \
           in the\nper-domain profile refer to the worker plan; per-operator \
           rows above are\napproximate under parallel execution.\n";
      Buffer.add_string buf "span profile:\n";
      Buffer.add_string buf (Format.asprintf "%a\n" Span.pp profile));
  Buffer.contents buf
