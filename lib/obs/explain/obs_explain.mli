(** EXPLAIN / EXPLAIN ANALYZE rendering.

    [render] shows, for a physical plan under the catalog's stored
    layouts: the operator tree with per-operator predicted cycles (the
    cost model applied to every subtree), the compiled access-pattern
    program with its access descriptors, and the whole-query estimate.

    With [~analyze:true] the plan is also executed on the chosen engine
    under a profiling session, and the table gains memsim-{e measured}
    per-operator inclusive cycles plus a relative-error column; the
    footer reports the whole-query counters (per-level misses, demand vs
    prefetched) and, for [domains > 1], the per-domain span breakdown.
    Per-operator measured cycles sum the work of all domains; the
    whole-query line keeps the merged critical-path semantics of
    [Engine.run_measured]. *)

val render :
  ?analyze:bool ->
  ?advisor:bool ->
  ?engine:Engines.Engine.kind ->
  ?domains:int ->
  ?params:Storage.Value.t array ->
  ?cluster:Shard.Cluster.t ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  string
(** Defaults: [analyze = false], [advisor = false], [engine = Jit],
    [domains = 1], [params = [||]].  [analyze] on a catalog without a
    simulated hierarchy raises [Invalid_argument].  [advisor] appends the
    layout advisor's view of every touched table — the IP-optimal
    partitioning if this query were the whole workload, with the projected
    saving, copy cost and repartition-or-keep verdict.

    [cluster] appends the distributed strategy section
    ([Shard.Exec.describe]: gather / partial aggregation /
    shuffle-vs-broadcast with the network cost model's estimates); with
    [analyze] the plan executes through the distributed executor instead,
    the footer reports merged per-shard counters plus a [#net] line, and
    the span profile gains a [#net] phase.  Per-operator measured cycles
    are omitted in that mode (the work is traced in per-node
    hierarchies). *)
