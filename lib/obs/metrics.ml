type hist_state = {
  bounds : float array;  (* strictly increasing upper bounds, no +Inf *)
  counts : int array;  (* length = Array.length bounds + 1 (+Inf last) *)
  mutable sum : float;
  mutable count : int;
}

type value =
  | Counter of int Atomic.t
  | Gauge of float ref
  | Histogram of hist_state

type metric = { name : string; help : string; value : value }
type counter = int Atomic.t
type gauge = float ref
type histogram = hist_state

let lock = Mutex.create ()
let registry : metric list ref = ref []  (* reverse registration order *)

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find name = List.find_opt (fun m -> String.equal m.name name) !registry

let wrong_kind name existing =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
       (kind_name existing))

let counter ?(help = "") name =
  with_lock (fun () ->
      match find name with
      | Some { value = Counter c; _ } -> c
      | Some m -> wrong_kind name m.value
      | None ->
          let c = Atomic.make 0 in
          registry := { name; help; value = Counter c } :: !registry;
          c)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

let gauge ?(help = "") name =
  with_lock (fun () ->
      match find name with
      | Some { value = Gauge g; _ } -> g
      | Some m -> wrong_kind name m.value
      | None ->
          let g = ref 0. in
          registry := { name; help; value = Gauge g } :: !registry;
          g)

let set g v = with_lock (fun () -> g := v)
let gauge_value g = !g

let default_buckets =
  (* 1e-6 .. ~16.8s, ×4 steps: covers microsecond timings and small counts *)
  [ 1e-6; 4e-6; 1.6e-5; 6.4e-5; 2.56e-4; 1.024e-3; 4.096e-3; 1.6384e-2;
    6.5536e-2; 0.262144; 1.048576; 4.194304; 16.777216 ]

let histogram ?(help = "") ?(buckets = default_buckets) name =
  with_lock (fun () ->
      match find name with
      | Some { value = Histogram h; _ } -> h
      | Some m -> wrong_kind name m.value
      | None ->
          let bounds = Array.of_list (List.sort_uniq compare buckets) in
          let h =
            {
              bounds;
              counts = Array.make (Array.length bounds + 1) 0;
              sum = 0.;
              count = 0;
            }
          in
          registry := { name; help; value = Histogram h } :: !registry;
          h)

let observe h v =
  with_lock (fun () ->
      let i = ref 0 in
      while !i < Array.length h.bounds && v > h.bounds.(!i) do
        Stdlib.incr i
      done;
      h.counts.(!i) <- h.counts.(!i) + 1;
      h.sum <- h.sum +. v;
      h.count <- h.count + 1)

(* Prometheus-style quantile estimate: find the bucket holding the rank
   and interpolate linearly inside it.  The open +Inf bucket extrapolates
   one more exponential step past the last finite bound. *)
let percentile h p =
  with_lock (fun () ->
      if h.count = 0 then 0.0
      else begin
        let rank = p /. 100.0 *. float_of_int h.count in
        let nb = Array.length h.bounds in
        let acc = ref 0.0 in
        let res = ref None in
        Array.iteri
          (fun i c ->
            if !res = None then begin
              let next = !acc +. float_of_int c in
              if next >= rank && c > 0 then begin
                let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
                let hi =
                  if i < nb then h.bounds.(i)
                  else if nb = 0 then 0.0
                  else h.bounds.(nb - 1) *. 4.0
                in
                let frac = (rank -. !acc) /. float_of_int c in
                res := Some (lo +. (frac *. (hi -. lo)))
              end;
              acc := next
            end)
          h.counts;
        match !res with
        | Some v -> v
        | None -> if nb = 0 then 0.0 else h.bounds.(nb - 1)
      end)

let histogram_count h = with_lock (fun () -> h.count)

let metrics_in_order () = with_lock (fun () -> List.rev !registry)

let to_prometheus () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun m ->
      if m.help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.name m.help);
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" m.name (kind_name m.value));
      (match m.value with
      | Counter c ->
          Buffer.add_string buf (Printf.sprintf "%s %d\n" m.name (Atomic.get c))
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "%s %g\n" m.name !g)
      | Histogram h ->
          let cumulative = ref 0 in
          Array.iteri
            (fun i bound ->
              cumulative := !cumulative + h.counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" m.name bound
                   !cumulative))
            h.bounds;
          cumulative := !cumulative + h.counts.(Array.length h.bounds);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m.name !cumulative);
          Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" m.name h.sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" m.name h.count)))
    (metrics_in_order ());
  Buffer.contents buf

let to_json () =
  let metric_json m =
    let base =
      [
        ("name", Json.Str m.name);
        ("type", Json.Str (kind_name m.value));
        ("help", Json.Str m.help);
      ]
    in
    let rest =
      match m.value with
      | Counter c -> [ ("value", Json.Num (float_of_int (Atomic.get c))) ]
      | Gauge g -> [ ("value", Json.Num !g) ]
      | Histogram h ->
          let buckets =
            Array.to_list
              (Array.mapi
                 (fun i bound ->
                   Json.Obj
                     [
                       ("le", Json.Num bound);
                       ("count", Json.Num (float_of_int h.counts.(i)));
                     ])
                 h.bounds)
            @ [
                Json.Obj
                  [
                    ("le", Json.Str "+Inf");
                    ( "count",
                      Json.Num
                        (float_of_int h.counts.(Array.length h.bounds)) );
                  ];
              ]
          in
          [
            ("buckets", Json.Arr buckets);
            ("sum", Json.Num h.sum);
            ("count", Json.Num (float_of_int h.count));
          ]
    in
    Json.Obj (base @ rest)
  in
  Json.Obj
    [ ("metrics", Json.Arr (List.map metric_json (metrics_in_order ()))) ]

let reset_values () =
  with_lock (fun () ->
      List.iter
        (fun m ->
          match m.value with
          | Counter c -> Atomic.set c 0
          | Gauge g -> g := 0.
          | Histogram h ->
              Array.fill h.counts 0 (Array.length h.counts) 0;
              h.sum <- 0.;
              h.count <- 0)
        !registry)
