(** Span data: where a query's simulated cycles and cache misses went.

    A profile is a flat set of nodes keyed by a stable {e span id}; the
    tree shape is encoded in the ids so collection never has to mirror an
    engine's dynamic call structure (push-based engines run a plan
    {e parent} inside a plan {e child}'s dynamic extent):

    - [""] — the query root;
    - ["0"], ["0.1"], ["0.1.0"] — plan operators, by path in the physical
      operator tree (child [i] appends [.i]);
    - ["0.1#build"] — a named execution phase of operator ["0.1"].

    Every node accumulates {e self} counters only — the exact counter
    delta attributed while that span was the innermost open one — so the
    sum of all nodes equals the whole query's counters, and per-operator
    inclusive cost is recovered from the id prefixes.  Parallel runs hang
    one sub-profile per worker domain off the parent profile. *)

type kind = Query | Op | Phase

type node = {
  id : string;
  label : string;
  kind : kind;
  mutable calls : int;
  self : Memsim.Stats.t;  (** exclusive counters *)
}

type profile = {
  label : string;
  nodes : node list;  (** creation order; first node is the root ([""]) *)
  domains : profile list;  (** per-worker-domain sub-profiles *)
}

val root_id : string
(** [""]. *)

val child : string -> int -> string
(** [child "0.1" 0 = "0.1.0"]; [child root_id 0 = "0"]. *)

val phase_id : string -> string -> string
(** [phase_id "0.1" "build" = "0.1#build"]. *)

val parent_id : string -> string option
(** Inverse of {!child}/{!phase_id}; [None] for the root. *)

val under : string -> string -> bool
(** [under prefix id]: [id] is [prefix] or a descendant of it. *)

val find : profile -> string -> node option

val total : profile -> Memsim.Stats.t
(** Sum of every node's self counters (this profile only, not [domains]) —
    equals the whole query's counters for a sequential run. *)

val inclusive : profile -> string -> Memsim.Stats.t
(** Sum of self counters over the subtree rooted at the given id,
    including matching nodes of all domain sub-profiles. *)

val pp : Format.formatter -> profile -> unit
(** Indented tree with per-node cycles and miss counters. *)
