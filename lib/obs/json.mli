(** A small JSON tree with a parser and printer.

    The observability layer needs to read every historical [BENCH_*.json]
    file (the trajectory consolidator) and to round-trip its own metrics
    export without external dependencies, so this is a complete JSON
    implementation of the parts the project emits: objects, arrays,
    strings, numbers, booleans, null.  Numbers are kept as [float]
    (integers print without a fractional part). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} with a position-annotated message. *)

val parse : string -> t
val parse_file : string -> t

val to_string : ?indent:int -> t -> string
(** Render; [indent > 0] pretty-prints with that step (default 2). *)

val write_file : string -> t -> unit
(** Pretty-print to a file, atomically (write temp, rename). *)

val member : string -> t -> t option
(** Object field lookup ([None] on missing field or non-object). *)

val to_num : t -> float option
val to_str : t -> string option

val equal : t -> t -> bool
(** Structural equality; object fields compare order-insensitively,
    numbers bitwise (so round-trips are exact). *)
