(** Process-wide metrics registry: typed counters, gauges and histograms
    with Prometheus-text and JSON export.

    Registration is idempotent — asking for a name that already exists
    returns the existing instrument (so library modules can register at
    first use without coordinating) — but re-registering a name as a
    different instrument type raises.  Counters are lock-free
    ([Atomic]); gauges and histograms take a registry lock, so every
    instrument is safe to touch from parallel worker domains. *)

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?help:string -> ?buckets:float list -> string -> histogram
(** [buckets] are upper bounds (a [+Inf] bucket is always appended);
    default buckets are exponential from 1e-6 to ~16s, suiting both
    second-scale timings and unit counts. *)

val observe : histogram -> float -> unit

val percentile : histogram -> float -> float
(** [percentile h p] estimates the [p]-th percentile ([0..100]) from the
    bucket counts, Prometheus-style: linear interpolation inside the
    bucket that holds the rank.  0 for an empty histogram. *)

val histogram_count : histogram -> int

val to_prometheus : unit -> string
(** Prometheus text exposition format, metrics in registration order. *)

val to_json : unit -> Json.t
(** [{ "metrics": [ {name; type; help; ...} ] }] — same data as
    {!to_prometheus}; parses back with {!Json.parse} losslessly. *)

val reset_values : unit -> unit
(** Zero every registered instrument (registry membership unchanged).
    For tests and for per-run exports from long-lived processes. *)
