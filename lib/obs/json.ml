type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.equal (String.sub st.src st.pos n) word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                (* UTF-8 encode the code point (no surrogate pairing: the
                   project never emits astral characters) *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail st (Printf.sprintf "bad escape \\%c" c));
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    advance st
  done;
  if st.pos = start then fail st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (key, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields_loop ()
          | Some '}' -> advance st
          | _ -> fail st "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items_loop ()
          | Some ']' -> advance st
          | _ -> fail st "expected ',' or ']'"
        in
        items_loop ();
        Arr (List.rev !items)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing garbage";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (depth * indent) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> Buffer.add_string buf (escape_string s)
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) v)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf (if indent > 0 then ": " else ":");
            go (depth + 1) v)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let write_file path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n');
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Str x, Str y -> String.equal x y
  | Arr xs, Arr ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      let sort l = List.sort (fun (a, _) (b, _) -> compare a b) l in
      let xs = sort xs and ys = sort ys in
      List.length xs = List.length ys
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
           xs ys
  | _ -> false
