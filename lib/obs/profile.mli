(** Ambient span collection — the write side of {!Span}.

    A profiling {e session} is installed per domain (OCaml 5 domain-local
    state); the execution engines bracket operator work with {!op} and
    {!phase}, which attribute the hierarchy-counter delta since the last
    bracket boundary to the innermost open span ({e self-time}
    accounting).  With no session installed every bracket is a single
    domain-local load and a branch, and the simulated counters are
    untouched either way — profiling never perturbs a measurement, it
    only reads it.

    Sessions nest per domain: {!start} saves the currently installed
    session and {!stop} restores it, which is how the morsel-parallel
    executor gives every worker domain (including the one the query
    arrived on) its own sub-profile against its private hierarchy. *)

type session

val on : unit -> bool
(** A session is installed on the calling domain. *)

val start :
  ?hier:Memsim.Hierarchy.t -> ?label:string -> unit -> session
(** Install a fresh session.  [hier] is the hierarchy whose counters are
    attributed; without it spans only count calls. *)

val stop : session -> Span.profile
(** Flush, uninstall (restoring the previously installed session), and
    return the collected profile. *)

val profiled :
  ?hier:Memsim.Hierarchy.t ->
  ?label:string ->
  (unit -> 'a) ->
  'a * Span.profile
(** [start] / run / [stop], exception-safe. *)

val resync : unit -> unit
(** Re-base the session's counter mark on the hierarchy's current
    counters without attributing the delta anywhere.  Called by the
    engines right after they reset counters for a measured run, so a
    session started before [run_measured] doesn't see a negative delta. *)

val op : id:string -> label:string -> (unit -> 'a) -> 'a
(** Bracket one plan operator's work; [id] is the {!Span} path id.
    Re-entrant and exception-safe; repeated calls with the same id
    accumulate into one node. *)

val phase : string -> (unit -> 'a) -> 'a
(** Bracket a named execution phase of the innermost open span
    (["build"], ["probe"], ["sort"], ...). *)

val phase_at : id:string -> string -> (unit -> 'a) -> 'a
(** Like {!phase} but naming the owning span explicitly.  Push-based
    engines need this: an operator's per-row work runs inside its plan
    {e child}'s dynamic extent, so the innermost open span is not the
    operator the phase belongs to. *)

val add_domains : Span.profile list -> unit
(** Attach finished per-worker-domain profiles to the calling domain's
    session (no-op without one). *)
