module Stats = Memsim.Stats

type session = {
  hier : Memsim.Hierarchy.t option;
  label : string;
  tbl : (string, Span.node) Hashtbl.t;
  mutable rev_nodes : Span.node list;
  mutable stack : Span.node list;  (* innermost first; bottom is the root *)
  mark : Stats.t;  (* hierarchy counters at the last attribution point *)
  mutable domains : Span.profile list;
  prev : session option;
}

let key : session option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current () = Domain.DLS.get key
let on () = Option.is_some (current ())

let blit (src : Stats.t) (dst : Stats.t) =
  dst.accesses <- src.accesses;
  dst.reads <- src.reads;
  dst.writes <- src.writes;
  dst.l1_misses <- src.l1_misses;
  dst.l2_misses <- src.l2_misses;
  dst.llc_accesses <- src.llc_accesses;
  dst.llc_seq_misses <- src.llc_seq_misses;
  dst.llc_rand_misses <- src.llc_rand_misses;
  dst.tlb_misses <- src.tlb_misses;
  dst.prefetches <- src.prefetches;
  dst.mem_cycles <- src.mem_cycles;
  dst.cpu_cycles <- src.cpu_cycles

(* Attribute the counter delta since [s.mark] to the innermost open span
   and re-base the mark.  Called at every span boundary, so each node
   ends up with exactly its self-time. *)
let flush s =
  match s.hier with
  | None -> ()
  | Some h ->
      let live = Memsim.Hierarchy.stats h in
      (match s.stack with
      | top :: _ -> Stats.add top.Span.self (Stats.diff live s.mark)
      | [] -> ());
      blit live s.mark

let node_for s ~id ~label ~kind =
  match Hashtbl.find_opt s.tbl id with
  | Some n -> n
  | None ->
      let n = { Span.id; label; kind; calls = 0; self = Stats.create () } in
      Hashtbl.add s.tbl id n;
      s.rev_nodes <- n :: s.rev_nodes;
      n

let enter s n =
  flush s;
  n.Span.calls <- n.Span.calls + 1;
  s.stack <- n :: s.stack

let exit_top s =
  flush s;
  match s.stack with _ :: rest -> s.stack <- rest | [] -> ()

let start ?hier ?(label = "query") () =
  let s =
    {
      hier;
      label;
      tbl = Hashtbl.create 32;
      rev_nodes = [];
      stack = [];
      mark = Stats.create ();
      domains = [];
      prev = current ();
    }
  in
  let root = node_for s ~id:Span.root_id ~label ~kind:Span.Query in
  root.Span.calls <- 1;
  s.stack <- [ root ];
  (match hier with
  | Some h -> blit (Memsim.Hierarchy.stats h) s.mark
  | None -> ());
  Domain.DLS.set key (Some s);
  s

let stop s =
  flush s;
  Domain.DLS.set key s.prev;
  { Span.label = s.label; nodes = List.rev s.rev_nodes; domains = s.domains }

let profiled ?hier ?label f =
  let s = start ?hier ?label () in
  match f () with
  | v -> (v, stop s)
  | exception e ->
      ignore (stop s);
      raise e

let resync () =
  match current () with
  | Some ({ hier = Some h; _ } as s) -> blit (Memsim.Hierarchy.stats h) s.mark
  | _ -> ()

let op ~id ~label f =
  match current () with
  | None -> f ()
  | Some s ->
      let n = node_for s ~id ~label ~kind:Span.Op in
      enter s n;
      Fun.protect ~finally:(fun () -> exit_top s) f

let phase name f =
  match current () with
  | None -> f ()
  | Some s ->
      let parent =
        match s.stack with n :: _ -> n.Span.id | [] -> Span.root_id
      in
      let n =
        node_for s ~id:(Span.phase_id parent name) ~label:name ~kind:Span.Phase
      in
      enter s n;
      Fun.protect ~finally:(fun () -> exit_top s) f

let phase_at ~id name f =
  match current () with
  | None -> f ()
  | Some s ->
      let n =
        node_for s ~id:(Span.phase_id id name) ~label:name ~kind:Span.Phase
      in
      enter s n;
      Fun.protect ~finally:(fun () -> exit_top s) f

let add_domains ps =
  match current () with
  | None -> ()
  | Some s -> s.domains <- s.domains @ ps
