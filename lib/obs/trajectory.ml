type point = { bench : string; metric : string; value : float; unit_ : string }
type run = { schema_version : int; commit : string; points : point list }

let schema_version = 1

let point ~bench ~metric ?(unit_ = "") value = { bench; metric; value; unit_ }

let make_run ?(commit = "") points = { schema_version; commit; points }

let point_to_json p =
  Json.Obj
    [
      ("bench", Json.Str p.bench);
      ("metric", Json.Str p.metric);
      ("value", Json.Num p.value);
      ("unit", Json.Str p.unit_);
    ]

let to_json r =
  Json.Obj
    [
      ("schema_version", Json.Num (float_of_int r.schema_version));
      ("commit", Json.Str r.commit);
      ("points", Json.Arr (List.map point_to_json r.points));
    ]

let get_str ?(default = "") key j =
  match Option.bind (Json.member key j) Json.to_str with
  | Some s -> s
  | None -> default

let point_of_json j =
  match Option.bind (Json.member "value" j) Json.to_num with
  | None -> failwith "Obs.Trajectory: point without numeric value"
  | Some value ->
      {
        bench = get_str "bench" j;
        metric = get_str "metric" j;
        value;
        unit_ = get_str "unit" j;
      }

let of_json j =
  match (Json.member "schema_version" j, Json.member "points" j) with
  | Some (Json.Num v), Some (Json.Arr pts) ->
      {
        schema_version = int_of_float v;
        commit = get_str "commit" j;
        points = List.map point_of_json pts;
      }
  | _ -> failwith "Obs.Trajectory: not a trajectory run"

let save path r = Json.write_file path (to_json r)
let load path = of_json (Json.parse_file path)

let is_trajectory j =
  match (Json.member "schema_version" j, Json.member "points" j) with
  | Some (Json.Num _), Some (Json.Arr _) -> true
  | _ -> false

let normalize_legacy ~bench j =
  if is_trajectory j then
    List.map
      (fun p -> if String.equal p.bench "" then { p with bench } else p)
      (of_json j).points
  else
    let points = ref [] in
    let emit path value unit_ =
      points := { bench; metric = path; value; unit_ } :: !points
    in
    let join prefix key =
      if String.equal prefix "" then key else prefix ^ "." ^ key
    in
    let rec walk prefix = function
      | Json.Num v -> emit prefix v ""
      | Json.Bool b -> emit prefix (if b then 1. else 0.) "bool"
      | Json.Obj fields ->
          List.iter (fun (k, v) -> walk (join prefix k) v) fields
      | Json.Arr items ->
          List.iteri (fun i v -> walk (join prefix (string_of_int i)) v) items
      | Json.Str _ | Json.Null -> ()
    in
    walk "" j;
    List.rev !points

(* ------------------------------------------------------------------ *)
(* Diffing                                                             *)
(* ------------------------------------------------------------------ *)

type delta = {
  key : string;
  before : float option;
  after : float option;
  ratio : float option;
}

let key_of p = p.bench ^ "/" ^ p.metric

let index r =
  let tbl = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace tbl (key_of p) p) r.points;
  tbl

let diff ~baseline after =
  let b = index baseline and a = index after in
  let keys = Hashtbl.create 64 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) b;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) a;
  Hashtbl.fold
    (fun k () acc ->
      let before = Option.map (fun p -> p.value) (Hashtbl.find_opt b k) in
      let after = Option.map (fun p -> p.value) (Hashtbl.find_opt a k) in
      let ratio =
        match (before, after) with
        | Some x, Some y when x <> 0. -> Some (y /. x)
        | _ -> None
      in
      { key = k; before; after; ratio } :: acc)
    keys []
  |> List.sort (fun d1 d2 -> String.compare d1.key d2.key)

(* ------------------------------------------------------------------ *)
(* Gates                                                               *)
(* ------------------------------------------------------------------ *)

type direction = Up_is_bad | Down_is_bad

type gate = {
  pattern : string;
  direction : direction;
  max_regress : float option;
  max_value : float option;
  min_value : float option;
}

type violation = { gate : gate; point : point; reason : string }

(* '*' matches any substring (including '/'); no other metacharacters. *)
let glob_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pattern.[pi] with
      | '*' ->
          let rec try_from k = k <= ns && (go (pi + 1) k || try_from (k + 1)) in
          try_from si
      | c -> si < ns && Char.equal s.[si] c && go (pi + 1) (si + 1)
  in
  go 0 0

let gates_of_json j =
  let gate_of j =
    {
      pattern = get_str "pattern" j;
      direction =
        (match get_str ~default:"up_is_bad" "direction" j with
        | "down_is_bad" -> Down_is_bad
        | _ -> Up_is_bad);
      max_regress = Option.bind (Json.member "max_regress" j) Json.to_num;
      max_value = Option.bind (Json.member "max_value" j) Json.to_num;
      min_value = Option.bind (Json.member "min_value" j) Json.to_num;
    }
  in
  match Json.member "gates" j with
  | Some (Json.Arr gs) -> List.map gate_of gs
  | _ -> failwith "Obs.Trajectory: gates file lacks a \"gates\" array"

let check ~gates ?baseline run =
  let base_tbl = Option.map index baseline in
  let violations = ref [] in
  let blame gate point reason = violations := { gate; point; reason } :: !violations in
  List.iter
    (fun p ->
      let k = key_of p in
      List.iter
        (fun g ->
          if glob_match ~pattern:g.pattern k then begin
            (match g.max_value with
            | Some m when p.value > m ->
                blame g p
                  (Printf.sprintf "value %g exceeds max_value %g" p.value m)
            | _ -> ());
            (match g.min_value with
            | Some m when p.value < m ->
                blame g p
                  (Printf.sprintf "value %g below min_value %g" p.value m)
            | _ -> ());
            match (g.max_regress, base_tbl) with
            | Some allowed, Some tbl -> (
                match Hashtbl.find_opt tbl k with
                | Some bp when bp.value <> 0. ->
                    let drift =
                      match g.direction with
                      | Up_is_bad -> (p.value -. bp.value) /. Float.abs bp.value
                      | Down_is_bad ->
                          (bp.value -. p.value) /. Float.abs bp.value
                    in
                    if drift > allowed then
                      blame g p
                        (Printf.sprintf
                           "regressed %.1f%% vs baseline %g (allowed %.1f%%)"
                           (100. *. drift) bp.value (100. *. allowed))
                | _ -> ())
            | _ -> ()
          end)
        gates)
    run.points;
  List.rev !violations
