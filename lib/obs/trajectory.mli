(** The normalized benchmark-trajectory schema.

    Every bench run — old hand-rolled [BENCH_*.json] files included —
    normalizes into one flat shape: a list of points
    [(bench, metric, value, unit)] plus run-level provenance
    ([schema_version], [commit]).  That single schema is what
    [bench/report.exe] consolidates, diffs between runs, and gates in CI.

    Legacy files are absorbed by flattening every numeric leaf into a
    dotted metric path (["variants.0.cycles"]); booleans flatten to 0/1
    with unit ["bool"], which is how identity checks like the tracefast
    bench's [counters_identical] become gateable metrics. *)

type point = {
  bench : string;
  metric : string;
  value : float;
  unit_ : string;  (** "" when unknown *)
}

type run = {
  schema_version : int;
  commit : string;  (** "" when unknown *)
  points : point list;
}

val schema_version : int

val point : bench:string -> metric:string -> ?unit_:string -> float -> point
val make_run : ?commit:string -> point list -> run

val to_json : run -> Json.t
val of_json : Json.t -> run
(** Raises [Failure] on shape mismatch. *)

val save : string -> run -> unit
val load : string -> run

val normalize_legacy : bench:string -> Json.t -> point list
(** Flatten a legacy bench file into points (see module doc).  A file
    already in trajectory shape contributes its points unchanged,
    re-labelled under [bench] only if their bench field is empty. *)

(** {1 Diffing} *)

type delta = {
  key : string;  (** ["bench/metric"] *)
  before : float option;
  after : float option;
  ratio : float option;  (** [after /. before] when both exist and before <> 0 *)
}

val diff : baseline:run -> run -> delta list
(** One delta per key present in either run, sorted by key. *)

(** {1 Regression gates} *)

type direction = Up_is_bad | Down_is_bad

type gate = {
  pattern : string;  (** glob over ["bench/metric"]; [*] matches any run *)
  direction : direction;
  max_regress : float option;
      (** allowed relative drift vs baseline, e.g. [0.10] = 10% *)
  max_value : float option;
  min_value : float option;
}

type violation = { gate : gate; point : point; reason : string }

val glob_match : pattern:string -> string -> bool
val gates_of_json : Json.t -> gate list
(** [{ "gates": [ {pattern; direction?; max_regress?; max_value?;
    min_value?} ] }]; [direction] is ["up_is_bad"] (default) or
    ["down_is_bad"]. *)

val check : gates:gate list -> ?baseline:run -> run -> violation list
