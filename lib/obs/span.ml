module Stats = Memsim.Stats

type kind = Query | Op | Phase

type node = {
  id : string;
  label : string;
  kind : kind;
  mutable calls : int;
  self : Stats.t;
}

type profile = { label : string; nodes : node list; domains : profile list }

let root_id = ""

let child path i =
  if String.equal path root_id then string_of_int i
  else Printf.sprintf "%s.%d" path i

let phase_id path name = Printf.sprintf "%s#%s" path name

let parent_id id =
  if String.equal id root_id then None
  else
    let cut = ref (-1) in
    String.iteri (fun i c -> if c = '.' || c = '#' then cut := i) id;
    if !cut < 0 then Some root_id else Some (String.sub id 0 !cut)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let under prefix id =
  if String.equal prefix root_id then true
  else
    String.equal prefix id
    || starts_with ~prefix:(prefix ^ ".") id
    || starts_with ~prefix:(prefix ^ "#") id

let find p id = List.find_opt (fun n -> String.equal n.id id) p.nodes

let total p =
  let acc = Stats.create () in
  List.iter (fun n -> Stats.add acc n.self) p.nodes;
  acc

let rec inclusive p prefix =
  let acc = Stats.create () in
  List.iter (fun n -> if under prefix n.id then Stats.add acc n.self) p.nodes;
  List.iter (fun d -> Stats.add acc (inclusive d prefix)) p.domains;
  acc

(* depth = number of '.'/'#' separators, i.e. tree level below the root *)
let depth id =
  if String.equal id root_id then 0
  else
    1 + String.fold_left (fun d c -> if c = '.' || c = '#' then d + 1 else d) 0 id

let pp_node ppf n ~level =
  let st = n.self in
  Format.fprintf ppf "%s%-*s %10d cyc (mem %d, cpu %d)  calls %d"
    (String.make (2 * level) ' ')
    (max 1 (28 - (2 * level)))
    (if String.equal n.id root_id then n.label
     else Printf.sprintf "%s %s" n.id n.label)
    (Stats.total_cycles st) st.Stats.mem_cycles st.Stats.cpu_cycles n.calls;
  if st.Stats.l1_misses + st.Stats.llc_seq_misses + st.Stats.llc_rand_misses > 0
  then
    Format.fprintf ppf "  [L1 %d L2 %d LLC %d+%d TLB %d]" st.Stats.l1_misses
      st.Stats.l2_misses st.Stats.llc_seq_misses st.Stats.llc_rand_misses
      st.Stats.tlb_misses

let rec pp ppf p =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i n ->
      if i > 0 then Format.fprintf ppf "@,";
      pp_node ppf n ~level:(depth n.id))
    p.nodes;
  List.iter
    (fun d -> Format.fprintf ppf "@,-- %s --@,%a" d.label pp d)
    p.domains;
  Format.fprintf ppf "@]"
