(** The write-ahead log: length-prefixed, checksummed, transaction-framed
    records for every logical mutation of the catalog.

    Wire format per record: [u32 payload length | u32 CRC-32 | payload].
    Commit is the durability point — the manager flushes on commit, so a
    crash only loses or tears uncommitted records, which recovery discards
    anyway. *)

type op =
  | Create_relation of {
      table : string;
      schema : Storage.Schema.t;
      layout : int list list;
      encodings : (int * Storage.Encoding.t) list;
    }
  | Append of { table : string; values : Storage.Value.t array }
  | Load of { table : string; rows : Storage.Value.t array array }
  | Update of {
      table : string;
      tid : int;
      attr : int;
      value : Storage.Value.t;
    }
  | Set_layout of { table : string; layout : int list list }
  | Set_physical of {
      table : string;
      layout : int list list;
      encodings : (int * Storage.Encoding.t) list;
    }
  | Create_index of {
      table : string;
      iname : string;
      kind : Storage.Index.kind;
      attrs : string list;
    }

type record =
  | Begin of int
  | Commit of int
  | Abort of int
  | Op of { txid : int; op : op }
  | Prepare of int
      (** Two-phase commit vote: the transaction's operations are durable on
          this participant and it may no longer abort unilaterally.
          Single-node recovery treats a prepared-but-undecided transaction
          as aborted (presumed abort); sharded recovery resolves it against
          the coordinator's decision log. *)

val encode : record -> string
(** Payload bytes (unframed). *)

val decode_string : string -> record
(** Inverse of {!encode}. @raise Codec.Truncated on malformed payloads. *)

val store_name : string
(** The {!Faultio} store the log lives in (["wal"]). *)

(** {2 Writer} *)

type writer

val create : Faultio.t -> writer
(** Truncate the log and open it for writing. *)

val append : Faultio.t -> writer
(** Open the existing log for appending. *)

val write : writer -> record -> unit
(** Frame and buffer one record (durable only after {!flush}). *)

val flush : writer -> unit
val close : writer -> unit
val records_written : writer -> int
val bytes_written : writer -> int

(** {2 Scanning} *)

type scanned = {
  records : record list;  (** every decodable record, in log order *)
  clean : int;
      (** number of leading records before the first corruption; replay
          must not commit anything at or beyond this index *)
  clean_bytes : int;
      (** byte length of the clean prefix; a writer that needs appended
          records to be reachable by replay (in-doubt settlement) must
          truncate a torn or corrupt log here before appending *)
  warnings : string list;
}

val scan : Faultio.t -> scanned
(** Read the durable log.  A torn tail ends the scan; a checksum-mismatched
    record is skipped with a warning and taints the remainder (see
    {!scanned.clean}).  Never raises. *)
