(** Binary wire-format helpers shared by the WAL and snapshots.

    Little-endian, length-prefixed.  Readers raise {!Truncated} instead of
    returning partial data, so callers can tell a torn tail apart from
    valid records. *)

exception Truncated of string

(** {2 Writer} *)

type writer

val writer : unit -> writer
val contents : writer -> string

val u8 : writer -> int -> unit
val u32 : writer -> int -> unit
val i64 : writer -> int -> unit
val f64 : writer -> float -> unit
val str : writer -> string -> unit
val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val value : writer -> Storage.Value.t -> unit
val ty : writer -> Storage.Value.ty -> unit
val schema : writer -> Storage.Schema.t -> unit
val layout_groups : writer -> int list list -> unit
val encoding : writer -> Storage.Encoding.t -> unit
val encodings : writer -> (int * Storage.Encoding.t) list -> unit
val index_kind : writer -> Storage.Index.kind -> unit

(** {2 Reader} *)

type reader

val reader : ?pos:int -> ?len:int -> Bytes.t -> reader
val remaining : reader -> int
val at_end : reader -> bool

val ru8 : reader -> int
val ru32 : reader -> int
val ri64 : reader -> int
val rf64 : reader -> float
val rstr : reader -> string
val rlist : reader -> (reader -> 'a) -> 'a list
val rvalue : reader -> Storage.Value.t
val rty : reader -> Storage.Value.ty
val rschema : reader -> Storage.Schema.t
val rlayout_groups : reader -> int list list
val rencoding : reader -> Storage.Encoding.t
val rencodings : reader -> (int * Storage.Encoding.t) list
val rindex_kind : reader -> Storage.Index.kind
