(** The durability manager: observes catalog mutations (see
    {!Storage.Catalog.set_observer}) and writes them ahead to the log,
    flushing at commit boundaries.  Operations arriving outside a
    {!Storage.Catalog.in_txn} frame are auto-wrapped in their own committed
    transaction.  Event payload reads run untraced, so enabling durability
    leaves the simulated memory counters untouched. *)

type t

val attach : Faultio.t -> Storage.Catalog.t -> t
(** Start durability for a (possibly non-empty) catalog: seed a snapshot of
    its current state, truncate the WAL, and register the observer. *)

val recover : ?hier:Memsim.Hierarchy.t -> Faultio.t -> Recover.result * t
(** Recover from the env's durable state, then attach to the recovered
    catalog (appending to the surviving log). *)

val checkpoint : t -> unit
(** Snapshot the current state (untraced) and truncate the WAL.  Crash-safe
    at every intermediate point: the snapshot becomes durable only via an
    atomic rename, and its watermark makes replay of a stale log a no-op. *)

val detach : t -> unit
(** Unregister the observer and close the log. *)

val catalog : t -> Storage.Catalog.t
val committed : t -> int
(** Transactions committed (and flushed) since attach/recover. *)

val wal_records : t -> int
val wal_bytes : t -> int
(** Records/bytes written to the current log segment (resets at
    {!checkpoint}). *)
