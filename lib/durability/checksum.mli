(** CRC-32 (IEEE, polynomial 0xEDB88320) checksums for durability records. *)

val bytes : Bytes.t -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes starting at [pos]; the result fits 32 bits. *)

val string : string -> int
