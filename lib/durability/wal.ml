(* The write-ahead log: length-prefixed, checksummed, transaction-framed
   records for every logical mutation of the catalog.

   Wire format per record:

     u32 payload length | u32 CRC-32 of payload | payload

   The payload's first byte tags the record kind; operations carry the txid
   of their enclosing transaction.  Commit is the durability point: the
   manager flushes the sink on commit, so a crash can only lose or tear
   records of uncommitted transactions (which recovery discards anyway).

   Scanning is resilient: a torn tail (short header, impossible length,
   truncated payload at the end of the log) ends the scan; a record whose
   checksum does not match is *skipped with a warning* and taints the rest
   of the log — recovery replays only the clean prefix, because applying
   transactions that follow a hole could observe effects out of order. *)

module Schema = Storage.Schema
module Value = Storage.Value
module Encoding = Storage.Encoding
module Index = Storage.Index

type op =
  | Create_relation of {
      table : string;
      schema : Schema.t;
      layout : int list list;
      encodings : (int * Encoding.t) list;
    }
  | Append of { table : string; values : Value.t array }
  | Load of { table : string; rows : Value.t array array }
  | Update of { table : string; tid : int; attr : int; value : Value.t }
  | Set_layout of { table : string; layout : int list list }
  | Set_physical of {
      table : string;
      layout : int list list;
      encodings : (int * Encoding.t) list;
    }
  | Create_index of {
      table : string;
      iname : string;
      kind : Index.kind;
      attrs : string list;
    }

type record =
  | Begin of int
  | Commit of int
  | Abort of int
  | Op of { txid : int; op : op }
  | Prepare of int
      (** Two-phase commit vote: the transaction's operations are durable on
          this participant and it may no longer abort unilaterally. *)

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let encode_op w = function
  | Create_relation { table; schema; layout; encodings } ->
      Codec.u8 w 1;
      Codec.str w table;
      Codec.schema w schema;
      Codec.layout_groups w layout;
      Codec.encodings w encodings
  | Append { table; values } ->
      Codec.u8 w 2;
      Codec.str w table;
      Codec.array w Codec.value values
  | Load { table; rows } ->
      Codec.u8 w 3;
      Codec.str w table;
      Codec.array w (fun w row -> Codec.array w Codec.value row) rows
  | Update { table; tid; attr; value } ->
      Codec.u8 w 4;
      Codec.str w table;
      Codec.i64 w tid;
      Codec.u32 w attr;
      Codec.value w value
  | Set_layout { table; layout } ->
      Codec.u8 w 5;
      Codec.str w table;
      Codec.layout_groups w layout
  | Set_physical { table; layout; encodings } ->
      Codec.u8 w 7;
      Codec.str w table;
      Codec.layout_groups w layout;
      Codec.encodings w encodings
  | Create_index { table; iname; kind; attrs } ->
      Codec.u8 w 6;
      Codec.str w table;
      Codec.str w iname;
      Codec.index_kind w kind;
      Codec.list w Codec.str attrs

let decode_op r =
  match Codec.ru8 r with
  | 1 ->
      let table = Codec.rstr r in
      let schema = Codec.rschema r in
      let layout = Codec.rlayout_groups r in
      let encodings = Codec.rencodings r in
      Create_relation { table; schema; layout; encodings }
  | 2 ->
      let table = Codec.rstr r in
      let values = Array.of_list (Codec.rlist r Codec.rvalue) in
      Append { table; values }
  | 3 ->
      let table = Codec.rstr r in
      let rows =
        Array.of_list
          (Codec.rlist r (fun r -> Array.of_list (Codec.rlist r Codec.rvalue)))
      in
      Load { table; rows }
  | 4 ->
      let table = Codec.rstr r in
      let tid = Codec.ri64 r in
      let attr = Codec.ru32 r in
      let value = Codec.rvalue r in
      Update { table; tid; attr; value }
  | 5 ->
      let table = Codec.rstr r in
      let layout = Codec.rlayout_groups r in
      Set_layout { table; layout }
  | 6 ->
      let table = Codec.rstr r in
      let iname = Codec.rstr r in
      let kind = Codec.rindex_kind r in
      let attrs = Codec.rlist r Codec.rstr in
      Create_index { table; iname; kind; attrs }
  | 7 ->
      let table = Codec.rstr r in
      let layout = Codec.rlayout_groups r in
      let encodings = Codec.rencodings r in
      Set_physical { table; layout; encodings }
  | t -> raise (Codec.Truncated (Printf.sprintf "op: unknown tag %d" t))

let encode record =
  let w = Codec.writer () in
  (match record with
  | Begin txid ->
      Codec.u8 w 1;
      Codec.i64 w txid
  | Commit txid ->
      Codec.u8 w 2;
      Codec.i64 w txid
  | Abort txid ->
      Codec.u8 w 3;
      Codec.i64 w txid
  | Op { txid; op } ->
      Codec.u8 w 4;
      Codec.i64 w txid;
      encode_op w op
  | Prepare txid ->
      Codec.u8 w 5;
      Codec.i64 w txid);
  Codec.contents w

let decode r =
  match Codec.ru8 r with
  | 1 -> Begin (Codec.ri64 r)
  | 2 -> Commit (Codec.ri64 r)
  | 3 -> Abort (Codec.ri64 r)
  | 4 ->
      let txid = Codec.ri64 r in
      let op = decode_op r in
      Op { txid; op }
  | 5 -> Prepare (Codec.ri64 r)
  | t -> raise (Codec.Truncated (Printf.sprintf "record: unknown tag %d" t))

let decode_string s = decode (Codec.reader (Bytes.unsafe_of_string s))

let frame payload =
  let w = Codec.writer () in
  Codec.u32 w (String.length payload);
  Codec.u32 w (Checksum.string payload);
  Codec.contents w ^ payload

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

type writer = {
  sink : Faultio.sink;
  mutable records : int;
  mutable bytes : int;
}

let store_name = "wal"

let m_records =
  Obs.Metrics.counter "mrdb_wal_records_total"
    ~help:"WAL records framed and written"

let m_bytes =
  Obs.Metrics.counter "mrdb_wal_bytes_total"
    ~help:"Framed WAL bytes written (header + payload + checksum)"

let create env = { sink = Faultio.create env store_name; records = 0; bytes = 0 }
let append env = { sink = Faultio.append env store_name; records = 0; bytes = 0 }

let write w record =
  let framed = frame (encode record) in
  w.records <- w.records + 1;
  w.bytes <- w.bytes + String.length framed;
  Obs.Metrics.incr m_records;
  Obs.Metrics.add m_bytes (String.length framed);
  Faultio.write w.sink framed

let flush w = Faultio.flush w.sink
let close w = Faultio.close w.sink

let records_written w = w.records
let bytes_written w = w.bytes

(* ------------------------------------------------------------------ *)
(* Scanning                                                           *)
(* ------------------------------------------------------------------ *)

type scanned = {
  records : record list;  (** every decodable record, in log order *)
  clean : int;
      (** records before the first corruption; replay must not commit
          anything at or beyond this index *)
  clean_bytes : int;
      (** byte length of the clean prefix — appending past this offset is
          unreachable by replay when the log ends in a torn or corrupt
          tail, so writers that settle in-doubt transactions truncate
          here first *)
  warnings : string list;
}

let max_record = 1 lsl 26

let scan env =
  match Faultio.read_all env store_name with
  | None -> { records = []; clean = 0; clean_bytes = 0; warnings = [] }
  | Some buf ->
      let n = Bytes.length buf in
      let records = ref [] in
      let count = ref 0 in
      let clean = ref None in
      let clean_bytes = ref None in
      let warnings = ref [] in
      let warn fmt =
        Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt
      in
      let pos = ref 0 in
      let taint () =
        if !clean = None then begin
          clean := Some !count;
          clean_bytes := Some !pos
        end
      in
      (try
         while !pos < n do
           if n - !pos < 8 then begin
             warn "wal: torn tail (%d trailing bytes discarded)" (n - !pos);
             taint ();
             raise Exit
           end;
           let hdr = Codec.reader ~pos:!pos ~len:8 buf in
           let len = Codec.ru32 hdr in
           let crc = Codec.ru32 hdr in
           if len > max_record || len > n - !pos - 8 then begin
             warn
               "wal: torn tail at byte %d (record claims %d bytes, %d \
                remain)"
               !pos len
               (n - !pos - 8);
             taint ();
             raise Exit
           end;
           if Checksum.bytes buf ~pos:(!pos + 8) ~len <> crc then begin
             warn "wal: checksum mismatch at byte %d — skipping record" !pos;
             taint ()
           end
           else begin
             match decode (Codec.reader ~pos:(!pos + 8) ~len buf) with
             | record ->
                 records := record :: !records;
                 incr count
             | exception Codec.Truncated what ->
                 warn "wal: undecodable record at byte %d (%s) — skipping"
                   !pos what;
                 taint ()
           end;
           pos := !pos + 8 + len
         done
       with Exit -> ());
      {
        records = List.rev !records;
        clean = (match !clean with Some c -> c | None -> !count);
        clean_bytes = (match !clean_bytes with Some b -> b | None -> !pos);
        warnings = List.rev !warnings;
      }
