(* The durability manager: observes catalog mutations and turns them into
   write-ahead-log records, flushed at commit boundaries.

   Transactions come from [Catalog.in_txn]; an operation arriving outside
   one is auto-wrapped in its own Begin/Op/Commit (and flushed), so every
   durable mutation is covered without forcing callers to open
   transactions.  Nested [in_txn] frames fold into the outermost one via a
   depth counter.

   Event payload reads (tuple values for appends and loads) happen under
   [without_tracing], so enabling durability never perturbs the simulated
   memory counters — logging is strictly additive off the hot path.

   A simulated [Faultio.Crash] marks the manager dead: the exception
   propagates to the workload driver and every later notification is
   ignored (the process is "gone"; only durable bytes survive). *)

module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Schema = Storage.Schema

type t = {
  env : Faultio.t;
  cat : Catalog.t;
  mutable w : Wal.writer;
  mutable next_txid : int;
  mutable open_txid : int option;
  mutable depth : int;
  mutable dead : bool;
  mutable committed : int;
}

let untraced t f =
  match Catalog.hier t.cat with
  | Some h -> Memsim.Hierarchy.without_tracing h f
  | None -> f ()

let op_of_event t (ev : Catalog.obs_event) : Wal.op option =
  match ev with
  | Catalog.Obs_begin | Catalog.Obs_commit | Catalog.Obs_abort -> None
  | Catalog.Obs_create_relation { table } ->
      let rel = Catalog.find t.cat table in
      Some
        (Wal.Create_relation
           {
             table;
             schema = Relation.schema rel;
             layout = Layout.to_groups (Relation.layout rel);
             encodings = Relation.encodings rel;
           })
  | Catalog.Obs_append { table; tid } ->
      let rel = Catalog.find t.cat table in
      let values = untraced t (fun () -> Relation.get_tuple rel tid) in
      Some (Wal.Append { table; values })
  | Catalog.Obs_load { table; row_lo; rows } ->
      let rel = Catalog.find t.cat table in
      let rows =
        untraced t (fun () ->
            Array.init rows (fun i -> Relation.get_tuple rel (row_lo + i)))
      in
      Some (Wal.Load { table; rows })
  | Catalog.Obs_update { table; tid; attr; value } ->
      Some (Wal.Update { table; tid; attr; value })
  | Catalog.Obs_set_layout { table; layout } ->
      Some (Wal.Set_layout { table; layout = Layout.to_groups layout })
  | Catalog.Obs_set_physical { table; layout; encodings } ->
      Some
        (Wal.Set_physical
           { table; layout = Layout.to_groups layout; encodings })
  | Catalog.Obs_create_index { table; iname; kind; attrs } ->
      Some (Wal.Create_index { table; iname; kind; attrs })

let fresh_txid t =
  let txid = t.next_txid in
  t.next_txid <- txid + 1;
  txid

let handle t ev =
  match (ev : Catalog.obs_event) with
  | Catalog.Obs_begin ->
      t.depth <- t.depth + 1;
      if t.depth = 1 then begin
        let txid = fresh_txid t in
        t.open_txid <- Some txid;
        Wal.write t.w (Wal.Begin txid)
      end
  | Catalog.Obs_commit ->
      t.depth <- t.depth - 1;
      if t.depth = 0 then begin
        match t.open_txid with
        | None -> ()
        | Some txid ->
            t.open_txid <- None;
            (* named commit-path crash points: before the Commit record
               exists (txn must be discarded by recovery) and after the
               flush (txn must survive).  These are logical boundaries the
               chaos tests pin by name. *)
            Faultio.point t.env "txn.pre_commit";
            Wal.write t.w (Wal.Commit txid);
            Wal.flush t.w;
            t.committed <- t.committed + 1;
            Faultio.point t.env "txn.post_commit"
      end
  | Catalog.Obs_abort ->
      t.depth <- t.depth - 1;
      if t.depth = 0 then begin
        match t.open_txid with
        | None -> ()
        | Some txid ->
            t.open_txid <- None;
            Wal.write t.w (Wal.Abort txid);
            Wal.flush t.w
      end
  | _ -> (
      match op_of_event t ev with
      | None -> ()
      | Some op -> (
          match t.open_txid with
          | Some txid -> Wal.write t.w (Wal.Op { txid; op })
          | None ->
              (* auto-wrap: a mutation outside any transaction frame is its
                 own committed transaction *)
              let txid = fresh_txid t in
              Wal.write t.w (Wal.Begin txid);
              Wal.write t.w (Wal.Op { txid; op });
              Wal.write t.w (Wal.Commit txid);
              Wal.flush t.w;
              t.committed <- t.committed + 1))

let observer t ev =
  if not t.dead then
    try handle t ev
    with Faultio.Crash _ as e ->
      t.dead <- true;
      raise e

let make env cat w ~next_txid =
  let t =
    {
      env;
      cat;
      w;
      next_txid;
      open_txid = None;
      depth = 0;
      dead = false;
      committed = 0;
    }
  in
  Catalog.set_observer cat (observer t);
  t

let attach env cat =
  (* seed a snapshot of the current state so recovery has a base even if
     the process dies before the first checkpoint *)
  Snapshot.write env ~last_txid:0 cat;
  make env cat (Wal.create env) ~next_txid:1

let recover ?hier env =
  let r = Recover.run ?hier env in
  let t = make env r.Recover.cat (Wal.append env) ~next_txid:(r.Recover.last_txid + 1) in
  (r, t)

let checkpoint t =
  untraced t (fun () ->
      Snapshot.write t.env ~last_txid:(t.next_txid - 1) t.cat);
  Wal.close t.w;
  t.w <- Wal.create t.env

let detach t =
  Catalog.clear_observer t.cat;
  Wal.close t.w

let catalog t = t.cat
let committed t = t.committed
let wal_records t = Wal.records_written t.w
let wal_bytes t = Wal.bytes_written t.w
