(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges.
   Every WAL record and snapshot carries one so recovery can tell a torn or
   corrupted tail from valid data. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b ~pos ~len =
  let t = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc := t.((!crc lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
           lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let bytes b ~pos ~len = update 0 b ~pos ~len

let string s = bytes (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
