(** Crash recovery: latest valid snapshot + replay of the WAL's committed
    clean prefix.  Uncommitted transactions and torn tails are discarded;
    a checksum-corrupt record is skipped with a warning and taints the rest
    of the log.  Index contents are rebuilt (they are derived data). *)

type result = {
  cat : Storage.Catalog.t;
  last_txid : int;  (** highest transaction id seen (committed or not) *)
  replayed : int;  (** committed transactions applied from the WAL *)
  warnings : string list;
}

val run : ?hier:Memsim.Hierarchy.t -> Faultio.t -> result
(** Never raises on corrupt or missing durable state — the worst case is an
    empty catalog plus warnings. *)

val apply_op : Storage.Catalog.t -> Wal.op -> unit
(** Apply one logged operation to a live catalog — the single replay
    interpretation of the WAL op vocabulary, shared with the sharded
    two-phase commit path so both sides agree on semantics. *)
