(* Binary wire format helpers shared by the WAL and snapshots.

   Everything is little-endian and length-prefixed; readers raise
   [Truncated] on any attempt to read past the end so callers can
   distinguish a torn tail from valid data. *)

module Value = Storage.Value
module Schema = Storage.Schema
module Encoding = Storage.Encoding
module Index = Storage.Index

exception Truncated of string

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

type writer = Stdlib.Buffer.t

let writer () = Stdlib.Buffer.create 256
let contents (w : writer) = Stdlib.Buffer.contents w

let u8 w v = Stdlib.Buffer.add_char w (Char.chr (v land 0xFF))
let u32 w v = Stdlib.Buffer.add_int32_le w (Int32.of_int v)
let i64 w v = Stdlib.Buffer.add_int64_le w (Int64.of_int v)
let f64 w v = Stdlib.Buffer.add_int64_le w (Int64.bits_of_float v)

let str w s =
  u32 w (String.length s);
  Stdlib.Buffer.add_string w s

let list w f xs =
  u32 w (List.length xs);
  List.iter (f w) xs

let array w f xs =
  u32 w (Array.length xs);
  Array.iter (f w) xs

let value w (v : Value.t) =
  match v with
  | Value.Null -> u8 w 0
  | Value.VInt x ->
      u8 w 1;
      i64 w x
  | Value.VFloat x ->
      u8 w 2;
      f64 w x
  | Value.VBool b ->
      u8 w 3;
      u8 w (if b then 1 else 0)
  | Value.VDate d ->
      u8 w 4;
      i64 w d
  | Value.VStr s ->
      u8 w 5;
      str w s

let ty w (t : Value.ty) =
  match t with
  | Value.Int -> u8 w 0
  | Value.Float -> u8 w 1
  | Value.Bool -> u8 w 2
  | Value.Date -> u8 w 3
  | Value.Varchar n ->
      u8 w 4;
      u32 w n

let schema w (s : Schema.t) =
  str w s.Schema.name;
  u32 w (Schema.arity s);
  for i = 0 to Schema.arity s - 1 do
    let a = Schema.attr s i in
    str w a.Schema.name;
    ty w a.Schema.ty;
    u8 w (if a.Schema.nullable then 1 else 0)
  done

let layout_groups w groups = list w (fun w g -> list w u32 g) groups

let encoding w e = u8 w (Encoding.to_code e)

let encodings w es =
  list w
    (fun w (a, e) ->
      u32 w a;
      encoding w e)
    es

let index_kind w (k : Index.kind) =
  u8 w (match k with Index.Hash -> 0 | Index.Rbtree -> 1)

(* ------------------------------------------------------------------ *)
(* Reader                                                             *)
(* ------------------------------------------------------------------ *)

type reader = { buf : Bytes.t; mutable pos : int; stop : int }

let reader ?(pos = 0) ?len buf =
  let stop = match len with Some l -> pos + l | None -> Bytes.length buf in
  { buf; pos; stop }

let remaining r = r.stop - r.pos
let at_end r = r.pos >= r.stop

let need r n what =
  if r.pos + n > r.stop then
    raise
      (Truncated
         (Printf.sprintf "%s: need %d bytes, %d left" what n (remaining r)))

let ru8 r =
  need r 1 "u8";
  let v = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let ru32 r =
  need r 4 "u32";
  let v = Int32.to_int (Bytes.get_int32_le r.buf r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let ri64 r =
  need r 8 "i64";
  let v = Int64.to_int (Bytes.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let rf64 r =
  need r 8 "f64";
  let v = Int64.float_of_bits (Bytes.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let rstr r =
  let n = ru32 r in
  need r n "string payload";
  let s = Bytes.sub_string r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let rlist r f =
  let n = ru32 r in
  List.init n (fun _ -> f r)

let rvalue r : Value.t =
  match ru8 r with
  | 0 -> Value.Null
  | 1 -> Value.VInt (ri64 r)
  | 2 -> Value.VFloat (rf64 r)
  | 3 -> Value.VBool (ru8 r <> 0)
  | 4 -> Value.VDate (ri64 r)
  | 5 -> Value.VStr (rstr r)
  | t -> raise (Truncated (Printf.sprintf "value: unknown tag %d" t))

let rty r : Value.ty =
  match ru8 r with
  | 0 -> Value.Int
  | 1 -> Value.Float
  | 2 -> Value.Bool
  | 3 -> Value.Date
  | 4 -> Value.Varchar (ru32 r)
  | t -> raise (Truncated (Printf.sprintf "type: unknown tag %d" t))

let rschema r =
  let name = rstr r in
  let arity = ru32 r in
  let attrs =
    List.init arity (fun _ ->
        let aname = rstr r in
        let aty = rty r in
        let nullable = ru8 r <> 0 in
        (aname, aty, nullable))
  in
  Schema.make_nullable name attrs

let rlayout_groups r = rlist r (fun r -> rlist r ru32)

let rencoding r = Encoding.of_code (ru8 r)

let rencodings r =
  rlist r (fun r ->
      let a = ru32 r in
      let e = rencoding r in
      (a, e))

let rindex_kind r : Index.kind =
  match ru8 r with
  | 0 -> Index.Hash
  | 1 -> Index.Rbtree
  | t -> raise (Truncated (Printf.sprintf "index kind: unknown tag %d" t))
