(* Fault-injectable storage for the durability subsystem.

   All WAL and snapshot I/O goes through an [env]: a small set of named byte
   stores backed either by real files (the CLI) or by in-memory buffers (the
   recovery test harness).  Writes are buffered per sink; only [flush] makes
   bytes durable.  A fault plan can simulate a process crash at any
   write/flush/rename boundary — each such boundary is one numbered *crash
   point* — optionally letting a prefix of the un-flushed bytes survive (a
   torn write / partial flush).  Everything is deterministic: the same plan
   over the same workload crashes at the same byte.

   Crash points carry *names* as well as positions: each boundary is the
   k-th occurrence of a stable name like "flush:wal" or "txn.pre_commit".
   Positional [Crash_at] indices shift whenever a new boundary is inserted
   upstream of them; [At_point] pins (name, occurrence) instead, so pinned
   recovery seeds and corpus cases keep replaying the same boundary when
   the commit path grows new points. *)

exception Crash of string
(** The simulated process death.  Whoever drives the workload catches it,
    drops all live state and runs recovery against the env's durable
    contents. *)

type plan =
  | Reliable  (** no faults *)
  | Crash_at of { point : int; torn : float }
      (** die at the [point]-th crash point (1-based); [torn] is the
          fraction of the un-flushed tail that becomes durable anyway
          (0.0 = all buffered bytes lost, 1.0 = the op fully hit the medium
          before the crash). *)
  | At_point of { name : string; nth : int; torn : float }
      (** die at the [nth]-th occurrence (1-based) of the named crash
          point.  Stable under insertion of differently-named points. *)
  | Seeded of { seed : int; mean_period : int }
      (** crash at a pseudo-random boundary roughly every [mean_period]
          crash points, with a pseudo-random torn fraction — deterministic
          for a fixed seed. *)

type store = { mutable data : Bytes.t; mutable len : int }

type backend =
  | Mem of (string, store) Hashtbl.t
  | Dir of (string -> string)

type t = {
  backend : backend;
  mutable plan : plan;
  mutable ops : int;
  counts : (string, int) Hashtbl.t;  (* occurrences passed, per point name *)
  mutable rng : int64;
}

let memory ?(plan = Reliable) () =
  { backend = Mem (Hashtbl.create 4); plan; ops = 0;
    counts = Hashtbl.create 8; rng = 0L }

let files ?(plan = Reliable) ~path () =
  { backend = Dir path; plan; ops = 0; counts = Hashtbl.create 8; rng = 0L }

let in_dir ?plan dir =
  files ?plan ~path:(fun name -> Filename.concat dir name) ()

let set_plan t plan =
  t.plan <- plan;
  t.rng <- (match plan with Seeded { seed; _ } -> Int64.of_int seed | _ -> 0L)

let points t = t.ops

let named_points t =
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) t.counts []
  |> List.sort compare

let reset_points t =
  t.ops <- 0;
  Hashtbl.reset t.counts

(* ------------------------------------------------------------------ *)
(* Durable stores                                                     *)
(* ------------------------------------------------------------------ *)

let mem_store tbl name =
  match Hashtbl.find_opt tbl name with
  | Some s -> s
  | None ->
      let s = { data = Bytes.create 256; len = 0 } in
      Hashtbl.replace tbl name s;
      s

let mem_append s chunk pos n =
  if s.len + n > Bytes.length s.data then begin
    let bigger = Bytes.create (max (s.len + n) (2 * Bytes.length s.data)) in
    Bytes.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  Bytes.blit chunk pos s.data s.len n;
  s.len <- s.len + n

let durable_append t name chunk pos n =
  if n > 0 then
    match t.backend with
    | Mem tbl -> mem_append (mem_store tbl name) chunk pos n
    | Dir path ->
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (path name)
        in
        output_substring oc (Bytes.unsafe_to_string chunk) pos n;
        close_out oc

let durable_truncate t name =
  match t.backend with
  | Mem tbl -> (mem_store tbl name).len <- 0
  | Dir path ->
      let oc = open_out_gen [ Open_trunc; Open_creat; Open_binary ] 0o644 (path name) in
      close_out oc

let durable_rename t ~src ~dst =
  match t.backend with
  | Mem tbl ->
      (match Hashtbl.find_opt tbl src with
      | Some s ->
          Hashtbl.replace tbl dst s;
          Hashtbl.remove tbl src
      | None -> ())
  | Dir path -> if Sys.file_exists (path src) then Sys.rename (path src) (path dst)

let read_all t name =
  match t.backend with
  | Mem tbl -> (
      match Hashtbl.find_opt tbl name with
      | Some s -> Some (Bytes.sub s.data 0 s.len)
      | None -> None)
  | Dir path ->
      let file = path name in
      if Sys.file_exists file then begin
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let b = Bytes.create n in
        really_input ic b 0 n;
        close_in ic;
        Some b
      end
      else None

let exists t name = read_all t name <> None

let delete t name =
  match t.backend with
  | Mem tbl -> Hashtbl.remove tbl name
  | Dir path -> if Sys.file_exists (path name) then Sys.remove (path name)

let durable_size t name =
  match read_all t name with Some b -> Bytes.length b | None -> 0

(* Test helpers modeling read-side faults: bit rot and short reads. *)

let corrupt_byte t name off =
  match t.backend with
  | Mem tbl ->
      let s = mem_store tbl name in
      if off < s.len then
        Bytes.set s.data off
          (Char.chr (Char.code (Bytes.get s.data off) lxor 0xFF))
  | Dir path -> (
      match read_all t name with
      | Some b when off < Bytes.length b ->
          Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
          let oc = open_out_gen [ Open_trunc; Open_binary ] 0o644 (path name) in
          output_bytes oc b;
          close_out oc
      | _ -> ())

let truncate_store t name len =
  match t.backend with
  | Mem tbl ->
      let s = mem_store tbl name in
      s.len <- min s.len (max 0 len)
  | Dir path -> (
      match read_all t name with
      | Some b ->
          let keep = min (Bytes.length b) (max 0 len) in
          let oc = open_out_gen [ Open_trunc; Open_binary ] 0o644 (path name) in
          output_bytes oc (Bytes.sub b 0 keep);
          close_out oc
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Crash points                                                       *)
(* ------------------------------------------------------------------ *)

let splitmix st =
  let z = Int64.add !st 0x9E3779B97F4A7C15L in
  st := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Advance the crash-point counters for one named op; returns [Some torn]
   if the plan says the process dies here. *)
let crash_here t ~name =
  t.ops <- t.ops + 1;
  let occurrence =
    let n = (match Hashtbl.find_opt t.counts name with Some n -> n | None -> 0) + 1 in
    Hashtbl.replace t.counts name n;
    n
  in
  match t.plan with
  | Reliable -> None
  | Crash_at { point; torn } -> if t.ops = point then Some torn else None
  | At_point { name = pname; nth; torn } ->
      if String.equal pname name && occurrence = nth then Some torn else None
  | Seeded { mean_period; _ } ->
      let st = ref t.rng in
      let draw = splitmix st in
      let hit = Int64.rem (Int64.logand draw Int64.max_int)
                  (Int64.of_int (max 1 mean_period)) = 0L in
      let torn =
        float_of_int
          (Int64.to_int (Int64.rem (Int64.logand (splitmix st) Int64.max_int) 3L))
        /. 2.0
      in
      t.rng <- !st;
      if hit then Some torn else None

let torn_bytes torn len =
  let k = int_of_float ((torn *. float_of_int len) +. 0.5) in
  min len (max 0 k)

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)
(* ------------------------------------------------------------------ *)

type sink = {
  env : t;
  name : string;
  pending : Stdlib.Buffer.t;
  mutable dead : bool;
}

let create t name =
  (match crash_here t ~name:("create:" ^ name) with
  | Some torn when torn < 1.0 -> raise (Crash "before truncate")
  | Some _ ->
      durable_truncate t name;
      raise (Crash "after truncate")
  | None -> durable_truncate t name);
  { env = t; name; pending = Stdlib.Buffer.create 256; dead = false }

let append t name =
  { env = t; name; pending = Stdlib.Buffer.create 256; dead = false }

let check_alive s what =
  if s.dead then invalid_arg (Printf.sprintf "Faultio.%s: sink crashed" what)

let write s chunk =
  check_alive s "write";
  Stdlib.Buffer.add_string s.pending chunk;
  match crash_here s.env ~name:("write:" ^ s.name) with
  | Some torn ->
      s.dead <- true;
      let b = Stdlib.Buffer.to_bytes s.pending in
      durable_append s.env s.name b 0 (torn_bytes torn (Bytes.length b));
      raise (Crash (Printf.sprintf "during write of %s" s.name))
  | None -> ()

let flush s =
  check_alive s "flush";
  match crash_here s.env ~name:("flush:" ^ s.name) with
  | Some torn ->
      s.dead <- true;
      let b = Stdlib.Buffer.to_bytes s.pending in
      durable_append s.env s.name b 0 (torn_bytes torn (Bytes.length b));
      raise (Crash (Printf.sprintf "during flush of %s" s.name))
  | None ->
      let b = Stdlib.Buffer.to_bytes s.pending in
      durable_append s.env s.name b 0 (Bytes.length b);
      Stdlib.Buffer.clear s.pending

let close s =
  if not s.dead then begin
    if Stdlib.Buffer.length s.pending > 0 then flush s;
    s.dead <- true
  end

let rename t ~src ~dst =
  match crash_here t ~name:("rename:" ^ dst) with
  | Some torn when torn < 1.0 -> raise (Crash "before rename")
  | Some _ ->
      durable_rename t ~src ~dst;
      raise (Crash "after rename")
  | None -> durable_rename t ~src ~dst

(* An explicit logical crash point with no bytes of its own — the commit
   path inserts these at boundaries worth pinning (pre/post commit frame).
   The torn fraction is irrelevant: nothing is buffered here. *)
let point t name =
  match crash_here t ~name with
  | Some _ -> raise (Crash ("at point " ^ name))
  | None -> ()
