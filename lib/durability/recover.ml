(* Crash recovery: load the latest valid snapshot, then replay the
   committed transactions of the WAL's clean prefix.

   Replay collects each transaction's operations between its Begin and
   Commit; Abort (or a missing Commit — torn tail, crash) discards them.
   Transactions whose id is at or below the snapshot watermark are already
   reflected in the snapshot (a crash can land between checkpoint-rename
   and WAL truncation) and are skipped.  Records at or beyond the scan's
   clean prefix (after a checksum-corrupt record) are never committed:
   applying transactions that follow a hole could replay effects out of
   order.  Index contents are rebuilt from their definitions at the end —
   they are derived data. *)

module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Schema = Storage.Schema

type result = {
  cat : Catalog.t;
  last_txid : int;  (** highest transaction id seen (committed or not) *)
  replayed : int;  (** committed transactions applied from the WAL *)
  warnings : string list;
}

let apply_op cat (op : Wal.op) =
  match op with
  | Wal.Create_relation { table = _; schema; layout; encodings } ->
      ignore (Catalog.add ~encodings cat schema (Layout.of_indices schema layout))
  | Wal.Append { table; values } ->
      ignore (Relation.append (Catalog.find cat table) values)
  | Wal.Load { table; rows } ->
      let rel = Catalog.find cat table in
      Array.iter (fun row -> ignore (Relation.append rel row)) rows
  | Wal.Update { table; tid; attr; value } ->
      Relation.set (Catalog.find cat table) tid attr value
  | Wal.Set_layout { table; layout } ->
      let rel = Catalog.find cat table in
      Catalog.set_layout cat table
        (Layout.of_indices (Relation.schema rel) layout)
  | Wal.Set_physical { table; layout; encodings } ->
      let rel = Catalog.find cat table in
      Catalog.set_physical cat table
        ~layout:(Layout.of_indices (Relation.schema rel) layout)
        encodings
  | Wal.Create_index { table; iname; kind; attrs } ->
      Catalog.create_index cat table ~name:iname ~kind ~attrs

let m_recoveries =
  Obs.Metrics.counter "mrdb_recoveries_total" ~help:"Recovery runs"

let m_replayed =
  Obs.Metrics.counter "mrdb_recovery_replayed_txns_total"
    ~help:"Committed transactions replayed from the WAL during recovery"

let m_recovery_seconds =
  Obs.Metrics.histogram "mrdb_recovery_seconds"
    ~help:"Wall time of one recovery run (snapshot load + WAL replay)"

let run ?hier env =
  let t0 = Sys.time () in
  let warnings = ref [] in
  let warn s = warnings := s :: !warnings in
  let cat, watermark =
    match Snapshot.read ?hier env with
    | Snapshot.Loaded (cat, last_txid) -> (cat, last_txid)
    | Snapshot.Missing -> (Catalog.create ?hier (), 0)
    | Snapshot.Invalid why ->
        warn (why ^ " — starting from an empty catalog");
        (Catalog.create ?hier (), 0)
  in
  let scanned = Wal.scan env in
  List.iter warn scanned.Wal.warnings;
  let pending : (int, Wal.op list) Hashtbl.t = Hashtbl.create 8 in
  let last_txid = ref watermark in
  let replayed = ref 0 in
  let poisoned = ref false in
  let untraced f =
    match hier with
    | Some h -> Memsim.Hierarchy.without_tracing h f
    | None -> f ()
  in
  let commit txid =
    match Hashtbl.find_opt pending txid with
    | None -> ()
    | Some ops ->
        Hashtbl.remove pending txid;
        if txid > watermark && not !poisoned then begin
          (try untraced (fun () -> List.iter (apply_op cat) (List.rev ops))
           with e ->
             warn
               (Printf.sprintf
                  "wal: replay of transaction %d failed (%s) — discarding \
                   it and the rest of the log"
                  txid (Printexc.to_string e));
             poisoned := true);
          if not !poisoned then incr replayed
        end
  in
  List.iteri
    (fun i record ->
      if i < scanned.Wal.clean then begin
        (match record with
        | Wal.Begin txid -> Hashtbl.replace pending txid []
        | Wal.Op { txid; op } -> (
            match Hashtbl.find_opt pending txid with
            | Some ops -> Hashtbl.replace pending txid (op :: ops)
            | None -> Hashtbl.replace pending txid [ op ])
        | Wal.Commit txid -> commit txid
        | Wal.Abort txid -> Hashtbl.remove pending txid
        | Wal.Prepare _ ->
            (* presumed abort: a prepared transaction with no Commit in this
               log is discarded here; sharded recovery resolves it against
               the coordinator's decision log before replaying. *)
            ());
        match record with
        | Wal.Begin txid | Wal.Op { txid; _ } | Wal.Commit txid
        | Wal.Abort txid | Wal.Prepare txid ->
            if txid > !last_txid then last_txid := txid
      end)
    scanned.Wal.records;
  (* discard still-open transactions (uncommitted at the crash) silently —
     that is exactly the contract; rebuild every index from its definition *)
  untraced (fun () ->
      List.iter
        (fun name ->
          let rel = Catalog.find cat name in
          let arity = Schema.arity (Relation.schema rel) in
          if arity > 0 && Catalog.index_defs cat name <> [] then
            Catalog.rebuild_indexes_for cat name
              ~attrs:(List.init arity Fun.id))
        (Catalog.names cat));
  Obs.Metrics.incr m_recoveries;
  Obs.Metrics.add m_replayed !replayed;
  Obs.Metrics.observe m_recovery_seconds (Sys.time () -. t0);
  {
    cat;
    last_txid = !last_txid;
    replayed = !replayed;
    warnings = List.rev !warnings;
  }
