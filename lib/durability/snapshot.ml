(* Snapshots: a checksummed serialization of the full catalog — schemas,
   layouts, encodings, row contents, index definitions — plus the WAL
   watermark (the last transaction id the snapshot covers).

   Wire format:  u32 payload length | u32 CRC-32 | payload
   where the payload is  magic "MRDBSNP1" | i64 last_txid | catalog state.

   A checkpoint writes the snapshot to a temporary store, flushes, then
   atomically renames it over the previous snapshot — so at every crash
   point there is exactly one valid snapshot on the medium.  Index contents
   are not serialized: they are derived data, rebuilt at recovery from the
   stored definitions (deterministic, so lookup-identical). *)

module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Schema = Storage.Schema

let magic = "MRDBSNP1"
let store_name = "snapshot"
let tmp_name = "snapshot.tmp"

let untraced cat f =
  match Catalog.hier cat with
  | Some h -> Memsim.Hierarchy.without_tracing h f
  | None -> f ()

(* Canonical serialization of the catalog state (no watermark): tables in
   sorted name order, rows in tid order, index definitions sorted by name.
   Two catalogs are value-identical iff their states serialize equally —
   the recovery tests' equality oracle. *)
let serialize_state cat =
  let w = Codec.writer () in
  let names = Catalog.names cat in
  Codec.u32 w (List.length names);
  List.iter
    (fun name ->
      let rel = Catalog.find cat name in
      Codec.schema w (Relation.schema rel);
      Codec.layout_groups w (Layout.to_groups (Relation.layout rel));
      Codec.encodings w (Relation.encodings rel);
      Codec.i64 w (Relation.nrows rel);
      (* rows are written raw — the arity is known from the schema *)
      Relation.iter_rows rel (fun _ row -> Array.iter (Codec.value w) row);
      let defs =
        List.sort compare (Catalog.index_defs cat name)
      in
      Codec.list w
        (fun w (iname, kind, attrs) ->
          Codec.str w iname;
          Codec.index_kind w kind;
          Codec.list w Codec.str attrs)
        defs)
    names;
  Codec.contents w

let serialize_payload ~last_txid cat =
  let w = Codec.writer () in
  Codec.i64 w last_txid;
  Codec.contents w ^ serialize_state cat

let digest cat = Digest.to_hex (Digest.string (serialize_state cat))

let deserialize_state ?hier r =
  let cat = Catalog.create ?hier () in
  let apply () =
    let ntables = Codec.ru32 r in
    for _ = 1 to ntables do
      let schema = Codec.rschema r in
      let groups = Codec.rlayout_groups r in
      let encodings = Codec.rencodings r in
      let layout = Layout.of_indices schema groups in
      let nrows = Codec.ri64 r in
      let rel = Catalog.add ~encodings cat schema layout in
      for _ = 1 to nrows do
        let row =
          Array.init (Schema.arity schema) (fun _ -> Codec.rvalue r)
        in
        ignore (Relation.append rel row)
      done;
      let defs =
        Codec.rlist r (fun r ->
            let iname = Codec.rstr r in
            let kind = Codec.rindex_kind r in
            let attrs = Codec.rlist r Codec.rstr in
            (iname, kind, attrs))
      in
      List.iter
        (fun (iname, kind, attrs) ->
          Catalog.create_index cat schema.Schema.name ~name:iname ~kind ~attrs)
        defs
    done
  in
  (match hier with
  | Some h -> Memsim.Hierarchy.without_tracing h apply
  | None -> apply ());
  cat

let deserialize_payload ?hier payload =
  let r = Codec.reader (Bytes.unsafe_of_string payload) in
  let last_txid = Codec.ri64 r in
  let cat = deserialize_state ?hier r in
  (cat, last_txid)

(* ------------------------------------------------------------------ *)
(* Durable write / read                                               *)
(* ------------------------------------------------------------------ *)

let m_snapshots =
  Obs.Metrics.counter "mrdb_snapshots_total" ~help:"Snapshots written"

let m_snapshot_bytes =
  Obs.Metrics.counter "mrdb_snapshot_bytes_total"
    ~help:"Snapshot payload bytes written"

let m_snapshot_seconds =
  Obs.Metrics.histogram "mrdb_snapshot_seconds"
    ~help:"Wall time to serialize and persist one snapshot"

let write env ~last_txid cat =
  let t0 = Sys.time () in
  let payload = untraced cat (fun () -> magic ^ serialize_payload ~last_txid cat) in
  let w = Codec.writer () in
  Codec.u32 w (String.length payload);
  Codec.u32 w (Checksum.string payload);
  let sink = Faultio.create env tmp_name in
  Faultio.write sink (Codec.contents w);
  Faultio.write sink payload;
  Faultio.flush sink;
  Faultio.close sink;
  Faultio.rename env ~src:tmp_name ~dst:store_name;
  Obs.Metrics.incr m_snapshots;
  Obs.Metrics.add m_snapshot_bytes (String.length payload);
  Obs.Metrics.observe m_snapshot_seconds (Sys.time () -. t0)

type read_result =
  | Loaded of Catalog.t * int  (** catalog and its WAL watermark *)
  | Missing
  | Invalid of string

let read ?hier env =
  match Faultio.read_all env store_name with
  | None -> Missing
  | Some buf -> (
      try
        let hdr = Codec.reader buf in
        let len = Codec.ru32 hdr in
        let crc = Codec.ru32 hdr in
        if len > Bytes.length buf - 8 then
          Invalid
            (Printf.sprintf "snapshot: torn (claims %d bytes, %d present)"
               len
               (Bytes.length buf - 8))
        else if Checksum.bytes buf ~pos:8 ~len <> crc then
          Invalid "snapshot: checksum mismatch"
        else begin
          let payload = Bytes.sub_string buf 8 len in
          let mlen = String.length magic in
          if String.length payload < mlen || String.sub payload 0 mlen <> magic
          then Invalid "snapshot: bad magic"
          else
            let cat, last_txid =
              deserialize_payload ?hier
                (String.sub payload mlen (String.length payload - mlen))
            in
            Loaded (cat, last_txid)
        end
      with
      | Codec.Truncated what -> Invalid ("snapshot: " ^ what)
      | Invalid_argument what -> Invalid ("snapshot: " ^ what))
