(** Fault-injectable storage for the durability subsystem.

    An [env] is a small set of named byte stores — backed by real files (the
    CLI) or in-memory buffers (the recovery harness).  Sink writes are
    buffered; only {!flush} makes bytes durable.  A {!plan} can simulate a
    process crash at any write/flush/truncate/rename boundary (each is one
    numbered {e crash point}), optionally letting a prefix of the un-flushed
    tail survive — torn writes and partial flushes.  Deterministic: the same
    plan over the same workload crashes at the same byte.

    Every boundary also has a stable {e name} ("write:wal", "flush:wal",
    "rename:snapshot", "txn.pre_commit", ...).  {!At_point} pins a crash to
    the k-th occurrence of a name, which — unlike positional {!Crash_at}
    indices — stays valid when new commit-path points are inserted, so
    pinned recovery seeds keep replaying the same boundary. *)

exception Crash of string
(** Simulated process death.  The workload driver catches it, drops all live
    state, and runs recovery against the env's durable contents. *)

type plan =
  | Reliable
  | Crash_at of { point : int; torn : float }
      (** die at the [point]-th crash point (1-based); [torn] ∈ [0,1] is the
          fraction of the un-flushed tail that becomes durable anyway. *)
  | At_point of { name : string; nth : int; torn : float }
      (** die at the [nth]-th occurrence (1-based) of the named point;
          insertion-stable (see above). *)
  | Seeded of { seed : int; mean_period : int }
      (** crash roughly every [mean_period] points with pseudo-random torn
          fraction; deterministic for a fixed seed. *)

type t

val memory : ?plan:plan -> unit -> t
val files : ?plan:plan -> path:(string -> string) -> unit -> t
(** [files ~path] stores [name] at file [path name]. *)

val in_dir : ?plan:plan -> string -> t
(** File backend mapping store [name] to [dir/name]. *)

val set_plan : t -> plan -> unit
val points : t -> int
(** Crash points passed so far (for enumerating them exhaustively). *)

val reset_points : t -> unit
(** Zero both the positional counter and every per-name occurrence count. *)

val named_points : t -> (string * int) list
(** Occurrences passed so far per point name, sorted by name — the stable
    enumeration a crash-matrix test iterates instead of raw indices. *)

val point : t -> string -> unit
(** An explicit logical crash point (no bytes of its own): counts as one
    boundary under the given name and raises {!Crash} if the plan says so.
    The commit path inserts these at its pre/post-commit boundaries. *)

(** {2 Durable reads and store management} *)

val read_all : t -> string -> Bytes.t option
val exists : t -> string -> bool
val delete : t -> string -> unit
val durable_size : t -> string -> int
val rename : t -> src:string -> dst:string -> unit
(** Atomic; one crash point (the crash lands before or after, never mid). *)

val corrupt_byte : t -> string -> int -> unit
(** Flip every bit of the byte at the given durable offset (test helper
    modeling checksum-detectable bit rot). *)

val truncate_store : t -> string -> int -> unit
(** Cut the durable store to a byte prefix (test helper modeling short
    reads / lost tails). *)

(** {2 Sinks} *)

type sink

val create : t -> string -> sink
(** Truncate the store and open it for writing (one crash point). *)

val append : t -> string -> sink
(** Open the store for appending. *)

val write : sink -> string -> unit
(** Buffer bytes (one crash point; a crash may tear the buffered tail). *)

val flush : sink -> unit
(** Make all buffered bytes durable (one crash point). *)

val close : sink -> unit
