(** Snapshots: checksummed serialization of the full catalog — schemas,
    layouts, encodings, row contents, index definitions — plus the WAL
    watermark (last transaction id covered).

    Checkpoints write to a temporary store, flush, then atomically rename
    over the previous snapshot, so at every crash point exactly one valid
    snapshot exists.  Index contents are derived data: recovery rebuilds
    them from the stored definitions. *)

val store_name : string
val tmp_name : string

val serialize_state : Storage.Catalog.t -> string
(** Canonical catalog-state bytes (tables sorted by name, rows in tid
    order, index definitions sorted): two catalogs are value-identical iff
    their states serialize equally. *)

val serialize_payload : last_txid:int -> Storage.Catalog.t -> string
(** Watermark + state (unframed, without magic) — what round-trips through
    {!deserialize_payload}. *)

val deserialize_payload :
  ?hier:Memsim.Hierarchy.t -> string -> Storage.Catalog.t * int
(** Rebuild a catalog (and its watermark) from {!serialize_payload} bytes.
    Runs untraced.  @raise Codec.Truncated on malformed input. *)

val digest : Storage.Catalog.t -> string
(** Hex digest of {!serialize_state} — the value-identity oracle used by
    the recovery tests. *)

val write : Faultio.t -> last_txid:int -> Storage.Catalog.t -> unit
(** Serialize, frame with length + CRC-32, write to [tmp_name], flush, and
    atomically rename to [store_name]. *)

type read_result =
  | Loaded of Storage.Catalog.t * int  (** catalog and its WAL watermark *)
  | Missing
  | Invalid of string

val read : ?hier:Memsim.Hierarchy.t -> Faultio.t -> read_result
(** Validate and load the durable snapshot.  Never raises. *)
