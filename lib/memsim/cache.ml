type t = {
  name : string;
  sets : int;
  set_mask : int; (* sets - 1 when sets is a power of two, else -1 *)
  assoc : int;
  block_bits : int;
  tags : int array; (* sets * assoc; -1 = invalid *)
  ages : int array; (* LRU timestamps *)
  pending : bool array; (* per slot: prefetched, not yet demand-touched *)
  mutable clock : int;
}

type probe = Miss | Hit | Hit_pending

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (l : Params.level) =
  assert (l.block > 0 && l.block land (l.block - 1) = 0);
  let sets = max 1 (l.capacity / (l.block * l.assoc)) in
  {
    name = l.name;
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    assoc = l.assoc;
    block_bits = log2 l.block;
    tags = Array.make (sets * l.assoc) (-1);
    ages = Array.make (sets * l.assoc) 0;
    pending = Array.make (sets * l.assoc) false;
    clock = 0;
  }

let block_bits t = t.block_bits
let name t = t.name

(* Every probe computes the set index; a power-of-two set count (the common
   case) turns the division into a mask.  All slot indices derived from it
   are in bounds by construction, so the loops below use unsafe accesses. *)
let set_base t line =
  (if t.set_mask >= 0 then line land t.set_mask else line mod t.sets) * t.assoc

let find t line =
  let base = set_base t line in
  let limit = base + t.assoc in
  let i = ref base in
  while !i < limit && Array.unsafe_get t.tags !i <> line do incr i done;
  if !i < limit then !i else -1

let touch_slot t slot =
  t.clock <- t.clock + 1;
  Array.unsafe_set t.ages slot t.clock

(* Single-pass probe: walks the set once, looking for [line] while tracking
   the LRU victim a miss will fill.  Returns the hit slot, or [lnot v]
   (negative) with [v] the victim slot.  Victim rules: the base slot is the
   initial best by age only, the first invalid slot at index > base wins
   outright, and ages past that invalid slot are never compared.  (An
   invalid slot has age 0 and so also wins the age comparison — the subtle
   case is an invalid base, which must still lose to a later invalid
   slot.) *)
let locate t line =
  let base = set_base t line in
  if Array.unsafe_get t.tags base = line then base
  else begin
    let limit = base + t.assoc in
    let hit = ref (-1) in
    let free = ref (-1) in
    let best = ref base in
    let best_age = ref (Array.unsafe_get t.ages base) in
    let i = ref (base + 1) in
    while !hit < 0 && !i < limit do
      let slot = !i in
      let tag = Array.unsafe_get t.tags slot in
      if tag = line then hit := slot
      else begin
        if !free < 0 then
          if tag = -1 then free := slot
          else begin
            let age = Array.unsafe_get t.ages slot in
            if age < !best_age then begin
              best := slot;
              best_age := age
            end
          end;
        incr i
      end
    done;
    if !hit >= 0 then !hit
    else lnot (if !free >= 0 then !free else !best)
  end

let access t line =
  let r = locate t line in
  if r >= 0 then begin
    touch_slot t r;
    true
  end
  else begin
    let v = lnot r in
    Array.unsafe_set t.tags v line;
    Array.unsafe_set t.pending v false;
    touch_slot t v;
    false
  end

let access_pending t line =
  let r = locate t line in
  if r >= 0 then begin
    touch_slot t r;
    if Array.unsafe_get t.pending r then begin
      Array.unsafe_set t.pending r false;
      Hit_pending
    end
    else Hit
  end
  else begin
    let v = lnot r in
    Array.unsafe_set t.tags v line;
    Array.unsafe_set t.pending v false;
    touch_slot t v;
    Miss
  end

let insert t line =
  let r = locate t line in
  if r >= 0 then touch_slot t r
  else begin
    let v = lnot r in
    Array.unsafe_set t.tags v line;
    Array.unsafe_set t.pending v false;
    touch_slot t v
  end

let insert_pending t line =
  let r = locate t line in
  if r >= 0 then touch_slot t r
  else begin
    let v = lnot r in
    Array.unsafe_set t.tags v line;
    Array.unsafe_set t.pending v true;
    touch_slot t v
  end

let mem t line = find t line >= 0

(* Reference probes: the pre-batching implementation — mod-based set
   indexing and separate find / victim walks — kept verbatim so the
   hierarchy's MEMSIM_FASTPATH=0 path has the wall-clock profile of the
   original tracer, not an optimized one.  Replacement decisions are
   identical to [access]/[insert] by construction ([locate] is a fusion of
   these two walks).  Note these do not maintain the [pending] flags (the
   reference hierarchy tracks prefetched lines in a side table), so a cache
   must be driven through either the reference or the optimized probes, not
   a mix. *)

let set_base_ref t line = line mod t.sets * t.assoc

let find_ref t line =
  let base = set_base_ref t line in
  let rec go i =
    if i >= t.assoc then -1
    else if t.tags.(base + i) = line then base + i
    else go (i + 1)
  in
  go 0

let victim_ref t line =
  let base = set_base_ref t line in
  let rec go i best best_age =
    if i >= t.assoc then best
    else
      let slot = base + i in
      if t.tags.(slot) = -1 then slot
      else if t.ages.(slot) < best_age then go (i + 1) slot t.ages.(slot)
      else go (i + 1) best best_age
  in
  go 1 base t.ages.(base)

let access_ref t line =
  let slot = find_ref t line in
  if slot >= 0 then begin
    touch_slot t slot;
    true
  end
  else begin
    let v = victim_ref t line in
    t.tags.(v) <- line;
    touch_slot t v;
    false
  end

let insert_ref t line =
  let slot = find_ref t line in
  if slot >= 0 then touch_slot t slot
  else begin
    let v = victim_ref t line in
    t.tags.(v) <- line;
    touch_slot t v
  end

let mem_ref t line = find_ref t line >= 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  Array.fill t.pending 0 (Array.length t.pending) false;
  t.clock <- 0
