type stream = {
  mutable last : int; (* last accessed LLC line *)
  mutable stride : int; (* detected stride; 0 = none *)
  mutable age : int;
  mutable valid : bool;
}

type t = { streams : stream array; mutable clock : int }

(* A delta larger than this cannot belong to an existing stream; the access
   opens a new one.  64 lines = 4kB with 64B lines, roughly a page. *)
let max_stream_delta = 64

let create ~streams =
  {
    streams =
      Array.init streams (fun _ ->
          { last = 0; stride = 0; age = 0; valid = false });
    clock = 0;
  }

let clear t =
  Array.iter (fun s -> s.valid <- false) t.streams;
  t.clock <- 0

let find_stream t line =
  let n = Array.length t.streams in
  let best = ref (-1) in
  let best_delta = ref max_int in
  for i = 0 to n - 1 do
    let s = Array.unsafe_get t.streams i in
    if s.valid then begin
      let d = abs (line - s.last) in
      if d <= max_stream_delta && d < !best_delta then begin
        best := i;
        best_delta := d
      end
    end
  done;
  !best

let lru_slot t =
  let n = Array.length t.streams in
  let best = ref 0 in
  let best_age = ref max_int in
  for i = 0 to n - 1 do
    let s = Array.unsafe_get t.streams i in
    if not s.valid then begin
      best := i;
      best_age := -1
    end
    else if s.age < !best_age then begin
      best := i;
      best_age := s.age
    end
  done;
  !best

let observe t line =
  t.clock <- t.clock + 1;
  let i = find_stream t line in
  if i < 0 then begin
    let s = t.streams.(lru_slot t) in
    s.last <- line;
    s.stride <- 0;
    s.age <- t.clock;
    s.valid <- true;
    None
  end
  else begin
    let s = t.streams.(i) in
    s.age <- t.clock;
    let delta = line - s.last in
    if delta = 0 then None
    else begin
      s.last <- line;
      if delta = 1 then begin
        (* adjacent cache line: always prefetch the next one *)
        s.stride <- 1;
        Some (line + 1)
      end
      else if delta = s.stride then Some (line + s.stride)
      else begin
        s.stride <- delta;
        None
      end
    end
  end
