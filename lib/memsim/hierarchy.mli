(** The composed memory-hierarchy simulator.

    Every data-plane byte the database engines touch flows through {!read} or
    {!write}; the simulator walks TLB / L1 / L2 / LLC, consults the
    prefetcher, and accounts cycles per Table III of the paper.  Execution
    engines additionally charge instruction costs through {!add_cpu} — the
    paper's two performance dimensions (cache efficiency and CPU efficiency)
    are thus two separate counters of one {!Stats.t}. *)

type t

val create : ?params:Params.t -> unit -> t
(** [create ()] uses {!Params.nehalem}. *)

val params : t -> Params.t

val read : t -> addr:int -> width:int -> unit
(** Simulate a load of [width] bytes at virtual address [addr].  The access is
    decomposed into 8-byte words, each probing the hierarchy. *)

val write : t -> addr:int -> width:int -> unit
(** Simulate a store.  Timing model is identical to {!read} (write-allocate). *)

val read_run : t -> addr:int -> width:int -> count:int -> stride:int -> unit
(** [read_run t ~addr ~width ~count ~stride] simulates the access run

    {[ for i = 0 to count - 1 do read t ~addr:(addr + i * stride) ~width done ]}

    walking it line-by-line: one cache walk per distinct L1 line, one TLB
    lookup per distinct page, prefetcher observed at line granularity.  All
    counters and cycle totals are byte-identical to the per-word loop above —
    re-probing a line (or page) that the immediately preceding access just
    probed is a guaranteed hit whose only effect would be refreshing
    already-most-recently-used recency.  [count <= 0] or [width <= 0] is a
    no-op.  Negative strides and overlapping elements are supported. *)

val write_run : t -> addr:int -> width:int -> count:int -> stride:int -> unit
(** Store version of {!read_run}. *)

val set_fastpath : t -> bool -> unit
(** When the fast path is off, all tracing runs on the reference per-word
    tracer — the original pre-batching implementation, kept verbatim
    (mod-based set indexing, two-pass find/victim walks, prefetched-line
    side table) — and {!read_run}/{!write_run} decompose into the literal
    per-word loop.  Used by identity tests and the [tracefast] bench to
    verify zero counter drift on the same access stream and to measure the
    batching speedup against the true before.  Default: on, unless the
    environment variable [MEMSIM_FASTPATH] is ["0"] at {!create} time — the
    bench harness uses that to time whole experiments against the reference
    decomposition.  Choose the path before the first traced access: the two
    tracers represent prefetch pendingness differently, so flipping
    mid-stream (on a non-empty hierarchy) is unsound. *)

val fastpath : t -> bool

val add_cpu : t -> int -> unit
(** Charge [n] CPU cycles of instruction work (predicate evaluation, hashing,
    virtual-call overhead, ...). *)

val stats : t -> Stats.t
(** Live counters (mutable; use {!Stats.copy} for snapshots). *)

val snapshot : t -> Stats.t

val section : t -> (unit -> 'a) -> 'a * Stats.t
(** [section t f] runs [f] and returns its result together with the
    counter delta it produced (snapshot before, diff after).  Unlike
    {!reset_stats}-based measurement this is scoped: it composes with an
    enclosing measurement instead of destroying it, so callers can
    attribute counters to a region without owning the whole hierarchy. *)

val reset_stats : t -> unit
(** Zero the counters, keeping cache contents (to measure warm behaviour). *)

val reset : t -> unit
(** Zero counters and flush all caches, TLB, prefetcher state. *)

val set_enabled : t -> bool -> unit
(** When disabled, {!read}, {!write} and {!add_cpu} are no-ops.  Used to
    exclude setup work (loading, repartitioning, index builds) from
    measurements, and for fast untraced wall-clock benchmarking. *)

val enabled : t -> bool

val without_tracing : t -> (unit -> 'a) -> 'a
(** Run a thunk with tracing disabled, restoring the previous state. *)
