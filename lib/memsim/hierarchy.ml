type t = {
  params : Params.t;
  mutable tracing : bool;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  tlb : Cache.t;
  pf : Prefetcher.t;
  pending : (int, unit) Hashtbl.t; (* prefetched lines not yet demand-touched *)
  stats : Stats.t;
  l1_bits : int;
  l2_bits : int;
  l3_bits : int;
  tlb_bits : int;
  l1_lat : int;
  l2_lat : int;
  l3_lat : int;
  tlb_lat : int;
  mem_lat : int;
}

let create ?(params = Params.nehalem) () =
  assert (Array.length params.levels = 3);
  let l1 = Cache.create params.levels.(0) in
  let l2 = Cache.create params.levels.(1) in
  let l3 = Cache.create params.levels.(2) in
  let tlb = Cache.create params.tlb in
  {
    params;
    tracing = true;
    l1;
    l2;
    l3;
    tlb;
    pf = Prefetcher.create ~streams:params.prefetch_streams;
    pending = Hashtbl.create 1024;
    stats = Stats.create ();
    l1_bits = Cache.block_bits l1;
    l2_bits = Cache.block_bits l2;
    l3_bits = Cache.block_bits l3;
    tlb_bits = Cache.block_bits tlb;
    l1_lat = params.levels.(0).latency;
    l2_lat = params.levels.(1).latency;
    l3_lat = params.levels.(2).latency;
    tlb_lat = params.tlb.latency;
    mem_lat = params.memory_latency;
  }

let params t = t.params

(* One 8-byte-word probe of the hierarchy.  Returns the cycle cost. *)
let probe_word t a =
  let s = t.stats in
  let cost = ref t.l1_lat in
  if not (Cache.access t.tlb (a lsr t.tlb_bits)) then begin
    s.tlb_misses <- s.tlb_misses + 1;
    cost := !cost + t.tlb_lat
  end;
  if not (Cache.access t.l1 (a lsr t.l1_bits)) then begin
    s.l1_misses <- s.l1_misses + 1;
    cost := !cost + t.l2_lat;
    if not (Cache.access t.l2 (a lsr t.l2_bits)) then begin
      s.l2_misses <- s.l2_misses + 1;
      cost := !cost + t.l3_lat;
      let line = a lsr t.l3_bits in
      s.llc_accesses <- s.llc_accesses + 1;
      if Cache.access t.l3 line then begin
        if Hashtbl.mem t.pending line then begin
          (* first demand touch of a prefetched line: its memory latency was
             hidden behind processing — the paper's "sequential miss" *)
          s.llc_seq_misses <- s.llc_seq_misses + 1;
          Hashtbl.remove t.pending line
        end
      end
      else begin
        Hashtbl.remove t.pending line;
        s.llc_rand_misses <- s.llc_rand_misses + 1;
        cost := !cost + t.mem_lat
      end;
      match Prefetcher.observe t.pf line with
      | Some p ->
          if not (Cache.mem t.l3 p) then begin
            Cache.insert t.l3 p;
            Hashtbl.replace t.pending p ();
            s.prefetches <- s.prefetches + 1
          end
      | None -> ()
    end
  end;
  !cost

let touch t ~addr ~width ~is_write =
  let s = t.stats in
  let first = addr lsr 3 and last = (addr + width - 1) lsr 3 in
  (* Fast path: words sharing one L1 line (and hence one TLB page, as lines
     never span pages) after the first are guaranteed L1+TLB hits — the first
     probe either hit or just filled line and page.  Probing them would only
     refresh the recency of entries that are already most-recently-used, so
     skipping the lookups leaves every cache, the prefetcher and all counters
     in exactly the state the per-word loop produces; each skipped word still
     accounts one access at L1 latency. *)
  if first = last then begin
    s.accesses <- s.accesses + 1;
    if is_write then s.writes <- s.writes + 1 else s.reads <- s.reads + 1;
    s.mem_cycles <- s.mem_cycles + probe_word t (first lsl 3)
  end
  else begin
    let group_bits = min t.l1_bits t.tlb_bits - 3 in
    let group_mask = (1 lsl max 0 group_bits) - 1 in
    let w = ref first in
    while !w <= last do
      let g_last = min last (!w lor group_mask) in
      let k = g_last - !w + 1 in
      s.accesses <- s.accesses + k;
      if is_write then s.writes <- s.writes + k else s.reads <- s.reads + k;
      let c = probe_word t (!w lsl 3) in
      s.mem_cycles <- s.mem_cycles + c + ((k - 1) * t.l1_lat);
      w := g_last + 1
    done
  end

let read t ~addr ~width =
  if t.tracing then touch t ~addr ~width ~is_write:false

let write t ~addr ~width =
  if t.tracing then touch t ~addr ~width ~is_write:true

let add_cpu t n = if t.tracing then t.stats.cpu_cycles <- t.stats.cpu_cycles + n

let set_enabled t b = t.tracing <- b
let enabled t = t.tracing

let without_tracing t f =
  let prev = t.tracing in
  t.tracing <- false;
  Fun.protect ~finally:(fun () -> t.tracing <- prev) f

let stats t = t.stats
let snapshot t = Stats.copy t.stats
let reset_stats t = Stats.reset t.stats

let reset t =
  Stats.reset t.stats;
  Cache.clear t.l1;
  Cache.clear t.l2;
  Cache.clear t.l3;
  Cache.clear t.tlb;
  Prefetcher.clear t.pf;
  Hashtbl.reset t.pending
