type t = {
  params : Params.t;
  mutable tracing : bool;
  mutable fastpath : bool;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  tlb : Cache.t;
  pf : Prefetcher.t;
  pending_ref : (int, unit) Hashtbl.t;
      (* prefetched-lines side table of the reference (fast path off)
         tracer; the fast path keeps pendingness in per-slot cache flags *)
  stats : Stats.t;
  l1_bits : int;
  l2_bits : int;
  l3_bits : int;
  tlb_bits : int;
  l1_lat : int;
  l2_lat : int;
  l3_lat : int;
  tlb_lat : int;
  mem_lat : int;
  mutable last_tlb : int;
      (* page of the most recent actual TLB probe.  Every TLB modification
         goes through that probe, so a repeat lookup of this page is a
         guaranteed hit that would only refresh an already-MRU entry: it can
         be skipped with identical counters, costs and replacement state. *)
  mutable last_l2 : int; (* same memo for the most recent L2 line probed *)
  mutable last_l1 : int;
      (* same memo for the most recent L1 line probed; fires on
         read-modify-write word patterns (aggregate state updates) *)
}

(* Process-wide default for new hierarchies; MEMSIM_FASTPATH=0 turns the
   run-batched fast path off everywhere so the whole bench harness can be
   timed against the reference per-word decomposition. *)
let default_fastpath () =
  match Sys.getenv_opt "MEMSIM_FASTPATH" with
  | Some "0" -> false
  | _ -> true

let create ?(params = Params.nehalem) () =
  assert (Array.length params.levels = 3);
  let l1 = Cache.create params.levels.(0) in
  let l2 = Cache.create params.levels.(1) in
  let l3 = Cache.create params.levels.(2) in
  let tlb = Cache.create params.tlb in
  {
    params;
    tracing = true;
    fastpath = default_fastpath ();
    l1;
    l2;
    l3;
    tlb;
    pf = Prefetcher.create ~streams:params.prefetch_streams;
    pending_ref = Hashtbl.create 1024;
    stats = Stats.create ();
    l1_bits = Cache.block_bits l1;
    l2_bits = Cache.block_bits l2;
    l3_bits = Cache.block_bits l3;
    tlb_bits = Cache.block_bits tlb;
    l1_lat = params.levels.(0).latency;
    l2_lat = params.levels.(1).latency;
    l3_lat = params.levels.(2).latency;
    tlb_lat = params.tlb.latency;
    mem_lat = params.memory_latency;
    last_tlb = -1;
    last_l2 = -1;
    last_l1 = -1;
  }

let params t = t.params

(* The L1→L2→LLC walk of one 8-byte-word probe, without the TLB lookup.
   Callers that have just probed another word of the same page may use this
   directly: the page is resident and most-recently-used, so the skipped
   TLB lookup would be a guaranteed hit that only refreshes an already-MRU
   entry — no counter, cost or replacement decision can differ.  Returns
   the cycle cost. *)
let probe_word_no_tlb t a =
  let s = t.stats in
  let l1_line = a lsr t.l1_bits in
  if l1_line = t.last_l1 then (* guaranteed hit, see [last_l1] *) t.l1_lat
  else if begin
    t.last_l1 <- l1_line;
    Cache.access t.l1 l1_line
  end
  then t.l1_lat
  else begin
    s.l1_misses <- s.l1_misses + 1;
    let l2_line = a lsr t.l2_bits in
    if l2_line = t.last_l2 then
      (* repeat of the line probed by the previous L2 access: resident and
         MRU (access fills on miss), so this is a guaranteed hit *)
      t.l1_lat + t.l2_lat
    else if begin
      t.last_l2 <- l2_line;
      Cache.access t.l2 l2_line
    end
    then t.l1_lat + t.l2_lat
    else begin
      s.l2_misses <- s.l2_misses + 1;
      let line = a lsr t.l3_bits in
      s.llc_accesses <- s.llc_accesses + 1;
      let mem_cost =
        match Cache.access_pending t.l3 line with
        | Cache.Hit -> 0
        | Cache.Hit_pending ->
            (* first demand touch of a prefetched line: its memory latency
               was hidden behind processing — the paper's "sequential miss" *)
            s.llc_seq_misses <- s.llc_seq_misses + 1;
            0
        | Cache.Miss ->
            s.llc_rand_misses <- s.llc_rand_misses + 1;
            t.mem_lat
      in
      (match Prefetcher.observe t.pf line with
      | Some p ->
          if not (Cache.mem t.l3 p) then begin
            Cache.insert_pending t.l3 p;
            s.prefetches <- s.prefetches + 1
          end
      | None -> ());
      t.l1_lat + t.l2_lat + t.l3_lat + mem_cost
    end
  end

(* One 8-byte-word probe of the full hierarchy.  Returns the cycle cost. *)
let probe_word t a =
  let page = a lsr t.tlb_bits in
  let tlb_cost =
    if page = t.last_tlb then (* guaranteed hit, see [last_tlb] *) 0
    else begin
      t.last_tlb <- page;
      if Cache.access t.tlb page then 0
      else begin
        t.stats.tlb_misses <- t.stats.tlb_misses + 1;
        t.tlb_lat
      end
    end
  in
  tlb_cost + probe_word_no_tlb t a

(* Reference tracer: the original (pre-batching) per-word walk, kept
   verbatim — mod-based set indexing, two-pass find/victim walks, the
   prefetched-line side table, a TLB probe per L1-line group.  It is the
   "before" that MEMSIM_FASTPATH=0 measures and the independent
   implementation the identity tests compare the batched path against.
   Counters and cycles are identical to the fast path by the arguments on
   [touch_fast]/[touch_run_fast] below; only the wall-clock profile
   differs.  A hierarchy must run one path from creation: the two represent
   prefetch pendingness differently, so flipping mid-stream is unsound. *)
let probe_word_ref t a =
  let s = t.stats in
  let cost = ref t.l1_lat in
  if not (Cache.access_ref t.tlb (a lsr t.tlb_bits)) then begin
    s.tlb_misses <- s.tlb_misses + 1;
    cost := !cost + t.tlb_lat
  end;
  if not (Cache.access_ref t.l1 (a lsr t.l1_bits)) then begin
    s.l1_misses <- s.l1_misses + 1;
    cost := !cost + t.l2_lat;
    if not (Cache.access_ref t.l2 (a lsr t.l2_bits)) then begin
      s.l2_misses <- s.l2_misses + 1;
      cost := !cost + t.l3_lat;
      let line = a lsr t.l3_bits in
      s.llc_accesses <- s.llc_accesses + 1;
      if Cache.access_ref t.l3 line then begin
        if Hashtbl.mem t.pending_ref line then begin
          s.llc_seq_misses <- s.llc_seq_misses + 1;
          Hashtbl.remove t.pending_ref line
        end
      end
      else begin
        Hashtbl.remove t.pending_ref line;
        s.llc_rand_misses <- s.llc_rand_misses + 1;
        cost := !cost + t.mem_lat
      end;
      match Prefetcher.observe t.pf line with
      | Some p ->
          if not (Cache.mem_ref t.l3 p) then begin
            Cache.insert_ref t.l3 p;
            Hashtbl.replace t.pending_ref p ();
            s.prefetches <- s.prefetches + 1
          end
      | None -> ()
    end
  end;
  !cost

let touch_ref t ~addr ~width ~is_write =
  let s = t.stats in
  let first = addr lsr 3 and last = (addr + width - 1) lsr 3 in
  if first = last then begin
    s.accesses <- s.accesses + 1;
    if is_write then s.writes <- s.writes + 1 else s.reads <- s.reads + 1;
    s.mem_cycles <- s.mem_cycles + probe_word_ref t (first lsl 3)
  end
  else begin
    let group_bits = min t.l1_bits t.tlb_bits - 3 in
    let group_mask = (1 lsl max 0 group_bits) - 1 in
    let w = ref first in
    while !w <= last do
      let g_last = min last (!w lor group_mask) in
      let k = g_last - !w + 1 in
      s.accesses <- s.accesses + k;
      if is_write then s.writes <- s.writes + k else s.reads <- s.reads + k;
      let c = probe_word_ref t (!w lsl 3) in
      s.mem_cycles <- s.mem_cycles + c + ((k - 1) * t.l1_lat);
      w := g_last + 1
    done
  end

let touch_fast t ~addr ~width ~is_write =
  let s = t.stats in
  let first = addr lsr 3 and last = (addr + width - 1) lsr 3 in
  (* Fast path: words sharing one L1 line (and hence one TLB page, as lines
     never span pages) after the first are guaranteed L1+TLB hits — the first
     probe either hit or just filled line and page.  Probing them would only
     refresh the recency of entries that are already most-recently-used, so
     skipping the lookups leaves every cache, the prefetcher and all counters
     in exactly the state the per-word loop produces; each skipped word still
     accounts one access at L1 latency. *)
  if first = last then begin
    s.accesses <- s.accesses + 1;
    if is_write then s.writes <- s.writes + 1 else s.reads <- s.reads + 1;
    s.mem_cycles <- s.mem_cycles + probe_word t (first lsl 3)
  end
  else begin
    (* One probe per L1-line group as before; additionally the TLB lookup is
       elided while the walk stays on the page just probed — that lookup is a
       guaranteed hit refreshing an already-MRU entry, so counters, cycles
       and replacement state are unchanged (same argument as the group
       skip). *)
    let group_bits = min t.l1_bits t.tlb_bits - 3 in
    let group_mask = (1 lsl max 0 group_bits) - 1 in
    let page_bits = t.tlb_bits - 3 in
    let w = ref first in
    let cur_page = ref (-1) in
    while !w <= last do
      let g_last = min last (!w lor group_mask) in
      let k = g_last - !w + 1 in
      s.accesses <- s.accesses + k;
      if is_write then s.writes <- s.writes + k else s.reads <- s.reads + k;
      let pg = !w lsr page_bits in
      let c =
        if pg = !cur_page then probe_word_no_tlb t (!w lsl 3)
        else begin
          cur_page := pg;
          probe_word t (!w lsl 3)
        end
      in
      s.mem_cycles <- s.mem_cycles + c + ((k - 1) * t.l1_lat);
      w := g_last + 1
    done
  end

(* Run-batched tracing: simulate

     for i = 0 to count-1 do touch ~addr:(addr + i*stride) ~width done

   probing each distinct L1 line once per streak and each distinct TLB page
   once per streak.  The equivalence argument is the one [touch] makes for
   words of one line, extended across the accesses of the run: while
   consecutive accesses stay inside the line just probed, a re-probe is a
   guaranteed L1 (and TLB) hit whose only effect is refreshing already-MRU
   recency — invisible to counters, costs and all replacement decisions, as
   LRU only compares ages relatively.  Likewise a streak that moves to a new
   line of the page just probed re-probes only L1/L2/LLC; the TLB entry is
   resident and MRU.  Every skipped word still accounts one access at L1
   latency, so counters and cycles are byte-identical to the per-word loop.
   State is tracked only within one call: the first access always probes. *)
let touch_run_fast t ~addr ~width ~count ~stride ~is_write =
  let s = t.stats in
  let group_bits = max 0 (min t.l1_bits t.tlb_bits - 3) in
  let group_mask = (1 lsl group_bits) - 1 in
  (* word-group -> page shift: group_bits <= tlb_bits - 3 by construction *)
  let page_shift = t.tlb_bits - 3 - group_bits in
  let words = ref 0 in
  let cycles = ref 0 in
  let cur_group = ref (-1) in
  if stride > 0 && stride land 7 = 0 && (addr land 7) + width <= 8 then begin
    (* The engines' canonical shape — every element is exactly one word and
       the stride keeps word alignment (column scans, position vectors, row
       runs).  Addresses increase monotonically, so each distinct line is
       one streak: charge whole streaks per loop iteration instead of
       walking the run element by element.  Counter accounting is the
       per-element loop's, just summed per streak: one probe plus L1 latency
       for every further element of the streak. *)
    let gb = group_bits + 3 in
    if stride >= 1 lsl gb then begin
      (* every element lands in its own group: probe each, only the TLB
         lookup is elided while the page stays the same *)
      for i = 0 to count - 1 do
        let a = addr + (i * stride) in
        let g = a lsr gb in
        let c =
          if !cur_group >= 0 && !cur_group lsr page_shift = g lsr page_shift
          then probe_word_no_tlb t a
          else probe_word t a
        in
        cur_group := g;
        cycles := !cycles + c
      done;
      words := count
    end
    else begin
      let i = ref 0 in
      while !i < count do
        let a = addr + (!i * stride) in
        let g = a lsr gb in
        let k =
          min (count - !i) (((((g + 1) lsl gb) - a) + stride - 1) / stride)
        in
        let c =
          if !cur_group >= 0 && !cur_group lsr page_shift = g lsr page_shift
          then probe_word_no_tlb t a
          else probe_word t a
        in
        cur_group := g;
        cycles := !cycles + c + ((k - 1) * t.l1_lat);
        words := !words + k;
        i := !i + k
      done
    end
  end
  else
    for i = 0 to count - 1 do
      let a = addr + (i * stride) in
      let first = a lsr 3 and last = (a + width - 1) lsr 3 in
      let w = ref first in
      while !w <= last do
        let g_last = min last (!w lor group_mask) in
        let k = g_last - !w + 1 in
        let g = !w lsr group_bits in
        if g = !cur_group then cycles := !cycles + (k * t.l1_lat)
        else begin
          let c =
            if !cur_group >= 0 && !cur_group lsr page_shift = g lsr page_shift
            then probe_word_no_tlb t (!w lsl 3)
            else probe_word t (!w lsl 3)
          in
          cur_group := g;
          cycles := !cycles + c + ((k - 1) * t.l1_lat)
        end;
        words := !words + k;
        w := g_last + 1
      done
    done;
  s.accesses <- s.accesses + !words;
  if is_write then s.writes <- s.writes + !words
  else s.reads <- s.reads + !words;
  s.mem_cycles <- s.mem_cycles + !cycles

let touch t ~addr ~width ~is_write =
  if t.fastpath then touch_fast t ~addr ~width ~is_write
  else touch_ref t ~addr ~width ~is_write

(* The reference semantics of a run: the plain per-word loop over the
   reference tracer.  Kept as the slow path so identity tests and the
   tracefast bench can toggle between the two on the same access stream. *)
let touch_run_slow t ~addr ~width ~count ~stride ~is_write =
  for i = 0 to count - 1 do
    touch_ref t ~addr:(addr + (i * stride)) ~width ~is_write
  done

let touch_run t ~addr ~width ~count ~stride ~is_write =
  if count > 0 && width > 0 then
    if t.fastpath then touch_run_fast t ~addr ~width ~count ~stride ~is_write
    else touch_run_slow t ~addr ~width ~count ~stride ~is_write

let read t ~addr ~width =
  if t.tracing then touch t ~addr ~width ~is_write:false

let write t ~addr ~width =
  if t.tracing then touch t ~addr ~width ~is_write:true

let read_run t ~addr ~width ~count ~stride =
  if t.tracing then touch_run t ~addr ~width ~count ~stride ~is_write:false

let write_run t ~addr ~width ~count ~stride =
  if t.tracing then touch_run t ~addr ~width ~count ~stride ~is_write:true

let add_cpu t n = if t.tracing then t.stats.cpu_cycles <- t.stats.cpu_cycles + n

let set_enabled t b = t.tracing <- b
let enabled t = t.tracing

let set_fastpath t b = t.fastpath <- b
let fastpath t = t.fastpath

let without_tracing t f =
  let prev = t.tracing in
  t.tracing <- false;
  Fun.protect ~finally:(fun () -> t.tracing <- prev) f

let stats t = t.stats
let snapshot t = Stats.copy t.stats

let section t f =
  let before = Stats.copy t.stats in
  let v = f () in
  (v, Stats.diff t.stats before)
let reset_stats t = Stats.reset t.stats

let reset t =
  Stats.reset t.stats;
  Cache.clear t.l1;
  Cache.clear t.l2;
  Cache.clear t.l3;
  Cache.clear t.tlb;
  Prefetcher.clear t.pf;
  Hashtbl.reset t.pending_ref;
  t.last_tlb <- -1;
  t.last_l2 <- -1;
  t.last_l1 <- -1
