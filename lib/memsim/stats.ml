type t = {
  mutable accesses : int;
  mutable reads : int;
  mutable writes : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable llc_accesses : int;
  mutable llc_seq_misses : int;
  mutable llc_rand_misses : int;
  mutable tlb_misses : int;
  mutable prefetches : int;
  mutable mem_cycles : int;
  mutable cpu_cycles : int;
}

let create () =
  {
    accesses = 0;
    reads = 0;
    writes = 0;
    l1_misses = 0;
    l2_misses = 0;
    llc_accesses = 0;
    llc_seq_misses = 0;
    llc_rand_misses = 0;
    tlb_misses = 0;
    prefetches = 0;
    mem_cycles = 0;
    cpu_cycles = 0;
  }

let reset t =
  t.accesses <- 0;
  t.reads <- 0;
  t.writes <- 0;
  t.l1_misses <- 0;
  t.l2_misses <- 0;
  t.llc_accesses <- 0;
  t.llc_seq_misses <- 0;
  t.llc_rand_misses <- 0;
  t.tlb_misses <- 0;
  t.prefetches <- 0;
  t.mem_cycles <- 0;
  t.cpu_cycles <- 0

let copy t = { t with accesses = t.accesses }

let diff a b =
  {
    accesses = a.accesses - b.accesses;
    reads = a.reads - b.reads;
    writes = a.writes - b.writes;
    l1_misses = a.l1_misses - b.l1_misses;
    l2_misses = a.l2_misses - b.l2_misses;
    llc_accesses = a.llc_accesses - b.llc_accesses;
    llc_seq_misses = a.llc_seq_misses - b.llc_seq_misses;
    llc_rand_misses = a.llc_rand_misses - b.llc_rand_misses;
    tlb_misses = a.tlb_misses - b.tlb_misses;
    prefetches = a.prefetches - b.prefetches;
    mem_cycles = a.mem_cycles - b.mem_cycles;
    cpu_cycles = a.cpu_cycles - b.cpu_cycles;
  }

let total_cycles t = t.mem_cycles + t.cpu_cycles

let merge a b =
  (* Counters compose additively across concurrent executors; cycle costs
     compose as the critical path.  The cycle fields are taken together from
     whichever operand is slower (lexicographically by total, then mem, then
     cpu cycles, so the choice is a total order and [merge] stays associative
     and commutative even on ties). *)
  let slower =
    let key t = (total_cycles t, t.mem_cycles, t.cpu_cycles) in
    if compare (key a) (key b) >= 0 then a else b
  in
  {
    accesses = a.accesses + b.accesses;
    reads = a.reads + b.reads;
    writes = a.writes + b.writes;
    l1_misses = a.l1_misses + b.l1_misses;
    l2_misses = a.l2_misses + b.l2_misses;
    llc_accesses = a.llc_accesses + b.llc_accesses;
    llc_seq_misses = a.llc_seq_misses + b.llc_seq_misses;
    llc_rand_misses = a.llc_rand_misses + b.llc_rand_misses;
    tlb_misses = a.tlb_misses + b.tlb_misses;
    prefetches = a.prefetches + b.prefetches;
    mem_cycles = slower.mem_cycles;
    cpu_cycles = slower.cpu_cycles;
  }

let add acc x =
  acc.accesses <- acc.accesses + x.accesses;
  acc.reads <- acc.reads + x.reads;
  acc.writes <- acc.writes + x.writes;
  acc.l1_misses <- acc.l1_misses + x.l1_misses;
  acc.l2_misses <- acc.l2_misses + x.l2_misses;
  acc.llc_accesses <- acc.llc_accesses + x.llc_accesses;
  acc.llc_seq_misses <- acc.llc_seq_misses + x.llc_seq_misses;
  acc.llc_rand_misses <- acc.llc_rand_misses + x.llc_rand_misses;
  acc.tlb_misses <- acc.tlb_misses + x.tlb_misses;
  acc.prefetches <- acc.prefetches + x.prefetches;
  acc.mem_cycles <- acc.mem_cycles + x.mem_cycles;
  acc.cpu_cycles <- acc.cpu_cycles + x.cpu_cycles

let pp ppf t =
  Format.fprintf ppf
    "@[<v>accesses %d (r %d / w %d)@,l1 misses %d@,l2 misses %d@,\
     llc accesses %d seq-misses %d rand-misses %d@,tlb misses %d@,\
     prefetches %d@,mem cycles %d@,cpu cycles %d@,total cycles %d@]"
    t.accesses t.reads t.writes t.l1_misses t.l2_misses t.llc_accesses
    t.llc_seq_misses t.llc_rand_misses t.tlb_misses t.prefetches t.mem_cycles
    t.cpu_cycles (total_cycles t)
