(** A single set-associative LRU cache level operating on line numbers.

    The cache does not store data, only tags: the simulator is a timing and
    miss-count model, the actual bytes live in {!Storage.Buffer} byte arrays. *)

type t

val create : Params.level -> t
(** [create level] builds an empty cache with [level]'s geometry.  Capacities
    that are not an exact multiple of [block * assoc] are rounded down to at
    least one set. *)

val block_bits : t -> int
(** log2 of the block size: [line = addr lsr block_bits t]. *)

val access : t -> int -> bool
(** [access t line] looks up [line]; on a miss the line is inserted, evicting
    the LRU way of its set.  Returns [true] on a hit. *)

type probe = Miss | Hit | Hit_pending

val access_pending : t -> int -> probe
(** Like {!access}, but also maintains a per-slot "pending prefetch" flag —
    a fixed-size direct-mapped structure keyed by line address through the
    set function, replacing an unbounded hash set of prefetched lines.
    [Hit_pending] is returned exactly once per prefetch: on the first demand
    touch of a line filled by {!insert_pending}.  A demand fill (miss, or
    eviction by any fill) clears the victim slot's flag, so pendingness
    tracks residency exactly. *)

val insert : t -> int -> unit
(** [insert t line] fills [line] without counting it as a demand access (used
    by the prefetcher). Inserting an already-present line refreshes its age. *)

val insert_pending : t -> int -> unit
(** {!insert} that marks the filled line pending (prefetched, not yet
    demand-touched).  Refreshing an already-present line leaves its flag
    unchanged. *)

val mem : t -> int -> bool
(** [mem t line] is a lookup without any side effect. *)

(** Reference probes: the pre-batching implementation (mod-based set
    indexing, separate find and victim walks), kept verbatim so that the
    hierarchy's per-word reference path measures the original tracer's wall
    clock.  Decisions are identical to the optimized probes; the per-slot
    pending flags are not maintained (the reference hierarchy tracks
    prefetched lines in a side table), so drive a given cache through one
    family of probes only. *)

val access_ref : t -> int -> bool
val insert_ref : t -> int -> unit
val mem_ref : t -> int -> bool

val clear : t -> unit

val name : t -> string
