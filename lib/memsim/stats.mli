(** Counters collected by the hierarchy simulator.

    The distinction between [llc_seq_misses] (lines that were prefetched
    before their first demand access — "sequential misses" in the paper's
    terminology) and [llc_rand_misses] (demand misses) mirrors what the paper
    reads from the Nehalem performance counters in Section IV-C1. *)

type t = {
  mutable accesses : int;  (** word-granularity memory operations *)
  mutable reads : int;
  mutable writes : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable llc_accesses : int;  (** accesses that reached the LLC lookup *)
  mutable llc_seq_misses : int;  (** first demand touch of a prefetched line *)
  mutable llc_rand_misses : int;  (** demand misses served by memory *)
  mutable tlb_misses : int;
  mutable prefetches : int;  (** prefetch requests issued *)
  mutable mem_cycles : int;  (** cycles spent in the memory hierarchy *)
  mutable cpu_cycles : int;  (** cycles charged explicitly by execution engines *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val diff : t -> t -> t
(** [diff later earlier] is the counter delta between two snapshots. *)

val total_cycles : t -> int
(** Memory plus CPU cycles. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val merge : t -> t -> t
(** Compose the counters of two {e concurrent} executions (one per worker
    domain of a parallel query): traffic and miss counters are summed, while
    [mem_cycles] and [cpu_cycles] are taken from the slower operand — the
    critical path, i.e. the simulated analogue of wall-clock time.  The
    slower operand is chosen by comparing [(total_cycles, mem_cycles,
    cpu_cycles)] lexicographically, which makes [merge] associative and
    commutative (ties included). *)

val pp : Format.formatter -> t -> unit
