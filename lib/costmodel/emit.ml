module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Schema = Storage.Schema
module Physical = Relalg.Physical
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

type access_kind = Seq | Seq_cond of float | Rand

type access_desc = {
  table : string;
  attrs : int list;
  kind : access_kind;
  touches : int;
}

type enc_hint = {
  enc : Storage.Encoding.t;
  distinct : int;  (** predicted dictionary entries (Dict) *)
  runs : int;  (** predicted run count (Rle) *)
  filled : int;  (** predicted non-null entries (Sparse) *)
  exceptions : int;  (** predicted escape-coded values (For_bp) *)
}

type env = {
  cat : Catalog.t;
  layouts : (string * Layout.t) list;
  encodings : (string * (int * enc_hint) list) list;
  estimate : Expr.t -> float option;
}

let layout_of env table =
  match List.assoc_opt table env.layouts with
  | Some l -> l
  | None -> Relation.layout (Catalog.find env.cat table)

let schema_of env table = Relation.schema (Catalog.find env.cat table)

let nrows env table = Relation.nrows (Catalog.find env.cat table)

(* Like [layouts], [encodings] overrides the live encodings of named tables
   wholesale: attributes absent from a table's hint list are costed plain. *)
let hints_of env table = List.assoc_opt table env.encodings

let data_width env table a =
  Storage.Value.data_width (Schema.attr (schema_of env table) a).Schema.ty

let enc_of env table a =
  match hints_of env table with
  | Some l -> (
      match List.assoc_opt a l with
      | Some h -> h.enc
      | None -> Storage.Encoding.Plain)
  | None -> Relation.encoding (Catalog.find env.cat table) a

(* widths are encoding-aware: a dictionary-compressed attribute occupies
   only its code width in the partition, an RLE or sparse one nothing *)
let stored_width env table a =
  Storage.Encoding.stored_width
    (Schema.attr (schema_of env table) a)
    (enc_of env table a)

let part_width env table layout p =
  Array.fold_left
    (fun acc a -> acc + stored_width env table a)
    0
    (Layout.partition_attrs layout p)

let conjunct_sel env e =
  match env.estimate e with
  | Some s -> s
  | None -> Expr.default_selectivity e

let row_width_of_attrs env table attrs =
  List.fold_left (fun acc a -> acc + stored_width env table a) 0 attrs

(* predicted-or-live encoding parameters, each [Some] only when the
   attribute carries (or is hypothesized to carry) that scheme *)
let dict_params env table a =
  match hints_of env table with
  | Some l -> (
      match List.assoc_opt a l with
      | Some { enc = Storage.Encoding.Dict; distinct; _ } ->
          Some (max 1 distinct, data_width env table a)
      | _ -> None)
  | None -> Relation.dict_info (Catalog.find env.cat table) a

let sparse_params env table a =
  match hints_of env table with
  | Some l -> (
      match List.assoc_opt a l with
      | Some { enc = Storage.Encoding.Sparse; filled; _ } ->
          Some (max 1 filled, 8 + data_width env table a)
      | _ -> None)
  | None -> Relation.sparse_info (Catalog.find env.cat table) a

let rle_params env table a =
  match hints_of env table with
  | Some l -> (
      match List.assoc_opt a l with
      | Some { enc = Storage.Encoding.Rle; runs; _ } ->
          Some (max 1 runs, 8 + data_width env table a)
      | _ -> None)
  | None -> Relation.rle_info (Catalog.find env.cat table) a

let for_params env table a =
  match hints_of env table with
  | Some l -> (
      match List.assoc_opt a l with
      | Some { enc = Storage.Encoding.For_bp _; exceptions; _ } ->
          Some exceptions
      | _ -> None)
  | None ->
      Option.map fst (Relation.for_info (Catalog.find env.cat table) a)

(* decoding a dictionary-compressed attribute is a repetitive random access
   into the dictionary region, once per read value *)
let dict_decode_atoms env table accesses ~n =
  List.filter_map
    (fun (a, s) ->
      match dict_params env table a with
      | Some (ndv, value_width) ->
          let r = max 1 (int_of_float (s *. float_of_int n)) in
          Some (Pattern.rr_acc ~n:ndv ~w:value_width ~r ())
      | None -> None)
    accesses

(* binary-search probes into a side region (sparse pair list, RLE run list,
   FOR exception table): ~log2(count) probes per accessed tuple *)
let probe_atom ~count ~entry_width ~hits =
  let log2k =
    max 1
      (int_of_float
         (Float.ceil
            (Float.log (float_of_int (max 2 count)) /. Float.log 2.0)))
  in
  Pattern.rr_acc ~n:count ~w:entry_width ~r:(max 1 hits * log2k) ()

let sparse_atoms env table accesses ~n =
  List.filter_map
    (fun (a, s) ->
      match sparse_params env table a with
      | Some (filled, entry_width) ->
          Some
            (probe_atom ~count:filled ~entry_width
               ~hits:(max 1 (int_of_float (s *. float_of_int n))))
      | None -> None)
    accesses

(* point-wise RLE reads: binary search of the run list per tuple *)
let rle_probe_atoms env table accesses ~n =
  List.filter_map
    (fun (a, s) ->
      match rle_params env table a with
      | Some (runs, entry_width) ->
          Some
            (probe_atom ~count:runs ~entry_width
               ~hits:(max 1 (int_of_float (s *. float_of_int n))))
      | None -> None)
    accesses

(* scan-wise RLE reads: an unconditional access is evaluated run-granularly
   (the engines' pushdown path), so the traffic is the run list itself;
   conditional payloads fall back to per-tuple binary search *)
let rle_scan_atoms env table accesses ~n =
  let uncond, cond = List.partition (fun (_, s) -> s >= 1.0) accesses in
  List.filter_map
    (fun (a, _) ->
      match rle_params env table a with
      | Some (runs, entry_width) ->
          Some (Pattern.s_trav_rle ~n ~runs ~w:entry_width ())
      | None -> None)
    uncond
  @ rle_probe_atoms env table cond ~n

(* frame-of-reference columns travel at code width (already reflected in
   [stored_width]); reconstructing each read value is pure CPU work, plus
   binary-search probes into the exception table for escape codes *)
let for_decode_atoms env table accesses ~n =
  List.concat_map
    (fun (a, s) ->
      match for_params env table a with
      | None -> []
      | Some exceptions ->
          let reads = max 1 (int_of_float (s *. float_of_int n)) in
          let dec = Pattern.decode ~n:reads () in
          if exceptions > 0 then
            let hits =
              max 1 (int_of_float (s *. float_of_int exceptions))
            in
            [ dec; probe_atom ~count:exceptions ~entry_width:16 ~hits ]
          else [ dec ])
    accesses

let is_sparse env table a = sparse_params env table a <> None
let is_rle env table a = rle_params env table a <> None

(* width of one output row of a plan *)
let out_width env plan =
  let schema = Physical.schema env.cat plan in
  Array.fold_left (fun acc a -> acc + Schema.stored_width a) 0 schema

(* ------------------------------------------------------------------ *)
(* Scan emission                                                       *)
(* ------------------------------------------------------------------ *)

(* Group a [(attr, sel)] access list by partition and emit one atom per
   partition.  [sel] is the probability that the attribute is read for a
   given tuple (1.0 = unconditional). *)
let scan_partition_patterns env table (accesses : (int * float) list) =
  let layout = layout_of env table in
  let n = nrows env table in
  let llc_block = Memsim.Params.line_size Memsim.Params.nehalem in
  let sparse_accs, accesses =
    List.partition (fun (a, _) -> is_sparse env table a) accesses
  in
  let rle_accs, accesses =
    List.partition (fun (a, _) -> is_rle env table a) accesses
  in
  let by_part = Hashtbl.create 8 in
  List.iter
    (fun (a, s) ->
      let p = Layout.partition_of_attr layout a in
      let prev = try Hashtbl.find by_part p with Not_found -> [] in
      Hashtbl.replace by_part p ((a, s) :: prev))
    accesses;
  dict_decode_atoms env table accesses ~n
  @ for_decode_atoms env table accesses ~n
  @ sparse_atoms env table sparse_accs ~n
  @ rle_scan_atoms env table rle_accs ~n
  @ Hashtbl.fold
    (fun p attrs acc ->
      let w = part_width env table layout p in
      let uncond, cond = List.partition (fun (_, s) -> s >= 1.0) attrs in
      let u_of l = row_width_of_attrs env table (List.map fst l) in
      let pats = ref [] in
      if uncond <> [] then begin
        (* a narrow partition's lines are fetched unconditionally anyway, so
           conditional attributes in the same partition ride along *)
        let extra = if w <= llc_block then u_of cond else 0 in
        pats :=
          Pattern.s_trav ~u:(u_of uncond + extra) ~n ~w () :: !pats
      end;
      if cond <> [] && (uncond = [] || w > llc_block) then begin
        (* one conditional traversal per distinct selectivity *)
        let by_sel = Hashtbl.create 4 in
        List.iter
          (fun (a, s) ->
            let prev = try Hashtbl.find by_sel s with Not_found -> [] in
            Hashtbl.replace by_sel s (a :: prev))
          cond;
        Hashtbl.iter
          (fun s attrs ->
            pats :=
              Pattern.s_trav_cr
                ~u:(row_width_of_attrs env table attrs)
                ~n ~w ~s ()
              :: !pats)
          by_sel
      end;
      !pats @ acc)
    by_part []

(* Point accesses (index fetch): one rr_acc per touched partition. *)
let point_partition_patterns env table ~r attrs =
  let layout = layout_of env table in
  let n = max 1 (nrows env table) in
  let sparse_as, attrs = List.partition (is_sparse env table) attrs in
  let rle_as, attrs2 = List.partition (is_rle env table) attrs in
  let by_part = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let p = Layout.partition_of_attr layout a in
      let prev = try Hashtbl.find by_part p with Not_found -> [] in
      Hashtbl.replace by_part p (a :: prev))
    attrs2;
  let full a = List.map (fun x -> (x, 1.0)) a in
  dict_decode_atoms env table (full attrs2) ~n:(max 1 r)
  @ for_decode_atoms env table (full attrs2) ~n:(max 1 r)
  @ sparse_atoms env table (full sparse_as) ~n:(max 1 r)
  @ rle_probe_atoms env table (full rle_as) ~n:(max 1 r)
  @ Hashtbl.fold
    (fun p attrs acc ->
      let w = part_width env table layout p in
      Pattern.rr_acc
        ~u:(row_width_of_attrs env table attrs)
        ~n ~w ~r ()
      :: acc)
    by_part []

(* Access list of a scan predicate under short-circuit evaluation.  For a
   conjunction the i-th term's columns are read with probability
   prod_{j<i} sel(term j) (evaluation continues while terms hold); for a
   top-level disjunction with probability prod_{j<i} (1 - sel(term j))
   (evaluation continues while terms fail) — the behaviour behind the
   NAME1/NAME2 decomposition of Table IV. *)
let predicate_accesses env pred =
  let terms, continue_prob =
    match pred with
    | Expr.Or es -> (es, fun s -> 1.0 -. s)
    | _ -> (Expr.conjuncts pred, fun s -> s)
  in
  let _, accesses =
    List.fold_left
      (fun (prefix, acc) term ->
        let cols = Expr.cols term in
        let acc = List.map (fun c -> (c, prefix)) cols @ acc in
        (prefix *. continue_prob (conjunct_sel env term), acc))
      (1.0, []) terms
  in
  (* a column read by several conjuncts keeps its earliest (largest)
     probability *)
  let seen = Hashtbl.create 8 in
  List.fold_right
    (fun (c, s) acc ->
      match Hashtbl.find_opt seen c with
      | Some _ -> acc
      | None ->
          Hashtbl.add seen c ();
          (c, s) :: acc)
    (List.rev accesses) []

let descs_of_accesses table ~n accesses =
  (* group layout-independent descriptors by access probability *)
  let by_sel = Hashtbl.create 4 in
  List.iter
    (fun (a, s) ->
      let prev = try Hashtbl.find by_sel s with Not_found -> [] in
      Hashtbl.replace by_sel s (a :: prev))
    accesses;
  Hashtbl.fold
    (fun s attrs acc ->
      let kind = if s >= 1.0 then Seq else Seq_cond s in
      let touches =
        if s >= 1.0 then n
        else max 1 (int_of_float (Float.ceil (s *. float_of_int n)))
      in
      { table; attrs = List.sort_uniq compare attrs; kind; touches } :: acc)
    by_sel []

(* ------------------------------------------------------------------ *)
(* Plan traversal                                                      *)
(* ------------------------------------------------------------------ *)

let hash_entry_width env plan keys =
  let schema = Physical.schema env.cat plan in
  ignore keys;
  8
  + Array.fold_left (fun acc a -> acc + Schema.stored_width a) 0 schema

let emit_update env table access post assignments sel =
  let n = max 1 (nrows env table) in
  let matches = max 1 (int_of_float (sel *. float_of_int n)) in
  let pred_accesses =
    match post with Some p -> predicate_accesses env p | None -> []
  in
  (* right-hand sides read their columns for matching tuples only *)
  let rhs_cols =
    List.concat_map (fun (_, e) -> Expr.cols e) assignments
    |> List.sort_uniq compare
  in
  let read_accesses =
    pred_accesses
    @ List.filter_map
        (fun c ->
          if List.mem_assoc c pred_accesses then None else Some (c, sel))
        rhs_cols
  in
  let locate =
    match (access : Physical.access) with
    | Physical.Full_scan -> scan_partition_patterns env table read_accesses
    | _ ->
        let index_pat = Pattern.rr_acc ~n ~w:16 ~r:matches () in
        index_pat
        :: point_partition_patterns env table ~r:matches
             (List.map fst read_accesses)
  in
  (* in-place writes: one random access per assigned partition per match *)
  let layout = layout_of env table in
  let assigned = List.map fst assignments in
  let parts =
    List.sort_uniq compare (List.map (Layout.partition_of_attr layout) assigned)
  in
  let writes =
    List.map
      (fun p ->
        Pattern.rr_acc
          ~u:(row_width_of_attrs env table assigned)
          ~n
          ~w:(max 1 (part_width env table layout p))
          ~r:matches ())
      parts
  in
  ( Pattern.par (locate @ writes),
    {
      table;
      attrs = List.sort_uniq compare (assigned @ rhs_cols);
      kind = Rand;
      touches = matches;
    }
    :: descs_of_accesses table ~n read_accesses )

let rec go env (plan : Physical.t) ~(needed : int list) :
    Pattern.t * access_desc list =
  match plan with
  | Physical.Scan { table; access; post; sel } -> (
      let pred_accesses =
        match post with Some p -> predicate_accesses env p | None -> []
      in
      let pred_cols = List.map fst pred_accesses in
      let payload =
        List.filter (fun c -> not (List.mem c pred_cols)) needed
      in
      match access with
      | Physical.Full_scan ->
          let payload_sel = if post = None then 1.0 else sel in
          let accesses =
            pred_accesses @ List.map (fun c -> (c, payload_sel)) payload
          in
          let pats = scan_partition_patterns env table accesses in
          (Pattern.par pats, descs_of_accesses table ~n:(nrows env table) accesses)
      | Physical.Index_eq _ | Physical.Index_range _ ->
          let matches =
            max 1 (int_of_float (sel *. float_of_int (nrows env table)))
          in
          let n = max 1 (nrows env table) in
          let index_attrs =
            match access with
            | Physical.Index_eq { attrs; _ } -> attrs
            | Physical.Index_range { attr; _ } -> [ attr ]
            | Physical.Full_scan -> assert false
          in
          (* probing the index structure, then fetching the tuples *)
          let probe_depth =
            match access with
            | Physical.Index_range _ ->
                (* tree descent: log2 n nodes per fetched tuple *)
                let log2n =
                  max 1
                    (int_of_float
                       (Float.ceil (Float.log (float_of_int n) /. Float.log 2.)))
                in
                matches * log2n
            | _ -> matches
          in
          let index_pat = Pattern.rr_acc ~n ~w:16 ~r:probe_depth () in
          let fetch_cols =
            List.sort_uniq compare (needed @ pred_cols)
          in
          let fetch =
            point_partition_patterns env table ~r:matches fetch_cols
          in
          ( Pattern.par (index_pat :: fetch),
            (* the index probe and the tuple fetches are both point
               accesses: [matches] random touches each *)
            [
              { table; attrs = index_attrs; kind = Rand; touches = matches };
              {
                table;
                attrs = List.sort_uniq compare fetch_cols;
                kind = Rand;
                touches = matches;
              };
            ] ))
  | Physical.Select { child; pred; _ } ->
      (* tuples are register-resident above the scan; only column fetches
         from the child matter *)
      let child_needed = List.sort_uniq compare (needed @ Expr.cols pred) in
      go env child ~needed:child_needed
  | Physical.Project { child; exprs } ->
      let used =
        List.concat_map (fun (e, _) -> Expr.cols e) exprs
        |> List.sort_uniq compare
      in
      let pat, descs = go env child ~needed:used in
      let card = int_of_float (Physical.cardinality env.cat plan) in
      let w = max 8 (out_width env plan) in
      (* materializing the result *)
      let out_pat =
        if card > 0 then Pattern.s_trav ~n:card ~w () else Pattern.empty
      in
      (Pattern.seq [ pat; out_pat ], descs)
  | Physical.Hash_join { build; probe; build_keys; probe_keys; _ } ->
      let build_arity = Array.length (Physical.schema env.cat build) in
      let needed_build =
        List.sort_uniq compare
          (build_keys @ List.filter (fun c -> c < build_arity) needed)
      in
      let needed_probe =
        List.sort_uniq compare
          (probe_keys
          @ List.filter_map
              (fun c ->
                if c >= build_arity then Some (c - build_arity) else None)
              needed)
      in
      let build_pat, build_descs = go env build ~needed:needed_build in
      let probe_pat, probe_descs = go env probe ~needed:needed_probe in
      let build_card =
        max 1 (int_of_float (Physical.cardinality env.cat build))
      in
      let probe_card =
        max 1 (int_of_float (Physical.cardinality env.cat probe))
      in
      let ew = hash_entry_width env build build_keys in
      let ht_build = Pattern.r_trav ~n:build_card ~w:ew () in
      let ht_probe = Pattern.rr_acc ~n:build_card ~w:ew ~r:probe_card () in
      ( Pattern.seq
          [ Pattern.par [ build_pat; ht_build ]; Pattern.par [ probe_pat; ht_probe ] ],
        build_descs @ probe_descs )
  | Physical.Group_by { child; keys; aggs; n_groups } ->
      let used =
        (List.concat_map (fun (e, _) -> Expr.cols e) keys
        @ List.concat_map
            (fun (a : Aggregate.t) ->
              match a.Aggregate.expr with Some e -> Expr.cols e | None -> [])
            aggs)
        |> List.sort_uniq compare
      in
      let pat, descs = go env child ~needed:used in
      let card = max 1 (int_of_float (Physical.cardinality env.cat child)) in
      let groups = max 1 (int_of_float n_groups) in
      let ew = 16 + (16 * List.length aggs) in
      let agg_pat = Pattern.rr_acc ~n:groups ~w:ew ~r:card () in
      (Pattern.par [ pat; agg_pat ], descs)
  | Physical.Sort { child; keys } ->
      let child_arity = Array.length (Physical.schema env.cat child) in
      let all = List.init child_arity Fun.id in
      let child_needed = List.sort_uniq compare (needed @ List.map fst keys @ all) in
      let pat, descs = go env child ~needed:child_needed in
      let card = max 1 (int_of_float (Physical.cardinality env.cat child)) in
      let w = max 8 (out_width env child) in
      let log2n =
        max 1
          (int_of_float
             (Float.ceil (Float.log (float_of_int card) /. Float.log 2.)))
      in
      ( Pattern.seq
          [
            pat;
            Pattern.s_trav ~n:card ~w ();
            Pattern.rr_acc ~n:card ~w ~r:(card * log2n) ();
          ],
        descs )
  | Physical.Limit { child; _ } -> go env child ~needed
  | Physical.Insert { table; values } ->
      let schema = schema_of env table in
      let layout = layout_of env table in
      let n = max 1 (nrows env table) in
      let parts = Layout.partitions layout in
      let pats =
        Array.to_list
          (Array.map
             (fun attrs ->
               let w =
                 Array.fold_left
                   (fun acc a -> acc + stored_width env table a)
                   0 attrs
               in
               Pattern.rr_acc ~n ~w:(max 1 w) ~r:1 ())
             parts)
      in
      let index_pats =
        List.map
          (fun (_, _idx) -> Pattern.rr_acc ~n ~w:16 ~r:1 ())
          (Catalog.indexes env.cat table)
      in
      ignore values;
      ( Pattern.par (pats @ index_pats),
        [
          {
            table;
            attrs = List.init (Schema.arity schema) Fun.id;
            kind = Rand;
            touches = 1;
          };
        ] )
  | Physical.Update { table; access; post; assignments; sel } ->
      emit_update env table access post assignments sel

let emit ?(layouts = []) ?(encodings = []) ?(estimate = fun _ -> None) cat
    plan =
  let env = { cat; layouts; encodings; estimate } in
  let arity = Array.length (Physical.schema cat plan) in
  let needed = List.init arity Fun.id in
  go env plan ~needed

let pp_desc cat ppf d =
  let schema = Relation.schema (Catalog.find cat d.table) in
  let names =
    List.map (fun a -> (Schema.attr schema a).Schema.name) d.attrs
  in
  let kind =
    match d.kind with
    | Seq -> "seq"
    | Seq_cond s -> Printf.sprintf "seq_cond(%.4g)" s
    | Rand -> "rand"
  in
  Format.fprintf ppf "%s{%s}:%s" d.table (String.concat "," names) kind
