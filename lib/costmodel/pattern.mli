(** The memory access pattern algebra of the Generic Cost Model
    (Manegold et al.), extended with the paper's
    Sequential Traversal / Conditional Read atom (Section IV-C1).

    Atoms describe how a region of [n] data items of width [w] bytes is
    accessed; [u <= w] bytes of each accessed item are actually used.
    Complex patterns compose atoms sequentially ([⊕], one after the other)
    or concurrently ([⊙], interleaved, sharing the caches). *)

type atom =
  | S_trav of { n : int; w : int; u : int }
      (** sequential traversal, every item accessed *)
  | R_trav of { n : int; w : int; u : int }
      (** traversal of all items in random order *)
  | Rr_acc of { n : int; w : int; u : int; r : int }
      (** [r] repetitive random accesses into the region *)
  | S_trav_cr of { n : int; w : int; u : int; s : float }
      (** the new atom: sequential traversal where each item is read only
          with probability [s] (a selective projection) *)
  | S_trav_rle of { n : int; runs : int; w : int }
      (** run-granular traversal of a run-length-encoded column covering
          [n] tuples in [runs] run entries of [w] bytes: the traffic is the
          run list, not the tuples *)
  | Decode of { n : int }
      (** [n] pure-CPU value reconstructions (frame-of-reference
          arithmetic): one cycle each, no memory traffic *)

type t =
  | Atom of atom
  | Seq of t list  (** ⊕ *)
  | Par of t list  (** ⊙ *)

val s_trav : ?u:int -> n:int -> w:int -> unit -> t
val r_trav : ?u:int -> n:int -> w:int -> unit -> t
val rr_acc : ?u:int -> n:int -> w:int -> r:int -> unit -> t
val s_trav_cr : ?u:int -> n:int -> w:int -> s:float -> unit -> t
val s_trav_rle : n:int -> runs:int -> w:int -> unit -> t
val decode : n:int -> unit -> t

val seq : t list -> t
(** Flattening constructor for ⊕ (drops empty children). *)

val par : t list -> t
(** Flattening constructor for ⊙. *)

val empty : t
(** The no-op pattern ([Seq []]). *)

val atoms : t -> atom list

val pp : Format.formatter -> t -> unit
(** Paper notation, e.g.
    [s_trav(26214400,4) ⊙ s_trav_cr(26214400,16,0.01)]. *)

val to_string : t -> string
