(** End-to-end query cost estimation: plan → pattern program → cycles. *)

val query_cost :
  ?layouts:(string * Storage.Layout.t) list ->
  ?encodings:(string * (int * Emit.enc_hint) list) list ->
  ?estimate:(Relalg.Expr.t -> float option) ->
  ?params:Memsim.Params.t ->
  ?additive:bool ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  float
(** Estimated cycles for one execution of the plan under the given (or
    stored) layouts.  [additive] switches to the original non-prefetch-aware
    cost function (for ablations). *)

val workload_cost :
  ?layouts:(string * Storage.Layout.t) list ->
  ?encodings:(string * (int * Emit.enc_hint) list) list ->
  ?estimate:(Relalg.Expr.t -> float option) ->
  ?params:Memsim.Params.t ->
  ?additive:bool ->
  Storage.Catalog.t ->
  (Relalg.Physical.t * float) list ->
  float
(** Frequency-weighted sum over a workload of (plan, frequency) pairs. *)

val explain :
  ?layouts:(string * Storage.Layout.t) list ->
  ?encodings:(string * (int * Emit.enc_hint) list) list ->
  ?estimate:(Relalg.Expr.t -> float option) ->
  ?params:Memsim.Params.t ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  string
(** Human-readable emission: the pattern program, the access descriptors,
    and the cost estimate. *)
