type atom =
  | S_trav of { n : int; w : int; u : int }
  | R_trav of { n : int; w : int; u : int }
  | Rr_acc of { n : int; w : int; u : int; r : int }
  | S_trav_cr of { n : int; w : int; u : int; s : float }
  | S_trav_rle of { n : int; runs : int; w : int }
  | Decode of { n : int }

type t = Atom of atom | Seq of t list | Par of t list

let s_trav ?u ~n ~w () =
  Atom (S_trav { n; w; u = Option.value u ~default:w })

let r_trav ?u ~n ~w () =
  Atom (R_trav { n; w; u = Option.value u ~default:w })

let rr_acc ?u ~n ~w ~r () =
  Atom (Rr_acc { n; w; u = Option.value u ~default:w; r })

let s_trav_cr ?u ~n ~w ~s () =
  Atom (S_trav_cr { n; w; u = Option.value u ~default:w; s })

let s_trav_rle ~n ~runs ~w () = Atom (S_trav_rle { n; runs; w })
let decode ~n () = Atom (Decode { n })

let is_empty = function Seq [] | Par [] -> true | _ -> false

let seq ts =
  let ts =
    List.concat_map
      (function Seq inner -> inner | t -> if is_empty t then [] else [ t ])
      (List.filter (fun t -> not (is_empty t)) ts)
  in
  match ts with [ t ] -> t | ts -> Seq ts

let par ts =
  let ts =
    List.concat_map
      (function Par inner -> inner | t -> if is_empty t then [] else [ t ])
      (List.filter (fun t -> not (is_empty t)) ts)
  in
  match ts with [ t ] -> t | ts -> Par ts

let empty = Seq []

let rec atoms = function
  | Atom a -> [ a ]
  | Seq ts | Par ts -> List.concat_map atoms ts

let pp_atom ppf = function
  | S_trav { n; w; u } ->
      if u = w then Format.fprintf ppf "s_trav(%d,%d)" n w
      else Format.fprintf ppf "s_trav(%d,%d,u=%d)" n w u
  | R_trav { n; w; u } ->
      if u = w then Format.fprintf ppf "r_trav(%d,%d)" n w
      else Format.fprintf ppf "r_trav(%d,%d,u=%d)" n w u
  | Rr_acc { n; w; u; r } ->
      if u = w then Format.fprintf ppf "rr_acc(%d,%d,%d)" n w r
      else Format.fprintf ppf "rr_acc(%d,%d,%d,u=%d)" n w r u
  | S_trav_cr { n; w; u; s } ->
      if u = w then Format.fprintf ppf "s_trav_cr(%d,%d,s=%.4g)" n w s
      else Format.fprintf ppf "s_trav_cr(%d,%d,u=%d,s=%.4g)" n w u s
  | S_trav_rle { n; runs; w } ->
      Format.fprintf ppf "s_trav_rle(%d,runs=%d,%d)" n runs w
  | Decode { n } -> Format.fprintf ppf "decode(%d)" n

let rec pp ppf = function
  | Atom a -> pp_atom ppf a
  | Seq [] -> Format.pp_print_string ppf "ε"
  | Seq ts ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " (+) ")
           pp)
        ts
  | Par [] -> Format.pp_print_string ppf "ε"
  | Par ts ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " (.) ")
           pp)
        ts

let to_string t = Format.asprintf "%a" pp t
