type level_misses = { total : float; seq : float; rand : float }

type t = { m0 : float; levels : level_misses array; tlb : float }

let cardenas ~r ~n =
  if n <= 0.0 || r <= 0.0 then 0.0
  else n *. (1.0 -. ((1.0 -. (1.0 /. n)) ** r))

let p_access ~s ~per_line =
  1.0 -. ((1.0 -. s) ** float_of_int per_line)

let p_seq ~s ~per_line =
  let p = p_access ~s ~per_line in
  p *. p

let p_rand ~s ~per_line = p_access ~s ~per_line -. p_seq ~s ~per_line

let words u = float_of_int (max 1 ((u + 7) / 8))

(* Lines actually touched when each accessed item uses only [u] of its [w]
   bytes: for narrow items (w < B) whole region lines; for wide items only
   ceil(u/B) lines per item. *)
let touched_lines ~block ~n ~w ~u =
  let region_lines = Float.max 1.0 (float_of_int n *. float_of_int w /. block) in
  let per_item = Float.max 1.0 (Float.of_int u /. block) in
  Float.min region_lines (float_of_int n *. per_item)

(* Misses of one atom at one cache level. *)
let misses_at_level ~capacity_share (lvl : Memsim.Params.level) atom =
  let block = float_of_int lvl.Memsim.Params.block in
  let capacity = capacity_share *. float_of_int lvl.Memsim.Params.capacity in
  match (atom : Pattern.atom) with
  | Pattern.S_trav { n; w; u } ->
      (* cold-cache compulsory misses on every touched line; all prefetched
         thanks to the constant stride *)
      let lines = touched_lines ~block ~n ~w ~u in
      { total = lines; seq = lines; rand = 0.0 }
  | Pattern.R_trav { n; w; u } ->
      let lines = touched_lines ~block ~n ~w ~u in
      { total = lines; seq = 0.0; rand = lines }
  | Pattern.Rr_acc { n; w; r; u } ->
      let region = float_of_int n *. float_of_int w in
      let lines = touched_lines ~block ~n ~w ~u in
      let unique = cardenas ~r:(float_of_int r) ~n:lines in
      let total =
        if region <= capacity then
          (* the whole region stays resident: compulsory misses only *)
          unique
        else
          (* steady state: re-accesses hit only with probability
             capacity/region *)
          let revisits = Float.max 0.0 (float_of_int r -. unique) in
          unique +. (revisits *. (1.0 -. (capacity /. region)))
      in
      { total; seq = 0.0; rand = total }
  | Pattern.S_trav_cr { n; w; s; u } ->
      let lines = touched_lines ~block ~n ~w ~u in
      let per_line = max 1 (lvl.Memsim.Params.block / max 1 w) in
      let p = p_access ~s ~per_line in
      let ps = p_seq ~s ~per_line in
      let pr = p_rand ~s ~per_line in
      { total = p *. lines; seq = ps *. lines; rand = pr *. lines }
  | Pattern.S_trav_rle { runs; w; _ } ->
      (* the traffic is the run list itself: a sequential traversal of
         [runs] entries of [w] bytes, however many tuples the runs cover *)
      let lines = touched_lines ~block ~n:runs ~w ~u:w in
      { total = lines; seq = lines; rand = 0.0 }
  | Pattern.Decode _ -> { total = 0.0; seq = 0.0; rand = 0.0 }

let atom_m0 atom =
  match (atom : Pattern.atom) with
  | Pattern.S_trav { n; u; _ } | Pattern.R_trav { n; u; _ } ->
      float_of_int n *. words u
  | Pattern.Rr_acc { r; u; _ } -> float_of_int r *. words u
  | Pattern.S_trav_cr { n; u; s; _ } ->
      (* conditional reads execute only for selected items: the driving
         per-tuple iteration is charged by the pattern's unconditional
         companion atom (the predicate traversal), not here *)
      float_of_int n *. s *. (1.0 +. words u)
  | Pattern.S_trav_rle { runs; w; _ } ->
      (* run-granular work: one processed item per run entry *)
      float_of_int runs *. words w
  | Pattern.Decode { n } -> float_of_int n

let atom_misses ?(capacity_share = 1.0) (params : Memsim.Params.t) atom =
  let levels =
    Array.map
      (fun lvl -> misses_at_level ~capacity_share lvl atom)
      params.Memsim.Params.levels
  in
  let tlb =
    (misses_at_level ~capacity_share params.Memsim.Params.tlb atom).total
  in
  { m0 = atom_m0 atom; levels; tlb }
