let query_cost ?layouts ?encodings ?estimate
    ?(params = Memsim.Params.nehalem) ?(additive = false) cat plan =
  let pattern, _ = Emit.emit ?layouts ?encodings ?estimate cat plan in
  Cost_function.cost ~additive params pattern

let workload_cost ?layouts ?encodings ?estimate ?params ?additive cat
    queries =
  List.fold_left
    (fun acc (plan, freq) ->
      acc
      +. freq
         *. query_cost ?layouts ?encodings ?estimate ?params ?additive cat
              plan)
    0.0 queries

let explain ?layouts ?encodings ?estimate ?(params = Memsim.Params.nehalem)
    cat plan =
  let pattern, descs = Emit.emit ?layouts ?encodings ?estimate cat plan in
  let cost = Cost_function.cost params pattern in
  Format.asprintf
    "@[<v>pattern: %a@,descriptors: %a@,estimated cycles: %.0f@]" Pattern.pp
    pattern
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (Emit.pp_desc cat))
    descs cost
