(** Translation of physical plans into access-pattern programs (Table II,
    Section IV-D).

    The plan is traversed like the JiT code generator would traverse it, and
    each operator appends ("emits") its access patterns: the cost model is
    treated as a programmable machine whose instructions are the atomic
    patterns.  Emission is layout-aware: a scan of a partially decomposed
    relation contributes one atom per touched partition, with the partition
    tuple width as the region width — this is what lets the same query be
    costed under hypothetical layouts during schema decomposition.

    Alongside the pattern, emission collects layout-{e independent} access
    descriptors — which attribute sets a query touches together, in which
    manner, at which selectivity.  The layout optimizer derives its extended
    reasonable cuts from these (Section V-A). *)

type access_kind =
  | Seq  (** unconditional sequential access *)
  | Seq_cond of float  (** conditional access at the given probability *)
  | Rand  (** point access (index lookups, updates) *)

type access_desc = {
  table : string;
  attrs : int list;
  kind : access_kind;
  touches : int;
      (** estimated number of item accesses behind the descriptor: the row
          count for [Seq], the expected match count for [Seq_cond] and the
          repetition count for [Rand] — what the layout advisor's integer
          program needs to price a fragment touch without re-emitting the
          plan *)
}

type enc_hint = {
  enc : Storage.Encoding.t;
  distinct : int;  (** predicted dictionary entries (Dict) *)
  runs : int;  (** predicted run count (Rle) *)
  filled : int;  (** predicted non-null entries (Sparse) *)
  exceptions : int;  (** predicted escape-coded values (For_bp) *)
}
(** A hypothetical per-attribute encoding with the statistics the compressed
    atoms need — lets the optimizer cost compression schemes without
    materializing them. *)

val emit :
  ?layouts:(string * Storage.Layout.t) list ->
  ?encodings:(string * (int * enc_hint) list) list ->
  ?estimate:(Relalg.Expr.t -> float option) ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  Pattern.t * access_desc list
(** [layouts] overrides the stored layout of named tables (used by the
    optimizer to evaluate candidate decompositions); [encodings] likewise
    overrides their live per-attribute encodings wholesale — attributes
    absent from a listed table's hints are costed plain; [estimate] refines
    per-conjunct selectivities. *)

val pp_desc : Storage.Catalog.t -> Format.formatter -> access_desc -> unit
