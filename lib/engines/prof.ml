(* Shared profiling hooks for the execution engines.

   Engines consult [on] while constructing their operator machinery and
   only wrap thunks when a profiling session is installed, so with
   profiling disabled the executed code is exactly the unwrapped seed
   path.  Span ids are plan paths ([child] appends ".i"), which keeps
   attribution stable across engines regardless of their dynamic call
   shape (pull vs push). *)

module Physical = Relalg.Physical

let on = Obs.Profile.on
let child = Obs.Span.child
let root = Obs.Span.root_id
let phase = Obs.Profile.phase

let label (p : Physical.t) =
  match p with
  | Physical.Scan { table; access; _ } -> (
      match access with
      | Physical.Full_scan -> "scan " ^ table
      | Physical.Index_eq _ | Physical.Index_range _ -> "index scan " ^ table)
  | Physical.Select _ -> "select"
  | Physical.Project _ -> "project"
  | Physical.Hash_join _ -> "hash join"
  | Physical.Group_by _ -> "group by"
  | Physical.Sort _ -> "sort"
  | Physical.Limit _ -> "limit"
  | Physical.Update { table; _ } -> "update " ^ table
  | Physical.Insert { table; _ } -> "insert " ^ table

let op path plan f = Obs.Profile.op ~id:path ~label:(label plan) f
let op_id path ~label f = Obs.Profile.op ~id:path ~label f
let phase_at path name f = Obs.Profile.phase_at ~id:path name f

(* Construction-gated wrappers for push-based engines: [consume] wraps an
   operator's per-row body in its own span, [consume_phase] in a named
   phase of that operator, [thunk] wraps a pipeline driver. *)
let consume path plan f =
  if on () then fun row -> op path plan (fun () -> f row) else f

let consume_phase path name f =
  if on () then fun row -> phase_at path name (fun () -> f row) else f

let thunk path plan f = if on () then fun () -> op path plan f else f
