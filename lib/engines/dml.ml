module Value = Storage.Value
module Relation = Storage.Relation
module Catalog = Storage.Catalog
module Physical = Relalg.Physical
module Expr = Relalg.Expr

let index_tids cat params table access =
  let rel = Catalog.find cat table in
  match (access : Physical.access) with
  | Physical.Full_scan -> None
  | Physical.Index_eq { attrs; keys } -> (
      let key_values =
        List.map (fun e -> Expr.eval e ~params (fun _ -> assert false)) keys
      in
      match Catalog.find_index cat table ~attrs with
      | Some idx -> Some (Storage.Index.lookup_eq idx rel key_values)
      | None -> assert false)
  | Physical.Index_range { attr; lo; hi } -> (
      let ev e = Expr.eval e ~params (fun _ -> assert false) in
      match Catalog.find_index cat table ~attrs:[ attr ] with
      | Some idx -> Some (Storage.Index.lookup_range idx ~lo:(ev lo) ~hi:(ev hi))
      | None -> assert false)

let update ~per_value ~call_cost cat ~params ~table ~access ~post ~assignments
    =
  let rel = Catalog.find cat table in
  let hier = Catalog.hier cat in
  let charge n = Runtime.charge hier n in
  let updated = ref 0 in
  let visit tid =
    charge call_cost;
    let col i =
      charge per_value;
      Relation.get rel tid i
    in
    let matches =
      match post with
      | None -> true
      | Some pred -> Expr.truthy (Expr.eval pred ~params col)
    in
    if matches then begin
      (* evaluate every right-hand side against the OLD tuple first *)
      let new_values =
        List.map (fun (a, e) -> (a, Expr.eval e ~params col)) assignments
      in
      List.iter
        (fun (a, v) ->
          charge per_value;
          Relation.set rel tid a v;
          Catalog.notify_update cat table ~tid ~attr:a ~value:v)
        new_values;
      incr updated
    end
  in
  Catalog.in_txn cat @@ fun () ->
  (match index_tids cat params table access with
  | Some tids -> List.iter visit tids
  | None ->
      for tid = 0 to Relation.nrows rel - 1 do
        visit tid
      done);
  if !updated > 0 then
    Catalog.rebuild_indexes_for cat table ~attrs:(List.map fst assignments);
  !updated
