(* Compiled query pipelines: emit a C99 translation unit per plan
   (C_emitter.emit_unit), build it with the system cc into a shared
   object, dlopen it and run the [mrdb_query] entry point directly over
   the relation's partition bytes.

   Objects are cached twice: a process-local table maps source digests to
   resolved function pointers, and the object files themselves live in a
   digest-named cache directory so repeated processes skip the cc run.
   Anything outside the compiled subset — or any emission, compile or
   load failure — falls back to the interpreted {!Jit} engine, so the
   engine is always total. *)

module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Value = Storage.Value
module Physical = Relalg.Physical

external dlopen_stub : string -> nativeint = "mrdb_dlopen_stub"
external dlsym_stub : nativeint -> string -> nativeint = "mrdb_dlsym_stub"
external dlclose_stub : nativeint -> unit = "mrdb_dlclose_stub"

external call_query :
  nativeint -> Bytes.t array -> int array -> int -> Bytes.t -> int
  = "mrdb_call_query_stub"

(* ---------------- metrics ---------------- *)

let cache_hits =
  lazy
    (Obs.Metrics.counter "mrdb_compiled_cache_hits_total"
       ~help:"Compiled pipeline runs served from the object cache")

let cache_misses =
  lazy
    (Obs.Metrics.counter "mrdb_compiled_cache_misses_total"
       ~help:"Compiled pipeline runs that invoked the C compiler")

let fallbacks =
  lazy
    (Obs.Metrics.counter "mrdb_compiled_fallbacks_total"
       ~help:"Compiled-engine runs served by the interpreted fallback")

let compile_seconds =
  lazy
    (Obs.Metrics.histogram "mrdb_compiled_compile_seconds"
       ~help:"Wall time of cc invocations for compiled pipelines")

(* ---------------- compiler availability ---------------- *)

let cc_name () =
  match Sys.getenv_opt "MRDB_CC" with
  | Some c when c <> "" -> c
  | _ -> "cc"

(* One probe per process (per compiler name): does the compiler run at
   all?  [MRDB_NO_CC] is consulted on every call so tests can force the
   fallback path without restarting. *)
let probed : (string, bool) Hashtbl.t = Hashtbl.create 4
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let cc_available () =
  match Sys.getenv_opt "MRDB_NO_CC" with
  | Some ("" | "0") | None ->
      let cc = cc_name () in
      with_lock (fun () ->
          match Hashtbl.find_opt probed cc with
          | Some ok -> ok
          | None ->
              let ok =
                Sys.command
                  (Printf.sprintf "%s --version >/dev/null 2>&1"
                     (Filename.quote cc))
                = 0
              in
              Hashtbl.add probed cc ok;
              ok)
  | Some _ -> false

(* ---------------- object cache ---------------- *)

let cache_dir () =
  match Sys.getenv_opt "MRDB_COMPILE_CACHE" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "mrdb-compiled"

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

(* digest -> resolved [mrdb_query] pointer; [None] records a plan whose
   compile or load failed, so we do not retry it every run. *)
let fns : (string, nativeint option) Hashtbl.t = Hashtbl.create 16

let reset_cache () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ fn ->
          ignore fn (* handles stay open; objects are process-lifetime *))
        fns;
      Hashtbl.reset fns;
      Hashtbl.reset probed)

let compile_object ~cc ~src_path ~obj_path =
  let tmp = Printf.sprintf "%s.%d.tmp" obj_path (Unix.getpid ()) in
  let cmd =
    Printf.sprintf "%s -O2 -fPIC -shared -o %s %s >/dev/null 2>&1"
      (Filename.quote cc) (Filename.quote tmp) (Filename.quote src_path)
  in
  let t0 = Unix.gettimeofday () in
  let rc = Sys.command cmd in
  Obs.Metrics.observe (Lazy.force compile_seconds) (Unix.gettimeofday () -. t0);
  if rc = 0 then begin
    Sys.rename tmp obj_path;
    true
  end
  else begin
    (try Sys.remove tmp with Sys_error _ -> ());
    false
  end

let write_source path source =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  output_string oc source;
  close_out oc;
  Sys.rename tmp path

(* Resolve the entry point for [source], compiling at most once per
   digest per process.  Returns [None] when no compiler is available or
   the compile/load failed (recorded, so the cost is paid once). *)
let lookup_fn source =
  if not (cc_available ()) then None
  else
    let digest = Digest.to_hex (Digest.string source) in
    with_lock (fun () ->
        match Hashtbl.find_opt fns digest with
        | Some fn -> fn
        | None ->
            let fn =
              try
                let dir = cache_dir () in
                ensure_dir dir;
                let obj = Filename.concat dir (digest ^ ".so") in
                let ok =
                  if Sys.file_exists obj then begin
                    Obs.Metrics.incr (Lazy.force cache_hits);
                    true
                  end
                  else begin
                    Obs.Metrics.incr (Lazy.force cache_misses);
                    let src = Filename.concat dir (digest ^ ".c") in
                    write_source src source;
                    compile_object ~cc:(cc_name ()) ~src_path:src
                      ~obj_path:obj
                  end
                in
                if not ok then None
                else
                  let h = dlopen_stub obj in
                  if h = 0n then None
                  else
                    let fn = dlsym_stub h "mrdb_query" in
                    if fn = 0n then begin
                      dlclose_stub h;
                      None
                    end
                    else Some fn
              with Sys_error _ | Unix.Unix_error _ -> None
            in
            Hashtbl.add fns digest fn;
            fn)

(* ---------------- execution ---------------- *)

let decode_rows out ~rowcount ~out_arity =
  let rows = ref [] in
  for r = rowcount - 1 downto 0 do
    let base = 8 + (r * out_arity * 9) in
    let row =
      Array.init out_arity (fun i ->
          let off = base + (i * 9) in
          let tag = Char.code (Bytes.get out off) in
          let bits = Bytes.get_int64_le out (off + 1) in
          match tag with
          | 0 -> Value.Null
          | 1 -> Value.VInt (Int64.to_int bits)
          | 2 -> Value.VFloat (Int64.float_of_bits bits)
          | 3 -> Value.VBool (bits <> 0L)
          | 4 -> Value.VDate (Int64.to_int bits)
          | _ -> invalid_arg "Compiled: bad tag in result buffer")
    in
    rows := row :: !rows
  done;
  !rows

exception Fallback_needed

let execute_fn fn cat ~(info : C_emitter.unit_info) ~columns =
  let rel = Catalog.find cat info.C_emitter.table in
  let np = Relation.n_parts rel in
  if np <> info.C_emitter.n_parts then raise Fallback_needed;
  let parts =
    Array.init np (fun p ->
        Storage.Buffer.unsafe_bytes (Relation.part_buffer rel p))
  in
  let offs = Array.init np (fun p -> Relation.part_row_offset rel p) in
  let nrows = Relation.nrows rel in
  let out = ref (Bytes.create 65536) in
  let need = ref (call_query fn parts offs nrows !out) in
  if !need < 0 then raise Fallback_needed;
  if !need > Bytes.length !out then begin
    out := Bytes.create !need;
    need := call_query fn parts offs nrows !out;
    if !need < 0 || !need > Bytes.length !out then raise Fallback_needed
  end;
  let rowcount = Int64.to_int (Bytes.get_int64_le !out 0) in
  {
    Runtime.columns;
    rows = decode_rows !out ~rowcount ~out_arity:info.C_emitter.out_arity;
  }

let fallback cat plan ~params () =
  Obs.Metrics.incr (Lazy.force fallbacks);
  Jit.run cat plan ~params

(* Compile once, step many times: the returned thunk re-reads the
   relation's row window on every call, so it serves as a {!Parallel}
   preparer — morsel reslicing moves [row_base]/[nrows] between calls. *)
let prepare cat plan ~params =
  let path = Prof.child Prof.root 0 in
  let emitted =
    Prof.phase_at path "#compile" (fun () ->
        match C_emitter.emit_unit cat plan ~params with
        | Error _ -> None
        | Ok info -> (
            match lookup_fn info.C_emitter.source with
            | None -> None
            | Some fn -> Some (fn, info)))
  in
  match emitted with
  | None -> fun () -> fallback cat plan ~params ()
  | Some (fn, info) ->
      let schema = Physical.schema cat plan in
      let columns =
        Array.map (fun (a : Storage.Schema.attr) -> a.Storage.Schema.name)
          schema
      in
      fun () ->
        Prof.op_id path ~label:"compiled pipeline" (fun () ->
            try execute_fn fn cat ~info ~columns
            with Fallback_needed -> fallback cat plan ~params ())

let run cat plan ~params = prepare cat plan ~params ()
