module Value = Storage.Value
module Aggregate = Relalg.Aggregate

type result = { columns : string array; rows : Value.t array list }

let pp_result ppf r =
  Format.fprintf ppf "%s@." (String.concat " | " (Array.to_list r.columns));
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@."
        (String.concat " | "
           (Array.to_list (Array.map Value.to_display row))))
    r.rows

let concat_results = function
  | [] -> invalid_arg "Runtime.concat_results: no results"
  | first :: _ as results ->
      List.iter
        (fun r ->
          if r.columns <> first.columns then
            invalid_arg "Runtime.concat_results: column mismatch")
        results;
      {
        columns = first.columns;
        rows = List.concat_map (fun r -> r.rows) results;
      }

let charge hier n =
  match hier with Some h -> Memsim.Hierarchy.add_cpu h n | None -> ()

(* Recognize a predicate conjunct of the shape [Col c <op> rhs] with [rhs]
   column-free and integer-valued, over a plain non-nullable int column of
   [rel]: engines can then evaluate it on unboxed ints read in runs.
   [Value.compare] on any mix of [VInt]/[VDate] is plain int comparison, so
   the unboxed test is exact. *)
let simple_int_cmp ~params rel conj =
  let module Expr = Relalg.Expr in
  match conj with
  | Expr.Cmp (op, Expr.Col c, rhs)
    when Expr.cols rhs = [] && Storage.Relation.int_run_readable rel c -> (
      match Expr.eval rhs ~params (fun _ -> assert false) with
      | Value.VInt r | Value.VDate r ->
          let test : int -> bool =
            match op with
            | Expr.Eq -> fun v -> v = r
            | Expr.Ne -> fun v -> v <> r
            | Expr.Lt -> fun v -> v < r
            | Expr.Le -> fun v -> v <= r
            | Expr.Gt -> fun v -> v > r
            | Expr.Ge -> fun v -> v >= r
          in
          Some (c, test)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Execution directly on compressed partitions                         *)
(* ------------------------------------------------------------------ *)

(* A predicate whose only column is [c]: evaluating it against a candidate
   value of that column is exact for any conjunct shape. *)
let single_col_pred ~params conj =
  let module Expr = Relalg.Expr in
  match Expr.cols conj with
  | [ c ] ->
      let vtest v =
        Expr.truthy
          (Expr.eval conj ~params (fun col ->
               if col = c then v else Value.Null))
      in
      Some (c, vtest)
  | _ -> None

let box_of rel c =
  match (Storage.Schema.attr (Storage.Relation.schema rel) c).Storage.Schema.ty
  with
  | Value.Date -> fun v -> Value.VDate v
  | _ -> fun v -> Value.VInt v

(* Range pruning against the widen-only FOR bounds: the bounds are a
   superset of the live values, so both the all-pass and the none-pass
   verdicts are sound. *)
let prune_for op r (fmin, fmax) =
  let module Expr = Relalg.Expr in
  match (op : Expr.cmp) with
  | Expr.Lt -> if fmax < r then `All else if fmin >= r then `None else `Scan
  | Expr.Le -> if fmax <= r then `All else if fmin > r then `None else `Scan
  | Expr.Gt -> if fmin > r then `All else if fmax <= r then `None else `Scan
  | Expr.Ge -> if fmin >= r then `All else if fmax < r then `None else `Scan
  | Expr.Eq ->
      if fmin = r && fmax = r then `All
      else if r < fmin || r > fmax then `None
      else `Scan
  | Expr.Ne ->
      if r < fmin || r > fmax then `All
      else if fmin = r && fmax = r then `None
      else `Scan

let int_cmp_shape ~params conj =
  let module Expr = Relalg.Expr in
  match conj with
  | Expr.Cmp (op, Expr.Col c, rhs) when Expr.cols rhs = [] -> (
      match Expr.eval rhs ~params (fun _ -> assert false) with
      | Value.VInt r | Value.VDate r -> Some (c, op, r)
      | _ -> None)
  | _ -> None

let scan_block = 1024

(* Evaluate a single-column predicate directly on the column's compressed
   representation during a full scan, emitting maximal ranges of surviving
   tids (ascending, view-relative).  The third emission argument carries the
   column's value when the whole range is known to share it (RLE runs), so
   callers can pre-populate row caches.  Returns [None] when the column is
   not stored in a scannable compressed form — callers fall back to their
   generic (decode-per-tuple) paths. *)
let compressed_filter_range ?hier ~params ~per_value rel conj =
  let module Relation = Storage.Relation in
  match single_col_pred ~params conj with
  | None -> None
  | Some (c, vtest) ->
      if Relation.rle_readable rel c then
        Some
          ( c,
            fun emit ->
              (* one boxed predicate evaluation per maximal run.  The row
                 count is read per invocation: a prepared pipeline re-runs
                 this scan over a resliced morsel view. *)
              let n = Relation.nrows rel in
              if n > 0 then
                Relation.iter_rle_runs rel ~lo:0 ~count:n c
                  (fun ~lo ~len v ->
                    charge hier per_value;
                    if vtest v then emit ~lo ~len (Some v)) )
      else if not (Relation.code_run_readable rel c) then None
      else if Relation.dict_info rel c <> None then
        Some
          ( c,
            fun emit ->
              let n = Relation.nrows rel in
              (* predicate once per distinct value, then a narrow code scan *)
              let pass =
                Array.map
                  (fun v ->
                    charge hier per_value;
                    vtest v)
                  (Relation.dict_values rel c)
              in
              let codes = Array.make scan_block 0 in
              let rs = ref (-1) in
              let flush hi =
                if !rs >= 0 then begin
                  emit ~lo:!rs ~len:(hi - !rs) None;
                  rs := -1
                end
              in
              let lo = ref 0 in
              while !lo < n do
                let m = min scan_block (n - !lo) in
                Relation.read_code_run rel ~lo:!lo ~count:m c codes;
                charge hier (per_value * m);
                for i = 0 to m - 1 do
                  let tid = !lo + i in
                  if Array.unsafe_get pass (Array.unsafe_get codes i) then begin
                    if !rs < 0 then rs := tid
                  end
                  else flush tid
                done;
                lo := !lo + m
              done;
              flush n )
      else
        match Relation.for_escape rel c with
        | None -> None
        | Some esc ->
            let box = box_of rel c in
            let verdict =
              match (int_cmp_shape ~params conj, Relation.for_bounds rel c)
              with
              | Some (_, op, r), Some bounds -> prune_for op r bounds
              | _ -> `Scan
            in
            Some
              ( c,
                fun emit ->
                  let n = Relation.nrows rel in
                  charge hier per_value;
                  match verdict with
                  | `All -> if n > 0 then emit ~lo:0 ~len:n None
                  | `None -> ()
                  | `Scan ->
                      let codes = Array.make scan_block 0 in
                      let rs = ref (-1) in
                      let flush hi =
                        if !rs >= 0 then begin
                          emit ~lo:!rs ~len:(hi - !rs) None;
                          rs := -1
                        end
                      in
                      let lo = ref 0 in
                      while !lo < n do
                        let m = min scan_block (n - !lo) in
                        Relation.read_code_run rel ~lo:!lo ~count:m c codes;
                        charge hier (per_value * m);
                        for i = 0 to m - 1 do
                          let tid = !lo + i in
                          let z = Array.unsafe_get codes i in
                          let v =
                            if z = esc then
                              Relation.for_exception_value rel c tid
                            else Relation.decode_for_code rel c z
                          in
                          if vtest (box v) then begin
                            if !rs < 0 then rs := tid
                          end
                          else flush tid
                        done;
                        lo := !lo + m
                      done;
                      flush n )

(* Point-wise variant for position-list inputs: test one tid against the
   compressed representation (narrow code read plus bitmap test or decode)
   without fetching through the generic accessor. *)
let compressed_tid_test ?hier ~params ~per_value rel conj =
  let module Relation = Storage.Relation in
  match single_col_pred ~params conj with
  | None -> None
  | Some (c, vtest) ->
      if not (Relation.code_run_readable rel c) then None
      else if Relation.dict_info rel c <> None then
        let pass =
          lazy
            (Array.map
               (fun v ->
                 charge hier per_value;
                 vtest v)
               (Relation.dict_values rel c))
        in
        Some
          (fun tid -> (Lazy.force pass).(Relation.read_code rel tid c))
      else
        match Relation.for_escape rel c with
        | None -> None
        | Some esc ->
            let box = box_of rel c in
            Some
              (fun tid ->
                let z = Relation.read_code rel tid c in
                let v =
                  if z = esc then Relation.for_exception_value rel c tid
                  else Relation.decode_for_code rel c z
                in
                vtest (box v))

module Sim_hash = struct
  type 'v t = {
    hier : Memsim.Hierarchy.t option;
    arena : Storage.Arena.t;
    entry_width : int;
    tbl : (int, (Value.t list * 'v) list ref) Hashtbl.t;
    mutable order : Value.t list list; (* insertion order of distinct keys *)
    mutable base : int;
    mutable slots : int; (* always a power of two *)
    mutable count : int;
  }

  let initial_slots = 64

  let create ?hier arena ~entry_width () =
    {
      hier;
      arena;
      entry_width;
      tbl = Hashtbl.create 64;
      order = [];
      base = Storage.Arena.alloc arena (initial_slots * 16);
      slots = initial_slots;
      count = 0;
    }

  let key_hash key = Storage.Hash_index.key_of_values key

  let touch t ~write h =
    match t.hier with
    | Some hier ->
        (* slots is a power of two, so masking equals the modulo *)
        let slot = h land (t.slots - 1) in
        let addr = t.base + (slot * t.entry_width) in
        let width = min t.entry_width 64 in
        Memsim.Hierarchy.add_cpu hier Cpu_model.hash_op;
        if write then Memsim.Hierarchy.write hier ~addr ~width
        else Memsim.Hierarchy.read hier ~addr ~width
    | None -> ()

  let clear t =
    Hashtbl.reset t.tbl;
    t.order <- [];
    t.count <- 0;
    t.slots <- initial_slots

  let maybe_grow t =
    if 2 * t.count > t.slots then begin
      t.slots <- t.slots * 2;
      t.base <- Storage.Arena.alloc t.arena (t.slots * t.entry_width)
    end

  let add t ~key v =
    maybe_grow t;
    let h = key_hash key in
    touch t ~write:true h;
    (match Hashtbl.find_opt t.tbl h with
    | Some cell -> (
        match List.assoc_opt key !cell with
        | Some _ -> cell := !cell @ [ (key, v) ]
        | None ->
            t.order <- key :: t.order;
            cell := !cell @ [ (key, v) ])
    | None ->
        Hashtbl.add t.tbl h (ref [ (key, v) ]);
        t.order <- key :: t.order);
    t.count <- t.count + 1

  let find_all t ~key =
    let h = key_hash key in
    touch t ~write:false h;
    match Hashtbl.find_opt t.tbl h with
    | None -> []
    | Some cell ->
        List.filter_map
          (fun (k, v) -> if List.for_all2 Value.equal k key then Some v else None)
          (try !cell with _ -> [])

  let update t ~key ~init f =
    let h = key_hash key in
    touch t ~write:false h;
    touch t ~write:true h;
    let cell =
      match Hashtbl.find_opt t.tbl h with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add t.tbl h c;
          c
    in
    match List.assoc_opt key !cell with
    | Some v -> f v
    | None ->
        maybe_grow t;
        let v = init () in
        f v;
        cell := (key, v) :: !cell;
        t.order <- key :: t.order;
        t.count <- t.count + 1

  (* The simulated traffic of an {!update} that finds its key — one probe-read
     and one write-back of the entry — without the OCaml-side lookup.  The
     global-aggregate fast path uses it once the single state is resolved. *)
  let retouch t ~hash =
    touch t ~write:false hash;
    touch t ~write:true hash

  let iter t f =
    List.iter
      (fun key ->
        let h = key_hash key in
        match Hashtbl.find_opt t.tbl h with
        | None -> ()
        | Some cell -> (
            match List.assoc_opt key !cell with
            | Some v -> f key v
            | None -> ()))
      (List.rev t.order)

  let length t = List.length t.order
end

module Agg_table = struct
  type t = {
    aggs : Aggregate.t list;
    agg_arr : Aggregate.t array;
    table : Aggregate.state array Sim_hash.t;
    global : bool;
    empty_hash : int; (* hash of the empty key, precomputed *)
    mutable saw_row : bool;
    mutable gstates : Aggregate.state array option;
        (* the single state row of an all-rows aggregate, cached so the
           per-row path skips the hash-table lookup (traffic unchanged) *)
  }

  let create ?hier arena ~aggs ?(global = false) ~key_width () =
    let entry_width = key_width + (16 * List.length aggs) in
    {
      aggs;
      agg_arr = Array.of_list aggs;
      table = Sim_hash.create ?hier arena ~entry_width:(max 16 entry_width) ();
      global;
      empty_hash = Sim_hash.key_hash [];
      saw_row = false;
      gstates = None;
    }

  let clear t =
    Sim_hash.clear t.table;
    t.saw_row <- false;
    t.gstates <- None

  let step_all t states inputs =
    for i = 0 to Array.length t.agg_arr - 1 do
      Aggregate.step (Array.unsafe_get states i) (Array.unsafe_get inputs i)
    done

  let step_all_n t states inputs count =
    for i = 0 to Array.length t.agg_arr - 1 do
      Aggregate.step_n (Array.unsafe_get states i) (Array.unsafe_get inputs i)
        count
    done

  (* Run-granular accumulation: one entry lookup (one probe-read plus one
     write-back of traffic) absorbs [count] identical rows. *)
  let update_n t ~key ~inputs ~count =
    if count > 0 then begin
      t.saw_row <- true;
      match (key, t.gstates) with
      | [], Some states ->
          Sim_hash.retouch t.table ~hash:t.empty_hash;
          step_all_n t states inputs count
      | _ ->
          Sim_hash.update t.table ~key
            ~init:(fun () ->
              Array.map
                (fun (a : Aggregate.t) -> Aggregate.init a.func)
                t.agg_arr)
            (fun states ->
              if key == [] then t.gstates <- Some states;
              step_all_n t states inputs count)
    end

  let update t ~key ~inputs =
    t.saw_row <- true;
    match (key, t.gstates) with
    | [], Some states ->
        (* the empty key always hits its one entry: same read + write-back
           touches as the generic lookup, minus the OCaml-side search *)
        Sim_hash.retouch t.table ~hash:t.empty_hash;
        step_all t states inputs
    | _ ->
        Sim_hash.update t.table ~key
          ~init:(fun () ->
            Array.map (fun (a : Aggregate.t) -> Aggregate.init a.func) t.agg_arr)
          (fun states ->
            if key == [] then t.gstates <- Some states;
            step_all t states inputs)

  let emit t f =
    if t.global && (not t.saw_row) && Sim_hash.length t.table = 0 then begin
      (* global aggregate over the empty input: one group of initial states *)
      let states =
        Array.of_list
          (List.map (fun (a : Aggregate.t) -> Aggregate.init a.func) t.aggs)
      in
      f [] (Array.map Aggregate.finish states)
    end
    else
      Sim_hash.iter t.table (fun key states ->
          f key (Array.map Aggregate.finish states))
end

let sort_rows ?hier arena ~row_width ~keys rows =
  let arr = Array.of_list rows in
  let n = Array.length arr in
  if n > 1 then begin
    (match hier with
    | Some h ->
        let base = Storage.Arena.alloc arena (n * row_width) in
        (* materialize the run *)
        Memsim.Hierarchy.write_run h ~addr:base ~width:(min row_width 64)
          ~count:n ~stride:row_width;
        (* n log n random touches for the comparison-based sort *)
        let log2n =
          int_of_float (Float.ceil (Float.log (float_of_int n) /. Float.log 2.0))
        in
        let rng = Mrdb_util.Rng.create (n lxor 0x50F7) in
        for _ = 1 to n * log2n do
          let i = Mrdb_util.Rng.int rng n in
          Memsim.Hierarchy.read h
            ~addr:(base + (i * row_width))
            ~width:(min row_width 64);
          Memsim.Hierarchy.add_cpu h 1
        done
    | None -> ());
    let compare_rows a b =
      let rec go = function
        | [] -> 0
        | (col, dir) :: rest ->
            let c = Value.compare a.(col) b.(col) in
            let c = match (dir : Relalg.Plan.dir) with Asc -> c | Desc -> -c in
            if c <> 0 then c else go rest
      in
      go keys
    in
    Array.stable_sort compare_rows arr
  end;
  Array.to_list arr
