module Value = Storage.Value
module Aggregate = Relalg.Aggregate

type result = { columns : string array; rows : Value.t array list }

let pp_result ppf r =
  Format.fprintf ppf "%s@." (String.concat " | " (Array.to_list r.columns));
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@."
        (String.concat " | "
           (Array.to_list (Array.map Value.to_display row))))
    r.rows

let concat_results = function
  | [] -> invalid_arg "Runtime.concat_results: no results"
  | first :: _ as results ->
      List.iter
        (fun r ->
          if r.columns <> first.columns then
            invalid_arg "Runtime.concat_results: column mismatch")
        results;
      {
        columns = first.columns;
        rows = List.concat_map (fun r -> r.rows) results;
      }

let charge hier n =
  match hier with Some h -> Memsim.Hierarchy.add_cpu h n | None -> ()

(* Recognize a predicate conjunct of the shape [Col c <op> rhs] with [rhs]
   column-free and integer-valued, over a plain non-nullable int column of
   [rel]: engines can then evaluate it on unboxed ints read in runs.
   [Value.compare] on any mix of [VInt]/[VDate] is plain int comparison, so
   the unboxed test is exact. *)
let simple_int_cmp ~params rel conj =
  let module Expr = Relalg.Expr in
  match conj with
  | Expr.Cmp (op, Expr.Col c, rhs)
    when Expr.cols rhs = [] && Storage.Relation.int_run_readable rel c -> (
      match Expr.eval rhs ~params (fun _ -> assert false) with
      | Value.VInt r | Value.VDate r ->
          let test : int -> bool =
            match op with
            | Expr.Eq -> fun v -> v = r
            | Expr.Ne -> fun v -> v <> r
            | Expr.Lt -> fun v -> v < r
            | Expr.Le -> fun v -> v <= r
            | Expr.Gt -> fun v -> v > r
            | Expr.Ge -> fun v -> v >= r
          in
          Some (c, test)
      | _ -> None)
  | _ -> None

module Sim_hash = struct
  type 'v t = {
    hier : Memsim.Hierarchy.t option;
    arena : Storage.Arena.t;
    entry_width : int;
    tbl : (int, (Value.t list * 'v) list ref) Hashtbl.t;
    mutable order : Value.t list list; (* insertion order of distinct keys *)
    mutable base : int;
    mutable slots : int; (* always a power of two *)
    mutable count : int;
  }

  let initial_slots = 64

  let create ?hier arena ~entry_width () =
    {
      hier;
      arena;
      entry_width;
      tbl = Hashtbl.create 64;
      order = [];
      base = Storage.Arena.alloc arena (initial_slots * 16);
      slots = initial_slots;
      count = 0;
    }

  let key_hash key = Storage.Hash_index.key_of_values key

  let touch t ~write h =
    match t.hier with
    | Some hier ->
        (* slots is a power of two, so masking equals the modulo *)
        let slot = h land (t.slots - 1) in
        let addr = t.base + (slot * t.entry_width) in
        let width = min t.entry_width 64 in
        Memsim.Hierarchy.add_cpu hier Cpu_model.hash_op;
        if write then Memsim.Hierarchy.write hier ~addr ~width
        else Memsim.Hierarchy.read hier ~addr ~width
    | None -> ()

  let maybe_grow t =
    if 2 * t.count > t.slots then begin
      t.slots <- t.slots * 2;
      t.base <- Storage.Arena.alloc t.arena (t.slots * t.entry_width)
    end

  let add t ~key v =
    maybe_grow t;
    let h = key_hash key in
    touch t ~write:true h;
    (match Hashtbl.find_opt t.tbl h with
    | Some cell -> (
        match List.assoc_opt key !cell with
        | Some _ -> cell := !cell @ [ (key, v) ]
        | None ->
            t.order <- key :: t.order;
            cell := !cell @ [ (key, v) ])
    | None ->
        Hashtbl.add t.tbl h (ref [ (key, v) ]);
        t.order <- key :: t.order);
    t.count <- t.count + 1

  let find_all t ~key =
    let h = key_hash key in
    touch t ~write:false h;
    match Hashtbl.find_opt t.tbl h with
    | None -> []
    | Some cell ->
        List.filter_map
          (fun (k, v) -> if List.for_all2 Value.equal k key then Some v else None)
          (try !cell with _ -> [])

  let update t ~key ~init f =
    let h = key_hash key in
    touch t ~write:false h;
    touch t ~write:true h;
    let cell =
      match Hashtbl.find_opt t.tbl h with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add t.tbl h c;
          c
    in
    match List.assoc_opt key !cell with
    | Some v -> f v
    | None ->
        maybe_grow t;
        let v = init () in
        f v;
        cell := (key, v) :: !cell;
        t.order <- key :: t.order;
        t.count <- t.count + 1

  (* The simulated traffic of an {!update} that finds its key — one probe-read
     and one write-back of the entry — without the OCaml-side lookup.  The
     global-aggregate fast path uses it once the single state is resolved. *)
  let retouch t ~hash =
    touch t ~write:false hash;
    touch t ~write:true hash

  let iter t f =
    List.iter
      (fun key ->
        let h = key_hash key in
        match Hashtbl.find_opt t.tbl h with
        | None -> ()
        | Some cell -> (
            match List.assoc_opt key !cell with
            | Some v -> f key v
            | None -> ()))
      (List.rev t.order)

  let length t = List.length t.order
end

module Agg_table = struct
  type t = {
    aggs : Aggregate.t list;
    agg_arr : Aggregate.t array;
    table : Aggregate.state array Sim_hash.t;
    global : bool;
    empty_hash : int; (* hash of the empty key, precomputed *)
    mutable saw_row : bool;
    mutable gstates : Aggregate.state array option;
        (* the single state row of an all-rows aggregate, cached so the
           per-row path skips the hash-table lookup (traffic unchanged) *)
  }

  let create ?hier arena ~aggs ?(global = false) ~key_width () =
    let entry_width = key_width + (16 * List.length aggs) in
    {
      aggs;
      agg_arr = Array.of_list aggs;
      table = Sim_hash.create ?hier arena ~entry_width:(max 16 entry_width) ();
      global;
      empty_hash = Sim_hash.key_hash [];
      saw_row = false;
      gstates = None;
    }

  let step_all t states inputs =
    for i = 0 to Array.length t.agg_arr - 1 do
      Aggregate.step (Array.unsafe_get states i) (Array.unsafe_get inputs i)
    done

  let update t ~key ~inputs =
    t.saw_row <- true;
    match (key, t.gstates) with
    | [], Some states ->
        (* the empty key always hits its one entry: same read + write-back
           touches as the generic lookup, minus the OCaml-side search *)
        Sim_hash.retouch t.table ~hash:t.empty_hash;
        step_all t states inputs
    | _ ->
        Sim_hash.update t.table ~key
          ~init:(fun () ->
            Array.map (fun (a : Aggregate.t) -> Aggregate.init a.func) t.agg_arr)
          (fun states ->
            if key == [] then t.gstates <- Some states;
            step_all t states inputs)

  let emit t f =
    if t.global && (not t.saw_row) && Sim_hash.length t.table = 0 then begin
      (* global aggregate over the empty input: one group of initial states *)
      let states =
        Array.of_list
          (List.map (fun (a : Aggregate.t) -> Aggregate.init a.func) t.aggs)
      in
      f [] (Array.map Aggregate.finish states)
    end
    else
      Sim_hash.iter t.table (fun key states ->
          f key (Array.map Aggregate.finish states))
end

let sort_rows ?hier arena ~row_width ~keys rows =
  let arr = Array.of_list rows in
  let n = Array.length arr in
  if n > 1 then begin
    (match hier with
    | Some h ->
        let base = Storage.Arena.alloc arena (n * row_width) in
        (* materialize the run *)
        Memsim.Hierarchy.write_run h ~addr:base ~width:(min row_width 64)
          ~count:n ~stride:row_width;
        (* n log n random touches for the comparison-based sort *)
        let log2n =
          int_of_float (Float.ceil (Float.log (float_of_int n) /. Float.log 2.0))
        in
        let rng = Mrdb_util.Rng.create (n lxor 0x50F7) in
        for _ = 1 to n * log2n do
          let i = Mrdb_util.Rng.int rng n in
          Memsim.Hierarchy.read h
            ~addr:(base + (i * row_width))
            ~width:(min row_width 64);
          Memsim.Hierarchy.add_cpu h 1
        done
    | None -> ());
    let compare_rows a b =
      let rec go = function
        | [] -> 0
        | (col, dir) :: rest ->
            let c = Value.compare a.(col) b.(col) in
            let c = match (dir : Relalg.Plan.dir) with Asc -> c | Desc -> -c in
            if c <> 0 then c else go rest
      in
      go keys
    in
    Array.stable_sort compare_rows arr
  end;
  Array.to_list arr
