module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Schema = Storage.Schema
module Value = Storage.Value
module Physical = Relalg.Physical
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

type ctx = {
  cat : Catalog.t;
  buf : Buffer.t;
  mutable indent : int;
  mutable tmp : int;
}

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let fresh ctx prefix =
  ctx.tmp <- ctx.tmp + 1;
  Printf.sprintf "%s%d" prefix ctx.tmp

let c_type = function
  | Value.Int | Value.Date -> "int64_t"
  | Value.Float -> "double"
  | Value.Bool -> "bool"
  | Value.Varchar n -> Printf.sprintf "char[%d]" n

let sanitize name =
  String.map (fun c -> if c = ' ' || c = '(' || c = ')' || c = '*' then '_' else c) name

(* A "slot" describes how an operator's output column is available in the
   generated code: as a C expression string. *)
type slots = string array

let rec c_expr (slots : slots) params e =
  match (e : Expr.t) with
  | Expr.Col i -> slots.(i)
  | Expr.Param n -> (
      ignore params;
      Printf.sprintf "param%d" n)
  | Expr.Const v -> (
      match v with
      | Value.VInt x -> string_of_int x
      | Value.VFloat f -> Printf.sprintf "%g" f
      | Value.VBool b -> if b then "true" else "false"
      | Value.VDate d -> string_of_int d
      | Value.VStr s -> Printf.sprintf "%S" s
      | Value.Null -> "NULL")
  | Expr.Cmp (op, a, b) ->
      let sym =
        match op with
        | Expr.Eq -> "=="
        | Expr.Ne -> "!="
        | Expr.Lt -> "<"
        | Expr.Le -> "<="
        | Expr.Gt -> ">"
        | Expr.Ge -> ">="
      in
      Printf.sprintf "(%s %s %s)" (c_expr slots params a) sym (c_expr slots params b)
  | Expr.Like (a, b) ->
      Printf.sprintf "like(%s, %s)" (c_expr slots params a) (c_expr slots params b)
  | Expr.And es ->
      "(" ^ String.concat " && " (List.map (c_expr slots params) es) ^ ")"
  | Expr.Or es ->
      "(" ^ String.concat " || " (List.map (c_expr slots params) es) ^ ")"
  | Expr.Not a -> Printf.sprintf "(!%s)" (c_expr slots params a)
  | Expr.IsNull a -> Printf.sprintf "is_null(%s)" (c_expr slots params a)
  | Expr.Arith (op, a, b) ->
      let sym =
        match op with
        | Expr.Add -> "+"
        | Expr.Sub -> "-"
        | Expr.Mul -> "*"
        | Expr.Div -> "/"
        | Expr.Mod -> "%"
      in
      Printf.sprintf "(%s %s %s)" (c_expr slots params a) sym (c_expr slots params b)

(* struct definition for a relation's partitions *)
let emit_struct ctx table =
  let rel = Catalog.find ctx.cat table in
  let schema = Relation.schema rel in
  let layout = Relation.layout rel in
  line ctx "struct %s_t {" table;
  ctx.indent <- ctx.indent + 1;
  Array.iteri
    (fun p attrs ->
      if Array.length attrs = 1 then begin
        let a = Schema.attr schema attrs.(0) in
        line ctx "%s %s[N_%s];" (c_type a.Schema.ty) a.Schema.name table
      end
      else begin
        line ctx "struct {";
        ctx.indent <- ctx.indent + 1;
        Array.iter
          (fun ai ->
            let a = Schema.attr schema ai in
            line ctx "%s %s;" (c_type a.Schema.ty) a.Schema.name)
          attrs;
        ctx.indent <- ctx.indent - 1;
        line ctx "} p%d[N_%s];" p table
      end)
    (Layout.partitions layout);
  ctx.indent <- ctx.indent - 1;
  line ctx "};"

(* C expression for attribute [a] of the current tuple of [table] *)
let attr_access ctx table tid a =
  let rel = Catalog.find ctx.cat table in
  let schema = Relation.schema rel in
  let layout = Relation.layout rel in
  let p = Layout.partition_of_attr layout a in
  let name = (Schema.attr schema a).Schema.name in
  if Array.length (Layout.partition_attrs layout p) = 1 then
    Printf.sprintf "%s->%s[%s]" table name tid
  else Printf.sprintf "%s->p%d[%s].%s" table p tid name

let rec produce ctx (plan : Physical.t) (consume : slots -> unit) =
  match plan with
  | Physical.Scan { table; access; post; _ } ->
      let rel = Catalog.find ctx.cat table in
      let arity = Schema.arity (Relation.schema rel) in
      let tid = fresh ctx "tid" in
      (match access with
      | Physical.Full_scan ->
          line ctx "for (int64_t %s = 0; %s < N_%s; ++%s) {" tid tid table tid
      | Physical.Index_eq _ ->
          line ctx "for (int64_t %s : %s_index_lookup(key)) {" tid table
      | Physical.Index_range _ ->
          line ctx "for (int64_t %s : %s_index_range(lo, hi)) {" tid table);
      ctx.indent <- ctx.indent + 1;
      let slots = Array.init arity (attr_access ctx table tid) in
      (match post with
      | Some pred ->
          line ctx "if (%s) {" (c_expr slots [||] pred);
          ctx.indent <- ctx.indent + 1;
          consume slots;
          ctx.indent <- ctx.indent - 1;
          line ctx "}"
      | None -> consume slots);
      ctx.indent <- ctx.indent - 1;
      line ctx "}"
  | Physical.Select { child; pred; _ } ->
      produce ctx child (fun slots ->
          line ctx "if (%s) {" (c_expr slots [||] pred);
          ctx.indent <- ctx.indent + 1;
          consume slots;
          ctx.indent <- ctx.indent - 1;
          line ctx "}")
  | Physical.Project { child; exprs } ->
      produce ctx child (fun slots ->
          let out =
            Array.of_list
              (List.map
                 (fun (e, name) ->
                   let v = sanitize name in
                   line ctx "auto %s = %s;" v (c_expr slots [||] e);
                   v)
                 exprs)
          in
          consume out)
  | Physical.Hash_join { build; probe; build_keys; probe_keys; _ } ->
      let ht = fresh ctx "ht" in
      let build_arity = Array.length (Physical.schema ctx.cat build) in
      line ctx "hashtable %s;" ht;
      produce ctx build (fun slots ->
          line ctx "%s.insert({%s}, {%s});" ht
            (String.concat ", " (List.map (fun k -> slots.(k)) build_keys))
            (String.concat ", " (Array.to_list slots)));
      produce ctx probe (fun slots ->
          let m = fresh ctx "m" in
          line ctx "for (auto* %s : %s.lookup({%s})) {" m ht
            (String.concat ", " (List.map (fun k -> slots.(k)) probe_keys));
          ctx.indent <- ctx.indent + 1;
          let out =
            Array.init
              (build_arity + Array.length slots)
              (fun i ->
                if i < build_arity then Printf.sprintf "%s->v%d" m i
                else slots.(i - build_arity))
          in
          consume out;
          ctx.indent <- ctx.indent - 1;
          line ctx "}")
  | Physical.Group_by { child; keys; aggs; _ } ->
      let n_keys = List.length keys in
      if keys = [] then begin
        (* global aggregation: accumulators live in registers (Fig. 2c) *)
        List.iter
          (fun (a : Aggregate.t) ->
            line ctx "auto %s = init_%s();" (sanitize a.Aggregate.name)
              (match a.Aggregate.func with
              | Aggregate.Count_star | Aggregate.Count -> "count"
              | Aggregate.Sum -> "sum"
              | Aggregate.Min -> "min"
              | Aggregate.Max -> "max"
              | Aggregate.Avg -> "avg"))
          aggs;
        produce ctx child (fun slots ->
            List.iter
              (fun (a : Aggregate.t) ->
                match a.Aggregate.expr with
                | Some e ->
                    line ctx "%s += %s;" (sanitize a.Aggregate.name)
                      (c_expr slots [||] e)
                | None -> line ctx "%s += 1;" (sanitize a.Aggregate.name))
              aggs);
        let out =
          Array.of_list
            (List.map (fun (a : Aggregate.t) -> sanitize a.Aggregate.name) aggs)
        in
        consume out
      end
      else begin
        let groups = fresh ctx "groups" in
        line ctx "aggtable %s;" groups;
        produce ctx child (fun slots ->
            line ctx "%s.update({%s}, {%s});" groups
              (String.concat ", "
                 (List.map (fun (e, _) -> c_expr slots [||] e) keys))
              (String.concat ", "
                 (List.map
                    (fun (a : Aggregate.t) ->
                      match a.Aggregate.expr with
                      | Some e -> c_expr slots [||] e
                      | None -> "1")
                    aggs)));
        let g = fresh ctx "g" in
        line ctx "for (auto* %s : %s) {" g groups;
        ctx.indent <- ctx.indent + 1;
        let out =
          Array.init
            (n_keys + List.length aggs)
            (fun i ->
              if i < n_keys then Printf.sprintf "%s->key%d" g i
              else Printf.sprintf "%s->agg%d" g (i - n_keys))
        in
        consume out;
        ctx.indent <- ctx.indent - 1;
        line ctx "}"
      end
  | Physical.Sort { child; keys } ->
      let run = fresh ctx "run" in
      line ctx "vector %s;" run;
      produce ctx child (fun slots ->
          line ctx "%s.push_back({%s});" run
            (String.concat ", " (Array.to_list slots)));
      line ctx "sort(%s, by(%s));" run
        (String.concat ", "
           (List.map
              (fun (i, d) ->
                Printf.sprintf "%d %s" i
                  (match (d : Relalg.Plan.dir) with
                  | Relalg.Plan.Asc -> "asc"
                  | Relalg.Plan.Desc -> "desc"))
              keys));
      let r = fresh ctx "r" in
      line ctx "for (auto* %s : %s) {" r run;
      ctx.indent <- ctx.indent + 1;
      let arity = Array.length (Physical.schema ctx.cat child) in
      consume (Array.init arity (fun i -> Printf.sprintf "%s->v%d" r i));
      ctx.indent <- ctx.indent - 1;
      line ctx "}"
  | Physical.Limit { child; n } ->
      let c = fresh ctx "seen" in
      line ctx "int64_t %s = 0;" c;
      produce ctx child (fun slots ->
          line ctx "if (%s++ < %d) {" c n;
          ctx.indent <- ctx.indent + 1;
          consume slots;
          ctx.indent <- ctx.indent - 1;
          line ctx "}")
  | Physical.Insert { table; values } ->
      line ctx "%s_append({%s});" table
        (String.concat ", " (List.map (c_expr [||] [||]) values));
      consume [||]
  | Physical.Update { table; access; post; assignments; _ } ->
      let rel = Catalog.find ctx.cat table in
      let arity = Schema.arity (Relation.schema rel) in
      let tid = fresh ctx "tid" in
      (match access with
      | Physical.Full_scan ->
          line ctx "for (int64_t %s = 0; %s < N_%s; ++%s) {" tid tid table tid
      | Physical.Index_eq _ ->
          line ctx "for (int64_t %s : %s_index_lookup(key)) {" tid table
      | Physical.Index_range _ ->
          line ctx "for (int64_t %s : %s_index_range(lo, hi)) {" tid table);
      ctx.indent <- ctx.indent + 1;
      let slots = Array.init arity (attr_access ctx table tid) in
      let body () =
        List.iter
          (fun (a, e) ->
            line ctx "%s = %s;" slots.(a) (c_expr slots [||] e))
          assignments
      in
      (match post with
      | Some pred ->
          line ctx "if (%s) {" (c_expr slots [||] pred);
          ctx.indent <- ctx.indent + 1;
          body ();
          ctx.indent <- ctx.indent - 1;
          line ctx "}"
      | None -> body ());
      ctx.indent <- ctx.indent - 1;
      line ctx "}";
      consume [||]

let emit cat plan =
  let ctx = { cat; buf = Buffer.create 1024; indent = 0; tmp = 0 } in
  (* struct definitions for every scanned table *)
  let rec scan_tables acc = function
    | Physical.Scan { table; _ }
    | Physical.Insert { table; _ }
    | Physical.Update { table; _ } ->
        table :: acc
    | Physical.Select { child; _ }
    | Physical.Project { child; _ }
    | Physical.Group_by { child; _ }
    | Physical.Sort { child; _ }
    | Physical.Limit { child; _ } ->
        scan_tables acc child
    | Physical.Hash_join { build; probe; _ } ->
        scan_tables (scan_tables acc build) probe
  in
  let tables = List.sort_uniq compare (scan_tables [] plan) in
  List.iter (emit_struct ctx) tables;
  line ctx "";
  line ctx "void query(%s, row_buffer* out) {"
    (String.concat ", "
       (List.map (fun t -> Printf.sprintf "const struct %s_t* %s" t t) tables));
  ctx.indent <- 1;
  produce ctx plan (fun slots ->
      line ctx "out->emit(%s);" (String.concat ", " (Array.to_list slots)));
  ctx.indent <- 0;
  line ctx "}";
  Buffer.contents ctx.buf

(* ================================================================== *)
(* Real backend: self-contained C99 translation units                  *)
(* ================================================================== *)

(* The pretty-printer above documents the closure compiler; from here down
   is the executable backend behind {!Compiled}: a restricted plan subset
   (single-table full-scan pipelines of select/project/group-by/limit over
   plain-encoded Int/Float/Bool/Date columns) is emitted as one
   self-contained C99 translation unit whose [mrdb_query] entry point
   reproduces the OCaml engines' value semantics exactly — 63-bit wrapping
   integer arithmetic, total-order float comparison, SQL null propagation,
   structural group-key equality and insertion-order group emission. *)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type unit_info = {
  source : string;
  table : string;
  n_parts : int;
  out_arity : int;
}

(* Static expression types.  [CNull] is the type of expressions that are
   always null; [CStr] values carry no payload in generated code and may
   only feed null tests (anything else falls back to the interpreter). *)
type cty = CInt | CFloat | CBool | CDate | CNull | CStr

(* How a column is available in generated code: a C expression for its
   null flag (an int, 1 = null) and one for its payload. *)
type cslot = { ty : cty; null_c : string; val_c : string }

let rank_of = function
  | CNull -> 0
  | CBool -> 1
  | CInt -> 2
  | CFloat -> 3
  | CDate -> 4
  | CStr -> 5

(* Output/aggregate tag bytes, shared with the OCaml-side decoder. *)
let tag_of = function
  | CNull -> 0
  | CInt -> 1
  | CFloat -> 2
  | CBool -> 3
  | CDate -> 4
  | CStr -> unsupported "string in a compiled value position"

type cc_ctx = {
  ccat : Catalog.t;
  decls : Buffer.t; (* struct and helper definitions, one set per group-by *)
  body : Buffer.t; (* statements inside mrdb_query *)
  mutable cindent : int;
  mutable ctmp : int;
  mutable groups : int; (* group-by instances, for unique naming *)
  mutable frees : string list; (* cleanup statements for the done label *)
  mutable uses_oom : bool;
}

let bline ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.body (String.make (2 * ctx.cindent) ' ');
      Buffer.add_string ctx.body s;
      Buffer.add_char ctx.body '\n')
    fmt

let dline ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.decls s;
      Buffer.add_char ctx.decls '\n')
    fmt

let ctmp ctx prefix =
  ctx.ctmp <- ctx.ctmp + 1;
  Printf.sprintf "%s%d" prefix ctx.ctmp

(* The fixed prelude: value representation and the arithmetic/comparison
   helpers that pin down OCaml semantics.  Integer add/sub/mul go through
   unsigned arithmetic then re-truncate to 63 bits ([w63]), exactly the
   native-int wrap of the interpreter; division guards 0 and -1 divisors
   the way {!Relalg.Expr.apply_arith} and OCaml [Div]/[Mod] behave; [fcmp]
   is [Stdlib.compare] on floats (total order, nan below everything,
   -0. = 0.). *)
let prelude =
  {|/* generated by mrdb — compiled query pipeline; do not edit */
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

typedef struct { uint8_t tag; int64_t bits; } mv;
typedef struct { int64_t count; int64_t sum_i; double sum_f; mv best; } agg_st;

static inline int64_t w63(int64_t x) { return (int64_t)((uint64_t)x << 1) >> 1; }
static inline int64_t iadd(int64_t a, int64_t b) { return w63((int64_t)((uint64_t)a + (uint64_t)b)); }
static inline int64_t isub(int64_t a, int64_t b) { return w63((int64_t)((uint64_t)a - (uint64_t)b)); }
static inline int64_t imul(int64_t a, int64_t b) { return w63((int64_t)((uint64_t)a * (uint64_t)b)); }
static inline int64_t idiv63(int64_t a, int64_t b) {
  if (b == 0) return 0;
  if (b == -1) return w63(-a);
  return a / b;
}
static inline int64_t imod63(int64_t a, int64_t b) {
  if (b == 0 || b == -1) return 0;
  return a % b;
}
static inline int64_t ld64(const unsigned char *p) { int64_t v; memcpy(&v, p, 8); return v; }
static inline double ldf(const unsigned char *p) { double v; memcpy(&v, p, 8); return v; }
static inline int64_t dbits(double d) { int64_t v; memcpy(&v, &d, 8); return v; }
static inline double bitsd(int64_t b) { double v; memcpy(&v, &b, 8); return v; }
static inline int fcmp(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  if (a == b) return 0;
  { int na = (a != a), nb = (b != b);
    if (na && nb) return 0;
    return na ? -1 : 1; }
}

/* Group keys reproduce the interpreter's equivalence exactly.  Its hash
   table buckets by a 63-bit fold of raw value bits (floats by IEEE bit
   pattern) and resolves within a bucket by OCaml polymorphic compare, a
   total order where nan = nan and -0. = 0..  Two keys join the same
   group iff both their 63-bit hashes and their total-order comparison
   agree — so same-bit nans merge while +0./-0. (equal, different bits)
   stay separate, exactly like the interpreter. */
static int64_t kv63(const mv *v) {
  switch (v->tag) {
  case 0: return (int64_t)(-1) << 61; /* Null: OCaml min_int / 2 */
  case 2: return w63(v->bits);        /* float: truncated IEEE bits */
  default: return v->bits;            /* int/date/bool payloads */
  }
}

static uint64_t mv_hash(const mv *key, int nk) {
  int64_t h = 0;
  for (int i = 0; i < nk; i++)
    h = w63((int64_t)((uint64_t)h * 1000003u)) ^ kv63(&key[i]);
  return (uint64_t)h;
}

static int mv_eq(const mv *a, const mv *b, int nk) {
  for (int i = 0; i < nk; i++) {
    if (a[i].tag != b[i].tag) return 0;
    if (a[i].tag == 2) {
      if (fcmp(bitsd(a[i].bits), bitsd(b[i].bits)) != 0) return 0;
    } else if (a[i].bits != b[i].bits) return 0;
  }
  return mv_hash(a, nk) == mv_hash(b, nk);
}

/* append one row of (tag, payload) fields; returns the new offset.  When
   the buffer is too small the offset keeps advancing so the caller learns
   the needed size. */
static int64_t put_row(unsigned char *out, int64_t cap, int64_t off, const mv *vals, int n) {
  int64_t need = (int64_t)n * 9;
  if (off + need <= cap) {
    unsigned char *p = out + off;
    for (int i = 0; i < n; i++) {
      p[0] = vals[i].tag;
      memcpy(p + 1, &vals[i].bits, 8);
      p += 9;
    }
  }
  return off + need;
}
|}

(* ---------------- expression compilation ---------------- *)

let truthy_c (s : cslot) =
  match s.ty with
  | CBool -> Printf.sprintf "(!(%s) && (%s))" s.null_c s.val_c
  | _ -> "0"

let const_slot (v : Value.t) =
  match v with
  | Value.Null -> { ty = CNull; null_c = "1"; val_c = "0" }
  | Value.VInt x -> { ty = CInt; null_c = "0"; val_c = Printf.sprintf "INT64_C(%d)" x }
  | Value.VDate d -> { ty = CDate; null_c = "0"; val_c = Printf.sprintf "INT64_C(%d)" d }
  | Value.VBool b -> { ty = CBool; null_c = "0"; val_c = (if b then "1" else "0") }
  | Value.VFloat f ->
      {
        ty = CFloat;
        null_c = "0";
        val_c = Printf.sprintf "bitsd(INT64_C(%Ld))" (Int64.bits_of_float f);
      }
  | Value.VStr _ -> { ty = CStr; null_c = "0"; val_c = "0" }

let as_double (s : cslot) =
  match s.ty with
  | CFloat -> s.val_c
  | CInt | CDate -> Printf.sprintf "(double)(%s)" s.val_c
  | CBool -> Printf.sprintf "((%s) ? 1.0 : 0.0)" s.val_c
  | CNull | CStr -> unsupported "float conversion of non-numeric"

let as_int63 (s : cslot) =
  match s.ty with
  | CInt | CDate -> s.val_c
  | CBool -> Printf.sprintf "((int64_t)(%s))" s.val_c
  | CFloat | CNull | CStr -> unsupported "int conversion of non-int"

let cmp_sym = function
  | Expr.Eq -> "=="
  | Expr.Ne -> "!="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="

let cmp_holds op c =
  match (op : Expr.cmp) with
  | Expr.Eq -> c = 0
  | Expr.Ne -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Ge -> c >= 0

let rec cexpr ctx (slots : cslot array) (e : Expr.t) : cslot =
  match e with
  | Expr.Col i ->
      if i < 0 || i >= Array.length slots then unsupported "column out of range";
      slots.(i)
  | Expr.Const v -> const_slot v
  | Expr.Param _ -> unsupported "unbound parameter"
  | Expr.Like _ -> unsupported "like"
  | Expr.IsNull a ->
      let s = cexpr ctx slots a in
      { ty = CBool; null_c = "0"; val_c = Printf.sprintf "(%s)" s.null_c }
  | Expr.Not a ->
      let s = cexpr ctx slots a in
      { ty = CBool; null_c = "0"; val_c = Printf.sprintf "(!%s)" (truthy_c s) }
  | Expr.And es ->
      let parts = List.map (fun e -> truthy_c (cexpr ctx slots e)) es in
      let v = if parts = [] then "1" else String.concat " && " parts in
      { ty = CBool; null_c = "0"; val_c = Printf.sprintf "(%s)" v }
  | Expr.Or es ->
      let parts = List.map (fun e -> truthy_c (cexpr ctx slots e)) es in
      let v = if parts = [] then "0" else String.concat " || " parts in
      { ty = CBool; null_c = "0"; val_c = Printf.sprintf "(%s)" v }
  | Expr.Cmp (op, a, b) ->
      let sa = cexpr ctx slots a and sb = cexpr ctx slots b in
      let bind cmp_c =
        let v = ctmp ctx "c" in
        bline ctx "int %s = (!(%s) && !(%s) && (%s));" v sa.null_c sb.null_c
          cmp_c;
        { ty = CBool; null_c = "0"; val_c = v }
      in
      (match (sa.ty, sb.ty) with
      | CNull, _ | _, CNull ->
          (* a null operand compares to false, and a CNull expression is
             always null *)
          { ty = CBool; null_c = "0"; val_c = "0" }
      | (CInt, CInt | CDate, CDate | CInt, CDate | CDate, CInt | CBool, CBool)
        ->
          bind
            (Printf.sprintf "(%s) %s (%s)" (as_int63 sa) (cmp_sym op)
               (as_int63 sb))
      | CFloat, (CFloat | CInt) | CInt, CFloat ->
          bind
            (Printf.sprintf "fcmp(%s, %s) %s 0" (as_double sa) (as_double sb)
               (cmp_sym op))
      | CStr, CStr -> unsupported "string comparison"
      | ta, tb ->
          (* mixed constructor ranks compare as compile-time constants *)
          let c = compare (rank_of ta) (rank_of tb) in
          let const = if cmp_holds op c then "1" else "0" in
          bind const)
  | Expr.Arith (op, a, b) ->
      let sa = cexpr ctx slots a and sb = cexpr ctx slots b in
      if sa.ty = CNull || sb.ty = CNull then
        { ty = CNull; null_c = "1"; val_c = "0" }
      else if sa.ty = CStr || sb.ty = CStr then
        unsupported "string arithmetic"
      else begin
        let n = ctmp ctx "u" in
        bline ctx "int %s = (%s) || (%s);" n sa.null_c sb.null_c;
        if sa.ty = CFloat || sb.ty = CFloat then begin
          let v = ctmp ctx "x" in
          let fa = as_double sa and fb = as_double sb in
          let expr =
            match op with
            | Expr.Add -> Printf.sprintf "(%s) + (%s)" fa fb
            | Expr.Sub -> Printf.sprintf "(%s) - (%s)" fa fb
            | Expr.Mul -> Printf.sprintf "(%s) * (%s)" fa fb
            | Expr.Div -> Printf.sprintf "(%s) / (%s)" fa fb
            | Expr.Mod -> Printf.sprintf "fmod(%s, %s)" fa fb
          in
          bline ctx "double %s = %s;" v expr;
          { ty = CFloat; null_c = n; val_c = v }
        end
        else begin
          let v = ctmp ctx "x" in
          let ia = as_int63 sa and ib = as_int63 sb in
          let expr =
            match op with
            | Expr.Add -> Printf.sprintf "iadd(%s, %s)" ia ib
            | Expr.Sub -> Printf.sprintf "isub(%s, %s)" ia ib
            | Expr.Mul -> Printf.sprintf "imul(%s, %s)" ia ib
            | Expr.Div -> Printf.sprintf "idiv63(%s, %s)" ia ib
            | Expr.Mod -> Printf.sprintf "imod63(%s, %s)" ia ib
          in
          bline ctx "int64_t %s = %s;" v expr;
          { ty = CInt; null_c = n; val_c = v }
        end
      end

(* Pack a slot into an [mv] variable (one statement).  Null payloads are
   forced to 0 so equal keys are bit-equal. *)
let pack_mv ctx (s : cslot) dst =
  let tag = tag_of s.ty in
  let bits =
    match s.ty with
    | CInt | CDate -> s.val_c
    | CBool -> Printf.sprintf "((%s) ? 1 : 0)" s.val_c
    | CFloat -> Printf.sprintf "dbits(%s)" s.val_c
    | CNull -> "0"
    | CStr -> unsupported "string in a compiled value position"
  in
  if s.ty = CNull then
    bline ctx "%s.tag = 0; %s.bits = 0;" dst dst
  else begin
    bline ctx "if (%s) { %s.tag = 0; %s.bits = 0; }" s.null_c dst dst;
    bline ctx "else { %s.tag = %d; %s.bits = %s; }" dst tag dst bits
  end

(* A slot reading back from a packed [mv] expression of known static type. *)
let mv_slot ty mv_c =
  let null_c = Printf.sprintf "(%s.tag == 0)" mv_c in
  let val_c =
    match ty with
    | CInt | CDate -> Printf.sprintf "%s.bits" mv_c
    | CFloat -> Printf.sprintf "bitsd(%s.bits)" mv_c
    | CBool -> Printf.sprintf "(%s.bits != 0)" mv_c
    | CNull -> "0"
    | CStr -> unsupported "string in a compiled value position"
  in
  { ty; null_c; val_c }

(* ---------------- aggregates ---------------- *)

(* Emit the accumulation statements for aggregate [j] with state
   [st] (an agg_st lvalue prefix like "ge->st[2]") and input slot [s]. *)
let emit_agg_step ctx st (a : Aggregate.t) (s : cslot option) =
  match (a.Aggregate.func, s) with
  | Aggregate.Count_star, _ -> bline ctx "%s.count++;" st
  | Aggregate.Count, Some s ->
      if s.ty = CNull then ()
      else bline ctx "if (!(%s)) %s.count++;" s.null_c st
  | (Aggregate.Sum | Aggregate.Avg), Some s -> (
      match s.ty with
      | CNull -> ()
      | CFloat ->
          bline ctx "if (!(%s)) { %s.count++; %s.sum_f += %s; }" s.null_c st
            st s.val_c
      | CInt | CDate | CBool ->
          bline ctx "if (!(%s)) { %s.count++; %s.sum_i = iadd(%s.sum_i, %s); }"
            s.null_c st st st (as_int63 s)
      | CStr -> unsupported "sum over strings")
  | (Aggregate.Min | Aggregate.Max), Some s -> (
      let dir = if a.Aggregate.func = Aggregate.Min then "<" else ">" in
      match s.ty with
      | CNull -> ()
      | CFloat ->
          bline ctx
            "if (!(%s) && (%s.best.tag == 0 || fcmp(%s, bitsd(%s.best.bits)) \
             %s 0)) { %s.best.tag = 2; %s.best.bits = dbits(%s); }"
            s.null_c st s.val_c st dir st st s.val_c
      | CInt | CDate | CBool ->
          let tag = tag_of s.ty in
          let v = as_int63 s in
          bline ctx
            "if (!(%s) && (%s.best.tag == 0 || (%s) %s %s.best.bits)) { \
             %s.best.tag = %d; %s.best.bits = %s; }"
            s.null_c st v dir st st tag st v
      | CStr -> unsupported "min/max over strings")
  | _, None -> unsupported "aggregate without input"

(* Emit finish code: write the finished value of aggregate [a] into mv
   variable [dst]; returns the static result type for downstream slots. *)
let emit_agg_finish ctx st (a : Aggregate.t) ~input_ty dst =
  match a.Aggregate.func with
  | Aggregate.Count_star | Aggregate.Count ->
      bline ctx "%s.tag = 1; %s.bits = %s.count;" dst dst st;
      CInt
  | Aggregate.Sum ->
      if input_ty = CFloat then begin
        bline ctx
          "if (%s.count == 0) { %s.tag = 0; %s.bits = 0; } else { %s.tag = \
           2; %s.bits = dbits(%s.sum_f); }"
          st dst dst dst dst st;
        CFloat
      end
      else begin
        bline ctx
          "if (%s.count == 0) { %s.tag = 0; %s.bits = 0; } else { %s.tag = \
           1; %s.bits = %s.sum_i; }"
          st dst dst dst dst st;
        CInt
      end
  | Aggregate.Avg ->
      bline ctx
        "if (%s.count == 0) { %s.tag = 0; %s.bits = 0; } else { %s.tag = 2; \
         %s.bits = dbits((%s.sum_f + (double)%s.sum_i) / (double)%s.count); }"
        st dst dst dst dst st st st;
      CFloat
  | Aggregate.Min | Aggregate.Max ->
      bline ctx "%s = %s.best;" dst st;
      input_ty

(* ---------------- operators ---------------- *)

let scan_slots ctx rel =
  let schema = Relation.schema rel in
  let n = Schema.arity schema in
  Array.init n (fun a ->
      let attr = Schema.attr schema a in
      let p = Relation.part_of_attr rel a in
      let w = Relation.part_width rel p in
      let off = Relation.attr_offset rel a in
      let nullable = attr.Schema.nullable in
      let field off = Printf.sprintf "parts[%d] + t * %d + %d" p w off in
      let null_c =
        if nullable then Printf.sprintf "((%s)[0] == 0)" (field off) else "0"
      in
      let data_off = if nullable then off + 1 else off in
      match attr.Schema.ty with
      | Value.Int -> { ty = CInt; null_c; val_c = Printf.sprintf "ld64(%s)" (field data_off) }
      | Value.Date -> { ty = CDate; null_c; val_c = Printf.sprintf "ld64(%s)" (field data_off) }
      | Value.Float -> { ty = CFloat; null_c; val_c = Printf.sprintf "ldf(%s)" (field data_off) }
      | Value.Bool ->
          { ty = CBool; null_c; val_c = Printf.sprintf "((%s)[0] != 0)" (field data_off) }
      | Value.Varchar _ -> { ty = CStr; null_c; val_c = "0" })
  |> fun slots -> ignore ctx; slots

let rec cproduce ctx (plan : Physical.t) ~(consume : cslot array -> unit) :
    unit =
  match plan with
  | Physical.Scan { table; access = Physical.Full_scan; post; _ } ->
      let rel = Catalog.find ctx.ccat table in
      if Relation.encodings rel <> [] then
        unsupported "compressed encodings";
      let slots = scan_slots ctx rel in
      bline ctx "for (int64_t t = 0; t < nrows; t++) {";
      ctx.cindent <- ctx.cindent + 1;
      (match post with
      | None -> consume slots
      | Some pred ->
          let p = cexpr ctx slots pred in
          bline ctx "if (%s) {" (truthy_c p);
          ctx.cindent <- ctx.cindent + 1;
          consume slots;
          ctx.cindent <- ctx.cindent - 1;
          bline ctx "}");
      ctx.cindent <- ctx.cindent - 1;
      bline ctx "}"
  | Physical.Scan _ -> unsupported "index access"
  | Physical.Select { child; pred; _ } ->
      cproduce ctx child ~consume:(fun slots ->
          let p = cexpr ctx slots pred in
          bline ctx "if (%s) {" (truthy_c p);
          ctx.cindent <- ctx.cindent + 1;
          consume slots;
          ctx.cindent <- ctx.cindent - 1;
          bline ctx "}")
  | Physical.Project { child; exprs } ->
      cproduce ctx child ~consume:(fun slots ->
          let out =
            List.map (fun (e, _) -> cexpr ctx slots e) exprs |> Array.of_list
          in
          consume out)
  | Physical.Limit { child; n } ->
      let lim = ctmp ctx "lim" in
      bline ctx "int64_t %s = 0;" lim;
      cproduce ctx child ~consume:(fun slots ->
          bline ctx "if (%s < %d) {" lim n;
          ctx.cindent <- ctx.cindent + 1;
          bline ctx "%s++;" lim;
          consume slots;
          ctx.cindent <- ctx.cindent - 1;
          bline ctx "}")
  | Physical.Group_by { child; keys; aggs; _ } ->
      cgroup ctx ~child ~keys ~aggs ~consume
  | Physical.Hash_join _ -> unsupported "hash join"
  | Physical.Sort _ -> unsupported "sort"
  | Physical.Insert _ | Physical.Update _ -> unsupported "dml"

and cgroup ctx ~child ~keys ~aggs ~consume =
  let g = ctx.groups in
  ctx.groups <- g + 1;
  let nk = List.length keys in
  let na = List.length aggs in
  let key_tys = ref [||] in
  let agg_tys = ref [||] in
  if nk = 0 then begin
    (* global aggregate: a bare state vector, no table; emits exactly one
       row, matching the interpreter's init-state row on empty input *)
    bline ctx "agg_st g%d_st[%d];" g (max 1 na);
    bline ctx
      "for (int i = 0; i < %d; i++) { g%d_st[i].count = 0; \
       g%d_st[i].sum_i = 0; g%d_st[i].sum_f = 0.0; g%d_st[i].best.tag = 0; \
       g%d_st[i].best.bits = 0; }"
      (max 1 na) g g g g g;
    cproduce ctx child ~consume:(fun slots ->
        let tys =
          List.mapi
            (fun j (a : Aggregate.t) ->
              let s =
                Option.map (fun e -> cexpr ctx slots e) a.Aggregate.expr
              in
              emit_agg_step ctx (Printf.sprintf "g%d_st[%d]" g j) a s;
              match s with Some s -> s.ty | None -> CNull)
            aggs
        in
        agg_tys := Array.of_list tys);
    (* finish: one row *)
    bline ctx "{";
    ctx.cindent <- ctx.cindent + 1;
    let out =
      List.mapi
        (fun j (a : Aggregate.t) ->
          let dst = Printf.sprintf "g%d_f%d" g j in
          bline ctx "mv %s;" dst;
          let ty =
            emit_agg_finish ctx
              (Printf.sprintf "g%d_st[%d]" g j)
              a ~input_ty:(!agg_tys).(j) dst
          in
          mv_slot ty dst)
        aggs
    in
    consume (Array.of_list out);
    ctx.cindent <- ctx.cindent - 1;
    bline ctx "}"
  end
  else begin
    (* keyed group-by: insertion-ordered entries array plus an
       open-addressed index, all local to this query invocation so
       concurrent morsels in different domains cannot interfere *)
    ctx.uses_oom <- true;
    dline ctx "typedef struct { mv key[%d]; agg_st st[%d]; } g%d_ent;" nk
      (max 1 na) g;
    dline ctx
      "typedef struct { g%d_ent *ents; int64_t n, cap; int64_t *idx; \
       int64_t mask; } g%d_tab;"
      g g;
    dline ctx "static int g%d_rehash(g%d_tab *tb) {" g g;
    dline ctx "  int64_t m = tb->mask * 2 + 1;";
    dline ctx "  int64_t *idx = malloc((size_t)(m + 1) * sizeof *idx);";
    dline ctx "  if (!idx) return 0;";
    dline ctx "  for (int64_t i = 0; i <= m; i++) idx[i] = -1;";
    dline ctx "  for (int64_t e = 0; e < tb->n; e++) {";
    dline ctx
      "    uint64_t h = mv_hash(tb->ents[e].key, %d) & (uint64_t)m;" nk;
    dline ctx "    while (idx[h] >= 0) h = (h + 1) & (uint64_t)m;";
    dline ctx "    idx[h] = e;";
    dline ctx "  }";
    dline ctx "  free(tb->idx); tb->idx = idx; tb->mask = m;";
    dline ctx "  return 1;";
    dline ctx "}";
    dline ctx "static int64_t g%d_find(g%d_tab *tb, const mv *key) {" g g;
    dline ctx
      "  if (2 * (tb->n + 1) > tb->mask) { if (!g%d_rehash(tb)) return -1; }"
      g;
    dline ctx "  uint64_t h = mv_hash(key, %d) & (uint64_t)tb->mask;" nk;
    dline ctx "  for (;;) {";
    dline ctx "    int64_t e = tb->idx[h];";
    dline ctx "    if (e < 0) break;";
    dline ctx "    if (mv_eq(tb->ents[e].key, key, %d)) return e;" nk;
    dline ctx "    h = (h + 1) & (uint64_t)tb->mask;";
    dline ctx "  }";
    dline ctx "  if (tb->n == tb->cap) {";
    dline ctx "    int64_t ncap = tb->cap ? tb->cap * 2 : 64;";
    dline ctx
      "    g%d_ent *ne = realloc(tb->ents, (size_t)ncap * sizeof *ne);" g;
    dline ctx "    if (!ne) return -1;";
    dline ctx "    tb->ents = ne; tb->cap = ncap;";
    dline ctx "  }";
    dline ctx "  g%d_ent *e = &tb->ents[tb->n];" g;
    dline ctx "  for (int i = 0; i < %d; i++) e->key[i] = key[i];" nk;
    dline ctx
      "  for (int j = 0; j < %d; j++) { e->st[j].count = 0; e->st[j].sum_i \
       = 0; e->st[j].sum_f = 0.0; e->st[j].best.tag = 0; e->st[j].best.bits \
       = 0; }"
      (max 1 na);
    dline ctx "  tb->idx[h] = tb->n;";
    dline ctx "  return tb->n++;";
    dline ctx "}";
    bline ctx
      "g%d_tab g%d; g%d.n = 0; g%d.cap = 0; g%d.ents = NULL; g%d.mask = \
       1023;"
      g g g g g g;
    bline ctx "g%d.idx = malloc(1024 * sizeof(int64_t));" g;
    bline ctx "if (!g%d.idx) goto mrdb_oom;" g;
    bline ctx "for (int64_t i = 0; i < 1024; i++) g%d.idx[i] = -1;" g;
    ctx.frees <- Printf.sprintf "free(g%d.ents); free(g%d.idx);" g g
                 :: ctx.frees;
    cproduce ctx child ~consume:(fun slots ->
        let ks = List.map (fun (e, _) -> cexpr ctx slots e) keys in
        key_tys := Array.of_list (List.map (fun s -> s.ty) ks);
        let karr = Printf.sprintf "g%d_k" g in
        bline ctx "mv %s[%d];" karr nk;
        List.iteri
          (fun i s -> pack_mv ctx s (Printf.sprintf "%s[%d]" karr i))
          ks;
        bline ctx "int64_t g%d_e = g%d_find(&g%d, %s);" g g g karr;
        bline ctx "if (g%d_e < 0) goto mrdb_oom;" g;
        bline ctx "g%d_ent *g%d_ge = &g%d.ents[g%d_e];" g g g g;
        let tys =
          List.mapi
            (fun j (a : Aggregate.t) ->
              let s =
                Option.map (fun e -> cexpr ctx slots e) a.Aggregate.expr
              in
              emit_agg_step ctx (Printf.sprintf "g%d_ge->st[%d]" g j) a s;
              match s with Some s -> s.ty | None -> CNull)
            aggs
        in
        agg_tys := Array.of_list tys);
    (* emit groups in insertion order *)
    bline ctx "for (int64_t g%d_i = 0; g%d_i < g%d.n; g%d_i++) {" g g g g;
    ctx.cindent <- ctx.cindent + 1;
    bline ctx "g%d_ent *g%d_ge = &g%d.ents[g%d_i];" g g g g;
    let key_slots =
      Array.to_list
        (Array.mapi
           (fun i ty ->
             mv_slot ty (Printf.sprintf "g%d_ge->key[%d]" g i))
           !key_tys)
    in
    let agg_slots =
      List.mapi
        (fun j (a : Aggregate.t) ->
          let dst = Printf.sprintf "g%d_f%d" g j in
          bline ctx "mv %s;" dst;
          let ty =
            emit_agg_finish ctx
              (Printf.sprintf "g%d_ge->st[%d]" g j)
              a ~input_ty:(!agg_tys).(j) dst
          in
          mv_slot ty dst)
        aggs
    in
    consume (Array.of_list (key_slots @ agg_slots));
    ctx.cindent <- ctx.cindent - 1;
    bline ctx "}"
  end

(* ---------------- the translation unit ---------------- *)

(* Substitute bound parameters as constants: the compiled unit is
   specialized per parameter vector (the cache key hashes the emitted
   source, so equal parameter vectors share an object). *)
let rec subst_expr params (e : Expr.t) : Expr.t =
  match e with
  | Expr.Param n ->
      if n < 1 || n > Array.length params then
        unsupported "parameter $%d not bound" n
      else Expr.Const params.(n - 1)
  | Expr.Col _ | Expr.Const _ -> e
  | Expr.Cmp (op, a, b) ->
      Expr.Cmp (op, subst_expr params a, subst_expr params b)
  | Expr.Like (a, b) -> Expr.Like (subst_expr params a, subst_expr params b)
  | Expr.And es -> Expr.And (List.map (subst_expr params) es)
  | Expr.Or es -> Expr.Or (List.map (subst_expr params) es)
  | Expr.Not a -> Expr.Not (subst_expr params a)
  | Expr.IsNull a -> Expr.IsNull (subst_expr params a)
  | Expr.Arith (op, a, b) ->
      Expr.Arith (op, subst_expr params a, subst_expr params b)

let rec subst_plan params (plan : Physical.t) : Physical.t =
  match plan with
  | Physical.Scan ({ post; _ } as s) ->
      Physical.Scan
        { s with post = Option.map (subst_expr params) post }
  | Physical.Select s ->
      Physical.Select
        {
          s with
          child = subst_plan params s.child;
          pred = subst_expr params s.pred;
        }
  | Physical.Project { child; exprs } ->
      Physical.Project
        {
          child = subst_plan params child;
          exprs = List.map (fun (e, n) -> (subst_expr params e, n)) exprs;
        }
  | Physical.Group_by gb ->
      Physical.Group_by
        {
          gb with
          child = subst_plan params gb.child;
          keys = List.map (fun (e, n) -> (subst_expr params e, n)) gb.keys;
          aggs =
            List.map
              (fun (a : Aggregate.t) ->
                { a with Aggregate.expr = Option.map (subst_expr params) a.Aggregate.expr })
              gb.aggs;
        }
  | Physical.Limit { child; n } ->
      Physical.Limit { child = subst_plan params child; n }
  | Physical.Hash_join _ | Physical.Sort _ | Physical.Insert _
  | Physical.Update _ ->
      plan (* rejected in cproduce; no need to substitute *)

let rec driver_table (plan : Physical.t) =
  match plan with
  | Physical.Scan { table; _ } -> table
  | Physical.Select { child; _ }
  | Physical.Project { child; _ }
  | Physical.Group_by { child; _ }
  | Physical.Limit { child; _ } ->
      driver_table child
  | Physical.Sort _ | Physical.Hash_join _ | Physical.Insert _
  | Physical.Update _ ->
      unsupported "plan shape"

let emit_unit cat (plan : Physical.t) ~params =
  try
    let plan = subst_plan params plan in
    let schema = Physical.schema cat plan in
    let out_arity = Array.length schema in
    if out_arity = 0 then unsupported "empty output schema";
    if out_arity > 4096 then unsupported "output arity";
    Array.iter
      (fun (a : Schema.attr) ->
        match a.Schema.ty with
        | Value.Varchar _ -> unsupported "varchar output column"
        | _ -> ())
      schema;
    let table = driver_table plan in
    let rel = Catalog.find cat table in
    let n_parts = Relation.n_parts rel in
    if n_parts > 64 then unsupported "too many partitions";
    let ctx =
      {
        ccat = cat;
        decls = Buffer.create 1024;
        body = Buffer.create 4096;
        cindent = 1;
        ctmp = 0;
        groups = 0;
        frees = [];
        uses_oom = false;
      }
    in
    cproduce ctx plan ~consume:(fun slots ->
        if Array.length slots <> out_arity then
          unsupported "arity mismatch in codegen";
        bline ctx "{";
        ctx.cindent <- ctx.cindent + 1;
        bline ctx "mv r[%d];" out_arity;
        Array.iteri
          (fun i s -> pack_mv ctx s (Printf.sprintf "r[%d]" i))
          slots;
        bline ctx "off = put_row(out, out_cap, off, r, %d);" out_arity;
        bline ctx "rowcount++;";
        ctx.cindent <- ctx.cindent - 1;
        bline ctx "}");
    let b = Buffer.create 8192 in
    Buffer.add_string b prelude;
    Buffer.add_char b '\n';
    Buffer.add_buffer b ctx.decls;
    Buffer.add_string b
      "\nint64_t mrdb_query(const unsigned char *const *parts, int64_t \
       nrows, unsigned char *out, int64_t out_cap) {\n";
    Buffer.add_string b "  int64_t off = 8, rowcount = 0, ret = -1;\n";
    Buffer.add_string b "  (void)parts; (void)nrows;\n";
    Buffer.add_buffer b ctx.body;
    Buffer.add_string b "  ret = off;\n";
    Buffer.add_string b
      "  if (out_cap >= 8) memcpy(out, &rowcount, 8);\n";
    if ctx.uses_oom then begin
      Buffer.add_string b "  goto mrdb_done;\n";
      Buffer.add_string b "mrdb_oom:\n  ret = -1;\nmrdb_done:\n"
    end;
    List.iter
      (fun f -> Buffer.add_string b ("  " ^ f ^ "\n"))
      ctx.frees;
    Buffer.add_string b "  return ret;\n}\n";
    Ok { source = Buffer.contents b; table; n_parts; out_arity }
  with Unsupported msg -> Error msg
