(** Compiled query pipelines: C99 emission + system cc + dlopen.

    The paper's data-centric compilation made concrete: the plan subset
    {!C_emitter.emit_unit} accepts is lowered to one C translation unit,
    built into a shared object by the system C compiler, and entered
    through a hand-written FFI stub that passes the relation's partition
    bytes directly — no OCaml allocation on the scan path.

    Objects are cached by source digest, in-process (function pointers)
    and on disk (under [MRDB_COMPILE_CACHE] or the system temp dir), so a
    repeated plan never recompiles.  Everything else — unsupported plan
    shapes, a missing compiler ([MRDB_NO_CC] forces this), compile or
    load failures — falls back to the interpreted {!Jit} engine, counted
    by the [mrdb_compiled_fallbacks_total] metric. *)

val run :
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result

val prepare :
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  unit ->
  Runtime.result
(** Compile once, step many times.  The thunk re-reads the driver
    relation's row window on each call, so it can serve as a morsel
    stepper under {!Parallel} (reslicing mutates the shadow relation
    between calls). *)

val cc_available : unit -> bool
(** Is a working C compiler reachable?  Consults [MRDB_NO_CC] (any value
    other than ["0"] or [""] disables compilation) and probes
    [MRDB_CC]/[cc] once per process. *)

val reset_cache : unit -> unit
(** Drop the in-process function cache and the compiler probe result (the
    on-disk object cache is untouched).  For tests. *)
