module Value = Storage.Value
module Relation = Storage.Relation
module Catalog = Storage.Catalog
module Buffer = Storage.Buffer
module Schema = Storage.Schema
module Physical = Relalg.Physical
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

let vector_size = 1024

type ctx = {
  cat : Catalog.t;
  params : Value.t array;
  hier : Memsim.Hierarchy.t option;
  arena : Storage.Arena.t;
}

let charge ctx n = Runtime.charge ctx.hier n

(* The single-table pipeline shape this engine runs natively.  Each stage
   carries the span path of the plan operator it was fused from, so the
   profiler can attribute the fused loops back to the original operator
   tree (conjuncts keep the path of the Select — or Scan post-predicate —
   they came from). *)
type pipeline = {
  table : string;
  access : Physical.access;
  conjuncts : (Expr.t * string) list;
  group : ((Expr.t * string) list * Aggregate.t list) option;
  (* projection over the scan output (or over the group output) *)
  projection : (Expr.t * string) list option;
  sort : (int * Relalg.Plan.dir) list option;
  limit : int option;
  scan_path : string;
  scan_label : string;
  group_path : string;
  projection_path : string;
  sort_path : string;
  limit_path : string;
}

(* Decompose a plan into the pipeline shape; None = unsupported, fall back. *)
let extract (plan : Physical.t) : pipeline option =
  let path = Prof.child Prof.root 0 in
  let limit, path, plan, limit_path =
    match plan with
    | Physical.Limit { child; n } -> (Some n, Prof.child path 0, child, path)
    | p -> (None, path, p, path)
  in
  let sort, path, plan, sort_path =
    match plan with
    | Physical.Sort { child; keys } -> (Some keys, Prof.child path 0, child, path)
    | p -> (None, path, p, path)
  in
  let projection, path, plan, projection_path =
    match plan with
    | Physical.Project { child; exprs } ->
        (Some exprs, Prof.child path 0, child, path)
    | p -> (None, path, p, path)
  in
  let group, path, plan, group_path =
    match plan with
    | Physical.Group_by { child; keys; aggs; _ } ->
        (Some (keys, aggs), Prof.child path 0, child, path)
    | p -> (None, path, p, path)
  in
  let rec selects acc path = function
    | Physical.Select { child; pred; _ } ->
        selects
          (acc @ List.map (fun c -> (c, path)) (Expr.conjuncts pred))
          (Prof.child path 0) child
    | p -> (acc, path, p)
  in
  let above, path, plan = selects [] path plan in
  match plan with
  | Physical.Insert _ | Physical.Update _ -> None
  | Physical.Scan { table; access; post; _ } ->
      let conjuncts =
        (match post with
        | Some p -> List.map (fun c -> (c, path)) (Expr.conjuncts p)
        | None -> [])
        @ above
      in
      Some
        {
          table;
          access;
          conjuncts;
          group;
          projection;
          sort;
          limit;
          scan_path = path;
          scan_label = Prof.label plan;
          group_path;
          projection_path;
          sort_path;
          limit_path;
        }
  | _ -> None

let index_tids ctx table access =
  let rel = Catalog.find ctx.cat table in
  match (access : Physical.access) with
  | Physical.Full_scan -> assert false
  | Physical.Index_eq { attrs; keys } -> (
      let key_values =
        List.map (fun e -> Expr.eval e ~params:ctx.params (fun _ -> assert false)) keys
      in
      match Catalog.find_index ctx.cat table ~attrs with
      | Some idx -> Storage.Index.lookup_eq idx rel key_values
      | None -> assert false)
  | Physical.Index_range { attr; lo; hi } -> (
      let ev e = Expr.eval e ~params:ctx.params (fun _ -> assert false) in
      match Catalog.find_index ctx.cat table ~attrs:[ attr ] with
      | Some idx -> Storage.Index.lookup_range idx ~lo:(ev lo) ~hi:(ev hi)
      | None -> assert false)

let run_pipeline ctx (p : pipeline) : Value.t array list =
  (* construction-time gate, as in the other engines: with no session the
     stage thunks run unwrapped *)
  let prof = Prof.on () in
  let wrap path label f = if prof then Prof.op_id path ~label f else f () in
  let rel = Catalog.find ctx.cat p.table in
  let n = Relation.nrows rel in
  (* cache-resident working state, reused across vectors: a selection vector
     and one value slot per touched column of the current vector *)
  let selvec = Buffer.create ctx.arena ?hier:ctx.hier (vector_size * 8) in
  let scratch = Buffer.create ctx.arena ?hier:ctx.hier (vector_size * 8) in
  let group_state =
    Option.map
      (fun (keys, aggs) ->
        let table =
          Runtime.Agg_table.create ?hier:ctx.hier ctx.arena ~aggs
            ~global:(keys = []) ~key_width:16 ()
        in
        (keys, aggs, table))
      p.group
  in
  let rows = ref [] in
  let emit row = rows := row :: !rows in
  (* evaluate an expression for the tuple at [tid] *)
  let eval_at tid e =
    charge ctx Cpu_model.bulk_per_value;
    Expr.eval e ~params:ctx.params (fun col ->
        charge ctx Cpu_model.bulk_per_value;
        Relation.get rel tid col)
  in
  let tid_source =
    match p.access with
    | Physical.Full_scan -> None
    | access -> Some (Array.of_list (index_tids ctx p.table access))
  in
  let total =
    match tid_source with Some tids -> Array.length tids | None -> n
  in
  (* scratch arrays mirroring the two simulator-resident vectors: tids move
     through the simulated buffers as whole runs, not element by element *)
  let tids_arr = Array.make vector_size 0 in
  let keep_arr = Array.make vector_size 0 in
  let chunk_start = ref 0 in
  while !chunk_start < total do
    let m = min vector_size (total - !chunk_start) in
    (* 1. fill the selection vector with the vector's tids (one run) *)
    wrap p.scan_path p.scan_label (fun () ->
        (match tid_source with
        | Some tids -> Array.blit tids !chunk_start tids_arr 0 m
        | None ->
            for i = 0 to m - 1 do
              tids_arr.(i) <- !chunk_start + i
            done);
        Buffer.write_int_run selvec 0 ~count:m tids_arr);
    (* 2. one pass per conjunct, compacting survivors into [scratch] *)
    let count = ref m in
    List.iter
      (fun (conj, conj_path) ->
        wrap conj_path "select" (fun () ->
            Buffer.read_int_run selvec 0 ~count:!count tids_arr;
            let kept = ref 0 in
            (match Runtime.simple_int_cmp ~params:ctx.params rel conj with
            | Some (c, test) ->
                (* unboxed comparison; charges equal the generic evaluation:
                   one expression charge plus one column-read charge per
                   tuple *)
                charge ctx (2 * Cpu_model.bulk_per_value * !count);
                for i = 0 to !count - 1 do
                  let tid = Array.unsafe_get tids_arr i in
                  if test (Relation.get_int rel tid c) then begin
                    Array.unsafe_set keep_arr !kept tid;
                    incr kept
                  end
                done
            | None -> (
                match
                  Runtime.compressed_tid_test ?hier:ctx.hier
                    ~params:ctx.params ~per_value:Cpu_model.bulk_per_value rel
                    conj
                with
                | Some test ->
                    (* coded column: narrow code read + bitmap test/decode
                       per tid; eval charges mirror the generic pass *)
                    charge ctx (2 * Cpu_model.bulk_per_value * !count);
                    for i = 0 to !count - 1 do
                      let tid = Array.unsafe_get tids_arr i in
                      if test tid then begin
                        Array.unsafe_set keep_arr !kept tid;
                        incr kept
                      end
                    done
                | None ->
                    for i = 0 to !count - 1 do
                      let tid = Array.unsafe_get tids_arr i in
                      if Expr.truthy (eval_at tid conj) then begin
                        Array.unsafe_set keep_arr !kept tid;
                        incr kept
                      end
                    done));
            Buffer.write_int_run scratch 0 ~count:!kept keep_arr;
            (* copy back: the two small buffers stay cache resident *)
            Buffer.touch_run scratch 0 ~width:8 ~count:!kept ~stride:8;
            Buffer.write_int_run selvec 0 ~count:!kept keep_arr;
            count := !kept))
      p.conjuncts;
    (* 3. sink: aggregate or project the survivors *)
    Buffer.read_int_run selvec 0 ~count:!count tids_arr;
    (match group_state with
    | Some (keys, aggs, table) ->
        Prof.phase_at p.group_path "accumulate" (fun () ->
            let agg_arr = Array.of_list aggs in
            for i = 0 to !count - 1 do
              let tid = tids_arr.(i) in
              let key = List.map (fun (e, _) -> eval_at tid e) keys in
              let inputs =
                Array.map
                  (fun (a : Aggregate.t) ->
                    match a.Aggregate.expr with
                    | Some e -> eval_at tid e
                    | None -> Value.Null)
                  agg_arr
              in
              Runtime.Agg_table.update table ~key ~inputs
            done)
    | None ->
        let sink_path, sink_label =
          match p.projection with
          | Some _ -> (p.projection_path, "project")
          | None -> (p.scan_path, p.scan_label)
        in
        wrap sink_path sink_label (fun () ->
            let arity = Schema.arity (Relation.schema rel) in
            for i = 0 to !count - 1 do
              let tid = tids_arr.(i) in
              match p.projection with
              | Some exprs ->
                  emit
                    (Array.of_list
                       (List.map (fun (e, _) -> eval_at tid e) exprs))
              | None -> emit (Array.init arity (fun c -> eval_at tid (Expr.Col c)))
            done));
    chunk_start := !chunk_start + vector_size
  done;
  (* group output + projection over it *)
  (match group_state with
  | Some (keys, _, table) ->
      Prof.phase_at p.group_path "emit" (fun () ->
          let n_keys = List.length keys in
          Runtime.Agg_table.emit table (fun key finished ->
              let base = Array.append (Array.of_list key) finished in
              match p.projection with
              | Some exprs ->
                  emit
                    (Array.of_list
                       (List.map
                          (fun (e, _) ->
                            charge ctx Cpu_model.bulk_per_value;
                            Expr.eval e ~params:ctx.params (fun c ->
                                if c < n_keys + Array.length finished then
                                  base.(c)
                                else Value.Null))
                          exprs))
              | None -> emit base))
  | None -> ());
  let out = List.rev !rows in
  let out =
    match p.sort with
    | Some keys ->
        wrap p.sort_path "sort" (fun () ->
            Runtime.sort_rows ?hier:ctx.hier ctx.arena ~row_width:32 ~keys out)
    | None -> out
  in
  match p.limit with
  | Some k ->
      wrap p.limit_path "limit" (fun () ->
          List.filteri (fun i _ -> i < k) out)
  | None -> out

let run cat plan ~params =
  match extract plan with
  | None -> Bulk.run cat plan ~params
  | Some pipeline ->
      let ctx =
        { cat; params; hier = Catalog.hier cat; arena = Catalog.arena cat }
      in
      let schema = Physical.schema cat plan in
      let columns = Array.map (fun (a : Schema.attr) -> a.Schema.name) schema in
      (match plan with
      | Physical.Insert _ -> ()
      | _ -> ());
      let rows = run_pipeline ctx pipeline in
      { Runtime.columns; rows }
