(** The JiT-compiled query engine (HyPer's data-centric model, Section III-B).

    A physical plan is "compiled" once into a tree of OCaml closures: all
    table/partition/offset lookups, predicate constants and query parameters
    are resolved at compile time, and execution runs one tight loop per
    pipeline with no dispatch on the plan structure — our OCaml stand-in for
    LLVM code generation.  Rows in flight are lazy accessors, so a column is
    fetched from storage only when an operator actually uses it: exactly the
    conditional-read behaviour the paper's [s_trav_cr] pattern models. *)

val run :
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result

val prepare :
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  unit ->
  Runtime.result
(** Compile the plan once and return a re-runnable executor.  Each call of
    the returned thunk is equivalent to a fresh {!run} against the
    catalog's current contents: operator state (lazy column caches, hash
    and aggregation tables, sort buffers, limit counters) is reset per
    execution, so the morsel loop can reslice the driver view and re-step
    without paying closure compilation per morsel. *)
