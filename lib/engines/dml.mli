(** Shared executor for UPDATE statements.

    All engines funnel updates through this module: the dataflow (locate
    matching tuples, evaluate new values against the old tuple, write in
    place, rebuild affected indexes) is identical across processing models —
    only the per-value instruction costs differ, which callers pass in. *)

val index_tids :
  Storage.Catalog.t ->
  Storage.Value.t array ->
  string ->
  Relalg.Physical.access ->
  int list option
(** Tuple ids an index access path selects ([None] for a full scan) — the
    locate step of {!update}, shared with the sharded executor so both
    compute identical per-shard match sets. *)

val update :
  per_value:int ->
  call_cost:int ->
  Storage.Catalog.t ->
  params:Storage.Value.t array ->
  table:string ->
  access:Relalg.Physical.access ->
  post:Relalg.Expr.t option ->
  assignments:(int * Relalg.Expr.t) list ->
  int
(** Returns the number of updated tuples.  Indexes whose key includes an
    assigned attribute are rebuilt afterwards. *)
