/* FFI for compiled query pipelines.
 *
 * A pipeline is emitted as a self-contained C99 translation unit, built
 * with the system cc into a shared object, and entered through
 *
 *   int64_t mrdb_query(const unsigned char *const *parts, int64_t nrows,
 *                      unsigned char *out, int64_t out_cap);
 *
 * [parts] are the driver relation's partition payloads offset to the
 * view's first row, [out] receives an 8-byte row count followed by rows of
 * 9-byte (tag, payload) fields, and the return value is the byte size the
 * result needs — the caller grows [out] and re-runs if it exceeds
 * [out_cap].
 *
 * The call stub builds the partition pointer array on the C stack from the
 * Bytes payloads without allocating on the OCaml heap, so nothing can move
 * during the call.  The generated code runs without releasing the domain
 * lock: pipelines are morsel-sized, and keeping the lock keeps the Bytes
 * pointers stable without pinning.
 */

#include <dlfcn.h>
#include <stdint.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

#define MRDB_MAX_PARTS 64

CAMLprim value mrdb_dlopen_stub(value path)
{
  CAMLparam1(path);
  void *h = dlopen(String_val(path), RTLD_NOW | RTLD_LOCAL);
  CAMLreturn(caml_copy_nativeint((intnat)h));
}

CAMLprim value mrdb_dlsym_stub(value handle, value name)
{
  CAMLparam2(handle, name);
  void *h = (void *)Nativeint_val(handle);
  void *fn = h ? dlsym(h, String_val(name)) : NULL;
  CAMLreturn(caml_copy_nativeint((intnat)fn));
}

CAMLprim value mrdb_dlclose_stub(value handle)
{
  CAMLparam1(handle);
  void *h = (void *)Nativeint_val(handle);
  if (h) dlclose(h);
  CAMLreturn(Val_unit);
}

CAMLprim value mrdb_dlerror_stub(value unit)
{
  CAMLparam1(unit);
  const char *e = dlerror();
  CAMLreturn(caml_copy_string(e ? e : "unknown dl error"));
}

typedef int64_t (*mrdb_query_fn)(const unsigned char *const *parts,
                                 int64_t nrows, unsigned char *out,
                                 int64_t out_cap);

CAMLprim value mrdb_call_query_stub(value fn, value parts, value offs,
                                    value nrows, value out)
{
  CAMLparam5(fn, parts, offs, nrows, out);
  const unsigned char *ptrs[MRDB_MAX_PARTS];
  mrdb_query_fn f = (mrdb_query_fn)Nativeint_val(fn);
  mlsize_t np = Wosize_val(parts);
  if (np > MRDB_MAX_PARTS) caml_invalid_argument("mrdb_call_query: too many partitions");
  for (mlsize_t i = 0; i < np; i++)
    ptrs[i] = Bytes_val(Field(parts, i)) + Long_val(Field(offs, i));
  int64_t need = f(ptrs, (int64_t)Long_val(nrows), Bytes_val(out),
                   (int64_t)caml_string_length(out));
  CAMLreturn(Val_long((intnat)need));
}
