module Value = Storage.Value
module Relation = Storage.Relation
module Catalog = Storage.Catalog
module Arena = Storage.Arena
module Schema = Storage.Schema
module Physical = Relalg.Physical
module Aggregate = Relalg.Aggregate
module Expr = Relalg.Expr

(* Morsel starts must align with both cache lines and TLB pages inside every
   partition so a parallel measured run touches each line/page from exactly
   one domain: a row index that is a multiple of 4096 starts at a 4096-byte
   aligned offset (lo * width mod 4096 = 0) for any tuple width.  Results are
   correct for any morsel size; only the miss-counter equality with a
   sequential run relies on the alignment. *)
let default_morsel_size = 4096

(* Address-space stride carved out per worker domain for intermediates
   (selection vectors, hash tables, materialization buffers). *)
let domain_arena_stride = 1 lsl 36

type runner = Storage.Catalog.t -> Relalg.Physical.t -> Runtime.result

type preparer =
  Storage.Catalog.t -> Relalg.Physical.t -> unit -> Runtime.result

(* Engines without a prepared (compile-once, run-many) entry point fall
   back to full recompilation per morsel. *)
let preparer_of_runner (runner : runner) : preparer =
 fun cat plan () -> runner cat plan

(* The shapes the morsel executor accepts.  Everything else falls back to a
   plain sequential run of the base engine. *)
type strategy =
  | Sequential
  | Concat of { driver : string }
      (* scan / select / project pipeline: per-morsel results concatenate *)
  | Group of {
      driver : string;
      morsel_plan : Physical.t; (* group-by with decomposed aggregates *)
      n_keys : int;
      aggs : Aggregate.t list; (* the original aggregates *)
      post : (Expr.t * string) list list;
          (* root projections above the group-by, innermost first; applied
             to the merged groups (they cannot run per morsel: a projection
             of an aggregate is not mergeable) *)
    }

(* The base table a pure scan pipeline drives over, if any. *)
let rec pipeline_driver = function
  | Physical.Scan { table; access = Physical.Full_scan; _ } -> Some table
  | Physical.Select { child; _ } | Physical.Project { child; _ } ->
      pipeline_driver child
  | _ -> None

(* Strip the projections the planner leaves above a group-by (output column
   selection/renaming), innermost first. *)
let rec peel_projections acc = function
  | Physical.Project { child; exprs } -> peel_projections (exprs :: acc) child
  | p -> (acc, p)

let strategy plan =
  match pipeline_driver plan with
  | Some driver -> Concat { driver }
  | None -> (
      match peel_projections [] plan with
      | post, Physical.Group_by { child; keys; aggs; n_groups } -> (
          match pipeline_driver child with
          | Some driver ->
              let decomposed = List.concat_map Aggregate.decompose aggs in
              Group
                {
                  driver;
                  morsel_plan =
                    Physical.Group_by
                      { child; keys; aggs = decomposed; n_groups };
                  n_keys = List.length keys;
                  aggs;
                  post;
                }
          | None -> Sequential)
      | _ -> Sequential)

let parallelizable plan =
  match strategy plan with Sequential -> false | Concat _ | Group _ -> true

(* ------------------------------------------------------------------ *)
(* Per-domain execution state                                          *)
(* ------------------------------------------------------------------ *)

type domain_state = {
  d_hier : Memsim.Hierarchy.t option;
  d_arena : Arena.t;
}

(* A shadow catalog for one domain, built once per worker: every relation is
   a read-only view whose traced accesses go to the domain's private
   hierarchy, and intermediates allocate from the domain's private arena.
   The returned driver view is resliced in place per morsel — the morsel
   loop mutates only its row window instead of reallocating catalog and
   views for every morsel. *)
let domain_catalog cat st ~driver =
  let vcat = Catalog.create ?hier:st.d_hier ~arena:st.d_arena () in
  let driver_view = ref None in
  List.iter
    (fun name ->
      let rel = Relation.with_hier (Catalog.find cat name) st.d_hier in
      if String.equal name driver then driver_view := Some rel;
      Catalog.add_relation vcat rel)
    (Catalog.names cat);
  match !driver_view with
  | Some drv -> (vcat, drv)
  | None -> invalid_arg "Parallel: driver table not in catalog"

(* ------------------------------------------------------------------ *)
(* Merging per-morsel partial results                                  *)
(* ------------------------------------------------------------------ *)

(* Merge per-morsel group-by outputs in morsel order.  Groups keep global
   first-occurrence order — the same order a sequential run's insertion-
   ordered aggregation table emits — and each original aggregate is
   recombined from its merged decomposed partials. *)
let merge_group_rows ~n_keys ~aggs (partials : Runtime.result array) =
  let parts = List.concat_map Aggregate.decompose aggs in
  let part_funcs =
    Array.of_list (List.map (fun (p : Aggregate.t) -> p.Aggregate.func) parts)
  in
  let n_parts = Array.length part_funcs in
  let tbl : (Value.t list, Value.t array) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun (r : Runtime.result) ->
      List.iter
        (fun row ->
          let key = Array.to_list (Array.sub row 0 n_keys) in
          match Hashtbl.find_opt tbl key with
          | None ->
              Hashtbl.add tbl key (Array.sub row n_keys n_parts);
              order := key :: !order
          | Some acc ->
              for i = 0 to n_parts - 1 do
                acc.(i) <- Aggregate.merge_value part_funcs.(i) acc.(i)
                             row.(n_keys + i)
              done)
        r.Runtime.rows)
    partials;
  let rows =
    List.rev_map
      (fun key ->
        let acc = Hashtbl.find tbl key in
        let finished = ref [] in
        let slot = ref n_parts in
        List.iter
          (fun (a : Aggregate.t) ->
            let width = List.length (Aggregate.decompose a) in
            slot := !slot - width;
            finished := Aggregate.recombine a (Array.sub acc !slot width) :: !finished)
          (List.rev aggs);
        Array.of_list (key @ !finished))
      !order
  in
  rows

(* ------------------------------------------------------------------ *)
(* Chunked morsel claiming with stealing                               *)
(* ------------------------------------------------------------------ *)

(* Each domain owns a contiguous range of morsel indices, packed as
   (next, hi) into one atomic word so a claim is a single CAS on a
   domain-private cache line instead of every worker hammering one shared
   counter.  An exhausted domain steals the upper half of the richest
   victim's remaining range; morsels stay the unit of work, so result
   ordering and per-domain measured-traffic invariants are unchanged. *)
let range_bits = 30
let range_mask = (1 lsl range_bits) - 1
let pack next hi = (hi lsl range_bits) lor next
let next_of x = x land range_mask
let hi_of x = x asr range_bits

let make_ranges ~domains n_morsels =
  Array.init domains (fun d ->
      let lo = d * n_morsels / domains in
      let hi = (d + 1) * n_morsels / domains in
      Atomic.make (pack lo hi))

let rec claim ranges d =
  let r = ranges.(d) in
  let x = Atomic.get r in
  let nx = next_of x and hi = hi_of x in
  if nx < hi then
    if Atomic.compare_and_set r x (pack (nx + 1) hi) then Some nx
    else claim ranges d
  else steal ranges d

and steal ranges d =
  let domains = Array.length ranges in
  let best = ref (-1) and best_rem = ref 0 in
  for v = 0 to domains - 1 do
    if v <> d then begin
      let x = Atomic.get ranges.(v) in
      let rem = hi_of x - next_of x in
      if rem > !best_rem then begin
        best := v;
        best_rem := rem
      end
    end
  done;
  if !best < 0 then None
  else
    let v = !best in
    let x = Atomic.get ranges.(v) in
    let nx = next_of x and hi = hi_of x in
    if hi - nx <= 0 then steal ranges d
    else if hi - nx = 1 then
      if Atomic.compare_and_set ranges.(v) x (pack hi hi) then Some nx
      else steal ranges d
    else
      let mid = (nx + hi + 1) / 2 in
      if Atomic.compare_and_set ranges.(v) x (pack nx mid) then begin
        (* our own range is empty (that is why we are stealing) and no one
           else ever refills it, so a plain store cannot lose work *)
        Atomic.set ranges.(d) (pack mid hi);
        claim ranges d
      end
      else steal ranges d

(* ------------------------------------------------------------------ *)
(* The morsel loop                                                     *)
(* ------------------------------------------------------------------ *)

(* Run [morsel_plan] over every morsel of [driver], fanned out to [domains]
   pool workers through per-domain chunked ranges with stealing, and return
   the per-morsel results in morsel order plus each domain's hierarchy.
   Each worker builds its shadow catalog and compiles the pipeline once
   ([prepare]); the claim loop itself only reslices the driver view and
   re-steps the prepared pipeline. *)
let run_morsels ~domains ~morsel_size ~(prepare : preparer) ~measured cat
    ~driver morsel_plan =
  let n = Relation.nrows (Catalog.find cat driver) in
  let n_morsels = max 1 ((n + morsel_size - 1) / morsel_size) in
  let domains = max 1 (min domains n_morsels) in
  let hier_params =
    match Catalog.hier cat with
    | Some h -> Memsim.Hierarchy.params h
    | None -> Memsim.Params.nehalem
  in
  let base_mark = Arena.mark (Catalog.arena cat) in
  let states =
    Array.init domains (fun d ->
        {
          d_hier =
            (if measured then
               Some (Memsim.Hierarchy.create ~params:hier_params ())
             else None);
          d_arena =
            Arena.create ~start:(base_mark + ((d + 1) * domain_arena_stride)) ();
        })
  in
  let results : Runtime.result option array = Array.make n_morsels None in
  let ranges = make_ranges ~domains n_morsels in
  (* decided on the parent domain: workers run on domains with no session
     installed, so they can't consult Profile.on themselves *)
  let prof = Obs.Profile.on () in
  let profiles : Obs.Span.profile option array = Array.make domains None in
  let worker d =
    let st = states.(d) in
    (* each worker profiles against its private hierarchy; worker 0 runs
       on the parent domain, where start/stop save and restore the
       parent's session.  Session and pipeline setup are hoisted out of
       the claim loop: per morsel only the reslice and the step remain. *)
    let session =
      if prof then
        Some
          (Obs.Profile.start ?hier:st.d_hier
             ~label:(Printf.sprintf "domain %d" d) ())
      else None
    in
    Fun.protect
      ~finally:(fun () ->
        match session with
        | Some s -> profiles.(d) <- Some (Obs.Profile.stop s)
        | None -> ())
      (fun () ->
        let vcat, drv = domain_catalog cat st ~driver in
        let step = prepare vcat morsel_plan in
        let rec loop () =
          match claim ranges d with
          | None -> ()
          | Some m ->
              let lo = m * morsel_size in
              let len = min morsel_size (n - lo) in
              Relation.reslice drv ~lo ~len;
              results.(m) <- Some (step ());
              loop ()
        in
        loop ())
  in
  Pool.parallel_run ~domains worker;
  if prof then
    Obs.Profile.add_domains
      (List.filter_map Fun.id (Array.to_list profiles));
  let partials =
    Array.map
      (function
        | Some r -> r
        | None -> invalid_arg "Parallel: unexecuted morsel")
      results
  in
  (partials, states)

let merged_stats states =
  Array.to_list states
  |> List.filter_map (fun st -> Option.map Memsim.Hierarchy.snapshot st.d_hier)
  |> function
  | [] -> Memsim.Stats.create ()
  | s :: rest -> List.fold_left Memsim.Stats.merge s rest

let result_columns cat plan =
  Array.map (fun (a : Schema.attr) -> a.Schema.name) (Physical.schema cat plan)

(* Apply the peeled root projections, innermost first, to the merged group
   rows. *)
let apply_projections ~params post rows =
  List.fold_left
    (fun rows exprs ->
      List.map
        (fun row ->
          Array.of_list
            (List.map (fun (e, _) -> Expr.eval e ~params (Array.get row)) exprs))
        rows)
    rows post

(* ------------------------------------------------------------------ *)
(* Morsel-size autotuning                                              *)
(* ------------------------------------------------------------------ *)

(* Target wall time per morsel: long enough that claim/reslice overhead is
   noise, short enough that stealing still balances skew. *)
let autotune_target_seconds = 0.001
let morsel_size_gauge = lazy (Obs.Metrics.gauge "parallel_morsel_size")

(* Pick the morsel size from one measured probe morsel instead of the
   fixed default: prepare the pipeline over an untraced shadow catalog,
   time [default_morsel_size] rows, and size morsels to
   [autotune_target_seconds] of work — rounded to a multiple of 4096 (the
   line/page-alignment quantum) and clamped so every domain still gets at
   least two morsels to balance with. *)
let autotune_morsel_size ~domains ~(prepare : preparer) cat ~driver
    morsel_plan =
  let n = Relation.nrows (Catalog.find cat driver) in
  let chosen =
    if n <= default_morsel_size then default_morsel_size
    else begin
      let st =
        {
          d_hier = None;
          d_arena =
            Arena.create
              ~start:
                (Arena.mark (Catalog.arena cat)
                + ((domains + 1) * domain_arena_stride))
              ();
        }
      in
      let vcat, drv = domain_catalog cat st ~driver in
      let step = prepare vcat morsel_plan in
      Relation.reslice drv ~lo:0 ~len:default_morsel_size;
      let t0 = Unix.gettimeofday () in
      ignore (step ());
      let dt = Unix.gettimeofday () -. t0 in
      let per_row = dt /. float_of_int default_morsel_size in
      let upper =
        max default_morsel_size
          (n / (2 * max 1 domains) / default_morsel_size * default_morsel_size)
      in
      if per_row <= 0. then upper
      else
        let want = autotune_target_seconds /. per_row in
        let quantized =
          int_of_float (want /. float_of_int default_morsel_size)
          * default_morsel_size
        in
        min upper (max default_morsel_size quantized)
    end
  in
  Obs.Metrics.set (Lazy.force morsel_size_gauge) (float_of_int chosen);
  chosen

(* Execute [plan] morsel-parallel; [None] if the plan shape is sequential-
   only and the caller should fall back. *)
let exec ~domains ~morsel_size ~autotune ~prepare ~params ~measured cat plan =
  let morsels ~driver morsel_plan =
    let morsel_size =
      if autotune && not measured then
        autotune_morsel_size ~domains ~prepare cat ~driver morsel_plan
      else morsel_size
    in
    run_morsels ~domains ~morsel_size ~prepare ~measured cat ~driver
      morsel_plan
  in
  match strategy plan with
  | Sequential -> None
  | Concat { driver } ->
      let partials, states = morsels ~driver plan in
      Some
        (Runtime.concat_results (Array.to_list partials), merged_stats states)
  | Group { driver; morsel_plan; n_keys; aggs; post } ->
      let partials, states = morsels ~driver morsel_plan in
      let merged = merge_group_rows ~n_keys ~aggs partials in
      let rows = apply_projections ~params post merged in
      Some
        ( { Runtime.columns = result_columns cat plan; rows },
          merged_stats states )

let run ~domains ?(morsel_size = default_morsel_size) ?(autotune = false)
    ~(runner : runner) ?prepare ?(params = [||]) cat plan =
  if morsel_size <= 0 then invalid_arg "Parallel.run: morsel_size must be > 0";
  let prepare =
    match prepare with Some p -> p | None -> preparer_of_runner runner
  in
  if domains <= 1 then runner cat plan
  else
    match
      exec ~domains ~morsel_size ~autotune ~prepare ~params ~measured:false
        cat plan
    with
    | Some (result, _) -> result
    | None -> runner cat plan

let run_measured ?(cold = true) ~domains
    ?(morsel_size = default_morsel_size) ~(runner : runner) ?prepare
    ?(params = [||]) cat plan =
  if morsel_size <= 0 then
    invalid_arg "Parallel.run_measured: morsel_size must be > 0";
  let prepare =
    match prepare with Some p -> p | None -> preparer_of_runner runner
  in
  let sequential () =
    match Catalog.hier cat with
    | None -> (runner cat plan, Memsim.Stats.create ())
    | Some h ->
        if cold then Memsim.Hierarchy.reset h
        else Memsim.Hierarchy.reset_stats h;
        Obs.Profile.resync ();
        let r = runner cat plan in
        (r, Memsim.Hierarchy.snapshot h)
  in
  if domains <= 1 || Option.is_none (Catalog.hier cat) then sequential ()
  else
    match
      exec ~domains ~morsel_size ~autotune:false ~prepare ~params
        ~measured:true cat plan
    with
    | Some rs -> rs
    | None -> sequential ()
