module Value = Storage.Value
module Relation = Storage.Relation
module Catalog = Storage.Catalog
module Buffer = Storage.Buffer
module Schema = Storage.Schema
module Physical = Relalg.Physical
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

type ctx = {
  cat : Catalog.t;
  params : Value.t array;
  hier : Memsim.Hierarchy.t option;
  arena : Storage.Arena.t;
  per_value : int;
}

let charge ctx n = Runtime.charge ctx.hier n

(* ------------------------------------------------------------------ *)
(* Materialized vectors                                                *)
(* ------------------------------------------------------------------ *)

type posvec = { pbuf : Buffer.t; mutable pn : int }

let posvec_create ctx ~capacity =
  { pbuf = Buffer.create ctx.arena ?hier:ctx.hier (max 64 (capacity * 8)); pn = 0 }

let posvec_push ctx v tid =
  charge ctx ctx.per_value;
  Buffer.grow v.pbuf ((v.pn + 1) * 8);
  Buffer.write_int v.pbuf (v.pn * 8) tid;
  v.pn <- v.pn + 1

let posvec_get ctx v i =
  charge ctx ctx.per_value;
  Buffer.read_int v.pbuf (i * 8)

type colvec = {
  cbuf : Buffer.t;
  ty : Value.ty;
  nullable : bool;
  width : int;
  mutable cn : int;
}

let colvec_create ctx ~ty ~nullable ~capacity =
  let width = Value.data_width ty + if nullable then 1 else 0 in
  {
    cbuf = Buffer.create ctx.arena ?hier:ctx.hier (max 64 (capacity * width));
    ty;
    nullable;
    width;
    cn = 0;
  }

let colvec_push ctx v value =
  charge ctx ctx.per_value;
  Buffer.grow v.cbuf ((v.cn + 1) * v.width);
  Buffer.write_value v.cbuf (v.cn * v.width) ~ty:v.ty ~nullable:v.nullable value;
  v.cn <- v.cn + 1

let colvec_get ctx v i =
  charge ctx ctx.per_value;
  Buffer.read_value v.cbuf (i * v.width) ~ty:v.ty ~nullable:v.nullable

(* ------------------------------------------------------------------ *)
(* Intermediate results                                                *)
(* ------------------------------------------------------------------ *)

type src =
  | Base of Relation.t * posvec option
  | Mat of colvec option array * int (* materialized columns, row count *)

let src_count = function
  | Base (rel, None) -> Relation.nrows rel
  | Base (_, Some pos) -> pos.pn
  | Mat (_, n) -> n

(* read column [col] of logical row [i] *)
let src_get ctx src i col =
  match src with
  | Base (rel, pos) ->
      let tid =
        match pos with None -> i | Some p -> posvec_get ctx p i
      in
      charge ctx ctx.per_value;
      Relation.get rel tid col
  | Mat (cols, _) -> (
      match cols.(col) with
      | Some v -> colvec_get ctx v i
      | None -> invalid_arg "Bulk: column was not materialized")

let eval_expr ctx src i e =
  charge ctx ctx.per_value;
  Expr.eval e ~params:ctx.params (fun col -> src_get ctx src i col)

let src_schema ctx plan = Physical.schema ctx.cat plan

let block = 1024

(* Batched column materialization: the source is a whole base relation and
   the column is stored plain and non-nullable, so both the stored column
   and the destination vector are fixed-stride runs.  [charges] is the
   per-tuple CPU charge of the loop being replaced (evaluation + read +
   push charges), kept identical to the generic path. *)
let mat_col_run ctx rel c ~charges v =
  let n = Relation.nrows rel in
  if n > 0 then begin
    let vals = Array.make (min block n) Value.Null in
    Buffer.grow v.cbuf ((v.cn + n) * v.width);
    let lo = ref 0 in
    while !lo < n do
      let m = min block (n - !lo) in
      Relation.read_value_run rel ~lo:!lo ~count:m c vals;
      charge ctx (charges * ctx.per_value * m);
      Buffer.write_value_run v.cbuf (v.cn * v.width) ~stride:v.width ~ty:v.ty
        ~count:m vals;
      v.cn <- v.cn + m;
      lo := !lo + m
    done
  end

(* Materialize the listed columns of [src] into a Mat. *)
let materialize ctx (schema : Schema.attr array) src cols =
  let n = src_count src in
  let out = Array.make (Array.length schema) None in
  List.iter
    (fun c ->
      let a = schema.(c) in
      let v =
        colvec_create ctx ~ty:a.Schema.ty ~nullable:a.Schema.nullable
          ~capacity:n
      in
      (match src with
      | Base (rel, None) when Relation.run_readable rel c && not v.nullable ->
          mat_col_run ctx rel c ~charges:2 v
      | _ ->
          for i = 0 to n - 1 do
            colvec_push ctx v (src_get ctx src i c)
          done);
      out.(c) <- Some v)
    cols;
  Mat (out, n)

let index_tids ctx table access =
  let rel = Catalog.find ctx.cat table in
  match (access : Physical.access) with
  | Physical.Full_scan -> assert false
  | Physical.Index_eq { attrs; keys } -> (
      let key_values =
        List.map (fun e -> Expr.eval e ~params:ctx.params (fun _ -> assert false)) keys
      in
      match Catalog.find_index ctx.cat table ~attrs with
      | Some idx -> Storage.Index.lookup_eq idx rel key_values
      | None -> assert false)
  | Physical.Index_range { attr; lo; hi } -> (
      let ev e = Expr.eval e ~params:ctx.params (fun _ -> assert false) in
      match Catalog.find_index ctx.cat table ~attrs:[ attr ] with
      | Some idx -> Storage.Index.lookup_range idx ~lo:(ev lo) ~hi:(ev hi)
      | None -> assert false)

(* Append [k] surviving tids to a posvec as one run. *)
let posvec_push_run ctx v surv k =
  if k > 0 then begin
    charge ctx (ctx.per_value * k);
    Buffer.grow v.pbuf ((v.pn + k) * 8);
    Buffer.write_int_run v.pbuf (v.pn * 8) ~count:k surv;
    v.pn <- v.pn + k
  end

(* Selection the bulk way: one pass per conjunct over the current candidate
   positions, materializing the surviving positions each time. *)
let filter_base ctx rel pos pred =
  let conjs = Expr.conjuncts pred in
  List.fold_left
    (fun pos conj ->
      let n = match pos with None -> Relation.nrows rel | Some p -> p.pn in
      let keep = posvec_create ctx ~capacity:(max 16 (n / 4)) in
      let generic () =
        for i = 0 to n - 1 do
          let tid = match pos with None -> i | Some p -> posvec_get ctx p i in
          charge ctx ctx.per_value;
          let v =
            Expr.eval conj ~params:ctx.params (fun col ->
                charge ctx ctx.per_value;
                Relation.get rel tid col)
          in
          if Expr.truthy v then posvec_push ctx keep tid
        done
      in
      let compressed_scan =
        match pos with
        | None ->
            Option.map snd
              (Runtime.compressed_filter_range ?hier:ctx.hier
                 ~params:ctx.params ~per_value:ctx.per_value rel conj)
        | Some _ -> None
      in
      (match compressed_scan with
      | Some scan ->
          (* survivors arrive as ascending tid ranges; push them as runs *)
          let surv = Array.make block 0 in
          scan (fun ~lo ~len _ ->
              let off = ref 0 in
              while !off < len do
                let m = min block (len - !off) in
                for i = 0 to m - 1 do
                  Array.unsafe_set surv i (lo + !off + i)
                done;
                posvec_push_run ctx keep surv m;
                off := !off + m
              done)
      | None ->
      match Runtime.simple_int_cmp ~params:ctx.params rel conj with
      | Some (c, test) when n > 0 -> (
          (* Per-tuple charges mirror the generic loop below: one evaluation
             charge, one column-read charge, plus (for a position input) one
             posvec-read charge; each survivor adds one push charge. *)
          let surv = Array.make (min block n) 0 in
          match pos with
          | None ->
              let vals = Array.make (min block n) 0 in
              let lo = ref 0 in
              while !lo < n do
                let m = min block (n - !lo) in
                Relation.read_int_run rel ~lo:!lo ~count:m c vals;
                charge ctx (2 * ctx.per_value * m);
                let k = ref 0 in
                for i = 0 to m - 1 do
                  if test (Array.unsafe_get vals i) then begin
                    Array.unsafe_set surv !k (!lo + i);
                    incr k
                  end
                done;
                posvec_push_run ctx keep surv !k;
                lo := !lo + m
              done
          | Some p ->
              let tids = Array.make (min block n) 0 in
              let lo = ref 0 in
              while !lo < n do
                let m = min block (n - !lo) in
                Buffer.read_int_run p.pbuf (!lo * 8) ~count:m tids;
                charge ctx (3 * ctx.per_value * m);
                let k = ref 0 in
                for i = 0 to m - 1 do
                  let tid = Array.unsafe_get tids i in
                  if test (Relation.get_int rel tid c) then begin
                    Array.unsafe_set surv !k tid;
                    incr k
                  end
                done;
                posvec_push_run ctx keep surv !k;
                lo := !lo + m
              done)
      | _ -> (
          match
            ( pos,
              Runtime.compressed_tid_test ?hier:ctx.hier ~params:ctx.params
                ~per_value:ctx.per_value rel conj )
          with
          | Some p, Some test when n > 0 ->
              (* position input over a coded column: per-tid narrow code
                 test, charges mirroring the generic loop *)
              for i = 0 to n - 1 do
                let tid = posvec_get ctx p i in
                charge ctx (2 * ctx.per_value);
                if test tid then posvec_push ctx keep tid
              done
          | _ -> generic ()));
      Some keep)
    pos conjs

let filter_mat ctx schema cols n pred =
  let src = Mat (cols, n) in
  let avail =
    Array.to_list
      (Array.mapi (fun i c -> if c = None then None else Some i) cols)
    |> List.filter_map Fun.id
  in
  let keep = ref [] in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if Expr.truthy (eval_expr ctx src i pred) then begin
      keep := i :: !keep;
      incr count
    end
  done;
  let keep = Array.of_list (List.rev !keep) in
  let out = Array.make (Array.length cols) None in
  List.iter
    (fun c ->
      let a = schema.(c) in
      let v =
        colvec_create ctx ~ty:a.Schema.ty ~nullable:a.Schema.nullable
          ~capacity:!count
      in
      Array.iter (fun i -> colvec_push ctx v (src_get ctx src i c)) keep;
      out.(c) <- Some v)
    avail;
  Mat (out, !count)

(* Emit a finished aggregation table as materialized output columns. *)
let group_emit ctx plan keys table =
  let schema = src_schema ctx plan in
  let out =
    Array.map
      (fun (a : Schema.attr) ->
        Some
          (colvec_create ctx ~ty:a.Schema.ty ~nullable:a.Schema.nullable
             ~capacity:16))
      schema
  in
  let n_keys = List.length keys in
  let count = ref 0 in
  Prof.phase "emit" (fun () ->
      Runtime.Agg_table.emit table (fun key finished ->
          List.iteri
            (fun j v ->
              match out.(j) with
              | Some vec -> colvec_push ctx vec v
              | None -> ())
            key;
          Array.iteri
            (fun j v ->
              match out.(n_keys + j) with
              | Some vec -> colvec_push ctx vec v
              | None -> ())
            finished;
          incr count));
  Mat (out, !count)

(* Columns of its input that the remaining plan needs from this operator's
   output (computed by the caller and passed down). *)
let rec eval ctx path (plan : Physical.t) ~(needed : int list) : src =
  if Prof.on () then Prof.op path plan (fun () -> eval_raw ctx path plan ~needed)
  else eval_raw ctx path plan ~needed

and eval_raw ctx path (plan : Physical.t) ~(needed : int list) : src =
  match plan with
  | Physical.Scan { table; access; post; _ } -> (
      let rel = Catalog.find ctx.cat table in
      let pos =
        match access with
        | Physical.Full_scan -> None
        | _ ->
            let tids = index_tids ctx table access in
            let v = posvec_create ctx ~capacity:(List.length tids) in
            List.iter (fun t -> posvec_push ctx v t) tids;
            Some v
      in
      match post with
      | None -> Base (rel, pos)
      | Some pred -> Base (rel, filter_base ctx rel pos pred))
  | Physical.Select { child; pred; _ } -> (
      let child_needed =
        List.sort_uniq compare (needed @ Expr.cols pred)
      in
      match eval ctx (Prof.child path 0) child ~needed:child_needed with
      | Base (rel, pos) -> Base (rel, filter_base ctx rel pos pred)
      | Mat (cols, n) ->
          filter_mat ctx (src_schema ctx child) cols n pred)
  | Physical.Project { child; exprs } ->
      let exprs = Array.of_list (List.map fst exprs) in
      let child_needed =
        List.sort_uniq compare
          (List.concat_map Expr.cols (Array.to_list exprs))
      in
      let src = eval ctx (Prof.child path 0) child ~needed:child_needed in
      let n = src_count src in
      let schema = src_schema ctx plan in
      let out =
        Array.mapi
          (fun j (a : Schema.attr) ->
            let v =
              colvec_create ctx ~ty:a.Schema.ty ~nullable:a.Schema.nullable
                ~capacity:n
            in
            (match (exprs.(j), src) with
            | Expr.Col c, Base (rel, None)
              when Relation.run_readable rel c && not v.nullable ->
                mat_col_run ctx rel c ~charges:3 v
            | _ ->
                for i = 0 to n - 1 do
                  colvec_push ctx v (eval_expr ctx src i exprs.(j))
                done);
            Some v)
          schema
      in
      Mat (out, n)
  | Physical.Hash_join { build; probe; build_keys; probe_keys; _ } ->
      let build_schema = src_schema ctx build in
      let build_arity = Array.length build_schema in
      let needed_build =
        List.sort_uniq compare
          (build_keys @ List.filter (fun c -> c < build_arity) needed)
      in
      let needed_probe =
        List.sort_uniq compare
          (probe_keys
          @ List.filter_map
              (fun c -> if c >= build_arity then Some (c - build_arity) else None)
              needed)
      in
      let bsrc = eval ctx (Prof.child path 0) build ~needed:needed_build in
      let psrc = eval ctx (Prof.child path 1) probe ~needed:needed_probe in
      let ht =
        Runtime.Sim_hash.create ?hier:ctx.hier ctx.arena ~entry_width:16 ()
      in
      let bsrc =
        Prof.phase "build" (fun () ->
            let bsrc =
              match bsrc with
              | Mat _ -> bsrc
              | Base _ -> materialize ctx build_schema bsrc needed_build
            in
            let bn = src_count bsrc in
            for i = 0 to bn - 1 do
              let key = List.map (fun c -> src_get ctx bsrc i c) build_keys in
              Runtime.Sim_hash.add ht ~key i
            done;
            bsrc)
      in
      let pn = src_count psrc in
      let schema = src_schema ctx plan in
      let out_cols =
        Array.mapi
          (fun j (a : Schema.attr) ->
            if List.mem j needed then
              Some
                (colvec_create ctx ~ty:a.Schema.ty ~nullable:a.Schema.nullable
                   ~capacity:(max 16 pn))
            else None)
          schema
      in
      let out_n = ref 0 in
      Prof.phase "probe" (fun () ->
          for i = 0 to pn - 1 do
            let key = List.map (fun c -> src_get ctx psrc i c) probe_keys in
            List.iter
              (fun bi ->
                Array.iteri
                  (fun j v ->
                    match v with
                    | None -> ()
                    | Some v ->
                        let value =
                          if j < build_arity then src_get ctx bsrc bi j
                          else src_get ctx psrc i (j - build_arity)
                        in
                        colvec_push ctx v value)
                  out_cols;
                incr out_n)
              (Runtime.Sim_hash.find_all ht ~key)
          done);
      Mat (out_cols, !out_n)
  | Physical.Group_by { child; keys; aggs; _ } ->
      let key_exprs = List.map fst keys in
      let child_needed =
        List.sort_uniq compare
          (List.concat_map Expr.cols key_exprs
          @ List.concat_map
              (fun (a : Aggregate.t) ->
                match a.Aggregate.expr with Some e -> Expr.cols e | None -> [])
              aggs)
      in
      let src = eval ctx (Prof.child path 0) child ~needed:child_needed in
      let n = src_count src in
      let child_schema = src_schema ctx child in
      (* run-granular aggregation: grouping by a whole RLE column with every
         aggregate argument on that same column folds each run into one
         accumulator update *)
      let rle_group =
        match (src, key_exprs) with
        | Base (rel, None), [ Expr.Col g ] when Relation.rle_readable rel g ->
            if
              List.for_all
                (fun (a : Aggregate.t) ->
                  match a.Aggregate.expr with
                  | None -> true
                  | Some (Expr.Col c) -> c = g
                  | Some _ -> false)
                aggs
            then Some (rel, g)
            else None
        | _ -> None
      in
      (match rle_group with
      | Some (rel, g) ->
          let table =
            Runtime.Agg_table.create ?hier:ctx.hier ctx.arena ~aggs
              ~global:false ~key_width:16 ()
          in
          let agg_arr = Array.of_list aggs in
          let per_run_charge = ctx.per_value * (1 + Array.length agg_arr) in
          Prof.phase "accumulate" (fun () ->
              if n > 0 then
                Relation.iter_rle_runs rel ~lo:0 ~count:n g
                  (fun ~lo:_ ~len v ->
                    charge ctx per_run_charge;
                    let inputs =
                      Array.map
                        (fun (a : Aggregate.t) ->
                          match a.Aggregate.expr with
                          | Some _ -> v
                          | None -> Value.Null)
                        agg_arr
                    in
                    Runtime.Agg_table.update_n table ~key:[ v ] ~inputs
                      ~count:len));
          group_emit ctx plan keys table
      | None ->
      (* bulk style: materialize key and argument vectors first *)
      let mat_expr e =
        let ty, nullable = Relalg.Plan.type_of_expr child_schema e in
        let v = colvec_create ctx ~ty ~nullable ~capacity:n in
        (match (e, src) with
        | Expr.Col c, Base (rel, None)
          when Relation.run_readable rel c && not v.nullable ->
            mat_col_run ctx rel c ~charges:3 v
        | _ ->
            for i = 0 to n - 1 do
              colvec_push ctx v (eval_expr ctx src i e)
            done);
        v
      in
      let key_vecs, agg_vecs =
        Prof.phase "materialize" (fun () ->
            ( List.map mat_expr key_exprs,
              List.map
                (fun (a : Aggregate.t) ->
                  match a.Aggregate.expr with
                  | Some e -> Some (mat_expr e)
                  | None -> None)
                aggs ))
      in
      let table =
        Runtime.Agg_table.create ?hier:ctx.hier ctx.arena ~aggs
          ~global:(keys = []) ~key_width:16 ()
      in
      let agg_vec_arr = Array.of_list agg_vecs in
      Prof.phase "accumulate" (fun () ->
          for i = 0 to n - 1 do
            let key = List.map (fun v -> colvec_get ctx v i) key_vecs in
            let inputs =
              Array.map
                (function
                  | Some v -> colvec_get ctx v i
                  | None -> Value.Null)
                agg_vec_arr
            in
            Runtime.Agg_table.update table ~key ~inputs
          done);
      group_emit ctx plan keys table)
  | Physical.Sort { child; keys } ->
      let schema = src_schema ctx child in
      let all = List.init (Array.length schema) Fun.id in
      let child_needed = List.sort_uniq compare (needed @ List.map fst keys @ all) in
      let src = eval ctx (Prof.child path 0) child ~needed:child_needed in
      let n = src_count src in
      let rows =
        List.init n (fun i ->
            Array.init (Array.length schema) (fun c -> src_get ctx src i c))
      in
      let sorted =
        Prof.phase "sort" (fun () ->
            Runtime.sort_rows ?hier:ctx.hier ctx.arena
              ~row_width:
                (max 8 (Schema.row_width { Schema.name = ""; attrs = schema }))
              ~keys rows)
      in
      let out =
        Array.map
          (fun (a : Schema.attr) ->
            Some
              (colvec_create ctx ~ty:a.Schema.ty ~nullable:a.Schema.nullable
                 ~capacity:n))
          schema
      in
      List.iter
        (fun row ->
          Array.iteri
            (fun j v ->
              match out.(j) with
              | Some vec -> colvec_push ctx vec v
              | None -> ())
            row)
        sorted;
      Mat (out, n)
  | Physical.Limit { child; n } ->
      let src = eval ctx (Prof.child path 0) child ~needed in
      let count = min n (src_count src) in
      let schema = src_schema ctx child in
      let avail =
        match src with
        | Base _ -> List.init (Array.length schema) Fun.id
        | Mat (cols, _) ->
            List.filter_map Fun.id
              (Array.to_list
                 (Array.mapi (fun i c -> if c = None then None else Some i) cols))
      in
      let out = Array.make (Array.length schema) None in
      List.iter
        (fun c ->
          let a = schema.(c) in
          let v =
            colvec_create ctx ~ty:a.Schema.ty ~nullable:a.Schema.nullable
              ~capacity:count
          in
          for i = 0 to count - 1 do
            colvec_push ctx v (src_get ctx src i c)
          done;
          out.(c) <- Some v)
        avail;
      Mat (out, count)
  | Physical.Update { table; access; post; assignments; _ } ->
      ignore
        (Dml.update ~per_value:ctx.per_value ~call_cost:0 ctx.cat
           ~params:ctx.params ~table ~access ~post ~assignments);
      Mat ([||], 0)
  | Physical.Insert { table; values } ->
      let rel = Catalog.find ctx.cat table in
      let tuple =
        Array.of_list
          (List.map
             (fun e ->
               charge ctx ctx.per_value;
               Expr.eval e ~params:ctx.params (fun _ ->
                   invalid_arg "INSERT values cannot reference columns"))
             values)
      in
      let tid = Relation.append rel tuple in
      Catalog.notify_insert ctx.cat table ~tid;
      Mat ([||], 0)

let run ?(per_value = Cpu_model.bulk_per_value) cat plan ~params =
  let ctx =
    { cat; params; hier = Catalog.hier cat; arena = Catalog.arena cat; per_value }
  in
  let schema = Physical.schema cat plan in
  let columns =
    Array.map (fun (a : Schema.attr) -> a.Schema.name) schema
  in
  let all = List.init (Array.length schema) Fun.id in
  let src = eval ctx (Prof.child Prof.root 0) plan ~needed:all in
  let n = src_count src in
  let rows =
    List.init n (fun i ->
        Array.init (Array.length schema) (fun c -> src_get ctx src i c))
  in
  { Runtime.columns; rows }
