(** Engine dispatch and measured execution.

    Five processing models over the same physical plans: Volcano iterators,
    bulk (column-at-a-time), vectorized (X100-style, cache-resident
    vectors), HYRISE-style (bulk with per-value call costs) and JiT
    (fused compiled pipelines).  Each can additionally run morsel-parallel
    on OCaml 5 domains via [?domains] — see {!Parallel}.

    A sixth kind, [Compiled], lowers supported plans to native code via
    the system C compiler ({!Compiled}); it is excluded from {!all}
    because its traced/simulated behaviour is that of its {!Jit} fallback
    — use {!all_with_compiled} where parity with it matters. *)

type kind = Volcano | Bulk | Vectorized | Hyrise | Jit | Compiled

val all : kind list
(** The five simulated processing models (excludes [Compiled]). *)

val all_with_compiled : kind list
(** {!all} plus [Compiled], for parity tests and the CLI. *)

val name : kind -> string
val of_name : string -> kind option

val run :
  ?domains:int ->
  ?morsel_size:int ->
  ?autotune:bool ->
  kind ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result
(** Execute the plan.  With [domains > 1] the plan runs morsel-parallel and
    untraced (results are identical to a sequential run; see {!Parallel.run}
    for the fallback and determinism rules); the default is one domain, i.e.
    the plain sequential engine. *)

val run_measured :
  ?cold:bool ->
  ?domains:int ->
  ?morsel_size:int ->
  kind ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result * Memsim.Stats.t
(** Reset the simulator counters (and, when [cold] — the default — the cache
    contents), run the query, and return the result together with the
    counters it produced.  If the catalog has no hierarchy attached the
    stats are all zero.

    With [domains > 1] each worker domain simulates its own hierarchy
    (fresh, hence always cold) and the returned stats are their
    {!Memsim.Stats.merge}: summed traffic and miss counters, max-over-domain
    cycle cost — the simulated analogue of parallel wall-clock time. *)
