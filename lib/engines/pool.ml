(* A persistent pool of worker domains for the morsel executor.

   [Domain.spawn] costs hundreds of microseconds (a fresh minor heap, a
   backup thread, a stop-the-world barrier on every GC while it lives) —
   paying it per query is exactly the >1-domain wall-clock regression
   BENCH_parallel exposed.  Workers here are spawned once, on first use,
   and parked on a condition variable between queries; dispatching a job is
   one lock/signal round-trip.

   The pool is deliberately simple: one job slot per worker, the caller
   always runs share 0 itself, and [parallel_run] is exclusive — a nested
   call (a worker body itself fanning out) degrades to inline sequential
   execution instead of deadlocking on parked-but-busy workers. *)

type worker = {
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
  mutable domain : unit Domain.t option;
}

let max_workers = 64

(* All pool state is guarded by [pool_m] except each worker's job slot,
   which its own [m] guards. *)
let pool_m = Mutex.create ()
let workers : worker option array = Array.make max_workers None
let spawned = ref 0
let busy = Atomic.make false
let shutdown_registered = ref false

let worker_loop w () =
  Mutex.lock w.m;
  let rec loop () =
    if w.stop then ()
    else
      match w.job with
      | Some f ->
          w.job <- None;
          Mutex.unlock w.m;
          f ();
          Mutex.lock w.m;
          Condition.broadcast w.cv;
          loop ()
      | None ->
          Condition.wait w.cv w.m;
          loop ()
  in
  loop ();
  Mutex.unlock w.m

let shutdown () =
  Mutex.lock pool_m;
  let to_join = ref [] in
  for i = 0 to !spawned - 1 do
    match workers.(i) with
    | Some w ->
        Mutex.lock w.m;
        w.stop <- true;
        Condition.broadcast w.cv;
        Mutex.unlock w.m;
        (match w.domain with Some d -> to_join := d :: !to_join | None -> ());
        workers.(i) <- None
    | None -> ()
  done;
  spawned := 0;
  Mutex.unlock pool_m;
  List.iter Domain.join !to_join

let ensure n =
  Mutex.lock pool_m;
  if not !shutdown_registered then begin
    shutdown_registered := true;
    at_exit shutdown
  end;
  let n = min n max_workers in
  while !spawned < n do
    let w =
      {
        m = Mutex.create ();
        cv = Condition.create ();
        job = None;
        stop = false;
        domain = None;
      }
    in
    w.domain <- Some (Domain.spawn (worker_loop w));
    workers.(!spawned) <- Some w;
    incr spawned
  done;
  Mutex.unlock pool_m

let submit w f =
  Mutex.lock w.m;
  w.job <- Some f;
  Condition.broadcast w.cv;
  Mutex.unlock w.m

let size () = !spawned

let parallel_run ~domains (f : int -> unit) =
  if domains <= 1 then f 0
  else if not (Atomic.compare_and_set busy false true) then
    (* nested fan-out: run inline rather than deadlock on parked workers *)
    for d = 0 to domains - 1 do
      f d
    done
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set busy false)
      (fun () ->
        let helpers = min (domains - 1) max_workers in
        ensure helpers;
        let remaining = Atomic.make helpers in
        let done_m = Mutex.create () in
        let done_cv = Condition.create () in
        let first_exn = Atomic.make None in
        for d = 1 to helpers do
          let w =
            match workers.(d - 1) with Some w -> w | None -> assert false
          in
          submit w (fun () ->
              (try f d
               with e ->
                 ignore
                   (Atomic.compare_and_set first_exn None
                      (Some (e, Printexc.get_raw_backtrace ()))));
              if Atomic.fetch_and_add remaining (-1) = 1 then begin
                Mutex.lock done_m;
                Condition.broadcast done_cv;
                Mutex.unlock done_m
              end)
        done;
        (* extra shares beyond the worker cap run on the caller, then the
           caller's own share 0 *)
        for d = helpers + 1 to domains - 1 do
          f d
        done;
        (try f 0
         with e ->
           ignore
             (Atomic.compare_and_set first_exn None
                (Some (e, Printexc.get_raw_backtrace ()))));
        Mutex.lock done_m;
        while Atomic.get remaining > 0 do
          Condition.wait done_cv done_m
        done;
        Mutex.unlock done_m;
        match Atomic.get first_exn with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
