(** Morsel-driven parallel query execution on OCaml 5 domains.

    The scanned relation is split into fixed-size row ranges (morsels);
    worker domains pull morsel indices from an atomic work-stealing counter
    and run the unchanged base engine (Volcano, Bulk, Vectorized, HYRISE or
    JiT) over a shadow catalog in which the driver table is a {!type:
    Storage.Relation.t} slice of the morsel's rows.  Per-morsel partial
    results merge deterministically in morsel order:

    - scan/select/project pipelines concatenate their row lists, and
    - group-bys run with {!Relalg.Aggregate.decompose}d aggregates per
      morsel and recombine the partials, keeping global first-occurrence
      group order —

    so the merged result is identical to a sequential run of the same plan
    (bit-identical for integer aggregates; floating-point sums may differ in
    the last bits because addition is reassociated).

    Plans without a full-scan driver pipeline (joins, sorts, limits, index
    access, DML) fall back to one sequential run of the base engine.

    Simulated measurement composes per domain: every worker gets a private
    {!Memsim.Hierarchy.t} (same parameters as the catalog's) plus a private
    address arena, and the per-domain counters combine with
    {!Memsim.Stats.merge} — traffic and misses sum, cycle cost is the
    slowest domain (the simulated wall-clock).  In untraced mode the shadow
    catalogs carry no hierarchy at all, so worker domains share nothing
    mutable and real multicore speedups are measurable. *)

type runner = Storage.Catalog.t -> Relalg.Physical.t -> Runtime.result
(** One sequential engine run; {!Engine} supplies [Engine.run kind]. *)

type preparer =
  Storage.Catalog.t -> Relalg.Physical.t -> unit -> Runtime.result
(** Compile-once, run-many entry point ({!Jit.prepare}): the morsel loop
    calls the returned thunk per morsel over the resliced driver view
    instead of recompiling the pipeline.  Engines without one fall back to
    wrapping [runner]. *)

val default_morsel_size : int
(** 4096 rows.  Any positive morsel size gives correct results; multiples of
    4096 additionally start every morsel on a cache-line and TLB-page
    boundary within each partition, making parallel summed miss counters
    exactly equal to a sequential run on read-only scans. *)

val parallelizable : Relalg.Physical.t -> bool
(** Whether the plan has a morsel-parallel execution shape (a full-scan
    scan/select/project pipeline, optionally under one group-by). *)

(** {2 Partial-result merge building blocks}

    The sharded executor ({!Shard.Exec}) distributes the same plan shapes
    over cluster nodes instead of morsels and reuses these pieces, so both
    parallel tiers share one merge semantics. *)

val pipeline_driver : Relalg.Physical.t -> string option
(** The base table a pure full-scan scan/select/project pipeline drives
    over, if any. *)

val peel_projections :
  (Relalg.Expr.t * string) list list ->
  Relalg.Physical.t ->
  (Relalg.Expr.t * string) list list * Relalg.Physical.t
(** Strip the projections the planner leaves above a group-by, innermost
    first (pass [[]] as the accumulator). *)

val merge_group_rows :
  n_keys:int ->
  aggs:Relalg.Aggregate.t list ->
  Runtime.result array ->
  Storage.Value.t array list
(** Merge partial group-by outputs (computed with
    {!Relalg.Aggregate.decompose}d aggregates) in partial order, keeping
    global first-occurrence group order and recombining each original
    aggregate from its merged partials. *)

val apply_projections :
  params:Storage.Value.t array ->
  (Relalg.Expr.t * string) list list ->
  Storage.Value.t array list ->
  Storage.Value.t array list
(** Apply peeled root projections, innermost first, to merged group rows. *)

val result_columns : Storage.Catalog.t -> Relalg.Physical.t -> string array
(** Output column names of a plan (from {!Relalg.Physical.schema}). *)

val run :
  domains:int ->
  ?morsel_size:int ->
  ?autotune:bool ->
  runner:runner ->
  ?prepare:preparer ->
  ?params:Storage.Value.t array ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  Runtime.result
(** Execute untraced with [domains] workers (clamped to the morsel count;
    [domains <= 1] or a non-parallelizable plan degrade to one plain
    sequential run).  [params] are needed only to evaluate projections the
    planner placed above a group-by (applied once to the merged groups).
    Worker catalogs are untraced views, so a hierarchy attached to [cat]
    records nothing during a parallel run.

    With [autotune] the morsel size is picked from one measured probe
    morsel (sized to ~1ms of work, rounded to the 4096-row alignment
    quantum, clamped so each domain keeps at least two morsels) and
    exported through the [parallel_morsel_size] gauge; an explicit
    [morsel_size] is only used when [autotune] is off. *)

val run_measured :
  ?cold:bool ->
  domains:int ->
  ?morsel_size:int ->
  runner:runner ->
  ?prepare:preparer ->
  ?params:Storage.Value.t array ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  Runtime.result * Memsim.Stats.t
(** Execute with per-domain hierarchy simulation and return the
    {!Memsim.Stats.merge} of all domains.  Parallel measured runs are always
    cold (each domain starts with empty caches); [cold] only controls the
    sequential fallback, as in {!Engine.run_measured}.  Without a hierarchy
    on [cat] the stats are all zero. *)
