module Value = Storage.Value
module Relation = Storage.Relation
module Catalog = Storage.Catalog
module Physical = Relalg.Physical
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

(* A row in flight is a lazy accessor from column position to value. *)
type row = int -> Value.t

type ctx = {
  cat : Catalog.t;
  params : Value.t array;
  hier : Memsim.Hierarchy.t option;
  arena : Storage.Arena.t;
}

let charge ctx n = Runtime.charge ctx.hier n

(* The number of columns of an operator's output. *)
let arity ctx plan = Array.length (Physical.schema ctx.cat plan)

(* Fetch tids matched by an index access path. *)
let index_tids ctx table access =
  let rel = Catalog.find ctx.cat table in
  match (access : Physical.access) with
  | Physical.Full_scan -> invalid_arg "index_tids: full scan"
  | Physical.Index_eq { attrs; keys } -> (
      let key_values =
        List.map
          (fun e -> Expr.eval e ~params:ctx.params (fun _ -> assert false))
          keys
      in
      match Catalog.find_index ctx.cat table ~attrs with
      | Some idx -> Storage.Index.lookup_eq idx rel key_values
      | None -> invalid_arg "index_tids: planner chose a missing index")
  | Physical.Index_range { attr; lo; hi } -> (
      let ev e = Expr.eval e ~params:ctx.params (fun _ -> assert false) in
      match Catalog.find_index ctx.cat table ~attrs:[ attr ] with
      | Some idx -> Storage.Index.lookup_range idx ~lo:(ev lo) ~hi:(ev hi)
      | None -> invalid_arg "index_tids: planner chose a missing index")

(* compile: returns a thunk that drives the pipeline(s), pushing rows into
   [consume]. *)
let rec compile ctx path (plan : Physical.t) ~(consume : row -> unit) :
    unit -> unit =
  match plan with
  | Physical.Scan { table; access; post; _ } ->
      let rel = Catalog.find ctx.cat table in
      let n_attrs = Storage.Schema.arity (Relation.schema rel) in
      (* lazy per-tuple column cache: each stored column is read at most once
         per tuple, on first use *)
      let cur_tid = ref (-1) in
      let cache = Array.make n_attrs Value.Null in
      let gen = Array.make n_attrs (-1) in
      let getcol i =
        if gen.(i) = !cur_tid then cache.(i)
        else begin
          charge ctx Cpu_model.jit_per_value;
          let v = Relation.get rel !cur_tid i in
          cache.(i) <- v;
          gen.(i) <- !cur_tid;
          v
        end
      in
      let pass =
        match post with
        | None -> fun () -> true
        | Some pred ->
            let p = Expr.specialize pred ~params:ctx.params getcol in
            fun () ->
              charge ctx Cpu_model.jit_per_value;
              Expr.truthy (p ())
      in
      let visit tid =
        cur_tid := tid;
        if pass () then consume getcol
      in
      (* Blocked fast path for the hottest shape: full scan with one pushed
         comparison on a plain non-nullable int column against a column-free
         operand.  Reads the predicate column in 1024-tuple runs (one traced
         run per block, unboxed ints) and evaluates the comparison without
         boxing.  Charges are identical to the generic path — per tuple one
         [pass] charge plus one first-use [getcol] charge for the predicate
         column — and survivors pre-populate the lazy column cache exactly as
         the generic path leaves it, so downstream consumers behave the same.
         Multi-conjunct predicates keep the generic short-circuit path: its
         access volume depends on where each conjunct fails. *)
      let fast_scan =
        match (access, post) with
        | Physical.Full_scan, Some conj -> (
            match Runtime.simple_int_cmp ~params:ctx.params rel conj with
            | Some (c, test) ->
                let box =
                  match
                    (Storage.Schema.attr (Relation.schema rel) c).Storage.Schema
                      .ty
                  with
                  | Value.Date -> fun v -> Value.VDate v
                  | _ -> fun v -> Value.VInt v
                in
                let block = 1024 in
                (* shared across executions: a prepared pipeline re-runs
                   this thunk per morsel and must not allocate per run *)
                let vals = Array.make block 0 in
                Some
                  (fun () ->
                    let n = Relation.nrows rel in
                    let lo = ref 0 in
                    while !lo < n do
                      let m = min block (n - !lo) in
                      Relation.read_int_run rel ~lo:!lo ~count:m c vals;
                      charge ctx (2 * Cpu_model.jit_per_value * m);
                      for i = 0 to m - 1 do
                        let v = Array.unsafe_get vals i in
                        if test v then begin
                          let tid = !lo + i in
                          cur_tid := tid;
                          cache.(c) <- box v;
                          gen.(c) <- tid;
                          consume getcol
                        end
                      done;
                      lo := !lo + m
                    done)
            | None -> (
                (* single-column predicate over a compressed column: evaluate
                   it on the compressed representation and visit surviving
                   tid ranges; a known run value pre-populates the lazy
                   column cache exactly as the generic path would leave it *)
                match
                  Runtime.compressed_filter_range ?hier:ctx.hier
                    ~params:ctx.params ~per_value:Cpu_model.jit_per_value rel
                    conj
                with
                | Some (c, scan) ->
                    Some
                      (fun () ->
                        scan (fun ~lo ~len v ->
                            for tid = lo to lo + len - 1 do
                              cur_tid := tid;
                              (match v with
                              | Some value ->
                                  cache.(c) <- value;
                                  gen.(c) <- tid
                              | None -> ());
                              consume getcol
                            done))
                | None -> None))
        | _ -> None
      in
      Prof.thunk path plan (fun () ->
          (* a prepared pipeline re-runs this thunk per morsel over a
             resliced view: tids restart at 0, so the lazy column cache
             must forget the previous morsel's entries *)
          cur_tid := -1;
          Array.fill gen 0 n_attrs (-1);
          match (fast_scan, access) with
          | Some fast, _ -> fast ()
          | None, Physical.Full_scan ->
              let n = Relation.nrows rel in
              for tid = 0 to n - 1 do
                visit tid
              done
          | None, (Physical.Index_eq _ | Physical.Index_range _) ->
              List.iter visit (index_tids ctx table access))
  | Physical.Select { child; pred; _ } ->
      let cur_row = ref (fun (_ : int) -> Value.Null) in
      let p = Expr.specialize pred ~params:ctx.params (fun i -> !cur_row i) in
      compile ctx (Prof.child path 0) child
        ~consume:
          (Prof.consume path plan (fun row ->
               cur_row := row;
               charge ctx Cpu_model.jit_per_value;
               if Expr.truthy (p ()) then consume row))
  | Physical.Project { child; exprs } ->
      let cur_row = ref (fun (_ : int) -> Value.Null) in
      let compiled =
        Array.of_list
          (List.map
             (fun (e, _) ->
               Expr.specialize e ~params:ctx.params (fun i -> !cur_row i))
             exprs)
      in
      compile ctx (Prof.child path 0) child
        ~consume:
          (Prof.consume path plan (fun row ->
               cur_row := row;
               let out i =
                 charge ctx Cpu_model.jit_per_value;
                 compiled.(i) ()
               in
               consume out))
  | Physical.Hash_join { build; probe; build_keys; probe_keys; _ } ->
      let build_arity = arity ctx build in
      let build_schema = Physical.schema ctx.cat build in
      let entry_width =
        8 (* next pointer *)
        + Array.fold_left
            (fun acc (a : Storage.Schema.attr) ->
              acc + Storage.Schema.stored_width a)
            0 build_schema
      in
      let ht =
        Runtime.Sim_hash.create ?hier:ctx.hier ctx.arena ~entry_width ()
      in
      (* build pipeline: materialize the build row into the hash table *)
      let run_build =
        compile ctx (Prof.child path 0) build
          ~consume:
            (Prof.consume_phase path "build" (fun row ->
                 let key = List.map row build_keys in
                 let payload = Array.init build_arity row in
                 Runtime.Sim_hash.add ht ~key payload))
      in
      let run_probe =
        compile ctx (Prof.child path 1) probe
          ~consume:
            (Prof.consume_phase path "probe" (fun row ->
                 let key = List.map row probe_keys in
                 List.iter
                   (fun payload ->
                     let out i =
                       if i < build_arity then payload.(i)
                       else row (i - build_arity)
                     in
                     consume out)
                   (Runtime.Sim_hash.find_all ht ~key)))
      in
      fun () ->
        Runtime.Sim_hash.clear ht;
        run_build ();
        run_probe ()
  | Physical.Group_by { child; keys; aggs; _ } ->
      let child_schema = Physical.schema ctx.cat child in
      let cur_row = ref (fun (_ : int) -> Value.Null) in
      let key_fns =
        List.map
          (fun (e, _) ->
            Expr.specialize e ~params:ctx.params (fun i -> !cur_row i))
          keys
      in
      let agg_fns =
        List.map
          (fun (a : Aggregate.t) ->
            match a.Aggregate.expr with
            | Some e -> Expr.specialize e ~params:ctx.params (fun i -> !cur_row i)
            | None -> fun () -> Value.Null)
          aggs
      in
      let key_cols =
        List.concat_map (fun (e, _) -> Expr.cols e) keys
        |> List.sort_uniq compare
      in
      let key_width =
        List.fold_left
          (fun acc c ->
            acc
            + Storage.Value.data_width child_schema.(c).Storage.Schema.ty
            + if child_schema.(c).Storage.Schema.nullable then 1 else 0)
          0 key_cols
      in
      let table =
        Runtime.Agg_table.create ?hier:ctx.hier ctx.arena ~aggs
          ~global:(keys = [])
          ~key_width:(max 8 key_width) ()
      in
      let agg_fn_arr = Array.of_list agg_fns in
      let per_row_charge = Cpu_model.jit_per_value * (1 + List.length aggs) in
      let run_child =
        compile ctx (Prof.child path 0) child
          ~consume:
            (Prof.consume_phase path "accumulate" (fun row ->
                 cur_row := row;
                 charge ctx per_row_charge;
                 let key = List.map (fun f -> f ()) key_fns in
                 let inputs = Array.map (fun f -> f ()) agg_fn_arr in
                 Runtime.Agg_table.update table ~key ~inputs))
      in
      let n_keys = List.length keys in
      fun () ->
        Runtime.Agg_table.clear table;
        run_child ();
        Prof.phase_at path "emit" (fun () ->
            Runtime.Agg_table.emit table (fun key finished ->
                let key_arr = Array.of_list key in
                let out i =
                  if i < n_keys then
                    if Array.length key_arr = 0 then Value.Null
                    else key_arr.(i)
                  else finished.(i - n_keys)
                in
                consume out))
  | Physical.Sort { child; keys } ->
      let out_arity = arity ctx child in
      let schema = Physical.schema ctx.cat child in
      let row_width =
        Array.fold_left
          (fun acc (a : Storage.Schema.attr) ->
            acc + Storage.Schema.stored_width a)
          0 schema
      in
      let rows = ref [] in
      let run_child =
        compile ctx (Prof.child path 0) child
          ~consume:
            (Prof.consume_phase path "buffer" (fun row ->
                 rows := Array.init out_arity row :: !rows))
      in
      fun () ->
        rows := [];
        run_child ();
        let sorted =
          Prof.phase_at path "sort" (fun () ->
              Runtime.sort_rows ?hier:ctx.hier ctx.arena
                ~row_width:(max 8 row_width) ~keys (List.rev !rows))
        in
        List.iter (fun r -> consume (fun i -> r.(i))) sorted
  | Physical.Limit { child; n } ->
      let seen = ref 0 in
      let exec =
        compile ctx (Prof.child path 0) child
          ~consume:
            (Prof.consume path plan (fun row ->
                 if !seen < n then begin
                   incr seen;
                   consume row
                 end))
      in
      fun () ->
        seen := 0;
        exec ()
  | Physical.Update { table; access; post; assignments; _ } ->
      Prof.thunk path plan (fun () ->
          let n =
            Dml.update ~per_value:Cpu_model.jit_per_value ~call_cost:0 ctx.cat
              ~params:ctx.params ~table ~access ~post ~assignments
          in
          ignore n;
          ignore consume)
  | Physical.Insert { table; values } ->
      let rel = Catalog.find ctx.cat table in
      let compiled =
        List.map
          (fun e ->
            Expr.specialize e ~params:ctx.params (fun _ ->
                invalid_arg "INSERT values cannot reference columns"))
          values
      in
      Prof.thunk path plan (fun () ->
          let tuple = Array.of_list (List.map (fun f -> f ()) compiled) in
          charge ctx (Cpu_model.jit_per_value * Array.length tuple);
          let tid = Relation.append rel tuple in
          Catalog.notify_insert ctx.cat table ~tid;
          consume (fun _ -> Value.VInt tid))

let prepare cat plan ~params =
  let hier = Catalog.hier cat in
  let ctx = { cat; params; hier; arena = Catalog.arena cat } in
  let schema = Physical.schema cat plan in
  let columns =
    Array.map (fun (a : Storage.Schema.attr) -> a.Storage.Schema.name) schema
  in
  let out_arity = Array.length schema in
  let rows = ref [] in
  let consume row =
    let materialized = Array.init (max out_arity 1) row in
    rows := (if out_arity = 0 then [||] else materialized) :: !rows
  in
  let consume = if out_arity = 0 then fun _ -> () else consume in
  let execute = compile ctx (Prof.child Prof.root 0) plan ~consume in
  fun () ->
    rows := [];
    execute ();
    { Runtime.columns; rows = List.rev !rows }

let run cat plan ~params = prepare cat plan ~params ()
