(** C99 rendering of JiT-compiled plans — the style of the paper's Fig. 2c.

    HyPer generates LLVM assembler; for inspection the paper shows the
    equivalent C.  This module renders the code our closure compiler would
    correspond to: one struct per stored partition (PDSM-aware), operators
    fused into loops, values kept in locals until no longer needed.  The
    output is documentation, not compiled — the executable semantics live in
    {!Jit}.

    {!emit_unit} below is the real backend behind {!Compiled}: it turns a
    restricted plan subset into a self-contained C99 translation unit whose
    [mrdb_query] entry point reproduces the interpreted engines' semantics
    exactly (63-bit wrapping integer arithmetic, total-order float
    comparison, SQL null propagation, structural group-key equality,
    insertion-order group emission). *)

val emit : Storage.Catalog.t -> Relalg.Physical.t -> string

type unit_info = {
  source : string;  (** complete C99 translation unit *)
  table : string;  (** driver relation scanned by the pipeline *)
  n_parts : int;  (** partitions of the driver relation at emission time *)
  out_arity : int;  (** columns per output row *)
}

val emit_unit :
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  (unit_info, string) result
(** [emit_unit cat plan ~params] compiles [plan] (with parameters
    substituted as constants) to a C99 translation unit, or returns
    [Error reason] when the plan uses features outside the compiled subset
    — joins, sorts, DML, index access, [LIKE], varchar values outside null
    tests, compressed relation encodings, or unbound parameters.  Callers
    fall back to an interpreted engine on [Error]. *)
