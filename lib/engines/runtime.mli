(** Shared runtime facilities for the execution engines: query results,
    simulator-resident hash tables, aggregation tables, and a sort helper
    whose memory traffic is visible to the simulator. *)

module Value = Storage.Value

type result = { columns : string array; rows : Value.t array list }

val pp_result : Format.formatter -> result -> unit

val concat_results : result list -> result
(** Combine per-morsel partial results of one query: all column headers must
    agree, and rows are concatenated in list order (morsel order — keeping
    parallel selection output deterministic and equal to a sequential run).
    @raise Invalid_argument on an empty list or a column mismatch. *)

val charge : Memsim.Hierarchy.t option -> int -> unit
(** Charge CPU cycles if a hierarchy is attached. *)

val simple_int_cmp :
  params:Value.t array ->
  Storage.Relation.t ->
  Relalg.Expr.t ->
  (int * (int -> bool)) option
(** Recognize a conjunct of the shape [Col c <op> rhs] with [rhs] column-free
    and integer-valued, over a plain non-nullable int column: returns the
    column index and an unboxed test exactly equivalent to the boxed
    evaluation.  Engines use it to run selections over column runs. *)

val compressed_filter_range :
  ?hier:Memsim.Hierarchy.t ->
  params:Value.t array ->
  per_value:int ->
  Storage.Relation.t ->
  Relalg.Expr.t ->
  (int * ((lo:int -> len:int -> Value.t option -> unit) -> unit)) option
(** Evaluate a predicate whose only column is stored compressed directly on
    the compressed representation during a full scan: per-run evaluation for
    RLE, a distinct-value bitmap plus narrow code scan for dictionaries, and
    pure-CPU reconstruction with range pruning for frame-of-reference
    columns.  Returns the column index and a driver that emits maximal
    surviving tid ranges in ascending order (the value argument is [Some v]
    when the whole range shares the known value [v] — RLE runs).  [None]
    when no compressed fast path applies; results are always identical to
    the generic decode-per-tuple evaluation. *)

val compressed_tid_test :
  ?hier:Memsim.Hierarchy.t ->
  params:Value.t array ->
  per_value:int ->
  Storage.Relation.t ->
  Relalg.Expr.t ->
  (int -> bool) option
(** Point-wise variant for position-list inputs: test one tid against a
    dictionary bitmap or a reconstructed frame-of-reference value, reading
    only the narrow stored code. *)

(** A hash table whose probe/update traffic is modeled as repetitive random
    accesses into a simulator region (the [rr_acc] of the cost model).  The
    actual key/value storage is an OCaml hashtable — the simulator only
    needs the addresses. *)
module Sim_hash : sig
  type 'v t

  val create :
    ?hier:Memsim.Hierarchy.t ->
    Storage.Arena.t ->
    entry_width:int ->
    unit ->
    'v t
  (** [entry_width] is the modeled bytes per entry (key plus payload). *)

  val add : 'v t -> key:Value.t list -> 'v -> unit

  val find_all : 'v t -> key:Value.t list -> 'v list
  (** All values added under an equal key, oldest first. *)

  val update :
    'v t -> key:Value.t list -> init:(unit -> 'v) -> ('v -> unit) -> unit
  (** Find-or-create the entry for [key], then mutate it in place (one read
      plus one write of the entry). *)

  val iter : 'v t -> (Value.t list -> 'v -> unit) -> unit
  (** Iterate entries in insertion order of their keys (deterministic). *)

  val length : 'v t -> int

  val clear : 'v t -> unit
  (** Drop all entries (untraced, like {!create}) so a prepared pipeline can
      reuse the table across executions.  The simulated base address is
      kept; capacity returns to the initial slot count. *)
end

(** Aggregation table: one {!Aggregate.state} vector per key. *)
module Agg_table : sig
  type t

  val create :
    ?hier:Memsim.Hierarchy.t ->
    Storage.Arena.t ->
    aggs:Relalg.Aggregate.t list ->
    ?global:bool ->
    key_width:int ->
    unit ->
    t
  (** [global] marks a group-by without keys: on empty input it emits one
      all-initial group (SQL semantics for global aggregates). *)

  val clear : t -> unit
  (** Reset to the freshly-created state (untraced); see {!Sim_hash.clear}. *)

  val update : t -> key:Value.t list -> inputs:Value.t array -> unit
  (** [inputs] holds, positionally per aggregate, the evaluated argument
      ([Null] for count-star). *)

  val update_n :
    t -> key:Value.t list -> inputs:Value.t array -> count:int -> unit
  (** Accumulate [count] identical rows with one entry lookup — the
      run-granular aggregation path over RLE columns.  Exactly equal to
      [count] calls of {!update} (see {!Relalg.Aggregate.step_n}). *)

  val emit : t -> (Value.t list -> Value.t array -> unit) -> unit
  (** Iterate groups as (key values, finished aggregate values); a global
      table that consumed no rows emits a single group of initial states. *)
end

val sort_rows :
  ?hier:Memsim.Hierarchy.t ->
  Storage.Arena.t ->
  row_width:int ->
  keys:(int * Relalg.Plan.dir) list ->
  Value.t array list ->
  Value.t array list
(** Sort materialized rows.  Models the traffic of an out-of-place sort:
    a sequential write of all rows followed by [n log n] random accesses. *)
