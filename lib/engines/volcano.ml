module Value = Storage.Value
module Relation = Storage.Relation
module Catalog = Storage.Catalog
module Physical = Relalg.Physical
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

type ctx = {
  cat : Catalog.t;
  params : Value.t array;
  hier : Memsim.Hierarchy.t option;
  arena : Storage.Arena.t;
}

type iter = unit -> Value.t array option

let charge ctx n = Runtime.charge ctx.hier n

(* Every next() call pays the virtual-call overhead. *)
let call ctx = charge ctx Cpu_model.volcano_next_call

let eval ctx e tuple =
  charge ctx Cpu_model.volcano_per_value;
  Expr.eval e ~params:ctx.params (fun i -> tuple.(i))

let index_tids ctx table access =
  let rel = Catalog.find ctx.cat table in
  match (access : Physical.access) with
  | Physical.Full_scan -> assert false
  | Physical.Index_eq { attrs; keys } -> (
      let key_values =
        List.map (fun e -> Expr.eval e ~params:ctx.params (fun _ -> assert false)) keys
      in
      match Catalog.find_index ctx.cat table ~attrs with
      | Some idx -> Storage.Index.lookup_eq idx rel key_values
      | None -> assert false)
  | Physical.Index_range { attr; lo; hi } -> (
      let ev e = Expr.eval e ~params:ctx.params (fun _ -> assert false) in
      match Catalog.find_index ctx.cat table ~attrs:[ attr ] with
      | Some idx -> Storage.Index.lookup_range idx ~lo:(ev lo) ~hi:(ev hi)
      | None -> assert false)

let rec open_iter ctx path (plan : Physical.t) : iter =
  let it = open_raw ctx path plan in
  (* construction-time gate: without a profiling session the iterator is
     returned unwrapped, so the disabled path is the seed code path *)
  if Prof.on () then fun () -> Prof.op path plan it else it

and open_raw ctx path (plan : Physical.t) : iter =
  match plan with
  | Physical.Scan { table; access; post; _ } ->
      let rel = Catalog.find ctx.cat table in
      let produce =
        match access with
        | Physical.Full_scan ->
            let tid = ref (-1) in
            let n = Relation.nrows rel in
            fun () ->
              incr tid;
              if !tid < n then Some !tid else None
        | _ ->
            let tids = ref (index_tids ctx table access) in
            fun () ->
              (match !tids with
              | [] -> None
              | t :: rest ->
                  tids := rest;
                  Some t)
      in
      let next_match () =
        let rec loop () =
          call ctx;
          match produce () with
          | None -> None
          | Some tid ->
              (* generic scan: materializes the full tuple *)
              let tuple = Relation.get_tuple rel tid in
              charge ctx (Cpu_model.volcano_per_value * Array.length tuple);
              (match post with
              | None -> Some tuple
              | Some pred ->
                  if Expr.truthy (eval ctx pred tuple) then Some tuple
                  else loop ())
        in
        loop ()
      in
      next_match
  | Physical.Select { child; pred; _ } ->
      let src = open_iter ctx (Prof.child path 0) child in
      let rec next () =
        call ctx;
        match src () with
        | None -> None
        | Some tuple ->
            if Expr.truthy (eval ctx pred tuple) then Some tuple else next ()
      in
      next
  | Physical.Project { child; exprs } ->
      let src = open_iter ctx (Prof.child path 0) child in
      let exprs = Array.of_list (List.map fst exprs) in
      fun () ->
        call ctx;
        (match src () with
        | None -> None
        | Some tuple -> Some (Array.map (fun e -> eval ctx e tuple) exprs))
  | Physical.Hash_join { build; probe; build_keys; probe_keys; _ } ->
      let entry_width = 64 in
      let ht = Runtime.Sim_hash.create ?hier:ctx.hier ctx.arena ~entry_width () in
      let build_iter = open_iter ctx (Prof.child path 0) build in
      let built = ref false in
      let ensure_built () =
        if not !built then begin
          let rec drain () =
            match build_iter () with
            | None -> ()
            | Some tuple ->
                let key = List.map (fun i -> tuple.(i)) build_keys in
                Runtime.Sim_hash.add ht ~key tuple;
                drain ()
          in
          Prof.phase "build" drain;
          built := true
        end
      in
      let probe_iter = open_iter ctx (Prof.child path 1) probe in
      let pending = ref [] in
      let rec next () =
        call ctx;
        ensure_built ();
        match !pending with
        | out :: rest ->
            pending := rest;
            Some out
        | [] -> (
            match probe_iter () with
            | None -> None
            | Some tuple ->
                let key = List.map (fun i -> tuple.(i)) probe_keys in
                let matches = Runtime.Sim_hash.find_all ht ~key in
                pending :=
                  List.map (fun b -> Array.append b tuple) matches;
                next ())
      in
      next
  | Physical.Group_by { child; keys; aggs; _ } ->
      let src = open_iter ctx (Prof.child path 0) child in
      let table =
        Runtime.Agg_table.create ?hier:ctx.hier ctx.arena ~aggs
          ~global:(keys = []) ~key_width:16 ()
      in
      let results = ref None in
      let compute () =
        let rec drain () =
          match src () with
          | None -> ()
          | Some tuple ->
              let key = List.map (fun (e, _) -> eval ctx e tuple) keys in
              let inputs =
                Array.of_list
                  (List.map
                     (fun (a : Aggregate.t) ->
                       match a.Aggregate.expr with
                       | Some e -> eval ctx e tuple
                       | None -> Value.Null)
                     aggs)
              in
              Runtime.Agg_table.update table ~key ~inputs;
              drain ()
        in
        Prof.phase "accumulate" drain;
        let out = ref [] in
        Prof.phase "emit" (fun () ->
            Runtime.Agg_table.emit table (fun key finished ->
                out := Array.append (Array.of_list key) finished :: !out));
        List.rev !out
      in
      fun () ->
        call ctx;
        let rows =
          match !results with
          | Some r -> r
          | None ->
              let r = ref (compute ()) in
              results := Some !r;
              !r
        in
        (match rows with
        | [] ->
            results := Some [];
            None
        | r :: rest ->
            results := Some rest;
            Some r)
  | Physical.Sort { child; keys } ->
      let src = open_iter ctx (Prof.child path 0) child in
      let buffered = ref None in
      fun () ->
        call ctx;
        let rows =
          match !buffered with
          | Some r -> r
          | None ->
              let acc = ref [] in
              let rec drain () =
                match src () with
                | None -> ()
                | Some t ->
                    acc := t :: !acc;
                    drain ()
              in
              drain ();
              let sorted =
                Prof.phase "sort" (fun () ->
                    Runtime.sort_rows ?hier:ctx.hier ctx.arena ~row_width:32
                      ~keys (List.rev !acc))
              in
              sorted
        in
        (match rows with
        | [] ->
            buffered := Some [];
            None
        | r :: rest ->
            buffered := Some rest;
            Some r)
  | Physical.Limit { child; n } ->
      let src = open_iter ctx (Prof.child path 0) child in
      let seen = ref 0 in
      fun () ->
        call ctx;
        if !seen >= n then None
        else begin
          match src () with
          | None -> None
          | Some t ->
              incr seen;
              Some t
        end
  | Physical.Update { table; access; post; assignments; _ } ->
      let done_ = ref false in
      (fun () ->
        call ctx;
        if !done_ then None
        else begin
          done_ := true;
          ignore
            (Dml.update ~per_value:Cpu_model.volcano_per_value
               ~call_cost:Cpu_model.volcano_next_call ctx.cat
               ~params:ctx.params ~table ~access ~post ~assignments);
          None
        end)
  | Physical.Insert { table; values } ->
      let rel = Catalog.find ctx.cat table in
      let done_ = ref false in
      fun () ->
        call ctx;
        if !done_ then None
        else begin
          done_ := true;
          let tuple =
            Array.of_list
              (List.map
                 (fun e ->
                   charge ctx Cpu_model.volcano_per_value;
                   Expr.eval e ~params:ctx.params (fun _ ->
                       invalid_arg "INSERT values cannot reference columns"))
                 values)
          in
          let tid = Relation.append rel tuple in
          Catalog.notify_insert ctx.cat table ~tid;
          None
        end

let run cat plan ~params =
  let ctx = { cat; params; hier = Catalog.hier cat; arena = Catalog.arena cat } in
  let schema = Physical.schema cat plan in
  let columns =
    Array.map (fun (a : Storage.Schema.attr) -> a.Storage.Schema.name) schema
  in
  (* the top operator is span "0", child of the session's query root "" *)
  let it = open_iter ctx (Prof.child Prof.root 0) plan in
  let rows = ref [] in
  let rec drain () =
    match it () with
    | None -> ()
    | Some t ->
        rows := t :: !rows;
        drain ()
  in
  drain ();
  { Runtime.columns; rows = List.rev !rows }
