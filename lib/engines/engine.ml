type kind = Volcano | Bulk | Vectorized | Hyrise | Jit | Compiled

let all = [ Volcano; Bulk; Vectorized; Hyrise; Jit ]
let all_with_compiled = all @ [ Compiled ]

let name = function
  | Volcano -> "volcano"
  | Bulk -> "bulk"
  | Vectorized -> "vectorized"
  | Hyrise -> "hyrise"
  | Jit -> "jit"
  | Compiled -> "compiled"

let of_name s =
  match String.lowercase_ascii s with
  | "volcano" -> Some Volcano
  | "bulk" -> Some Bulk
  | "vectorized" -> Some Vectorized
  | "hyrise" -> Some Hyrise
  | "jit" -> Some Jit
  | "compiled" -> Some Compiled
  | _ -> None

let run_sequential kind cat plan ~params =
  match kind with
  | Volcano -> Volcano.run cat plan ~params
  | Bulk -> Bulk.run cat plan ~params
  | Vectorized -> Vectorized.run cat plan ~params
  | Hyrise -> Hyrise.run cat plan ~params
  | Jit -> Jit.run cat plan ~params
  | Compiled -> Compiled.run cat plan ~params

let runner kind ~params cat plan = run_sequential kind cat plan ~params

(* Compile-once, run-many morsel stepping where the engine supports it;
   other engines recompile per morsel as before. *)
let preparer kind ~params =
  match kind with
  | Jit -> Some (fun cat plan -> Jit.prepare cat plan ~params)
  | Compiled -> Some (fun cat plan -> Compiled.prepare cat plan ~params)
  | _ -> None

let run ?(domains = 1) ?morsel_size ?autotune kind cat plan ~params =
  if domains <= 1 then run_sequential kind cat plan ~params
  else
    Parallel.run ~domains ?morsel_size ?autotune
      ~runner:(runner kind ~params)
      ?prepare:(preparer kind ~params)
      ~params cat plan

let run_measured ?(cold = true) ?(domains = 1) ?morsel_size kind cat plan
    ~params =
  if domains > 1 then
    Parallel.run_measured ~cold ~domains ?morsel_size
      ~runner:(runner kind ~params)
      ?prepare:(preparer kind ~params)
      ~params cat plan
  else
    match Storage.Catalog.hier cat with
    | None ->
        let r = run_sequential kind cat plan ~params in
        (r, Memsim.Stats.create ())
    | Some h ->
        if cold then Memsim.Hierarchy.reset h
        else Memsim.Hierarchy.reset_stats h;
        (* a profiling session started before this reset must re-base its
           counter mark or it would see a negative delta *)
        Obs.Profile.resync ();
        let r = run_sequential kind cat plan ~params in
        (r, Memsim.Hierarchy.snapshot h)
