(** Persistent worker-domain pool for the morsel executor.

    Domains are spawned lazily on first use and parked between queries, so
    a parallel query pays one lock/signal hand-off per worker instead of a
    [Domain.spawn] — the dominant fixed cost behind the 0.58x two-domain
    wall-clock regression this PR removes.  Workers are joined via an
    [at_exit] hook. *)

val parallel_run : domains:int -> (int -> unit) -> unit
(** [parallel_run ~domains f] runs [f 0 .. f (domains-1)], share 0 on the
    calling domain and the rest on pool workers, and returns when all are
    done.  The first exception raised by any share is re-raised (after all
    shares finished).  Nested calls run inline sequentially. *)

val size : unit -> int
(** Workers currently spawned (for tests and metrics). *)

val shutdown : unit -> unit
(** Stop and join all workers.  Subsequent [parallel_run]s respawn. *)
