type t = {
  arena : Arena.t;
  hier : Memsim.Hierarchy.t option;
  mutable base : int;
  mutable bytes : Bytes.t;
}

let create arena ?hier size =
  { arena; hier; base = Arena.alloc arena size; bytes = Bytes.make size '\000' }

let base t = t.base
let size t = Bytes.length t.bytes
let hier t = t.hier

let with_hier t hier = { t with hier }

let grow t want =
  if want > Bytes.length t.bytes then begin
    let nsize = max want (2 * Bytes.length t.bytes) in
    let nbytes = Bytes.make nsize '\000' in
    Bytes.blit t.bytes 0 nbytes 0 (Bytes.length t.bytes);
    t.bytes <- nbytes;
    t.base <- Arena.alloc t.arena nsize
  end

let trace_read t off width =
  match t.hier with
  | Some h -> Memsim.Hierarchy.read h ~addr:(t.base + off) ~width
  | None -> ()

let trace_write t off width =
  match t.hier with
  | Some h -> Memsim.Hierarchy.write h ~addr:(t.base + off) ~width
  | None -> ()

let read_int t off =
  trace_read t off 8;
  Int64.to_int (Bytes.get_int64_le t.bytes off)

let write_int t off v =
  trace_write t off 8;
  Bytes.set_int64_le t.bytes off (Int64.of_int v)

let read_float t off =
  trace_read t off 8;
  Int64.float_of_bits (Bytes.get_int64_le t.bytes off)

let write_float t off v =
  trace_write t off 8;
  Bytes.set_int64_le t.bytes off (Int64.bits_of_float v)

let read_int32 t off =
  trace_read t off 4;
  Int32.to_int (Bytes.get_int32_le t.bytes off)

let write_int32 t off v =
  trace_write t off 4;
  Bytes.set_int32_le t.bytes off (Int32.of_int v)

let read_byte t off =
  trace_read t off 1;
  Char.code (Bytes.get t.bytes off)

let write_byte t off v =
  trace_write t off 1;
  Bytes.set t.bytes off (Char.chr (v land 0xff))

let read_string t off ~len =
  trace_read t off len;
  let s = Bytes.sub_string t.bytes off len in
  match String.index_opt s '\000' with
  | Some i -> String.sub s 0 i
  | None -> s

let write_string t off ~len s =
  trace_write t off len;
  let slen = min len (String.length s) in
  Bytes.blit_string s 0 t.bytes off slen;
  if slen < len then Bytes.fill t.bytes (off + slen) (len - slen) '\000'

let read_value t off ~ty ~nullable =
  let data_off = if nullable then off + 1 else off in
  if nullable && read_byte t off = 0 then begin
    (* a null still occupies (and touches) the field *)
    Value.Null
  end
  else
    match (ty : Value.ty) with
    | Int -> Value.VInt (read_int t data_off)
    | Float -> Value.VFloat (read_float t data_off)
    | Bool -> Value.VBool (read_byte t data_off <> 0)
    | Date -> Value.VDate (read_int t data_off)
    | Varchar n -> Value.VStr (read_string t data_off ~len:n)

let write_value t off ~ty ~nullable v =
  let data_off = if nullable then off + 1 else off in
  (match (v, nullable) with
  | Value.Null, false ->
      invalid_arg "Buffer.write_value: NULL into non-nullable attribute"
  | Value.Null, true ->
      write_byte t off 0
  | _, true -> write_byte t off 1
  | _, false -> ());
  if not (Value.is_null v) then
    match (ty : Value.ty) with
    | Int | Date -> write_int t data_off (Value.to_int v)
    | Float -> write_float t data_off (Value.to_float v)
    | Bool -> write_byte t data_off (if Value.to_int v <> 0 then 1 else 0)
    | Varchar n -> write_string t data_off ~len:n (Value.to_string_exn v)

let untraced_read_int t off = Int64.to_int (Bytes.get_int64_le t.bytes off)

let touch t off ~width = trace_read t off width
let touch_write t off ~width = trace_write t off width
