type t = {
  arena : Arena.t;
  hier : Memsim.Hierarchy.t option;
  mutable base : int;
  mutable bytes : Bytes.t;
}

let create arena ?hier size =
  { arena; hier; base = Arena.alloc arena size; bytes = Bytes.make size '\000' }

let base t = t.base
let size t = Bytes.length t.bytes
let hier t = t.hier

let with_hier t hier = { t with hier }

let grow t want =
  if want > Bytes.length t.bytes then begin
    let nsize = max want (2 * Bytes.length t.bytes) in
    let nbytes = Bytes.make nsize '\000' in
    Bytes.blit t.bytes 0 nbytes 0 (Bytes.length t.bytes);
    t.bytes <- nbytes;
    t.base <- Arena.alloc t.arena nsize
  end

let trace_read t off width =
  match t.hier with
  | Some h -> Memsim.Hierarchy.read h ~addr:(t.base + off) ~width
  | None -> ()

let trace_write t off width =
  match t.hier with
  | Some h -> Memsim.Hierarchy.write h ~addr:(t.base + off) ~width
  | None -> ()

let read_int t off =
  trace_read t off 8;
  Int64.to_int (Bytes.get_int64_le t.bytes off)

let write_int t off v =
  trace_write t off 8;
  Bytes.set_int64_le t.bytes off (Int64.of_int v)

let read_float t off =
  trace_read t off 8;
  Int64.float_of_bits (Bytes.get_int64_le t.bytes off)

let write_float t off v =
  trace_write t off 8;
  Bytes.set_int64_le t.bytes off (Int64.bits_of_float v)

let read_int32 t off =
  trace_read t off 4;
  Int32.to_int (Bytes.get_int32_le t.bytes off)

let write_int32 t off v =
  trace_write t off 4;
  Bytes.set_int32_le t.bytes off (Int32.of_int v)

let read_byte t off =
  trace_read t off 1;
  Char.code (Bytes.get t.bytes off)

(* Narrow unsigned accessors for compressed code fields (1/2/4/8 bytes). *)
let get_uint t off ~width =
  match width with
  | 1 -> Char.code (Bytes.get t.bytes off)
  | 2 -> Bytes.get_uint16_le t.bytes off
  | 4 -> Int32.to_int (Bytes.get_int32_le t.bytes off) land 0xffffffff
  | 8 -> Int64.to_int (Bytes.get_int64_le t.bytes off)
  | _ -> invalid_arg "Buffer: unsupported uint width"

let set_uint t off ~width v =
  match width with
  | 1 -> Bytes.set t.bytes off (Char.chr (v land 0xff))
  | 2 -> Bytes.set_uint16_le t.bytes off (v land 0xffff)
  | 4 -> Bytes.set_int32_le t.bytes off (Int32.of_int v)
  | 8 -> Bytes.set_int64_le t.bytes off (Int64.of_int v)
  | _ -> invalid_arg "Buffer: unsupported uint width"

let read_uint t off ~width =
  trace_read t off width;
  get_uint t off ~width

let write_uint t off ~width v =
  trace_write t off width;
  set_uint t off ~width v

let untraced_read_uint t off ~width = get_uint t off ~width

let write_byte t off v =
  trace_write t off 1;
  Bytes.set t.bytes off (Char.chr (v land 0xff))

let read_string t off ~len =
  trace_read t off len;
  let s = Bytes.sub_string t.bytes off len in
  match String.index_opt s '\000' with
  | Some i -> String.sub s 0 i
  | None -> s

let write_string t off ~len s =
  trace_write t off len;
  let slen = min len (String.length s) in
  Bytes.blit_string s 0 t.bytes off slen;
  if slen < len then Bytes.fill t.bytes (off + slen) (len - slen) '\000'

let read_value t off ~ty ~nullable =
  let data_off = if nullable then off + 1 else off in
  if nullable && read_byte t off = 0 then begin
    (* a null still occupies (and touches) the field *)
    Value.Null
  end
  else
    match (ty : Value.ty) with
    | Int -> Value.VInt (read_int t data_off)
    | Float -> Value.VFloat (read_float t data_off)
    | Bool -> Value.VBool (read_byte t data_off <> 0)
    | Date -> Value.VDate (read_int t data_off)
    | Varchar n -> Value.VStr (read_string t data_off ~len:n)

let write_value t off ~ty ~nullable v =
  let data_off = if nullable then off + 1 else off in
  (match (v, nullable) with
  | Value.Null, false ->
      invalid_arg "Buffer.write_value: NULL into non-nullable attribute"
  | Value.Null, true ->
      write_byte t off 0
  | _, true -> write_byte t off 1
  | _, false -> ());
  if not (Value.is_null v) then
    match (ty : Value.ty) with
    | Int | Date -> write_int t data_off (Value.to_int v)
    | Float -> write_float t data_off (Value.to_float v)
    | Bool -> write_byte t data_off (if Value.to_int v <> 0 then 1 else 0)
    | Varchar n -> write_string t data_off ~len:n (Value.to_string_exn v)

let unsafe_bytes t = t.bytes
let untraced_read_int t off = Int64.to_int (Bytes.get_int64_le t.bytes off)
let untraced_write_int t off v = Bytes.set_int64_le t.bytes off (Int64.of_int v)

(* Untraced raw copy between buffers: the load/repartition path moves stored
   bytes without decoding values and without simulating traffic (setup work
   is excluded from measurements anyway). *)
let blit_raw ~src ~src_off ~dst ~dst_off ~len =
  Bytes.blit src.bytes src_off dst.bytes dst_off len

(* Untraced strided field copy: moves [count] fields of [width] bytes from
   [src] to [dst], advancing by the respective strides.  8-byte fields (the
   overwhelmingly common stored width) move as int64 loads/stores instead of
   per-field [Bytes.blit] calls; fields contiguous on both sides collapse to
   one blit. *)
let copy_run ~src ~src_off ~src_stride ~dst ~dst_off ~dst_stride ~width ~count =
  if src_stride = width && dst_stride = width then
    Bytes.blit src.bytes src_off dst.bytes dst_off (width * count)
  else if width = 8 then begin
    let sb = src.bytes and db = dst.bytes in
    for i = 0 to count - 1 do
      Bytes.set_int64_le db
        (dst_off + (i * dst_stride))
        (Bytes.get_int64_le sb (src_off + (i * src_stride)))
    done
  end
  else
    for i = 0 to count - 1 do
      Bytes.blit src.bytes
        (src_off + (i * src_stride))
        dst.bytes
        (dst_off + (i * dst_stride))
        width
    done

let touch t off ~width = trace_read t off width
let touch_write t off ~width = trace_write t off width

(* Run accessors: trace the whole fixed-stride run with one simulator call
   (the hierarchy batches it line-by-line), then move bytes in a tight loop
   with the hier match and base addition hoisted out.  When the hierarchy
   runs with the fast path off, fall back to the original per-access calls
   instead — one traced [read_int]/[write_value]/… per element — so that
   the reference path also re-pays the per-access call structure the run
   API exists to hoist, and MEMSIM_FASTPATH=0 measures the true before. *)

let run_fastpath t =
  match t.hier with Some h -> Memsim.Hierarchy.fastpath h | None -> true

let trace_read_run t off ~width ~count ~stride =
  match t.hier with
  | Some h -> Memsim.Hierarchy.read_run h ~addr:(t.base + off) ~width ~count ~stride
  | None -> ()

let trace_write_run t off ~width ~count ~stride =
  match t.hier with
  | Some h -> Memsim.Hierarchy.write_run h ~addr:(t.base + off) ~width ~count ~stride
  | None -> ()

let touch_run t off ~width ~count ~stride =
  if run_fastpath t then trace_read_run t off ~width ~count ~stride
  else for i = 0 to count - 1 do trace_read t (off + (i * stride)) width done

let touch_write_run t off ~width ~count ~stride =
  if run_fastpath t then trace_write_run t off ~width ~count ~stride
  else for i = 0 to count - 1 do trace_write t (off + (i * stride)) width done

let read_int_run t off ?(stride = 8) ~count dst =
  if run_fastpath t then begin
    trace_read_run t off ~width:8 ~count ~stride;
    let b = t.bytes in
    for i = 0 to count - 1 do
      Array.unsafe_set dst i
        (Int64.to_int (Bytes.get_int64_le b (off + (i * stride))))
    done
  end
  else
    for i = 0 to count - 1 do
      Array.unsafe_set dst i (read_int t (off + (i * stride)))
    done

let write_int_run t off ?(stride = 8) ~count src =
  if run_fastpath t then begin
    trace_write_run t off ~width:8 ~count ~stride;
    let b = t.bytes in
    for i = 0 to count - 1 do
      Bytes.set_int64_le b (off + (i * stride))
        (Int64.of_int (Array.unsafe_get src i))
    done
  end
  else
    for i = 0 to count - 1 do
      write_int t (off + (i * stride)) (Array.unsafe_get src i)
    done

let read_uint_run t off ~width ?stride ~count dst =
  let stride = match stride with Some s -> s | None -> width in
  if run_fastpath t then begin
    trace_read_run t off ~width ~count ~stride;
    for i = 0 to count - 1 do
      Array.unsafe_set dst i (get_uint t (off + (i * stride)) ~width)
    done
  end
  else
    for i = 0 to count - 1 do
      Array.unsafe_set dst i (read_uint t (off + (i * stride)) ~width)
    done

let read_float_run t off ?(stride = 8) ~count dst =
  if run_fastpath t then begin
    trace_read_run t off ~width:8 ~count ~stride;
    let b = t.bytes in
    for i = 0 to count - 1 do
      Array.unsafe_set dst i
        (Int64.float_of_bits (Bytes.get_int64_le b (off + (i * stride))))
    done
  end
  else
    for i = 0 to count - 1 do
      Array.unsafe_set dst i (read_float t (off + (i * stride)))
    done

let write_float_run t off ?(stride = 8) ~count src =
  if run_fastpath t then begin
    trace_write_run t off ~width:8 ~count ~stride;
    let b = t.bytes in
    for i = 0 to count - 1 do
      Bytes.set_int64_le b (off + (i * stride))
        (Int64.bits_of_float (Array.unsafe_get src i))
    done
  end
  else
    for i = 0 to count - 1 do
      write_float t (off + (i * stride)) (Array.unsafe_get src i)
    done

let read_bytes_run t off ~len dst =
  trace_read_run t off ~width:len ~count:1 ~stride:len;
  Bytes.blit t.bytes off dst 0 len

let write_bytes_run t off ~len src =
  trace_write_run t off ~width:len ~count:1 ~stride:len;
  Bytes.blit src 0 t.bytes off len

(* Run variants of [read_value]/[write_value] for non-nullable attributes
   only: a nullable field is two separate touches per element (null byte and
   payload), which is not one uniform-width run — callers must fall back. *)

let read_value_run t off ~stride ~ty ~count dst =
  if not (run_fastpath t) then
    for i = 0 to count - 1 do
      Array.unsafe_set dst i
        (read_value t (off + (i * stride)) ~ty ~nullable:false)
    done
  else (match (ty : Value.ty) with
  | Int ->
      trace_read_run t off ~width:8 ~count ~stride;
      let b = t.bytes in
      for i = 0 to count - 1 do
        Array.unsafe_set dst i
          (Value.VInt (Int64.to_int (Bytes.get_int64_le b (off + (i * stride)))))
      done
  | Date ->
      trace_read_run t off ~width:8 ~count ~stride;
      let b = t.bytes in
      for i = 0 to count - 1 do
        Array.unsafe_set dst i
          (Value.VDate (Int64.to_int (Bytes.get_int64_le b (off + (i * stride)))))
      done
  | Float ->
      trace_read_run t off ~width:8 ~count ~stride;
      let b = t.bytes in
      for i = 0 to count - 1 do
        Array.unsafe_set dst i
          (Value.VFloat
             (Int64.float_of_bits (Bytes.get_int64_le b (off + (i * stride)))))
      done
  | Bool ->
      trace_read_run t off ~width:1 ~count ~stride;
      let b = t.bytes in
      for i = 0 to count - 1 do
        Array.unsafe_set dst i
          (Value.VBool (Bytes.get b (off + (i * stride)) <> '\000'))
      done
  | Varchar n ->
      trace_read_run t off ~width:n ~count ~stride;
      for i = 0 to count - 1 do
        let s = Bytes.sub_string t.bytes (off + (i * stride)) n in
        let s =
          match String.index_opt s '\000' with
          | Some j -> String.sub s 0 j
          | None -> s
        in
        Array.unsafe_set dst i (Value.VStr s)
      done)

let write_value_run t off ~stride ~ty ~count src =
  if not (run_fastpath t) then
    for i = 0 to count - 1 do
      write_value t (off + (i * stride)) ~ty ~nullable:false
        (Array.unsafe_get src i)
    done
  else (match (ty : Value.ty) with
  | Int | Date ->
      trace_write_run t off ~width:8 ~count ~stride;
      let b = t.bytes in
      for i = 0 to count - 1 do
        Bytes.set_int64_le b (off + (i * stride))
          (Int64.of_int (Value.to_int (Array.unsafe_get src i)))
      done
  | Float ->
      trace_write_run t off ~width:8 ~count ~stride;
      let b = t.bytes in
      for i = 0 to count - 1 do
        Bytes.set_int64_le b (off + (i * stride))
          (Int64.bits_of_float (Value.to_float (Array.unsafe_get src i)))
      done
  | Bool ->
      trace_write_run t off ~width:1 ~count ~stride;
      let b = t.bytes in
      for i = 0 to count - 1 do
        Bytes.set b (off + (i * stride))
          (if Value.to_int (Array.unsafe_get src i) <> 0 then '\001' else '\000')
      done
  | Varchar n ->
      trace_write_run t off ~width:n ~count ~stride;
      for i = 0 to count - 1 do
        let s = Value.to_string_exn (Array.unsafe_get src i) in
        let o = off + (i * stride) in
        let slen = min n (String.length s) in
        Bytes.blit_string s 0 t.bytes o slen;
        if slen < n then Bytes.fill t.bytes (o + slen) (n - slen) '\000'
      done)
