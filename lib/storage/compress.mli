(** The compression advisor: per-column statistics, a footprint-driven
    scheme chooser, and the catalog-level entry point that applies a chosen
    plan and accounts for it in the metrics registry.

    The advisor is deterministic in the stored rows, so recovery replay and
    differential fuzzing can re-derive the same plan from the same data. *)

type stat = {
  attr : int;
  rows : int;
  non_null : int;
  distinct : int;  (** capped at {!distinct_cap} *)
  runs : int;  (** maximal equal-value runs in tid order *)
  int_only : bool;
  int_min : int;  (** meaningful only when [int_only] and [non_null > 0] *)
  int_max : int;
  for_exceptions : int array;
      (** per candidate code width (1, 2, 4 bytes): values that do not fit
          the zigzag window around the column's first non-null value *)
}

val distinct_cap : int

val analyze : Relation.t -> stat array
(** One untraced pass per column (statistics gathering is setup work). *)

val analyze_rows : Schema.t -> Value.t array array -> stat array
(** Same, over materialized rows (the fuzzer's deterministic path). *)

val plain_bytes : Schema.t -> stat -> int

val encoded_bytes : Schema.t -> stat -> Encoding.t -> int
(** Predicted storage footprint of the column under a scheme — mirrors the
    actual in-arena representations of {!Relation}. *)

val choose : Schema.t -> stat -> Encoding.t
(** The scheme with the smallest predicted footprint, if it saves at least
    30% over plain storage; [Plain] otherwise. *)

val plan : Relation.t -> (int * Encoding.t) list
(** Non-plain {!choose} results for every column. *)

val plan_rows : Schema.t -> Value.t array array -> (int * Encoding.t) list

val singleton_layout :
  Schema.t -> Layout.t -> (int * Encoding.t) list -> Layout.t
(** Split every Sparse/RLE attribute of the plan into its own singleton
    partition (those schemes store the column outside its partition's
    tuples), leaving all other groups as they are. *)

val attr_encoded_bytes : Relation.t -> int -> int
(** Actual in-arena footprint of one column under its current encoding. *)

val apply :
  Catalog.t -> string -> ?layout:Layout.t -> (int * Encoding.t) list -> unit
(** Apply a compression plan through {!Catalog.set_physical} (adjusting the
    layout with {!singleton_layout}), then record bytes-before/after per
    scheme and the relation's compression-ratio gauge in [Obs.Metrics]. *)
