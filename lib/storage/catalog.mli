(** The database catalog: named relations, their layouts and indexes.

    The paper's PDSM backend "extended the catalog to support multiple
    vertical partitions within a single relation" — here the layout is a
    property of each stored relation, changeable via {!set_layout}. *)

type t

(** Observation events for mutating operations, emitted to a registered
    observer (see {!set_observer}).  The durability subsystem turns these
    into write-ahead-log records; with no observer registered every
    notification is one [None] match and the hot path is untouched. *)
type obs_event =
  | Obs_begin  (** outermost {!in_txn} entered *)
  | Obs_commit  (** outermost {!in_txn} returned normally *)
  | Obs_abort  (** outermost {!in_txn} raised *)
  | Obs_create_relation of { table : string }
  | Obs_append of { table : string; tid : int }
  | Obs_load of { table : string; row_lo : int; rows : int }
  | Obs_update of { table : string; tid : int; attr : int; value : Value.t }
  | Obs_set_layout of { table : string; layout : Layout.t }
  | Obs_set_physical of {
      table : string;
      layout : Layout.t;
      encodings : (int * Encoding.t) list;
    }  (** joint layout + per-attribute encoding change *)
  | Obs_create_index of {
      table : string;
      iname : string;
      kind : Index.kind;
      attrs : string list;
    }

val create : ?hier:Memsim.Hierarchy.t -> ?arena:Arena.t -> unit -> t
(** [?arena] supplies the address space to allocate from instead of a fresh
    one — per-domain shadow catalogs of the parallel executor pass disjoint
    arenas so concurrent intermediate allocations never race or alias. *)

val arena : t -> Arena.t
val hier : t -> Memsim.Hierarchy.t option

val add :
  ?encodings:(int * Encoding.t) list -> t -> Schema.t -> Layout.t -> Relation.t
(** Create and register an empty relation (optionally with per-attribute
    storage encodings). *)

val add_relation : t -> Relation.t -> unit

val find : t -> string -> Relation.t
(** @raise Mrdb_util.Errors.Unknown_table for unknown names. *)

val mem : t -> string -> bool

val names : t -> string list

val set_layout : t -> string -> Layout.t -> unit
(** Repartition the stored relation (rebuilds indexes). *)

val set_physical :
  t -> string -> ?layout:Layout.t -> (int * Encoding.t) list -> unit
(** Rebuild the stored relation under new per-attribute encodings and,
    optionally, a new layout (rebuilds indexes).  Encodings incompatible
    with the target layout fall back to plain, see {!Relation.recompress}. *)

val create_index : t -> string -> name:string -> kind:Index.kind -> attrs:string list -> unit

val indexes : t -> string -> (string * Index.t) list

val find_index : t -> string -> attrs:int list -> Index.t option
(** An index whose key is exactly [attrs] (used by the planner). *)

val rebuild_indexes_for : t -> string -> attrs:int list -> unit
(** Rebuild every index whose key intersects [attrs] (after in-place
    updates).  Index builds run untraced, like all setup work. *)

val notify_insert : t -> string -> tid:int -> unit
(** Maintain all indexes of the relation after an append (and report the
    append to the observer). *)

val notify_update : t -> string -> tid:int -> attr:int -> value:Value.t -> unit
(** Report an in-place field update to the observer (no-op otherwise);
    called by the DML layer after each {!Relation.set}. *)

val notify_load : t -> string -> row_lo:int -> rows:int -> unit
(** Report a bulk load of rows [row_lo .. row_lo+rows-1] to the observer
    (no-op otherwise); callers that bulk-load a durable relation via
    {!Relation.load} must follow up with this. *)

val index_defs : t -> string -> (string * Index.kind * string list) list
(** Index definitions (name, kind, key attribute names) in creation order —
    the serialization hook snapshots use to re-register indexes. *)

val set_observer : t -> (obs_event -> unit) -> unit
val clear_observer : t -> unit
val observed : t -> bool

val in_txn : t -> (unit -> 'a) -> 'a
(** Run [f] framed by [Obs_begin]/[Obs_commit] (or [Obs_abort] if it
    raises).  Without an observer this is just [f ()]. *)
