(** The database catalog: named relations, their layouts and indexes.

    The paper's PDSM backend "extended the catalog to support multiple
    vertical partitions within a single relation" — here the layout is a
    property of each stored relation, changeable via {!set_layout}. *)

type t

val create : ?hier:Memsim.Hierarchy.t -> ?arena:Arena.t -> unit -> t
(** [?arena] supplies the address space to allocate from instead of a fresh
    one — per-domain shadow catalogs of the parallel executor pass disjoint
    arenas so concurrent intermediate allocations never race or alias. *)

val arena : t -> Arena.t
val hier : t -> Memsim.Hierarchy.t option

val add :
  ?encodings:(int * Encoding.t) list -> t -> Schema.t -> Layout.t -> Relation.t
(** Create and register an empty relation (optionally with per-attribute
    storage encodings). *)

val add_relation : t -> Relation.t -> unit

val find : t -> string -> Relation.t
(** @raise Not_found for unknown names. *)

val mem : t -> string -> bool

val names : t -> string list

val set_layout : t -> string -> Layout.t -> unit
(** Repartition the stored relation (rebuilds indexes). *)

val create_index : t -> string -> name:string -> kind:Index.kind -> attrs:string list -> unit

val indexes : t -> string -> (string * Index.t) list

val find_index : t -> string -> attrs:int list -> Index.t option
(** An index whose key is exactly [attrs] (used by the planner). *)

val rebuild_indexes_for : t -> string -> attrs:int list -> unit
(** Rebuild every index whose key intersects [attrs] (after in-place
    updates).  Index builds run untraced, like all setup work. *)

val notify_insert : t -> string -> tid:int -> unit
(** Maintain all indexes of the relation after an append. *)
