(** A byte buffer living at a virtual address, with optional access tracing.

    Engines read and write relation partitions, hash tables and
    materialization buffers through this module; every typed accessor both
    moves real bytes (so queries compute real results) and, when a hierarchy
    is attached, reports the access to the simulator (so the experiment
    counters match the paper's performance-counter methodology). *)

type t

val create : Arena.t -> ?hier:Memsim.Hierarchy.t -> int -> t
(** [create arena ?hier size] allocates a zeroed buffer of [size] bytes. *)

val base : t -> int
(** Virtual base address. *)

val size : t -> int

val hier : t -> Memsim.Hierarchy.t option

val with_hier : t -> Memsim.Hierarchy.t option -> t
(** A view of the same bytes at the same virtual address whose accesses are
    reported to a different hierarchy (or, with [None], not at all).  The
    underlying storage is shared with the original; the view is meant for
    read-mostly use during one query — do not {!grow} it, and growth of the
    original is not visible through the view. *)

val grow : t -> int -> unit
(** [grow t size] enlarges the buffer to at least [size] bytes, moving it to
    a fresh virtual region (old contents are copied). *)

(** {1 Typed accessors}

    All offsets are in bytes relative to the buffer base.  Reads/writes are
    traced at their byte width. *)

val read_int : t -> int -> int
val write_int : t -> int -> int -> unit
val read_float : t -> int -> float
val write_float : t -> int -> float -> unit
val read_int32 : t -> int -> int
(** 4-byte unsigned-ish accessor (used for dictionary codes). *)

val write_int32 : t -> int -> int -> unit
val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val read_string : t -> int -> len:int -> string
(** Reads [len] bytes and strips trailing zero padding. *)

val write_string : t -> int -> len:int -> string -> unit
(** Zero-pads (or truncates) the string to [len] bytes. *)

val read_value : t -> int -> ty:Value.ty -> nullable:bool -> Value.t
val write_value : t -> int -> ty:Value.ty -> nullable:bool -> Value.t -> unit

val untraced_read_int : t -> int -> int
(** Read without touching the simulator (used by assertions and tests). *)

val touch : t -> int -> width:int -> unit
(** Report a read of [width] bytes at the given offset without moving data
    (used to model accesses whose payload is handled elsewhere). *)

val touch_write : t -> int -> width:int -> unit
