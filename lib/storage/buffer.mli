(** A byte buffer living at a virtual address, with optional access tracing.

    Engines read and write relation partitions, hash tables and
    materialization buffers through this module; every typed accessor both
    moves real bytes (so queries compute real results) and, when a hierarchy
    is attached, reports the access to the simulator (so the experiment
    counters match the paper's performance-counter methodology). *)

type t

val create : Arena.t -> ?hier:Memsim.Hierarchy.t -> int -> t
(** [create arena ?hier size] allocates a zeroed buffer of [size] bytes. *)

val base : t -> int
(** Virtual base address. *)

val size : t -> int

val hier : t -> Memsim.Hierarchy.t option

val with_hier : t -> Memsim.Hierarchy.t option -> t
(** A view of the same bytes at the same virtual address whose accesses are
    reported to a different hierarchy (or, with [None], not at all).  The
    underlying storage is shared with the original; the view is meant for
    read-mostly use during one query — do not {!grow} it, and growth of the
    original is not visible through the view. *)

val grow : t -> int -> unit
(** [grow t size] enlarges the buffer to at least [size] bytes, moving it to
    a fresh virtual region (old contents are copied). *)

(** {1 Typed accessors}

    All offsets are in bytes relative to the buffer base.  Reads/writes are
    traced at their byte width. *)

val read_int : t -> int -> int
val write_int : t -> int -> int -> unit
val read_float : t -> int -> float
val write_float : t -> int -> float -> unit
val read_int32 : t -> int -> int
(** 4-byte unsigned-ish accessor (used for dictionary codes). *)

val write_int32 : t -> int -> int -> unit
val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val read_uint : t -> int -> width:int -> int
(** Unsigned little-endian accessor of 1, 2, 4 or 8 bytes — compressed code
    fields are narrower than a machine word. *)

val write_uint : t -> int -> width:int -> int -> unit

val untraced_read_uint : t -> int -> width:int -> int
(** {!read_uint} without touching the simulator; pair with {!touch_run} when
    the access run has already been traced as a batch. *)

val read_string : t -> int -> len:int -> string
(** Reads [len] bytes and strips trailing zero padding. *)

val write_string : t -> int -> len:int -> string -> unit
(** Zero-pads (or truncates) the string to [len] bytes. *)

val read_value : t -> int -> ty:Value.ty -> nullable:bool -> Value.t
val write_value : t -> int -> ty:Value.ty -> nullable:bool -> Value.t -> unit

val unsafe_bytes : t -> Bytes.t
(** The backing byte store.  Read-only use only: accesses through it are
    untraced, and {!grow} replaces the backing store, invalidating the
    returned value.  The compiled-pipeline FFI passes these bytes to
    generated C code. *)

val untraced_read_int : t -> int -> int
(** Read without touching the simulator (used by assertions and tests). *)

val untraced_write_int : t -> int -> int -> unit
(** Write without touching the simulator (bulk-load fast path; loads run
    untraced anyway). *)

val blit_raw : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Untraced raw byte copy between buffers.  The repartition/load path uses
    it to move stored fields without decoding values; setup work is excluded
    from measurements, so no traffic is simulated. *)

val copy_run :
  src:t ->
  src_off:int ->
  src_stride:int ->
  dst:t ->
  dst_off:int ->
  dst_stride:int ->
  width:int ->
  count:int ->
  unit
(** Untraced strided field copy: [count] fields of [width] bytes, the i-th
    read at [src_off + i*src_stride] and written at [dst_off + i*dst_stride].
    Contiguous-on-both-sides copies collapse to one blit; 8-byte fields move
    as int64 loads/stores. *)

val touch : t -> int -> width:int -> unit
(** Report a read of [width] bytes at the given offset without moving data
    (used to model accesses whose payload is handled elsewhere). *)

val touch_write : t -> int -> width:int -> unit

(** {1 Run accessors}

    Each traces the whole fixed-stride access run with a single
    {!Memsim.Hierarchy.read_run}/[write_run] call (line-batched, counters
    byte-identical to the per-element loop) and moves the bytes in a tight
    loop with the hierarchy match and bounds math hoisted out.  [dst]/[src]
    arrays must hold at least [count] elements; offsets are not
    bounds-checked beyond what [Bytes] enforces. *)

val touch_run : t -> int -> width:int -> count:int -> stride:int -> unit
(** Trace [count] reads of [width] bytes, [stride] apart, starting at the
    given offset, without moving data. *)

val touch_write_run : t -> int -> width:int -> count:int -> stride:int -> unit

val read_int_run : t -> int -> ?stride:int -> count:int -> int array -> unit
(** [read_int_run t off ~stride ~count dst] fills [dst.(0..count-1)] with the
    8-byte ints at [off], [off+stride], ...  [stride] defaults to 8
    (contiguous). *)

val write_int_run : t -> int -> ?stride:int -> count:int -> int array -> unit

val read_uint_run :
  t -> int -> width:int -> ?stride:int -> count:int -> int array -> unit
(** Unsigned narrow-field variant of {!read_int_run} ([stride] defaults to
    [width]) — the code-scan primitive for dictionary and
    frame-of-reference partitions. *)

val read_float_run : t -> int -> ?stride:int -> count:int -> float array -> unit
val write_float_run : t -> int -> ?stride:int -> count:int -> float array -> unit

val read_bytes_run : t -> int -> len:int -> Bytes.t -> unit
(** [read_bytes_run t off ~len dst] traces one [len]-byte read and blits the
    bytes into [dst.(0..len-1)]. *)

val write_bytes_run : t -> int -> len:int -> Bytes.t -> unit

val read_value_run :
  t -> int -> stride:int -> ty:Value.ty -> count:int -> Value.t array -> unit
(** Boxed-value run read for {e non-nullable} fixed-width attributes (a
    nullable field is two touches per element — null byte and payload — and
    cannot be expressed as one uniform run; callers must use {!read_value}). *)

val write_value_run :
  t -> int -> stride:int -> ty:Value.ty -> count:int -> Value.t array -> unit
(** Non-nullable counterpart of {!write_value}; no element of [src] may be
    [Null]. *)
