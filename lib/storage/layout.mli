(** Vertical partitionings of a schema — the PDSM of the paper.

    A layout assigns every attribute of a schema to exactly one partition.
    The row store (NSM, one partition holding everything) and the column
    store (DSM, one partition per attribute) are the two extreme layouts;
    everything in between is a partially decomposed (hybrid) layout. *)

type t

val row : Schema.t -> t
val column : Schema.t -> t

val of_indices : Schema.t -> int list list -> t
(** [of_indices schema groups] builds a layout from attribute-index groups.
    @raise Invalid_argument if the groups are not a partition of the schema's
    attributes. *)

val of_names : Schema.t -> string list list -> t
(** Same, by attribute name. *)

val partitions : t -> int array array
(** Attribute indices per partition, in stored order. *)

val to_groups : t -> int list list
(** The exact partition groups in stored order — the serialization hook
    used by durability; [of_indices schema (to_groups t)] rebuilds an
    identical layout. *)

val n_attrs : t -> int

val n_partitions : t -> int

val partition_of_attr : t -> int -> int
(** Partition number holding the given attribute. *)

val partition_attrs : t -> int -> int array

val is_row : t -> bool
val is_column : t -> bool

val equal : t -> t -> bool
(** Equality up to partition order and attribute order inside a partition. *)

val to_name_groups : Schema.t -> t -> string list list

val kind_label : t -> string
(** ["row"], ["column"] or ["hybrid(k)"] — for benchmark output. *)

val pp : Schema.t -> Format.formatter -> t -> unit
