(* The compression advisor: per-column statistics, a footprint-driven scheme
   chooser, and the catalog-level entry point that applies a chosen plan and
   accounts for it in the metrics registry.

   Schemes and when they pay off (Section VII's partial-compression lever):
   - Dict:    few distinct values of a wide type — narrow fixed codes
   - Rle:     long runs of equal values (sorted / low-churn columns)
   - For_bp:  int values clustered around a base — 1/2/4-byte zigzag offsets
   - Sparse:  mostly-NULL columns — store only the filled (tid, value) pairs *)

let distinct_cap = 4096
let for_widths = [| 1; 2; 4 |]

type stat = {
  attr : int;
  rows : int;
  non_null : int;
  distinct : int;  (* capped at [distinct_cap] *)
  runs : int;
  int_only : bool;
  int_min : int;
  int_max : int;
  for_exceptions : int array;  (* per candidate code width in [for_widths] *)
}

let zig_fits ~base ~escape x =
  if x >= base then
    let d = x - base in
    d >= 0 && d <= (escape - 1) / 2
  else
    let m = base - x in
    m >= 1 && m <= (escape - 1) / 2

(* One pass per column over [col a f]-style value streams. *)
let analyze_cols schema ~rows col =
  Array.init (Schema.arity schema) (fun a ->
      let attr = Schema.attr schema a in
      let int_only =
        match attr.Schema.ty with Value.Int | Value.Date -> true | _ -> false
      in
      let seen = Hashtbl.create 64 in
      let distinct = ref 0 and non_null = ref 0 and runs = ref 0 in
      let prev = ref None in
      let imin = ref max_int and imax = ref min_int in
      let base = ref None in
      let exc = Array.make (Array.length for_widths) 0 in
      col a (fun v ->
          (match !prev with
          | Some pv when Value.equal pv v -> ()
          | _ -> incr runs);
          prev := Some v;
          if not (Value.is_null v) then begin
            incr non_null;
            if !distinct < distinct_cap && not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              incr distinct
            end;
            if int_only then begin
              let x = Value.to_int v in
              if x < !imin then imin := x;
              if x > !imax then imax := x;
              let b =
                match !base with
                | Some b -> b
                | None ->
                    base := Some x;
                    x
              in
              Array.iteri
                (fun i w ->
                  let escape = (1 lsl (8 * w)) - 1 in
                  if not (zig_fits ~base:b ~escape x) then exc.(i) <- exc.(i) + 1)
                for_widths
            end
          end);
      {
        attr = a;
        rows;
        non_null = !non_null;
        distinct = !distinct;
        runs = !runs;
        int_only;
        int_min = !imin;
        int_max = !imax;
        for_exceptions = exc;
      })

let analyze rel =
  let n = Relation.nrows rel in
  analyze_cols (Relation.schema rel) ~rows:n (fun a f ->
      (* statistics gathering is setup work, untraced like loads *)
      (match Relation.hier rel with
      | Some h ->
          Memsim.Hierarchy.without_tracing h (fun () ->
              for tid = 0 to n - 1 do
                f (Relation.get rel tid a)
              done)
      | None ->
          for tid = 0 to n - 1 do
            f (Relation.get rel tid a)
          done))

let analyze_rows schema rows =
  analyze_cols schema ~rows:(Array.length rows) (fun a f ->
      Array.iter (fun row -> f row.(a)) rows)

let plain_bytes schema s = s.rows * Schema.stored_width (Schema.attr schema s.attr)

(* Predicted storage footprint of the column under a scheme — mirrors the
   actual in-arena representations of {!Relation}. *)
let encoded_bytes schema s (e : Encoding.t) =
  let attr = Schema.attr schema s.attr in
  let vw = Value.data_width attr.Schema.ty in
  let nb = if attr.Schema.nullable then 1 else 0 in
  match e with
  | Plain -> plain_bytes schema s
  | Dict -> (s.rows * (Encoding.code_width + nb)) + (s.distinct * vw)
  | Rle -> s.runs * (8 + vw)
  | Sparse -> s.non_null * (8 + vw)
  | For_bp w ->
      let i = match w with 1 -> 0 | 2 -> 1 | _ -> 2 in
      (s.rows * (w + nb)) + (s.for_exceptions.(i) * 16)

(* Candidate schemes legal for the column. *)
let candidates schema s =
  let attr = Schema.attr schema s.attr in
  let dict = if s.distinct < distinct_cap then [ Encoding.Dict ] else [] in
  let sparse = if attr.Schema.nullable then [ Encoding.Sparse ] else [] in
  let for_bp =
    if s.int_only && s.non_null > 0 then
      List.map (fun w -> Encoding.For_bp w) [ 1; 2; 4 ]
    else []
  in
  (Encoding.Rle :: dict) @ sparse @ for_bp

(* Pick the scheme with the smallest predicted footprint, requiring a real
   saving (< 70% of plain) before giving up plain storage. *)
let choose schema s =
  if s.rows = 0 then Encoding.Plain
  else
    let best =
      List.fold_left
        (fun (be, bb) e ->
          let b = encoded_bytes schema s e in
          if b < bb then (e, b) else (be, bb))
        (Encoding.Plain, plain_bytes schema s)
        (candidates schema s)
    in
    let e, b = best in
    if float_of_int b < 0.7 *. float_of_int (plain_bytes schema s) then e
    else Encoding.Plain

let plan_of_stats schema stats =
  Array.to_list stats
  |> List.filter_map (fun s ->
         match choose schema s with
         | Encoding.Plain -> None
         | e -> Some (s.attr, e))

let plan rel = plan_of_stats (Relation.schema rel) (analyze rel)
let plan_rows schema rows = plan_of_stats schema (analyze_rows schema rows)

(* Sparse/RLE attributes must be alone in their partition: split them out of
   their groups, keeping everything else where it is. *)
let singleton_layout schema layout encodings =
  let need =
    List.filter_map
      (fun (a, e) ->
        match (e : Encoding.t) with Sparse | Rle -> Some a | _ -> None)
      encodings
    |> List.sort_uniq compare
  in
  if need = [] then layout
  else
    let keep =
      Layout.to_groups layout
      |> List.map (List.filter (fun a -> not (List.mem a need)))
      |> List.filter (fun g -> g <> [])
    in
    Layout.of_indices schema (keep @ List.map (fun a -> [ a ]) need)

(* --- metrics --------------------------------------------------------- *)

let scheme_name : Encoding.t -> string = function
  | Plain -> "plain"
  | Dict -> "dict"
  | Rle -> "rle"
  | Sparse -> "sparse"
  | For_bp _ -> "for_bp"

let bytes_counter which e =
  Obs.Metrics.counter
    (Printf.sprintf "mrdb_compress_%s_bytes_%s_total" (scheme_name e) which)
    ~help:
      (Printf.sprintf "Column bytes %s %s encoding (at apply time)" which
         (scheme_name e))

(* Actual in-arena footprint of one encoded column of [rel]. *)
let attr_encoded_bytes rel a =
  let n = Relation.nrows rel in
  match Relation.encoding rel a with
  | Encoding.Plain -> n * Relation.field_width rel a
  | Encoding.Dict ->
      let ndv, vw =
        match Relation.dict_info rel a with Some i -> i | None -> (0, 0)
      in
      (n * Relation.field_width rel a) + (ndv * vw)
  | Encoding.Sparse ->
      let filled, ew =
        match Relation.sparse_info rel a with Some i -> i | None -> (0, 0)
      in
      filled * ew
  | Encoding.Rle ->
      let runs, ew =
        match Relation.rle_info rel a with Some i -> i | None -> (0, 0)
      in
      runs * ew
  | Encoding.For_bp _ ->
      let exc, _ =
        match Relation.for_info rel a with Some i -> i | None -> (0, 0)
      in
      (n * Relation.field_width rel a) + (exc * 16)

(* Apply a compression plan through the catalog (splitting Sparse/RLE
   attributes into singleton partitions as required), then account for the
   achieved footprint in the metrics registry. *)
let apply cat name ?layout encodings =
  let rel = Catalog.find cat name in
  let schema = Relation.schema rel in
  let layout =
    match layout with Some l -> l | None -> Relation.layout rel
  in
  Catalog.set_physical cat name
    ~layout:(singleton_layout schema layout encodings)
    encodings;
  let rel = Catalog.find cat name in
  let n = Relation.nrows rel in
  List.iter
    (fun (a, e) ->
      let before = n * Schema.stored_width (Schema.attr schema a) in
      Obs.Metrics.add (bytes_counter "before" e) before;
      Obs.Metrics.add (bytes_counter "after" e) (attr_encoded_bytes rel a))
    (Relation.encodings rel);
  let plain_total = n * Schema.row_width schema in
  if plain_total > 0 then
    Obs.Metrics.set
      (Obs.Metrics.gauge
         ("mrdb_compress_ratio_" ^ name)
         ~help:"Stored bytes relative to plain storage for this relation")
      (float_of_int (Relation.storage_bytes rel) /. float_of_int plain_total)
