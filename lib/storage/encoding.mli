(** Per-attribute storage encodings — the paper's "partial compression"
    direction (Section VII): dictionary compression suits columns with
    small domains, shrinking the stored width (more tuples per cache line)
    at the price of a dictionary lookup per decoded value. *)

type t =
  | Plain
  | Dict  (** 4-byte codes into a per-attribute dictionary *)
  | Sparse
      (** dense (tid, value) pairs holding only non-null entries — the
          paper's "storage as dense key-value lists" suggestion for sparse
          data.  A sparse attribute must be the only attribute of its
          partition; reads are modeled as binary searches over the pair
          list. *)
  | Rle
      (** run-length encoding: the attribute is stored as a sorted list of
          (start tid, value) runs instead of per-tuple fields.  An RLE
          attribute must be the only attribute of its partition; point
          reads are modeled as binary searches over the run list, while
          scans touch one run entry per run. *)
  | For_bp of int
      (** frame-of-reference with bit(byte)-packed deltas for [Int]/[Date]
          attributes: values are stored as [w]-byte zigzag offsets from a
          per-column base ([w] is 1, 2 or 4); values outside the
          representable window spill to an exception list (the all-ones
          code is the escape marker). *)

val code_width : int
(** Stored width of a dictionary code (4 bytes). *)

val valid_for_width : int -> bool
(** Whether [w] is a legal [For_bp] code width (1, 2 or 4 bytes). *)

val stored_width : Schema.attr -> t -> int
(** Width of the attribute's field under the encoding (including the null
    byte for nullable attributes). *)

val pp : Format.formatter -> t -> unit

val to_code : t -> int
(** Stable one-byte wire code — the serialization hook for durability. *)

val of_code : int -> t
(** Inverse of {!to_code}. @raise Invalid_argument on unknown codes. *)
