type part = {
  attrs : int array;
  offsets : int array; (* per slot in [attrs] *)
  width : int;
  buf : Buffer.t;
}

(* Per-attribute dictionary for [Encoding.Dict] columns.  The code→value
   direction lives in a simulator-visible region (decodes generate traffic);
   the value→code direction is an OCaml hashtable (encoding happens on the
   untraced load path or on single inserts). *)
type dict = {
  mutable values : Value.t array;
  mutable count : int;
  codes : (Value.t, int) Hashtbl.t;
  dbuf : Buffer.t;
  value_width : int;
}

(* Sparse (key-value) storage for [Encoding.Sparse] columns: only non-null
   entries exist, as (tid, value) pairs in a simulator-visible region.  The
   OCaml-side hashtable provides the actual values; the traced region models
   the binary-search access cost of a sorted pair list. *)
type sparse = {
  pairs : (int, Value.t) Hashtbl.t;
  sbuf : Buffer.t;
  entry_width : int;
  mutable filled : int;
}

type t = {
  schema : Schema.t;
  layout : Layout.t;
  encodings : Encoding.t array;
  dicts : dict option array;
  sparses : sparse option array;
  parts : part array;
  loc : (int * int) array; (* attr -> partition index, offset inside tuple *)
  mutable nrows : int;
  mutable capacity : int;
  arena : Arena.t;
  hier : Memsim.Hierarchy.t option;
  mutable row_base : int; (* first stored row of this (possibly sliced) view *)
  view : bool; (* read-only view over storage owned by another value *)
  parent_base : int; (* window of the parent at view-creation time: *)
  parent_rows : int; (* {!reslice} may move this view anywhere inside it *)
  uniform8 : bool; (* every attr Plain, non-null, 8 bytes wide, and each
                      partition holds a consecutive ascending attr range *)
  tuple_parts : int array; (* partition indices in schema-attr order *)
}

let create ?hier ?(capacity = 1024) ?(encodings = []) arena schema layout =
  let n = Schema.arity schema in
  let enc = Array.make n Encoding.Plain in
  List.iter (fun (a, e) -> enc.(a) <- e) encodings;
  let dicts =
    Array.init n (fun a ->
        match enc.(a) with
        | Encoding.Plain | Encoding.Sparse -> None
        | Encoding.Dict ->
            let value_width = Value.data_width (Schema.attr schema a).Schema.ty in
            Some
              {
                values = Array.make 16 Value.Null;
                count = 0;
                codes = Hashtbl.create 16;
                dbuf = Buffer.create arena ?hier (16 * value_width);
                value_width;
              })
  in
  let sparses =
    Array.init n (fun a ->
        match enc.(a) with
        | Encoding.Plain | Encoding.Dict -> None
        | Encoding.Sparse ->
            let attr = Schema.attr schema a in
            if not attr.Schema.nullable then
              invalid_arg "Relation: sparse encoding requires a nullable attribute";
            if
              Array.length
                (Layout.partition_attrs layout (Layout.partition_of_attr layout a))
              <> 1
            then
              invalid_arg
                "Relation: a sparse attribute must be alone in its partition";
            let entry_width = 8 + Value.data_width attr.Schema.ty in
            Some
              {
                pairs = Hashtbl.create 64;
                sbuf = Buffer.create arena ?hier (64 * entry_width);
                entry_width;
                filled = 0;
              })
  in
  let loc = Array.make n (-1, -1) in
  let parts =
    Array.mapi
      (fun pi attrs ->
        let offsets = Array.make (Array.length attrs) 0 in
        let width = ref 0 in
        Array.iteri
          (fun slot a ->
            offsets.(slot) <- !width;
            loc.(a) <- (pi, !width);
            width := !width + Encoding.stored_width (Schema.attr schema a) enc.(a))
          attrs;
        let buf = Buffer.create arena ?hier (max 1 (!width * capacity)) in
        { attrs; offsets; width = !width; buf })
      (Layout.partitions layout)
  in
  let uniform8 =
    let ok = ref true in
    for a = 0 to n - 1 do
      let attr = Schema.attr schema a in
      (match attr.Schema.ty with
      | Value.Int | Value.Date -> ()
      | _ -> ok := false);
      if attr.Schema.nullable || enc.(a) <> Encoding.Plain then ok := false
    done;
    Array.iter
      (fun p ->
        Array.iteri
          (fun slot a -> if a <> p.attrs.(0) + slot then ok := false)
          p.attrs)
      parts;
    !ok
  in
  let tuple_parts =
    let idx = Array.init (Array.length parts) Fun.id in
    Array.sort
      (fun i j -> compare parts.(i).attrs.(0) parts.(j).attrs.(0))
      idx;
    idx
  in
  {
    schema;
    layout;
    encodings = enc;
    dicts;
    sparses;
    parts;
    loc;
    nrows = 0;
    capacity;
    arena;
    hier;
    row_base = 0;
    view = false;
    parent_base = 0;
    parent_rows = 0;
    uniform8;
    tuple_parts;
  }

let out_of_bounds t what ~lo ~len =
  invalid_arg
    (Printf.sprintf "Relation.%s(%s): rows [%d, %d) out of bounds (0 <= lo, \
                     0 <= len, lo+len <= %d rows)"
       what t.schema.Schema.name lo (lo + len) t.nrows)

let slice t ~lo ~len =
  if lo < 0 || len < 0 || lo + len > t.nrows then out_of_bounds t "slice" ~lo ~len;
  {
    t with
    row_base = t.row_base + lo;
    nrows = len;
    view = true;
    parent_base = t.row_base;
    parent_rows = t.nrows;
  }

let with_hier t hier =
  let part p = { p with buf = Buffer.with_hier p.buf hier } in
  let dict d = { d with dbuf = Buffer.with_hier d.dbuf hier } in
  let sparse s = { s with sbuf = Buffer.with_hier s.sbuf hier } in
  {
    t with
    hier;
    parts = Array.map part t.parts;
    dicts = Array.map (Option.map dict) t.dicts;
    sparses = Array.map (Option.map sparse) t.sparses;
    view = true;
    parent_base = t.row_base;
    parent_rows = t.nrows;
  }

let reslice t ~lo ~len =
  if not t.view then invalid_arg "Relation.reslice: not a view";
  if lo < 0 || len < 0 || lo + len > t.parent_rows then
    invalid_arg
      (Printf.sprintf
         "Relation.reslice(%s): rows [%d, %d) out of bounds (parent window \
          holds %d rows)"
         t.schema.Schema.name lo (lo + len) t.parent_rows);
  t.row_base <- t.parent_base + lo;
  t.nrows <- len

let schema t = t.schema
let layout t = t.layout
let nrows t = t.nrows
let hier t = t.hier
let arena t = t.arena

let encoding t a = t.encodings.(a)

let encodings t =
  Array.to_list t.encodings
  |> List.mapi (fun a e -> (a, e))
  |> List.filter (fun (_, e) -> e <> Encoding.Plain)

let dict_info t a =
  match t.dicts.(a) with
  | Some d -> Some (max 1 d.count, d.value_width)
  | None -> None

let sparse_info t a =
  match t.sparses.(a) with
  | Some s -> Some (max 1 s.filled, s.entry_width)
  | None -> None

let storage_bytes t =
  let parts =
    Array.fold_left (fun acc p -> acc + (t.nrows * p.width)) 0 t.parts
  in
  let dicts =
    Array.fold_left
      (fun acc d ->
        match d with Some d -> acc + (d.count * d.value_width) | None -> acc)
      0 t.dicts
  in
  let sparses =
    Array.fold_left
      (fun acc s ->
        match s with Some s -> acc + (s.filled * s.entry_width) | None -> acc)
      0 t.sparses
  in
  parts + dicts + sparses

let ensure_capacity t rows =
  if rows > t.capacity then begin
    let ncap = max rows (2 * t.capacity) in
    Array.iter (fun p -> Buffer.grow p.buf (max 1 (p.width * ncap))) t.parts;
    t.capacity <- ncap
  end

let field t a =
  let attr = Schema.attr t.schema a in
  (attr.Schema.ty, attr.Schema.nullable)

(* dictionary encode: returns the code for [v], registering it if new *)
let encode t d v =
  match Hashtbl.find_opt d.codes v with
  | Some code -> code
  | None ->
      let code = d.count in
      if code >= Array.length d.values then begin
        let bigger = Array.make (2 * Array.length d.values) Value.Null in
        Array.blit d.values 0 bigger 0 code;
        d.values <- bigger
      end;
      Buffer.grow d.dbuf ((code + 1) * d.value_width);
      (* write the new dictionary entry (traced) *)
      Buffer.touch_write d.dbuf (code * d.value_width) ~width:d.value_width;
      d.values.(code) <- v;
      Hashtbl.add d.codes v code;
      d.count <- code + 1;
      ignore t;
      code

(* decode: one random access into the dictionary region *)
let decode t d code =
  Buffer.touch d.dbuf (code * d.value_width) ~width:d.value_width;
  (match t.hier with Some h -> Memsim.Hierarchy.add_cpu h 1 | None -> ());
  d.values.(code)

(* model the binary search over the sorted pair list: log2(filled) probes *)
let sparse_search_touch t s =
  let steps =
    let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
    max 1 (log2 0 (max 2 s.filled))
  in
  let stride = max 1 (s.filled / (steps + 1)) in
  for i = 1 to steps do
    Buffer.touch s.sbuf
      (min (max 0 (s.filled - 1)) (i * stride) * s.entry_width)
      ~width:s.entry_width
  done;
  match t.hier with
  | Some h -> Memsim.Hierarchy.add_cpu h steps
  | None -> ()

let sparse_write s tid v =
  if Value.is_null v then Hashtbl.remove s.pairs tid
  else begin
    if not (Hashtbl.mem s.pairs tid) then begin
      Buffer.grow s.sbuf ((s.filled + 1) * s.entry_width);
      s.filled <- s.filled + 1
    end;
    Buffer.touch_write s.sbuf
      ((s.filled - 1) * s.entry_width)
      ~width:s.entry_width;
    Hashtbl.replace s.pairs tid v
  end

let sparse_read t s tid =
  sparse_search_touch t s;
  match Hashtbl.find_opt s.pairs tid with Some v -> v | None -> Value.Null

let write_field t p ~tid ~off a v =
  let ty, nullable = field t a in
  match (t.sparses.(a), t.dicts.(a)) with
  | Some s, _ -> sparse_write s tid v
  | None, None -> Buffer.write_value p.buf off ~ty ~nullable v
  | None, Some d ->
      let data_off = if nullable then off + 1 else off in
      if Value.is_null v then
        if nullable then Buffer.write_byte p.buf off 0
        else invalid_arg "Relation: NULL into non-nullable attribute"
      else begin
        if nullable then Buffer.write_byte p.buf off 1;
        Buffer.write_int32 p.buf data_off (encode t d v)
      end

let read_field t p ~tid ~off a =
  let ty, nullable = field t a in
  match (t.sparses.(a), t.dicts.(a)) with
  | Some s, _ -> sparse_read t s tid
  | None, None -> Buffer.read_value p.buf off ~ty ~nullable
  | None, Some d ->
      let data_off = if nullable then off + 1 else off in
      if nullable && Buffer.read_byte p.buf off = 0 then Value.Null
      else decode t d (Buffer.read_int32 p.buf data_off)

let append t values =
  if t.view then invalid_arg "Relation.append: relation is a read-only view";
  if Array.length values <> Schema.arity t.schema then
    invalid_arg "Relation.append: arity mismatch";
  ensure_capacity t (t.nrows + 1);
  let tid = t.nrows in
  Array.iter
    (fun p ->
      Array.iteri
        (fun slot a ->
          write_field t p ~tid
            ~off:((tid * p.width) + p.offsets.(slot))
            a values.(a))
        p.attrs)
    t.parts;
  t.nrows <- tid + 1;
  tid

let check_tid t what tid =
  if tid < 0 || tid >= t.nrows then
    invalid_arg
      (Printf.sprintf "Relation.%s(%s): tuple %d out of bounds (%d rows)"
         what t.schema.Schema.name tid t.nrows)

let get t tid a =
  check_tid t "get" tid;
  let tid = t.row_base + tid in
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  read_field t p ~tid ~off:((tid * p.width) + off) a

let set t tid a v =
  check_tid t "set" tid;
  let tid = t.row_base + tid in
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  write_field t p ~tid ~off:((tid * p.width) + off) a v

let get_tuple t tid =
  check_tid t "get_tuple" tid;
  if t.uniform8 then begin
    (* All fields are plain non-null 8-byte values and each partition holds a
       consecutive attr range, so the per-attr access sequence of the generic
       path is, partition by partition, one contiguous 8-byte-stride run —
       trace it as such (identical order, identical counters) and serve the
       payloads untraced. *)
    let tid = t.row_base + tid in
    let out = Array.make (Schema.arity t.schema) Value.Null in
    Array.iter
      (fun pi ->
        let p = t.parts.(pi) in
        let n = Array.length p.attrs in
        let base_off = tid * p.width in
        Buffer.touch_run p.buf base_off ~width:8 ~count:n ~stride:8;
        for slot = 0 to n - 1 do
          let a = p.attrs.(slot) in
          let v = Buffer.untraced_read_int p.buf (base_off + p.offsets.(slot)) in
          out.(a) <-
            (match (Schema.attr t.schema a).Schema.ty with
            | Value.Date -> Value.VDate v
            | _ -> Value.VInt v)
        done)
      t.tuple_parts;
    out
  end
  else Array.init (Schema.arity t.schema) (fun a -> get t tid a)

let run_readable t a =
  t.encodings.(a) = Encoding.Plain && not (Schema.attr t.schema a).Schema.nullable

let int_run_readable t a =
  run_readable t a
  &&
  match (Schema.attr t.schema a).Schema.ty with
  | Value.Int | Value.Date -> true
  | _ -> false

let get_int t tid a =
  let tid = t.row_base + tid in
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  Buffer.read_int p.buf ((tid * p.width) + off)

let read_int_run t ~lo ~count a dst =
  if lo < 0 || count < 0 || lo + count > t.nrows then
    out_of_bounds t "read_int_run" ~lo ~len:count;
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  Buffer.read_int_run p.buf
    (((t.row_base + lo) * p.width) + off)
    ~stride:p.width ~count dst

let read_value_run t ~lo ~count a dst =
  if lo < 0 || count < 0 || lo + count > t.nrows then
    out_of_bounds t "read_value_run" ~lo ~len:count;
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  let ty, _ = field t a in
  Buffer.read_value_run p.buf
    (((t.row_base + lo) * p.width) + off)
    ~stride:p.width ~ty ~count dst

let addr t tid a =
  let tid = t.row_base + tid in
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  Buffer.base p.buf + (tid * p.width) + off

let field_width t a =
  Encoding.stored_width (Schema.attr t.schema a) t.encodings.(a)

let part_of_attr t a = fst t.loc.(a)
let part_width t pi = t.parts.(pi).width
let part_buffer t pi = t.parts.(pi).buf
let attr_offset t a = snd t.loc.(a)

let untraced t f =
  match t.hier with
  | Some h -> Memsim.Hierarchy.without_tracing h f
  | None -> f ()

(* Serialization hook: visit every stored tuple without generating simulated
   traffic (snapshotting is setup work, like loads and index builds). *)
let iter_rows t f =
  untraced t (fun () ->
      for tid = 0 to t.nrows - 1 do
        f tid (get_tuple t tid)
      done)

let repartition t layout =
  let dst =
    create ?hier:t.hier ~capacity:(max 1 t.nrows) ~encodings:(encodings t)
      t.arena t.schema layout
  in
  let all_plain = Array.for_all (fun e -> e = Encoding.Plain) t.encodings in
  if all_plain then begin
    (* Plain fields have the same stored bytes under any partitioning, so a
       repartition is pure byte movement: copy each attribute's column of
       fixed-width fields directly instead of boxing every value through
       get_tuple/append.  (Dict and Sparse columns keep OCaml-side state and
       take the generic path.) *)
    ensure_capacity dst t.nrows;
    let fw a = Encoding.stored_width (Schema.attr t.schema a) t.encodings.(a) in
    Array.iter
      (fun dp ->
        (* copy maximal attr groups that are contiguous in both the source
           and the destination partition as one strided field run *)
        let na = Array.length dp.attrs in
        let i = ref 0 in
        while !i < na do
          let a0 = dp.attrs.(!i) in
          let spi, soff0 = t.loc.(a0) in
          let doff0 = snd dst.loc.(a0) in
          let wsum = ref (fw a0) in
          let j = ref (!i + 1) in
          let grow = ref true in
          while !grow && !j < na do
            let a = dp.attrs.(!j) in
            let spi', soff' = t.loc.(a) in
            if
              spi' = spi
              && soff' = soff0 + !wsum
              && snd dst.loc.(a) = doff0 + !wsum
            then begin
              wsum := !wsum + fw a;
              incr j
            end
            else grow := false
          done;
          let sp = t.parts.(spi) in
          Buffer.copy_run ~src:sp.buf
            ~src_off:((t.row_base * sp.width) + soff0)
            ~src_stride:sp.width ~dst:dp.buf ~dst_off:doff0
            ~dst_stride:dp.width ~width:!wsum ~count:t.nrows;
          i := !j
        done)
      dst.parts;
    dst.nrows <- t.nrows
  end
  else
    untraced t (fun () ->
        for tid = 0 to t.nrows - 1 do
          ignore (append dst (get_tuple t tid))
        done);
  dst

let load t ~n f =
  if t.view then invalid_arg "Relation.load: relation is a read-only view";
  untraced t (fun () ->
      ensure_capacity t (t.nrows + n);
      if t.uniform8 then
        (* every field is a plain non-nullable 8-byte int/date: store the
           payloads directly instead of dispatching [append]'s per-field
           write (loads run untraced, so the simulator sees nothing either
           way) *)
        let arity = Schema.arity t.schema in
        for row = 0 to n - 1 do
          let values = f ~row in
          if Array.length values <> arity then
            invalid_arg "Relation.load: arity mismatch";
          let tid = t.nrows in
          Array.iter
            (fun p ->
              let base = tid * p.width in
              Array.iteri
                (fun slot a ->
                  Buffer.untraced_write_int p.buf
                    (base + Array.unsafe_get p.offsets slot)
                    (Value.to_int (Array.unsafe_get values a)))
                p.attrs)
            t.parts;
          t.nrows <- tid + 1
        done
      else
        for row = 0 to n - 1 do
          ignore (append t (f ~row))
        done)

(* Unboxed bulk load for all-plain-int relations: the generator fills a
   reusable int array, so wide synthetic tables (microbench: 200k x 16)
   skip 16 [Value.t] boxes and a fresh array per row. *)
let load_int_rows t ~n f =
  if t.view then
    invalid_arg "Relation.load_int_rows: relation is a read-only view";
  if not t.uniform8 then
    invalid_arg "Relation.load_int_rows: not an all-plain-int relation";
  untraced t (fun () ->
      ensure_capacity t (t.nrows + n);
      let dst = Array.make (Schema.arity t.schema) 0 in
      for row = 0 to n - 1 do
        f ~row dst;
        let tid = t.nrows in
        Array.iter
          (fun p ->
            let base = tid * p.width in
            Array.iteri
              (fun slot a ->
                Buffer.untraced_write_int p.buf
                  (base + Array.unsafe_get p.offsets slot)
                  (Array.unsafe_get dst a))
              p.attrs)
          t.parts;
        t.nrows <- tid + 1
      done)
