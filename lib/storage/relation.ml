type part = {
  attrs : int array;
  offsets : int array; (* per slot in [attrs] *)
  width : int;
  buf : Buffer.t;
}

(* Per-attribute dictionary for [Encoding.Dict] columns.  The code→value
   direction lives in a simulator-visible region (decodes generate traffic);
   the value→code direction is an OCaml hashtable (encoding happens on the
   untraced load path or on single inserts). *)
type dict = {
  mutable values : Value.t array;
  mutable count : int;
  codes : (Value.t, int) Hashtbl.t;
  dbuf : Buffer.t;
  value_width : int;
}

(* Sparse (key-value) storage for [Encoding.Sparse] columns: only non-null
   entries exist, as (tid, value) pairs in a simulator-visible region.  The
   OCaml-side hashtable provides the actual values; the traced region models
   the binary-search access cost of a sorted pair list. *)
type sparse = {
  pairs : (int, Value.t) Hashtbl.t;
  sbuf : Buffer.t;
  entry_width : int;
  mutable filled : int;
}

(* Run-length storage for [Encoding.Rle] columns: the attribute lives as a
   sorted list of (start tid, value) runs.  The OCaml-side arrays provide the
   actual run boundaries and values; the traced region models the sorted run
   list — point reads binary-search it, run scans touch one entry per run. *)
type rle = {
  mutable rstarts : int array; (* run start tids, ascending *)
  mutable rvals : Value.t array;
  mutable rcount : int;
  mutable rtotal : int; (* rows covered so far (owner's append frontier) *)
  rbuf : Buffer.t;
  rentry_width : int; (* 8-byte start + value payload *)
}

(* Frame-of-reference storage for [Encoding.For_bp] columns: each field holds
   a [fwidth]-byte zigzag offset from the column base (the first non-null
   value stored); the all-ones code is an escape into an exception list of
   (tid, value) pairs, modeled like the sparse pair list. *)
type forbp = {
  fwidth : int;
  fescape : int; (* 2^(8*fwidth) - 1, reserved as the exception marker *)
  mutable fbase : int option;
  fex : (int, int) Hashtbl.t;
  fxbuf : Buffer.t;
  mutable fex_count : int;
  mutable fmin : int; (* widen-only bounds over every value ever stored: *)
  mutable fmax : int; (* a superset of the live values, so range pruning
                         in either direction stays sound *)
}

type t = {
  schema : Schema.t;
  layout : Layout.t;
  encodings : Encoding.t array;
  dicts : dict option array;
  sparses : sparse option array;
  rles : rle option array;
  fors : forbp option array;
  parts : part array;
  loc : (int * int) array; (* attr -> partition index, offset inside tuple *)
  mutable nrows : int;
  mutable capacity : int;
  arena : Arena.t;
  hier : Memsim.Hierarchy.t option;
  mutable row_base : int; (* first stored row of this (possibly sliced) view *)
  view : bool; (* read-only view over storage owned by another value *)
  parent_base : int; (* window of the parent at view-creation time: *)
  parent_rows : int; (* {!reslice} may move this view anywhere inside it *)
  uniform8 : bool; (* every attr Plain, non-null, 8 bytes wide, and each
                      partition holds a consecutive ascending attr range *)
  tuple_parts : int array; (* partition indices in schema-attr order *)
}

let alone_in_partition layout a =
  Array.length
    (Layout.partition_attrs layout (Layout.partition_of_attr layout a))
  = 1

let create ?hier ?(capacity = 1024) ?(encodings = []) arena schema layout =
  let n = Schema.arity schema in
  let enc = Array.make n Encoding.Plain in
  List.iter (fun (a, e) -> enc.(a) <- e) encodings;
  let dicts =
    Array.init n (fun a ->
        match enc.(a) with
        | Encoding.Dict ->
            let value_width = Value.data_width (Schema.attr schema a).Schema.ty in
            Some
              {
                values = Array.make 16 Value.Null;
                count = 0;
                codes = Hashtbl.create 16;
                dbuf = Buffer.create arena ?hier (16 * value_width);
                value_width;
              }
        | _ -> None)
  in
  let sparses =
    Array.init n (fun a ->
        match enc.(a) with
        | Encoding.Sparse ->
            let attr = Schema.attr schema a in
            if not attr.Schema.nullable then
              invalid_arg "Relation: sparse encoding requires a nullable attribute";
            if not (alone_in_partition layout a) then
              invalid_arg
                "Relation: a sparse attribute must be alone in its partition";
            let entry_width = 8 + Value.data_width attr.Schema.ty in
            Some
              {
                pairs = Hashtbl.create 64;
                sbuf = Buffer.create arena ?hier (64 * entry_width);
                entry_width;
                filled = 0;
              }
        | _ -> None)
  in
  let rles =
    Array.init n (fun a ->
        match enc.(a) with
        | Encoding.Rle ->
            if not (alone_in_partition layout a) then
              invalid_arg
                "Relation: an RLE attribute must be alone in its partition";
            let rentry_width =
              8 + Value.data_width (Schema.attr schema a).Schema.ty
            in
            Some
              {
                rstarts = Array.make 16 0;
                rvals = Array.make 16 Value.Null;
                rcount = 0;
                rtotal = 0;
                rbuf = Buffer.create arena ?hier (16 * rentry_width);
                rentry_width;
              }
        | _ -> None)
  in
  let fors =
    Array.init n (fun a ->
        match enc.(a) with
        | Encoding.For_bp w ->
            if not (Encoding.valid_for_width w) then
              invalid_arg "Relation: for_bp code width must be 1, 2 or 4";
            (match (Schema.attr schema a).Schema.ty with
            | Value.Int | Value.Date -> ()
            | _ ->
                invalid_arg
                  "Relation: for_bp encoding requires an Int or Date attribute");
            Some
              {
                fwidth = w;
                fescape = (1 lsl (8 * w)) - 1;
                fbase = None;
                fex = Hashtbl.create 16;
                fxbuf = Buffer.create arena ?hier (16 * 16);
                fex_count = 0;
                fmin = 0;
                fmax = 0;
              }
        | _ -> None)
  in
  let loc = Array.make n (-1, -1) in
  let parts =
    Array.mapi
      (fun pi attrs ->
        let offsets = Array.make (Array.length attrs) 0 in
        let width = ref 0 in
        Array.iteri
          (fun slot a ->
            offsets.(slot) <- !width;
            loc.(a) <- (pi, !width);
            width := !width + Encoding.stored_width (Schema.attr schema a) enc.(a))
          attrs;
        let buf = Buffer.create arena ?hier (max 1 (!width * capacity)) in
        { attrs; offsets; width = !width; buf })
      (Layout.partitions layout)
  in
  let uniform8 =
    let ok = ref true in
    for a = 0 to n - 1 do
      let attr = Schema.attr schema a in
      (match attr.Schema.ty with
      | Value.Int | Value.Date -> ()
      | _ -> ok := false);
      if attr.Schema.nullable || enc.(a) <> Encoding.Plain then ok := false
    done;
    Array.iter
      (fun p ->
        Array.iteri
          (fun slot a -> if a <> p.attrs.(0) + slot then ok := false)
          p.attrs)
      parts;
    !ok
  in
  let tuple_parts =
    let idx = Array.init (Array.length parts) Fun.id in
    Array.sort
      (fun i j -> compare parts.(i).attrs.(0) parts.(j).attrs.(0))
      idx;
    idx
  in
  {
    schema;
    layout;
    encodings = enc;
    dicts;
    sparses;
    rles;
    fors;
    parts;
    loc;
    nrows = 0;
    capacity;
    arena;
    hier;
    row_base = 0;
    view = false;
    parent_base = 0;
    parent_rows = 0;
    uniform8;
    tuple_parts;
  }

let out_of_bounds t what ~lo ~len =
  invalid_arg
    (Printf.sprintf "Relation.%s(%s): rows [%d, %d) out of bounds (0 <= lo, \
                     0 <= len, lo+len <= %d rows)"
       what t.schema.Schema.name lo (lo + len) t.nrows)

let slice t ~lo ~len =
  if lo < 0 || len < 0 || lo + len > t.nrows then out_of_bounds t "slice" ~lo ~len;
  {
    t with
    row_base = t.row_base + lo;
    nrows = len;
    view = true;
    parent_base = t.row_base;
    parent_rows = t.nrows;
  }

let with_hier t hier =
  let part p = { p with buf = Buffer.with_hier p.buf hier } in
  let dict d = { d with dbuf = Buffer.with_hier d.dbuf hier } in
  let sparse s = { s with sbuf = Buffer.with_hier s.sbuf hier } in
  let rle r = { r with rbuf = Buffer.with_hier r.rbuf hier } in
  let forbp f = { f with fxbuf = Buffer.with_hier f.fxbuf hier } in
  {
    t with
    hier;
    parts = Array.map part t.parts;
    dicts = Array.map (Option.map dict) t.dicts;
    sparses = Array.map (Option.map sparse) t.sparses;
    rles = Array.map (Option.map rle) t.rles;
    fors = Array.map (Option.map forbp) t.fors;
    view = true;
    parent_base = t.row_base;
    parent_rows = t.nrows;
  }

let reslice t ~lo ~len =
  if not t.view then invalid_arg "Relation.reslice: not a view";
  if lo < 0 || len < 0 || lo + len > t.parent_rows then
    invalid_arg
      (Printf.sprintf
         "Relation.reslice(%s): rows [%d, %d) out of bounds (parent window \
          holds %d rows)"
         t.schema.Schema.name lo (lo + len) t.parent_rows);
  t.row_base <- t.parent_base + lo;
  t.nrows <- len

let schema t = t.schema
let layout t = t.layout
let nrows t = t.nrows
let hier t = t.hier
let arena t = t.arena

let encoding t a = t.encodings.(a)

let encodings t =
  Array.to_list t.encodings
  |> List.mapi (fun a e -> (a, e))
  |> List.filter (fun (_, e) -> e <> Encoding.Plain)

let dict_info t a =
  match t.dicts.(a) with
  | Some d -> Some (max 1 d.count, d.value_width)
  | None -> None

let sparse_info t a =
  match t.sparses.(a) with
  | Some s -> Some (max 1 s.filled, s.entry_width)
  | None -> None

let rle_info t a =
  match t.rles.(a) with
  | Some r -> Some (max 1 r.rcount, r.rentry_width)
  | None -> None

let for_info t a =
  match t.fors.(a) with
  | Some f -> Some (f.fex_count, f.fwidth)
  | None -> None

let for_bounds t a =
  match t.fors.(a) with
  | Some { fbase = Some _; fmin; fmax; _ } -> Some (fmin, fmax)
  | _ -> None

let storage_bytes t =
  let parts =
    Array.fold_left (fun acc p -> acc + (t.nrows * p.width)) 0 t.parts
  in
  let dicts =
    Array.fold_left
      (fun acc d ->
        match d with Some d -> acc + (d.count * d.value_width) | None -> acc)
      0 t.dicts
  in
  let sparses =
    Array.fold_left
      (fun acc s ->
        match s with Some s -> acc + (s.filled * s.entry_width) | None -> acc)
      0 t.sparses
  in
  let rles =
    Array.fold_left
      (fun acc r ->
        match r with Some r -> acc + (r.rcount * r.rentry_width) | None -> acc)
      0 t.rles
  in
  let fors =
    Array.fold_left
      (fun acc f -> match f with Some f -> acc + (f.fex_count * 16) | None -> acc)
      0 t.fors
  in
  parts + dicts + sparses + rles + fors

let ensure_capacity t rows =
  if rows > t.capacity then begin
    let ncap = max rows (2 * t.capacity) in
    Array.iter (fun p -> Buffer.grow p.buf (max 1 (p.width * ncap))) t.parts;
    t.capacity <- ncap
  end

let field t a =
  let attr = Schema.attr t.schema a in
  (attr.Schema.ty, attr.Schema.nullable)

let add_cpu t n =
  match t.hier with Some h -> Memsim.Hierarchy.add_cpu h n | None -> ()

let m_decodes =
  Obs.Metrics.counter "mrdb_compress_decodes_total"
    ~help:"values reconstructed from a compressed representation"

(* Every compressed-value reconstruction funnels through here: it bumps the
   decode counter and, when a profile session is live, attributes the work to
   a "decode" phase of the enclosing operator span. *)
let decoded f =
  Obs.Metrics.incr m_decodes;
  if Obs.Profile.on () then Obs.Profile.phase "decode" f else f ()

(* dictionary encode: returns the code for [v], registering it if new *)
let encode t d v =
  match Hashtbl.find_opt d.codes v with
  | Some code -> code
  | None ->
      let code = d.count in
      if code >= Array.length d.values then begin
        let bigger = Array.make (2 * Array.length d.values) Value.Null in
        Array.blit d.values 0 bigger 0 code;
        d.values <- bigger
      end;
      Buffer.grow d.dbuf ((code + 1) * d.value_width);
      (* write the new dictionary entry (traced) *)
      Buffer.touch_write d.dbuf (code * d.value_width) ~width:d.value_width;
      d.values.(code) <- v;
      Hashtbl.add d.codes v code;
      d.count <- code + 1;
      ignore t;
      code

(* decode: one random access into the dictionary region *)
let decode t d code =
  decoded (fun () ->
      Buffer.touch d.dbuf (code * d.value_width) ~width:d.value_width;
      add_cpu t 1;
      d.values.(code))

(* model the binary search over the sorted pair list: log2(filled) probes *)
let sparse_search_touch t s =
  let steps =
    let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
    max 1 (log2 0 (max 2 s.filled))
  in
  let stride = max 1 (s.filled / (steps + 1)) in
  for i = 1 to steps do
    Buffer.touch s.sbuf
      (min (max 0 (s.filled - 1)) (i * stride) * s.entry_width)
      ~width:s.entry_width
  done;
  add_cpu t steps

let sparse_write s tid v =
  if Value.is_null v then Hashtbl.remove s.pairs tid
  else begin
    if not (Hashtbl.mem s.pairs tid) then begin
      Buffer.grow s.sbuf ((s.filled + 1) * s.entry_width);
      s.filled <- s.filled + 1
    end;
    Buffer.touch_write s.sbuf
      ((s.filled - 1) * s.entry_width)
      ~width:s.entry_width;
    Hashtbl.replace s.pairs tid v
  end

let sparse_read t s tid =
  decoded (fun () ->
      sparse_search_touch t s;
      match Hashtbl.find_opt s.pairs tid with Some v -> v | None -> Value.Null)

(* --- run-length storage --------------------------------------------- *)

(* largest k with rstarts.(k) <= tid; requires rcount > 0 *)
let rle_find r tid =
  let lo = ref 0 and hi = ref (r.rcount - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if r.rstarts.(mid) <= tid then lo := mid else hi := mid - 1
  done;
  !lo

let rle_run_end r k = if k + 1 < r.rcount then r.rstarts.(k + 1) else r.rtotal

(* model the binary search over the sorted run list: log2(rcount) probes *)
let rle_search_touch t r =
  let steps =
    let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
    max 1 (log2 0 (max 2 r.rcount))
  in
  let stride = max 1 (r.rcount / (steps + 1)) in
  for i = 1 to steps do
    Buffer.touch r.rbuf
      (min (max 0 (r.rcount - 1)) (i * stride) * r.rentry_width)
      ~width:r.rentry_width
  done;
  add_cpu t steps

let rle_push r ~start v =
  if r.rcount >= Array.length r.rstarts then begin
    let n = 2 * Array.length r.rstarts in
    let ns = Array.make n 0 and nv = Array.make n Value.Null in
    Array.blit r.rstarts 0 ns 0 r.rcount;
    Array.blit r.rvals 0 nv 0 r.rcount;
    r.rstarts <- ns;
    r.rvals <- nv
  end;
  r.rstarts.(r.rcount) <- start;
  r.rvals.(r.rcount) <- v;
  r.rcount <- r.rcount + 1

(* append at the frontier: extend the last run or open a new one *)
let rle_append r ~tid v =
  if r.rcount > 0 && Value.equal r.rvals.(r.rcount - 1) v then
    Buffer.touch_write r.rbuf
      ((r.rcount - 1) * r.rentry_width)
      ~width:r.rentry_width
  else begin
    Buffer.grow r.rbuf ((r.rcount + 1) * r.rentry_width);
    Buffer.touch_write r.rbuf (r.rcount * r.rentry_width) ~width:r.rentry_width;
    rle_push r ~start:tid v
  end;
  r.rtotal <- tid + 1

(* in-place update: replace run k by up to three segments and collapse equal
   neighbours — O(runs), modeled as a binary search plus a shifted rewrite of
   the run-list tail *)
let rle_set t r ~tid v =
  rle_search_touch t r;
  let k = rle_find r tid in
  if Value.equal r.rvals.(k) v then
    Buffer.touch_write r.rbuf (k * r.rentry_width) ~width:r.rentry_width
  else begin
    let s = r.rstarts.(k) and e = rle_run_end r k and old = r.rvals.(k) in
    let starts = Array.make (r.rcount + 2) 0 in
    let vals = Array.make (r.rcount + 2) Value.Null in
    let m = ref 0 in
    let emit start value =
      if !m > 0 && Value.equal vals.(!m - 1) value then ()
      else begin
        starts.(!m) <- start;
        vals.(!m) <- value;
        incr m
      end
    in
    for i = 0 to k - 1 do
      emit r.rstarts.(i) r.rvals.(i)
    done;
    if s < tid then emit s old;
    emit tid v;
    if tid + 1 < e then emit (tid + 1) old;
    for i = k + 1 to r.rcount - 1 do
      emit r.rstarts.(i) r.rvals.(i)
    done;
    Buffer.grow r.rbuf (!m * r.rentry_width);
    Buffer.touch_write_run r.rbuf (k * r.rentry_width) ~width:r.rentry_width
      ~count:(max 1 (!m - k))
      ~stride:r.rentry_width;
    r.rstarts <- starts;
    r.rvals <- vals;
    r.rcount <- !m
  end

let rle_write t r ~tid v =
  if tid = r.rtotal then rle_append r ~tid v else rle_set t r ~tid v

let rle_read t r tid =
  decoded (fun () ->
      rle_search_touch t r;
      add_cpu t 1;
      r.rvals.(rle_find r tid))

(* --- frame-of-reference storage ------------------------------------- *)

let for_drop_ex f tid =
  if Hashtbl.mem f.fex tid then begin
    Hashtbl.remove f.fex tid;
    f.fex_count <- f.fex_count - 1
  end

(* zigzag offset from the base, or None when the value must spill to the
   exception list.  The subtractions can wrap when the true distance exceeds
   the int range; the sign/bound checks reject those cases with the rest. *)
let for_code f x =
  match f.fbase with
  | None -> None
  | Some base ->
      if x >= base then
        let d = x - base in
        if d >= 0 && d <= (f.fescape - 1) / 2 then Some (2 * d) else None
      else
        let m = base - x in
        if m >= 1 && m <= (f.fescape - 1) / 2 then Some ((2 * m) - 1) else None

let for_decode f z =
  let base = match f.fbase with Some b -> b | None -> 0 in
  if z land 1 = 0 then base + (z asr 1) else base - ((z + 1) asr 1)

let for_entry_width = 16 (* (tid, value) exception pair *)

(* model the binary search over the sorted exception list *)
let for_ex_touch t f =
  let steps =
    let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
    max 1 (log2 0 (max 2 f.fex_count))
  in
  let stride = max 1 (f.fex_count / (steps + 1)) in
  for i = 1 to steps do
    Buffer.touch f.fxbuf
      (min (max 0 (f.fex_count - 1)) (i * stride) * for_entry_width)
      ~width:for_entry_width
  done;
  add_cpu t steps

let for_write f p ~tid ~off ~nullable v =
  if Value.is_null v then begin
    if not nullable then
      invalid_arg "Relation: NULL into non-nullable attribute";
    Buffer.write_byte p.buf off 0;
    for_drop_ex f tid
  end
  else begin
    if nullable then Buffer.write_byte p.buf off 1;
    let data_off = if nullable then off + 1 else off in
    let x = Value.to_int v in
    (match f.fbase with
    | None ->
        f.fbase <- Some x;
        f.fmin <- x;
        f.fmax <- x
    | Some _ ->
        if x < f.fmin then f.fmin <- x;
        if x > f.fmax then f.fmax <- x);
    match for_code f x with
    | Some z ->
        for_drop_ex f tid;
        Buffer.write_uint p.buf data_off ~width:f.fwidth z
    | None ->
        if not (Hashtbl.mem f.fex tid) then begin
          Buffer.grow f.fxbuf ((f.fex_count + 1) * for_entry_width);
          f.fex_count <- f.fex_count + 1
        end;
        Buffer.touch_write f.fxbuf
          ((f.fex_count - 1) * for_entry_width)
          ~width:for_entry_width;
        Hashtbl.replace f.fex tid x;
        Buffer.write_uint p.buf data_off ~width:f.fwidth f.fescape
  end

let for_read t f p ~tid ~off ~ty ~nullable =
  if nullable && Buffer.read_byte p.buf off = 0 then Value.Null
  else begin
    let data_off = if nullable then off + 1 else off in
    let z = Buffer.read_uint p.buf data_off ~width:f.fwidth in
    decoded (fun () ->
        let x =
          if z = f.fescape then begin
            for_ex_touch t f;
            Hashtbl.find f.fex tid
          end
          else begin
            add_cpu t 1;
            for_decode f z
          end
        in
        match (ty : Value.ty) with
        | Value.Date -> Value.VDate x
        | _ -> Value.VInt x)
  end

let write_field t p ~tid ~off a v =
  let ty, nullable = field t a in
  match (t.sparses.(a), t.rles.(a), t.fors.(a), t.dicts.(a)) with
  | Some s, _, _, _ -> sparse_write s tid v
  | None, Some r, _, _ -> rle_write t r ~tid v
  | None, None, Some f, _ -> for_write f p ~tid ~off ~nullable v
  | None, None, None, Some d ->
      let data_off = if nullable then off + 1 else off in
      if Value.is_null v then
        if nullable then Buffer.write_byte p.buf off 0
        else invalid_arg "Relation: NULL into non-nullable attribute"
      else begin
        if nullable then Buffer.write_byte p.buf off 1;
        Buffer.write_int32 p.buf data_off (encode t d v)
      end
  | None, None, None, None -> Buffer.write_value p.buf off ~ty ~nullable v

let read_field t p ~tid ~off a =
  let ty, nullable = field t a in
  match (t.sparses.(a), t.rles.(a), t.fors.(a), t.dicts.(a)) with
  | Some s, _, _, _ -> sparse_read t s tid
  | None, Some r, _, _ -> rle_read t r tid
  | None, None, Some f, _ -> for_read t f p ~tid ~off ~ty ~nullable
  | None, None, None, Some d ->
      let data_off = if nullable then off + 1 else off in
      if nullable && Buffer.read_byte p.buf off = 0 then Value.Null
      else decode t d (Buffer.read_int32 p.buf data_off)
  | None, None, None, None -> Buffer.read_value p.buf off ~ty ~nullable

let append t values =
  if t.view then invalid_arg "Relation.append: relation is a read-only view";
  if Array.length values <> Schema.arity t.schema then
    invalid_arg "Relation.append: arity mismatch";
  ensure_capacity t (t.nrows + 1);
  let tid = t.nrows in
  Array.iter
    (fun p ->
      Array.iteri
        (fun slot a ->
          write_field t p ~tid
            ~off:((tid * p.width) + p.offsets.(slot))
            a values.(a))
        p.attrs)
    t.parts;
  t.nrows <- tid + 1;
  tid

let check_tid t what tid =
  if tid < 0 || tid >= t.nrows then
    invalid_arg
      (Printf.sprintf "Relation.%s(%s): tuple %d out of bounds (%d rows)"
         what t.schema.Schema.name tid t.nrows)

let get t tid a =
  check_tid t "get" tid;
  let tid = t.row_base + tid in
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  read_field t p ~tid ~off:((tid * p.width) + off) a

let set t tid a v =
  check_tid t "set" tid;
  let tid = t.row_base + tid in
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  write_field t p ~tid ~off:((tid * p.width) + off) a v

let get_tuple t tid =
  check_tid t "get_tuple" tid;
  if t.uniform8 then begin
    (* All fields are plain non-null 8-byte values and each partition holds a
       consecutive attr range, so the per-attr access sequence of the generic
       path is, partition by partition, one contiguous 8-byte-stride run —
       trace it as such (identical order, identical counters) and serve the
       payloads untraced. *)
    let tid = t.row_base + tid in
    let out = Array.make (Schema.arity t.schema) Value.Null in
    Array.iter
      (fun pi ->
        let p = t.parts.(pi) in
        let n = Array.length p.attrs in
        let base_off = tid * p.width in
        Buffer.touch_run p.buf base_off ~width:8 ~count:n ~stride:8;
        for slot = 0 to n - 1 do
          let a = p.attrs.(slot) in
          let v = Buffer.untraced_read_int p.buf (base_off + p.offsets.(slot)) in
          out.(a) <-
            (match (Schema.attr t.schema a).Schema.ty with
            | Value.Date -> Value.VDate v
            | _ -> Value.VInt v)
        done)
      t.tuple_parts;
    out
  end
  else Array.init (Schema.arity t.schema) (fun a -> get t tid a)

let run_readable t a =
  t.encodings.(a) = Encoding.Plain && not (Schema.attr t.schema a).Schema.nullable

let int_run_readable t a =
  run_readable t a
  &&
  match (Schema.attr t.schema a).Schema.ty with
  | Value.Int | Value.Date -> true
  | _ -> false

let get_int t tid a =
  let tid = t.row_base + tid in
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  Buffer.read_int p.buf ((tid * p.width) + off)

let read_int_run t ~lo ~count a dst =
  if lo < 0 || count < 0 || lo + count > t.nrows then
    out_of_bounds t "read_int_run" ~lo ~len:count;
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  Buffer.read_int_run p.buf
    (((t.row_base + lo) * p.width) + off)
    ~stride:p.width ~count dst

let read_value_run t ~lo ~count a dst =
  if lo < 0 || count < 0 || lo + count > t.nrows then
    out_of_bounds t "read_value_run" ~lo ~len:count;
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  let ty, _ = field t a in
  Buffer.read_value_run p.buf
    (((t.row_base + lo) * p.width) + off)
    ~stride:p.width ~ty ~count dst

(* --- direct access to compressed representations --------------------- *)

let rle_readable t a = t.rles.(a) <> None

let iter_rle_runs t ~lo ~count a f =
  if lo < 0 || count < 0 || lo + count > t.nrows then
    out_of_bounds t "iter_rle_runs" ~lo ~len:count;
  match t.rles.(a) with
  | None -> invalid_arg "Relation.iter_rle_runs: attribute is not RLE"
  | Some r ->
      if count > 0 then begin
        let abs_lo = t.row_base + lo and abs_hi = t.row_base + lo + count in
        (* locate the first overlapping run, then walk the run list *)
        rle_search_touch t r;
        let k = ref (rle_find r abs_lo) in
        while !k < r.rcount && r.rstarts.(!k) < abs_hi do
          let s = max r.rstarts.(!k) abs_lo in
          let e = min (rle_run_end r !k) abs_hi in
          Buffer.touch r.rbuf (!k * r.rentry_width) ~width:r.rentry_width;
          add_cpu t 1;
          if e > s then f ~lo:(s - t.row_base) ~len:(e - s) r.rvals.(!k);
          incr k
        done
      end

let code_width_of t a =
  match (t.dicts.(a), t.fors.(a)) with
  | Some _, _ -> Some Encoding.code_width
  | None, Some f -> Some f.fwidth
  | None, None -> None

let code_run_readable t a =
  (not (Schema.attr t.schema a).Schema.nullable) && code_width_of t a <> None

let coded_loc t what a =
  match code_width_of t a with
  | Some w -> (w, t.loc.(a))
  | None ->
      invalid_arg
        (Printf.sprintf "Relation.%s(%s): attribute %d is not code-stored" what
           t.schema.Schema.name a)

let read_code_run t ~lo ~count a dst =
  if lo < 0 || count < 0 || lo + count > t.nrows then
    out_of_bounds t "read_code_run" ~lo ~len:count;
  let w, (pi, off) = coded_loc t "read_code_run" a in
  let p = t.parts.(pi) in
  Buffer.read_uint_run p.buf
    (((t.row_base + lo) * p.width) + off)
    ~width:w ~stride:p.width ~count dst

let read_code t tid a =
  check_tid t "read_code" tid;
  let w, (pi, off) = coded_loc t "read_code" a in
  let tid = t.row_base + tid in
  let p = t.parts.(pi) in
  Buffer.read_uint p.buf ((tid * p.width) + off) ~width:w

let dict_size t a = match t.dicts.(a) with Some d -> d.count | None -> 0

(* One traced sequential pass over the dictionary region — pushdown builds a
   predicate bitmap by evaluating once per distinct value instead of once per
   tuple. *)
let dict_values t a =
  match t.dicts.(a) with
  | None -> [||]
  | Some d ->
      if d.count > 0 then
        Buffer.touch_run d.dbuf 0 ~width:d.value_width ~count:d.count
          ~stride:d.value_width;
      Array.sub d.values 0 d.count

let for_escape t a =
  match t.fors.(a) with Some f -> Some f.fescape | None -> None

let decode_for_code t a z =
  match t.fors.(a) with
  | None -> invalid_arg "Relation.decode_for_code: attribute is not for_bp"
  | Some f ->
      Obs.Metrics.incr m_decodes;
      add_cpu t 1;
      for_decode f z

let for_exception_value t a tid =
  match t.fors.(a) with
  | None -> invalid_arg "Relation.for_exception_value: attribute is not for_bp"
  | Some f ->
      Obs.Metrics.incr m_decodes;
      for_ex_touch t f;
      Hashtbl.find f.fex (t.row_base + tid)

let addr t tid a =
  let tid = t.row_base + tid in
  let pi, off = t.loc.(a) in
  let p = t.parts.(pi) in
  Buffer.base p.buf + (tid * p.width) + off

let field_width t a =
  Encoding.stored_width (Schema.attr t.schema a) t.encodings.(a)

let part_of_attr t a = fst t.loc.(a)
let n_parts t = Array.length t.parts
let part_row_offset t pi = t.row_base * t.parts.(pi).width
let part_width t pi = t.parts.(pi).width
let part_buffer t pi = t.parts.(pi).buf
let attr_offset t a = snd t.loc.(a)

let untraced t f =
  match t.hier with
  | Some h -> Memsim.Hierarchy.without_tracing h f
  | None -> f ()

(* Serialization hook: visit every stored tuple without generating simulated
   traffic (snapshotting is setup work, like loads and index builds). *)
let iter_rows t f =
  untraced t (fun () ->
      for tid = 0 to t.nrows - 1 do
        f tid (get_tuple t tid)
      done)

(* Sparse and RLE attributes must be alone in their partition; when a layout
   change groups them with others they deterministically fall back to plain
   (live repartitions and WAL replay must agree on this). *)
let sanitize_encodings layout encs =
  List.filter
    (fun (a, e) ->
      match (e : Encoding.t) with
      | Sparse | Rle -> alone_in_partition layout a
      | _ -> true)
    encs

let copy_into t dst =
  untraced t (fun () ->
      for tid = 0 to t.nrows - 1 do
        ignore (append dst (get_tuple t tid))
      done)

let recompress t ?layout encodings =
  let layout = match layout with Some l -> l | None -> t.layout in
  let dst =
    create ?hier:t.hier ~capacity:(max 1 t.nrows)
      ~encodings:(sanitize_encodings layout encodings)
      t.arena t.schema layout
  in
  copy_into t dst;
  dst

let repartition t layout =
  let dst =
    create ?hier:t.hier ~capacity:(max 1 t.nrows)
      ~encodings:(sanitize_encodings layout (encodings t))
      t.arena t.schema layout
  in
  let all_plain = Array.for_all (fun e -> e = Encoding.Plain) t.encodings in
  if all_plain then begin
    (* Plain fields have the same stored bytes under any partitioning, so a
       repartition is pure byte movement: copy each attribute's column of
       fixed-width fields directly instead of boxing every value through
       get_tuple/append.  (Dict and Sparse columns keep OCaml-side state and
       take the generic path.) *)
    ensure_capacity dst t.nrows;
    let fw a = Encoding.stored_width (Schema.attr t.schema a) t.encodings.(a) in
    Array.iter
      (fun dp ->
        (* copy maximal attr groups that are contiguous in both the source
           and the destination partition as one strided field run *)
        let na = Array.length dp.attrs in
        let i = ref 0 in
        while !i < na do
          let a0 = dp.attrs.(!i) in
          let spi, soff0 = t.loc.(a0) in
          let doff0 = snd dst.loc.(a0) in
          let wsum = ref (fw a0) in
          let j = ref (!i + 1) in
          let grow = ref true in
          while !grow && !j < na do
            let a = dp.attrs.(!j) in
            let spi', soff' = t.loc.(a) in
            if
              spi' = spi
              && soff' = soff0 + !wsum
              && snd dst.loc.(a) = doff0 + !wsum
            then begin
              wsum := !wsum + fw a;
              incr j
            end
            else grow := false
          done;
          let sp = t.parts.(spi) in
          Buffer.copy_run ~src:sp.buf
            ~src_off:((t.row_base * sp.width) + soff0)
            ~src_stride:sp.width ~dst:dp.buf ~dst_off:doff0
            ~dst_stride:dp.width ~width:!wsum ~count:t.nrows;
          i := !j
        done)
      dst.parts;
    dst.nrows <- t.nrows
  end
  else copy_into t dst;
  dst

let load t ~n f =
  if t.view then invalid_arg "Relation.load: relation is a read-only view";
  untraced t (fun () ->
      ensure_capacity t (t.nrows + n);
      if t.uniform8 then
        (* every field is a plain non-nullable 8-byte int/date: store the
           payloads directly instead of dispatching [append]'s per-field
           write (loads run untraced, so the simulator sees nothing either
           way) *)
        let arity = Schema.arity t.schema in
        for row = 0 to n - 1 do
          let values = f ~row in
          if Array.length values <> arity then
            invalid_arg "Relation.load: arity mismatch";
          let tid = t.nrows in
          Array.iter
            (fun p ->
              let base = tid * p.width in
              Array.iteri
                (fun slot a ->
                  Buffer.untraced_write_int p.buf
                    (base + Array.unsafe_get p.offsets slot)
                    (Value.to_int (Array.unsafe_get values a)))
                p.attrs)
            t.parts;
          t.nrows <- tid + 1
        done
      else
        for row = 0 to n - 1 do
          ignore (append t (f ~row))
        done)

(* Unboxed bulk load for all-plain-int relations: the generator fills a
   reusable int array, so wide synthetic tables (microbench: 200k x 16)
   skip 16 [Value.t] boxes and a fresh array per row. *)
let load_int_rows t ~n f =
  if t.view then
    invalid_arg "Relation.load_int_rows: relation is a read-only view";
  if not t.uniform8 then
    invalid_arg "Relation.load_int_rows: not an all-plain-int relation";
  untraced t (fun () ->
      ensure_capacity t (t.nrows + n);
      let dst = Array.make (Schema.arity t.schema) 0 in
      for row = 0 to n - 1 do
        f ~row dst;
        let tid = t.nrows in
        Array.iter
          (fun p ->
            let base = tid * p.width in
            Array.iteri
              (fun slot a ->
                Buffer.untraced_write_int p.buf
                  (base + Array.unsafe_get p.offsets slot)
                  (Array.unsafe_get dst a))
              p.attrs)
          t.parts;
        t.nrows <- tid + 1
      done)
