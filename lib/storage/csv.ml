(* [Buffer] below is the standard library's, not Storage.Buffer *)
module Sbuf = Stdlib.Buffer

let split_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Sbuf.create 16 in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = line.[!i] in
    if !in_quotes then
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Sbuf.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        Sbuf.add_char buf c;
        incr i
      end
    else if c = '"' then begin
      in_quotes := true;
      incr i
    end
    else if c = ',' then begin
      fields := Sbuf.contents buf :: !fields;
      Sbuf.clear buf;
      incr i
    end
    else begin
      Sbuf.add_char buf c;
      incr i
    end
  done;
  if !in_quotes then failwith "Csv: unterminated quote";
  fields := Sbuf.contents buf :: !fields;
  List.rev !fields

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n') s

let quote s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let field_of_value (v : Value.t) =
  match v with
  | Value.Null -> ""
  | Value.VInt x -> string_of_int x
  | Value.VFloat f -> Printf.sprintf "%.17g" f
  | Value.VBool b -> string_of_bool b
  | Value.VDate d -> string_of_int d
  | Value.VStr s -> quote s

let export rel path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let schema = Relation.schema rel in
      let names =
        List.init (Schema.arity schema) (fun i ->
            (Schema.attr schema i).Schema.name)
      in
      output_string oc (String.concat "," names);
      output_char oc '\n';
      for tid = 0 to Relation.nrows rel - 1 do
        let row = Relation.get_tuple rel tid in
        output_string oc
          (String.concat "," (Array.to_list (Array.map field_of_value row)));
        output_char oc '\n'
      done)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let value_of_field (ty : Value.ty) nullable field =
  if String.equal field "" then
    if nullable then Value.Null
    else failwith "Csv: empty field for non-nullable attribute"
  else
    match ty with
    | Value.Int -> Value.VInt (int_of_string field)
    | Value.Date -> Value.VDate (int_of_string field)
    | Value.Float -> Value.VFloat (float_of_string field)
    | Value.Bool -> Value.VBool (bool_of_string field)
    | Value.Varchar _ -> Value.VStr field

let import cat ~table path =
  let rel = Catalog.find cat table in
  let schema = Relation.schema rel in
  match read_lines path with
  | [] -> failwith "Csv: empty file"
  | header :: rows ->
      let positions =
        List.map
          (fun name ->
            try Schema.attr_index schema (String.trim name)
            with Not_found -> failwith (Printf.sprintf "Csv: unknown column %S" name))
          (split_line header)
      in
      let arity = Schema.arity schema in
      let count = ref 0 in
      (* one transaction per file: a crash mid-import recovers to either no
         rows or the whole file, never a prefix *)
      Catalog.in_txn cat @@ fun () ->
      List.iter
        (fun line ->
          if not (String.equal (String.trim line) "") then begin
            let fields = split_line line in
            if List.length fields <> List.length positions then
              failwith "Csv: row arity does not match header";
            let tuple = Array.make arity Value.Null in
            List.iter2
              (fun pos field ->
                let a = Schema.attr schema pos in
                tuple.(pos) <- value_of_field a.Schema.ty a.Schema.nullable field)
              positions fields;
            (* non-nullable attributes missing from the header are an error *)
            Array.iteri
              (fun i v ->
                if Value.is_null v && not (Schema.attr schema i).Schema.nullable
                then
                  failwith
                    (Printf.sprintf "Csv: missing non-nullable column %s"
                       (Schema.attr schema i).Schema.name))
              tuple;
            let tid =
              match Relation.hier rel with
              | Some h ->
                  Memsim.Hierarchy.without_tracing h (fun () ->
                      Relation.append rel tuple)
              | None -> Relation.append rel tuple
            in
            Catalog.notify_insert cat table ~tid;
            incr count
          end)
        rows;
      !count

(* column type inference over the data rows *)
let infer_type fields =
  let non_empty = List.filter (fun f -> not (String.equal f "")) fields in
  let nullable = List.length non_empty < List.length fields in
  let all p = non_empty <> [] && List.for_all p non_empty in
  let ty =
    if all (fun f -> int_of_string_opt f <> None) then Value.Int
    else if all (fun f -> float_of_string_opt f <> None) then Value.Float
    else if all (fun f -> bool_of_string_opt f <> None) then Value.Bool
    else
      let width =
        List.fold_left (fun acc f -> max acc (String.length f)) 1 non_empty
      in
      Value.Varchar (max 8 width)
  in
  (ty, nullable)

let import_new cat ~name path =
  match read_lines path with
  | [] -> failwith "Csv: empty file"
  | header :: rows ->
      let names = List.map String.trim (split_line header) in
      let data_rows =
        List.filter (fun l -> not (String.equal (String.trim l) "")) rows
        |> List.map split_line
      in
      let columns =
        List.mapi
          (fun i col_name ->
            let fields =
              List.map
                (fun row ->
                  try List.nth row i
                  with _ -> failwith "Csv: row arity does not match header")
                data_rows
            in
            let ty, nullable = infer_type fields in
            (col_name, ty, nullable))
          names
      in
      let schema = Schema.make_nullable name columns in
      let rel = Catalog.add cat schema (Layout.row schema) in
      List.iter
        (fun row ->
          let tuple =
            Array.of_list
              (List.mapi
                 (fun i field ->
                   let a = Schema.attr schema i in
                   value_of_field a.Schema.ty a.Schema.nullable field)
                 row)
          in
          let tid =
            match Relation.hier rel with
            | Some h ->
                Memsim.Hierarchy.without_tracing h (fun () ->
                    Relation.append rel tuple)
            | None -> Relation.append rel tuple
          in
          ignore tid)
        data_rows;
      rel
