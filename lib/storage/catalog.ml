type entry = {
  mutable rel : Relation.t;
  mutable indexes : (string * Index.kind * string list * Index.t) list;
}

type t = {
  arena : Arena.t;
  hier : Memsim.Hierarchy.t option;
  tbl : (string, entry) Hashtbl.t;
}

let create ?hier ?arena () =
  let arena = match arena with Some a -> a | None -> Arena.create () in
  { arena; hier; tbl = Hashtbl.create 16 }

let arena t = t.arena
let hier t = t.hier

let add_relation t rel =
  let name = (Relation.schema rel).Schema.name in
  Hashtbl.replace t.tbl name { rel; indexes = [] }

let add ?encodings t schema layout =
  let rel = Relation.create ?hier:t.hier ?encodings t.arena schema layout in
  add_relation t rel;
  rel

let entry t name =
  match Hashtbl.find_opt t.tbl name with
  | Some e -> e
  | None -> raise Not_found

let find t name = (entry t name).rel

let mem t name = Hashtbl.mem t.tbl name

let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let build_index rel kind attr_names =
  let schema = Relation.schema rel in
  let attrs = Schema.attr_indices schema attr_names in
  match (kind : Index.kind) with
  | Index.Hash -> Index.build_hash rel ~attrs
  | Index.Rbtree -> (
      match attrs with
      | [ a ] -> Index.build_rb rel ~attr:a
      | _ -> invalid_arg "Catalog: rbtree index takes exactly one attribute")

let set_layout t name layout =
  let e = entry t name in
  e.rel <- Relation.repartition e.rel layout;
  e.indexes <-
    List.map
      (fun (iname, kind, attr_names, _) ->
        (iname, kind, attr_names, build_index e.rel kind attr_names))
      e.indexes

let create_index t name ~name:iname ~kind ~attrs =
  let e = entry t name in
  let idx = build_index e.rel kind attrs in
  e.indexes <- (iname, kind, attrs, idx) :: e.indexes

let indexes t name =
  List.map (fun (iname, _, _, idx) -> (iname, idx)) (entry t name).indexes

let find_index t name ~attrs =
  let e = entry t name in
  let sorted = List.sort compare attrs in
  let rec go = function
    | [] -> None
    | (_, _, _, idx) :: rest ->
        if List.sort compare (Index.attrs idx) = sorted then Some idx
        else go rest
  in
  go e.indexes

let rebuild_indexes_for t name ~attrs =
  let e = entry t name in
  e.indexes <-
    List.map
      (fun ((iname, kind, attr_names, idx) as entry) ->
        let key = Index.attrs idx in
        if List.exists (fun a -> List.mem a key) attrs then
          (iname, kind, attr_names, build_index e.rel kind attr_names)
        else entry)
      e.indexes

let notify_insert t name ~tid =
  let e = entry t name in
  List.iter (fun (_, _, _, idx) -> Index.insert idx e.rel ~tid) e.indexes
