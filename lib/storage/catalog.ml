type entry = {
  mutable rel : Relation.t;
  mutable indexes : (string * Index.kind * string list * Index.t) list;
}

(* Observation events for mutating operations.  A registered observer (the
   durability manager) turns these into write-ahead-log records; with no
   observer every notification is a single [None] match, so the non-durable
   hot path is untouched. *)
type obs_event =
  | Obs_begin
  | Obs_commit
  | Obs_abort
  | Obs_create_relation of { table : string }
  | Obs_append of { table : string; tid : int }
  | Obs_load of { table : string; row_lo : int; rows : int }
  | Obs_update of { table : string; tid : int; attr : int; value : Value.t }
  | Obs_set_layout of { table : string; layout : Layout.t }
  | Obs_set_physical of {
      table : string;
      layout : Layout.t;
      encodings : (int * Encoding.t) list;
    }
  | Obs_create_index of {
      table : string;
      iname : string;
      kind : Index.kind;
      attrs : string list;
    }

type t = {
  arena : Arena.t;
  hier : Memsim.Hierarchy.t option;
  tbl : (string, entry) Hashtbl.t;
  mutable obs : (obs_event -> unit) option;
}

let m_inserts =
  Obs.Metrics.counter "mrdb_catalog_inserts_total"
    ~help:"Rows appended through the catalog"

let m_updates =
  Obs.Metrics.counter "mrdb_catalog_updates_total"
    ~help:"In-place attribute updates through the catalog"

let m_layout_changes =
  Obs.Metrics.counter "mrdb_catalog_layout_changes_total"
    ~help:"Table repartitions via set_layout"

let create ?hier ?arena () =
  let arena = match arena with Some a -> a | None -> Arena.create () in
  { arena; hier; tbl = Hashtbl.create 16; obs = None }

let arena t = t.arena
let hier t = t.hier

let set_observer t f = t.obs <- Some f
let clear_observer t = t.obs <- None
let observed t = t.obs <> None

let emit t ev = match t.obs with Some f -> f ev | None -> ()

let in_txn t f =
  match t.obs with
  | None -> f ()
  | Some _ -> (
      emit t Obs_begin;
      match f () with
      | r ->
          emit t Obs_commit;
          r
      | exception e ->
          emit t Obs_abort;
          raise e)

let add_relation t rel =
  let name = (Relation.schema rel).Schema.name in
  Hashtbl.replace t.tbl name { rel; indexes = [] };
  emit t (Obs_create_relation { table = name })

let add ?encodings t schema layout =
  let rel = Relation.create ?hier:t.hier ?encodings t.arena schema layout in
  add_relation t rel;
  rel

let entry t name =
  match Hashtbl.find_opt t.tbl name with
  | Some e -> e
  | None -> raise (Mrdb_util.Errors.Unknown_table name)

let find t name = (entry t name).rel

let mem t name = Hashtbl.mem t.tbl name

let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let build_index rel kind attr_names =
  let schema = Relation.schema rel in
  let attrs = Schema.attr_indices schema attr_names in
  match (kind : Index.kind) with
  | Index.Hash -> Index.build_hash rel ~attrs
  | Index.Rbtree -> (
      match attrs with
      | [ a ] -> Index.build_rb rel ~attr:a
      | _ -> invalid_arg "Catalog: rbtree index takes exactly one attribute")

let set_layout t name layout =
  let e = entry t name in
  Obs.Metrics.incr m_layout_changes;
  emit t (Obs_set_layout { table = name; layout });
  e.rel <- Relation.repartition e.rel layout;
  e.indexes <-
    List.map
      (fun (iname, kind, attr_names, _) ->
        (iname, kind, attr_names, build_index e.rel kind attr_names))
      e.indexes

let m_physical_changes =
  Obs.Metrics.counter "mrdb_catalog_physical_changes_total"
    ~help:"Table rebuilds via set_physical (layout and/or encodings)"

let set_physical t name ?layout encodings =
  let e = entry t name in
  let layout =
    match layout with Some l -> l | None -> Relation.layout e.rel
  in
  Obs.Metrics.incr m_physical_changes;
  emit t (Obs_set_physical { table = name; layout; encodings });
  e.rel <- Relation.recompress e.rel ~layout encodings;
  e.indexes <-
    List.map
      (fun (iname, kind, attr_names, _) ->
        (iname, kind, attr_names, build_index e.rel kind attr_names))
      e.indexes

let create_index t name ~name:iname ~kind ~attrs =
  let e = entry t name in
  emit t (Obs_create_index { table = name; iname; kind; attrs });
  let idx = build_index e.rel kind attrs in
  e.indexes <- (iname, kind, attrs, idx) :: e.indexes

let indexes t name =
  List.map (fun (iname, _, _, idx) -> (iname, idx)) (entry t name).indexes

let find_index t name ~attrs =
  let e = entry t name in
  let sorted = List.sort compare attrs in
  let rec go = function
    | [] -> None
    | (_, _, _, idx) :: rest ->
        if List.sort compare (Index.attrs idx) = sorted then Some idx
        else go rest
  in
  go e.indexes

let rebuild_indexes_for t name ~attrs =
  let e = entry t name in
  e.indexes <-
    List.map
      (fun ((iname, kind, attr_names, idx) as entry) ->
        let key = Index.attrs idx in
        if List.exists (fun a -> List.mem a key) attrs then
          (iname, kind, attr_names, build_index e.rel kind attr_names)
        else entry)
      e.indexes

let notify_insert t name ~tid =
  let e = entry t name in
  Obs.Metrics.incr m_inserts;
  emit t (Obs_append { table = name; tid });
  List.iter (fun (_, _, _, idx) -> Index.insert idx e.rel ~tid) e.indexes

let notify_update t name ~tid ~attr ~value =
  Obs.Metrics.incr m_updates;
  match t.obs with
  | None -> ()
  | Some f -> f (Obs_update { table = name; tid; attr; value })

let notify_load t name ~row_lo ~rows =
  match t.obs with
  | None -> ()
  | Some f -> f (Obs_load { table = name; row_lo; rows })

let index_defs t name =
  List.rev_map
    (fun (iname, kind, attrs, _) -> (iname, kind, attrs))
    (entry t name).indexes
