type t = { mutable next : int }

let page = 4096

let round_up n = (n + page - 1) / page * page

let create ?(start = page) () = { next = max page (round_up start) }

let mark t = t.next

let alloc t size =
  if size < 0 then
    invalid_arg (Printf.sprintf "Arena.alloc: negative size %d" size);
  if size > max_int - t.next - (2 * page) then
    invalid_arg
      (Printf.sprintf
         "Arena.alloc: %d bytes overflows the address space (next free \
          address %d)"
         size t.next);
  let base = t.next in
  let size = round_up size in
  t.next <- t.next + size + page (* one guard page between regions *);
  base
