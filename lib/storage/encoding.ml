type t = Plain | Dict | Sparse

let code_width = 4

let stored_width (a : Schema.attr) = function
  | Plain -> Schema.stored_width a
  | Dict -> code_width + if a.Schema.nullable then 1 else 0
  | Sparse -> 0 (* the attribute lives outside its partition's tuples *)

let pp ppf = function
  | Plain -> Format.pp_print_string ppf "plain"
  | Dict -> Format.pp_print_string ppf "dict"
  | Sparse -> Format.pp_print_string ppf "sparse"

(* serialization hooks: stable one-byte wire codes *)
let to_code = function Plain -> 0 | Dict -> 1 | Sparse -> 2

let of_code = function
  | 0 -> Plain
  | 1 -> Dict
  | 2 -> Sparse
  | c -> invalid_arg (Printf.sprintf "Encoding.of_code: %d" c)
