type t = Plain | Dict | Sparse | Rle | For_bp of int

let code_width = 4

let valid_for_width w = w = 1 || w = 2 || w = 4

let stored_width (a : Schema.attr) = function
  | Plain -> Schema.stored_width a
  | Dict -> code_width + if a.Schema.nullable then 1 else 0
  | Sparse -> 0 (* the attribute lives outside its partition's tuples *)
  | Rle -> 0 (* the attribute lives in its run list, not in tuples *)
  | For_bp w -> w + if a.Schema.nullable then 1 else 0

let pp ppf = function
  | Plain -> Format.pp_print_string ppf "plain"
  | Dict -> Format.pp_print_string ppf "dict"
  | Sparse -> Format.pp_print_string ppf "sparse"
  | Rle -> Format.pp_print_string ppf "rle"
  | For_bp w -> Format.fprintf ppf "for_bp%d" w

(* serialization hooks: stable one-byte wire codes *)
let to_code = function
  | Plain -> 0
  | Dict -> 1
  | Sparse -> 2
  | Rle -> 3
  | For_bp 1 -> 4
  | For_bp 2 -> 5
  | For_bp 4 -> 6
  | For_bp w -> invalid_arg (Printf.sprintf "Encoding.to_code: for_bp%d" w)

let of_code = function
  | 0 -> Plain
  | 1 -> Dict
  | 2 -> Sparse
  | 3 -> Rle
  | 4 -> For_bp 1
  | 5 -> For_bp 2
  | 6 -> For_bp 4
  | c -> invalid_arg (Printf.sprintf "Encoding.of_code: %d" c)
