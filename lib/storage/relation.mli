(** A memory-resident relation stored under a chosen vertical layout.

    Each partition is one contiguous region of tuples of the partition's
    width; the address of attribute [a] of tuple [tid] is
    [part_base + tid * part_width + offset(a)] — the PDSM storage scheme of
    Section III-B. *)

type t

val create :
  ?hier:Memsim.Hierarchy.t ->
  ?capacity:int ->
  ?encodings:(int * Encoding.t) list ->
  Arena.t ->
  Schema.t ->
  Layout.t ->
  t
(** [encodings] selects per-attribute storage encodings (attribute index to
    encoding); unlisted attributes are stored plain. *)

val schema : t -> Schema.t
val layout : t -> Layout.t
val nrows : t -> int
val hier : t -> Memsim.Hierarchy.t option
val arena : t -> Arena.t

val slice : t -> lo:int -> len:int -> t
(** A read-only view of rows [lo .. lo+len-1]: tuple id [i] of the slice is
    tuple [lo + i] of this relation, stored at the same addresses.  The view
    shares all storage with the original; {!append} and {!load} on it are
    rejected.  This is the morsel primitive of the parallel executor — a
    morsel is one engine run over a slice. *)

val with_hier : t -> Memsim.Hierarchy.t option -> t
(** A read-only view of the same stored data whose traced accesses are
    reported to a different memory hierarchy (or, with [None], untraced).
    Worker domains of a parallel query each read the shared relation through
    their own view so simulated cache behaviour composes per-domain. *)

val reslice : t -> lo:int -> len:int -> unit
(** Move a view's window to rows [lo .. lo+len-1] of its parent (the window
    the parent had when the view was created).  Mutates the view in place —
    the morsel loop of the parallel executor builds one view per domain and
    reslices it per morsel instead of reallocating catalog and views. *)

val append : t -> Value.t array -> int
(** Append a full tuple (one value per schema attribute, in schema order);
    returns the new tuple id.  Grows partitions as needed. *)

val get : t -> int -> int -> Value.t
(** [get t tid attr].
    @raise Invalid_argument (naming the relation and tuple) when [tid] is
    out of bounds. *)

val set : t -> int -> int -> Value.t -> unit

val iter_rows : t -> (int -> Value.t array -> unit) -> unit
(** [iter_rows t f] calls [f tid tuple] for every stored tuple in tid order,
    untraced — the serialization hook snapshots are built from. *)

val get_tuple : t -> int -> Value.t array
(** Whole-tuple read.  When every attribute is plain, non-nullable and
    8 bytes wide (and partitions hold consecutive attr ranges), the access
    trace is batched per partition as one contiguous run — same access
    order, same counters, far fewer simulator calls. *)

val run_readable : t -> int -> bool
(** The attribute is stored plain and non-nullable, i.e. a range of tuples
    is one fixed-stride run of equal-width fields. *)

val int_run_readable : t -> int -> bool
(** {!run_readable} and 8-byte integer-valued ([Int] or [Date]). *)

val get_int : t -> int -> int -> int
(** [get_int t tid a] reads attribute [a] of tuple [tid] as an unboxed int —
    same traced access as {!get}, no allocation.  Requires
    {!int_run_readable}. *)

val read_int_run : t -> lo:int -> count:int -> int -> int array -> unit
(** [read_int_run t ~lo ~count a dst] reads attribute [a] of tuples
    [lo .. lo+count-1] into [dst.(0..count-1)] as unboxed ints, tracing the
    whole run with one simulator call.  Requires {!int_run_readable}. *)

val read_value_run : t -> lo:int -> count:int -> int -> Value.t array -> unit
(** Boxed-value variant; requires {!run_readable}. *)

val addr : t -> int -> int -> int
(** Virtual address of the stored field (including null byte if present). *)

val field_width : t -> int -> int
(** Stored width of the attribute's field under its encoding. *)

val encoding : t -> int -> Encoding.t

val encodings : t -> (int * Encoding.t) list
(** The non-plain encodings, as passable to {!create}. *)

val dict_info : t -> int -> (int * int) option
(** For a dictionary-encoded attribute: (distinct values so far, value
    width in bytes) — the parameters of the decode access pattern. *)

val sparse_info : t -> int -> (int * int) option
(** For a sparse attribute: (non-null entries, pair entry width). *)

val rle_info : t -> int -> (int * int) option
(** For an RLE attribute: (runs so far, run entry width). *)

val for_info : t -> int -> (int * int) option
(** For a for_bp attribute: (exception count, code width in bytes). *)

val for_bounds : t -> int -> (int * int) option
(** Widen-only (min, max) bounds over every value ever stored in a for_bp
    attribute — a superset of the live values, so range pruning against them
    is sound in both the prune-empty and the prune-all direction.  [None]
    until a first non-null value is stored. *)

val rle_readable : t -> int -> bool

val iter_rle_runs :
  t -> lo:int -> count:int -> int -> (lo:int -> len:int -> Value.t -> unit) ->
  unit
(** [iter_rle_runs t ~lo ~count a f] calls [f ~lo ~len v] for each maximal
    run of attribute [a] intersected with rows [lo .. lo+count-1] (run
    bounds relative to this view), in ascending order.  Traces one binary
    search to locate the first run plus one run-entry touch per run —
    run-granular instead of tuple-granular. *)

val code_run_readable : t -> int -> bool
(** The attribute is non-nullable and stored as fixed-width codes (Dict or
    For_bp), so a range of tuples is one narrow-field code run. *)

val read_code_run : t -> lo:int -> count:int -> int -> int array -> unit
(** [read_code_run t ~lo ~count a dst] reads the stored codes of attribute
    [a] for tuples [lo .. lo+count-1], tracing the whole narrow-field run
    with one simulator call.  Requires {!code_run_readable}. *)

val read_code : t -> int -> int -> int
(** [read_code t tid a]: one traced code read (no decode). *)

val dict_size : t -> int -> int

val dict_values : t -> int -> Value.t array
(** The dictionary contents in code order, traced as one sequential pass
    over the dictionary region — predicate pushdown evaluates once per
    distinct value instead of once per tuple. *)

val for_escape : t -> int -> int option
(** The reserved exception marker code of a for_bp attribute. *)

val decode_for_code : t -> int -> int -> int
(** [decode_for_code t a z] reconstructs the value behind non-escape code
    [z] — pure arithmetic (one cpu cycle), no memory traffic. *)

val for_exception_value : t -> int -> int -> int
(** [for_exception_value t a tid] resolves an escape marker through the
    traced exception list. *)

val storage_bytes : t -> int
(** Bytes occupied by the relation's partitions, dictionaries and sparse
    pair lists — the storage-footprint metric of the compression and
    sparse-storage experiments. *)

val part_of_attr : t -> int -> int
val part_width : t -> int -> int
(** Tuple width of the given partition. *)

val n_parts : t -> int
(** Number of stored partitions. *)

val part_row_offset : t -> int -> int
(** Byte offset of this view's first row inside the given partition's
    buffer ([row_base * part_width]) — where a compiled pipeline must start
    reading to cover exactly the rows this (possibly sliced) view exposes. *)

val part_buffer : t -> int -> Buffer.t
val attr_offset : t -> int -> int
(** Byte offset of the attribute inside its partition's tuple. *)

val repartition : t -> Layout.t -> t
(** Copy into a new layout (untraced — layout changes are setup work).
    Sparse/RLE attributes that are no longer alone in their partition fall
    back to plain storage deterministically. *)

val recompress : t -> ?layout:Layout.t -> (int * Encoding.t) list -> t
(** Copy into new per-attribute encodings (and optionally a new layout) —
    untraced, like {!repartition}.  Encodings incompatible with the target
    layout (a Sparse/RLE attribute not alone in its partition) fall back to
    plain deterministically. *)

val load :
  t -> n:int -> (row:int -> Value.t array) -> unit
(** Bulk-append [n] generated tuples with tracing disabled. *)

val load_int_rows : t -> n:int -> (row:int -> int array -> unit) -> unit
(** Unboxed {!load} for relations whose every attribute is a plain
    non-nullable 8-byte int/date: [f ~row dst] fills the reusable [dst]
    (one int per attribute, schema order).  Raises [Invalid_argument] on
    any other relation. *)
