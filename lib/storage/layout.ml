type t = {
  parts : int array array;
  attr_to_part : int array; (* attribute index -> partition number *)
  n_attrs : int;
}

let build n_attrs parts =
  let attr_to_part = Array.make n_attrs (-1) in
  Array.iteri
    (fun p attrs ->
      Array.iter
        (fun a ->
          if a < 0 || a >= n_attrs then
            invalid_arg (Printf.sprintf "Layout: attribute %d out of range" a);
          if attr_to_part.(a) <> -1 then
            invalid_arg (Printf.sprintf "Layout: attribute %d in two partitions" a);
          attr_to_part.(a) <- p)
        attrs)
    parts;
  Array.iteri
    (fun a p ->
      if p = -1 then
        invalid_arg (Printf.sprintf "Layout: attribute %d not covered" a))
    attr_to_part;
  { parts; attr_to_part; n_attrs }

let row schema =
  let n = Schema.arity schema in
  build n [| Array.init n (fun i -> i) |]

let column schema =
  let n = Schema.arity schema in
  build n (Array.init n (fun i -> [| i |]))

let of_indices schema groups =
  let n = Schema.arity schema in
  build n (Array.of_list (List.map Array.of_list groups))

let of_names schema groups =
  of_indices schema (List.map (Schema.attr_indices schema) groups)

let partitions t = t.parts

(* serialization hook: the exact partition groups, as lists *)
let to_groups t =
  Array.to_list (Array.map Array.to_list t.parts)

let n_attrs t = t.n_attrs
let n_partitions t = Array.length t.parts
let partition_of_attr t a = t.attr_to_part.(a)
let partition_attrs t p = t.parts.(p)

let is_row t = Array.length t.parts = 1
let is_column t =
  Array.length t.parts = t.n_attrs
  && Array.for_all (fun p -> Array.length p = 1) t.parts

let normalize t =
  let groups =
    Array.to_list
      (Array.map
         (fun p ->
           let q = Array.copy p in
           Array.sort Stdlib.compare q;
           q)
         t.parts)
  in
  List.sort Stdlib.compare groups

let equal a b = a.n_attrs = b.n_attrs && normalize a = normalize b

let to_name_groups schema t =
  Array.to_list
    (Array.map
       (fun p ->
         Array.to_list (Array.map (fun a -> (Schema.attr schema a).name) p))
       t.parts)

let kind_label t =
  if is_row t then "row"
  else if is_column t then "column"
  else Printf.sprintf "hybrid(%d)" (Array.length t.parts)

let pp schema ppf t =
  Format.fprintf ppf "@[<hv>{";
  Array.iteri
    (fun i p ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "{%s}"
        (String.concat ","
           (Array.to_list
              (Array.map (fun a -> (Schema.attr schema a).name) p))))
    t.parts;
  Format.fprintf ppf "}@]"
