(** Virtual address space shared by all buffers of one database instance.

    The simulator only needs distinct, stable addresses; no real memory is
    reserved.  Allocations are page-aligned so distinct regions never share a
    cache line or TLB page. *)

type t

val create : ?start:int -> unit -> t
(** [create ()] starts allocating at the first page.  [~start] (rounded up
    to a page boundary) opens the arena at a chosen address instead — worker
    domains of a parallel query use disjoint start addresses so their
    intermediate allocations never alias each other or the shared base
    data. *)

val mark : t -> int
(** The next address this arena would allocate; everything below has been
    handed out.  Used to carve disjoint per-domain address ranges. *)

val alloc : t -> int -> int
(** [alloc t size] reserves [size] bytes and returns the base address.
    @raise Invalid_argument (naming the requested size) on negative or
    address-space-overflowing requests instead of failing deep inside a
    buffer index computation. *)
