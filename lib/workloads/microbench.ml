module V = Storage.Value
module Schema = Storage.Schema
module Layout = Storage.Layout

let domain = 1_000_000

let attr_names =
  [ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H"; "I"; "J"; "K"; "L"; "M"; "N"; "O"; "P" ]

let schema = Schema.make "R" (List.map (fun n -> (n, V.Int)) attr_names)

let pdsm_layout =
  Layout.of_names schema
    [
      [ "A" ];
      [ "B"; "C"; "D"; "E" ];
      [ "F"; "G"; "H"; "I"; "J"; "K"; "L"; "M"; "N"; "O"; "P" ];
    ]

let build ?hier ~n () =
  let cat = Storage.Catalog.create ?hier () in
  let rel = Storage.Catalog.add cat schema (Layout.row schema) in
  let rng = Mrdb_util.Rng.create 0xF16_3 in
  Storage.Relation.load_int_rows rel ~n (fun ~row dst ->
      ignore row;
      dst.(0) <- Mrdb_util.Rng.int rng domain;
      for i = 1 to 15 do
        dst.(i) <- Mrdb_util.Rng.int rng 1000
      done);
  cat

let predicate =
  Relalg.Expr.Cmp (Relalg.Expr.Lt, Relalg.Expr.Col 0, Relalg.Expr.Param 1)

let plan cat ~sel =
  let logical =
    Relalg.Plan.Group_by
      {
        child = Relalg.Plan.Select (Relalg.Plan.Scan "R", predicate);
        keys = [];
        aggs =
          List.map
            (fun i ->
              Relalg.Aggregate.make Relalg.Aggregate.Sum
                ~expr:(Relalg.Expr.Col i)
                (Printf.sprintf "sum_%s" (List.nth attr_names i)))
            [ 1; 2; 3; 4 ];
      }
  in
  Relalg.Planner.plan
    ~estimate:(fun e -> if e = predicate then Some sel else None)
    ~n_groups:1.0 cat logical

let params ~sel = [| V.VInt (int_of_float (sel *. float_of_int domain)) |]

let selective_projection_plan cat ~sel = plan cat ~sel
