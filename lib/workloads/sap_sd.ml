module V = Storage.Value
module Schema = Storage.Schema
module Layout = Storage.Layout
module Expr = Relalg.Expr

type t = { cat : Storage.Catalog.t; queries : Workload.query list }

let tables = [ "ADRC"; "KNA1"; "VBAK"; "VBAP"; "VBEP"; "MARA" ]

(* ------------------------------------------------------------------ *)
(* Schemas                                                             *)
(* ------------------------------------------------------------------ *)

let adrc_schema =
  Schema.make "ADRC"
    [
      ("ADDRNUMBER", V.Int);
      ("NAME_CO", V.Varchar 16);
      ("NAME1", V.Varchar 16);
      ("NAME2", V.Varchar 16);
      ("KUNNR", V.Int);
      ("CITY1", V.Varchar 16);
      ("STREET", V.Varchar 16);
      ("POST_CODE1", V.Int);
      ("COUNTRY", V.Varchar 8);
      ("REGION", V.Varchar 8);
    ]

let kna1_schema =
  Schema.make "KNA1"
    [
      ("KUNNR", V.Int);
      ("LAND1", V.Varchar 8);
      ("NAME1", V.Varchar 16);
      ("ORT01", V.Varchar 16);
      ("PSTLZ", V.Int);
      ("STRAS", V.Varchar 16);
      ("TELF1", V.Varchar 16);
      ("ADRNR", V.Int);
    ]

let vbak_schema =
  Schema.make "VBAK"
    [
      ("VBELN", V.Int);
      ("ERDAT", V.Date);
      ("AUART", V.Varchar 8);
      ("NETWR", V.Int);
      ("VKORG", V.Int);
      ("VTWEG", V.Int);
      ("KUNNR", V.Int);
      ("WAERK", V.Varchar 8);
    ]

let vbap_schema =
  Schema.make "VBAP"
    [
      ("VBELN", V.Int);
      ("POSNR", V.Int);
      ("MATNR", V.Int);
      ("ARKTX", V.Varchar 24);
      ("NETWR", V.Int);
      ("ZMENG", V.Int);
      ("WERKS", V.Int);
    ]

let vbep_schema =
  Schema.make "VBEP"
    [
      ("VBELN", V.Int);
      ("POSNR", V.Int);
      ("ETENR", V.Int);
      ("EDATU", V.Date);
      ("WMENG", V.Int);
      ("BMENG", V.Int);
    ]

let mara_schema =
  Schema.make "MARA"
    [
      ("MATNR", V.Int);
      ("MTART", V.Varchar 8);
      ("MATKL", V.Varchar 8);
      ("MEINS", V.Varchar 8);
      ("BRGEW", V.Int);
      ("NTGEW", V.Int);
    ]

(* ------------------------------------------------------------------ *)
(* Data generation                                                     *)
(* ------------------------------------------------------------------ *)

let n_name_pool = 100
let n_countries = 20
let n_order_types = 10
let n_material_types = 8
let date_span = 3650

(* Hand-rolled zero-padded decimal formatting: generation is a large share
   of experiment wall-clock at bench scales, and sprintf dominates it.  The
   output is byte-identical to the sprintf formats it replaces. *)
let set_digits buf pos v k =
  let v = ref v in
  for i = k - 1 downto 0 do
    Bytes.unsafe_set buf (pos + i) (Char.unsafe_chr (48 + (!v mod 10)));
    v := !v / 10
  done

(* "%s%02d_%04d" *)
let name_of rng prefix =
  let a = Mrdb_util.Rng.int rng n_name_pool in
  let b = Mrdb_util.Rng.int rng 10000 in
  let lp = String.length prefix in
  let buf = Bytes.create (lp + 7) in
  Bytes.blit_string prefix 0 buf 0 lp;
  set_digits buf lp a 2;
  Bytes.unsafe_set buf (lp + 2) '_';
  set_digits buf (lp + 3) b 4;
  Bytes.unsafe_to_string buf

(* small code pools, precomputed ("C%02d", "R%02d", "TA%02d", ...) *)
let code_pool prefix n =
  Array.init n (fun i -> Printf.sprintf "%s%02d" prefix i)

let country_pool = code_pool "C" n_countries
let region_pool = code_pool "R" 50
let order_type_pool = code_pool "TA" n_order_types
let material_type_pool = code_pool "MT" n_material_types
let mk_pool = code_pool "MK" 50

let pick rng pool = pool.(Mrdb_util.Rng.int rng (Array.length pool))
let country rng = pick rng country_pool

(* "+%09d" *)
let phone rng =
  let v = Mrdb_util.Rng.int rng 1000000000 in
  let buf = Bytes.create 10 in
  Bytes.unsafe_set buf 0 '+';
  set_digits buf 1 v 9;
  Bytes.unsafe_to_string buf

let sizes scale =
  let s n = max 16 (int_of_float (float_of_int n *. scale)) in
  ( s 40_000 (* ADRC *),
    s 10_000 (* KNA1 *),
    s 40_000 (* VBAK *),
    s 120_000 (* VBAP *),
    s 120_000 (* VBEP *),
    s 10_000 (* MARA *) )

let build ?hier ?(scale = 1.0) () =
  let cat = Storage.Catalog.create ?hier () in
  let n_adrc, n_kna1, n_vbak, n_vbap, n_vbep, n_mara = sizes scale in
  let add schema = Storage.Catalog.add cat schema (Layout.row schema) in
  let adrc = add adrc_schema in
  let kna1 = add kna1_schema in
  let vbak = add vbak_schema in
  let vbap = add vbap_schema in
  let vbep = add vbep_schema in
  let mara = add mara_schema in
  let rng = Mrdb_util.Rng.create 0x5A9_5D in
  Storage.Relation.load adrc ~n:n_adrc (fun ~row ->
      [|
        V.VInt row;
        V.VStr (name_of rng "co");
        V.VStr (name_of rng "name");
        V.VStr (name_of rng "name");
        V.VInt (Mrdb_util.Rng.int rng n_kna1);
        V.VStr (name_of rng "city");
        V.VStr (name_of rng "st");
        V.VInt (Mrdb_util.Rng.int rng 100000);
        V.VStr (country rng);
        V.VStr (pick rng region_pool);
      |]);
  Storage.Relation.load kna1 ~n:n_kna1 (fun ~row ->
      [|
        V.VInt row;
        V.VStr (country rng);
        V.VStr (name_of rng "cust");
        V.VStr (name_of rng "city");
        V.VInt (Mrdb_util.Rng.int rng 100000);
        V.VStr (name_of rng "st");
        V.VStr (phone rng);
        V.VInt (Mrdb_util.Rng.int rng n_adrc);
      |]);
  Storage.Relation.load vbak ~n:n_vbak (fun ~row ->
      [|
        V.VInt row;
        V.VDate (Mrdb_util.Rng.int rng date_span);
        V.VStr (pick rng order_type_pool);
        V.VInt (Mrdb_util.Rng.int_in rng 10 100000);
        V.VInt (Mrdb_util.Rng.int rng 10);
        V.VInt (Mrdb_util.Rng.int rng 4);
        V.VInt (Mrdb_util.Rng.int rng n_kna1);
        V.VStr "EUR";
      |]);
  Storage.Relation.load vbap ~n:n_vbap (fun ~row ->
      [|
        V.VInt (row / 3) (* ~3 items per document *);
        V.VInt (row mod 3 * 10);
        V.VInt (Mrdb_util.Rng.int rng n_mara);
        V.VStr (name_of rng "item");
        V.VInt (Mrdb_util.Rng.int_in rng 1 50000);
        V.VInt (Mrdb_util.Rng.int_in rng 1 100);
        V.VInt (Mrdb_util.Rng.int rng 20);
      |]);
  Storage.Relation.load vbep ~n:n_vbep (fun ~row ->
      [|
        V.VInt (row / 3);
        V.VInt (row mod 3 * 10);
        V.VInt 1;
        V.VDate (Mrdb_util.Rng.int rng date_span);
        V.VInt (Mrdb_util.Rng.int_in rng 1 100);
        V.VInt (Mrdb_util.Rng.int_in rng 1 100);
      |]);
  Storage.Relation.load mara ~n:n_mara (fun ~row ->
      [|
        V.VInt row;
        V.VStr (pick rng material_type_pool);
        V.VStr (pick rng mk_pool);
        V.VStr "ST";
        V.VInt (Mrdb_util.Rng.int_in rng 1 1000);
        V.VInt (Mrdb_util.Rng.int_in rng 1 1000);
      |]);
  (* ---------------------------------------------------------------- *)
  (* Queries                                                           *)
  (* ---------------------------------------------------------------- *)
  let fn_kna1 = float_of_int n_kna1 in
  let fn_vbak = float_of_int n_vbak in
  let fn_mara = float_of_int n_mara in
  (* per-predicate selectivity knowledge for the planner and cost model *)
  let estimate (e : Expr.t) =
    match e with
    | Expr.Like _ -> Some (1.0 /. float_of_int n_name_pool)
    | Expr.Cmp (Expr.Eq, Expr.Col _, _) | Expr.Cmp (Expr.Eq, _, Expr.Col _) ->
        None (* resolved per query below *)
    | _ -> None
  in
  let mk ?(freq = 1.0) ?(modifies = false) ?eq_sel ?n_groups name description
      sql params =
    let logical = Relalg.Sql.parse cat sql in
    let estimate e =
      match estimate e with
      | Some s -> Some s
      | None -> (
          match e with
          | Expr.Cmp (Expr.Eq, _, _) -> eq_sel
          | Expr.And es ->
              (* product of conjunct estimates where known *)
              let sels =
                List.map
                  (fun c ->
                    match estimate c with
                    | Some s -> s
                    | None -> (
                        match c with
                        | Expr.Cmp (Expr.Eq, _, _) ->
                            Option.value eq_sel ~default:0.01
                        | _ -> Expr.default_selectivity c))
                  es
              in
              Some (List.fold_left ( *. ) 1.0 sels)
          | _ -> None)
    in
    {
      Workload.name;
      description;
      freq;
      sql;
      make_plan =
        (fun ~use_indexes ->
          Relalg.Planner.plan ~estimate ?n_groups ~use_indexes cat logical);
      params;
      modifies;
    }
  in
  let queries =
    [
      mk "Q1" "address search by name patterns"
        (* the paper describes NAME2 as "only accessed if NAME1 does not
           match": a short-circuited disjunction *)
        "select ADDRNUMBER, NAME_CO, NAME1, NAME2, KUNNR from ADRC where \
         NAME1 like $1 or NAME2 like $2"
        [| V.VStr "name12%"; V.VStr "name34%" |];
      mk "Q2" "customers of a country" ~eq_sel:(1.0 /. float_of_int n_countries)
        "select KUNNR, NAME1, ORT01 from KNA1 where LAND1 = $1"
        [| V.VStr "C07" |];
      mk "Q3" "address of a customer" ~eq_sel:(1.0 /. fn_kna1)
        "select * from ADRC where KUNNR = $1"
        [| V.VInt 4211 |];
      mk "Q4" "orders of a customer" ~eq_sel:(1.0 /. fn_kna1)
        "select VBELN, ERDAT, NETWR from VBAK where KUNNR = $1"
        [| V.VInt 4211 |];
      mk "Q5" "sales of a material" ~eq_sel:(1.0 /. fn_mara)
        "select sum(NETWR) total, count(*) cnt from VBAP where MATNR = $1"
        [| V.VInt 77 |];
      mk "Q6" "order item entry" ~modifies:true
        "insert into VBAP values ($1, $2, $3, $4, $5, $6, $7)"
        [|
          V.VInt (n_vbap / 3);
          V.VInt 10;
          V.VInt 77;
          V.VStr "item_new";
          V.VInt 999;
          V.VInt 5;
          V.VInt 3;
        |];
      mk "Q7" "order header by key" ~eq_sel:(1.0 /. fn_vbak)
        "select * from VBAK where VBELN = $1"
        [| V.VInt 1234 |];
      mk "Q8" "order items by document" ~eq_sel:(3.0 /. float_of_int n_vbap)
        "select * from VBAP where VBELN = $1"
        [| V.VInt 1234 |];
      mk "Q9" "deliveries due in a date range"
        "select VBELN, POSNR, EDATU from VBEP where EDATU >= $1 and EDATU <= \
         $2 order by EDATU"
        [| V.VInt 100; V.VInt 130 |];
      mk "Q10" "top customers by order count" ~n_groups:fn_kna1
        "select KUNNR, count(*) cnt from VBAK group by KUNNR order by cnt \
         desc limit 100"
        [||];
      mk "Q11" "revenue by order type"
        ~n_groups:(float_of_int n_order_types)
        "select AUART, sum(NETWR) total from VBAK group by AUART"
        [||];
      mk "Q12" "materials by type" ~n_groups:(float_of_int n_material_types)
        "select MTART, count(*) cnt from MARA group by MTART"
        [||];
    ]
  in
  { cat; queries }

let create_indexes t =
  Storage.Catalog.create_index t.cat "VBAK" ~name:"vbak_pk" ~kind:Storage.Index.Hash
    ~attrs:[ "VBELN" ];
  Storage.Catalog.create_index t.cat "VBAP" ~name:"vbap_vbeln"
    ~kind:Storage.Index.Rbtree ~attrs:[ "VBELN" ]

let query t name =
  List.find (fun q -> String.equal q.Workload.name name) t.queries

let adrc_queries t = [ query t "Q1"; query t "Q3" ]
