module Emit = Costmodel.Emit
module Pattern = Costmodel.Pattern
module Cost_function = Costmodel.Cost_function
module Schema = Storage.Schema

type term = {
  attrs : int list;
  weight : float;
  kind : Emit.access_kind;
  touches : int;
}

type problem = {
  n_attrs : int;
  widths : int array;
  rows : int;
  terms : term array;
  params : Memsim.Params.t;
}

type stats = { nodes_visited : int; bounds_pruned : int; evaluations : int }

let problem_of_workload ?estimate ?(params = Memsim.Params.nehalem) cat table
    workload =
  let rel = Storage.Catalog.find cat table in
  let schema = Storage.Relation.schema rel in
  let n_attrs = Schema.arity schema in
  let widths =
    Array.init n_attrs (fun i -> Schema.stored_width (Schema.attr schema i))
  in
  let rows = Storage.Relation.nrows rel in
  (* identical descriptors across queries merge by summing frequencies *)
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (plan, freq) ->
      let _, descs = Emit.emit ?estimate cat plan in
      List.iter
        (fun (d : Emit.access_desc) ->
          if String.equal d.Emit.table table && d.Emit.attrs <> [] then begin
            let attrs = List.sort_uniq compare d.Emit.attrs in
            let key = (attrs, d.Emit.kind, d.Emit.touches) in
            match Hashtbl.find_opt tbl key with
            | Some w -> Hashtbl.replace tbl key (w +. freq)
            | None -> Hashtbl.add tbl key freq
          end)
        descs)
    workload;
  let terms =
    Hashtbl.fold
      (fun (attrs, kind, touches) weight acc ->
        { attrs; weight; kind; touches } :: acc)
      tbl []
    |> List.sort compare |> Array.of_list
  in
  { n_attrs; widths; rows; terms; params }

(* One fragment touch: the term's atom over a region of [rows] items of the
   fragment tuple width, using the bytes of the attributes it reads there. *)
let atom_cost problem term ~w ~u =
  if problem.rows <= 0 then 0.0
  else
    let n = problem.rows in
    let u = min u w in
    let pat =
      match term.kind with
      | Emit.Seq -> Pattern.s_trav ~u ~n ~w ()
      | Emit.Seq_cond s -> Pattern.s_trav_cr ~u ~n ~w ~s ()
      | Emit.Rand -> Pattern.rr_acc ~u ~n ~w ~r:(max 1 term.touches) ()
    in
    Cost_function.cost problem.params pat

(* memoized per (term, fragment width, used width) — the only inputs an
   atom cost depends on once the problem is fixed *)
let make_eval problem =
  let memo : (int * int * int, float) Hashtbl.t = Hashtbl.create 512 in
  fun ti ~w ~u ->
    let key = (ti, w, u) in
    match Hashtbl.find_opt memo key with
    | Some c -> c
    | None ->
        let c = atom_cost problem problem.terms.(ti) ~w ~u in
        Hashtbl.add memo key c;
        c

let normalize parts = List.sort compare (List.map (List.sort_uniq compare) parts)

(* Same iteration order everywhere (terms outer, normalized groups inner) so
   solve and brute_force sum in the same order and produce identical
   floats. *)
let objective_with eval problem parts =
  if problem.rows <= 0 || Array.length problem.terms = 0 then 0.0
  else begin
    let groups = normalize parts in
    let group_w g = List.fold_left (fun a i -> a + problem.widths.(i)) 0 g in
    let total = ref 0.0 in
    Array.iteri
      (fun ti term ->
        List.iter
          (fun g ->
            let u =
              List.fold_left
                (fun a i ->
                  if List.mem i term.attrs then a + problem.widths.(i) else a)
                0 g
            in
            if u > 0 then total := !total +. (term.weight *. eval ti ~w:(group_w g) ~u))
          groups)
      problem.terms;
    !total
  end

let objective problem parts = objective_with (make_eval problem) problem parts

(* Admissible lower bound for a partial assignment of attributes 0..k-1:
   every term pays its touched fragments at their *current* widths (atom
   costs are monotone in both region and used width, and fragments only
   grow), and a term touching nothing yet pays at least its cheapest
   isolated attribute. *)
let lower_bound problem eval min_iso ~asgn ~k ~frag_w ~u_scratch =
  let lb = ref 0.0 in
  Array.iteri
    (fun ti term ->
      let touched = ref [] in
      List.iter
        (fun a ->
          if a < k then begin
            let f = asgn.(a) in
            if u_scratch.(f) = 0 then touched := f :: !touched;
            u_scratch.(f) <- u_scratch.(f) + problem.widths.(a)
          end)
        term.attrs;
      match !touched with
      | [] -> lb := !lb +. (term.weight *. min_iso.(ti))
      | fs ->
          List.iter
            (fun f ->
              lb := !lb +. (term.weight *. eval ti ~w:frag_w.(f) ~u:u_scratch.(f));
              u_scratch.(f) <- 0)
            fs)
    problem.terms;
  !lb

let partition_of asgn n m =
  let parts = Array.make (max 1 m) [] in
  for a = n - 1 downto 0 do
    parts.(asgn.(a)) <- a :: parts.(asgn.(a))
  done;
  Array.to_list (Array.sub parts 0 m)

let solve ?(top_k = 8) ?(max_nodes = 200_000) problem =
  let n = problem.n_attrs in
  if n = 0 then
    ([ ([], 0.0) ], { nodes_visited = 0; bounds_pruned = 0; evaluations = 0 })
  else begin
    let eval = make_eval problem in
    let nodes = ref 0 and pruned = ref 0 and evals = ref 0 in
    let best : (int list list * float) list ref = ref [] in
    let full () = List.length !best >= top_k in
    let kth_bound () =
      if full () then snd (List.nth !best (top_k - 1)) else infinity
    in
    let insert p c =
      if not (List.exists (fun (p', _) -> p' = p) !best) then begin
        best := List.merge (fun (_, a) (_, b) -> compare a b) [ (p, c) ] !best;
        if List.length !best > top_k then
          best := List.filteri (fun i _ -> i < top_k) !best
      end
    in
    let evaluate parts =
      incr evals;
      objective_with eval problem parts
    in
    (* seed with the NSM / DSM extremes: early incumbents tighten pruning *)
    let row = normalize [ List.init n Fun.id ] in
    let col = normalize (List.init n (fun i -> [ i ])) in
    insert row (evaluate row);
    insert col (evaluate col);
    let min_iso =
      Array.map
        (fun t ->
          List.fold_left
            (fun acc a ->
              Float.min acc
                (atom_cost problem t ~w:problem.widths.(a) ~u:problem.widths.(a)))
            infinity t.attrs)
        problem.terms
    in
    let asgn = Array.make n 0 in
    let frag_w = Array.make n 0 in
    let u_scratch = Array.make n 0 in
    (* restricted-growth enumeration: attr k joins fragment 0..m-1 or opens
       fragment m — every set partition visited exactly once *)
    let rec go k m =
      if !nodes < max_nodes then begin
        incr nodes;
        if k = n then begin
          let parts = normalize (partition_of asgn n m) in
          insert parts (evaluate parts)
        end
        else begin
          let lb =
            lower_bound problem eval min_iso ~asgn ~k ~frag_w ~u_scratch
          in
          if full () && lb >= kth_bound () then incr pruned
          else
            for f = 0 to m do
              asgn.(k) <- f;
              frag_w.(f) <- frag_w.(f) + problem.widths.(k);
              go (k + 1) (if f = m then m + 1 else m);
              frag_w.(f) <- frag_w.(f) - problem.widths.(k)
            done
        end
      end
    in
    go 0 0;
    ( !best,
      { nodes_visited = !nodes; bounds_pruned = !pruned; evaluations = !evals }
    )
  end

let brute_force problem =
  let n = problem.n_attrs in
  if n = 0 then ([], 0.0)
  else begin
    let eval = make_eval problem in
    let best = ref ([ List.init n Fun.id ], infinity) in
    let asgn = Array.make n 0 in
    let rec go k m =
      if k = n then begin
        let parts = normalize (partition_of asgn n m) in
        let c = objective_with eval problem parts in
        if c < snd !best then best := (parts, c)
      end
      else
        for f = 0 to m do
          asgn.(k) <- f;
          go (k + 1) (if f = m then m + 1 else m)
        done
    in
    go 0 0;
    !best
  end
