(** The online layout advisor: the hybrid-store advisor loop of Rösch et
    al. on top of the exact {!Ip} solver.

    A {!Workload.t} window captures the live query mix; every
    [check_every] observations the advisor re-solves the partitioning
    problem for every touched table against the *observed* mix and
    repartitions when the projected cycles saved over [horizon] windows
    beat {!Adaptive.copy_cost} (and the relative saving clears
    [min_benefit]).  Repartitions run inside {!Storage.Catalog.in_txn}, so
    the WAL frames the layout change (crash recovery replays or drops it
    atomically) and logical row ids are preserved (MVCC snapshots built
    before the repartition stay readable). *)

type recommendation = {
  table : string;
  current_layout : Storage.Layout.t;
  proposed_layout : Storage.Layout.t;
  current_cost : float;  (** workload cost under the stored layout *)
  proposed_cost : float;  (** workload cost under the proposed layout *)
  copy_cost : float;  (** one-off reorganization cost ({!Adaptive.copy_cost}) *)
  net_saving : float;
      (** (current - proposed) × horizon − copy_cost, in model cycles *)
  profitable : bool;
      (** true when the advisor would (or did) repartition this table *)
  search : Bpi.stats;
}

type t

val create :
  ?algorithm:Optimizer.algorithm ->
  ?window:int ->
  ?check_every:int ->
  ?min_benefit:float ->
  ?horizon:float ->
  Storage.Catalog.t ->
  t
(** Defaults: [algorithm = Ip], [window = 256], [check_every = 64],
    [min_benefit = 0.05], [horizon = 10.0] — the same profitability knobs
    as {!Adaptive}. *)

val workload : t -> Workload.t
(** The advisor's observation window (e.g. to inspect {!Workload.descs}). *)

val recommend :
  ?algorithm:Optimizer.algorithm ->
  ?min_benefit:float ->
  ?horizon:float ->
  Storage.Catalog.t ->
  (Relalg.Physical.t * float) list ->
  recommendation list
(** One-shot advice for a static frequency-weighted mix (the [advise] CLI
    path): one recommendation per touched table, profitable or not.  Never
    mutates the catalog. *)

val advise : t -> recommendation list
(** {!recommend} against the currently observed window. *)

val apply : t -> recommendation list -> recommendation list
(** Repartition every profitable recommendation, each inside its own
    catalog transaction; returns the ones actually applied (layout still
    as the recommendation expected). *)

val observe : t -> Relalg.Physical.t -> recommendation list
(** Record one executed plan; every [check_every] observations run
    {!advise} and {!apply}, returning the repartitions performed (usually
    []). *)

val applied : t -> recommendation list
(** Every repartition this advisor has performed, oldest first. *)
