(** Sliding-window workload capture for the layout advisor.

    Executed plans are recorded into a bounded window (newest first); the
    advisor reads the window back as a frequency-weighted mix and as
    per-table access descriptors.  Observations also feed the
    {!Obs.Metrics} registry ([mrdb_advisor_observed_total],
    [mrdb_advisor_window_size]), so the live query mix the advisor acts on
    is visible through the same metrics stream as everything else. *)

type t

val create : ?window:int -> unit -> t
(** [window] bounds the number of retained plans (default 256). *)

val observe : t -> Relalg.Physical.t -> unit
(** Record one executed plan (newest first, oldest evicted). *)

val observed : t -> int
(** Total observations ever recorded (not bounded by the window). *)

val size : t -> int
(** Plans currently retained. *)

val clear : t -> unit

val mix : t -> (Relalg.Physical.t * float) list
(** The window collapsed to (plan, frequency) pairs — structurally
    identical plans merged by their printed form.  The shape
    {!Costmodel.Model.workload_cost} and {!Optimizer.optimize} expect. *)

val tables : Storage.Catalog.t -> t -> string list
(** Tables touched by the retained mix, sorted, deduplicated. *)

val descs :
  Storage.Catalog.t -> t -> (string * (Costmodel.Emit.access_desc * float) list) list
(** Per-table access descriptors of the retained mix, each carrying the
    frequency of the plan that emitted it — the advisor's view of "what
    does the live workload do to this table". *)
