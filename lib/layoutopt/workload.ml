module Emit = Costmodel.Emit

type t = {
  window : int;
  mutable recent : Relalg.Physical.t list; (* newest first, bounded *)
  mutable size : int;
  mutable count : int;
}

let m_observed =
  Obs.Metrics.counter "mrdb_advisor_observed_total"
    ~help:"Plans recorded into the advisor's workload window"

let m_window =
  Obs.Metrics.gauge "mrdb_advisor_window_size"
    ~help:"Plans currently retained in the advisor's workload window"

let create ?(window = 256) () = { window; recent = []; size = 0; count = 0 }

let observe t plan =
  t.count <- t.count + 1;
  t.recent <- plan :: t.recent;
  t.size <- t.size + 1;
  if t.size > t.window then begin
    t.recent <- List.filteri (fun i _ -> i < t.window) t.recent;
    t.size <- t.window
  end;
  Obs.Metrics.incr m_observed;
  Obs.Metrics.set m_window (float_of_int t.size)

let observed t = t.count
let size t = t.size

let clear t =
  t.recent <- [];
  t.size <- 0;
  Obs.Metrics.set m_window 0.0

(* structurally identical plans merge by their printed form *)
let mix t =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun plan ->
      let key = Format.asprintf "%a" Relalg.Physical.pp plan in
      match Hashtbl.find_opt tbl key with
      | Some (p, f) -> Hashtbl.replace tbl key (p, f +. 1.0)
      | None ->
          Hashtbl.add tbl key (plan, 1.0);
          order := key :: !order)
    t.recent;
  (* deterministic order: most recently observed distinct plan first *)
  List.rev_map (fun key -> Hashtbl.find tbl key) !order

let tables cat t =
  List.concat_map
    (fun (plan, _) ->
      let _, descs = Emit.emit cat plan in
      List.map (fun d -> d.Emit.table) descs)
    (mix t)
  |> List.sort_uniq compare

let descs cat t =
  let by_table = Hashtbl.create 8 in
  List.iter
    (fun (plan, freq) ->
      let _, ds = Emit.emit cat plan in
      List.iter
        (fun d ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt by_table d.Emit.table)
          in
          Hashtbl.replace by_table d.Emit.table ((d, freq) :: prev))
        ds)
    (mix t);
  Hashtbl.fold (fun table ds acc -> (table, List.rev ds) :: acc) by_table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
