module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Model = Costmodel.Model
module Pattern = Costmodel.Pattern

type event = {
  table : string;
  old_layout : Storage.Layout.t;
  new_layout : Storage.Layout.t;
  predicted_saving : float;
}

type t = {
  cat : Catalog.t;
  window : int;
  check_every : int;
  min_benefit : float;
  horizon : float;
  mutable recent : Relalg.Physical.t list; (* newest first, bounded *)
  mutable count : int;
  mutable events : event list; (* newest first *)
}

let create ?(window = 256) ?(check_every = 64) ?(min_benefit = 0.05)
    ?(horizon = 10.0) cat =
  {
    cat;
    window;
    check_every;
    min_benefit;
    horizon;
    recent = [];
    count = 0;
    events = [];
  }

let observed t = t.count

let reorganizations t = List.rev t.events

(* sequential read + sequential write of every partition; an empty table
   costs nothing to reorganize *)
let copy_cost cat table =
  let rel = Catalog.find cat table in
  let n = Relation.nrows rel in
  if n = 0 then 0.0
  else begin
    let layout = Relation.layout rel in
    let cost = ref 0.0 in
    for p = 0 to Layout.n_partitions layout - 1 do
      let w = max 1 (Relation.part_width rel p) in
      cost :=
        !cost
        +. (2.0
           *. Costmodel.Cost_function.cost Memsim.Params.nehalem
                (Pattern.s_trav ~n ~w ()))
    done;
    !cost
  end

(* collapse the observed window into (plan, frequency) pairs; identical
   plan structures are merged by their printed form *)
let workload_of t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun plan ->
      let key = Format.asprintf "%a" Relalg.Physical.pp plan in
      match Hashtbl.find_opt tbl key with
      | Some (p, f) -> Hashtbl.replace tbl key (p, f +. 1.0)
      | None -> Hashtbl.add tbl key (plan, 1.0))
    t.recent;
  Hashtbl.fold (fun _ pf acc -> pf :: acc) tbl []

(* tables touched by a physical plan *)
let rec plan_tables acc (p : Relalg.Physical.t) =
  match p with
  | Relalg.Physical.Scan { table; _ }
  | Relalg.Physical.Insert { table; _ }
  | Relalg.Physical.Update { table; _ } ->
      table :: acc
  | Relalg.Physical.Select { child; _ }
  | Relalg.Physical.Project { child; _ }
  | Relalg.Physical.Group_by { child; _ }
  | Relalg.Physical.Sort { child; _ }
  | Relalg.Physical.Limit { child; _ } ->
      plan_tables acc child
  | Relalg.Physical.Hash_join { build; probe; _ } ->
      plan_tables (plan_tables acc build) probe

let m_checks =
  Obs.Metrics.counter "mrdb_adaptive_checks_total"
    ~help:"Adaptive layout re-optimization checks"

let m_repartitions =
  Obs.Metrics.counter "mrdb_adaptive_repartitions_total"
    ~help:"Tables repartitioned by the adaptive optimizer"

let m_last_saving =
  Obs.Metrics.gauge "mrdb_adaptive_last_predicted_saving"
    ~help:"Predicted net cycle saving of the most recent repartition"

let check t =
  Obs.Metrics.incr m_checks;
  let workload = workload_of t in
  let tables =
    List.concat_map (fun (p, _) -> plan_tables [] p) workload
    |> List.sort_uniq compare
  in
  List.filter_map
    (fun table ->
      let rel = Catalog.find t.cat table in
      let old_layout = Relation.layout rel in
      let current_cost =
        Model.workload_cost ~layouts:[ (table, old_layout) ] t.cat workload
      in
      let result = Optimizer.optimize_table t.cat table workload in
      let new_layout = result.Optimizer.layout in
      if Layout.equal new_layout old_layout then None
      else begin
        let saving_per_window =
          current_cost -. result.Optimizer.estimated_cost
        in
        let net =
          (saving_per_window *. t.horizon) -. copy_cost t.cat table
        in
        if
          net > 0.0
          && saving_per_window > t.min_benefit *. Float.max 1.0 current_cost
        then begin
          (* one transaction per repartition, so the WAL frames the layout
             change and the index rebuilds it implies *)
          Catalog.in_txn t.cat (fun () ->
              Catalog.set_layout t.cat table new_layout);
          let ev =
            { table; old_layout; new_layout; predicted_saving = net }
          in
          Obs.Metrics.incr m_repartitions;
          Obs.Metrics.set m_last_saving net;
          t.events <- ev :: t.events;
          Some ev
        end
        else None
      end)
    tables

let record t plan =
  t.count <- t.count + 1;
  t.recent <- plan :: t.recent;
  if List.length t.recent > t.window then
    t.recent <- List.filteri (fun i _ -> i < t.window) t.recent;
  if t.count mod t.check_every = 0 then check t else []
