module Emit = Costmodel.Emit
module Model = Costmodel.Model
module Layout = Storage.Layout
module Schema = Storage.Schema
module Compress = Storage.Compress
module Encoding = Storage.Encoding

type algorithm = Bpi of float | Obp | Ip

type table_result = {
  table : string;
  layout : Storage.Layout.t;
  encodings : (int * Encoding.t) list;
  cuts : Cut.t list;
  estimated_cost : float;
  row_cost : float;
  column_cost : float;
  search : Bpi.stats;
}

(* The statistics the compressed-traversal atoms need, taken from the same
   advisor pass that proposes the scheme. *)
let hint_of_stat (st : Compress.stat) (enc : Encoding.t) : Emit.enc_hint =
  let exceptions =
    match enc with
    | Encoding.For_bp w ->
        let i = match w with 1 -> 0 | 2 -> 1 | _ -> 2 in
        st.Compress.for_exceptions.(i)
    | _ -> 0
  in
  {
    Emit.enc;
    distinct = st.Compress.distinct;
    runs = st.Compress.runs;
    filled = st.Compress.non_null;
    exceptions;
  }

let descs_for_table ?estimate cat table workload =
  List.concat_map
    (fun (plan, _freq) ->
      let _, descs = Emit.emit ?estimate cat plan in
      List.filter (fun d -> String.equal d.Emit.table table) descs)
    workload

let cuts_for_table ?(extended = true) ?estimate cat table workload =
  (* cuts are per query: each query's descriptors yield its own cut set *)
  let per_query =
    List.concat_map
      (fun (plan, _freq) ->
        let _, descs = Emit.emit ?estimate cat plan in
        let mine = List.filter (fun d -> String.equal d.Emit.table table) descs in
        if mine = [] then []
        else if extended then Cut.extended_of_descs mine
        else Cut.classic_of_descs mine)
      workload
  in
  List.sort_uniq compare per_query

let layout_of_partitioning schema partitioning =
  Layout.of_indices schema partitioning

let workload_cost_with ?estimate ?params ?additive ?(encodings = []) cat
    table layout workload =
  let encodings =
    if encodings = [] then [] else [ (table, encodings) ]
  in
  Model.workload_cost ?estimate ?params ?additive ~encodings
    ~layouts:[ (table, layout) ]
    cat workload

let optimize_table ?(algorithm = Bpi 0.005) ?(extended = true)
    ?(compress = false) ?estimate ?params ?additive cat table workload =
  let rel = Storage.Catalog.find cat table in
  let schema = Storage.Relation.schema rel in
  let n_attrs = Schema.arity schema in
  let cuts = cuts_for_table ~extended ?estimate cat table workload in
  let search_with encodings =
    let cost partitioning =
      workload_cost_with ?estimate ?params ?additive ~encodings cat table
        (layout_of_partitioning schema partitioning)
        workload
    in
    match algorithm with
    | Bpi threshold -> Bpi.optimize ~cost ~n_attrs ~cuts ~threshold
    | Obp -> Bpi.optimize_exhaustive ~cost ~n_attrs ~cuts
    | Ip ->
        (* exact IP frontier re-costed under the full (prefetch-aware,
           concurrently-composed) model, with a BPi run as the floor: the
           IP objective is separable per fragment, so the frontier is where
           the two models can disagree — taking the min keeps Ip never
           worse than Bpi on the model's own estimate *)
        let problem = Ip.problem_of_workload ?estimate ?params cat table workload in
        let frontier, ip_stats = Ip.solve ~top_k:8 problem in
        let bpi_p, bpi_c, bpi_stats =
          Bpi.optimize ~cost ~n_attrs ~cuts ~threshold:0.005
        in
        let best_p, best_c =
          List.fold_left
            (fun (bp, bc) (p, _ip_cost) ->
              let c = cost p in
              if c < bc then (p, c) else (bp, bc))
            (bpi_p, bpi_c) frontier
        in
        ( best_p,
          best_c,
          {
            Bpi.cost_evaluations =
              bpi_stats.Bpi.cost_evaluations + ip_stats.Ip.evaluations
              + List.length frontier;
            nodes_visited =
              bpi_stats.Bpi.nodes_visited + ip_stats.Ip.nodes_visited;
          } )
  in
  let plain_search = search_with [] in
  let partitioning, estimated_cost, search, encodings =
    if not compress then
      let p, c, s = plain_search in
      (p, c, s, [])
    else
      (* joint search: the advisor proposes per-column schemes, the same
         cut-constrained decomposition search runs under their predicted
         cost atoms, and the cheaper of the two physical designs wins *)
      let stats = Compress.analyze rel in
      let plan =
        List.filter_map
          (fun st ->
            match Compress.choose schema st with
            | Encoding.Plain -> None
            | enc -> Some (st.Compress.attr, hint_of_stat st enc))
          (Array.to_list stats)
      in
      let p0, c0, s0 = plain_search in
      if plan = [] then (p0, c0, s0, [])
      else
        let p1, c1, s1 = search_with plan in
        if c1 < c0 then
          (p1, c1, s1, List.map (fun (a, h) -> (a, h.Emit.enc)) plan)
        else (p0, c0, s0, [])
  in
  let layout = layout_of_partitioning schema partitioning in
  let row_cost =
    workload_cost_with ?estimate ?params ?additive cat table
      (Layout.row schema) workload
  in
  let column_cost =
    workload_cost_with ?estimate ?params ?additive cat table
      (Layout.column schema) workload
  in
  {
    table;
    layout;
    encodings;
    cuts;
    estimated_cost;
    row_cost;
    column_cost;
    search;
  }

let optimize ?algorithm ?extended ?compress ?estimate ?params cat workload =
  let tables =
    List.concat_map
      (fun (plan, _) -> List.map (fun d -> d.Emit.table) (snd (Emit.emit cat plan)))
      workload
    |> List.sort_uniq compare
  in
  List.map
    (fun table ->
      optimize_table ?algorithm ?extended ?compress ?estimate ?params cat
        table workload)
    tables

let apply cat results =
  List.iter
    (fun r ->
      if r.encodings = [] then
        Storage.Catalog.set_layout cat r.table r.layout
      else Compress.apply cat r.table ~layout:r.layout r.encodings)
    results

(* silence unused-warning for descs_for_table, which is part of the
   documented API surface used by tests *)
let _ = descs_for_table
