(** Amossen-style exact vertical partitioning: the attribute×fragment
    integer program ("Vertical partitioning of relational OLTP databases
    using integer programming") solved by branch and bound over set
    partitions.

    The objective is separable per fragment: each query term (an access
    descriptor weighted by query frequency) pays one access-pattern atom
    per fragment it touches, with the fragment tuple width as the region
    width and the width of the attributes it actually reads as the used
    width.  Because every atom cost is monotone in the fragment width,
    the cost of a partial assignment — evaluated at the current fragment
    widths, plus the isolated-attribute minimum for terms not yet touching
    any fragment — is an admissible lower bound, which is what lets the
    search prune without losing exactness.

    Unlike {!Bpi}, the search is not restricted to reasonable cuts: it
    ranges over the full set-partition lattice (restricted-growth-string
    enumeration), so on small tables it is exactly optimal for the stated
    objective.  [max_nodes] caps the search on wide tables, degrading to an
    anytime solver that still returns the best partitions found. *)

type term = {
  attrs : int list;  (** attribute indices the descriptor touches *)
  weight : float;  (** query frequency *)
  kind : Costmodel.Emit.access_kind;
  touches : int;  (** item accesses behind the descriptor *)
}

type problem = {
  n_attrs : int;
  widths : int array;  (** stored width of each attribute, bytes *)
  rows : int;
  terms : term array;
  params : Memsim.Params.t;
}

type stats = {
  nodes_visited : int;
  bounds_pruned : int;
  evaluations : int;  (** full objective evaluations (leaves reached) *)
}

val problem_of_workload :
  ?estimate:(Relalg.Expr.t -> float option) ->
  ?params:Memsim.Params.t ->
  Storage.Catalog.t ->
  string ->
  (Relalg.Physical.t * float) list ->
  problem
(** Build the integer program for one table from a frequency-weighted
    workload: plans are emitted once and their access descriptors become
    the cost terms. *)

val objective : problem -> int list list -> float
(** Cost of a complete partitioning under the IP objective.  Groups may be
    given in any order; the same summation order is used internally by
    {!solve} and {!brute_force}, so their costs are directly comparable. *)

val solve :
  ?top_k:int -> ?max_nodes:int -> problem -> (int list list * float) list * stats
(** Branch and bound.  Returns up to [top_k] partitionings in ascending
    cost order (normalized: groups sorted, attrs ascending).  The head of
    the list is exactly optimal for {!objective} when the node budget is
    not exhausted (anytime otherwise); the tail is a candidate frontier —
    good layouts worth re-costing under the full model, not a certified
    top-k. *)

val brute_force : problem -> int list list * float
(** Enumerate every partition of the attribute set and return the cheapest
    — the test oracle for {!solve}.  Exponential (Bell numbers): only for
    small [n_attrs]. *)
