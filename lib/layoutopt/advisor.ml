module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Model = Costmodel.Model

type recommendation = {
  table : string;
  current_layout : Storage.Layout.t;
  proposed_layout : Storage.Layout.t;
  current_cost : float;
  proposed_cost : float;
  copy_cost : float;
  net_saving : float;
  profitable : bool;
  search : Bpi.stats;
}

type t = {
  cat : Catalog.t;
  algorithm : Optimizer.algorithm;
  check_every : int;
  min_benefit : float;
  horizon : float;
  window : Workload.t;
  mutable applied : recommendation list; (* newest first *)
}

let m_checks =
  Obs.Metrics.counter "mrdb_advisor_checks_total"
    ~help:"Advisor re-optimization passes over the observed window"

let m_repartitions =
  Obs.Metrics.counter "mrdb_advisor_repartitions_total"
    ~help:"Tables repartitioned by the layout advisor"

let m_last_saving =
  Obs.Metrics.gauge "mrdb_advisor_last_net_saving"
    ~help:"Projected net cycle saving of the most recent advisor repartition"

let create ?(algorithm = Optimizer.Ip) ?(window = 256) ?(check_every = 64)
    ?(min_benefit = 0.05) ?(horizon = 10.0) cat =
  {
    cat;
    algorithm;
    check_every;
    min_benefit;
    horizon;
    window = Workload.create ~window ();
    applied = [];
  }

let workload t = t.window

let recommend_table ~algorithm ~min_benefit ~horizon cat mix table =
  let rel = Catalog.find cat table in
  let current_layout = Relation.layout rel in
  let current_cost =
    Model.workload_cost ~layouts:[ (table, current_layout) ] cat mix
  in
  let result = Optimizer.optimize_table ~algorithm cat table mix in
  let proposed_layout = result.Optimizer.layout in
  let proposed_cost = result.Optimizer.estimated_cost in
  let copy_cost = Adaptive.copy_cost cat table in
  let saving = current_cost -. proposed_cost in
  let net_saving = (saving *. horizon) -. copy_cost in
  let profitable =
    (not (Layout.equal proposed_layout current_layout))
    && net_saving > 0.0
    && saving > min_benefit *. Float.max 1.0 current_cost
  in
  {
    table;
    current_layout;
    proposed_layout;
    current_cost;
    proposed_cost;
    copy_cost;
    net_saving;
    profitable;
    search = result.Optimizer.search;
  }

let recommend ?(algorithm = Optimizer.Ip) ?(min_benefit = 0.05)
    ?(horizon = 10.0) cat mix =
  let tables =
    List.concat_map
      (fun (plan, _) ->
        List.map
          (fun d -> d.Costmodel.Emit.table)
          (snd (Costmodel.Emit.emit cat plan)))
      mix
    |> List.sort_uniq compare
  in
  List.map (recommend_table ~algorithm ~min_benefit ~horizon cat mix) tables

let advise t =
  Obs.Metrics.incr m_checks;
  recommend ~algorithm:t.algorithm ~min_benefit:t.min_benefit
    ~horizon:t.horizon t.cat (Workload.mix t.window)

let apply t recs =
  List.filter
    (fun r ->
      if not r.profitable then false
      else begin
        let rel = Catalog.find t.cat r.table in
        (* the catalog may have moved since the recommendation was computed
           (another advisor pass, an explicit optimize): only apply advice
           that still describes reality *)
        if not (Layout.equal (Relation.layout rel) r.current_layout) then
          false
        else begin
          (* one transaction per repartition: the WAL frames the layout
             change and the index rebuilds it implies, so a crash either
             keeps the old layout or recovers the new one — never a
             half-copied hybrid *)
          Catalog.in_txn t.cat (fun () ->
              Catalog.set_layout t.cat r.table r.proposed_layout);
          Obs.Metrics.incr m_repartitions;
          Obs.Metrics.set m_last_saving r.net_saving;
          t.applied <- r :: t.applied;
          true
        end
      end)
    recs

let observe t plan =
  Workload.observe t.window plan;
  if Workload.observed t.window mod t.check_every = 0 then
    apply t (advise t)
  else []

let applied t = List.rev t.applied
