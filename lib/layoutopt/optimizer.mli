(** Workload-driven schema decomposition: ties together pattern emission,
    extended reasonable cuts, the cost model and BPi. *)

type algorithm =
  | Bpi of float  (** branch and bound with the given relative threshold *)
  | Obp  (** exhaustive (exponential in the number of cuts) *)
  | Ip
      (** Amossen's integer program ({!Ip}): exact branch and bound over the
          full set-partition lattice, its candidate frontier re-costed under
          the full model and guarded by a BPi run — never worse than
          [Bpi 0.005] on the model's own estimate *)

type table_result = {
  table : string;
  layout : Storage.Layout.t;
  encodings : (int * Storage.Encoding.t) list;
      (** chosen per-attribute compression (empty = plain storage) *)
  cuts : Cut.t list;  (** the extended reasonable cuts considered *)
  estimated_cost : float;  (** workload cost under the chosen layout *)
  row_cost : float;  (** workload cost under NSM, for reference *)
  column_cost : float;  (** workload cost under DSM, for reference *)
  search : Bpi.stats;
}

val cuts_for_table :
  ?extended:bool ->
  ?estimate:(Relalg.Expr.t -> float option) ->
  Storage.Catalog.t ->
  string ->
  (Relalg.Physical.t * float) list ->
  Cut.t list
(** The (extended, by default) reasonable cuts the workload induces on one
    table. *)

val optimize_table :
  ?algorithm:algorithm ->
  ?extended:bool ->
  ?compress:bool ->
  ?estimate:(Relalg.Expr.t -> float option) ->
  ?params:Memsim.Params.t ->
  ?additive:bool ->
  Storage.Catalog.t ->
  string ->
  (Relalg.Physical.t * float) list ->
  table_result
(** Optimize the layout of one table for a frequency-weighted workload.
    [extended = false] falls back to classic reasonable cuts (for the
    ablation experiment); [additive = true] uses the non-prefetch-aware cost
    function.  [compress = true] searches jointly over decomposition and
    per-column compression: the advisor's candidate schemes are costed with
    the compressed-traversal atoms and kept only when they beat the plain
    design. *)

val optimize :
  ?algorithm:algorithm ->
  ?extended:bool ->
  ?compress:bool ->
  ?estimate:(Relalg.Expr.t -> float option) ->
  ?params:Memsim.Params.t ->
  Storage.Catalog.t ->
  (Relalg.Physical.t * float) list ->
  table_result list
(** Optimize every table the workload touches. *)

val apply : Storage.Catalog.t -> table_result list -> unit
(** Repartition the stored relations to the chosen layouts, applying any
    chosen compression plan through {!Storage.Compress.apply}. *)
