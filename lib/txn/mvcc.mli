(** Snapshot-isolation MVCC over {!Storage.Catalog}.

    In-place base relations plus undo chains: the stored state is the
    latest committed one; a transaction reads at its begin timestamp by
    resolving undo versions newer than its snapshot.  Writes buffer in the
    transaction and apply at commit under first-committer-wins — a commit
    whose write set overlaps a commit after its begin raises
    {!Mrdb_util.Errors.Txn_conflict} and applies nothing.  Reads are never
    validated: write skew is permitted (the SI anomaly boundary, see
    DESIGN.md §5h).

    Commit applies run inside [Catalog.in_txn], so with a durability
    manager attached each commit is one transaction-framed, flushed WAL
    unit — the WAL and MVCC commit points coincide.

    All operations are thread-safe: one manager mutex guards each
    operation's critical section (logical MVCC over coarse physical
    latching — readers never block for a whole writer transaction, only
    for single ops). *)

type t
(** The manager: version store, commit clock, active-snapshot registry. *)

type txn

type status = Active | Committed of int | Aborted of string

val create : Storage.Catalog.t -> t
(** Manage transactions over [cat].  Once attached, all mutations of the
    catalog's relations must go through transactions of this manager
    (host-side loads or repartitions would bypass versioning). *)

val catalog : t -> Storage.Catalog.t

val clock : t -> int
(** Last assigned commit timestamp. *)

val begin_ : ?timeout:float -> t -> txn
(** Open a transaction reading at the current commit timestamp.  With
    [timeout] (seconds), any operation past the deadline aborts the
    transaction and raises {!Mrdb_util.Errors.Txn_timeout}. *)

val begin_ts : txn -> int
val status : txn -> status

val read : txn -> string -> int -> int -> Storage.Value.t
(** [read txn table tid attr] at the transaction's snapshot, serving the
    transaction's own buffered writes first.
    @raise Invalid_argument if the row is not visible at the snapshot. *)

val read_row : txn -> string -> int -> Storage.Value.t array

val visible_rows : txn -> string -> int
(** Rows visible at the snapshot (inserts are append-only, so a snapshot
    sees a prefix).  The transaction's own uncommitted inserts are not
    addressable until commit. *)

val scan : txn -> string -> Storage.Value.t array array
(** Snapshot-consistent materialization of the visible rows — the
    analytics read path (one critical section per scan, not per row). *)

val update : txn -> string -> int -> int -> Storage.Value.t -> unit
(** Buffer an overwrite of [table[tid].attr]; applied at commit. *)

val insert : txn -> string -> Storage.Value.t array -> unit
(** Buffer an append (full tuple, schema order); tuple ids are assigned at
    commit in write order. *)

val commit : txn -> int
(** Validate (first-committer-wins), apply, and return the commit
    timestamp.
    @raise Mrdb_util.Errors.Txn_conflict on write-write conflict (nothing
    applied, transaction aborted). *)

val abort : txn -> unit
(** Discard buffered writes.  Idempotent on aborted transactions. *)

val run :
  ?retries:int ->
  ?timeout:float ->
  ?backoff:Backoff.t ->
  t ->
  (txn -> 'a) ->
  'a
(** Run [f] in a transaction and commit it, retrying conflicts up to
    [retries] times (default 8) with seeded exponential backoff (default
    seed 1; pass your own {!Backoff.t} for a per-client schedule).
    Timeouts are never retried.  If [f] aborts its transaction, the result
    is returned without committing. *)

val snapshot : t -> (txn -> 'a) -> 'a
(** Read-only snapshot: begin, run [f], abort — never conflicts, writes
    nothing to the WAL. *)

val retained_versions : t -> int
(** Undo versions currently held (post-GC) — observability for tests. *)
