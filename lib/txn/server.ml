(* The multi-client server core: session handling, the request executor,
   and the domain-per-client accept loop.  bin/mrdb_server wraps this in a
   CLI; the test suite drives it directly over real sockets.

   Graceful degradation lives here:
     - admission gate: connections past [max_clients] are shed with a clean
       `ERR BUSY` reply and closed — never queued;
     - per-transaction timeouts are handed to the MVCC manager, which
       aborts an expired transaction at its next operation (`ERR TIMEOUT`);
     - idempotent commit: each client's last committed token is cached, so
       a client that lost the commit reply re-sends the same token after
       reconnecting and gets the original timestamp instead of a
       double-apply. *)

module Value = Storage.Value
module Errors = Mrdb_util.Errors

type t = {
  mgr : Mvcc.t;
  max_clients : int;
  txn_timeout : float option;
  active : int Atomic.t;
  commit_cache : (string, string * int) Hashtbl.t;
      (* client id -> (last commit token, its commit ts) *)
  cache_m : Mutex.t;
  stop : bool Atomic.t;
}

let create ?(max_clients = 8) ?txn_timeout mgr =
  {
    mgr;
    max_clients;
    txn_timeout;
    active = Atomic.make 0;
    commit_cache = Hashtbl.create 16;
    cache_m = Mutex.create ();
    stop = Atomic.make false;
  }

let mgr t = t.mgr

let stop t = Atomic.set t.stop true

let stopped t = Atomic.get t.stop

let m_connections =
  Obs.Metrics.counter "mrdb_server_connections_total"
    ~help:"Connections accepted (including shed ones)"

let m_shed =
  Obs.Metrics.counter "mrdb_server_shed_total"
    ~help:"Connections shed by the admission gate with ERR BUSY"

let m_requests =
  Obs.Metrics.counter "mrdb_server_requests_total" ~help:"Requests served"

let m_active_clients =
  Obs.Metrics.gauge "mrdb_server_active_clients" ~help:"Connected clients"

(* Per-client commit-latency histogram, registered on first use.  Client
   ids are free-form; anything non-alphanumeric is mangled to keep the
   metric name well-formed. *)
let client_histogram id =
  let mangled =
    String.map
      (fun c ->
        let c = Char.lowercase_ascii c in
        if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '_')
      id
  in
  Obs.Metrics.histogram
    (Printf.sprintf "mrdb_client_%s_txn_seconds" mangled)
    ~help:"Begin-to-commit wall latency of this client's committed transactions"

(* ------------------------------------------------------------------ *)
(* One client session                                                 *)
(* ------------------------------------------------------------------ *)

type session = {
  mutable client_id : string;
  mutable txn : Mvcc.txn option;
  mutable txn_started : float;
}

let value_sum vs =
  (* SUM over a column: ints (and dates) sum to VInt, any float makes it
     VFloat, NULLs are skipped — matching the engines' SUM aggregate. *)
  let acc_i = ref 0 and acc_f = ref 0.0 and is_float = ref false in
  let seen = ref false in
  Array.iter
    (fun v ->
      match (v : Value.t) with
      | Value.VInt i | Value.VDate i ->
          seen := true;
          acc_i := !acc_i + i
      | Value.VFloat f ->
          seen := true;
          is_float := true;
          acc_f := !acc_f +. f
      | Value.Null -> ()
      | Value.VBool _ | Value.VStr _ ->
          invalid_arg "SUM over a non-numeric column")
    vs;
  if not !seen then Value.Null
  else if !is_float then Value.VFloat (!acc_f +. float_of_int !acc_i)
  else Value.VInt !acc_i

let require_txn session what =
  match session.txn with
  | Some txn -> txn
  | None -> invalid_arg (Printf.sprintf "%s outside a transaction" what)

let cached_commit srv session token =
  Mutex.lock srv.cache_m;
  let hit =
    match Hashtbl.find_opt srv.commit_cache session.client_id with
    | Some (t, ts) when Some t = token -> Some ts
    | _ -> None
  in
  Mutex.unlock srv.cache_m;
  hit

let remember_commit srv session token ts =
  match token with
  | None -> ()
  | Some t ->
      Mutex.lock srv.cache_m;
      Hashtbl.replace srv.commit_cache session.client_id (t, ts);
      Mutex.unlock srv.cache_m

let execute srv session (req : Wire.request) : Wire.reply option =
  match req with
  | Wire.Hello id ->
      session.client_id <- id;
      Some (Wire.Ok_ "mrdb")
  | Wire.Ping -> Some (Wire.Ok_ "")
  | Wire.Quit -> None
  | Wire.Begin ->
      (match session.txn with
      | Some txn -> (
          (* a client restarting mid-transaction: drop the stale one *)
          match Mvcc.status txn with
          | Mvcc.Active -> Mvcc.abort txn
          | _ -> ())
      | None -> ());
      session.txn <- Some (Mvcc.begin_ ?timeout:srv.txn_timeout srv.mgr);
      session.txn_started <- Unix.gettimeofday ();
      Some (Wire.Ok_ (string_of_int (Mvcc.begin_ts (Option.get session.txn))))
  | Wire.Get { table; tid; attr } ->
      Some (Wire.Val (Mvcc.read (require_txn session "GET") table tid attr))
  | Wire.Set { table; tid; attr; value } ->
      Mvcc.update (require_txn session "SET") table tid attr value;
      Some (Wire.Ok_ "")
  | Wire.Insert { table; values } ->
      Mvcc.insert (require_txn session "INSERT") table values;
      Some (Wire.Ok_ "")
  | Wire.Rows table ->
      Some
        (Wire.Val
           (Value.VInt (Mvcc.visible_rows (require_txn session "ROWS") table)))
  | Wire.Sum { table; attr } ->
      let txn = require_txn session "SUM" in
      let rows = Mvcc.scan txn table in
      Some (Wire.Val (value_sum (Array.map (fun row -> row.(attr)) rows)))
  | Wire.Abort ->
      (match session.txn with Some txn -> Mvcc.abort txn | None -> ());
      session.txn <- None;
      Some (Wire.Ok_ "")
  | Wire.Commit token -> (
      match cached_commit srv session token with
      | Some ts ->
          (* duplicate of an applied commit (reconnect after a lost
             reply): answer from the cache, apply nothing *)
          session.txn <- None;
          Some (Wire.Ok_ (string_of_int ts))
      | None ->
          let txn = require_txn session "COMMIT" in
          let ts = Mvcc.commit txn in
          session.txn <- None;
          remember_commit srv session token ts;
          Obs.Metrics.observe
            (client_histogram session.client_id)
            (Unix.gettimeofday () -. session.txn_started);
          Some (Wire.Ok_ (string_of_int ts)))

let handle_client srv fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let session = { client_id = "anon"; txn = None; txn_started = 0.0 } in
  let send reply =
    output_string oc (Wire.encode_reply reply);
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
        Obs.Metrics.incr m_requests;
        let continue =
          match Wire.parse_request line with
          | exception Failure msg ->
              send (Wire.Err { tag = "BAD_REQUEST"; msg });
              true
          | req -> (
              match execute srv session req with
              | Some reply ->
                  send reply;
                  true
              | None -> false
              | exception e -> (
                  (* a failed COMMIT (conflict/timeout) leaves no open txn *)
                  (match (e, session.txn) with
                  | (Errors.Txn_conflict _ | Errors.Txn_timeout _), Some _ ->
                      session.txn <- None
                  | _ -> ());
                  match Errors.wire_tag_of e with
                  | Some tag ->
                      send
                        (Wire.Err
                           {
                             tag;
                             msg =
                               (match Errors.to_diagnostic e with
                               | Some m -> m
                               | None -> Printexc.to_string e);
                           });
                      true
                  | None -> (
                      match Errors.to_diagnostic e with
                      | Some msg ->
                          send (Wire.Err { tag = "ERROR"; msg });
                          true
                      | None ->
                          send
                            (Wire.Err
                               { tag = "ERROR"; msg = Printexc.to_string e });
                          true)))
        in
        if continue && not (Atomic.get srv.stop) then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* a vanished client must not pin its snapshot (and with it the undo
         history the GC would otherwise prune): abort anything open *)
      (match session.txn with
      | Some txn -> (
          match Mvcc.status txn with
          | Mvcc.Active -> Mvcc.abort txn
          | _ -> ())
      | None -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr srv.active;
      Obs.Metrics.set m_active_clients (float_of_int (Atomic.get srv.active)))
    loop

let shed fd max_clients =
  Obs.Metrics.incr m_shed;
  let oc = Unix.out_channel_of_descr fd in
  output_string oc
    (Wire.encode_reply
       (Wire.Err
          {
            tag = "BUSY";
            msg = Printf.sprintf "server at capacity (%d clients)" max_clients;
          }));
  output_char oc '\n';
  (try flush oc with Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop srv listen_fd =
  let domains = ref [] in
  (try
     while not (Atomic.get srv.stop) do
       let fd, _ = Unix.accept listen_fd in
       Obs.Metrics.incr m_connections;
       if Atomic.get srv.stop then (try Unix.close fd with _ -> ())
       else if Atomic.get srv.active >= srv.max_clients then
         shed fd srv.max_clients
       else begin
         Atomic.incr srv.active;
         Obs.Metrics.set m_active_clients (float_of_int (Atomic.get srv.active));
         domains := Domain.spawn (fun () -> handle_client srv fd) :: !domains
       end
     done
   with Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
     (* the shutdown path closed the listening socket under us *)
     ());
  List.iter Domain.join !domains

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

(* Wake a [accept_loop] blocked in accept(2) after [stop]: a throwaway
   connection makes it re-check the stop flag. *)
let poke path =
  try
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path) with Unix.Unix_error _ -> ());
    Unix.close fd
  with Unix.Unix_error _ -> ()
