(** Seeded exponential backoff with full jitter for transaction retry.

    Attempt [k] draws a uniform delay from [0, min(cap, base * 2^k)] using
    the repo's deterministic SplitMix generator — a fixed seed replays the
    exact delay schedule. *)

type t

val create : ?base:float -> ?cap:float -> seed:int -> unit -> t
(** [base] is the first attempt's ceiling in seconds (default 200µs),
    [cap] the overall ceiling (default 50ms). *)

val next_delay : t -> float
(** Draw the next delay (seconds) and advance the attempt counter. *)

val sleep : t -> float
(** {!next_delay}, then actually sleep it; returns the delay. *)

val attempts : t -> int
(** Retries drawn so far. *)

val reset : t -> unit
