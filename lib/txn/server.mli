(** The multi-client server core: a domain-per-client accept loop over the
    {!Wire} line protocol, executing against an {!Mvcc} manager.

    Graceful degradation: connections past [max_clients] are shed with
    [ERR BUSY] (never queued); per-transaction timeouts abort with
    [ERR TIMEOUT]; commits carry client tokens and the server caches each
    client's last committed one, so a reconnecting client re-sending a
    COMMIT whose reply was lost gets the original timestamp instead of a
    double-apply. *)

type t

val create : ?max_clients:int -> ?txn_timeout:float -> Mvcc.t -> t
(** [max_clients] defaults to 8; [txn_timeout] (seconds) is handed to
    every BEGIN. *)

val mgr : t -> Mvcc.t

val stop : t -> unit
(** Ask the accept loop to exit; it notices at the next accepted
    connection (see {!poke}) or request boundary. *)

val stopped : t -> bool

val accept_loop : t -> Unix.file_descr -> unit
(** Accept clients until {!stop}; each client runs in its own domain, all
    joined before returning.  Closing the listening socket also ends the
    loop. *)

val handle_client : t -> Unix.file_descr -> unit
(** Serve one connection on the calling thread (the accept loop uses this;
    exposed for direct socketpair-style tests). *)

val listen_unix : string -> Unix.file_descr
val listen_tcp : int -> Unix.file_descr

val poke : string -> unit
(** Connect-and-close to a unix socket so a stopped accept loop blocked in
    accept(2) wakes up. *)
