(* Snapshot-isolation MVCC over [Storage.Catalog].

   Design: in-place base + undo chains.  The stored relations always hold
   the *latest committed* state; every committed overwrite pushes an undo
   version "before commit [ts] this cell held [prev]".  A transaction reads
   at its begin timestamp [s]: the value of a cell at [s] is the [prev] of
   the oldest undo version with [ts > s], or the base value if none.
   Inserts are append-only, so a snapshot sees a *prefix* of each table's
   rows; a per-table (commit-ts, nrows) history resolves the visible row
   count.  Undo versions and conflict bookkeeping older than the oldest
   active snapshot are garbage-collected at every commit.

   Writes buffer in the transaction (read-your-own-writes served from the
   write set) and apply at commit under first-committer-wins: if any
   written cell has a committed write with a timestamp after this
   transaction's begin, the commit raises [Errors.Txn_conflict] and nothing
   is applied.  Reads are never validated — write skew is permitted, which
   is exactly the snapshot-isolation anomaly boundary (DESIGN.md §5h).

   Commit applies run inside [Catalog.in_txn], so with a durability manager
   attached every commit is one transaction-framed, flushed WAL unit: the
   WAL commit point and the MVCC commit point coincide, and a crash at any
   injected commit-path point recovers to a committed prefix.

   Concurrency: logical MVCC over coarse physical latching.  One manager
   mutex guards every operation's critical section (begin, each read or
   buffered write's visibility check, commit's validate+apply, abort).
   Readers therefore never *block* for the duration of a writer transaction
   — only for single ops — and no locks are held between ops.  The stored
   relations and the shared memory-hierarchy simulator are not thread-safe,
   so all physical access stays inside these sections. *)

module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Value = Storage.Value
module Errors = Mrdb_util.Errors

type cell = { table : string; tid : int; attr : int }

(* Before commit [ts], the cell held [prev]. *)
type version = { ts : int; prev : Value.t }

type t = {
  cat : Catalog.t;
  m : Mutex.t;
  mutable clock : int;  (* last assigned commit timestamp *)
  undo : (cell, version list) Hashtbl.t;  (* newest-first *)
  last_writer : (cell, int) Hashtbl.t;  (* latest committed write per cell *)
  rows : (string, (int * int) list) Hashtbl.t;
      (* (commit_ts, nrows) newest-first; visible rows at snapshot [s] is
         the [nrows] of the newest entry with [ts <= s] *)
  active : (int, int) Hashtbl.t;  (* begin_ts -> live transactions *)
  mutable poisoned : string option;
      (* a commit apply died half-way (simulated crash, I/O error): the
         in-memory state no longer matches storage, every later op refuses *)
}

type status = Active | Committed of int | Aborted of string

type txn = {
  mgr : t;
  begin_ts : int;
  writes : (cell, Value.t) Hashtbl.t;
  mutable write_order : cell list;  (* first-write order, reversed *)
  mutable inserts : (string * Value.t array) list;  (* reversed *)
  mutable status : status;
  deadline : float option;
  started : float;
}

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let m_begun =
  Obs.Metrics.counter "mrdb_txn_begun_total" ~help:"Transactions begun"

let m_committed =
  Obs.Metrics.counter "mrdb_txn_committed_total" ~help:"Transactions committed"

let m_aborted =
  Obs.Metrics.counter "mrdb_txn_aborted_total"
    ~help:"Transactions aborted (any reason, including conflicts/timeouts)"

let m_conflicts =
  Obs.Metrics.counter "mrdb_txn_conflicts_total"
    ~help:"Commits refused by first-committer-wins write-conflict detection"

let m_timeouts =
  Obs.Metrics.counter "mrdb_txn_timeouts_total"
    ~help:"Transactions aborted by their per-transaction deadline"

let m_active =
  Obs.Metrics.gauge "mrdb_txn_active" ~help:"Live (begun, unfinished) transactions"

let m_commit_seconds =
  Obs.Metrics.histogram "mrdb_txn_commit_seconds"
    ~help:"Begin-to-commit wall latency of committed transactions"

let m_versions =
  Obs.Metrics.gauge "mrdb_txn_undo_versions"
    ~help:"Undo versions currently retained (post-GC)"

(* ------------------------------------------------------------------ *)
(* Manager                                                            *)
(* ------------------------------------------------------------------ *)

let create cat =
  {
    cat;
    m = Mutex.create ();
    clock = 0;
    undo = Hashtbl.create 64;
    last_writer = Hashtbl.create 64;
    rows = Hashtbl.create 8;
    active = Hashtbl.create 8;
    poisoned = None;
  }

let catalog t = t.cat
let clock t = t.clock

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let check_poisoned t =
  match t.poisoned with
  | Some why -> invalid_arg ("Mvcc: manager poisoned: " ^ why)
  | None -> ()

(* Physical reads bypass the (shared, not thread-safe to *race on*, but we
   are under the manager lock) tracer anyway: MVCC version resolution is
   bookkeeping, not a modeled data-plane access pattern. *)
let untraced_rel t table =
  Relation.with_hier (Catalog.find t.cat table) None

let ensure_rows t table =
  if not (Hashtbl.mem t.rows table) then
    Hashtbl.replace t.rows table
      [ (0, Relation.nrows (Catalog.find t.cat table)) ]

let visible_rows_at t table ~ts =
  ensure_rows t table;
  let rec go = function
    | [] -> 0
    | (cts, n) :: rest -> if cts <= ts then n else go rest
  in
  go (Hashtbl.find t.rows table)

(* The committed value of [cell] at snapshot [ts]. *)
let committed_value t cell ~ts =
  let base () = Relation.get (untraced_rel t cell.table) cell.tid cell.attr in
  match Hashtbl.find_opt t.undo cell with
  | None -> base ()
  | Some versions ->
      (* newest-first: versions with [ts' > ts] form a prefix; the oldest
         of those carries the snapshot value *)
      let rec go acc = function
        | v :: rest when v.ts > ts -> go (Some v.prev) rest
        | _ -> acc
      in
      (match go None versions with Some v -> v | None -> base ())

let oldest_active t =
  Hashtbl.fold (fun ts _ acc -> min ts acc) t.active max_int

(* Drop bookkeeping no live or future snapshot can reach: versions (and
   writer stamps) at or below the horizon = min(oldest active begin-ts,
   clock).  Future transactions begin at [clock] or later, so they can
   never need a version whose ts is at or below it either. *)
let gc t =
  let horizon = min (oldest_active t) t.clock in
  let dead_undo = ref [] and live_versions = ref 0 in
  Hashtbl.iter
    (fun cell versions ->
      let keep = List.filter (fun v -> v.ts > horizon) versions in
      live_versions := !live_versions + List.length keep;
      if keep == versions then ()
      else if keep = [] then dead_undo := cell :: !dead_undo
      else Hashtbl.replace t.undo cell keep)
    t.undo;
  List.iter (Hashtbl.remove t.undo) !dead_undo;
  let dead_writers = ref [] in
  Hashtbl.iter
    (fun cell ts -> if ts <= horizon then dead_writers := cell :: !dead_writers)
    t.last_writer;
  List.iter (Hashtbl.remove t.last_writer) !dead_writers;
  Hashtbl.iter
    (fun table history ->
      (* keep everything above the horizon plus the newest entry at or
         below it (the horizon snapshot's row count) *)
      let rec prune = function
        | (ts, n) :: rest when ts > horizon -> (ts, n) :: prune rest
        | (ts, n) :: _ -> [ (ts, n) ]
        | [] -> []
      in
      Hashtbl.replace t.rows table (prune history))
    t.rows;
  Obs.Metrics.set m_versions (float_of_int !live_versions)

let retained_versions t =
  locked t (fun () ->
      Hashtbl.fold (fun _ vs acc -> acc + List.length vs) t.undo 0)

(* ------------------------------------------------------------------ *)
(* Transactions                                                       *)
(* ------------------------------------------------------------------ *)

let register_active t ts =
  Hashtbl.replace t.active ts
    (1 + match Hashtbl.find_opt t.active ts with Some n -> n | None -> 0)

let unregister_active t ts =
  match Hashtbl.find_opt t.active ts with
  | Some n when n > 1 -> Hashtbl.replace t.active ts (n - 1)
  | Some _ -> Hashtbl.remove t.active ts
  | None -> ()

let begin_ ?timeout t =
  locked t (fun () ->
      check_poisoned t;
      Obs.Metrics.incr m_begun;
      Obs.Metrics.set m_active
        (Obs.Metrics.gauge_value m_active +. 1.0);
      let begin_ts = t.clock in
      register_active t begin_ts;
      let now = Unix.gettimeofday () in
      {
        mgr = t;
        begin_ts;
        writes = Hashtbl.create 8;
        write_order = [];
        inserts = [];
        status = Active;
        deadline = Option.map (fun d -> now +. d) timeout;
        started = now;
      })

let begin_ts txn = txn.begin_ts
let status txn = txn.status

(* Finish (under the lock): drop from the active set exactly once. *)
let finish_locked txn st =
  txn.status <- st;
  unregister_active txn.mgr txn.begin_ts;
  Obs.Metrics.set m_active (Obs.Metrics.gauge_value m_active -. 1.0);
  Obs.Metrics.incr m_aborted

let abort txn =
  locked txn.mgr (fun () ->
      match txn.status with
      | Active -> finish_locked txn (Aborted "explicit abort")
      | Aborted _ -> ()
      | Committed _ -> invalid_arg "Mvcc.abort: transaction already committed")

let ensure_active txn what =
  match txn.status with
  | Active -> ()
  | Committed _ ->
      invalid_arg (Printf.sprintf "Mvcc.%s: transaction already committed" what)
  | Aborted why ->
      invalid_arg (Printf.sprintf "Mvcc.%s: transaction aborted (%s)" what why)

(* Deadline check, assumed under the lock: an expired transaction aborts
   itself and raises the taxonomy's timeout. *)
let check_deadline_locked txn what =
  match txn.deadline with
  | Some d when Unix.gettimeofday () > d ->
      finish_locked txn (Aborted "deadline exceeded");
      Obs.Metrics.incr m_timeouts;
      raise
        (Errors.Txn_timeout
           (Printf.sprintf "deadline exceeded before %s (begin ts %d)" what
              txn.begin_ts))
  | _ -> ()

let enter txn what =
  check_poisoned txn.mgr;
  ensure_active txn what;
  check_deadline_locked txn what

let visible_rows txn table =
  locked txn.mgr (fun () ->
      enter txn "visible_rows";
      visible_rows_at txn.mgr table ~ts:txn.begin_ts)

let check_visible txn table tid what =
  let n = visible_rows_at txn.mgr table ~ts:txn.begin_ts in
  if tid < 0 || tid >= n then
    invalid_arg
      (Printf.sprintf "Mvcc.%s: row %d of %S not visible at snapshot %d (%d \
                       visible)" what tid table txn.begin_ts n)

let read txn table tid attr =
  locked txn.mgr (fun () ->
      enter txn "read";
      check_visible txn table tid "read";
      let cell = { table; tid; attr } in
      match Hashtbl.find_opt txn.writes cell with
      | Some v -> v
      | None -> committed_value txn.mgr cell ~ts:txn.begin_ts)

let read_row txn table tid =
  locked txn.mgr (fun () ->
      enter txn "read_row";
      check_visible txn table tid "read_row";
      let rel = untraced_rel txn.mgr table in
      let arity = Storage.Schema.arity (Relation.schema rel) in
      Array.init arity (fun attr ->
          let cell = { table; tid; attr } in
          match Hashtbl.find_opt txn.writes cell with
          | Some v -> v
          | None -> committed_value txn.mgr cell ~ts:txn.begin_ts))

(* Snapshot-consistent full-table materialization — the analytics path.
   One critical section per scan, not per row. *)
let scan txn table =
  locked txn.mgr (fun () ->
      enter txn "scan";
      let n = visible_rows_at txn.mgr table ~ts:txn.begin_ts in
      let rel = untraced_rel txn.mgr table in
      let arity = Storage.Schema.arity (Relation.schema rel) in
      Array.init n (fun tid ->
          Array.init arity (fun attr ->
              let cell = { table; tid; attr } in
              match Hashtbl.find_opt txn.writes cell with
              | Some v -> v
              | None -> committed_value txn.mgr cell ~ts:txn.begin_ts)))

let update txn table tid attr value =
  locked txn.mgr (fun () ->
      enter txn "update";
      check_visible txn table tid "update";
      let cell = { table; tid; attr } in
      if not (Hashtbl.mem txn.writes cell) then
        txn.write_order <- cell :: txn.write_order;
      Hashtbl.replace txn.writes cell value)

let insert txn table values =
  locked txn.mgr (fun () ->
      enter txn "insert";
      ensure_rows txn.mgr table;
      let rel = Catalog.find txn.mgr.cat table in
      let arity = Storage.Schema.arity (Relation.schema rel) in
      if Array.length values <> arity then
        invalid_arg
          (Printf.sprintf "Mvcc.insert: %S expects %d values, got %d" table
             arity (Array.length values));
      txn.inserts <- (table, values) :: txn.inserts)

exception Poison of exn * Printexc.raw_backtrace

let commit txn =
  locked txn.mgr @@ fun () ->
  let t = txn.mgr in
  enter txn "commit";
  (* first-committer-wins: any committed write after our begin to a cell we
     also wrote means the first committer already won *)
  Hashtbl.iter
    (fun cell _ ->
      match Hashtbl.find_opt t.last_writer cell with
      | Some ts when ts > txn.begin_ts ->
          finish_locked txn
            (Aborted
               (Printf.sprintf "write-write conflict on %s[%d].%d" cell.table
                  cell.tid cell.attr));
          Obs.Metrics.incr m_conflicts;
          raise
            (Errors.Txn_conflict
               (Printf.sprintf
                  "%s row %d attr %d was committed at ts %d, after this \
                   transaction's snapshot %d"
                  cell.table cell.tid cell.attr ts txn.begin_ts))
      | _ -> ())
    txn.writes;
  let ts = t.clock + 1 in
  let updates = List.rev txn.write_order in
  let inserts = List.rev txn.inserts in
  (* Apply inside one catalog transaction frame: with durability attached
     this is exactly one Begin..ops..Commit WAL unit, flushed at the end.
     If the apply dies half-way (a simulated crash at an injected point),
     storage and the version bookkeeping disagree — poison the manager so
     every later operation refuses instead of serving corrupt snapshots. *)
  (try
     Catalog.in_txn t.cat (fun () ->
         let touched : (string, int list) Hashtbl.t = Hashtbl.create 4 in
         List.iter
           (fun cell ->
             let value = Hashtbl.find txn.writes cell in
             let prev = committed_value t cell ~ts:t.clock in
             let versions =
               match Hashtbl.find_opt t.undo cell with
               | Some vs -> vs
               | None -> []
             in
             Hashtbl.replace t.undo cell ({ ts; prev } :: versions);
             let rel = Catalog.find t.cat cell.table in
             Relation.set rel cell.tid cell.attr value;
             Catalog.notify_update t.cat cell.table ~tid:cell.tid
               ~attr:cell.attr ~value;
             let attrs =
               match Hashtbl.find_opt touched cell.table with
               | Some l -> l
               | None -> []
             in
             if not (List.mem cell.attr attrs) then
               Hashtbl.replace touched cell.table (cell.attr :: attrs);
             Hashtbl.replace t.last_writer cell ts)
           updates;
         Hashtbl.iter
           (fun table attrs -> Catalog.rebuild_indexes_for t.cat table ~attrs)
           touched;
         List.iter
           (fun (table, values) ->
             ensure_rows t table;
             let rel = Catalog.find t.cat table in
             let tid = Relation.append rel values in
             Catalog.notify_insert t.cat table ~tid;
             let history = Hashtbl.find t.rows table in
             let nrows = Relation.nrows rel in
             match history with
             | (hts, _) :: rest when hts = ts ->
                 Hashtbl.replace t.rows table ((ts, nrows) :: rest)
             | _ -> Hashtbl.replace t.rows table ((ts, nrows) :: history))
           inserts)
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     if updates <> [] || inserts <> [] then
       t.poisoned <-
         Some
           (Printf.sprintf "commit of ts %d died mid-apply (%s)" ts
              (Printexc.to_string e));
     finish_locked txn (Aborted ("apply failed: " ^ Printexc.to_string e));
     Printexc.raise_with_backtrace (Poison (e, bt)) bt);
  t.clock <- ts;
  txn.status <- Committed ts;
  unregister_active t txn.begin_ts;
  Obs.Metrics.set m_active (Obs.Metrics.gauge_value m_active -. 1.0);
  Obs.Metrics.incr m_committed;
  Obs.Metrics.observe m_commit_seconds (Unix.gettimeofday () -. txn.started);
  gc t;
  ts

(* Unwrap the internal poison marker so callers see the original exception
   (Faultio.Crash for the chaos tests, the raw error otherwise). *)
let commit txn =
  try commit txn
  with Poison (e, bt) -> Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Client-layer helpers: retry loop and read-only snapshots           *)
(* ------------------------------------------------------------------ *)

let m_retries =
  Obs.Metrics.counter "mrdb_txn_retries_total"
    ~help:"Conflict-triggered retries by the client retry loop"

(* Run [f] in a transaction and commit; on Txn_conflict, retry with seeded
   exponential backoff, up to [retries] retries.  [f] may abort its
   transaction to bail out (the result is still returned, nothing commits).
   Timeouts are not retried: the deadline is a promise to the caller. *)
let run ?(retries = 8) ?timeout ?backoff t f =
  let backoff =
    match backoff with Some b -> b | None -> Backoff.create ~seed:1 ()
  in
  let rec attempt n =
    let txn = begin_ ?timeout t in
    match
      let x = f txn in
      (match txn.status with Active -> ignore (commit txn) | _ -> ());
      x
    with
    | x -> x
    | exception (Errors.Txn_conflict _ as e) ->
        (match txn.status with Active -> abort txn | _ -> ());
        if n >= retries then raise e
        else begin
          Obs.Metrics.incr m_retries;
          ignore (Backoff.sleep backoff);
          attempt (n + 1)
        end
    | exception e ->
        (match txn.status with Active -> abort txn | _ -> ());
        raise e
  in
  attempt 0

(* Read-only snapshot: begin, read, abort — never conflicts, writes
   nothing to the WAL. *)
let snapshot t f =
  let txn = begin_ t in
  Fun.protect
    ~finally:(fun () -> match txn.status with Active -> abort txn | _ -> ())
    (fun () -> f txn)
