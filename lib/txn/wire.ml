(* The server's line protocol: one request or reply per newline-terminated
   line, ASCII, space-separated fields.  Values carry a one-letter type tag
   so the client round-trips types exactly; strings are percent-escaped so
   embedded spaces, pipes, newlines and non-ASCII survive.

     request:  HELLO id | BEGIN | GET t tid attr | SET t tid attr v
             | INSERT t v1|v2|... | ROWS t | SUM t attr | COMMIT [token]
             | ABORT | PING | QUIT
     reply:    OK [detail] | VAL v | ERR TAG message

   ERR tags are the wire form of the Mrdb_util.Errors taxonomy
   (CONFLICT, TIMEOUT, BUSY, UNKNOWN_TABLE, ...), so a client can rebuild
   the typed exception a reply stands for. *)

module Value = Storage.Value

(* ------------------------------------------------------------------ *)
(* Escaping                                                           *)
(* ------------------------------------------------------------------ *)

let must_escape c =
  c <= ' ' || c > '~' || c = '%' || c = '|'

let escape s =
  if String.exists must_escape s then begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let unescape s =
  if not (String.contains s '%') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '%' && !i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
        | Some code ->
            Buffer.add_char b (Char.chr code);
            i := !i + 3
        | None ->
            Buffer.add_char b s.[!i];
            incr i)
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end

(* ------------------------------------------------------------------ *)
(* Values                                                             *)
(* ------------------------------------------------------------------ *)

let encode_value = function
  | Value.Null -> "null"
  | Value.VInt i -> Printf.sprintf "i:%d" i
  | Value.VFloat f -> Printf.sprintf "f:%h" f
  | Value.VBool b -> Printf.sprintf "b:%b" b
  | Value.VDate d -> Printf.sprintf "d:%d" d
  | Value.VStr s -> "s:" ^ escape s

let decode_value s =
  let payload () = String.sub s 2 (String.length s - 2) in
  if s = "null" then Value.Null
  else if String.length s < 2 || s.[1] <> ':' then
    failwith (Printf.sprintf "wire: bad value %S" s)
  else
    match s.[0] with
    | 'i' -> (
        match int_of_string_opt (payload ()) with
        | Some i -> Value.VInt i
        | None -> failwith (Printf.sprintf "wire: bad int %S" s))
    | 'f' -> (
        match float_of_string_opt (payload ()) with
        | Some f -> Value.VFloat f
        | None -> failwith (Printf.sprintf "wire: bad float %S" s))
    | 'b' -> (
        match payload () with
        | "true" -> Value.VBool true
        | "false" -> Value.VBool false
        | _ -> failwith (Printf.sprintf "wire: bad bool %S" s))
    | 'd' -> (
        match int_of_string_opt (payload ()) with
        | Some d -> Value.VDate d
        | None -> failwith (Printf.sprintf "wire: bad date %S" s))
    | 's' -> Value.VStr (unescape (payload ()))
    | _ -> failwith (Printf.sprintf "wire: bad value tag %S" s)

let encode_values vs =
  String.concat "|" (Array.to_list (Array.map encode_value vs))

let decode_values s =
  Array.of_list (List.map decode_value (String.split_on_char '|' s))

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

type request =
  | Hello of string  (** client id, for idempotent reconnect *)
  | Begin
  | Get of { table : string; tid : int; attr : int }
  | Set of { table : string; tid : int; attr : int; value : Value.t }
  | Insert of { table : string; values : Value.t array }
  | Rows of string
  | Sum of { table : string; attr : int }
  | Commit of string option  (** idempotency token *)
  | Abort
  | Ping
  | Quit

let encode_request = function
  | Hello id -> "HELLO " ^ escape id
  | Begin -> "BEGIN"
  | Get { table; tid; attr } -> Printf.sprintf "GET %s %d %d" (escape table) tid attr
  | Set { table; tid; attr; value } ->
      Printf.sprintf "SET %s %d %d %s" (escape table) tid attr (encode_value value)
  | Insert { table; values } ->
      Printf.sprintf "INSERT %s %s" (escape table) (encode_values values)
  | Rows table -> "ROWS " ^ escape table
  | Sum { table; attr } -> Printf.sprintf "SUM %s %d" (escape table) attr
  | Commit None -> "COMMIT"
  | Commit (Some token) -> "COMMIT " ^ escape token
  | Abort -> "ABORT"
  | Ping -> "PING"
  | Quit -> "QUIT"

let int_field what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "wire: bad %s %S" what s)

let parse_request line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "HELLO"; id ] -> Hello (unescape id)
  | [ "BEGIN" ] -> Begin
  | [ "GET"; t; tid; attr ] ->
      Get { table = unescape t; tid = int_field "tid" tid;
            attr = int_field "attr" attr }
  | [ "SET"; t; tid; attr; v ] ->
      Set { table = unescape t; tid = int_field "tid" tid;
            attr = int_field "attr" attr; value = decode_value v }
  | [ "INSERT"; t; vs ] -> Insert { table = unescape t; values = decode_values vs }
  | [ "ROWS"; t ] -> Rows (unescape t)
  | [ "SUM"; t; attr ] -> Sum { table = unescape t; attr = int_field "attr" attr }
  | [ "COMMIT" ] -> Commit None
  | [ "COMMIT"; token ] -> Commit (Some (unescape token))
  | [ "ABORT" ] -> Abort
  | [ "PING" ] -> Ping
  | [ "QUIT" ] -> Quit
  | _ -> failwith (Printf.sprintf "wire: bad request %S" line)

(* ------------------------------------------------------------------ *)
(* Replies                                                            *)
(* ------------------------------------------------------------------ *)

type reply =
  | Ok_ of string  (** detail, possibly empty *)
  | Val of Value.t
  | Err of { tag : string; msg : string }

let encode_reply = function
  | Ok_ "" -> "OK"
  | Ok_ detail -> "OK " ^ escape detail
  | Val v -> "VAL " ^ encode_value v
  | Err { tag; msg } -> Printf.sprintf "ERR %s %s" tag (escape msg)

let parse_reply line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "OK" ] -> Ok_ ""
  | [ "OK"; detail ] -> Ok_ (unescape detail)
  | [ "VAL"; v ] -> Val (decode_value v)
  | "ERR" :: tag :: rest -> Err { tag; msg = unescape (String.concat " " rest) }
  | _ -> failwith (Printf.sprintf "wire: bad reply %S" line)

(* The typed exception an ERR reply stands for. *)
let exn_of_reply = function
  | Err { tag; msg } -> (
      match Mrdb_util.Errors.of_wire_tag tag msg with
      | Some e -> Some e
      | None -> Some (Failure (Printf.sprintf "server error %s: %s" tag msg)))
  | Ok_ _ | Val _ -> None
