(* Socket client for mrdb_server.

   One request/reply round-trip per call over a line protocol (see Wire).
   ERR replies are raised as their typed taxonomy exceptions, so client
   code handles [Errors.Txn_conflict]/[Txn_timeout]/[Server_busy] exactly
   as it would in-process.

   Reconnect is idempotent: every client announces a stable id in HELLO,
   and every commit carries a token.  The server remembers each client's
   last committed token, so a client that loses the connection after
   sending COMMIT — not knowing whether it applied — reconnects and
   re-sends the same COMMIT token: if the commit already applied, the
   server replies with the cached commit timestamp instead of failing (or
   double-applying). *)

module Errors = Mrdb_util.Errors

type addr = Unix_sock of string | Tcp of string * int

type t = {
  addr : addr;
  id : string;
  mutable ic : in_channel;
  mutable oc : out_channel;
  mutable commit_seq : int;  (* monotonically numbers this client's commits *)
}

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      Unix.ADDR_INET ((Unix.gethostbyname host).Unix.h_addr_list.(0), port)

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let roundtrip_raw t req =
  send_line t.oc (Wire.encode_request req);
  Wire.parse_reply (input_line t.ic)

let hello t =
  match roundtrip_raw t (Wire.Hello t.id) with
  | Wire.Ok_ _ -> ()
  | reply -> (
      match Wire.exn_of_reply reply with
      | Some e -> raise e
      | None -> failwith "client: unexpected HELLO reply")

let connect ?(id = Printf.sprintf "client-%d" (Unix.getpid ())) addr =
  let fd = Unix.socket (Unix.domain_of_sockaddr (sockaddr addr)) Unix.SOCK_STREAM 0 in
  Unix.connect fd (sockaddr addr);
  let t =
    {
      addr;
      id;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      commit_seq = 0;
    }
  in
  hello t;
  t

let reconnect t =
  (try close_out_noerr t.oc with _ -> ());
  let fd = Unix.socket (Unix.domain_of_sockaddr (sockaddr t.addr)) Unix.SOCK_STREAM 0 in
  Unix.connect fd (sockaddr t.addr);
  t.ic <- Unix.in_channel_of_descr fd;
  t.oc <- Unix.out_channel_of_descr fd;
  hello t

let close t =
  (try send_line t.oc (Wire.encode_request Wire.Quit) with _ -> ());
  close_out_noerr t.oc

(* A round-trip that reconnects once on a dead connection and replays the
   request — safe for every request in the protocol except a bare COMMIT,
   which callers must issue through [commit] (token-idempotent). *)
let roundtrip t req =
  match roundtrip_raw t req with
  | reply -> reply
  | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
      reconnect t;
      roundtrip_raw t req

let fail_reply reply =
  match Wire.exn_of_reply reply with
  | Some e -> raise e
  | None -> failwith "client: unexpected reply"

let ok t req = match roundtrip t req with Wire.Ok_ d -> d | r -> fail_reply r

let value t req = match roundtrip t req with Wire.Val v -> v | r -> fail_reply r

let begin_ t = ignore (ok t Wire.Begin)

let get t ~table ~tid ~attr = value t (Wire.Get { table; tid; attr })

let set t ~table ~tid ~attr v =
  ignore (ok t (Wire.Set { table; tid; attr; value = v }))

let insert t ~table values = ignore (ok t (Wire.Insert { table; values }))

let rows t table =
  match value t (Wire.Rows table) with
  | Storage.Value.VInt n -> n
  | _ -> failwith "client: ROWS returned a non-integer"

let sum t ~table ~attr = value t (Wire.Sum { table; attr })

let abort t = ignore (ok t Wire.Abort)

let ping t = ignore (ok t Wire.Ping)

(* Token-idempotent commit: on a connection failure after the request went
   out, reconnect and re-send the *same* token; the server's cache turns a
   duplicate into the original reply. *)
let commit t =
  t.commit_seq <- t.commit_seq + 1;
  let token = Printf.sprintf "%s#%d" t.id t.commit_seq in
  let req = Wire.Commit (Some token) in
  let reply =
    match roundtrip_raw t req with
    | reply -> reply
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
        reconnect t;
        roundtrip_raw t req
  in
  match reply with
  | Wire.Ok_ detail -> (
      match int_of_string_opt detail with
      | Some ts -> ts
      | None -> failwith "client: COMMIT reply without a timestamp")
  | r -> fail_reply r
