(* Seeded exponential backoff with full jitter.

   Retrying a conflicted transaction immediately just re-collides; retrying
   after a fixed delay synchronizes the colliders.  The standard cure is
   exponential backoff with "full jitter": attempt [k] sleeps a uniform
   draw from [0, min(cap, base * 2^k)].  The draw comes from the repo's
   deterministic SplitMix generator, so a fixed seed replays the exact same
   delay schedule — tests assert the schedule, not just its shape. *)

type t = {
  rng : Mrdb_util.Rng.t;
  base : float;
  cap : float;
  mutable attempt : int;
}

let create ?(base = 0.0002) ?(cap = 0.05) ~seed () =
  if base <= 0.0 then invalid_arg "Backoff.create: base must be positive";
  if cap < base then invalid_arg "Backoff.create: cap below base";
  { rng = Mrdb_util.Rng.create seed; base; cap; attempt = 0 }

let attempts t = t.attempt

let reset t = t.attempt <- 0

(* The delay for the next retry; advances the attempt counter. *)
let next_delay t =
  let ceiling = min t.cap (t.base *. (2.0 ** float_of_int t.attempt)) in
  t.attempt <- t.attempt + 1;
  Mrdb_util.Rng.float t.rng *. ceiling

let sleep t =
  let d = next_delay t in
  if d > 0.0 then Unix.sleepf d;
  d
