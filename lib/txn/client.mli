(** Socket client for mrdb_server (see {!Wire} for the protocol).

    ERR replies raise their typed {!Mrdb_util.Errors} exceptions.  The
    client reconnects transparently on dead connections; commits are
    idempotent across reconnects via per-commit tokens, so a commit whose
    reply was lost is never double-applied. *)

type addr = Unix_sock of string | Tcp of string * int

type t

val connect : ?id:string -> addr -> t
(** [id] is the stable client identity used for idempotent reconnect
    (default derived from the pid). *)

val close : t -> unit

val begin_ : t -> unit
val get : t -> table:string -> tid:int -> attr:int -> Storage.Value.t
val set : t -> table:string -> tid:int -> attr:int -> Storage.Value.t -> unit
val insert : t -> table:string -> Storage.Value.t array -> unit
val rows : t -> string -> int
val sum : t -> table:string -> attr:int -> Storage.Value.t

val commit : t -> int
(** Returns the commit timestamp.
    @raise Mrdb_util.Errors.Txn_conflict on first-committer-wins refusal. *)

val abort : t -> unit
val ping : t -> unit
